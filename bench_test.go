// Package dmml's root benchmark suite: one testing.B benchmark per
// experiment in EXPERIMENTS.md (quick scale), plus micro-benchmarks of the
// kernels the experiments lean on. Run everything with:
//
//	go test -bench=. -benchmem
package dmml

import (
	"math/rand"
	"testing"

	"dmml/internal/compress"
	"dmml/internal/experiments"
	"dmml/internal/factorized"
	"dmml/internal/la"
	"dmml/internal/opt"
	"dmml/internal/workload"
)

func benchExperiment(b *testing.B, fn func(bool) (experiments.Table, error)) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		tbl, err := fn(true)
		if err != nil {
			b.Fatalf("%s: %v", tbl.ID, err)
		}
		if len(tbl.Rows) == 0 {
			b.Fatalf("%s produced no rows", tbl.ID)
		}
	}
}

func BenchmarkE1FactorizedVsMaterialized(b *testing.B) {
	benchExperiment(b, experiments.E1FactorizedVsMaterialized)
}

func BenchmarkE2HamletRule(b *testing.B) {
	benchExperiment(b, experiments.E2HamletRule)
}

func BenchmarkE3CompressionRatio(b *testing.B) {
	benchExperiment(b, experiments.E3CompressionRatio)
}

func BenchmarkE4CompressedMV(b *testing.B) {
	benchExperiment(b, experiments.E4CompressedMV)
}

func BenchmarkE5Rewrites(b *testing.B) {
	benchExperiment(b, experiments.E5Rewrites)
}

func BenchmarkE6BismarckParallel(b *testing.B) {
	benchExperiment(b, experiments.E6BismarckParallel)
}

func BenchmarkE7ModelSearch(b *testing.B) {
	benchExperiment(b, experiments.E7ModelSearch)
}

func BenchmarkE8ColumbusReuse(b *testing.B) {
	benchExperiment(b, experiments.E8ColumbusReuse)
}

func BenchmarkE9ParamServer(b *testing.B) {
	benchExperiment(b, experiments.E9ParamServer)
}

func BenchmarkE10SparseVsDense(b *testing.B) {
	benchExperiment(b, experiments.E10SparseVsDense)
}

func BenchmarkE11BufferPool(b *testing.B) {
	benchExperiment(b, experiments.E11BufferPool)
}

func BenchmarkE12ReuseAcrossCV(b *testing.B) {
	benchExperiment(b, experiments.E12ReuseAcrossCV)
}

func BenchmarkE13PlannerChoice(b *testing.B) {
	benchExperiment(b, experiments.E13PlannerChoice)
}

func BenchmarkE14FaultTolerance(b *testing.B) {
	benchExperiment(b, experiments.E14FaultTolerance)
}

func BenchmarkE15Fusion(b *testing.B) {
	benchExperiment(b, experiments.E15Fusion)
}

func BenchmarkE16CompiledFusion(b *testing.B) {
	benchExperiment(b, experiments.E16CompiledFusion)
}

func BenchmarkE17OutOfCoreTraining(b *testing.B) {
	benchExperiment(b, experiments.E17OutOfCoreTraining)
}

func BenchmarkE18FactorizedSnowflake(b *testing.B) {
	benchExperiment(b, experiments.E18FactorizedSnowflake)
}

func BenchmarkAblationKMeansPruning(b *testing.B) {
	benchExperiment(b, experiments.EKMeansPruning)
}

// --- kernel micro-benchmarks ------------------------------------------------

func BenchmarkKernelGEMM(b *testing.B) {
	r := rand.New(rand.NewSource(1))
	x, _, _ := workload.Regression(r, 256, 256, 0)
	y, _, _ := workload.Regression(r, 256, 256, 0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		la.MatMul(x, y)
	}
}

func BenchmarkKernelGram(b *testing.B) {
	r := rand.New(rand.NewSource(2))
	x, _, _ := workload.Regression(r, 20000, 32, 0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		la.Gram(x)
	}
}

func BenchmarkKernelDenseMatVec(b *testing.B) {
	r := rand.New(rand.NewSource(3))
	x, _, _ := workload.Regression(r, 100000, 32, 0)
	v := make([]float64, 32)
	for i := range v {
		v[i] = r.NormFloat64()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		la.MatVec(x, v)
	}
}

func BenchmarkKernelCSRMatVec(b *testing.B) {
	r := rand.New(rand.NewSource(4))
	sp := workload.SparseMatrix(r, 100000, 256, 0.01)
	v := make([]float64, 256)
	for i := range v {
		v[i] = r.NormFloat64()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sp.MatVec(v)
	}
}

func BenchmarkKernelCompressedMatVec(b *testing.B) {
	r := rand.New(rand.NewSource(5))
	m := workload.TelemetryMatrix(r, 100000, []int{8, 16, 32, 4}, 1.0)
	cm := compress.Compress(m, compress.Options{CoCode: true})
	v := make([]float64, 4)
	for i := range v {
		v[i] = r.NormFloat64()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cm.MatVec(v)
	}
}

func BenchmarkKernelFactorizedMatVec(b *testing.B) {
	r := rand.New(rand.NewSource(6))
	s, err := workload.GenerateStar(r, workload.StarConfig{
		FactRows: 100000, FactFeats: 4,
		DimRows: []int{1000}, DimFeats: []int{30},
		Task: workload.RegressionTask, DimSignal: 1,
	})
	if err != nil {
		b.Fatal(err)
	}
	design, err := factorized.NewDesign(s.FactX, s.FKs, s.DimX)
	if err != nil {
		b.Fatal(err)
	}
	w := make([]float64, design.Cols())
	for i := range w {
		w[i] = r.NormFloat64()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		design.MatVec(w)
	}
}

func BenchmarkKernelSGDEpoch(b *testing.B) {
	r := rand.New(rand.NewSource(7))
	x, y, _ := workload.Classification(r, 50000, 32, 0.02)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := opt.SGD(opt.DenseRows{M: x}, y, opt.Logistic{},
			opt.SGDConfig{Step: 0.5, Epochs: 1, Seed: int64(i)}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationCoCoding(b *testing.B) {
	benchExperiment(b, experiments.EColumnCoCoding)
}
