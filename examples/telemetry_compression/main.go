// Telemetry scenario: compressed linear algebra (CLA) over machine logs.
//
// Telemetry tables are full of low-cardinality, Zipf-skewed categorical
// columns — exactly the regime where dictionary compression shines. We
// compress a synthetic telemetry matrix, inspect the planner's per-column
// encoding choices, run linear algebra directly on the compressed form, and
// finish with k-means over the (loss-free) compressed data.
//
//	go run ./examples/telemetry_compression
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	"dmml/internal/compress"
	"dmml/internal/la"
	"dmml/internal/ml"
	"dmml/internal/workload"
)

func main() {
	r := rand.New(rand.NewSource(11))

	// 500k telemetry records: status codes, device model, region, error
	// class, rack id, plus two continuous gauge columns.
	n := 500000
	m := workload.TelemetryMatrix(r, n, []int{6, 40, 12, 9, 200}, 1.2)
	gauges := la.NewDense(n, 2)
	for i := 0; i < n; i++ {
		gauges.Set(i, 0, r.NormFloat64()*3+20) // temperature
		gauges.Set(i, 1, r.Float64()*100)      // utilization
	}
	full, err := la.HCat(m, gauges)
	if err != nil {
		log.Fatal(err)
	}

	start := time.Now()
	cm := compress.Compress(full, compress.Options{CoCode: true})
	fmt.Printf("compressed %dx%d in %v\n", n, full.Cols(), time.Since(start).Round(time.Millisecond))
	fmt.Printf("dense footprint:      %8.1f MB\n", float64(cm.DenseSizeBytes())/1e6)
	fmt.Printf("compressed footprint: %8.1f MB (ratio %.1fx)\n",
		float64(cm.SizeBytes())/1e6, cm.CompressionRatio())
	fmt.Println("column groups:", cm.GroupInfo())

	// Linear algebra directly over the compressed representation.
	v := make([]float64, full.Cols())
	for i := range v {
		v[i] = r.NormFloat64()
	}
	start = time.Now()
	mvC := cm.MatVec(v)
	tComp := time.Since(start)
	start = time.Now()
	mvD := la.MatVec(full, v)
	tDense := time.Since(start)
	maxDiff := 0.0
	for i := range mvC {
		if dlt := mvC[i] - mvD[i]; dlt > maxDiff {
			maxDiff = dlt
		} else if -dlt > maxDiff {
			maxDiff = -dlt
		}
	}
	fmt.Printf("\nmatrix–vector: compressed %v vs dense %v (max |Δ| = %.2g)\n",
		tComp.Round(time.Microsecond), tDense.Round(time.Microsecond), maxDiff)

	// Scalar ops touch only dictionaries.
	start = time.Now()
	cm.Scale(0.5)
	fmt.Printf("scale entire compressed matrix by 0.5: %v (dictionary-only)\n",
		time.Since(start).Round(time.Microsecond))
	cm.Scale(2) // undo

	// Cluster devices on a sample of the telemetry (decompression is exact).
	sample := cm.Decompress().Slice(0, 20000, 0, full.Cols())
	km := &ml.KMeans{K: 6, Seed: 3, Pruned: true}
	start = time.Now()
	if err := km.Fit(sample); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nk-means over decompressed sample: %d clusters in %v (%d iterations, %d distance evals)\n",
		km.K, time.Since(start).Round(time.Millisecond), km.Iters, km.DistEval)
}
