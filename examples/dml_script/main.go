// Declarative ML scenario: write linear algebra, let the optimizer plan it.
//
// This example embeds a DML script that fits ridge regression through the
// normal equations and computes its training error, then shows what the
// SystemML-style rewrite engine does to it: matrix-chain reordering,
// aggregate fusion, and identity elimination — with before/after execution
// statistics.
//
//	go run ./examples/dml_script
package main

import (
	_ "embed"
	"fmt"
	"log"
	"math/rand"
	"time"

	"dmml/internal/dml"
	"dmml/internal/la"
	"dmml/internal/workload"
)

// The scripts live in scripts/ so `dmml lint` (and the lint tests) can check
// them without running this example.
var (
	//go:embed scripts/ridge.dml
	script string
	//go:embed scripts/chain.dml
	chainScript string
	//go:embed scripts/gd.dml
	gdScript string
)

func main() {
	r := rand.New(rand.NewSource(21))
	x, yv, _ := workload.Regression(r, 200000, 30, 0.3)
	y := la.NewDense(len(yv), 1)
	for i, v := range yv {
		y.Set(i, 0, v)
	}
	makeEnv := func() dml.Env {
		return dml.Env{
			"X":      dml.Matrix(x),
			"y":      dml.Matrix(y),
			"lambda": dml.Scalar(0.1),
		}
	}

	prog, err := dml.Parse(script)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("original program:")
	fmt.Println(indent(prog.String()))

	optimized := prog.Optimize(dml.ShapesFromEnv(makeEnv()))
	fmt.Println("\noptimized program (note __sumsq fusion):")
	fmt.Println(indent(optimized.String()))

	start := time.Now()
	vNaive, statsNaive, err := prog.Run(makeEnv())
	if err != nil {
		log.Fatal(err)
	}
	tNaive := time.Since(start)

	start = time.Now()
	vOpt, statsOpt, err := optimized.Run(makeEnv())
	if err != nil {
		log.Fatal(err)
	}
	tOpt := time.Since(start)

	fmt.Printf("\nnaive:     mse=%.5f  time=%v  cells=%d  cse_hits=%d\n",
		vNaive.S, tNaive.Round(time.Millisecond), statsNaive.CellsAllocated, statsNaive.CSEHits)
	fmt.Printf("optimized: mse=%.5f  time=%v  cells=%d  cse_hits=%d\n",
		vOpt.S, tOpt.Round(time.Millisecond), statsOpt.CellsAllocated, statsOpt.CSEHits)

	// A second script showing matrix-chain reordering.
	chain := chainScript
	p2, err := dml.Parse(chain)
	if err != nil {
		log.Fatal(err)
	}
	shapes := map[string]dml.Shape{}
	env2 := dml.Env{}
	for name, side := range map[string]int{"A": 600, "B": 600} {
		m, _, _ := workload.Regression(r, side, side, 0)
		env2[name] = dml.Matrix(m)
	}
	vv, _, _ := workload.Regression(r, 600, 1, 0)
	env2["v"] = dml.Matrix(vv)
	shapes = dml.ShapesFromEnv(env2)
	opt2 := p2.Optimize(shapes)
	fmt.Printf("\nchain %q reordered to %q\n", p2.String(), opt2.String())
	start = time.Now()
	if _, _, err := p2.Run(env2); err != nil {
		log.Fatal(err)
	}
	tLeft := time.Since(start)
	start = time.Now()
	if _, _, err := opt2.Run(env2); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("left-to-right: %v, optimized: %v\n",
		tLeft.Round(time.Microsecond), time.Since(start).Round(time.Microsecond))

	// A third script: gradient descent written entirely in DML, showing
	// loop-invariant code motion.
	p3, err := dml.Parse(gdScript)
	if err != nil {
		log.Fatal(err)
	}
	opt3 := p3.Optimize(dml.ShapesFromEnv(makeEnv()))
	fmt.Println("\nGD-in-DML, optimized (note the hoisted __licm temps):")
	fmt.Println(indent(opt3.String()))
	start = time.Now()
	vNaive2, _, err := p3.Run(makeEnv())
	if err != nil {
		log.Fatal(err)
	}
	tN := time.Since(start)
	start = time.Now()
	vOpt2, _, err := opt3.Run(makeEnv())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("naive loop: mse=%.4f in %v; with LICM: mse=%.4f in %v\n",
		vNaive2.S, tN.Round(time.Millisecond), vOpt2.S, time.Since(start).Round(time.Millisecond))
}

func indent(s string) string {
	out := ""
	for _, line := range splitLines(s) {
		out += "    " + line + "\n"
	}
	return out[:len(out)-1]
}

func splitLines(s string) []string {
	var lines []string
	cur := ""
	for _, c := range s {
		if c == '\n' {
			lines = append(lines, cur)
			cur = ""
			continue
		}
		cur += string(c)
	}
	return append(lines, cur)
}
