// Stream profiling scenario: one-pass sketches drive physical decisions.
//
// Before training, an ML-over-data system profiles its input: approximate
// distinct counts tell the compression planner which columns will
// dictionary-encode, heavy-hitter sketches find the dominant categories, and
// streaming quantiles calibrate binning — all in a single pass with bounded
// memory. This example profiles a synthetic click log, compares the sketch
// estimates against exact answers, and shows the profile agreeing with the
// CLA planner's actual encoding choices.
//
//	go run ./examples/stream_profiling
package main

import (
	"fmt"
	"log"
	"math/rand"
	"sort"

	"dmml/internal/compress"
	"dmml/internal/la"
	"dmml/internal/sketch"
	"dmml/internal/workload"
)

func main() {
	r := rand.New(rand.NewSource(31))
	n := 400000

	// A click log: page id (Zipf, high card), campaign (low card),
	// latency ms (continuous).
	pages := workload.ZipfColumn(r, n, 20000, 1.3)
	campaigns := workload.ZipfColumn(r, n, 12, 0.8)
	latency := make([]float64, n)
	for i := range latency {
		latency[i] = 20 + r.ExpFloat64()*35
	}

	cols := map[string][]float64{
		"page_id":    pages,
		"campaign":   campaigns,
		"latency_ms": latency,
	}
	names := []string{"page_id", "campaign", "latency_ms"}

	fmt.Println("one-pass column profiles (sketch vs exact):")
	for _, name := range names {
		col := cols[name]
		p, err := sketch.Profile(col)
		if err != nil {
			log.Fatal(err)
		}
		exactDistinct := exactCard(col)
		exactMedian := exactQuantile(col, 0.5)
		fmt.Printf("  %-10s  distinct ≈ %8.0f (exact %6d)   median ≈ %7.2f (exact %7.2f)   mean %7.2f ± %.2f\n",
			name, p.ApproxDistinct, exactDistinct, p.ApproxMedian, exactMedian, p.Mean, p.Std)
	}

	// Heavy hitters on the campaign column with a Count-Min sketch.
	cm, err := sketch.NewCountMin(0.001, 0.01)
	if err != nil {
		log.Fatal(err)
	}
	for _, v := range campaigns {
		cm.Add(fmt.Sprint(int(v)), 1)
	}
	fmt.Printf("\ncount-min sketch (%d KB) campaign frequencies:\n", cm.SizeBytes()/1024)
	for c := 0; c < 3; c++ {
		fmt.Printf("  campaign %d ≈ %d clicks\n", c, cm.Estimate(fmt.Sprint(c)))
	}

	// The profile predicts compressibility; confirm with the CLA planner.
	m := la.NewDense(n, 3)
	for i := 0; i < n; i++ {
		m.Set(i, 0, pages[i])
		m.Set(i, 1, campaigns[i])
		m.Set(i, 2, latency[i])
	}
	cmpr := compress.Compress(m, compress.Options{})
	fmt.Printf("\nCLA planner encodings (profile said: page_id medium-card, campaign low-card, latency continuous):\n")
	fmt.Printf("  groups: %v\n", cmpr.GroupInfo())
	fmt.Printf("  overall ratio: %.1fx (%.1f MB → %.1f MB)\n",
		cmpr.CompressionRatio(),
		float64(cmpr.DenseSizeBytes())/1e6, float64(cmpr.SizeBytes())/1e6)
}

func exactCard(col []float64) int {
	seen := map[float64]struct{}{}
	for _, v := range col {
		seen[v] = struct{}{}
	}
	return len(seen)
}

func exactQuantile(col []float64, p float64) float64 {
	sorted := append([]float64(nil), col...)
	sort.Float64s(sorted)
	return sorted[int(p*float64(len(sorted)))]
}
