// Retail scenario: learning over a normalized star schema without
// materializing the join.
//
// An orders fact table references customer and product dimension tables by
// foreign key. We train a purchase-value regression three ways:
//
//  1. through the relational engine: hash-join everything, export a matrix,
//     train on it (the classic pipeline);
//  2. factorized (Orion/F): train directly on the normalized schema;
//  3. through the cost-based planner, which should pick factorized here
//     because the tuple ratios are high.
//
// We also ask Hamlet's rule whether either join could be skipped entirely.
//
//	go run ./examples/retail_factorized
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	"dmml/internal/core"
	"dmml/internal/factorized"
	"dmml/internal/hamlet"
	"dmml/internal/opt"
	"dmml/internal/relational"
	"dmml/internal/storage"
	"dmml/internal/workload"
)

func main() {
	r := rand.New(rand.NewSource(7))

	// 200k orders, 2k customers (TR=100), 500 products (TR=400).
	star, err := workload.GenerateStar(r, workload.StarConfig{
		FactRows:  200000,
		FactFeats: 6, // order-level features: quantity, discount, ...
		DimRows:   []int{2000, 500},
		DimFeats:  []int{8, 12}, // customer profile, product attributes
		Task:      workload.RegressionTask,
		Noise:     0.1,
		DimSignal: 1,
	})
	if err != nil {
		log.Fatal(err)
	}

	// --- Path 1: relational join → matrix → train -------------------------
	fact, dims, err := star.Tables()
	if err != nil {
		log.Fatal(err)
	}
	start := time.Now()
	joined := fact
	for k, dim := range dims {
		joined, err = relational.HashJoin(joined, dim, fmt.Sprintf("fk%d", k), "id",
			relational.JoinOptions{DropRightKey: true})
		if err != nil {
			log.Fatal(err)
		}
	}
	var cols []string
	for j := 0; j < 6; j++ {
		cols = append(cols, fmt.Sprintf("f%d", j))
	}
	for j := 0; j < 8; j++ {
		cols = append(cols, fmt.Sprintf("d0_%d", j))
	}
	for j := 0; j < 12; j++ {
		cols = append(cols, fmt.Sprintf("d1_%d", j))
	}
	xJoined, err := storage.ToMatrix(joined, cols)
	if err != nil {
		log.Fatal(err)
	}
	gd := opt.GDConfig{Step: 0.05, MaxIter: 15, Backtracking: true}
	if _, err := opt.GradientDescent(opt.DenseData{M: xJoined}, star.Y, opt.Squared{}, gd); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("relational join + materialized training: %v (%d joined rows)\n",
		time.Since(start).Round(time.Millisecond), joined.NumRows())

	// --- Path 2: factorized learning --------------------------------------
	design, err := factorized.NewDesign(star.FactX, star.FKs, star.DimX)
	if err != nil {
		log.Fatal(err)
	}
	start = time.Now()
	if _, err := opt.GradientDescent(design, star.Y, opt.Squared{}, gd); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("factorized training (no join):            %v (predicted per-iter speedup %.1fx)\n",
		time.Since(start).Round(time.Millisecond), design.Speedup())

	// --- Path 3: let the planner decide ------------------------------------
	res, err := core.TrainNormalized(design, star.Y, core.Task{
		Loss: core.SquaredLoss, L2: 0.01, MaxIter: 15,
	}, core.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nplanner chose: %s (loss %.4f)\n", res.Plan, res.FinalLoss)
	fmt.Print(core.ExplainString(res.Explain))

	// --- Hamlet: could we skip a join altogether? ---------------------------
	fmt.Println("\nHamlet join-avoidance rule:")
	for k, name := range []string{"customers", "products"} {
		dec, err := hamlet.DefaultRule().Decide(
			star.Config.FactRows, star.Config.DimRows[k],
			star.Config.FactFeats, star.Config.DimFeats[k])
		if err != nil {
			log.Fatal(err)
		}
		verdict := "keep the join"
		if dec.Avoid {
			verdict = "safe to avoid the join"
		}
		fmt.Printf("  %-10s TR=%-6.0f FR=%-5.2f → %s (%s)\n",
			name, dec.TupleRatio, dec.FeatureRatio, verdict, dec.Reason)
	}
}
