// Model search scenario: hyperparameter tuning with bandit pruning and a
// ModelDB-style registry.
//
// We sweep a 32-point grid of (step, l2) configs for a logistic-regression
// SGD model, comparing exhaustive grid search against TuPAQ-style successive
// halving, and record every run — dataset hash, config, metrics, lineage —
// in a model registry that we then query and persist.
//
//	go run ./examples/model_search
package main

import (
	"fmt"
	"log"
	"math/rand"
	"os"
	"path/filepath"
	"time"

	"dmml/internal/modeldb"
	"dmml/internal/modelsel"
	"dmml/internal/workload"
)

func main() {
	r := rand.New(rand.NewSource(99))
	n := 40000
	x, y, _ := workload.Classification(r, n, 24, 0.05)
	split := n * 3 / 4
	trainIdx, valIdx := seq(0, split), seq(split, n)
	trainer := &modelsel.SGDTrainer{
		XTrain: x.SelectRows(trainIdx), YTrain: pick(y, trainIdx),
		XVal: x.SelectRows(valIdx), YVal: pick(y, valIdx),
		Seed: 5,
	}
	configs := modelsel.Grid(map[string][]float64{
		"step": {0.001, 0.01, 0.05, 0.1, 0.5, 1, 2, 5},
		"l2":   {0, 1e-4, 1e-2, 1e-1},
	})
	store := modeldb.NewStore()
	dataHash := modeldb.DatasetHash(x, y)

	// Exhaustive grid.
	start := time.Now()
	gridRes, gridStats, err := modelsel.EvaluateAll(trainer, configs, 16)
	if err != nil {
		log.Fatal(err)
	}
	gridTime := time.Since(start)

	// Successive halving.
	start = time.Now()
	shRes, shStats, err := modelsel.SuccessiveHalving(trainer, configs, 1, 16, 2)
	if err != nil {
		log.Fatal(err)
	}
	shTime := time.Since(start)

	fmt.Printf("grid:               best acc %.4f using %4d epochs in %v\n",
		gridRes[0].Score, gridStats.TotalEpochs, gridTime.Round(time.Millisecond))
	fmt.Printf("successive halving: best acc %.4f using %4d epochs in %v (%.1fx fewer epochs)\n",
		shRes[0].Score, shStats.TotalEpochs, shTime.Round(time.Millisecond),
		float64(gridStats.TotalEpochs)/float64(shStats.TotalEpochs))

	// Log every evaluated config into the registry with lineage.
	parent := -1
	for i := len(shRes) - 1; i >= 0; i-- {
		res := shRes[i]
		run, err := store.Log(modeldb.Spec{
			Name:        "churn-logistic",
			DatasetHash: dataHash,
			Transforms:  []string{"none"},
			Config:      res.Config,
			Metrics:     map[string]float64{"val_acc": res.Score, "epochs": float64(res.Epochs)},
			ParentID:    parent,
			Tags:        []string{"successive-halving"},
		})
		if err != nil {
			log.Fatal(err)
		}
		parent = run.ID
	}

	best, err := store.Best("churn-logistic", "val_acc", true)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nregistry: %d runs logged; best val_acc %.4f with config %v\n",
		store.NumRuns(), best.Metrics["val_acc"], best.Config)
	chain, err := store.Lineage(best.ID)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("lineage depth of best run: %d\n", len(chain))

	survivors := store.Query(func(run modeldb.Run) bool {
		return run.Metrics["epochs"] >= 16
	})
	fmt.Printf("configs that survived to the full budget: %d\n", len(survivors))

	// Persist and reload the registry.
	path := filepath.Join(os.TempDir(), "dmml-modeldb.json")
	fh, err := os.Create(path)
	if err != nil {
		log.Fatal(err)
	}
	if err := store.Save(fh); err != nil {
		log.Fatal(err)
	}
	fh.Close()
	fmt.Printf("registry saved to %s\n", path)
}

func seq(lo, hi int) []int {
	out := make([]int, hi-lo)
	for i := range out {
		out[i] = lo + i
	}
	return out
}

func pick(xs []float64, idx []int) []float64 {
	out := make([]float64, len(idx))
	for i, j := range idx {
		out[i] = xs[j]
	}
	return out
}
