// Quickstart: train a classifier through dmml's cost-based planner.
//
// The planner looks at the data (size, compressibility), the task (loss,
// iterations) and the memory budget, enumerates physical plans, and executes
// the cheapest — printing an EXPLAIN-style plan table along the way.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"math/rand"

	"dmml/internal/core"
	"dmml/internal/la"
	"dmml/internal/ml"
	"dmml/internal/workload"
)

func main() {
	r := rand.New(rand.NewSource(42))

	// A mildly noisy binary classification problem.
	x, y, _ := workload.Classification(r, 50000, 20, 0.03)

	res, err := core.TrainJoined(x, y, core.Task{
		Loss:    core.LogisticLoss,
		L2:      1e-4,
		MaxIter: 50,
	}, core.Options{})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("plan table (cheapest first, * = chosen):")
	fmt.Print(core.ExplainString(res.Explain))
	fmt.Printf("\nchosen plan: %s\n", res.Plan)
	fmt.Printf("final training loss: %.4f\n", res.FinalLoss)

	// Evaluate the model.
	pred := make([]float64, len(y))
	for i := range pred {
		if la.Dot(res.W, x.RowView(i)) >= 0 {
			pred[i] = 1
		} else {
			pred[i] = -1
		}
	}
	fmt.Printf("training accuracy: %.4f\n", ml.Accuracy(pred, y))
}
