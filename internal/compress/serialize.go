package compress

import (
	"fmt"
	"math"
)

// Page codec: serialize a compressed Matrix into a flat []float64 so it can
// live in a storage.BufferPool page (the pool's unit of residency and spill).
// Every word is one float64; integers are stored as exact small floats and
// narrow payloads (codes, offsets) are bit-packed into words via
// math.Float64bits, which round-trips through the pool's spill format
// bit-for-bit. DecodePage returns a Matrix whose dictionaries and UC columns
// alias the page slice (zero copy) — the caller must keep the page pinned for
// the lifetime of the decoded Matrix.

// Group kind tags in the page encoding.
const (
	pkDDC1 = 0
	pkDDC2 = 1
	pkOLE  = 2
	pkRLE  = 3
	pkUC   = 4
)

// pageMagic guards against decoding a page that is not a compressed block
// (e.g. a raw dense page handed to the wrong decoder).
const pageMagic = 0x434c4131 // "CLA1"

// EncodedLen returns the exact number of float64 words EncodeInto will write
// for m, so callers can pin a pool page of that size first.
func EncodedLen(m *Matrix) int {
	n := 4 // magic, rows, cols, numGroups
	for _, g := range m.groups {
		n += encodedGroupLen(g)
	}
	return n
}

func encodedGroupLen(g Group) int {
	switch g := g.(type) {
	case *DDCGroup:
		n := 2 + dictLen(&g.d) // kind, dict, rows
		if g.codes8 != nil {
			n += (len(g.codes8) + 7) / 8
		} else {
			n += (len(g.codes) + 3) / 4
		}
		return n
	case *OLEGroup:
		n := 2 + dictLen(&g.d) // kind, rows
		for _, offs := range g.offsets {
			n += 1 + (len(offs)+1)/2
		}
		return n
	case *RLEGroup:
		n := 2 + dictLen(&g.d)
		for _, rs := range g.runs {
			n += 1 + (len(rs)+1)/2
		}
		return n
	case *UCGroup:
		return 3 + len(g.data) // kind, col, n, data
	default:
		panic(fmt.Sprintf("compress: EncodedLen: unknown group type %T", g))
	}
}

func dictLen(d *dict) int {
	return 2 + len(d.cols) + len(d.vals) // w, cols, ne, vals (ne folded into w word pair)
}

// EncodeInto serializes m into dst, which must be exactly EncodedLen(m) words.
func EncodeInto(dst []float64, m *Matrix) error {
	if len(dst) != EncodedLen(m) {
		return fmt.Errorf("compress: EncodeInto dst len %d, want %d", len(dst), EncodedLen(m))
	}
	w := &pageWriter{buf: dst}
	w.putInt(pageMagic)
	w.putInt(m.rows)
	w.putInt(m.cols)
	w.putInt(len(m.groups))
	for _, g := range m.groups {
		switch g := g.(type) {
		case *DDCGroup:
			if g.codes8 != nil {
				w.putInt(pkDDC1)
				w.putDict(&g.d)
				w.putInt(g.rows)
				w.putPacked8(g.codes8)
			} else {
				w.putInt(pkDDC2)
				w.putDict(&g.d)
				w.putInt(g.rows)
				w.putPacked16(g.codes)
			}
		case *OLEGroup:
			w.putInt(pkOLE)
			w.putDict(&g.d)
			w.putInt(g.rows)
			for _, offs := range g.offsets {
				w.putInt(len(offs))
				w.putPacked32(offs)
			}
		case *RLEGroup:
			w.putInt(pkRLE)
			w.putDict(&g.d)
			w.putInt(g.rows)
			for _, rs := range g.runs {
				w.putInt(len(rs))
				w.putPacked32(rs)
			}
		case *UCGroup:
			w.putInt(pkUC)
			w.putInt(g.col)
			w.putInt(len(g.data))
			w.putFloats(g.data)
		default:
			return fmt.Errorf("compress: EncodeInto: unknown group type %T", g)
		}
	}
	if w.off != len(dst) {
		return fmt.Errorf("compress: EncodeInto wrote %d words, want %d", w.off, len(dst))
	}
	return nil
}

// DecodePage reconstructs a Matrix from a page written by EncodeInto. The
// returned Matrix's dictionary values and UC columns alias data; keep the
// backing page pinned while the Matrix is in use. Codes, offsets, and runs
// are unpacked into freshly allocated slices.
func DecodePage(data []float64) (*Matrix, error) {
	r := &pageReader{buf: data}
	magic, err := r.int()
	if err != nil {
		return nil, err
	}
	if magic != pageMagic {
		return nil, fmt.Errorf("compress: DecodePage: bad magic %#x", magic)
	}
	m := &Matrix{}
	if m.rows, err = r.int(); err != nil {
		return nil, err
	}
	if m.cols, err = r.int(); err != nil {
		return nil, err
	}
	ng, err := r.int()
	if err != nil {
		return nil, err
	}
	m.groups = make([]Group, 0, ng)
	for gi := 0; gi < ng; gi++ {
		kind, err := r.int()
		if err != nil {
			return nil, err
		}
		var g Group
		switch kind {
		case pkDDC1, pkDDC2:
			d, err := r.dict()
			if err != nil {
				return nil, err
			}
			rows, err := r.int()
			if err != nil {
				return nil, err
			}
			dg := &DDCGroup{d: d, rows: rows}
			if kind == pkDDC1 {
				if dg.codes8, err = r.packed8(rows); err != nil {
					return nil, err
				}
			} else {
				if dg.codes, err = r.packed16(rows); err != nil {
					return nil, err
				}
			}
			g = dg
		case pkOLE, pkRLE:
			d, err := r.dict()
			if err != nil {
				return nil, err
			}
			rows, err := r.int()
			if err != nil {
				return nil, err
			}
			ne := d.numEntries()
			lists := make([][]int32, ne)
			for t := 0; t < ne; t++ {
				n, err := r.int()
				if err != nil {
					return nil, err
				}
				if lists[t], err = r.packed32(n); err != nil {
					return nil, err
				}
			}
			if kind == pkOLE {
				g = &OLEGroup{d: d, offsets: lists, rows: rows}
			} else {
				g = &RLEGroup{d: d, runs: lists, rows: rows}
			}
		case pkUC:
			col, err := r.int()
			if err != nil {
				return nil, err
			}
			n, err := r.int()
			if err != nil {
				return nil, err
			}
			vals, err := r.floats(n)
			if err != nil {
				return nil, err
			}
			g = &UCGroup{col: col, data: vals}
		default:
			return nil, fmt.Errorf("compress: DecodePage: group %d has unknown kind %d", gi, kind)
		}
		m.groups = append(m.groups, g)
	}
	if r.off != len(data) {
		return nil, fmt.Errorf("compress: DecodePage: %d trailing words", len(data)-r.off)
	}
	return m, nil
}

// --- writer ---------------------------------------------------------------

type pageWriter struct {
	buf []float64
	off int
}

func (w *pageWriter) putInt(v int) {
	w.buf[w.off] = float64(v)
	w.off++
}

func (w *pageWriter) putFloats(vals []float64) {
	copy(w.buf[w.off:], vals)
	w.off += len(vals)
}

func (w *pageWriter) putDict(d *dict) {
	w.putInt(len(d.cols))
	for _, c := range d.cols {
		w.putInt(c)
	}
	w.putInt(d.numEntries())
	w.putFloats(d.vals)
}

func (w *pageWriter) putPacked8(codes []uint8) {
	for i := 0; i < len(codes); i += 8 {
		var word uint64
		for j := 0; j < 8 && i+j < len(codes); j++ {
			word |= uint64(codes[i+j]) << (8 * j)
		}
		w.buf[w.off] = math.Float64frombits(word)
		w.off++
	}
}

func (w *pageWriter) putPacked16(codes []uint16) {
	for i := 0; i < len(codes); i += 4 {
		var word uint64
		for j := 0; j < 4 && i+j < len(codes); j++ {
			word |= uint64(codes[i+j]) << (16 * j)
		}
		w.buf[w.off] = math.Float64frombits(word)
		w.off++
	}
}

func (w *pageWriter) putPacked32(vals []int32) {
	for i := 0; i < len(vals); i += 2 {
		word := uint64(uint32(vals[i]))
		if i+1 < len(vals) {
			word |= uint64(uint32(vals[i+1])) << 32
		}
		w.buf[w.off] = math.Float64frombits(word)
		w.off++
	}
}

// --- reader ---------------------------------------------------------------

type pageReader struct {
	buf []float64
	off int
}

func (r *pageReader) int() (int, error) {
	if r.off >= len(r.buf) {
		return 0, fmt.Errorf("compress: DecodePage: truncated page at word %d", r.off)
	}
	v := r.buf[r.off]
	r.off++
	n := int(v)
	if float64(n) != v || n < 0 {
		return 0, fmt.Errorf("compress: DecodePage: word %d = %v is not a non-negative int", r.off-1, v)
	}
	return n, nil
}

func (r *pageReader) floats(n int) ([]float64, error) {
	if r.off+n > len(r.buf) {
		return nil, fmt.Errorf("compress: DecodePage: truncated page at word %d (need %d floats)", r.off, n)
	}
	v := r.buf[r.off : r.off+n : r.off+n]
	r.off += n
	return v, nil
}

func (r *pageReader) dict() (dict, error) {
	w, err := r.int()
	if err != nil {
		return dict{}, err
	}
	if w == 0 {
		return dict{}, fmt.Errorf("compress: DecodePage: empty dictionary column set")
	}
	cols := make([]int, w)
	for i := range cols {
		if cols[i], err = r.int(); err != nil {
			return dict{}, err
		}
	}
	ne, err := r.int()
	if err != nil {
		return dict{}, err
	}
	vals, err := r.floats(ne * w)
	if err != nil {
		return dict{}, err
	}
	return dict{cols: cols, vals: vals}, nil
}

func (r *pageReader) words(n int) ([]float64, error) {
	return r.floats(n)
}

// The packed decoders run on every block pin, so they unpack a full word per
// loop iteration instead of re-loading and re-shifting the word per code.

func (r *pageReader) packed8(n int) ([]uint8, error) {
	ws, err := r.words((n + 7) / 8)
	if err != nil {
		return nil, err
	}
	out := make([]uint8, n)
	i := 0
	for ; i+8 <= n; i += 8 {
		w := math.Float64bits(ws[i>>3])
		out[i] = uint8(w)
		out[i+1] = uint8(w >> 8)
		out[i+2] = uint8(w >> 16)
		out[i+3] = uint8(w >> 24)
		out[i+4] = uint8(w >> 32)
		out[i+5] = uint8(w >> 40)
		out[i+6] = uint8(w >> 48)
		out[i+7] = uint8(w >> 56)
	}
	if i < n {
		w := math.Float64bits(ws[len(ws)-1])
		for ; i < n; i++ {
			out[i] = uint8(w)
			w >>= 8
		}
	}
	return out, nil
}

func (r *pageReader) packed16(n int) ([]uint16, error) {
	ws, err := r.words((n + 3) / 4)
	if err != nil {
		return nil, err
	}
	out := make([]uint16, n)
	i := 0
	for ; i+4 <= n; i += 4 {
		w := math.Float64bits(ws[i>>2])
		out[i] = uint16(w)
		out[i+1] = uint16(w >> 16)
		out[i+2] = uint16(w >> 32)
		out[i+3] = uint16(w >> 48)
	}
	if i < n {
		w := math.Float64bits(ws[len(ws)-1])
		for ; i < n; i++ {
			out[i] = uint16(w)
			w >>= 16
		}
	}
	return out, nil
}

func (r *pageReader) packed32(n int) ([]int32, error) {
	ws, err := r.words((n + 1) / 2)
	if err != nil {
		return nil, err
	}
	out := make([]int32, n)
	i := 0
	for ; i+2 <= n; i += 2 {
		w := math.Float64bits(ws[i>>1])
		out[i] = int32(uint32(w))
		out[i+1] = int32(uint32(w >> 32))
	}
	if i < n {
		out[i] = int32(uint32(math.Float64bits(ws[len(ws)-1])))
	}
	return out, nil
}
