package compress

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"dmml/internal/la"
)

// mixedMatrix builds a matrix with one column per regime: low-cardinality
// categorical, run-heavy sorted categorical, sparse, and continuous.
func mixedMatrix(r *rand.Rand, rows int) *la.Dense {
	m := la.NewDense(rows, 4)
	run := 0
	runVal := 0.0
	for i := 0; i < rows; i++ {
		m.Set(i, 0, float64(r.Intn(5)))
		if run == 0 {
			run = 1 + r.Intn(50)
			runVal = float64(1 + r.Intn(3))
		}
		m.Set(i, 1, runVal)
		run--
		if r.Float64() < 0.05 {
			m.Set(i, 2, float64(1+r.Intn(4)))
		}
		m.Set(i, 3, r.NormFloat64())
	}
	return m
}

func vecOf(r *rand.Rand, n int) []float64 {
	v := make([]float64, n)
	for i := range v {
		v[i] = r.NormFloat64()
	}
	return v
}

func TestCompressDecompressRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(30))
	m := mixedMatrix(r, 500)
	for _, opts := range []Options{{}, {CoCode: true}, {Force: ForceDDC}, {Force: ForceOLE}, {Force: ForceRLE}, {Force: ForceUC}} {
		c := Compress(m, opts)
		if !c.Decompress().Equal(m, 0) {
			t.Fatalf("round trip failed for opts %+v (groups %v)", opts, c.GroupInfo())
		}
	}
}

func TestMatVecMatchesDense(t *testing.T) {
	r := rand.New(rand.NewSource(31))
	m := mixedMatrix(r, 800)
	c := Compress(m, Options{CoCode: true})
	v := vecOf(r, 4)
	got := c.MatVec(v)
	want := la.MatVec(m, v)
	for i := range got {
		if math.Abs(got[i]-want[i]) > 1e-9 {
			t.Fatalf("MatVec[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestVecMatMatchesDense(t *testing.T) {
	r := rand.New(rand.NewSource(32))
	m := mixedMatrix(r, 700)
	c := Compress(m, Options{})
	x := vecOf(r, 700)
	got := c.VecMat(x)
	want := la.VecMat(x, m)
	for j := range got {
		if math.Abs(got[j]-want[j]) > 1e-8 {
			t.Fatalf("VecMat[%d] = %v, want %v", j, got[j], want[j])
		}
	}
}

func TestAggregatesMatchDense(t *testing.T) {
	r := rand.New(rand.NewSource(33))
	m := mixedMatrix(r, 600)
	c := Compress(m, Options{CoCode: true})
	gotSums := c.ColSums()
	wantSums := m.ColSums()
	for j := range gotSums {
		if math.Abs(gotSums[j]-wantSums[j]) > 1e-8 {
			t.Fatalf("ColSums[%d] = %v, want %v", j, gotSums[j], wantSums[j])
		}
	}
	if math.Abs(c.Sum()-m.Sum()) > 1e-7 {
		t.Fatalf("Sum = %v, want %v", c.Sum(), m.Sum())
	}
	if math.Abs(c.SumSq()-m.SumSq()) > 1e-7 {
		t.Fatalf("SumSq = %v, want %v", c.SumSq(), m.SumSq())
	}
}

func TestScaleIsDictionaryOnly(t *testing.T) {
	r := rand.New(rand.NewSource(34))
	m := mixedMatrix(r, 400)
	c := Compress(m, Options{})
	c.Scale(2.5)
	want := m.Clone().Scale(2.5)
	if !c.Decompress().Equal(want, 1e-12) {
		t.Fatal("Scale mismatch")
	}
}

func TestPlannerPicksExpectedEncodings(t *testing.T) {
	rows := 4000
	m := la.NewDense(rows, 3)
	r := rand.New(rand.NewSource(35))
	for i := 0; i < rows; i++ {
		m.Set(i, 0, float64(r.Intn(4))) // low card → DDC
		if r.Float64() < 0.01 {         // 1% dense → OLE
			m.Set(i, 1, 1)
		}
		m.Set(i, 2, r.NormFloat64()) // continuous → UC
	}
	c := Compress(m, Options{})
	encByCol := map[int]string{}
	for _, g := range c.Groups() {
		for _, col := range g.Cols() {
			encByCol[col] = g.Encoding()
		}
	}
	if encByCol[0] != "DDC1" {
		t.Fatalf("col 0 encoding = %s, want DDC1", encByCol[0])
	}
	if encByCol[1] != "OLE" && encByCol[1] != "RLE" {
		t.Fatalf("col 1 encoding = %s, want OLE or RLE", encByCol[1])
	}
	if encByCol[2] != "UC" {
		t.Fatalf("col 2 encoding = %s, want UC", encByCol[2])
	}
}

func TestRLEChosenForSortedData(t *testing.T) {
	rows := 5000
	m := la.NewDense(rows, 1)
	for i := 0; i < rows; i++ {
		m.Set(i, 0, float64(1+i/500)) // 10 long runs
	}
	c := Compress(m, Options{})
	if enc := c.Groups()[0].Encoding(); enc != "RLE" {
		t.Fatalf("encoding = %s, want RLE", enc)
	}
	if ratio := c.CompressionRatio(); ratio < 100 {
		t.Fatalf("compression ratio = %v, want > 100 for 10 runs over 5000 rows", ratio)
	}
}

func TestCompressionRatioGrowsWithRedundancy(t *testing.T) {
	rows := 2000
	r := rand.New(rand.NewSource(36))
	lowCard := la.NewDense(rows, 2)
	highCard := la.NewDense(rows, 2)
	for i := 0; i < rows; i++ {
		lowCard.Set(i, 0, float64(r.Intn(3)))
		lowCard.Set(i, 1, float64(r.Intn(2)))
		highCard.Set(i, 0, r.NormFloat64())
		highCard.Set(i, 1, r.NormFloat64())
	}
	rl := Compress(lowCard, Options{}).CompressionRatio()
	rh := Compress(highCard, Options{}).CompressionRatio()
	if rl <= 4 {
		t.Fatalf("low-cardinality ratio = %v, want > 4", rl)
	}
	if rh > 1.1 {
		t.Fatalf("high-cardinality ratio = %v, want ≈ 1 (UC fallback)", rh)
	}
}

func TestCoCodingMergesCorrelatedColumns(t *testing.T) {
	rows := 3000
	m := la.NewDense(rows, 2)
	r := rand.New(rand.NewSource(37))
	for i := 0; i < rows; i++ {
		v := float64(r.Intn(4))
		m.Set(i, 0, v)
		m.Set(i, 1, v*10) // perfectly correlated: joint card == single card
	}
	c := Compress(m, Options{CoCode: true})
	if len(c.Groups()) != 1 {
		t.Fatalf("groups = %v, want a single co-coded group", c.GroupInfo())
	}
	if cols := c.Groups()[0].Cols(); len(cols) != 2 {
		t.Fatalf("co-coded group covers %v", cols)
	}
	if !c.Decompress().Equal(m, 0) {
		t.Fatal("co-coded round trip failed")
	}
	// Ops still match dense.
	v := []float64{1.5, -2}
	got := c.MatVec(v)
	want := la.MatVec(m, v)
	for i := range got {
		if math.Abs(got[i]-want[i]) > 1e-10 {
			t.Fatalf("co-coded MatVec[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestDDC2ForMediumCardinality(t *testing.T) {
	rows := 20000
	m := la.NewDense(rows, 1)
	r := rand.New(rand.NewSource(38))
	for i := 0; i < rows; i++ {
		m.Set(i, 0, float64(r.Intn(1000))) // card ≈ 1000 → DDC2
	}
	c := Compress(m, Options{})
	if enc := c.Groups()[0].Encoding(); enc != "DDC2" {
		t.Fatalf("encoding = %s, want DDC2", enc)
	}
	if !c.Decompress().Equal(m, 0) {
		t.Fatal("DDC2 round trip failed")
	}
}

// Property: every op over a compressed matrix agrees with the dense op, for
// all planner choices, on random matrices drawn from mixed regimes.
func TestCompressedOpsEquivalenceProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		rows := 50 + r.Intn(300)
		m := mixedMatrix(r, rows)
		c := Compress(m, Options{CoCode: seed%2 == 0})
		v := vecOf(r, 4)
		x := vecOf(r, rows)
		mv, dmv := c.MatVec(v), la.MatVec(m, v)
		for i := range mv {
			if math.Abs(mv[i]-dmv[i]) > 1e-8 {
				return false
			}
		}
		vm, dvm := c.VecMat(x), la.VecMat(x, m)
		for j := range vm {
			if math.Abs(vm[j]-dvm[j]) > 1e-8 {
				return false
			}
		}
		return c.Decompress().Equal(m, 0)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestSizeAccountingConsistency(t *testing.T) {
	r := rand.New(rand.NewSource(39))
	m := mixedMatrix(r, 1000)
	c := Compress(m, Options{})
	total := 0
	for _, g := range c.Groups() {
		if g.SizeBytes() <= 0 {
			t.Fatalf("group %s reports non-positive size", describeGroup(g))
		}
		total += g.SizeBytes()
	}
	if total != c.SizeBytes() {
		t.Fatalf("SizeBytes %d != sum of groups %d", c.SizeBytes(), total)
	}
	if c.DenseSizeBytes() != 8*1000*4 {
		t.Fatalf("DenseSizeBytes = %d", c.DenseSizeBytes())
	}
}

func TestCompressEdgeCases(t *testing.T) {
	// All-zero column: OLE/RLE with an empty dictionary must round trip.
	zero := la.NewDense(100, 1)
	c := Compress(zero, Options{})
	if !c.Decompress().Equal(zero, 0) {
		t.Fatal("all-zero column round trip failed")
	}
	if got := c.MatVec([]float64{3})[0]; got != 0 {
		t.Fatalf("zero column MatVec = %v", got)
	}
	// Constant non-zero column.
	constant := la.NewDense(100, 1)
	constant.Fill(7)
	c = Compress(constant, Options{})
	if !c.Decompress().Equal(constant, 0) {
		t.Fatal("constant column round trip failed")
	}
	if ratio := c.CompressionRatio(); ratio < 20 {
		t.Fatalf("constant column ratio = %v", ratio)
	}
	// Single row.
	single, _ := la.FromRows([][]float64{{1, 0, 2.5}})
	c = Compress(single, Options{CoCode: true})
	if !c.Decompress().Equal(single, 0) {
		t.Fatal("single-row round trip failed")
	}
	// Negative values and -0 handling in the dictionary key.
	neg, _ := la.FromRows([][]float64{{-1}, {1}, {-1}, {0}})
	c = Compress(neg, Options{Force: ForceDDC})
	if !c.Decompress().Equal(neg, 0) {
		t.Fatal("negative values round trip failed")
	}
}

func TestForcedEncodingHonored(t *testing.T) {
	r := rand.New(rand.NewSource(202))
	m := la.NewDense(500, 2)
	for i := 0; i < 500; i++ {
		m.Set(i, 0, float64(r.Intn(3)))
		m.Set(i, 1, float64(r.Intn(3)))
	}
	for _, tc := range []struct {
		force Encoding
		want  string
	}{{ForceOLE, "OLE"}, {ForceRLE, "RLE"}, {ForceUC, "UC"}} {
		c := Compress(m, Options{Force: tc.force})
		for _, g := range c.Groups() {
			if g.Encoding() != tc.want {
				t.Fatalf("forced %v produced %s", tc.force, g.Encoding())
			}
		}
	}
	// ForceDDC with cardinality beyond the cap falls back to UC.
	wide := la.NewDense(300, 1)
	for i := 0; i < 300; i++ {
		wide.Set(i, 0, float64(i))
	}
	c := Compress(wide, Options{Force: ForceDDC, MaxDDCCard: 100})
	if enc := c.Groups()[0].Encoding(); enc != "UC" {
		t.Fatalf("over-cap DDC produced %s, want UC fallback", enc)
	}
}
