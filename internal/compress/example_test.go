package compress_test

import (
	"fmt"

	"dmml/internal/compress"
	"dmml/internal/la"
)

// Compressing a categorical column and operating on it without
// decompression.
func ExampleCompress() {
	// A 12-row categorical column with 3 distinct values.
	m := la.NewDense(12, 1)
	for i := 0; i < 12; i++ {
		m.Set(i, 0, float64(i%3))
	}
	cm := compress.Compress(m, compress.Options{})
	fmt.Println("encoding:", cm.Groups()[0].Encoding())
	fmt.Println("sum over compressed:", cm.Sum())
	fmt.Println("matches dense:", cm.Sum() == m.Sum())
	// Output:
	// encoding: DDC1
	// sum over compressed: 12
	// matches dense: true
}
