package compress

import (
	"math"
	"math/rand"
	"testing"

	"dmml/internal/la"
)

// TestPageCodecRoundTrip checks that every encoding survives the page codec:
// encode to a flat float64 page, decode, and compare the decompressed matrix
// bit-for-bit against the original compressed form.
func TestPageCodecRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(90))
	m := mixedMatrix(r, 777) // odd row count exercises partial pack words
	for _, opts := range []Options{{}, {CoCode: true}, {Force: ForceDDC}, {Force: ForceOLE}, {Force: ForceRLE}, {Force: ForceUC}} {
		c := Compress(m, opts)
		page := make([]float64, EncodedLen(c))
		if err := EncodeInto(page, c); err != nil {
			t.Fatalf("opts %+v: %v", opts, err)
		}
		back, err := DecodePage(page)
		if err != nil {
			t.Fatalf("opts %+v: %v", opts, err)
		}
		if back.Rows() != c.Rows() || back.Cols() != c.Cols() {
			t.Fatalf("opts %+v: dims %dx%d, want %dx%d", opts, back.Rows(), back.Cols(), c.Rows(), c.Cols())
		}
		want, got := c.Decompress(), back.Decompress()
		for i := 0; i < m.Rows(); i++ {
			wr, gr := want.RowView(i), got.RowView(i)
			for j := range wr {
				if math.Float64bits(wr[j]) != math.Float64bits(gr[j]) {
					t.Fatalf("opts %+v: [%d,%d] = %v, want %v", opts, i, j, gr[j], wr[j])
				}
			}
		}
	}
}

// TestPageCodecOpsMatch checks the decoded form computes the same MatVec and
// VecMat as the original compressed matrix, so operate-over-compressed on a
// pool-resident page is exact.
func TestPageCodecOpsMatch(t *testing.T) {
	r := rand.New(rand.NewSource(91))
	m := mixedMatrix(r, 640)
	c := Compress(m, Options{CoCode: true})
	page := make([]float64, EncodedLen(c))
	if err := EncodeInto(page, c); err != nil {
		t.Fatal(err)
	}
	back, err := DecodePage(page)
	if err != nil {
		t.Fatal(err)
	}
	v := vecOf(r, m.Cols())
	x := vecOf(r, m.Rows())
	mv1, mv2 := c.MatVec(v), back.MatVec(v)
	for i := range mv1 {
		if mv1[i] != mv2[i] {
			t.Fatalf("MatVec[%d] = %v via page, want %v", i, mv2[i], mv1[i])
		}
	}
	vm1, vm2 := c.VecMat(x), back.VecMat(x)
	for j := range vm1 {
		if vm1[j] != vm2[j] {
			t.Fatalf("VecMat[%d] = %v via page, want %v", j, vm2[j], vm1[j])
		}
	}
}

// TestPageCodecSpillRoundTrip pushes an encoded page through the buffer
// pool's spill byte format (LittleEndian Float64bits) to prove packed code
// words — which are arbitrary bit patterns, including NaN-space values —
// survive disk round-trips unchanged.
func TestPageCodecSpillRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(92))
	m := mixedMatrix(r, 513)
	c := Compress(m, Options{})
	page := make([]float64, EncodedLen(c))
	if err := EncodeInto(page, c); err != nil {
		t.Fatal(err)
	}
	// Simulate storeLocked/loadLocked.
	bits := make([]uint64, len(page))
	for i, v := range page {
		bits[i] = math.Float64bits(v)
	}
	back := make([]float64, len(bits))
	for i, b := range bits {
		back[i] = math.Float64frombits(b)
	}
	dec, err := DecodePage(back)
	if err != nil {
		t.Fatal(err)
	}
	if !dec.Decompress().Equal(c.Decompress(), 0) {
		t.Fatal("page corrupted by spill-format round trip")
	}
}

func TestPageCodecErrors(t *testing.T) {
	r := rand.New(rand.NewSource(93))
	c := Compress(mixedMatrix(r, 64), Options{})
	page := make([]float64, EncodedLen(c))
	if err := EncodeInto(page[:len(page)-1], c); err == nil {
		t.Fatal("want error for short dst")
	}
	if err := EncodeInto(page, c); err != nil {
		t.Fatal(err)
	}
	if _, err := DecodePage(page[:len(page)-1]); err == nil {
		t.Fatal("want error for truncated page")
	}
	bad := append([]float64(nil), page...)
	bad[0] = 12345 // wrong magic
	if _, err := DecodePage(bad); err == nil {
		t.Fatal("want error for bad magic")
	}
	if _, err := DecodePage([]float64{float64(pageMagic), 4, 4, 1, 99}); err == nil {
		t.Fatal("want error for unknown group kind")
	}
}

func TestEncodedLenTracksSize(t *testing.T) {
	// The page form should be close to SizeBytes (same dictionaries, packed
	// codes), far below the dense form for compressible data.
	rows := 4000
	m := la.NewDense(rows, 3)
	r := rand.New(rand.NewSource(94))
	for i := 0; i < rows; i++ {
		m.Set(i, 0, float64(r.Intn(4)))
		m.Set(i, 1, float64(r.Intn(8)))
		m.Set(i, 2, float64(r.Intn(2)))
	}
	c := Compress(m, Options{})
	pageBytes := 8 * EncodedLen(c)
	if dense := 8 * rows * 3; pageBytes*2 >= dense {
		t.Fatalf("page form %dB not <50%% of dense %dB for low-cardinality data", pageBytes, dense)
	}
}
