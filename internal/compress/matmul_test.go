package compress

import (
	"math/rand"
	"testing"

	"dmml/internal/la"
)

func TestMatMulDenseMatchesDense(t *testing.T) {
	r := rand.New(rand.NewSource(200))
	m := mixedMatrix(r, 300)
	c := Compress(m, Options{CoCode: true})
	w := la.NewDense(4, 3)
	for i := 0; i < 4; i++ {
		for j := 0; j < 3; j++ {
			w.Set(i, j, r.NormFloat64())
		}
	}
	got, err := c.MatMulDense(w)
	if err != nil {
		t.Fatal(err)
	}
	want := la.MatMul(m, w)
	if !got.Equal(want, 1e-9) {
		t.Fatal("compressed MatMulDense mismatch")
	}
	if _, err := c.MatMulDense(la.NewDense(7, 2)); err == nil {
		t.Fatal("want shape error")
	}
}

func TestCompressedColAndGram(t *testing.T) {
	r := rand.New(rand.NewSource(201))
	m := mixedMatrix(r, 400)
	c := Compress(m, Options{CoCode: true})
	for j := 0; j < 4; j++ {
		col, err := c.Col(j)
		if err != nil {
			t.Fatal(err)
		}
		want := m.Col(j)
		for i := range col {
			if col[i] != want[i] {
				t.Fatalf("Col(%d)[%d] = %v, want %v", j, i, col[i], want[i])
			}
		}
	}
	if _, err := c.Col(9); err == nil {
		t.Fatal("want range error")
	}
	if !c.Gram().Equal(la.Gram(m), 1e-8) {
		t.Fatal("compressed Gram mismatch")
	}
}
