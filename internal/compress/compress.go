package compress

import (
	"fmt"
	"sort"

	"dmml/internal/la"
)

// Encoding identifies a physical column encoding for forcing/tuning.
type Encoding int

// Encoding values. Auto lets the planner choose per column.
const (
	Auto Encoding = iota
	ForceDDC
	ForceOLE
	ForceRLE
	ForceUC
)

// Options tunes the compression planner.
type Options struct {
	// Force overrides the per-column encoding choice (Auto = cost-based).
	Force Encoding
	// CoCode enables greedy pairwise column co-coding of low-cardinality
	// columns, as in CLA's column group partitioning.
	CoCode bool
	// MaxDDCCard caps the dictionary size for DDC (default 65536).
	MaxDDCCard int
}

func (o Options) withDefaults() Options {
	if o.MaxDDCCard <= 0 {
		o.MaxDDCCard = 1 << 16
	}
	return o
}

// Matrix is a compressed matrix: a set of column groups jointly covering all
// columns. All read ops match the semantics of the equivalent la.Dense ops.
type Matrix struct {
	rows, cols int
	groups     []Group
}

// Dims returns the logical matrix dimensions.
func (c *Matrix) Dims() (rows, cols int) { return c.rows, c.cols }

// Rows returns the number of rows.
func (c *Matrix) Rows() int { return c.rows }

// Cols returns the number of columns.
func (c *Matrix) Cols() int { return c.cols }

// Groups returns the column groups (read-only use expected).
func (c *Matrix) Groups() []Group { return c.groups }

// GroupInfo returns a human-readable encoding summary, sorted for stability.
func (c *Matrix) GroupInfo() []string {
	out := make([]string, len(c.groups))
	for i, g := range c.groups {
		out[i] = describeGroup(g)
	}
	sort.Strings(out)
	return out
}

// MatVec returns X·v over the compressed representation.
func (c *Matrix) MatVec(v []float64) []float64 {
	if len(v) != c.cols {
		panic(fmt.Sprintf("compress: MatVec %dx%d × len %d", c.rows, c.cols, len(v)))
	}
	out := make([]float64, c.rows)
	for _, g := range c.groups {
		g.MatVecAccum(out, v)
	}
	return out
}

// VecMat returns xᵀ·X over the compressed representation.
func (c *Matrix) VecMat(x []float64) []float64 {
	if len(x) != c.rows {
		panic(fmt.Sprintf("compress: VecMat len %d × %dx%d", len(x), c.rows, c.cols))
	}
	out := make([]float64, c.cols)
	for _, g := range c.groups {
		g.VecMatAccum(out, x)
	}
	return out
}

// ColSums returns per-column sums.
func (c *Matrix) ColSums() []float64 {
	out := make([]float64, c.cols)
	for _, g := range c.groups {
		g.ColSumsAccum(out)
	}
	return out
}

// ColSumSq returns per-column sums of squares.
func (c *Matrix) ColSumSq() []float64 {
	out := make([]float64, c.cols)
	for _, g := range c.groups {
		g.ColSumSqAccum(out)
	}
	return out
}

// Sum returns the sum of all elements.
func (c *Matrix) Sum() float64 { return la.SumVec(c.ColSums()) }

// SumSq returns the squared Frobenius norm.
func (c *Matrix) SumSq() float64 { return la.SumVec(c.ColSumSq()) }

// Scale multiplies all elements by s. For dictionary encodings this touches
// only the (small) dictionaries — the CLA argument for cheap scalar ops.
func (c *Matrix) Scale(s float64) {
	for _, g := range c.groups {
		g.Scale(s)
	}
}

// Decompress materializes the dense equivalent.
func (c *Matrix) Decompress() *la.Dense {
	m := la.NewDense(c.rows, c.cols)
	for _, g := range c.groups {
		g.DecompressInto(m)
	}
	return m
}

// SizeBytes estimates the compressed footprint.
func (c *Matrix) SizeBytes() int {
	n := 0
	for _, g := range c.groups {
		n += g.SizeBytes()
	}
	return n
}

// DenseSizeBytes is the footprint of the uncompressed equivalent.
func (c *Matrix) DenseSizeBytes() int { return 8 * c.rows * c.cols }

// CompressionRatio returns dense bytes / compressed bytes.
func (c *Matrix) CompressionRatio() float64 {
	return float64(c.DenseSizeBytes()) / float64(c.SizeBytes())
}

// colStats holds exact per-column statistics driving the encoding choice.
type colStats struct {
	card    int // distinct values including zero if present
	nzCard  int // distinct non-zero values
	nzRows  int // rows with non-zero value
	nzRuns  int // maximal runs of equal non-zero values
	rows    int
	isConst bool
}

func computeColStats(col []float64) colStats {
	st := colStats{rows: len(col)}
	distinct := make(map[float64]struct{})
	prev, inRun := 0.0, false
	for _, v := range col {
		distinct[v] = struct{}{}
		if v != 0 {
			st.nzRows++
			if !inRun || v != prev {
				st.nzRuns++
			}
			inRun = true
		} else {
			inRun = false
		}
		prev = v
	}
	st.card = len(distinct)
	if _, hasZero := distinct[0]; hasZero {
		st.nzCard = st.card - 1
	} else {
		st.nzCard = st.card
	}
	st.isConst = st.card == 1
	return st
}

// Size estimates (bytes) per encoding, mirroring CLA's compression planning.
func (st colStats) ddcSize(maxCard int) (int, bool) {
	if st.card > maxCard {
		return 0, false
	}
	codeBytes := 1
	if st.card > 256 {
		codeBytes = 2
	}
	return st.rows*codeBytes + st.card*8, true
}

func (st colStats) oleSize() int { return st.nzCard*8 + st.nzRows*4 }

func (st colStats) rleSize() int { return st.nzCard*8 + st.nzRuns*8 }

func (st colStats) ucSize() int { return st.rows * 8 }

// Compress builds a compressed Matrix from a dense one using exact column
// statistics and a minimum-size encoding choice per column (optionally with
// pairwise co-coding).
func Compress(m *la.Dense, opts Options) *Matrix {
	opts = opts.withDefaults()
	rows, cols := m.Dims()
	c := &Matrix{rows: rows, cols: cols}

	columns := make([][]float64, cols)
	stats := make([]colStats, cols)
	for j := 0; j < cols; j++ {
		columns[j] = m.Col(j)
		stats[j] = computeColStats(columns[j])
	}

	chosen := make([]Encoding, cols)
	for j := 0; j < cols; j++ {
		chosen[j] = chooseEncoding(stats[j], opts)
	}

	used := make([]bool, cols)
	if opts.CoCode {
		// Greedy pairwise co-coding of DDC columns: merge a pair when the
		// combined DDC size beats the sum of the separate sizes.
		for a := 0; a < cols; a++ {
			if used[a] || chosen[a] != ForceDDC {
				continue
			}
			bestB, bestGain := -1, 0
			sizeA, _ := stats[a].ddcSize(opts.MaxDDCCard)
			for b := a + 1; b < cols; b++ {
				if used[b] || chosen[b] != ForceDDC {
					continue
				}
				sizeB, _ := stats[b].ddcSize(opts.MaxDDCCard)
				jointCard := jointCardinality(columns[a], columns[b])
				if jointCard > opts.MaxDDCCard {
					continue
				}
				codeBytes := 1
				if jointCard > 256 {
					codeBytes = 2
				}
				jointSize := rows*codeBytes + jointCard*16
				if gain := sizeA + sizeB - jointSize; gain > bestGain {
					bestGain, bestB = gain, b
				}
			}
			if bestB >= 0 {
				c.groups = append(c.groups, buildDDC([]int{a, bestB}, [][]float64{columns[a], columns[bestB]}))
				used[a], used[bestB] = true, true
			}
		}
	}

	for j := 0; j < cols; j++ {
		if used[j] {
			continue
		}
		c.groups = append(c.groups, buildGroup(j, columns[j], chosen[j]))
	}
	return c
}

func chooseEncoding(st colStats, opts Options) Encoding {
	if opts.Force != Auto {
		if opts.Force == ForceDDC {
			if _, ok := st.ddcSize(opts.MaxDDCCard); !ok {
				return ForceUC
			}
		}
		return opts.Force
	}
	best, bestSize := ForceUC, st.ucSize()
	if s, ok := st.ddcSize(opts.MaxDDCCard); ok && s < bestSize {
		best, bestSize = ForceDDC, s
	}
	if s := st.oleSize(); s < bestSize {
		best, bestSize = ForceOLE, s
	}
	if s := st.rleSize(); s < bestSize {
		best = ForceRLE
	}
	return best
}

func jointCardinality(a, b []float64) int {
	seen := make(map[[2]float64]struct{})
	for i := range a {
		seen[[2]float64{a[i], b[i]}] = struct{}{}
	}
	return len(seen)
}

func buildGroup(col int, data []float64, enc Encoding) Group {
	switch enc {
	case ForceDDC:
		return buildDDC([]int{col}, [][]float64{data})
	case ForceOLE:
		return buildOLE(col, data)
	case ForceRLE:
		return buildRLE(col, data)
	default:
		return &UCGroup{col: col, data: la.CloneVec(data)}
	}
}

func buildDDC(cols []int, data [][]float64) *DDCGroup {
	rows := len(data[0])
	w := len(cols)
	type key = string
	// Dictionary keyed on the raw tuple bytes via fmt is slow; use a map on
	// a small struct for w<=2 and fall back to index probing otherwise.
	idx := make(map[key]int)
	var vals []float64
	codes := make([]uint16, rows)
	buf := make([]byte, 0, w*8)
	for i := 0; i < rows; i++ {
		buf = buf[:0]
		for j := 0; j < w; j++ {
			buf = appendFloatKey(buf, data[j][i])
		}
		k := string(buf)
		t, ok := idx[k]
		if !ok {
			t = len(idx)
			idx[k] = t
			for j := 0; j < w; j++ {
				vals = append(vals, data[j][i])
			}
		}
		codes[i] = uint16(t)
	}
	g := &DDCGroup{d: dict{cols: append([]int(nil), cols...), vals: vals}, rows: rows}
	if len(idx) <= 256 {
		g.codes8 = make([]uint8, rows)
		for i, c := range codes {
			g.codes8[i] = uint8(c)
		}
	} else {
		g.codes = codes
	}
	return g
}

func appendFloatKey(buf []byte, v float64) []byte {
	// Bit pattern as key; distinguishes -0 from +0 and all NaN payloads,
	// which is acceptable for dictionary purposes.
	u := floatBits(v)
	return append(buf,
		byte(u), byte(u>>8), byte(u>>16), byte(u>>24),
		byte(u>>32), byte(u>>40), byte(u>>48), byte(u>>56))
}

func buildOLE(col int, data []float64) *OLEGroup {
	idx := make(map[float64]int)
	var vals []float64
	var offsets [][]int32
	for i, v := range data {
		if v == 0 {
			continue
		}
		t, ok := idx[v]
		if !ok {
			t = len(idx)
			idx[v] = t
			vals = append(vals, v)
			offsets = append(offsets, nil)
		}
		offsets[t] = append(offsets[t], int32(i))
	}
	return &OLEGroup{
		d:       dict{cols: []int{col}, vals: vals},
		offsets: offsets,
		rows:    len(data),
	}
}

func buildRLE(col int, data []float64) *RLEGroup {
	idx := make(map[float64]int)
	var vals []float64
	var runs [][]int32
	i := 0
	for i < len(data) {
		v := data[i]
		j := i + 1
		for j < len(data) && data[j] == v {
			j++
		}
		if v != 0 {
			t, ok := idx[v]
			if !ok {
				t = len(idx)
				idx[v] = t
				vals = append(vals, v)
				runs = append(runs, nil)
			}
			runs[t] = append(runs[t], int32(i), int32(j-i))
		}
		i = j
	}
	return &RLEGroup{
		d:    dict{cols: []int{col}, vals: vals},
		runs: runs,
		rows: len(data),
	}
}

// MatMulDense returns X·W for a dense right operand, computed column-by-
// column over the compressed groups (each column is one compressed
// matrix–vector product).
func (c *Matrix) MatMulDense(w *la.Dense) (*la.Dense, error) {
	rows, k := w.Dims()
	if rows != c.cols {
		return nil, fmt.Errorf("compress: MatMulDense %dx%d × %dx%d", c.rows, c.cols, rows, k)
	}
	out := la.NewDense(c.rows, k)
	for j := 0; j < k; j++ {
		col := c.MatVec(w.Col(j))
		for i, v := range col {
			out.Set(i, j, v)
		}
	}
	return out, nil
}

// Col materializes one column as a dense vector. Groups not covering the
// column are skipped, so the cost is proportional to that column's group.
func (c *Matrix) Col(j int) ([]float64, error) {
	if j < 0 || j >= c.cols {
		return nil, fmt.Errorf("compress: column %d out of range for %d cols", j, c.cols)
	}
	ej := make([]float64, c.cols)
	ej[j] = 1
	out := make([]float64, c.rows)
	for _, g := range c.groups {
		for _, gc := range g.Cols() {
			if gc == j {
				g.MatVecAccum(out, ej)
				break
			}
		}
	}
	return out, nil
}

// Gram computes XᵀX directly over the compressed representation (CLA's
// transpose-self matrix multiply): one column materialization plus one
// compressed vector–matrix product per column, never decompressing the whole
// matrix.
func (c *Matrix) Gram() *la.Dense {
	out := la.NewDense(c.cols, c.cols)
	for j := 0; j < c.cols; j++ {
		col, err := c.Col(j)
		if err != nil {
			panic(err) // unreachable: j is in range by construction
		}
		row := c.VecMat(col)
		copy(out.RowView(j), row)
	}
	return out
}
