package compress

import (
	"fmt"
	"sort"

	"dmml/internal/la"
	"dmml/internal/metrics"
	"dmml/internal/pool"
)

// Encoding identifies a physical column encoding for forcing/tuning.
type Encoding int

// Encoding values. Auto lets the planner choose per column.
const (
	Auto Encoding = iota
	ForceDDC
	ForceOLE
	ForceRLE
	ForceUC
)

// Options tunes the compression planner.
type Options struct {
	// Force overrides the per-column encoding choice (Auto = cost-based).
	Force Encoding
	// CoCode enables greedy pairwise column co-coding of low-cardinality
	// columns, as in CLA's column group partitioning.
	CoCode bool
	// MaxDDCCard caps the dictionary size for DDC (default and ceiling 65536,
	// the largest dictionary addressable by the 2-byte code array).
	MaxDDCCard int
}

func (o Options) withDefaults() Options {
	if o.MaxDDCCard <= 0 || o.MaxDDCCard > 1<<16 {
		o.MaxDDCCard = 1 << 16
	}
	return o
}

// compressParallelMinWork is the minimum scalar-work estimate (roughly rows ×
// groups) below which Matrix ops and the planner stay serial; pool dispatch
// costs more than it saves on small inputs. A var so tests can force the
// parallel path.
var compressParallelMinWork = 1 << 18

// Matrix is a compressed matrix: a set of column groups jointly covering all
// columns. All read ops match the semantics of the equivalent la.Dense ops.
type Matrix struct {
	rows, cols int
	groups     []Group
}

// Dims returns the logical matrix dimensions.
func (c *Matrix) Dims() (rows, cols int) { return c.rows, c.cols }

// Rows returns the number of rows.
func (c *Matrix) Rows() int { return c.rows }

// Cols returns the number of columns.
func (c *Matrix) Cols() int { return c.cols }

// Groups returns the column groups (read-only use expected).
func (c *Matrix) Groups() []Group { return c.groups }

// GroupInfo returns a human-readable encoding summary, sorted for stability.
func (c *Matrix) GroupInfo() []string {
	out := make([]string, len(c.groups))
	for i, g := range c.groups {
		out[i] = describeGroup(g)
	}
	sort.Strings(out)
	return out
}

// MatVec returns X·v over the compressed representation.
func (c *Matrix) MatVec(v []float64) []float64 {
	return c.MatVecInto(make([]float64, c.rows), v)
}

// MatVecInto computes X·v into dst (overwriting it) and returns dst. Every
// group contributes to every row, so parallel runs hand each worker a scratch
// partial accumulator (slot 0 accumulates straight into dst) and the partials
// are merged at the end; the serial regime allocates nothing beyond what the
// group kernels borrow from the scratch pool.
func (c *Matrix) MatVecInto(dst, v []float64) []float64 {
	if len(v) != c.cols {
		panic(fmt.Sprintf("compress: MatVec %dx%d × len %d", c.rows, c.cols, len(v)))
	}
	if len(dst) != c.rows {
		panic(fmt.Sprintf("compress: MatVecInto dst len %d for %d rows", len(dst), c.rows))
	}
	sw := mMatVecTimer.Start()
	defer sw.Stop()
	for i := range dst {
		dst[i] = 0
	}
	if len(c.groups) < 2 || c.rows*len(c.groups) < compressParallelMinWork || pool.SerialNow() {
		for _, g := range c.groups {
			g.MatVecAccum(dst, v)
		}
		return dst
	}
	partials := make([][]float64, pool.Workers())
	partials[0] = dst
	pool.Do(len(c.groups), 1, func(slot, lo, hi int) {
		acc := partials[slot]
		if acc == nil {
			acc = pool.GetF64Zeroed(c.rows)
			partials[slot] = acc
		}
		for gi := lo; gi < hi; gi++ {
			c.groups[gi].MatVecAccum(acc, v)
		}
	})
	for _, p := range partials[1:] {
		if p != nil {
			la.Axpy(1, p, dst)
			pool.PutF64(p)
		}
	}
	return dst
}

// VecMat returns xᵀ·X over the compressed representation.
func (c *Matrix) VecMat(x []float64) []float64 {
	return c.VecMatInto(make([]float64, c.cols), x)
}

// VecMatInto computes xᵀ·X into dst (overwriting it) and returns dst. Column
// groups cover disjoint columns, so parallel workers write disjoint entries
// of dst and no partial accumulators are needed.
func (c *Matrix) VecMatInto(dst, x []float64) []float64 {
	if len(x) != c.rows {
		panic(fmt.Sprintf("compress: VecMat len %d × %dx%d", len(x), c.rows, c.cols))
	}
	if len(dst) != c.cols {
		panic(fmt.Sprintf("compress: VecMatInto dst len %d for %d cols", len(dst), c.cols))
	}
	sw := mVecMatTimer.Start()
	defer sw.Stop()
	for j := range dst {
		dst[j] = 0
	}
	if len(c.groups) < 2 || c.rows*len(c.groups) < compressParallelMinWork || pool.SerialNow() {
		for _, g := range c.groups {
			g.VecMatAccum(dst, x)
		}
		return dst
	}
	pool.Do(len(c.groups), 1, func(_, lo, hi int) {
		for gi := lo; gi < hi; gi++ {
			c.groups[gi].VecMatAccum(dst, x)
		}
	})
	return dst
}

// vecMatSerial is VecMatInto without the parallel dispatch, for callers that
// are already running on a pool worker.
func (c *Matrix) vecMatSerial(dst, x []float64) {
	for j := range dst {
		dst[j] = 0
	}
	for _, g := range c.groups {
		g.VecMatAccum(dst, x)
	}
}

// VecMatAccum adds xᵀ·X into dst without zeroing it first — the block-wise
// form used by the out-of-core datapath, where each block accumulates its
// contribution into one shared gradient vector.
func (c *Matrix) VecMatAccum(dst, x []float64) {
	if len(x) != c.rows {
		panic(fmt.Sprintf("compress: VecMatAccum len %d × %dx%d", len(x), c.rows, c.cols))
	}
	if len(dst) != c.cols {
		panic(fmt.Sprintf("compress: VecMatAccum dst len %d for %d cols", len(dst), c.cols))
	}
	for _, g := range c.groups {
		g.VecMatAccum(dst, x)
	}
}

// GramAccum adds XᵀX into out (cols×cols) without zeroing it — the block-wise
// Gram accumulation: one column materialization plus one compressed
// vector–matrix accumulate per column, never decompressing the block.
func (c *Matrix) GramAccum(out *la.Dense) {
	if r, cl := out.Dims(); r != c.cols || cl != c.cols {
		panic(fmt.Sprintf("compress: GramAccum out %dx%d for %d cols", r, cl, c.cols))
	}
	sw := mGramTimer.Start()
	defer sw.Stop()
	ej := pool.GetF64Zeroed(c.cols)
	col := pool.GetF64(c.rows)
	for j := 0; j < c.cols; j++ {
		c.colInto(col, ej, j)
		c.VecMatAccum(out.RowView(j), col)
	}
	pool.PutF64(ej)
	pool.PutF64(col)
}

// DecompressInto materializes the dense equivalent into m, which must be
// rows×cols. m is zeroed first since sparse encodings only write non-zeros.
func (c *Matrix) DecompressInto(m *la.Dense) {
	if r, cl := m.Dims(); r != c.rows || cl != c.cols {
		panic(fmt.Sprintf("compress: DecompressInto %dx%d for %dx%d matrix", r, cl, c.rows, c.cols))
	}
	raw := m.RawData()
	for i := range raw {
		raw[i] = 0
	}
	for _, g := range c.groups {
		g.DecompressInto(m)
	}
}

// ColSumsAccum adds per-column sums into out.
func (c *Matrix) ColSumsAccum(out []float64) {
	for _, g := range c.groups {
		g.ColSumsAccum(out)
	}
}

// ColSums returns per-column sums.
func (c *Matrix) ColSums() []float64 {
	out := make([]float64, c.cols)
	for _, g := range c.groups {
		g.ColSumsAccum(out)
	}
	return out
}

// ColSumSq returns per-column sums of squares.
func (c *Matrix) ColSumSq() []float64 {
	out := make([]float64, c.cols)
	for _, g := range c.groups {
		g.ColSumSqAccum(out)
	}
	return out
}

// Sum returns the sum of all elements.
func (c *Matrix) Sum() float64 { return la.SumVec(c.ColSums()) }

// SumSq returns the squared Frobenius norm.
func (c *Matrix) SumSq() float64 { return la.SumVec(c.ColSumSq()) }

// Scale multiplies all elements by s. For dictionary encodings this touches
// only the (small) dictionaries — the CLA argument for cheap scalar ops.
func (c *Matrix) Scale(s float64) {
	for _, g := range c.groups {
		g.Scale(s)
	}
}

// Decompress materializes the dense equivalent. Groups write disjoint
// columns, so they decompress in parallel without coordination.
func (c *Matrix) Decompress() *la.Dense {
	m := la.NewDense(c.rows, c.cols)
	if len(c.groups) < 2 || c.rows*len(c.groups) < compressParallelMinWork || pool.SerialNow() {
		for _, g := range c.groups {
			g.DecompressInto(m)
		}
		return m
	}
	pool.Do(len(c.groups), 1, func(_, lo, hi int) {
		for gi := lo; gi < hi; gi++ {
			c.groups[gi].DecompressInto(m)
		}
	})
	return m
}

// SizeBytes estimates the compressed footprint.
func (c *Matrix) SizeBytes() int {
	n := 0
	for _, g := range c.groups {
		n += g.SizeBytes()
	}
	return n
}

// DenseSizeBytes is the footprint of the uncompressed equivalent.
func (c *Matrix) DenseSizeBytes() int { return 8 * c.rows * c.cols }

// CompressionRatio returns dense bytes / compressed bytes.
func (c *Matrix) CompressionRatio() float64 {
	return float64(c.DenseSizeBytes()) / float64(c.SizeBytes())
}

// colStats holds exact per-column statistics driving the encoding choice.
type colStats struct {
	card    int // distinct values including zero if present
	nzCard  int // distinct non-zero values
	nzRows  int // rows with non-zero value
	nzRuns  int // maximal runs of equal non-zero values
	rows    int
	isConst bool
}

// colCode is the provisional dictionary coding of one column, built once
// during the stats pass: the distinct values in first-appearance order plus a
// per-row index into them. Every encoder and the co-coding search work on
// these codes, so the per-row hashing that dominated the old planner happens
// exactly once per column.
type colCode struct {
	vals  []float64
	codes []int32
}

// analyzeColumn computes exact column statistics and the provisional coding
// in a single pass.
func analyzeColumn(col []float64) (colStats, colCode) {
	st := colStats{rows: len(col)}
	idx := make(map[float64]int32, 16)
	cc := colCode{codes: make([]int32, len(col))}
	prev := int32(-1)
	inRun := false
	for i, v := range col {
		t, ok := idx[v]
		if !ok {
			t = int32(len(cc.vals))
			idx[v] = t
			cc.vals = append(cc.vals, v)
		}
		cc.codes[i] = t
		if v != 0 {
			st.nzRows++
			if !inRun || t != prev {
				st.nzRuns++
			}
			inRun = true
		} else {
			inRun = false
		}
		prev = t
	}
	st.card = len(cc.vals)
	st.nzCard = st.card
	for _, v := range cc.vals {
		if v == 0 {
			st.nzCard--
			break
		}
	}
	st.isConst = st.card == 1
	return st, cc
}

// Size estimates (bytes) per encoding, mirroring CLA's compression planning.
func (st colStats) ddcSize(maxCard int) (int, bool) {
	if st.card > maxCard {
		return 0, false
	}
	codeBytes := 1
	if st.card > 256 {
		codeBytes = 2
	}
	return st.rows*codeBytes + st.card*8, true
}

func (st colStats) oleSize() int { return st.nzCard*8 + st.nzRows*4 }

func (st colStats) rleSize() int { return st.nzCard*8 + st.nzRuns*8 }

func (st colStats) ucSize() int { return st.rows * 8 }

// Compress builds a compressed Matrix from a dense one using exact column
// statistics and a minimum-size encoding choice per column (optionally with
// pairwise co-coding). Column analysis and group construction both run on the
// worker pool — columns are independent, and each group touches only its own
// columns.
func Compress(m *la.Dense, opts Options) *Matrix {
	sw := mEncodeTimer.Start()
	defer sw.Stop()
	opts = opts.withDefaults()
	rows, cols := m.Dims()
	c := &Matrix{rows: rows, cols: cols}
	if cols == 0 {
		return c
	}

	columns := make([][]float64, cols)
	stats := make([]colStats, cols)
	codes := make([]colCode, cols)
	analyze := func(lo, hi int) {
		for j := lo; j < hi; j++ {
			columns[j] = m.Col(j)
			stats[j], codes[j] = analyzeColumn(columns[j])
		}
	}
	if rows*cols < compressParallelMinWork || pool.SerialNow() {
		analyze(0, cols)
	} else {
		pool.Do(cols, 1, func(_, lo, hi int) { analyze(lo, hi) })
	}

	chosen := make([]Encoding, cols)
	for j := 0; j < cols; j++ {
		chosen[j] = chooseEncoding(stats[j], opts)
	}

	// Plan the group partition serially (greedy co-coding is order-dependent)
	// and build the groups in parallel.
	type buildJob struct{ a, b int } // b < 0 for single-column groups
	var jobs []buildJob
	used := make([]bool, cols)
	if opts.CoCode {
		// Greedy pairwise co-coding of DDC columns: merge a pair when the
		// combined DDC size beats the sum of the separate sizes. Joint
		// cardinality is counted over the precomputed codes.
		for a := 0; a < cols; a++ {
			if used[a] || chosen[a] != ForceDDC {
				continue
			}
			bestB, bestGain := -1, 0
			sizeA, _ := stats[a].ddcSize(opts.MaxDDCCard)
			for b := a + 1; b < cols; b++ {
				if used[b] || chosen[b] != ForceDDC {
					continue
				}
				sizeB, _ := stats[b].ddcSize(opts.MaxDDCCard)
				jointCard := jointCardinality(&codes[a], &codes[b])
				if jointCard > opts.MaxDDCCard {
					continue
				}
				codeBytes := 1
				if jointCard > 256 {
					codeBytes = 2
				}
				jointSize := rows*codeBytes + jointCard*16
				if gain := sizeA + sizeB - jointSize; gain > bestGain {
					bestGain, bestB = gain, b
				}
			}
			if bestB >= 0 {
				jobs = append(jobs, buildJob{a, bestB})
				used[a], used[bestB] = true, true
			}
		}
	}
	for j := 0; j < cols; j++ {
		if !used[j] {
			jobs = append(jobs, buildJob{j, -1})
		}
	}

	c.groups = make([]Group, len(jobs))
	build := func(lo, hi int) {
		for i := lo; i < hi; i++ {
			jb := jobs[i]
			if jb.b >= 0 {
				c.groups[i] = buildDDCPair(jb.a, jb.b, &codes[jb.a], &codes[jb.b])
			} else {
				c.groups[i] = buildGroup(jb.a, columns[jb.a], &codes[jb.a], chosen[jb.a])
			}
		}
	}
	if rows*len(jobs) < compressParallelMinWork || pool.SerialNow() {
		build(0, len(jobs))
	} else {
		pool.Do(len(jobs), 1, func(_, lo, hi int) { build(lo, hi) })
	}
	if metrics.Enabled() {
		mRatio.Set(c.CompressionRatio())
		for _, g := range c.groups {
			countGroup(g)
		}
	}
	return c
}

func chooseEncoding(st colStats, opts Options) Encoding {
	if opts.Force != Auto {
		if opts.Force == ForceDDC {
			if _, ok := st.ddcSize(opts.MaxDDCCard); !ok {
				return ForceUC
			}
		}
		return opts.Force
	}
	best, bestSize := ForceUC, st.ucSize()
	if s, ok := st.ddcSize(opts.MaxDDCCard); ok && s < bestSize {
		best, bestSize = ForceDDC, s
	}
	if s := st.oleSize(); s < bestSize {
		best, bestSize = ForceOLE, s
	}
	if s := st.rleSize(); s < bestSize {
		best = ForceRLE
	}
	return best
}

// jointDirectLimit bounds the dense pair table used for joint-code counting;
// above it (≤8 MB of int32) the counting falls back to a map on the packed
// pair code, still one integer key instead of hashing two floats per row.
const jointDirectLimit = 1 << 20

func jointCardinality(ca, cb *colCode) int {
	cardB := int32(len(cb.vals))
	if prod := len(ca.vals) * len(cb.vals); prod <= jointDirectLimit {
		seen := make([]bool, prod)
		n := 0
		for i, a := range ca.codes {
			p := a*cardB + cb.codes[i]
			if !seen[p] {
				seen[p] = true
				n++
			}
		}
		return n
	}
	seen := make(map[int64]struct{}, 1024)
	for i, a := range ca.codes {
		seen[int64(a)*int64(cardB)+int64(cb.codes[i])] = struct{}{}
	}
	return len(seen)
}

func buildGroup(col int, data []float64, cc *colCode, enc Encoding) Group {
	switch enc {
	case ForceDDC:
		return buildDDC(col, cc)
	case ForceOLE:
		return buildOLE(col, cc)
	case ForceRLE:
		return buildRLE(col, cc)
	default:
		return &UCGroup{col: col, data: la.CloneVec(data)}
	}
}

// storeCodes writes the group's code array in 1- or 2-byte form depending on
// dictionary size.
func storeCodes(g *DDCGroup, codes []int32, card int) {
	if card <= 256 {
		g.codes8 = make([]uint8, len(codes))
		for i, t := range codes {
			g.codes8[i] = uint8(t)
		}
		return
	}
	g.codes = make([]uint16, len(codes))
	for i, t := range codes {
		g.codes[i] = uint16(t)
	}
}

func buildDDC(col int, cc *colCode) *DDCGroup {
	g := &DDCGroup{
		d:    dict{cols: []int{col}, vals: la.CloneVec(cc.vals)},
		rows: len(cc.codes),
	}
	storeCodes(g, cc.codes, len(cc.vals))
	return g
}

// buildDDCPair co-codes two columns into one DDC group. The joint dictionary
// is discovered by remapping the packed pair code (codeA·cardB + codeB)
// through a dense table — no per-row hashing.
func buildDDCPair(colA, colB int, ca, cb *colCode) *DDCGroup {
	rows := len(ca.codes)
	cardB := int32(len(cb.vals))
	codes := make([]int32, rows)
	var vals []float64
	next := int32(0)
	if prod := len(ca.vals) * len(cb.vals); prod <= jointDirectLimit {
		remap := make([]int32, prod)
		for i := range remap {
			remap[i] = -1
		}
		for i, a := range ca.codes {
			b := cb.codes[i]
			p := a*cardB + b
			t := remap[p]
			if t < 0 {
				t = next
				remap[p] = t
				next++
				vals = append(vals, ca.vals[a], cb.vals[b])
			}
			codes[i] = t
		}
	} else {
		remap := make(map[int64]int32, 1024)
		for i, a := range ca.codes {
			b := cb.codes[i]
			p := int64(a)*int64(cardB) + int64(b)
			t, ok := remap[p]
			if !ok {
				t = next
				remap[p] = t
				next++
				vals = append(vals, ca.vals[a], cb.vals[b])
			}
			codes[i] = t
		}
	}
	g := &DDCGroup{
		d:    dict{cols: []int{colA, colB}, vals: vals},
		rows: rows,
	}
	storeCodes(g, codes, int(next))
	return g
}

// nzRemap maps each code to its entry index in a zero-free dictionary (-1 for
// the zero value) and returns the dictionary values.
func nzRemap(cc *colCode) ([]int32, []float64) {
	remap := make([]int32, len(cc.vals))
	vals := make([]float64, 0, len(cc.vals))
	for t, v := range cc.vals {
		if v == 0 {
			remap[t] = -1
			continue
		}
		remap[t] = int32(len(vals))
		vals = append(vals, v)
	}
	return remap, vals
}

func buildOLE(col int, cc *colCode) *OLEGroup {
	remap, vals := nzRemap(cc)
	counts := make([]int32, len(vals))
	for _, t := range cc.codes {
		if e := remap[t]; e >= 0 {
			counts[e]++
		}
	}
	offsets := make([][]int32, len(vals))
	for e := range offsets {
		offsets[e] = make([]int32, 0, counts[e])
	}
	for i, t := range cc.codes {
		if e := remap[t]; e >= 0 {
			offsets[e] = append(offsets[e], int32(i))
		}
	}
	return &OLEGroup{
		d:       dict{cols: []int{col}, vals: vals},
		offsets: offsets,
		rows:    len(cc.codes),
	}
}

func buildRLE(col int, cc *colCode) *RLEGroup {
	remap, vals := nzRemap(cc)
	runs := make([][]int32, len(vals))
	i := 0
	for i < len(cc.codes) {
		t := cc.codes[i]
		j := i + 1
		for j < len(cc.codes) && cc.codes[j] == t {
			j++
		}
		if e := remap[t]; e >= 0 {
			runs[e] = append(runs[e], int32(i), int32(j-i))
		}
		i = j
	}
	return &RLEGroup{
		d:    dict{cols: []int{col}, vals: vals},
		runs: runs,
		rows: len(cc.codes),
	}
}

// MatMulDense returns X·W for a dense right operand, computed column-by-
// column over the compressed groups (each column is one compressed
// matrix–vector product).
func (c *Matrix) MatMulDense(w *la.Dense) (*la.Dense, error) {
	rows, k := w.Dims()
	if rows != c.cols {
		return nil, fmt.Errorf("compress: MatMulDense %dx%d × %dx%d", c.rows, c.cols, rows, k)
	}
	out := la.NewDense(c.rows, k)
	col := pool.GetF64(c.rows)
	for j := 0; j < k; j++ {
		c.MatVecInto(col, w.Col(j))
		for i, v := range col {
			out.Set(i, j, v)
		}
	}
	pool.PutF64(col)
	return out, nil
}

// colInto materializes column j into dst via the basis-vector trick: ej must
// be an all-zero length-cols scratch vector and is restored before return.
// Only the group covering j is consulted.
func (c *Matrix) colInto(dst, ej []float64, j int) {
	for i := range dst {
		dst[i] = 0
	}
	ej[j] = 1
	for _, g := range c.groups {
		for _, gc := range g.Cols() {
			if gc == j {
				g.MatVecAccum(dst, ej)
				break
			}
		}
	}
	ej[j] = 0
}

// Col materializes one column as a dense vector. Groups not covering the
// column are skipped, so the cost is proportional to that column's group.
func (c *Matrix) Col(j int) ([]float64, error) {
	if j < 0 || j >= c.cols {
		return nil, fmt.Errorf("compress: column %d out of range for %d cols", j, c.cols)
	}
	ej := pool.GetF64Zeroed(c.cols)
	out := make([]float64, c.rows)
	c.colInto(out, ej, j)
	pool.PutF64(ej)
	return out, nil
}

// Gram computes XᵀX directly over the compressed representation (CLA's
// transpose-self matrix multiply): one column materialization plus one
// compressed vector–matrix product per column, never decompressing the whole
// matrix. Columns are farmed out to the worker pool — each writes a disjoint
// output row — with per-worker scratch for the basis and column vectors.
func (c *Matrix) Gram() *la.Dense {
	sw := mGramTimer.Start()
	defer sw.Stop()
	out := la.NewDense(c.cols, c.cols)
	doCols := func(j0, j1 int) {
		ej := pool.GetF64Zeroed(c.cols)
		col := pool.GetF64(c.rows)
		for j := j0; j < j1; j++ {
			c.colInto(col, ej, j)
			c.vecMatSerial(out.RowView(j), col)
		}
		pool.PutF64(ej)
		pool.PutF64(col)
	}
	if c.rows*c.cols < compressParallelMinWork || pool.SerialNow() {
		doCols(0, c.cols)
	} else {
		pool.Do(c.cols, 1, func(_, lo, hi int) { doCols(lo, hi) })
	}
	return out
}
