// Package compress implements compressed linear algebra (CLA) in the style
// surveyed by the paper (Elgohary et al., SystemML's CLA): columns are
// grouped, each group stores a dictionary of distinct value tuples and a
// compressed representation of which rows hold which tuple, and linear
// algebra ops (matrix–vector, vector–matrix, aggregates) execute directly on
// the compressed form without decompression.
//
// Encodings:
//   - DDC (dense dictionary coding): one code per row (1 or 2 bytes).
//   - OLE (offset-list encoding): per dictionary entry, the sorted list of
//     row offsets holding it.
//   - RLE (run-length encoding): per dictionary entry, sorted (start,len)
//     runs of rows holding it.
//   - UC (uncompressed column): plain float64 column, the fallback.
package compress

import (
	"fmt"

	"dmml/internal/la"
	"dmml/internal/pool"
)

// Group is one compressed column group: a set of columns co-coded together.
// All accumulate ops are additive so a Matrix can sum contributions across
// its groups.
type Group interface {
	// Cols returns the original column indices covered by this group.
	Cols() []int
	// Encoding names the physical encoding, for diagnostics.
	Encoding() string
	// MatVecAccum adds, for every row i, Σ_j X[i,j]·v[j] (j over Cols) into out[i].
	MatVecAccum(out, v []float64)
	// VecMatAccum adds, for every column j in Cols, Σ_i x[i]·X[i,j] into out[j].
	VecMatAccum(out, x []float64)
	// ColSumsAccum adds per-column sums into out (indexed by original column).
	ColSumsAccum(out []float64)
	// ColSumSqAccum adds per-column sums of squares into out.
	ColSumSqAccum(out []float64)
	// DecompressInto writes the group's columns into m.
	DecompressInto(m *la.Dense)
	// SizeBytes estimates the in-memory footprint of the compressed form.
	SizeBytes() int
	// Scale multiplies all values by s (a dictionary-only operation for the
	// dictionary encodings — the CLA selling point for scalar ops).
	Scale(s float64)
}

// dict is a tuple dictionary: entry t covers len(cols) values.
type dict struct {
	cols []int     // original column indices
	vals []float64 // len = numEntries * len(cols), row-major by entry
}

func (d *dict) numEntries() int { return len(d.vals) / len(d.cols) }

func (d *dict) entry(t int) []float64 {
	w := len(d.cols)
	return d.vals[t*w : (t+1)*w]
}

// premul computes, per dictionary entry, Σ_j entry[j]·v[cols[j]]. The result
// is borrowed from the scratch pool; callers must release it with
// pool.PutF64 once consumed.
//
//dmml:owns-scratch
//dmml:noalloc
func (d *dict) premul(v []float64) []float64 {
	w := len(d.cols)
	out := pool.GetF64(d.numEntries())
	for t := range out {
		e := d.entry(t)
		var s float64
		for j := 0; j < w; j++ {
			s += e[j] * v[d.cols[j]]
		}
		out[t] = s
	}
	return out
}

//dmml:noalloc
func (d *dict) scale(s float64) {
	for i := range d.vals {
		d.vals[i] *= s
	}
}

func (d *dict) sizeBytes() int { return 8*len(d.vals) + 8*len(d.cols) }

// --- DDC ------------------------------------------------------------------

// DDCGroup stores one dictionary code per row. Codes are 1 byte when the
// dictionary has ≤256 entries (DDC1) and 2 bytes otherwise (DDC2).
type DDCGroup struct {
	d      dict
	codes8 []uint8  // non-nil iff DDC1
	codes  []uint16 // non-nil iff DDC2
	rows   int
}

// Cols implements Group.
func (g *DDCGroup) Cols() []int { return g.d.cols }

// Encoding implements Group.
func (g *DDCGroup) Encoding() string {
	if g.codes8 != nil {
		return "DDC1"
	}
	return "DDC2"
}

// MatVecAccum implements Group.
//dmml:noalloc
func (g *DDCGroup) MatVecAccum(out, v []float64) {
	pre := g.d.premul(v)
	if g.codes8 != nil {
		for i, c := range g.codes8 {
			out[i] += pre[c]
		}
	} else {
		for i, c := range g.codes {
			out[i] += pre[c]
		}
	}
	pool.PutF64(pre)
}

// VecMatAccum implements Group.
//dmml:noalloc
func (g *DDCGroup) VecMatAccum(out, x []float64) {
	acc := pool.GetF64Zeroed(g.d.numEntries())
	if g.codes8 != nil {
		for i, c := range g.codes8 {
			acc[c] += x[i]
		}
	} else {
		for i, c := range g.codes {
			acc[c] += x[i]
		}
	}
	g.scatterWeighted(out, acc)
	pool.PutF64(acc)
}

//dmml:noalloc
func (g *DDCGroup) scatterWeighted(out, weightPerEntry []float64) {
	w := len(g.d.cols)
	for t, wt := range weightPerEntry {
		if wt == 0 {
			continue
		}
		e := g.d.entry(t)
		for j := 0; j < w; j++ {
			out[g.d.cols[j]] += wt * e[j]
		}
	}
}

func (g *DDCGroup) entryCounts() []float64 {
	counts := make([]float64, g.d.numEntries())
	if g.codes8 != nil {
		for _, c := range g.codes8 {
			counts[c]++
		}
	} else {
		for _, c := range g.codes {
			counts[c]++
		}
	}
	return counts
}

// ColSumsAccum implements Group.
func (g *DDCGroup) ColSumsAccum(out []float64) { g.scatterWeighted(out, g.entryCounts()) }

// ColSumSqAccum implements Group.
func (g *DDCGroup) ColSumSqAccum(out []float64) {
	counts := g.entryCounts()
	w := len(g.d.cols)
	for t, n := range counts {
		if n == 0 {
			continue
		}
		e := g.d.entry(t)
		for j := 0; j < w; j++ {
			out[g.d.cols[j]] += n * e[j] * e[j]
		}
	}
}

// DecompressInto implements Group.
func (g *DDCGroup) DecompressInto(m *la.Dense) {
	w := len(g.d.cols)
	write := func(i, t int) {
		e := g.d.entry(t)
		row := m.RowView(i)
		for j := 0; j < w; j++ {
			row[g.d.cols[j]] = e[j]
		}
	}
	if g.codes8 != nil {
		for i, c := range g.codes8 {
			write(i, int(c))
		}
		return
	}
	for i, c := range g.codes {
		write(i, int(c))
	}
}

// SizeBytes implements Group.
func (g *DDCGroup) SizeBytes() int {
	n := g.d.sizeBytes()
	if g.codes8 != nil {
		return n + len(g.codes8)
	}
	return n + 2*len(g.codes)
}

// Scale implements Group.
func (g *DDCGroup) Scale(s float64) { g.d.scale(s) }

// --- OLE ------------------------------------------------------------------

// OLEGroup stores, for each dictionary entry, the sorted offsets of rows
// holding it. Rows not covered by any entry implicitly hold zero in all of
// the group's columns, so OLE is the natural encoding for sparse columns.
type OLEGroup struct {
	d       dict
	offsets [][]int32 // per entry, sorted row ids
	rows    int
}

// Cols implements Group.
func (g *OLEGroup) Cols() []int { return g.d.cols }

// Encoding implements Group.
func (g *OLEGroup) Encoding() string { return "OLE" }

// MatVecAccum implements Group.
//dmml:noalloc
func (g *OLEGroup) MatVecAccum(out, v []float64) {
	pre := g.d.premul(v)
	for t, offs := range g.offsets {
		p := pre[t]
		if p == 0 {
			continue
		}
		for _, i := range offs {
			out[i] += p
		}
	}
	pool.PutF64(pre)
}

// VecMatAccum implements Group.
//dmml:noalloc
func (g *OLEGroup) VecMatAccum(out, x []float64) {
	w := len(g.d.cols)
	for t, offs := range g.offsets {
		var s float64
		for _, i := range offs {
			s += x[i]
		}
		if s == 0 {
			continue
		}
		e := g.d.entry(t)
		for j := 0; j < w; j++ {
			out[g.d.cols[j]] += s * e[j]
		}
	}
}

// ColSumsAccum implements Group.
func (g *OLEGroup) ColSumsAccum(out []float64) {
	w := len(g.d.cols)
	for t, offs := range g.offsets {
		n := float64(len(offs))
		e := g.d.entry(t)
		for j := 0; j < w; j++ {
			out[g.d.cols[j]] += n * e[j]
		}
	}
}

// ColSumSqAccum implements Group.
func (g *OLEGroup) ColSumSqAccum(out []float64) {
	w := len(g.d.cols)
	for t, offs := range g.offsets {
		n := float64(len(offs))
		e := g.d.entry(t)
		for j := 0; j < w; j++ {
			out[g.d.cols[j]] += n * e[j] * e[j]
		}
	}
}

// DecompressInto implements Group.
func (g *OLEGroup) DecompressInto(m *la.Dense) {
	w := len(g.d.cols)
	for t, offs := range g.offsets {
		e := g.d.entry(t)
		for _, i := range offs {
			row := m.RowView(int(i))
			for j := 0; j < w; j++ {
				row[g.d.cols[j]] = e[j]
			}
		}
	}
}

// SizeBytes implements Group.
func (g *OLEGroup) SizeBytes() int {
	n := g.d.sizeBytes()
	for _, offs := range g.offsets {
		n += 4 * len(offs)
	}
	return n
}

// Scale implements Group.
func (g *OLEGroup) Scale(s float64) { g.d.scale(s) }

// --- RLE ------------------------------------------------------------------

// RLEGroup stores, for each dictionary entry, sorted (start, length) runs of
// rows holding it. Rows covered by no run hold zero.
type RLEGroup struct {
	d    dict
	runs [][]int32 // per entry, flattened [start0,len0,start1,len1,...]
	rows int
}

// Cols implements Group.
func (g *RLEGroup) Cols() []int { return g.d.cols }

// Encoding implements Group.
func (g *RLEGroup) Encoding() string { return "RLE" }

// MatVecAccum implements Group.
//dmml:noalloc
func (g *RLEGroup) MatVecAccum(out, v []float64) {
	pre := g.d.premul(v)
	for t, rs := range g.runs {
		p := pre[t]
		if p == 0 {
			continue
		}
		for k := 0; k < len(rs); k += 2 {
			start, length := int(rs[k]), int(rs[k+1])
			for i := start; i < start+length; i++ {
				out[i] += p
			}
		}
	}
	pool.PutF64(pre)
}

// VecMatAccum implements Group.
//dmml:noalloc
func (g *RLEGroup) VecMatAccum(out, x []float64) {
	w := len(g.d.cols)
	for t, rs := range g.runs {
		var s float64
		for k := 0; k < len(rs); k += 2 {
			start, length := int(rs[k]), int(rs[k+1])
			for i := start; i < start+length; i++ {
				s += x[i]
			}
		}
		if s == 0 {
			continue
		}
		e := g.d.entry(t)
		for j := 0; j < w; j++ {
			out[g.d.cols[j]] += s * e[j]
		}
	}
}

func (g *RLEGroup) entryCounts() []float64 {
	counts := make([]float64, g.d.numEntries())
	for t, rs := range g.runs {
		var n int32
		for k := 1; k < len(rs); k += 2 {
			n += rs[k]
		}
		counts[t] = float64(n)
	}
	return counts
}

// ColSumsAccum implements Group.
func (g *RLEGroup) ColSumsAccum(out []float64) {
	w := len(g.d.cols)
	counts := g.entryCounts()
	for t, n := range counts {
		e := g.d.entry(t)
		for j := 0; j < w; j++ {
			out[g.d.cols[j]] += n * e[j]
		}
	}
}

// ColSumSqAccum implements Group.
func (g *RLEGroup) ColSumSqAccum(out []float64) {
	w := len(g.d.cols)
	counts := g.entryCounts()
	for t, n := range counts {
		e := g.d.entry(t)
		for j := 0; j < w; j++ {
			out[g.d.cols[j]] += n * e[j] * e[j]
		}
	}
}

// DecompressInto implements Group.
func (g *RLEGroup) DecompressInto(m *la.Dense) {
	w := len(g.d.cols)
	for t, rs := range g.runs {
		e := g.d.entry(t)
		for k := 0; k < len(rs); k += 2 {
			start, length := int(rs[k]), int(rs[k+1])
			for i := start; i < start+length; i++ {
				row := m.RowView(i)
				for j := 0; j < w; j++ {
					row[g.d.cols[j]] = e[j]
				}
			}
		}
	}
}

// SizeBytes implements Group.
func (g *RLEGroup) SizeBytes() int {
	n := g.d.sizeBytes()
	for _, rs := range g.runs {
		n += 4 * len(rs)
	}
	return n
}

// Scale implements Group.
func (g *RLEGroup) Scale(s float64) { g.d.scale(s) }

// --- UC -------------------------------------------------------------------

// UCGroup is an uncompressed single column, the fallback when no dictionary
// encoding pays off (e.g. continuous unique values).
type UCGroup struct {
	col  int
	data []float64
}

// Cols implements Group.
func (g *UCGroup) Cols() []int { return []int{g.col} }

// Encoding implements Group.
func (g *UCGroup) Encoding() string { return "UC" }

// MatVecAccum implements Group.
func (g *UCGroup) MatVecAccum(out, v []float64) {
	vj := v[g.col]
	if vj == 0 {
		return
	}
	la.Axpy(vj, g.data, out)
}

// VecMatAccum implements Group.
func (g *UCGroup) VecMatAccum(out, x []float64) {
	out[g.col] += la.Dot(x, g.data)
}

// ColSumsAccum implements Group.
func (g *UCGroup) ColSumsAccum(out []float64) { out[g.col] += la.SumVec(g.data) }

// ColSumSqAccum implements Group.
func (g *UCGroup) ColSumSqAccum(out []float64) { out[g.col] += la.Dot(g.data, g.data) }

// DecompressInto implements Group.
func (g *UCGroup) DecompressInto(m *la.Dense) {
	for i, v := range g.data {
		m.Set(i, g.col, v)
	}
}

// SizeBytes implements Group.
func (g *UCGroup) SizeBytes() int { return 8 * len(g.data) }

// Scale implements Group.
func (g *UCGroup) Scale(s float64) { la.ScaleVec(s, g.data) }

var (
	_ Group = (*DDCGroup)(nil)
	_ Group = (*OLEGroup)(nil)
	_ Group = (*RLEGroup)(nil)
	_ Group = (*UCGroup)(nil)
)

func describeGroup(g Group) string {
	return fmt.Sprintf("%s%v", g.Encoding(), g.Cols())
}
