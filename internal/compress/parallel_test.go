package compress

// Equivalence properties for the parallel compressed-LA paths: the pooled
// MatVec/VecMat/Gram/Decompress and the parallel planner must agree with the
// dense equivalents at GOMAXPROCS=1 and GOMAXPROCS=N, and the Into variants
// must reach a zero-allocation steady state in the serial regime.

import (
	"math"
	"math/rand"
	"runtime"
	"testing"
	"testing/quick"

	"dmml/internal/la"
)

func withGOMAXPROCS(n int, f func()) {
	old := runtime.GOMAXPROCS(n)
	defer runtime.GOMAXPROCS(old)
	f()
}

func eachProcs(f func()) {
	withGOMAXPROCS(1, f)
	n := runtime.NumCPU()
	if n < 4 {
		n = 4
	}
	withGOMAXPROCS(n, f)
}

// forceParallel lowers the work cutoff so even test-sized matrices take the
// pool paths, restoring it on cleanup.
func forceParallel(t *testing.T) {
	old := compressParallelMinWork
	compressParallelMinWork = 1
	t.Cleanup(func() { compressParallelMinWork = old })
}

func TestParallelOpsMatchDense(t *testing.T) {
	forceParallel(t)
	r := rand.New(rand.NewSource(60))
	prop := func(seed int64) bool {
		rr := rand.New(rand.NewSource(seed))
		rows := 50 + rr.Intn(400)
		m := mixedMatrix(rr, rows)
		v := vecOf(rr, m.Cols())
		x := vecOf(rr, rows)
		wantMV := la.MatVec(m, v)
		wantVM := la.VecMat(x, m)
		wantGram := la.Gram(m)
		tol := 1e-9 * float64(rows)

		for _, opts := range []Options{{}, {CoCode: true}} {
			c := Compress(m, opts)
			if !c.Decompress().Equal(m, 0) {
				t.Logf("decompress round trip failed at rows=%d opts=%+v", rows, opts)
				return false
			}
			gotMV := c.MatVec(v)
			for i := range wantMV {
				if math.Abs(gotMV[i]-wantMV[i]) > tol {
					t.Logf("MatVec[%d] off by %g", i, gotMV[i]-wantMV[i])
					return false
				}
			}
			gotVM := c.VecMat(x)
			for j := range wantVM {
				if math.Abs(gotVM[j]-wantVM[j]) > tol {
					t.Logf("VecMat[%d] off by %g", j, gotVM[j]-wantVM[j])
					return false
				}
			}
			if !c.Gram().Equal(wantGram, tol) {
				t.Logf("Gram mismatch at rows=%d opts=%+v", rows, opts)
				return false
			}
		}
		return true
	}
	eachProcs(func() {
		if err := quick.Check(prop, &quick.Config{MaxCount: 10, Rand: r}); err != nil {
			t.Error(err)
		}
	})
}

// TestParallelPlannerDeterministic: the pooled planner must produce the same
// partition and encodings regardless of worker count.
func TestParallelPlannerDeterministic(t *testing.T) {
	forceParallel(t)
	r := rand.New(rand.NewSource(61))
	m := mixedMatrix(r, 600)
	var serialInfo []string
	withGOMAXPROCS(1, func() {
		serialInfo = Compress(m, Options{CoCode: true}).GroupInfo()
	})
	n := runtime.NumCPU()
	if n < 4 {
		n = 4
	}
	withGOMAXPROCS(n, func() {
		got := Compress(m, Options{CoCode: true}).GroupInfo()
		if len(got) != len(serialInfo) {
			t.Fatalf("group count differs: %v vs %v", got, serialInfo)
		}
		for i := range got {
			if got[i] != serialInfo[i] {
				t.Fatalf("group %d differs: %q vs %q", i, got[i], serialInfo[i])
			}
		}
	})
}

// TestCompressedIntoZeroAllocSteadyState: once the scratch pool is warm, the
// serial Into variants must not allocate — the property the E4 hot loop
// depends on.
func TestCompressedIntoZeroAllocSteadyState(t *testing.T) {
	withGOMAXPROCS(1, func() {
		r := rand.New(rand.NewSource(62))
		m := mixedMatrix(r, 400)
		c := Compress(m, Options{CoCode: true})
		v := vecOf(r, m.Cols())
		x := vecOf(r, m.Rows())
		mvDst := make([]float64, m.Rows())
		vmDst := make([]float64, m.Cols())
		c.MatVecInto(mvDst, v) // warm the scratch pool
		c.VecMatInto(vmDst, x)

		if a := testing.AllocsPerRun(50, func() { c.MatVecInto(mvDst, v) }); a != 0 {
			t.Errorf("MatVecInto allocates %v per run, want 0", a)
		}
		if a := testing.AllocsPerRun(50, func() { c.VecMatInto(vmDst, x) }); a != 0 {
			t.Errorf("VecMatInto allocates %v per run, want 0", a)
		}
	})
}
