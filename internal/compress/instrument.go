package compress

import (
	"strings"

	"dmml/internal/metrics"
)

// Observability instruments (no-ops until metrics.Enable). The encode-side
// gauges answer the CLA planner questions — what ratio did we get, which
// encodings did the cost model pick — while the op timers expose how
// compressed kernels compare with their dense counterparts ("la.MatMul"
// etc.) in the same -stats table.
var (
	mEncodeTimer = metrics.NewTimer("compress.Compress")
	mRatio       = metrics.NewGauge("compress.ratio")
	mGroupsDDC   = metrics.NewCounter("compress.groups.ddc")
	mGroupsOLE   = metrics.NewCounter("compress.groups.ole")
	mGroupsRLE   = metrics.NewCounter("compress.groups.rle")
	mGroupsUC    = metrics.NewCounter("compress.groups.uc")

	mMatVecTimer = metrics.NewTimer("compress.MatVec")
	mVecMatTimer = metrics.NewTimer("compress.VecMat")
	mGramTimer   = metrics.NewTimer("compress.Gram")
)

// countGroup records the encoding the planner chose for one built group.
func countGroup(g Group) {
	if !metrics.Enabled() {
		return
	}
	enc := g.Encoding()
	switch {
	case strings.HasPrefix(enc, "DDC"):
		mGroupsDDC.Inc()
	case enc == "OLE":
		mGroupsOLE.Inc()
	case enc == "RLE":
		mGroupsRLE.Inc()
	default:
		mGroupsUC.Inc()
	}
}
