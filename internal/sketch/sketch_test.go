package sketch

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"testing"

	"dmml/internal/workload"
)

func TestCountMinNeverUndercounts(t *testing.T) {
	cm, err := NewCountMin(0.01, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(400))
	truth := map[string]uint64{}
	for i := 0; i < 20000; i++ {
		item := fmt.Sprintf("item-%d", r.Intn(500))
		cm.Add(item, 1)
		truth[item]++
	}
	if cm.Total() != 20000 {
		t.Fatalf("total = %d", cm.Total())
	}
	maxErr := uint64(0)
	for item, want := range truth {
		got := cm.Estimate(item)
		if got < want {
			t.Fatalf("undercount for %s: %d < %d", item, got, want)
		}
		if got-want > maxErr {
			maxErr = got - want
		}
	}
	// ε=0.01, N=20000 → error bound εN = 200 w.h.p.
	if maxErr > 200 {
		t.Fatalf("max overcount = %d, beyond εN", maxErr)
	}
	// Heavy hitters stand out from never-seen items.
	if cm.Estimate("never-seen") > 200 {
		t.Fatalf("phantom count %d", cm.Estimate("never-seen"))
	}
}

func TestCountMinSkewedHeavyHitters(t *testing.T) {
	cm, _ := NewCountMin(0.005, 0.01)
	r := rand.New(rand.NewSource(401))
	codes := workload.Zipf(r, 50000, 1000, 1.5)
	truth := map[int]uint64{}
	for _, c := range codes {
		cm.Add(fmt.Sprint(c), 1)
		truth[c]++
	}
	// The top item's estimate is within the bound of its true count.
	top, topCount := 0, uint64(0)
	for c, n := range truth {
		if n > topCount {
			top, topCount = c, n
		}
	}
	est := cm.Estimate(fmt.Sprint(top))
	if est < topCount || est > topCount+250 {
		t.Fatalf("heavy hitter est %d, true %d", est, topCount)
	}
}

func TestCountMinValidation(t *testing.T) {
	for _, pair := range [][2]float64{{0, 0.1}, {1, 0.1}, {0.1, 0}, {0.1, 1}} {
		if _, err := NewCountMin(pair[0], pair[1]); err == nil {
			t.Fatalf("want error for eps=%v delta=%v", pair[0], pair[1])
		}
	}
}

func TestFMEstimatesDistincts(t *testing.T) {
	for _, trueCard := range []int{100, 1000, 50000} {
		fm, err := NewFM(64)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < trueCard; i++ {
			// Each item appears multiple times; distinct count unaffected.
			for rep := 0; rep < 3; rep++ {
				fm.Add(fmt.Sprintf("key-%d", i))
			}
		}
		got := fm.Estimate()
		if got < float64(trueCard)/2 || got > float64(trueCard)*2 {
			t.Fatalf("card %d estimated as %v (off by >2x)", trueCard, got)
		}
	}
}

func TestFMValidation(t *testing.T) {
	for _, m := range []int{0, 3, 12} {
		if _, err := NewFM(m); err == nil {
			t.Fatalf("want error for m=%d", m)
		}
	}
}

func TestP2QuantileAgainstExact(t *testing.T) {
	r := rand.New(rand.NewSource(402))
	for _, p := range []float64{0.1, 0.5, 0.9} {
		q, err := NewP2Quantile(p)
		if err != nil {
			t.Fatal(err)
		}
		vals := make([]float64, 50000)
		for i := range vals {
			vals[i] = r.NormFloat64()*10 + 100
			q.Add(vals[i])
		}
		sort.Float64s(vals)
		exact := vals[int(p*float64(len(vals)))]
		got := q.Estimate()
		// Normal(100,10): quantiles within a small absolute band.
		if math.Abs(got-exact) > 0.5 {
			t.Fatalf("p=%v: estimate %v, exact %v", p, got, exact)
		}
		if q.Count() != 50000 {
			t.Fatalf("count = %d", q.Count())
		}
	}
}

func TestP2QuantileSmallStreams(t *testing.T) {
	q, _ := NewP2Quantile(0.5)
	if !math.IsNaN(q.Estimate()) {
		t.Fatal("empty estimate should be NaN")
	}
	for _, v := range []float64{5, 1, 3} {
		q.Add(v)
	}
	if got := q.Estimate(); got != 3 {
		t.Fatalf("median of {1,3,5} = %v", got)
	}
	if _, err := NewP2Quantile(0); err == nil {
		t.Fatal("want p range error")
	}
	if _, err := NewP2Quantile(1); err == nil {
		t.Fatal("want p range error")
	}
}

func TestProfile(t *testing.T) {
	r := rand.New(rand.NewSource(403))
	n := 30000
	col := make([]float64, n)
	for i := range col {
		col[i] = float64(r.Intn(50)) // 50 distinct values
	}
	p, err := Profile(col)
	if err != nil {
		t.Fatal(err)
	}
	if p.Count != n {
		t.Fatalf("count = %d", p.Count)
	}
	if p.Min != 0 || p.Max != 49 {
		t.Fatalf("min/max = %v/%v", p.Min, p.Max)
	}
	if math.Abs(p.Mean-24.5) > 0.5 {
		t.Fatalf("mean = %v", p.Mean)
	}
	// Uniform(0..49) std ≈ 14.43.
	if math.Abs(p.Std-14.43) > 0.5 {
		t.Fatalf("std = %v", p.Std)
	}
	if p.ApproxDistinct < 25 || p.ApproxDistinct > 100 {
		t.Fatalf("distinct ≈ %v, want ~50", p.ApproxDistinct)
	}
	if math.Abs(p.ApproxMedian-24.5) > 2 {
		t.Fatalf("median ≈ %v", p.ApproxMedian)
	}
	if _, err := Profile(nil); err == nil {
		t.Fatal("want empty column error")
	}
}

func TestCountMinMemoryBounded(t *testing.T) {
	cm, _ := NewCountMin(0.001, 0.01)
	if cm.SizeBytes() > 8*3000*5 {
		t.Fatalf("sketch uses %d bytes", cm.SizeBytes())
	}
}
