// Package sketch provides the streaming descriptive-statistics operators of
// the in-RDBMS analytics libraries the paper surveys (MADlib's modules):
// Count-Min sketches for frequency estimation, Flajolet–Martin sketches for
// distinct counting, and P²-style streaming quantile estimation — the
// single-pass profiling primitives an ML-over-data system runs before
// training.
package sketch

import (
	"fmt"
	"hash/fnv"
	"math"
	"sort"
)

// CountMin estimates item frequencies over a stream with bounded memory.
// Estimates overcount by at most εN with probability 1−δ for width ≥ e/ε and
// depth ≥ ln(1/δ).
type CountMin struct {
	width, depth int
	counts       [][]uint64
	total        uint64
}

// NewCountMin sizes a sketch for the given error bound ε and failure
// probability δ.
func NewCountMin(epsilon, delta float64) (*CountMin, error) {
	if epsilon <= 0 || epsilon >= 1 || delta <= 0 || delta >= 1 {
		return nil, fmt.Errorf("sketch: need 0 < epsilon, delta < 1; got %v, %v", epsilon, delta)
	}
	width := int(math.Ceil(math.E / epsilon))
	depth := int(math.Ceil(math.Log(1 / delta)))
	cm := &CountMin{width: width, depth: depth, counts: make([][]uint64, depth)}
	for i := range cm.counts {
		cm.counts[i] = make([]uint64, width)
	}
	return cm, nil
}

// hashRow hashes the item for row i.
func (cm *CountMin) hashRow(item string, i int) int {
	h := fnv.New64a()
	h.Write([]byte{byte(i), byte(i >> 8)})
	h.Write([]byte(item))
	return int(h.Sum64() % uint64(cm.width))
}

// Add records count occurrences of item.
func (cm *CountMin) Add(item string, count uint64) {
	for i := 0; i < cm.depth; i++ {
		cm.counts[i][cm.hashRow(item, i)] += count
	}
	cm.total += count
}

// Estimate returns the (over-)estimated frequency of item.
func (cm *CountMin) Estimate(item string) uint64 {
	est := uint64(math.MaxUint64)
	for i := 0; i < cm.depth; i++ {
		if c := cm.counts[i][cm.hashRow(item, i)]; c < est {
			est = c
		}
	}
	return est
}

// Total returns the stream length seen so far.
func (cm *CountMin) Total() uint64 { return cm.total }

// SizeBytes reports the sketch footprint.
func (cm *CountMin) SizeBytes() int { return 8 * cm.width * cm.depth }

// FM is a Flajolet–Martin distinct-count sketch using stochastic averaging
// over m registers (the PCSA variant).
type FM struct {
	registers []uint64 // bitmaps of observed ρ values
}

// fmPhi is the Flajolet–Martin bias correction constant.
const fmPhi = 0.77351

// NewFM creates a sketch with m registers (power of two, ≥ 16 recommended).
func NewFM(m int) (*FM, error) {
	if m < 2 || m&(m-1) != 0 {
		return nil, fmt.Errorf("sketch: FM registers must be a power of two ≥ 2, got %d", m)
	}
	return &FM{registers: make([]uint64, m)}, nil
}

// Add observes an item.
func (f *FM) Add(item string) {
	h := fnv.New64a()
	h.Write([]byte(item))
	v := h.Sum64()
	reg := v & uint64(len(f.registers)-1)
	rest := v >> uint(bitsFor(len(f.registers)))
	// ρ = position of the lowest set bit of the remaining hash.
	rho := trailingZeros(rest)
	f.registers[reg] |= 1 << rho
}

// Estimate returns the approximate number of distinct items observed.
func (f *FM) Estimate() float64 {
	m := len(f.registers)
	sumR := 0
	empty := 0
	for _, bm := range f.registers {
		if bm == 0 {
			empty++
		}
		r := 0
		for bm&(1<<uint(r)) != 0 {
			r++
		}
		sumR += r
	}
	// Small-range correction: with many empty registers, linear counting
	// (−m·ln(V)) is far more accurate than the PCSA estimator.
	if empty > 0 {
		if lc := -float64(m) * math.Log(float64(empty)/float64(m)); lc < 2.5*float64(m) {
			return lc
		}
	}
	mean := float64(sumR) / float64(m)
	return float64(m) / fmPhi * math.Pow(2, mean)
}

func bitsFor(m int) int {
	b := 0
	for 1<<b < m {
		b++
	}
	return b
}

func trailingZeros(v uint64) int {
	if v == 0 {
		return 63
	}
	n := 0
	for v&1 == 0 {
		v >>= 1
		n++
	}
	return n
}

// P2Quantile estimates a single quantile in one pass with O(1) memory using
// the P² algorithm (Jain & Chlamtac).
type P2Quantile struct {
	p       float64
	n       int
	heights [5]float64
	pos     [5]float64
	desired [5]float64
	incr    [5]float64
	initial []float64
}

// NewP2Quantile creates an estimator for the p-quantile (0 < p < 1).
func NewP2Quantile(p float64) (*P2Quantile, error) {
	if p <= 0 || p >= 1 {
		return nil, fmt.Errorf("sketch: quantile p must be in (0,1), got %v", p)
	}
	q := &P2Quantile{p: p}
	q.desired = [5]float64{1, 1 + 2*p, 1 + 4*p, 3 + 2*p, 5}
	q.incr = [5]float64{0, p / 2, p, (1 + p) / 2, 1}
	return q, nil
}

// Add observes one value.
func (q *P2Quantile) Add(v float64) {
	if q.n < 5 {
		q.initial = append(q.initial, v)
		q.n++
		if q.n == 5 {
			sort.Float64s(q.initial)
			for i := 0; i < 5; i++ {
				q.heights[i] = q.initial[i]
				q.pos[i] = float64(i + 1)
			}
		}
		return
	}
	q.n++
	// Find the cell k containing v and update extreme heights.
	var k int
	switch {
	case v < q.heights[0]:
		q.heights[0] = v
		k = 0
	case v >= q.heights[4]:
		q.heights[4] = v
		k = 3
	default:
		for k = 0; k < 4; k++ {
			if v < q.heights[k+1] {
				break
			}
		}
	}
	for i := k + 1; i < 5; i++ {
		q.pos[i]++
	}
	for i := 0; i < 5; i++ {
		q.desired[i] += q.incr[i]
	}
	// Adjust interior markers via parabolic (fallback linear) interpolation.
	for i := 1; i <= 3; i++ {
		d := q.desired[i] - q.pos[i]
		if (d >= 1 && q.pos[i+1]-q.pos[i] > 1) || (d <= -1 && q.pos[i-1]-q.pos[i] < -1) {
			s := 1.0
			if d < 0 {
				s = -1
			}
			hp := q.parabolic(i, s)
			if q.heights[i-1] < hp && hp < q.heights[i+1] {
				q.heights[i] = hp
			} else {
				q.heights[i] = q.linear(i, s)
			}
			q.pos[i] += s
		}
	}
}

func (q *P2Quantile) parabolic(i int, s float64) float64 {
	return q.heights[i] + s/(q.pos[i+1]-q.pos[i-1])*
		((q.pos[i]-q.pos[i-1]+s)*(q.heights[i+1]-q.heights[i])/(q.pos[i+1]-q.pos[i])+
			(q.pos[i+1]-q.pos[i]-s)*(q.heights[i]-q.heights[i-1])/(q.pos[i]-q.pos[i-1]))
}

func (q *P2Quantile) linear(i int, s float64) float64 {
	j := i + int(s)
	return q.heights[i] + s*(q.heights[j]-q.heights[i])/(q.pos[j]-q.pos[i])
}

// Estimate returns the current quantile estimate (exact for < 5 samples).
func (q *P2Quantile) Estimate() float64 {
	if q.n == 0 {
		return math.NaN()
	}
	if q.n < 5 {
		vals := append([]float64(nil), q.initial...)
		sort.Float64s(vals)
		idx := int(q.p * float64(len(vals)))
		if idx >= len(vals) {
			idx = len(vals) - 1
		}
		return vals[idx]
	}
	return q.heights[2]
}

// Count returns the number of observations.
func (q *P2Quantile) Count() int { return q.n }

// ColumnProfile is a one-pass summary of a numeric column: the MADlib-style
// profiling result an ML pipeline consults before training.
type ColumnProfile struct {
	Count          int
	Min, Max       float64
	Mean, Std      float64
	ApproxDistinct float64
	ApproxMedian   float64
}

// Profile computes a ColumnProfile in a single pass using Welford's
// algorithm for moments, an FM sketch for distinct counting, and a P² sketch
// for the median.
func Profile(col []float64) (*ColumnProfile, error) {
	if len(col) == 0 {
		return nil, fmt.Errorf("sketch: empty column")
	}
	fm, err := NewFM(64)
	if err != nil {
		return nil, err
	}
	med, err := NewP2Quantile(0.5)
	if err != nil {
		return nil, err
	}
	p := &ColumnProfile{Min: math.Inf(1), Max: math.Inf(-1)}
	mean, m2 := 0.0, 0.0
	var buf [8]byte
	for _, v := range col {
		p.Count++
		if v < p.Min {
			p.Min = v
		}
		if v > p.Max {
			p.Max = v
		}
		delta := v - mean
		mean += delta / float64(p.Count)
		m2 += delta * (v - mean)
		bits := math.Float64bits(v)
		for b := 0; b < 8; b++ {
			buf[b] = byte(bits >> (8 * b))
		}
		fm.Add(string(buf[:]))
		med.Add(v)
	}
	p.Mean = mean
	p.Std = math.Sqrt(m2 / float64(p.Count))
	p.ApproxDistinct = fm.Estimate()
	p.ApproxMedian = med.Estimate()
	return p, nil
}
