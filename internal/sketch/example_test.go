package sketch_test

import (
	"fmt"
	"log"

	"dmml/internal/sketch"
)

// Profiling a column in one pass with bounded memory.
func ExampleProfile() {
	col := make([]float64, 0, 1000)
	for i := 0; i < 1000; i++ {
		col = append(col, float64(i%10))
	}
	p, err := sketch.Profile(col)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("count:", p.Count)
	fmt.Println("min..max:", p.Min, "..", p.Max)
	fmt.Println("distinct within 2x of 10:", p.ApproxDistinct > 5 && p.ApproxDistinct < 20)
	// Output:
	// count: 1000
	// min..max: 0 .. 9
	// distinct within 2x of 10: true
}
