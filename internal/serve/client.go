package serve

import (
	"bufio"
	"net"
	"sync/atomic"
	"time"
)

// Client is a minimal protocol client over one TCP connection. Send/Recv
// are split so a driver can pipeline many requests before reading
// responses (the loadtest's closed loop); Predict is the synchronous
// convenience. Send/Flush and Recv touch disjoint buffers, so exactly one
// sender goroutine plus one receiver goroutine may share a Client (the
// loadtest's open loop); anything more concurrent needs one Client per
// goroutine, which is also how you exercise cross-connection batching.
type Client struct {
	nc     net.Conn
	br     *bufio.Reader
	bw     *bufio.Writer
	wbuf   []byte
	rbuf   []byte
	nextID atomic.Uint64
}

// Dial connects to a dmmlserve address.
func Dial(addr string, timeout time.Duration) (*Client, error) {
	nc, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return nil, err
	}
	return &Client{
		nc: nc,
		br: bufio.NewReaderSize(nc, 64<<10),
		bw: bufio.NewWriterSize(nc, 64<<10),
	}, nil
}

// Close tears down the connection.
func (c *Client) Close() error { return c.nc.Close() }

// Send writes one predict request without flushing and returns its
// request ID. Call Flush (or Predict) before expecting responses.
func (c *Client) Send(model string, row []float64) (uint64, error) {
	id := c.nextID.Add(1)
	var err error
	c.wbuf, err = AppendRequest(c.wbuf[:0], Request{ID: id, Model: model, Row: row})
	if err != nil {
		return 0, err
	}
	if _, err := c.bw.Write(c.wbuf); err != nil {
		return 0, err
	}
	return id, nil
}

// Flush pushes buffered requests onto the wire.
func (c *Client) Flush() error { return c.bw.Flush() }

// Recv reads one response frame.
func (c *Client) Recv() (Response, error) {
	var err error
	c.rbuf, err = ReadFrame(c.br, c.rbuf)
	if err != nil {
		return Response{}, err
	}
	return DecodeResponse(c.rbuf)
}

// Predict sends one request and waits for its response.
func (c *Client) Predict(model string, row []float64) (Response, error) {
	id, err := c.Send(model, row)
	if err != nil {
		return Response{}, err
	}
	if err := c.Flush(); err != nil {
		return Response{}, err
	}
	resp, err := c.Recv()
	if err != nil {
		return Response{}, err
	}
	for resp.ID != id { // stale pipelined responses (none in sync use)
		if resp, err = c.Recv(); err != nil {
			return Response{}, err
		}
	}
	return resp, nil
}
