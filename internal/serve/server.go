package serve

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"dmml/internal/modeldb"
)

// Config parameterizes a Server.
type Config struct {
	// Addr is the TCP listen address, e.g. "127.0.0.1:7077". With an empty
	// port (":0") the kernel picks one; see Server.Addr.
	Addr string
	// Store is the model registry served from. Hot weights are snapshots of
	// Store.Latest(name); Reload picks up newly logged versions.
	Store *modeldb.Store
	// MaxBatch caps the rows scored per GEMV chunk (default 256).
	MaxBatch int
	// Linger is an optional fixed coalescing window the batch worker waits
	// after waking before draining (default 0: drain whatever is queued —
	// batching then adapts to load with no added latency at idle).
	Linger time.Duration
	// PollInterval, when positive, starts a background loop calling Reload
	// so versions logged by a trainer become servable automatically.
	PollInterval time.Duration
}

func (c Config) withDefaults() Config {
	if c.MaxBatch <= 0 {
		c.MaxBatch = 256
	}
	return c
}

// Server is the batched online inference server. Create with New, start
// with Serve, stop with Shutdown.
type Server struct {
	cfg Config
	ln  net.Listener

	qmu    sync.RWMutex
	queues map[string]*modelQueue

	cmu   sync.Mutex
	conns map[*srvConn]struct{}

	connWG     sync.WaitGroup
	workerWG   sync.WaitGroup
	stopW      chan struct{} // closed after conns drain: workers may exit
	pollDone   chan struct{}
	draining   atomic.Bool
	shutdownMu sync.Mutex
	shutdown   bool
}

// New creates a server and binds its listener (so Addr is valid before
// Serve is called — tests and the loadtest self-serve mode need the port).
func New(cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	if cfg.Store == nil {
		return nil, fmt.Errorf("serve: Config.Store is required")
	}
	ln, err := net.Listen("tcp", cfg.Addr)
	if err != nil {
		return nil, fmt.Errorf("serve: listen %s: %w", cfg.Addr, err)
	}
	s := &Server{
		cfg:      cfg,
		ln:       ln,
		queues:   map[string]*modelQueue{},
		conns:    map[*srvConn]struct{}{},
		stopW:    make(chan struct{}),
		pollDone: make(chan struct{}),
	}
	if cfg.PollInterval > 0 {
		go s.pollLoop()
	} else {
		close(s.pollDone)
	}
	return s, nil
}

// Addr returns the bound listen address.
func (s *Server) Addr() net.Addr { return s.ln.Addr() }

// Serve accepts connections until Shutdown closes the listener. It always
// returns a non-nil error; after a clean Shutdown that error is net.ErrClosed.
func (s *Server) Serve() error {
	for {
		nc, err := s.ln.Accept()
		if err != nil {
			return err
		}
		if s.draining.Load() {
			nc.Close()
			continue
		}
		mConnsOpened.Inc()
		s.connWG.Add(1)
		go s.handleConn(nc)
	}
}

// Shutdown drains the server: stop accepting, unblock connection readers,
// wait for every admitted request to be answered and flushed, then stop
// the batch workers. Safe to call more than once.
func (s *Server) Shutdown() {
	s.shutdownMu.Lock()
	defer s.shutdownMu.Unlock()
	if s.shutdown {
		return
	}
	s.shutdown = true
	s.draining.Store(true)
	s.ln.Close()
	// Unblock every reader parked in ReadFrame; each then finishes its
	// in-flight requests, flushes its writer and closes.
	s.cmu.Lock()
	for c := range s.conns {
		c.nc.SetReadDeadline(time.Now())
	}
	s.cmu.Unlock()
	s.connWG.Wait()
	close(s.stopW)
	s.workerWG.Wait()
	<-s.pollDone
}

// Reload rescans the store for every model currently being served and
// atomically swaps in any newer logged version. In-flight batches keep the
// snapshot they captured, so a reload never drops or misroutes a request.
// It returns the number of models swapped.
func (s *Server) Reload() int {
	s.qmu.RLock()
	qs := make([]*modelQueue, 0, len(s.queues))
	for _, q := range s.queues {
		qs = append(qs, q)
	}
	s.qmu.RUnlock()
	swapped := 0
	for _, q := range qs {
		m, err := loadModel(s.cfg.Store, q.name)
		if err != nil {
			continue // keep serving the cached snapshot
		}
		if cur := q.hot.Load(); cur == nil || m.version > cur.version {
			q.hot.Store(m)
			mReloads.Inc()
			swapped++
		}
	}
	return swapped
}

func (s *Server) pollLoop() {
	defer close(s.pollDone)
	t := time.NewTicker(s.cfg.PollInterval)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			s.Reload()
		case <-s.stopW:
			return
		}
	}
}

// queueFor returns the admission queue for model (creating it, worker
// included, on the first request that names the model) plus the current
// snapshot. A name with no logged runs returns an error and creates nothing.
func (s *Server) queueFor(model string) (*modelQueue, *hotModel, error) {
	s.qmu.RLock()
	q := s.queues[model]
	s.qmu.RUnlock()
	if q != nil {
		return q, q.hot.Load(), nil
	}
	m, err := loadModel(s.cfg.Store, model)
	if err != nil {
		return nil, nil, err
	}
	s.qmu.Lock()
	defer s.qmu.Unlock()
	if q = s.queues[model]; q != nil { // lost the creation race
		return q, q.hot.Load(), nil
	}
	q = &modelQueue{name: model, wake: make(chan struct{}, 1)}
	q.hot.Store(m)
	s.queues[model] = q
	s.workerWG.Add(1)
	go q.loop(s, s.stopW)
	return q, m, nil
}

// srvConn is one client connection: a reader goroutine (handleConn) that
// decodes and admits requests, and a writer goroutine that encodes and
// flushes responses as batch completions deliver them.
type srvConn struct {
	nc  net.Conn
	out chan Response
	// pending counts requests admitted but not yet handed to the writer;
	// the reader waits on it before closing out, so every admitted request
	// gets its response written even while the server drains.
	pending sync.WaitGroup
}

// reply hands one response to the connection writer and closes out the
// request's latency span. Called by batch workers and by the admission
// path for immediate errors.
func (c *srvConn) reply(r Response, start time.Time) {
	if r.Status == StatusOK {
		mPredictions.Inc()
	} else {
		mErrors.Inc()
	}
	tRequest.Observe(time.Since(start))
	c.out <- r
	c.pending.Done()
}

func (s *Server) handleConn(nc net.Conn) {
	defer s.connWG.Done()
	c := &srvConn{nc: nc, out: make(chan Response, 4096)}
	s.cmu.Lock()
	s.conns[c] = struct{}{}
	s.cmu.Unlock()
	if s.draining.Load() { // raced with Shutdown's deadline sweep
		nc.SetReadDeadline(time.Now())
	}

	writerDone := make(chan struct{})
	go c.writeLoop(writerDone)

	br := bufio.NewReaderSize(nc, 64<<10)
	frame := make([]byte, 0, 4<<10)
	row := make([]float64, MaxFeatures)
	for {
		var err error
		frame, err = ReadFrame(br, frame)
		if err != nil {
			break // EOF, drain deadline, or unrecoverable framing error
		}
		req, err := DecodeRequest(frame, row)
		if err != nil {
			// The stream may be desynchronized; answer and hang up.
			c.pending.Add(1)
			c.reply(Response{ID: req.ID, Status: StatusBadRequest, Msg: err.Error()}, time.Now())
			break
		}
		s.submit(c, req)
	}

	c.pending.Wait() // every admitted request answered
	close(c.out)     // writer flushes the tail and exits
	<-writerDone
	nc.Close()
	s.cmu.Lock()
	delete(s.conns, c)
	s.cmu.Unlock()
}

// submit admits one decoded request: resolve the model, validate the row
// dimension, and append to the model's batch. req.Row may alias the
// connection's decode buffer — enqueue copies it before returning.
func (s *Server) submit(c *srvConn, req Request) {
	mRequests.Inc()
	start := time.Now()
	c.pending.Add(1)
	q, m, err := s.queueFor(req.Model)
	if err != nil {
		c.reply(Response{ID: req.ID, Status: StatusNoModel, Msg: err.Error()}, start)
		return
	}
	if m == nil || len(req.Row) != m.dim {
		dim := 0
		if m != nil {
			dim = m.dim
		}
		c.reply(Response{
			ID:     req.ID,
			Status: StatusBadRequest,
			Msg:    fmt.Sprintf("model %q wants %d features, got %d", req.Model, dim, len(req.Row)),
		}, start)
		return
	}
	if !q.enqueue(c, req.ID, req.Row, start) {
		c.reply(Response{
			ID:     req.ID,
			Status: StatusInternal,
			Msg:    fmt.Sprintf("model %q dimension changed during batching", req.Model),
		}, start)
	}
}

func (c *srvConn) writeLoop(done chan<- struct{}) {
	defer close(done)
	bw := bufio.NewWriterSize(c.nc, 64<<10)
	buf := make([]byte, 0, 1<<10)
	var werr error
	for r := range c.out {
		if werr != nil {
			continue // client is gone; keep draining so reply never blocks
		}
		buf = AppendResponse(buf[:0], r)
		if _, werr = bw.Write(buf); werr != nil {
			continue
		}
		if len(c.out) == 0 { // nothing queued behind us: flush the batch
			werr = bw.Flush()
		}
	}
	if werr == nil {
		bw.Flush()
	}
}

// IsClosedErr reports whether err is the listener-closed error a clean
// Shutdown makes Serve return.
func IsClosedErr(err error) bool { return errors.Is(err, net.ErrClosed) }
