package serve

import (
	"math"

	"dmml/internal/modeldb"
)

// Demo model names and dimensions shared by `dmmlserve -demo` and
// `loadtest -selfserve`, so the two binaries agree without a registry file.
const (
	DemoChurnModel = "churn" // logistic link, DemoChurnDim features
	DemoChurnDim   = 16
	DemoLinModel   = "linear" // identity link, DemoLinDim features
	DemoLinDim     = 8
)

// LogDemoModels logs two deterministic demo models into store: a logistic
// churn scorer and a linear regressor. Weights are fixed functions of the
// feature index, so a client can recompute expected predictions exactly.
func LogDemoModels(store *modeldb.Store) error {
	churn := make([]float64, DemoChurnDim)
	for i := range churn {
		churn[i] = math.Sin(float64(i+1)) * 0.5
	}
	if _, err := store.Log(modeldb.Spec{
		Name:     DemoChurnModel,
		Weights:  churn,
		Config:   map[string]float64{"bias": -0.25},
		Tags:     []string{"link:logistic", "demo"},
		ParentID: -1,
	}); err != nil {
		return err
	}
	lin := make([]float64, DemoLinDim)
	for i := range lin {
		lin[i] = float64(i+1) * 0.125
	}
	_, err := store.Log(modeldb.Spec{
		Name:     DemoLinModel,
		Weights:  lin,
		Config:   map[string]float64{"bias": 2},
		Tags:     []string{"demo"},
		ParentID: -1,
	})
	return err
}
