package serve

import (
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"dmml/internal/la"
	"dmml/internal/modeldb"
	"dmml/internal/pool"
)

// hotModel is an immutable weight snapshot served for one model name.
// Reload builds a fresh snapshot and swaps the queue's atomic pointer; a
// batch captures the pointer once, so every request in that batch is scored
// by one consistent version even while a swap lands — this is the whole
// drain-free reload mechanism.
type hotModel struct {
	name    string
	runID   int
	version int
	dim     int
	weights []float64
	bias    float64
	link    la.Link
}

// loadModel builds a hotModel from the latest run logged under name.
// Serving conventions over the modeldb schema: Weights are the coefficient
// vector (its length is the feature dimension), Config["bias"] the
// intercept, and a "link:logistic" tag selects the sigmoid link.
func loadModel(store *modeldb.Store, name string) (*hotModel, error) {
	run, err := store.Latest(name)
	if err != nil {
		return nil, err
	}
	if len(run.Weights) == 0 {
		return nil, fmt.Errorf("serve: model %q run %d has no weights", name, run.ID)
	}
	if len(run.Weights) > MaxFeatures {
		return nil, fmt.Errorf("serve: model %q dimension %d exceeds wire limit %d", name, len(run.Weights), MaxFeatures)
	}
	m := &hotModel{
		name:    name,
		runID:   run.ID,
		version: run.Version,
		dim:     len(run.Weights),
		weights: run.Weights, // modeldb read paths deep-copy: this is ours
		bias:    run.Config["bias"],
		link:    la.LinkIdentity,
	}
	for _, tag := range run.Tags {
		if strings.EqualFold(tag, "link:logistic") {
			m.link = la.LinkLogistic
		}
	}
	return m, nil
}

// pendBatch accumulates admitted requests for one model between drains:
// parallel id/conn/start columns plus the feature rows packed into one
// flat buffer, ready to be viewed as a dense matrix without re-copying.
type pendBatch struct {
	ids    []uint64
	conns  []*srvConn
	starts []time.Time
	rows   []float64 // len == len(ids) * stride
}

func (b *pendBatch) reset() {
	b.ids = b.ids[:0]
	b.conns = b.conns[:0]
	b.starts = b.starts[:0]
	b.rows = b.rows[:0]
}

// modelQueue is the admission/batching stage for one model: connections
// append under the mutex, a dedicated worker drains everything queued and
// scores it as one batch. Natural coalescing, no timers: while a GEMV is in
// flight, newly arriving requests pile into the next batch, so batch size
// adapts to load (1 at idle, up to MaxBatch under pressure).
type modelQueue struct {
	name string
	hot  atomic.Pointer[hotModel]

	mu     sync.Mutex
	pend   pendBatch
	stride int // feature dim the current pend batch was packed with
	wake   chan struct{}

	// free is the worker-owned spare batch swapped in at each drain; only
	// the worker touches it, so it needs no lock.
	free pendBatch
}

// enqueue admits one request. The row is copied into the batch buffer
// before return, so the caller may reuse its decode buffer immediately.
// It reports false when the row's width conflicts with rows already packed
// in the pending batch (possible only when a reload changed the model's
// dimension between two admissions).
func (q *modelQueue) enqueue(c *srvConn, id uint64, row []float64, start time.Time) bool {
	q.mu.Lock()
	if len(q.pend.ids) == 0 {
		q.stride = len(row)
	} else if len(row) != q.stride {
		q.mu.Unlock()
		return false
	}
	q.pend.ids = append(q.pend.ids, id)
	q.pend.conns = append(q.pend.conns, c)
	q.pend.starts = append(q.pend.starts, start)
	q.pend.rows = append(q.pend.rows, row...)
	q.mu.Unlock()
	select {
	case q.wake <- struct{}{}:
	default: // worker already signaled
	}
	return true
}

// loop is the per-model batch worker. It exits when stop closes; the
// server only closes stop after every connection has drained, so no
// admitted request is ever abandoned.
func (q *modelQueue) loop(s *Server, stop <-chan struct{}) {
	defer s.workerWG.Done()
	for {
		select {
		case <-q.wake:
		case <-stop:
			return
		}
		if s.cfg.Linger > 0 {
			// Optional fixed coalescing window: trade that much latency for
			// larger batches at low request rates.
			time.Sleep(s.cfg.Linger)
		}
		q.mu.Lock()
		batch, stride := q.pend, q.stride
		q.pend = q.free
		q.mu.Unlock()
		if len(batch.ids) == 0 {
			q.free = batch
			continue
		}
		gQueueDepth.Set(float64(len(batch.ids)))
		q.scoreBatch(s, &batch, stride)
		batch.reset()
		q.free = batch
	}
}

// scoreBatch scores every request in batch against one captured model
// snapshot, in MaxBatch-row chunks: gather is already done (rows are
// packed), so each chunk is one pooled GEMV + fused link over a matrix
// view of the packed buffer, followed by response fan-out.
func (q *modelQueue) scoreBatch(s *Server, batch *pendBatch, stride int) {
	m := q.hot.Load()
	n := len(batch.ids)
	if m == nil || m.dim != stride {
		// The model was swapped to a different dimensionality between
		// admission and drain. The packed rows no longer conform; refuse
		// each request rather than feed a kernel a shape it would panic on.
		for i := 0; i < n; i++ {
			batch.conns[i].reply(Response{
				ID:     batch.ids[i],
				Status: StatusInternal,
				Msg:    fmt.Sprintf("model %q dimension changed during batching", q.name),
			}, batch.starts[i])
		}
		return
	}
	mBatches.Inc()
	hBatchRows.Observe(int64(n))
	preds := pool.GetF64(n)
	sw := tScore.Start()
	for at := 0; at < n; at += s.cfg.MaxBatch {
		hi := min(at+s.cfg.MaxBatch, n)
		x, err := la.NewDenseData(hi-at, stride, batch.rows[at*stride:hi*stride])
		if err != nil {
			panic("serve: packed batch misshaped: " + err.Error()) // impossible: stride enforced at admission
		}
		la.ScoreRowsInto(preds[at:hi], x, m.weights, m.bias, m.link)
	}
	sw.Stop()
	for i := 0; i < n; i++ {
		batch.conns[i].reply(Response{
			ID:           batch.ids[i],
			Status:       StatusOK,
			ModelVersion: uint32(m.version),
			Value:        preds[i],
		}, batch.starts[i])
	}
	pool.PutF64(preds)
}
