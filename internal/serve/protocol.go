// Package serve is dmml's batched online inference server: the deployment
// stage of the paper's ML lifecycle, where trained models logged to
// internal/modeldb are scored over the network. Per-connection goroutines
// decode a compact length-prefixed binary protocol and feed a shared
// admission/batching stage that coalesces concurrent predict requests for
// the same model into one pooled GEMV (plus a compiled fused link kernel),
// amortizing dispatch across the batch. Hot model weights are cached per
// model and swapped atomically when a new version is logged, so reloads
// never drop or misroute in-flight requests.
package serve

import (
	"fmt"
	"io"
	"math"
)

// Wire format (all integers and floats little-endian):
//
//	frame    := u32 payloadLen | payload            (payloadLen = len(payload))
//	payload  := u16 magic | u8 version | u8 kind | u64 requestID | body
//
// Request kinds (high bit clear):
//
//	OpPredict body := u8 nameLen | name | u16 nFeatures | nFeatures × f64
//
// Response kinds (high bit set):
//
//	StatusOK       body := u32 modelVersion | f64 prediction
//	other statuses body := u16 msgLen | msg
//
// Every length is validated against the frame length — a payload must be
// consumed exactly — and all limits below are enforced before any
// allocation sized from untrusted bytes.
const (
	// Magic identifies a dmml serve frame ("DM" little-endian).
	Magic uint16 = 0x4D44
	// ProtoVersion is the protocol version this package speaks.
	ProtoVersion byte = 1

	// OpPredict requests one prediction for one feature row.
	OpPredict byte = 0x01

	// StatusOK carries a prediction and the model version that produced it.
	StatusOK byte = 0x80
	// StatusNoModel: the named model has no logged runs.
	StatusNoModel byte = 0x81
	// StatusBadRequest: malformed frame or wrong feature dimension.
	StatusBadRequest byte = 0x82
	// StatusShutdown: the server is draining and refused admission.
	StatusShutdown byte = 0x83
	// StatusInternal: the server failed to score an admitted request.
	StatusInternal byte = 0x84

	// MaxFrame bounds a frame payload; ReadFrame rejects larger lengths
	// before allocating, so a hostile length prefix cannot balloon memory.
	MaxFrame = 1 << 20
	// MaxName bounds the model-name field.
	MaxName = 255
	// MaxFeatures bounds the feature-row width.
	MaxFeatures = 4096
	// MaxErrMsg bounds the error-message field of a response.
	MaxErrMsg = 512

	lenPrefix = 4
	headerLen = 2 + 1 + 1 + 8 // magic, version, kind, requestID
)

// Request is one decoded predict request.
type Request struct {
	ID    uint64
	Model string
	Row   []float64
}

// Response is one decoded response frame.
type Response struct {
	ID           uint64
	Status       byte
	ModelVersion uint32 // StatusOK only
	Value        float64
	Msg          string // non-OK only
}

// Little-endian primitives, hand-rolled so the codec's hot loops stay free
// of interface-typed stdlib calls and provably allocation-free.

//dmml:noalloc
func leU16(b []byte) uint16 { return uint16(b[0]) | uint16(b[1])<<8 }

//dmml:noalloc
func lePutU16(b []byte, v uint16) {
	b[0] = byte(v)
	b[1] = byte(v >> 8)
}

//dmml:noalloc
func leU32(b []byte) uint32 {
	return uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24
}

//dmml:noalloc
func lePutU32(b []byte, v uint32) {
	b[0] = byte(v)
	b[1] = byte(v >> 8)
	b[2] = byte(v >> 16)
	b[3] = byte(v >> 24)
}

//dmml:noalloc
func leU64(b []byte) uint64 {
	return uint64(leU32(b)) | uint64(leU32(b[4:]))<<32
}

//dmml:noalloc
func lePutU64(b []byte, v uint64) {
	lePutU32(b, uint32(v))
	lePutU32(b[4:], uint32(v>>32))
}

//dmml:noalloc
func leF64(b []byte) float64 { return math.Float64frombits(leU64(b)) }

//dmml:noalloc
func lePutF64(b []byte, v float64) { lePutU64(b, math.Float64bits(v)) }

// decodeRowInto converts n wire floats from b into dst[:n]. dst must have
// length n and b length 8n; the callers size both from validated headers.
//dmml:noalloc
func decodeRowInto(dst []float64, b []byte) {
	for i := range dst {
		dst[i] = leF64(b[8*i:])
	}
}

// encodeRowInto writes row into b (8 bytes per element).
//dmml:noalloc
func encodeRowInto(b []byte, row []float64) {
	for i, v := range row {
		lePutF64(b[8*i:], v)
	}
}

// grow extends buf to length n, reusing capacity when it can.
func grow(buf []byte, n int) []byte {
	if cap(buf) >= n {
		return buf[:n]
	}
	return append(buf[:cap(buf)], make([]byte, n-cap(buf))...)
}

func appendHeader(buf []byte, payloadLen int, kind byte, id uint64) []byte {
	at := len(buf)
	buf = grow(buf, at+lenPrefix+headerLen)
	lePutU32(buf[at:], uint32(payloadLen))
	lePutU16(buf[at+4:], Magic)
	buf[at+6] = ProtoVersion
	buf[at+7] = kind
	lePutU64(buf[at+8:], id)
	return buf
}

// AppendRequest appends a length-prefixed predict frame for r to buf and
// returns the extended slice. It validates the request against the wire
// limits so a malformed request is caught on the client, not the server.
func AppendRequest(buf []byte, r Request) ([]byte, error) {
	if len(r.Model) == 0 || len(r.Model) > MaxName {
		return buf, fmt.Errorf("serve: model name length %d outside [1, %d]", len(r.Model), MaxName)
	}
	if len(r.Row) == 0 || len(r.Row) > MaxFeatures {
		return buf, fmt.Errorf("serve: feature row length %d outside [1, %d]", len(r.Row), MaxFeatures)
	}
	payloadLen := headerLen + 1 + len(r.Model) + 2 + 8*len(r.Row)
	buf = appendHeader(buf, payloadLen, OpPredict, r.ID)
	at := len(buf)
	buf = grow(buf, at+1+len(r.Model)+2+8*len(r.Row))
	buf[at] = byte(len(r.Model))
	copy(buf[at+1:], r.Model)
	at += 1 + len(r.Model)
	lePutU16(buf[at:], uint16(len(r.Row)))
	encodeRowInto(buf[at+2:], r.Row)
	return buf, nil
}

// AppendResponse appends a length-prefixed response frame for r to buf and
// returns the extended slice. Over-long messages are truncated to MaxErrMsg.
func AppendResponse(buf []byte, r Response) []byte {
	if r.Status == StatusOK {
		buf = appendHeader(buf, headerLen+4+8, StatusOK, r.ID)
		at := len(buf)
		buf = grow(buf, at+4+8)
		lePutU32(buf[at:], r.ModelVersion)
		lePutF64(buf[at+4:], r.Value)
		return buf
	}
	msg := r.Msg
	if len(msg) > MaxErrMsg {
		msg = msg[:MaxErrMsg]
	}
	buf = appendHeader(buf, headerLen+2+len(msg), r.Status, r.ID)
	at := len(buf)
	buf = grow(buf, at+2+len(msg))
	lePutU16(buf[at:], uint16(len(msg)))
	copy(buf[at+2:], msg)
	return buf
}

// decodeHeader validates the shared payload header and returns kind and id.
func decodeHeader(payload []byte) (kind byte, id uint64, err error) {
	if len(payload) < headerLen {
		return 0, 0, fmt.Errorf("serve: payload %d bytes, header needs %d", len(payload), headerLen)
	}
	if m := leU16(payload); m != Magic {
		return 0, 0, fmt.Errorf("serve: bad magic %#04x", m)
	}
	if v := payload[2]; v != ProtoVersion {
		return 0, 0, fmt.Errorf("serve: unsupported protocol version %d", v)
	}
	return payload[3], leU64(payload[4:]), nil
}

// DecodeRequest parses a predict-request payload (a frame minus its length
// prefix). The decoded row is written into rowBuf when it has sufficient
// capacity (so a connection loop reuses one buffer for every frame) and
// freshly allocated otherwise. The model name is copied out of payload.
func DecodeRequest(payload []byte, rowBuf []float64) (Request, error) {
	kind, id, err := decodeHeader(payload)
	if err != nil {
		return Request{}, err
	}
	req := Request{ID: id}
	if kind != OpPredict {
		return req, fmt.Errorf("serve: unknown request kind %#02x", kind)
	}
	body := payload[headerLen:]
	if len(body) < 1 {
		return req, fmt.Errorf("serve: request body missing name length")
	}
	nameLen := int(body[0])
	if nameLen == 0 {
		return req, fmt.Errorf("serve: empty model name")
	}
	if len(body) < 1+nameLen+2 {
		return req, fmt.Errorf("serve: request body %d bytes too short for name length %d", len(body), nameLen)
	}
	req.Model = string(body[1 : 1+nameLen])
	nFeat := int(leU16(body[1+nameLen:]))
	rowBytes := body[1+nameLen+2:]
	if nFeat == 0 || nFeat > MaxFeatures {
		return req, fmt.Errorf("serve: feature count %d outside [1, %d]", nFeat, MaxFeatures)
	}
	if len(rowBytes) != 8*nFeat {
		return req, fmt.Errorf("serve: row payload %d bytes, want %d for %d features", len(rowBytes), 8*nFeat, nFeat)
	}
	if cap(rowBuf) >= nFeat {
		req.Row = rowBuf[:nFeat]
	} else {
		req.Row = make([]float64, nFeat)
	}
	decodeRowInto(req.Row, rowBytes)
	return req, nil
}

// DecodeResponse parses a response payload (a frame minus its length prefix).
func DecodeResponse(payload []byte) (Response, error) {
	kind, id, err := decodeHeader(payload)
	if err != nil {
		return Response{}, err
	}
	resp := Response{ID: id, Status: kind}
	body := payload[headerLen:]
	if kind == StatusOK {
		if len(body) != 4+8 {
			return resp, fmt.Errorf("serve: OK body %d bytes, want 12", len(body))
		}
		resp.ModelVersion = leU32(body)
		resp.Value = leF64(body[4:])
		return resp, nil
	}
	if kind < StatusOK {
		return resp, fmt.Errorf("serve: unknown response kind %#02x", kind)
	}
	if len(body) < 2 {
		return resp, fmt.Errorf("serve: error body missing message length")
	}
	msgLen := int(leU16(body))
	if msgLen > MaxErrMsg {
		return resp, fmt.Errorf("serve: error message length %d exceeds %d", msgLen, MaxErrMsg)
	}
	if len(body) != 2+msgLen {
		return resp, fmt.Errorf("serve: error body %d bytes, want %d", len(body), 2+msgLen)
	}
	resp.Msg = string(body[2:])
	return resp, nil
}

// ReadFrame reads one length-prefixed frame from r into buf (grown as
// needed) and returns the payload. The length prefix is validated against
// MaxFrame and the header size before any allocation, so a corrupt or
// hostile prefix cannot trigger an unbounded read.
func ReadFrame(r io.Reader, buf []byte) ([]byte, error) {
	var pre [lenPrefix]byte
	if _, err := io.ReadFull(r, pre[:]); err != nil {
		return buf[:0], err
	}
	n := int(leU32(pre[:]))
	if n < headerLen || n > MaxFrame {
		return buf[:0], fmt.Errorf("serve: frame length %d outside [%d, %d]", n, headerLen, MaxFrame)
	}
	buf = grow(buf, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return buf[:0], err
	}
	return buf, nil
}
