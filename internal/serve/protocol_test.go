package serve

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

func TestRequestRoundTrip(t *testing.T) {
	for _, req := range []Request{
		{ID: 1, Model: "m", Row: []float64{0}},
		{ID: 1<<64 - 1, Model: strings.Repeat("n", MaxName), Row: []float64{1.5, -2.25, math.Pi}},
		{ID: 42, Model: "churn", Row: make([]float64, MaxFeatures)},
		{ID: 7, Model: "nan", Row: []float64{math.NaN(), math.Inf(1), math.Inf(-1), -0.0}},
	} {
		frame, err := AppendRequest(nil, req)
		if err != nil {
			t.Fatalf("encode %+v: %v", req, err)
		}
		got, err := DecodeRequest(frame[lenPrefix:], nil)
		if err != nil {
			t.Fatalf("decode %+v: %v", req, err)
		}
		if got.ID != req.ID || got.Model != req.Model || len(got.Row) != len(req.Row) {
			t.Fatalf("round trip: got %+v want %+v", got, req)
		}
		for i := range req.Row {
			if math.Float64bits(got.Row[i]) != math.Float64bits(req.Row[i]) {
				t.Fatalf("row[%d]: %v != %v (bits differ)", i, got.Row[i], req.Row[i])
			}
		}
	}
}

func TestResponseRoundTrip(t *testing.T) {
	for _, resp := range []Response{
		{ID: 9, Status: StatusOK, ModelVersion: 3, Value: 0.75},
		{ID: 10, Status: StatusNoModel, Msg: "no runs named \"x\""},
		{ID: 11, Status: StatusBadRequest, Msg: ""},
		{ID: 12, Status: StatusShutdown, Msg: strings.Repeat("y", MaxErrMsg)},
	} {
		frame := AppendResponse(nil, resp)
		got, err := DecodeResponse(frame[lenPrefix:])
		if err != nil {
			t.Fatalf("decode %+v: %v", resp, err)
		}
		if got != resp {
			t.Fatalf("round trip: got %+v want %+v", got, resp)
		}
	}
}

func TestAppendRequestRejectsBadInputs(t *testing.T) {
	if _, err := AppendRequest(nil, Request{Model: "", Row: []float64{1}}); err == nil {
		t.Fatal("empty model accepted")
	}
	if _, err := AppendRequest(nil, Request{Model: strings.Repeat("m", MaxName+1), Row: []float64{1}}); err == nil {
		t.Fatal("over-long model accepted")
	}
	if _, err := AppendRequest(nil, Request{Model: "m", Row: nil}); err == nil {
		t.Fatal("empty row accepted")
	}
	if _, err := AppendRequest(nil, Request{Model: "m", Row: make([]float64, MaxFeatures+1)}); err == nil {
		t.Fatal("over-wide row accepted")
	}
}

func TestDecodeRejectsMalformed(t *testing.T) {
	valid, err := AppendRequest(nil, Request{ID: 5, Model: "m", Row: []float64{1, 2}})
	if err != nil {
		t.Fatal(err)
	}
	payload := valid[lenPrefix:]
	cases := map[string][]byte{
		"empty":          {},
		"short header":   payload[:headerLen-1],
		"bad magic":      append([]byte{0xff, 0xff}, payload[2:]...),
		"bad version":    func() []byte { p := bytes.Clone(payload); p[2] = 99; return p }(),
		"bad kind":       func() []byte { p := bytes.Clone(payload); p[3] = 0x7f; return p }(),
		"truncated row":  payload[:len(payload)-3],
		"oversized body": append(bytes.Clone(payload), 0xAA),
		"name over body": func() []byte { p := bytes.Clone(payload); p[headerLen] = 200; return p }(),
		"zero features": func() []byte {
			p := bytes.Clone(payload)
			lePutU16(p[headerLen+2:], 0)
			return p[:headerLen+2+2]
		}(),
	}
	for name, p := range cases {
		if _, err := DecodeRequest(p, nil); err == nil {
			t.Errorf("%s: decode accepted", name)
		}
	}
	if _, err := DecodeResponse(payload); err == nil {
		t.Error("request payload accepted as response")
	}
}

func TestReadFrameRejectsHostileLengths(t *testing.T) {
	// A hostile length prefix larger than MaxFrame must be rejected before
	// any allocation happens.
	var pre [lenPrefix]byte
	lePutU32(pre[:], MaxFrame+1)
	if _, err := ReadFrame(bytes.NewReader(pre[:]), nil); err == nil {
		t.Fatal("over-long frame accepted")
	}
	lePutU32(pre[:], headerLen-1)
	if _, err := ReadFrame(bytes.NewReader(pre[:]), nil); err == nil {
		t.Fatal("under-long frame accepted")
	}
	// Truncated stream: header promises more bytes than arrive.
	lePutU32(pre[:], 100)
	if _, err := ReadFrame(bytes.NewReader(append(pre[:], 1, 2, 3)), nil); err == nil {
		t.Fatal("truncated frame accepted")
	}
}

func TestReadFrameReusesBuffer(t *testing.T) {
	frame, err := AppendRequest(nil, Request{ID: 1, Model: "m", Row: []float64{1, 2, 3}})
	if err != nil {
		t.Fatal(err)
	}
	stream := bytes.NewReader(bytes.Repeat(frame, 3))
	buf := make([]byte, 0, 256)
	first := &buf[:1][0]
	for i := 0; i < 3; i++ {
		buf, err = ReadFrame(stream, buf)
		if err != nil {
			t.Fatal(err)
		}
		if &buf[0] != first {
			t.Fatal("ReadFrame reallocated despite sufficient capacity")
		}
		if _, err := DecodeRequest(buf, nil); err != nil {
			t.Fatal(err)
		}
	}
}

// FuzzServeProtocol exercises the frame codec three ways: arbitrary bytes
// must never panic a decoder (or allocate unboundedly — lengths are checked
// before allocation), anything that does decode must re-encode/re-decode to
// the same value, and a structured request derived from the fuzz input must
// survive encode→decode exactly.
func FuzzServeProtocol(f *testing.F) {
	seed1, _ := AppendRequest(nil, Request{ID: 3, Model: "churn", Row: []float64{1, 2, 3}})
	seed2 := AppendResponse(nil, Response{ID: 4, Status: StatusOK, ModelVersion: 2, Value: 0.5})
	seed3 := AppendResponse(nil, Response{ID: 5, Status: StatusNoModel, Msg: "gone"})
	f.Add(seed1[lenPrefix:], uint64(1), "m")
	f.Add(seed2[lenPrefix:], uint64(2), "fraud")
	f.Add(seed3[lenPrefix:], uint64(9), strings.Repeat("z", MaxName))
	f.Add([]byte{0x44, 0x4d, 1, 1}, uint64(0), "")

	f.Fuzz(func(t *testing.T, payload []byte, id uint64, model string) {
		// 1. Hostile payloads: decoders must reject or round-trip, never panic.
		if req, err := DecodeRequest(payload, nil); err == nil {
			re, err := AppendRequest(nil, req)
			if err != nil {
				t.Fatalf("decoded request %+v does not re-encode: %v", req, err)
			}
			back, err := DecodeRequest(re[lenPrefix:], nil)
			if err != nil {
				t.Fatalf("re-encoded request does not decode: %v", err)
			}
			if back.ID != req.ID || back.Model != req.Model || len(back.Row) != len(req.Row) {
				t.Fatalf("request round trip drifted: %+v vs %+v", back, req)
			}
		}
		if resp, err := DecodeResponse(payload); err == nil {
			back, err := DecodeResponse(AppendResponse(nil, resp)[lenPrefix:])
			sameValue := math.Float64bits(back.Value) == math.Float64bits(resp.Value)
			if err != nil || back.ID != resp.ID || back.Status != resp.Status ||
				back.ModelVersion != resp.ModelVersion || back.Msg != resp.Msg || !sameValue {
				t.Fatalf("response round trip drifted: %+v vs %+v (%v)", back, resp, err)
			}
		}
		// 2. ReadFrame over the raw bytes: must never panic or over-read.
		if _, err := ReadFrame(bytes.NewReader(payload), nil); err == nil {
			// fine: payload happened to carry a well-formed length prefix
			_ = err
		}
		// 3. Structured round trip from the fuzzed scalars.
		if len(model) == 0 || len(model) > MaxName {
			return
		}
		row := make([]float64, 1+len(payload)%8)
		for i := range row {
			row[i] = float64(i) * 0.5
		}
		frame, err := AppendRequest(nil, Request{ID: id, Model: model, Row: row})
		if err != nil {
			t.Fatal(err)
		}
		got, err := DecodeRequest(frame[lenPrefix:], nil)
		if err != nil {
			t.Fatal(err)
		}
		if got.ID != id || got.Model != model || len(got.Row) != len(row) {
			t.Fatalf("structured round trip drifted: %+v", got)
		}
	})
}
