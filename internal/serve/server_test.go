package serve

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"dmml/internal/la"
	"dmml/internal/metrics"
	"dmml/internal/modeldb"
)

func logModel(t testing.TB, store *modeldb.Store, name string, weights []float64, bias float64, logistic bool) modeldb.Run {
	t.Helper()
	spec := modeldb.Spec{
		Name:     name,
		Weights:  weights,
		Config:   map[string]float64{"bias": bias},
		ParentID: -1,
	}
	if logistic {
		spec.Tags = []string{"link:logistic"}
	}
	run, err := store.Log(spec)
	if err != nil {
		t.Fatal(err)
	}
	return run
}

func newTestServer(t testing.TB, mutate func(*Config)) (*Server, *modeldb.Store) {
	t.Helper()
	store := modeldb.NewStore()
	cfg := Config{Addr: "127.0.0.1:0", Store: store}
	if mutate != nil {
		mutate(&cfg)
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	go s.Serve()
	t.Cleanup(s.Shutdown)
	return s, store
}

func dialTest(t testing.TB, s *Server) *Client {
	t.Helper()
	c, err := Dial(s.Addr().String(), 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

func TestServePredictEndToEnd(t *testing.T) {
	s, store := newTestServer(t, nil)
	wLin := []float64{1, -2, 3}
	wLog := []float64{0.5, 0.25}
	logModel(t, store, "linreg", wLin, 0.75, false)
	logModel(t, store, "logreg", wLog, -0.5, true)

	const clients, perClient = 8, 50
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for g := 0; g < clients; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			c, err := Dial(s.Addr().String(), 2*time.Second)
			if err != nil {
				errs <- err
				return
			}
			defer c.Close()
			for i := 0; i < perClient; i++ {
				rowLin := []float64{float64(g), float64(i), 0.5}
				resp, err := c.Predict("linreg", rowLin)
				if err != nil {
					errs <- err
					return
				}
				want := la.ScoreRow(rowLin, wLin, 0.75, la.LinkIdentity)
				if resp.Status != StatusOK || math.Abs(resp.Value-want) > 1e-12 {
					errs <- fmt.Errorf("linreg: %+v, want value %v", resp, want)
					return
				}
				if resp.ModelVersion != 1 {
					errs <- fmt.Errorf("linreg version = %d, want 1", resp.ModelVersion)
					return
				}
				rowLog := []float64{float64(i) * 0.1, -float64(g)}
				resp, err = c.Predict("logreg", rowLog)
				if err != nil {
					errs <- err
					return
				}
				want = la.ScoreRow(rowLog, wLog, -0.5, la.LinkLogistic)
				if resp.Status != StatusOK || math.Abs(resp.Value-want) > 1e-12 {
					errs <- fmt.Errorf("logreg: %+v, want value %v", resp, want)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

func TestServeErrorStatuses(t *testing.T) {
	s, store := newTestServer(t, nil)
	logModel(t, store, "m", []float64{1, 2}, 0, false)

	c := dialTest(t, s)
	resp, err := c.Predict("nope", []float64{1})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Status != StatusNoModel || resp.Msg == "" {
		t.Fatalf("unknown model: %+v", resp)
	}
	resp, err = c.Predict("m", []float64{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Status != StatusBadRequest {
		t.Fatalf("wrong dimension: %+v", resp)
	}
	// The connection stays usable after per-request errors.
	resp, err = c.Predict("m", []float64{3, 4})
	if err != nil || resp.Status != StatusOK {
		t.Fatalf("valid after errors: %+v, %v", resp, err)
	}
	if want := la.ScoreRow([]float64{3, 4}, []float64{1, 2}, 0, la.LinkIdentity); resp.Value != want {
		t.Fatalf("value = %v, want %v", resp.Value, want)
	}
}

func TestServeModelLoggedAfterStart(t *testing.T) {
	s, store := newTestServer(t, nil)
	c := dialTest(t, s)
	if resp, err := c.Predict("late", []float64{1}); err != nil || resp.Status != StatusNoModel {
		t.Fatalf("before log: %+v, %v", resp, err)
	}
	logModel(t, store, "late", []float64{2}, 0, false)
	resp, err := c.Predict("late", []float64{3})
	if err != nil || resp.Status != StatusOK || resp.Value != 6 {
		t.Fatalf("after log: %+v, %v", resp, err)
	}
}

func TestServeMalformedFrameClosesConn(t *testing.T) {
	s, store := newTestServer(t, nil)
	logModel(t, store, "m", []float64{1}, 0, false)
	c := dialTest(t, s)
	// A syntactically valid frame whose payload is garbage: the server
	// answers StatusBadRequest and hangs up (the stream may be desynced).
	bad := make([]byte, lenPrefix+headerLen)
	lePutU32(bad, headerLen)
	lePutU16(bad[lenPrefix:], 0xBEEF) // wrong magic
	if _, err := c.nc.Write(bad); err != nil {
		t.Fatal(err)
	}
	resp, err := c.Recv()
	if err != nil || resp.Status != StatusBadRequest {
		t.Fatalf("malformed frame: %+v, %v", resp, err)
	}
	if _, err := c.Recv(); err == nil {
		t.Fatal("connection stayed open after protocol error")
	}
}

// TestBatchingCoalesces proves the admission stage actually batches: with a
// small linger window and many concurrently pipelined requests, at least
// one drained batch must contain more than one row (and every response
// must still be correct and correlated by request ID).
func TestBatchingCoalesces(t *testing.T) {
	metrics.Reset()
	metrics.Enable()
	defer func() { metrics.Disable(); metrics.Reset() }()

	s, store := newTestServer(t, func(c *Config) { c.Linger = 2 * time.Millisecond })
	w := []float64{2, 0.5}
	logModel(t, store, "m", w, 1, false)

	const conns, perConn = 4, 64
	var wg sync.WaitGroup
	errs := make(chan error, conns)
	for g := 0; g < conns; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			c, err := Dial(s.Addr().String(), 2*time.Second)
			if err != nil {
				errs <- err
				return
			}
			defer c.Close()
			want := map[uint64]float64{}
			for i := 0; i < perConn; i++ {
				row := []float64{float64(i), float64(g)}
				id, err := c.Send("m", row)
				if err != nil {
					errs <- err
					return
				}
				want[id] = la.ScoreRow(row, w, 1, la.LinkIdentity)
			}
			if err := c.Flush(); err != nil {
				errs <- err
				return
			}
			for i := 0; i < perConn; i++ {
				resp, err := c.Recv()
				if err != nil {
					errs <- err
					return
				}
				wv, ok := want[resp.ID]
				if !ok || resp.Status != StatusOK || resp.Value != wv {
					errs <- fmt.Errorf("conn %d: bad response %+v (want %v)", g, resp, wv)
					return
				}
				delete(want, resp.ID)
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	snap := hBatchRows.Snapshot()
	if snap.Count == 0 {
		t.Fatal("no batches recorded")
	}
	if snap.Max < 2 {
		t.Fatalf("no coalescing: max batch size %d over %d batches", snap.Max, snap.Count)
	}
	if snap.Sum != conns*perConn {
		t.Fatalf("batched rows = %d, want %d", snap.Sum, conns*perConn)
	}
	t.Logf("batches=%d rows=%d max=%d mean=%.1f", snap.Count, snap.Sum, snap.Max, snap.Mean)
}

// TestReloadSwapsWithoutDrops is the drain/reload acceptance test: logging
// a new model version mid-load and calling Reload must swap the weights
// with zero dropped or misrouted in-flight requests — every response is
// StatusOK and its value matches the version stamped on it.
func TestReloadSwapsWithoutDrops(t *testing.T) {
	s, store := newTestServer(t, nil)
	const dim = 4
	w1 := []float64{1, 1, 1, 1}
	w2 := []float64{2, 2, 2, 2}
	logModel(t, store, "hot", w1, 0.5, false)

	const clients = 6
	var sawV2 atomic.Int64
	stopLoad := make(chan struct{})
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for g := 0; g < clients; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			c, err := Dial(s.Addr().String(), 2*time.Second)
			if err != nil {
				errs <- err
				return
			}
			defer c.Close()
			row := make([]float64, dim)
			for i := 0; ; i++ {
				select {
				case <-stopLoad:
					return
				default:
				}
				for j := range row {
					row[j] = float64(i+j) * 0.25
				}
				resp, err := c.Predict("hot", row)
				if err != nil {
					errs <- err
					return
				}
				if resp.Status != StatusOK {
					errs <- fmt.Errorf("dropped in-flight request: %+v", resp)
					return
				}
				var want float64
				switch resp.ModelVersion {
				case 1:
					want = la.ScoreRow(row, w1, 0.5, la.LinkIdentity)
				case 2:
					want = la.ScoreRow(row, w2, -0.5, la.LinkIdentity)
					sawV2.Add(1)
				default:
					errs <- fmt.Errorf("impossible version %d", resp.ModelVersion)
					return
				}
				if math.Abs(resp.Value-want) > 1e-12 {
					errs <- fmt.Errorf("misrouted: version %d value %v, want %v",
						resp.ModelVersion, resp.Value, want)
					return
				}
			}
		}(g)
	}

	// Mid-load: log version 2 and hot-swap, then keep the load running
	// until the new version is actually observed in responses.
	time.Sleep(10 * time.Millisecond)
	logModel(t, store, "hot", w2, -0.5, false)
	if swapped := s.Reload(); swapped != 1 {
		t.Errorf("Reload swapped %d models, want 1", swapped)
	}
	deadline := time.Now().Add(5 * time.Second)
	for sawV2.Load() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	close(stopLoad)
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if sawV2.Load() == 0 {
		t.Fatal("new version never served after reload")
	}
	s.qmu.RLock()
	q := s.queues["hot"]
	s.qmu.RUnlock()
	if m := q.hot.Load(); m.version != 2 {
		t.Fatalf("hot snapshot version = %d, want 2", m.version)
	}
}

// TestPollLoopPicksUpNewVersion covers the background reload path end to
// end: with PollInterval set, a newly logged version becomes servable with
// no explicit Reload call.
func TestPollLoopPicksUpNewVersion(t *testing.T) {
	s, store := newTestServer(t, func(c *Config) { c.PollInterval = 5 * time.Millisecond })
	logModel(t, store, "m", []float64{1}, 0, false)
	c := dialTest(t, s)
	if resp, err := c.Predict("m", []float64{5}); err != nil || resp.Value != 5 {
		t.Fatalf("v1: %+v, %v", resp, err)
	}
	logModel(t, store, "m", []float64{10}, 0, false)
	deadline := time.Now().Add(2 * time.Second)
	for {
		resp, err := c.Predict("m", []float64{5})
		if err != nil {
			t.Fatal(err)
		}
		if resp.ModelVersion == 2 {
			if resp.Value != 50 {
				t.Fatalf("v2 value = %v, want 50", resp.Value)
			}
			return
		}
		if time.Now().After(deadline) {
			t.Fatal("poll loop never swapped to version 2")
		}
		time.Sleep(time.Millisecond)
	}
}

// TestShutdownDrains checks the drain invariant with server-side counters:
// after Shutdown returns, every admitted request has been answered
// (requests == predictions + errors) and Serve has returned net.ErrClosed.
func TestShutdownDrains(t *testing.T) {
	metrics.Reset()
	metrics.Enable()
	defer func() { metrics.Disable(); metrics.Reset() }()

	store := modeldb.NewStore()
	logModel(t, store, "m", []float64{1, 1}, 0, false)
	s, err := New(Config{Addr: "127.0.0.1:0", Store: store})
	if err != nil {
		t.Fatal(err)
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- s.Serve() }()

	const clients = 4
	var wg sync.WaitGroup
	var okCount atomic.Int64
	for g := 0; g < clients; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c, err := Dial(s.Addr().String(), 2*time.Second)
			if err != nil {
				return
			}
			defer c.Close()
			row := []float64{1, 2}
			for {
				resp, err := c.Predict("m", row)
				if err != nil {
					return // connection drained and closed by shutdown
				}
				if resp.Status != StatusOK || resp.Value != 3 {
					t.Errorf("bad response during shutdown: %+v", resp)
					return
				}
				okCount.Add(1)
			}
		}()
	}

	time.Sleep(30 * time.Millisecond) // let load build
	s.Shutdown()
	wg.Wait()

	if err := <-serveErr; !IsClosedErr(err) {
		t.Fatalf("Serve returned %v, want net.ErrClosed", err)
	}
	if okCount.Load() == 0 {
		t.Fatal("no requests completed before shutdown")
	}
	req, ok, errs := mRequests.Value(), mPredictions.Value(), mErrors.Value()
	if req != ok+errs {
		t.Fatalf("dropped in flight: admitted %d != answered %d+%d", req, ok, errs)
	}
	// Shutdown is idempotent.
	s.Shutdown()
}
