package serve

import "dmml/internal/metrics"

// Serving-layer instruments (see internal/metrics): request admission,
// batch shape, scoring latency and the reload counter. All free until
// metrics.Enable() — `dmmlserve -stats` turns them on.
var (
	mRequests    = metrics.NewCounter("serve.requests")
	mPredictions = metrics.NewCounter("serve.predictions")
	mErrors      = metrics.NewCounter("serve.errors")
	mBatches     = metrics.NewCounter("serve.batches")
	mReloads     = metrics.NewCounter("serve.reloads")
	mConnsOpened = metrics.NewCounter("serve.conns.opened")

	// hBatchRows is the coalescing profile: how many requests each drained
	// admission batch scored in one pooled GEMV.
	hBatchRows = metrics.NewHistogram("serve.batch.rows")
	// gQueueDepth is the admission queue depth seen at the last drain.
	gQueueDepth = metrics.NewGauge("serve.queue.depth")

	// tScore times the batch scoring call (gather + GEMV + link), and
	// tRequest the whole server-side request residence: admission to
	// response enqueue, queueing included.
	tScore   = metrics.NewTimer("serve.Score")
	tRequest = metrics.NewTimer("serve.Request")
)
