package la

// Compiled-backend properties: the closure kernels and flat templates must
// agree with the tile interpreter — bit for bit on cell templates, to the
// reduction tolerance on aggregates — across dense/CSR/scalar input mixes,
// at GOMAXPROCS 1 and N; the flat matcher must fire on the template shapes
// it advertises; the vectorized sigmoid must be bit-identical to the scalar
// form; and the compiled entry points must hold the zero-alloc contract.

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func bitsEqual(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Float64bits(a[i]) != math.Float64bits(b[i]) &&
			!(math.IsNaN(a[i]) && math.IsNaN(b[i])) {
			return false
		}
	}
	return true
}

func relClose(a, b, tol float64) bool {
	if math.IsNaN(a) && math.IsNaN(b) {
		return true
	}
	return math.Abs(a-b) <= tol*(1+math.Abs(b))
}

// runBothBackends evaluates f under the compiled backend and then the
// interpreter, restoring the compiled default.
func runBothBackends(p *FuseProgram, f func() []float64) (compiled, interp []float64) {
	p.SetBackend(FuseBackendCompiled)
	compiled = f()
	p.SetBackend(FuseBackendInterp)
	interp = f()
	p.SetBackend(FuseBackendCompiled)
	return
}

// TestCompiledMatchesInterpCell: random programs over random input mixes —
// the compiled closure/flat kernels must reproduce the interpreter bit for
// bit on element-wise outputs, serial and forced-parallel.
func TestCompiledMatchesInterpCell(t *testing.T) {
	oldThresh := parallelThreshold
	parallelThreshold = 1
	defer func() { parallelThreshold = oldThresh }()

	r := rand.New(rand.NewSource(31))
	prop := func(seed int64) bool {
		rr := rand.New(rand.NewSource(seed))
		rows := 1 + rr.Intn(40)
		cols := 1 + rr.Intn(40)
		p, ins := genFusedCase(rr, rows, cols)
		gotC, gotI := runBothBackends(p, func() []float64 {
			return append([]float64(nil), FusedCell(p, ins, rows, cols).data...)
		})
		if !bitsEqual(gotC, gotI) {
			t.Logf("compiled cell differs from interpreted at %dx%d, %d ops", rows, cols, len(p.ops))
			return false
		}
		return true
	}
	eachProcs(func() {
		if err := quick.Check(prop, &quick.Config{MaxCount: 40, Rand: r}); err != nil {
			t.Error(err)
		}
	})
}

// TestCompiledMatchesInterpAgg: every aggregate entry point, compiled vs
// interpreted, within the reduction tolerance the fused properties grant
// (flat aggregates reassociate their accumulators).
func TestCompiledMatchesInterpAgg(t *testing.T) {
	oldThresh := parallelThreshold
	parallelThreshold = 1
	defer func() { parallelThreshold = oldThresh }()

	r := rand.New(rand.NewSource(32))
	prop := func(seed int64) bool {
		rr := rand.New(rand.NewSource(seed))
		rows := 1 + rr.Intn(40)
		cols := 1 + rr.Intn(40)
		p, ins := genFusedCase(rr, rows, cols)
		tol := 1e-8 * float64(p.arith+1)
		v := make([]float64, cols)
		for j := range v {
			v[j] = rr.NormFloat64()
		}
		sumC, sumI := runBothBackends(p, func() []float64 {
			return []float64{FusedSum(p, ins, rows, cols)}
		})
		if !relClose(sumC[0], sumI[0], tol) {
			t.Logf("sum: compiled %g vs interp %g", sumC[0], sumI[0])
			return false
		}
		for _, agg := range []struct {
			name string
			run  func() []float64
		}{
			{"rowSums", func() []float64 { return FusedRowSumsInto(make([]float64, rows), p, ins, rows, cols) }},
			{"colSums", func() []float64 { return FusedColSumsInto(make([]float64, cols), p, ins, rows, cols) }},
			{"matvec", func() []float64 { return FusedMatVecInto(make([]float64, rows), p, ins, rows, cols, v) }},
		} {
			gotC, gotI := runBothBackends(p, agg.run)
			for i := range gotC {
				if !relClose(gotC[i], gotI[i], tol) {
					t.Logf("%s[%d]: compiled %g vs interp %g", agg.name, i, gotC[i], gotI[i])
					return false
				}
			}
		}
		return true
	}
	eachProcs(func() {
		if err := quick.Check(prop, &quick.Config{MaxCount: 30, Rand: r}); err != nil {
			t.Error(err)
		}
	})
}

// ops builders for the template table.
func opsLoad(i int) FusedOp      { return FusedOp{Code: FuseLoad, Arg: i} }
func opsConst(v float64) FusedOp { return FusedOp{Code: FuseConst, Val: v} }
func opsOp(c FuseOpCode) FusedOp { return FusedOp{Code: c} }

// TestFlatTemplateMatch pins the pattern matcher: each template shape must
// compile to its named flat kernel, execute bit-identically to the
// interpreter (cells) or within reduction tolerance (aggregates), and the
// CSR specialization of the same program must fall back to the closure
// tree.
func TestFlatTemplateMatch(t *testing.T) {
	r := rand.New(rand.NewSource(33))
	rows, cols := 37, 23
	x := randMat(r, rows, cols, 0)
	y := randMat(r, rows, cols, 0)
	z := randMat(r, rows, cols, 0)

	cases := []struct {
		name string
		ops  []FusedOp
		nin  int
		ins  []FusedInput
		flat string
		cell bool // flatCell expected; else flatSum+flatRow
	}{
		{
			// The E15 heavy hitter: sigmoid(x*2 + 1)*x - x/3.
			name: "sigchain",
			ops: []FusedOp{opsLoad(0), opsConst(2), opsOp(FuseMul), opsConst(1), opsOp(FuseAdd),
				opsOp(FuseSigmoid), opsLoad(0), opsOp(FuseMul), opsLoad(0), opsConst(3), opsOp(FuseDiv), opsOp(FuseSub)},
			nin: 1, ins: []FusedInput{DenseInput(x)}, flat: "cell.sigchain", cell: true,
		},
		{
			name: "sigmoid bare",
			ops:  []FusedOp{opsLoad(0), opsOp(FuseSigmoid)},
			nin:  1, ins: []FusedInput{DenseInput(x)}, flat: "cell.sigmoid", cell: true,
		},
		{
			// Dynamic scalar slope: sigmoid(x*s + 0.5) with s an input.
			name: "sigmoid dynamic affine",
			ops: []FusedOp{opsLoad(0), opsLoad(1), opsOp(FuseMul), opsConst(0.5), opsOp(FuseAdd),
				opsOp(FuseSigmoid)},
			nin: 2, ins: []FusedInput{DenseInput(x), ScalarInput(1.7)}, flat: "cell.sigmoid", cell: true,
		},
		{
			name: "axpy add",
			ops:  []FusedOp{opsLoad(0), opsLoad(1), opsConst(-1e-4), opsOp(FuseMul), opsOp(FuseAdd)},
			nin:  2, ins: []FusedInput{DenseInput(x), DenseInput(y)}, flat: "cell.axpy", cell: true,
		},
		{
			name: "axpy rsub",
			ops:  []FusedOp{opsConst(3), opsLoad(1), opsOp(FuseMul), opsLoad(0), opsOp(FuseSub)},
			nin:  2, ins: []FusedInput{DenseInput(x), DenseInput(y)}, flat: "cell.axpy", cell: true,
		},
		{
			name: "scalebin",
			ops:  []FusedOp{opsLoad(0), opsLoad(1), opsOp(FuseSub), opsConst(0.5), opsOp(FuseMul)},
			nin:  2, ins: []FusedInput{DenseInput(x), DenseInput(y)}, flat: "cell.scalebin", cell: true,
		},
		{
			// Derived scalar: (x*y) / (s1*s2) — prelude computes the divisor.
			name: "scalebin derived scalar",
			ops: []FusedOp{opsLoad(0), opsLoad(1), opsOp(FuseMul), opsLoad(2), opsLoad(3),
				opsOp(FuseMul), opsOp(FuseDiv)},
			nin: 4, ins: []FusedInput{DenseInput(x), DenseInput(y), ScalarInput(2.5), ScalarInput(0.8)},
			flat: "cell.scalebin", cell: true,
		},
		{
			name: "agg sqdiff",
			ops:  []FusedOp{opsLoad(0), opsLoad(1), opsOp(FuseSub), opsOp(FuseSq)},
			nin:  2, ins: []FusedInput{DenseInput(x), DenseInput(y)}, flat: "agg.sqdiff",
		},
		{
			name: "agg sq",
			ops:  []FusedOp{opsLoad(0), opsOp(FuseSq)},
			nin:  1, ins: []FusedInput{DenseInput(x)}, flat: "agg.sq",
		},
		{
			name: "agg mul",
			ops:  []FusedOp{opsLoad(0), opsLoad(1), opsOp(FuseMul)},
			nin:  2, ins: []FusedInput{DenseInput(x), DenseInput(y)}, flat: "agg.mul",
		},
		{
			name: "agg muladd",
			ops:  []FusedOp{opsLoad(0), opsLoad(0), opsOp(FuseMul), opsLoad(1), opsOp(FuseAdd)},
			nin:  2, ins: []FusedInput{DenseInput(x), DenseInput(y)}, flat: "agg.muladd",
		},
		{
			// x*2 + y: an axpy as a cell, a scaleadd row aggregate.
			name: "scaleadd dual",
			ops:  []FusedOp{opsLoad(0), opsConst(2), opsOp(FuseMul), opsLoad(1), opsOp(FuseAdd)},
			nin:  2, ins: []FusedInput{DenseInput(x), DenseInput(y)}, flat: "cell.axpy",
		},
	}
	_ = z
	for _, tc := range cases {
		p, err := CompileFused(tc.ops, tc.nin)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		compiled, flat := p.CompileFusedKernel(tc.ins)
		if !compiled {
			t.Errorf("%s: not compiled", tc.name)
			continue
		}
		if flat != tc.flat {
			t.Errorf("%s: flat %q, want %q", tc.name, flat, tc.flat)
			continue
		}
		k := p.kernelFor(tc.ins)
		if tc.cell && k.flatCell == nil {
			t.Errorf("%s: flatCell not installed", tc.name)
		}
		if !tc.cell && (k.flatSum == nil || k.flatRow == nil) {
			t.Errorf("%s: flat aggregate kernels not installed", tc.name)
		}

		// Execution agreement, flat vs interpreter.
		gotC, gotI := runBothBackends(p, func() []float64 {
			return append([]float64(nil), FusedCell(p, tc.ins, rows, cols).data...)
		})
		if !bitsEqual(gotC, gotI) {
			t.Errorf("%s: compiled cell differs from interpreted", tc.name)
		}
		v := make([]float64, cols)
		for j := range v {
			v[j] = r.NormFloat64()
		}
		tol := 1e-8 * float64(p.arith+1)
		sumC, sumI := runBothBackends(p, func() []float64 {
			return []float64{FusedSum(p, tc.ins, rows, cols)}
		})
		if !relClose(sumC[0], sumI[0], tol) {
			t.Errorf("%s: compiled sum %g vs interp %g", tc.name, sumC[0], sumI[0])
		}
		rowC, rowI := runBothBackends(p, func() []float64 {
			return FusedMatVecInto(make([]float64, rows), p, tc.ins, rows, cols, v)
		})
		for i := range rowC {
			if !relClose(rowC[i], rowI[i], tol) {
				t.Errorf("%s: compiled matvec[%d] %g vs interp %g", tc.name, i, rowC[i], rowI[i])
				break
			}
		}
	}
}

// TestCompiledCSRFallsBackToClosures: the same program compiles per
// input-kind signature — flat templates are dense-only, but the CSR
// specialization still runs compiled (closure tree) and still agrees.
func TestCompiledCSRFallsBackToClosures(t *testing.T) {
	r := rand.New(rand.NewSource(34))
	rows, cols := 19, 31
	xd := randMat(r, rows, cols, 0.7)
	y := randMat(r, rows, cols, 0)
	ops := []FusedOp{opsLoad(0), opsLoad(1), opsOp(FuseSub), opsOp(FuseSq)}
	p, err := CompileFused(ops, 2)
	if err != nil {
		t.Fatal(err)
	}
	dense := []FusedInput{DenseInput(xd), DenseInput(y)}
	sparse := []FusedInput{CSRInput(CSRFromDense(xd)), DenseInput(y)}
	if _, flat := p.CompileFusedKernel(dense); flat != "agg.sqdiff" {
		t.Errorf("dense specialization flat = %q, want agg.sqdiff", flat)
	}
	compiled, flat := p.CompileFusedKernel(sparse)
	if !compiled {
		t.Fatal("CSR specialization not compiled")
	}
	if flat != "" {
		t.Errorf("CSR specialization matched flat %q, want closure tree", flat)
	}
	if k := p.kernelFor(sparse); k.flatSum != nil || k.flatCell != nil {
		t.Error("CSR specialization installed flat kernels")
	}
	gotC, gotI := runBothBackends(p, func() []float64 {
		return []float64{FusedSum(p, sparse, rows, cols)}
	})
	if !relClose(gotC[0], gotI[0], 1e-8*float64(p.arith+1)) {
		t.Errorf("CSR compiled sum %g vs interp %g", gotC[0], gotI[0])
	}
}

// TestCompileRefused: shapes the compiler declines — scalar-rooted
// programs and input lists too long for the kind signature — run on the
// interpreter, reported via CompileFusedKernel.
func TestCompileRefused(t *testing.T) {
	// Scalar-rooted: constant fold to a broadcast.
	p, err := CompileFused([]FusedOp{opsConst(2), opsConst(3), opsOp(FuseAdd)}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if compiled, _ := p.CompileFusedKernel(nil); compiled {
		t.Error("scalar-rooted program compiled, want refusal")
	}
	if got := FusedCell(p, nil, 2, 3); got.data[0] != 5 {
		t.Errorf("scalar broadcast = %g, want 5", got.data[0])
	}

	// 32 inputs: kind signature cannot pack, interpreter handles it.
	nin := 32
	var ops []FusedOp
	ops = append(ops, opsLoad(0))
	for i := 1; i < nin; i++ {
		ops = append(ops, opsLoad(i), opsOp(FuseAdd))
	}
	p2, err := CompileFused(ops, nin)
	if err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(35))
	ins := make([]FusedInput, nin)
	for i := range ins {
		ins[i] = DenseInput(randMat(r, 3, 3, 0))
	}
	if compiled, _ := p2.CompileFusedKernel(ins); compiled {
		t.Error("32-input program compiled, want refusal")
	}
	want := refFused(p2, ins, 3, 3)
	if got := FusedCell(p2, ins, 3, 3); !closeSlices(got.data, want, 1e-9) {
		t.Error("interpreter fallback wrong on 32-input program")
	}

	// Interp backend: the escape hatch never compiles.
	p3, err := CompileFused([]FusedOp{opsLoad(0), opsOp(FuseSq)}, 1)
	if err != nil {
		t.Fatal(err)
	}
	p3.SetBackend(FuseBackendInterp)
	if compiled, _ := p3.CompileFusedKernel([]FusedInput{DenseInput(randMat(r, 2, 2, 0))}); compiled {
		t.Error("interp backend compiled a kernel")
	}
}

// TestSigmoidTileBitExact: the vectorized sigmoid against the scalar form,
// over specials (±0, ±Inf, NaN, denormal-adjacent, gate boundaries) and a
// wide random sweep. This is the invariant that lets the compiled backend
// replace the interpreter's sigmoid loop.
func TestSigmoidTileBitExact(t *testing.T) {
	t.Logf("fuseExpMode = %d", fuseExpMode)
	xs := []float64{0, math.Copysign(0, -1), 1, -1, 0.5, -0.5,
		math.Inf(1), math.Inf(-1), math.NaN(),
		0x1p-28, -0x1p-28, 0x1p-29, -0x1p-29, 1e-300, -1e-300,
		699.9, -699.9, 700, -700, 710, -710, 36.7, -36.7,
		math.Ln2, -math.Ln2, 3 * math.Ln2, -3 * math.Ln2}
	r := rand.New(rand.NewSource(36))
	for i := 0; i < 20000; i++ {
		xs = append(xs, r.NormFloat64()*math.Exp(r.Float64()*12-6))
	}
	dst := make([]float64, len(xs))
	sigmoidTile(dst, xs)
	for i, x := range xs {
		want := fuseSigmoid(x)
		if math.Float64bits(dst[i]) != math.Float64bits(want) &&
			!(math.IsNaN(dst[i]) && math.IsNaN(want)) {
			t.Fatalf("sigmoidTile(%g) = %x, fuseSigmoid = %x", x,
				math.Float64bits(dst[i]), math.Float64bits(want))
		}
	}
	// In-place application must agree too.
	cp := append([]float64(nil), xs...)
	sigmoidTile(cp, cp)
	if !bitsEqual(cp, dst) {
		t.Error("in-place sigmoidTile differs from out-of-place")
	}
}

// TestExp8MatchesMathExp re-asserts the init probe's verdict as a real
// test, over fresh random points the probe never saw.
func TestExp8MatchesMathExp(t *testing.T) {
	if fuseExpMode == 0 {
		t.Skip("no vector exp variant certified on this platform; scalar fallback active")
	}
	r := rand.New(rand.NewSource(37))
	for i := 0; i < 50000; i++ {
		x := -(sigGateLo + r.Float64()*(sigGateHi-sigGateLo))
		want := math.Float64bits(math.Exp(x))
		var a, b, c, d, e, f, g, h float64
		if fuseExpMode == 1 {
			a, b, c, d, e, f, g, h = exp8FMA(x, x, x, x, x, x, x, x)
		} else {
			a, b, c, d, e, f, g, h = exp8NoFMA(x, x, x, x, x, x, x, x)
		}
		for _, got := range []float64{a, b, c, d, e, f, g, h} {
			if math.Float64bits(got) != want {
				t.Fatalf("exp8 mode %d at %g: %x, want %x", fuseExpMode, x, math.Float64bits(got), want)
			}
		}
	}
}

// TestFusedCheckInputsPanics: one test per validation branch, pinning the
// message each malformed input dies with (the satellite fix: ambiguous
// dense+sparse inputs must not be reported as dense shape mismatches).
func TestFusedCheckInputsPanics(t *testing.T) {
	p, err := CompileFused([]FusedOp{opsLoad(0), opsOp(FuseSq)}, 1)
	if err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(38))
	good := randMat(r, 3, 4, 0)
	expectPanic := func(name, want string, f func()) {
		t.Helper()
		defer func() {
			t.Helper()
			rec := recover()
			if rec == nil {
				t.Errorf("%s: no panic, want %q", name, want)
				return
			}
			msg, _ := rec.(string)
			if !strings.Contains(msg, want) {
				t.Errorf("%s: panic %q, want substring %q", name, msg, want)
			}
		}()
		f()
	}
	expectPanic("arity", "fused program wants 1 inputs, got 2", func() {
		FusedCell(p, []FusedInput{DenseInput(good), DenseInput(good)}, 3, 4)
	})
	expectPanic("ambiguous", "fused input 0 sets both dense and sparse operands", func() {
		FusedCell(p, []FusedInput{{D: good, C: CSRFromDense(good)}}, 3, 4)
	})
	expectPanic("dense shape", "fused dense input 0 is 3x4, want 4x3", func() {
		FusedCell(p, []FusedInput{DenseInput(good)}, 4, 3)
	})
	expectPanic("sparse shape", "fused sparse input 0 is 3x4, want 4x3", func() {
		FusedCell(p, []FusedInput{CSRInput(CSRFromDense(good))}, 4, 3)
	})
	expectPanic("empty", "fused input 0 is neither scalar nor matrix", func() {
		FusedCell(p, []FusedInput{{}}, 3, 4)
	})
}

// TestCompiledZeroAllocSteadyState: the flat templates and the
// dynamic-scalar prelude hold the zero-allocation contract after the
// first (compiling) call.
func TestCompiledZeroAllocSteadyState(t *testing.T) {
	withGOMAXPROCS(1, func() {
		r := rand.New(rand.NewSource(39))
		rows, cols := 500, 60
		x := randMat(r, rows, cols, 0)
		y := randMat(r, rows, cols, 0)
		out := NewDense(rows, cols)
		rowDst := make([]float64, rows)

		// sigchain flat cell (stages through pooled scratch + sigmoidTile).
		chain, err := CompileFused([]FusedOp{opsLoad(0), opsConst(2), opsOp(FuseMul),
			opsConst(1), opsOp(FuseAdd), opsOp(FuseSigmoid), opsLoad(0), opsOp(FuseMul),
			opsLoad(0), opsConst(3), opsOp(FuseDiv), opsOp(FuseSub)}, 1)
		if err != nil {
			t.Fatal(err)
		}
		xIn := []FusedInput{DenseInput(x)}
		if compiled, flat := chain.CompileFusedKernel(xIn); !compiled || flat != "cell.sigchain" {
			t.Fatalf("sigchain not flat-compiled: %v %q", compiled, flat)
		}
		if a := testing.AllocsPerRun(50, func() { FusedCellInto(out, chain, xIn) }); a != 0 {
			t.Errorf("compiled sigchain FusedCellInto allocates %v per run, want 0", a)
		}

		// scaleadd flat row aggregate.
		sa, err := CompileFused([]FusedOp{opsLoad(0), opsConst(2), opsOp(FuseMul),
			opsLoad(1), opsOp(FuseAdd)}, 2)
		if err != nil {
			t.Fatal(err)
		}
		xyIn := []FusedInput{DenseInput(x), DenseInput(y)}
		sa.CompileFusedKernel(xyIn)
		if a := testing.AllocsPerRun(50, func() { FusedRowSumsInto(rowDst, sa, xyIn, rows, cols) }); a != 0 {
			t.Errorf("compiled FusedRowSumsInto allocates %v per run, want 0", a)
		}

		// Dynamic-scalar prelude: (x-y)/(s1*s2) hoists the divisor per call.
		ds, err := CompileFused([]FusedOp{opsLoad(0), opsLoad(1), opsOp(FuseSub),
			opsLoad(2), opsLoad(3), opsOp(FuseMul), opsOp(FuseDiv)}, 4)
		if err != nil {
			t.Fatal(err)
		}
		dsIn := []FusedInput{DenseInput(x), DenseInput(y), ScalarInput(2.5), ScalarInput(0.8)}
		if compiled, flat := ds.CompileFusedKernel(dsIn); !compiled || flat != "cell.scalebin" {
			t.Fatalf("derived-scalar scalebin not flat-compiled: %v %q", compiled, flat)
		}
		if a := testing.AllocsPerRun(50, func() { FusedCellInto(out, ds, dsIn) }); a != 0 {
			t.Errorf("compiled prelude FusedCellInto allocates %v per run, want 0", a)
		}
	})
}

// TestCompiledConstantFolding: all-constant scalar subtrees fold at compile
// time — the kernel for (x + (2*3+1)) must carry no prelude and still
// match the interpreter bit for bit.
func TestCompiledConstantFolding(t *testing.T) {
	r := rand.New(rand.NewSource(40))
	x := randMat(r, 7, 11, 0)
	p, err := CompileFused([]FusedOp{opsLoad(0), opsConst(2), opsConst(3), opsOp(FuseMul),
		opsConst(1), opsOp(FuseAdd), opsOp(FuseAdd)}, 1)
	if err != nil {
		t.Fatal(err)
	}
	ins := []FusedInput{DenseInput(x)}
	k := p.kernelFor(ins)
	if k == nil {
		t.Fatal("not compiled")
	}
	if k.nsv != 0 || len(k.pre) != 0 {
		t.Errorf("constant subtree hoisted to prelude (nsv=%d), want compile-time fold", k.nsv)
	}
	gotC, gotI := runBothBackends(p, func() []float64 {
		return append([]float64(nil), FusedCell(p, ins, 7, 11).data...)
	})
	if !bitsEqual(gotC, gotI) {
		t.Error("folded constants differ from interpreter")
	}
}
