// Package la provides the linear-algebra substrate for dmml: dense and
// CSR-sparse matrices, BLAS-like kernels (GEMM, GEMV, syrk), and the
// decompositions (QR, Cholesky) used by the ML and feature-engineering
// layers.
//
// Conventions:
//   - Dense matrices are row-major.
//   - Constructors and converters validate their inputs and return errors.
//   - Computational kernels treat shape mismatches as programmer errors and
//     panic with a descriptive message, mirroring the contract of the Go
//     ecosystem's numeric libraries. Callers that accept untrusted shapes
//     should validate with Dims before invoking kernels.
package la

import (
	"fmt"
	"math"
	"strings"
)

// Dense is a row-major dense matrix of float64 values.
type Dense struct {
	rows, cols int
	data       []float64 // len == rows*cols
}

// NewDense returns a zeroed rows×cols dense matrix.
// It panics if either dimension is non-positive.
func NewDense(rows, cols int) *Dense {
	if rows <= 0 || cols <= 0 {
		panic(fmt.Sprintf("la: NewDense with non-positive dims %dx%d", rows, cols))
	}
	return &Dense{rows: rows, cols: cols, data: make([]float64, rows*cols)}
}

// NewDenseData wraps data (row-major, length rows*cols) in a Dense without
// copying. It returns an error if the length does not match the dimensions.
func NewDenseData(rows, cols int, data []float64) (*Dense, error) {
	if rows <= 0 || cols <= 0 {
		return nil, fmt.Errorf("la: non-positive dims %dx%d", rows, cols)
	}
	if len(data) != rows*cols {
		return nil, fmt.Errorf("la: data length %d does not match %dx%d", len(data), rows, cols)
	}
	return &Dense{rows: rows, cols: cols, data: data}, nil
}

// FromRows builds a Dense from a slice of equal-length rows, copying the data.
func FromRows(rows [][]float64) (*Dense, error) {
	if len(rows) == 0 || len(rows[0]) == 0 {
		return nil, fmt.Errorf("la: FromRows with empty input")
	}
	m := NewDense(len(rows), len(rows[0]))
	for i, r := range rows {
		if len(r) != m.cols {
			return nil, fmt.Errorf("la: row %d has length %d, want %d", i, len(r), m.cols)
		}
		copy(m.data[i*m.cols:(i+1)*m.cols], r)
	}
	return m, nil
}

// Identity returns the n×n identity matrix.
func Identity(n int) *Dense {
	m := NewDense(n, n)
	for i := 0; i < n; i++ {
		m.data[i*n+i] = 1
	}
	return m
}

// Dims returns the number of rows and columns.
func (m *Dense) Dims() (rows, cols int) { return m.rows, m.cols }

// Rows returns the number of rows.
func (m *Dense) Rows() int { return m.rows }

// Cols returns the number of columns.
func (m *Dense) Cols() int { return m.cols }

// At returns the element at row i, column j.
func (m *Dense) At(i, j int) float64 {
	m.checkIndex(i, j)
	return m.data[i*m.cols+j]
}

// Set assigns v to the element at row i, column j.
func (m *Dense) Set(i, j int, v float64) {
	m.checkIndex(i, j)
	m.data[i*m.cols+j] = v
}

func (m *Dense) checkIndex(i, j int) {
	if i < 0 || i >= m.rows || j < 0 || j >= m.cols {
		panic(fmt.Sprintf("la: index (%d,%d) out of range for %dx%d matrix", i, j, m.rows, m.cols))
	}
}

// RawData returns the underlying row-major backing slice. Mutating it mutates
// the matrix.
func (m *Dense) RawData() []float64 { return m.data }

// RowView returns row i as a slice aliasing the matrix storage.
func (m *Dense) RowView(i int) []float64 {
	if i < 0 || i >= m.rows {
		panic(fmt.Sprintf("la: row %d out of range for %d rows", i, m.rows))
	}
	return m.data[i*m.cols : (i+1)*m.cols]
}

// Col copies column j into a new slice.
func (m *Dense) Col(j int) []float64 {
	if j < 0 || j >= m.cols {
		panic(fmt.Sprintf("la: col %d out of range for %d cols", j, m.cols))
	}
	out := make([]float64, m.rows)
	for i := 0; i < m.rows; i++ {
		out[i] = m.data[i*m.cols+j]
	}
	return out
}

// SetRow copies v into row i.
func (m *Dense) SetRow(i int, v []float64) {
	if len(v) != m.cols {
		panic(fmt.Sprintf("la: SetRow length %d, want %d", len(v), m.cols))
	}
	copy(m.RowView(i), v)
}

// Clone returns a deep copy of the matrix.
func (m *Dense) Clone() *Dense {
	out := NewDense(m.rows, m.cols)
	copy(out.data, m.data)
	return out
}

// T returns the transpose as a newly allocated matrix.
func (m *Dense) T() *Dense {
	out := NewDense(m.cols, m.rows)
	// Blocked transpose for cache friendliness; large matrices split their
	// row-block sweep across the worker pool (blocks write disjoint output).
	const bs = 32
	nBlocks := (m.rows + bs - 1) / bs
	parallelRows(nBlocks, len(m.data), func(b0, b1 int) {
		for ii := b0 * bs; ii < b1*bs && ii < m.rows; ii += bs {
			iMax := min(ii+bs, m.rows)
			for jj := 0; jj < m.cols; jj += bs {
				jMax := min(jj+bs, m.cols)
				for i := ii; i < iMax; i++ {
					for j := jj; j < jMax; j++ {
						out.data[j*m.rows+i] = m.data[i*m.cols+j]
					}
				}
			}
		}
	})
	return out
}

// Slice returns a copy of the sub-matrix [r0,r1)×[c0,c1).
func (m *Dense) Slice(r0, r1, c0, c1 int) *Dense {
	if r0 < 0 || r1 > m.rows || c0 < 0 || c1 > m.cols || r0 >= r1 || c0 >= c1 {
		panic(fmt.Sprintf("la: bad slice [%d:%d, %d:%d] of %dx%d", r0, r1, c0, c1, m.rows, m.cols))
	}
	out := NewDense(r1-r0, c1-c0)
	for i := r0; i < r1; i++ {
		copy(out.RowView(i-r0), m.data[i*m.cols+c0:i*m.cols+c1])
	}
	return out
}

// SelectCols returns a copy of m restricted to the given columns, in order.
func (m *Dense) SelectCols(cols []int) *Dense {
	for _, c := range cols {
		if c < 0 || c >= m.cols {
			panic(fmt.Sprintf("la: SelectCols column %d out of range for %d cols", c, m.cols))
		}
	}
	out := NewDense(m.rows, len(cols))
	for i := 0; i < m.rows; i++ {
		src := m.RowView(i)
		dst := out.RowView(i)
		for k, c := range cols {
			dst[k] = src[c]
		}
	}
	return out
}

// SelectRows returns a copy of m restricted to the given rows, in order.
func (m *Dense) SelectRows(rows []int) *Dense {
	if len(rows) == 0 {
		panic("la: SelectRows with empty row set")
	}
	out := NewDense(len(rows), m.cols)
	for k, r := range rows {
		if r < 0 || r >= m.rows {
			panic(fmt.Sprintf("la: SelectRows row %d out of range for %d rows", r, m.rows))
		}
		copy(out.RowView(k), m.RowView(r))
	}
	return out
}

// Fill sets every element to v.
func (m *Dense) Fill(v float64) {
	for i := range m.data {
		m.data[i] = v
	}
}

// Zero sets every element to 0.
func (m *Dense) Zero() {
	for i := range m.data {
		m.data[i] = 0
	}
}

// Scale multiplies every element by s in place and returns m.
func (m *Dense) Scale(s float64) *Dense {
	for i := range m.data {
		m.data[i] *= s
	}
	return m
}

// AddScaled adds s*other to m element-wise in place and returns m.
func (m *Dense) AddScaled(other *Dense, s float64) *Dense {
	m.checkSameShape(other, "AddScaled")
	for i := range m.data {
		m.data[i] += s * other.data[i]
	}
	return m
}

// Add adds other to m element-wise in place and returns m.
func (m *Dense) Add(other *Dense) *Dense { return m.AddScaled(other, 1) }

// Sub subtracts other from m element-wise in place and returns m.
func (m *Dense) Sub(other *Dense) *Dense { return m.AddScaled(other, -1) }

// MulElem multiplies m by other element-wise in place and returns m.
func (m *Dense) MulElem(other *Dense) *Dense {
	m.checkSameShape(other, "MulElem")
	for i := range m.data {
		m.data[i] *= other.data[i]
	}
	return m
}

// Apply replaces each element x with f(x) in place and returns m.
func (m *Dense) Apply(f func(float64) float64) *Dense {
	for i := range m.data {
		m.data[i] = f(m.data[i])
	}
	return m
}

func (m *Dense) checkSameShape(other *Dense, op string) {
	if m.rows != other.rows || m.cols != other.cols {
		panic(fmt.Sprintf("la: %s shape mismatch %dx%d vs %dx%d", op, m.rows, m.cols, other.rows, other.cols))
	}
}

// Sum returns the sum of all elements.
func (m *Dense) Sum() float64 {
	var s float64
	for _, v := range m.data {
		s += v
	}
	return s
}

// SumSq returns the sum of squared elements (squared Frobenius norm).
func (m *Dense) SumSq() float64 {
	var s float64
	for _, v := range m.data {
		s += v * v
	}
	return s
}

// FrobNorm returns the Frobenius norm.
func (m *Dense) FrobNorm() float64 { return math.Sqrt(m.SumSq()) }

// MaxAbs returns the maximum absolute element value.
func (m *Dense) MaxAbs() float64 {
	var mx float64
	for _, v := range m.data {
		if a := math.Abs(v); a > mx {
			mx = a
		}
	}
	return mx
}

// NNZ returns the number of non-zero elements.
func (m *Dense) NNZ() int {
	n := 0
	for _, v := range m.data {
		if v != 0 {
			n++
		}
	}
	return n
}

// Sparsity returns the fraction of zero elements in [0,1].
func (m *Dense) Sparsity() float64 {
	return 1 - float64(m.NNZ())/float64(len(m.data))
}

// ColSums returns a length-cols vector of per-column sums.
func (m *Dense) ColSums() []float64 {
	out := make([]float64, m.cols)
	for i := 0; i < m.rows; i++ {
		row := m.RowView(i)
		for j, v := range row {
			out[j] += v
		}
	}
	return out
}

// ColMeans returns per-column means.
func (m *Dense) ColMeans() []float64 {
	out := m.ColSums()
	inv := 1 / float64(m.rows)
	for j := range out {
		out[j] *= inv
	}
	return out
}

// ColStds returns per-column population standard deviations.
func (m *Dense) ColStds() []float64 {
	means := m.ColMeans()
	out := make([]float64, m.cols)
	for i := 0; i < m.rows; i++ {
		row := m.RowView(i)
		for j, v := range row {
			d := v - means[j]
			out[j] += d * d
		}
	}
	inv := 1 / float64(m.rows)
	for j := range out {
		out[j] = math.Sqrt(out[j] * inv)
	}
	return out
}

// RowSums returns a length-rows vector of per-row sums.
func (m *Dense) RowSums() []float64 {
	out := make([]float64, m.rows)
	for i := 0; i < m.rows; i++ {
		var s float64
		for _, v := range m.RowView(i) {
			s += v
		}
		out[i] = s
	}
	return out
}

// Equal reports whether m and other have identical shape and all elements
// within tol of each other.
func (m *Dense) Equal(other *Dense, tol float64) bool {
	if m.rows != other.rows || m.cols != other.cols {
		return false
	}
	for i, v := range m.data {
		if math.Abs(v-other.data[i]) > tol {
			return false
		}
	}
	return true
}

// String renders small matrices fully and large ones as a summary.
func (m *Dense) String() string {
	if m.rows*m.cols > 64 {
		return fmt.Sprintf("Dense{%dx%d, nnz=%d}", m.rows, m.cols, m.NNZ())
	}
	var b strings.Builder
	fmt.Fprintf(&b, "Dense{%dx%d\n", m.rows, m.cols)
	for i := 0; i < m.rows; i++ {
		b.WriteString("  [")
		for j := 0; j < m.cols; j++ {
			if j > 0 {
				b.WriteByte(' ')
			}
			fmt.Fprintf(&b, "%.4g", m.At(i, j))
		}
		b.WriteString("]\n")
	}
	b.WriteString("}")
	return b.String()
}

// Stack vertically concatenates matrices with equal column counts.
func Stack(ms ...*Dense) (*Dense, error) {
	if len(ms) == 0 {
		return nil, fmt.Errorf("la: Stack of zero matrices")
	}
	cols := ms[0].cols
	rows := 0
	for _, m := range ms {
		if m.cols != cols {
			return nil, fmt.Errorf("la: Stack column mismatch %d vs %d", m.cols, cols)
		}
		rows += m.rows
	}
	out := NewDense(rows, cols)
	at := 0
	for _, m := range ms {
		copy(out.data[at:], m.data)
		at += len(m.data)
	}
	return out, nil
}

// HCat horizontally concatenates matrices with equal row counts.
func HCat(ms ...*Dense) (*Dense, error) {
	if len(ms) == 0 {
		return nil, fmt.Errorf("la: HCat of zero matrices")
	}
	rows := ms[0].rows
	cols := 0
	for _, m := range ms {
		if m.rows != rows {
			return nil, fmt.Errorf("la: HCat row mismatch %d vs %d", m.rows, rows)
		}
		cols += m.cols
	}
	out := NewDense(rows, cols)
	for i := 0; i < rows; i++ {
		dst := out.RowView(i)
		at := 0
		for _, m := range ms {
			copy(dst[at:], m.RowView(i))
			at += m.cols
		}
	}
	return out, nil
}
