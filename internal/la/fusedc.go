package la

import "dmml/internal/pool"

// Compiled backend for fused programs (fused.go holds the interpreter).
//
// CompileFusedKernel lowers a validated FuseProgram into a tree of
// specialized Go closures: one closure per vector-valued op node,
// monomorphized at compile time over the opcode and the operand kinds
// (dense slice / CSR tile / scalar), so a tile is evaluated by one direct
// call chain instead of per-op switch dispatch through evalTile. Scalar
// subtrees never reach the per-tile path at all — all-constant subtrees
// fold at compile time, and subtrees over dynamic scalars (scalar matrix
// inputs) are hoisted into a once-per-call prelude that writes a small
// scratch vector. On top of the closure tree, a structural pattern matcher
// recognizes the heavy-hitter template shapes (sigmoid chains, axpy cells,
// rowagg-over-product; see fusedflat.go) and replaces the whole tree with a
// single flat loop kernel.
//
// Kernels are compiled once per (program, input-kind signature) and cached
// on the FuseProgram. Closures capture only compile-time constants — op
// arguments, slot numbers, folded scalars — never per-call state: inputs
// and hoisted scalars travel through the pooled fuseCtx, so the steady
// state allocates nothing. Programs the compiler refuses (scalar-rooted,
// more than 31 inputs) cache a nil kernel and run on the interpreter.

// FuseBackend selects the execution strategy for a fused program.
type FuseBackend uint8

const (
	// FuseBackendCompiled lowers the program to specialized closure kernels
	// on first use (once per input-kind signature); the interpreter remains
	// the fallback for shapes the compiler refuses.
	FuseBackendCompiled FuseBackend = iota
	// FuseBackendInterp forces the tile stack-machine interpreter — the
	// -fuse=interp escape hatch and the reference for equivalence tests.
	FuseBackendInterp
)

// fkVec evaluates one vector-valued node of the closure tree over the flat
// element range [lo,hi), returning the node's tile (an input sub-slice or
// the scratch slice of the node's stack slot).
type fkVec func(c *fuseCtx, lo, hi int) []float64

// fusePreOp computes one hoisted dynamic-scalar node into sv; the prelude
// runs once per entry-point call, in dependency (postfix) order.
type fusePreOp func(ins []FusedInput, sv []float64)

// Flat template kernels (fusedflat.go). scr is a fusedTileW staging buffer
// for the sigmoid templates; dst of flatCellFn is pre-sliced to [lo,hi).
type flatCellFn func(ins []FusedInput, sv, dst, scr []float64, lo, hi int)
type flatSumFn func(ins []FusedInput, sv []float64, lo, hi int) float64
type flatRowFn func(ins []FusedInput, sv, v, dst []float64, cols, r0, r1 int)

// fusedKernel is one compiled specialization of a program.
type fusedKernel struct {
	root fkVec
	pre  []fusePreOp
	nsv  int // hoisted dynamic-scalar slots

	// Flat template kernels, set when the pattern matcher recognized the
	// whole tree; the closure tree remains valid alongside them.
	flatCell flatCellFn
	flatSum  flatSumFn
	flatRow  flatRowFn
	flat     string // matched template name, "" for plain closure trees
}

// Scalar operand kinds inside the compiler.
const (
	fkSConst   = iota // folded compile-time constant
	fkSInput          // ins[idx].S, a dynamic scalar input
	fkSDerived        // sv[idx], computed by the prelude
)

// fkSRef names a scalar value available to a kernel: a folded constant, a
// scalar input, or a prelude-computed slot. It is pure compile-time data,
// safe for closures to capture.
type fkSRef struct {
	kind int
	c    float64
	idx  int
}

func fkConst(v float64) fkSRef { return fkSRef{kind: fkSConst, c: v} }

// loadIn resolves the scalar against a call's inputs and prelude vector.
//
//dmml:noalloc
func (r fkSRef) loadIn(ins []FusedInput, sv []float64) float64 {
	switch r.kind {
	case fkSConst:
		return r.c
	case fkSInput:
		return ins[r.idx].S
	default:
		return sv[r.idx]
	}
}

//dmml:noalloc
func (r fkSRef) load(c *fuseCtx) float64 { return r.loadIn(c.ins, c.sv) }

// Input kinds, two bits each in the kernel-cache signature.
const (
	fkKindScalar = 1
	fkKindDense  = 2
	fkKindCSR    = 3
)

// fuseKindSig packs the input kinds into a cache key; false when the input
// list is too long to pack (31 two-bit kinds under a leading sentinel).
func fuseKindSig(ins []FusedInput) (uint64, bool) {
	if len(ins) > 31 {
		return 0, false
	}
	sig := uint64(1)
	for i := range ins {
		switch {
		case ins[i].IsScalar:
			sig = sig<<2 | fkKindScalar
		case ins[i].D != nil:
			sig = sig<<2 | fkKindDense
		default:
			sig = sig<<2 | fkKindCSR
		}
	}
	return sig, true
}

// kernelFor returns the compiled kernel specialized for this input-kind
// mix, compiling and caching on first use; nil means the interpreter runs
// (backend forced, unpackable input list, or compilation refused).
func (p *FuseProgram) kernelFor(ins []FusedInput) *fusedKernel {
	if p.backend != FuseBackendCompiled {
		return nil
	}
	sig, ok := fuseKindSig(ins)
	if !ok {
		return nil
	}
	if m := p.kernels.Load(); m != nil {
		if k, hit := (*m)[sig]; hit {
			return k
		}
	}
	return p.compileAndCache(sig, ins)
}

// compileAndCache compiles under the program's lock and publishes a
// copy-on-write cache map, so the hot path stays a single atomic load. A
// refused compilation caches nil: the check runs once, not per call.
func (p *FuseProgram) compileAndCache(sig uint64, ins []FusedInput) *fusedKernel {
	p.kmu.Lock()
	defer p.kmu.Unlock()
	if m := p.kernels.Load(); m != nil {
		if k, hit := (*m)[sig]; hit {
			return k
		}
	}
	sw := mFusedCompileTimer.Start()
	k := compileFusedKernel(p, ins)
	sw.Stop()
	next := make(map[uint64]*fusedKernel, 4)
	if m := p.kernels.Load(); m != nil {
		for s, kk := range *m {
			next[s] = kk
		}
	}
	next[sig] = k
	p.kernels.Store(&next)
	return k
}

// prepare resolves the kernel for this call's inputs and runs its scalar
// prelude into pooled scratch; the caller releases sv via release. The
// dispatch counters live here so every entry point reports compiled vs
// interpreted uniformly.
//
//dmml:owns-scratch
func (p *FuseProgram) prepare(ins []FusedInput) (*fusedKernel, []float64) {
	k := p.kernelFor(ins)
	if k == nil {
		mFusedInterp.Inc()
		return nil, nil
	}
	mFusedCompiled.Inc()
	var sv []float64
	if k.nsv > 0 {
		sv = pool.GetF64(k.nsv)
		for _, op := range k.pre {
			op(ins, sv)
		}
	}
	return k, sv
}

func (p *FuseProgram) release(sv []float64) {
	if sv != nil {
		pool.PutF64(sv)
	}
}

// CompileFusedKernel forces compilation of the program for the given
// input-kind mix and reports the outcome: whether a specialized kernel
// backs this mix, and which flat template (if any) was matched. The kernel
// is cached, so probing is free relative to the execution that follows.
func (p *FuseProgram) CompileFusedKernel(ins []FusedInput) (compiled bool, flat string) {
	k := p.kernelFor(ins)
	if k == nil {
		return false, ""
	}
	return true, k.flat
}

// fkVal is one compile-time stack slot: a vector node under construction
// or a scalar reference, plus the structural node the pattern matcher
// walks (nil beyond the shapes it understands, e.g. under CSR loads).
type fkVal struct {
	vec  fkVec
	sref fkSRef
	node *fkNode
}

// compileFusedKernel lowers the program by symbolically executing its
// postfix ops over a compile-time stack, emitting one closure per
// vector-valued node. Slot numbers mirror the interpreter's stack
// positions exactly, so the root lands in slot 0 and FusedCellInto's
// bind-scratch[0]-to-dst trick keeps working. Uses only the KINDS of ins —
// closures must never capture the input values themselves.
func compileFusedKernel(p *FuseProgram, ins []FusedInput) *fusedKernel {
	k := &fusedKernel{}
	var stack [fuseMaxDepth]fkVal
	sp := 0
	for _, op := range p.ops {
		switch op.Code {
		case FuseConst:
			r := fkConst(op.Val)
			stack[sp] = fkVal{sref: r, node: &fkNode{scalar: true, sref: r}}
			sp++
		case FuseLoad:
			arg := op.Arg
			switch {
			case ins[arg].IsScalar:
				r := fkSRef{kind: fkSInput, idx: arg}
				stack[sp] = fkVal{sref: r, node: &fkNode{scalar: true, sref: r}}
			case ins[arg].D != nil:
				stack[sp] = fkVal{vec: fkLoadDense(arg), node: &fkNode{code: FuseLoad, arg: arg}}
			default:
				stack[sp] = fkVal{vec: fkLoadCSR(arg, sp)} // no node: flats are dense-only
			}
			sp++
		case FuseAdd, FuseSub, FuseMul, FuseDiv, FusePow:
			b := stack[sp-1]
			a := stack[sp-2]
			sp -= 2
			stack[sp] = k.lowerBin(op.Code, a, b, sp)
			sp++
		default: // unary
			stack[sp-1] = k.lowerUn(op.Code, stack[sp-1], sp-1)
		}
	}
	root := stack[0]
	if root.vec == nil {
		// Scalar-rooted program: the interpreter's broadcast paths handle
		// it; compiling a constant fill buys nothing.
		return nil
	}
	k.root = root.vec
	matchFlat(k, root.node)
	return k
}

// lowerBin emits the closure for a binary node at the given result slot.
func (k *fusedKernel) lowerBin(code FuseOpCode, a, b fkVal, slot int) fkVal {
	if a.vec == nil && b.vec == nil {
		return k.lowerScalarBin(code, a, b)
	}
	var v fkVec
	switch {
	case a.vec != nil && b.vec != nil:
		v = fkBinVV(code, a.vec, b.vec, slot)
	case a.vec != nil:
		v = fkBinVS(code, a.vec, b.sref, slot)
	default:
		v = fkBinSV(code, a.sref, b.vec, slot)
	}
	var node *fkNode
	if a.node != nil && b.node != nil {
		node = &fkNode{code: code, l: a.node, r: b.node}
	}
	return fkVal{vec: v, node: node}
}

// lowerScalarBin folds a constant×constant node outright and hoists any
// dynamic scalar×scalar node into the prelude.
func (k *fusedKernel) lowerScalarBin(code FuseOpCode, a, b fkVal) fkVal {
	if a.sref.kind == fkSConst && b.sref.kind == fkSConst {
		// Same fold the interpreter applies at run time, so bit-exact.
		r := fkConst(fuseScalarBin(code, a.sref.c, b.sref.c))
		return fkVal{sref: r, node: &fkNode{scalar: true, sref: r}}
	}
	idx := k.nsv
	k.nsv++
	ar, br := a.sref, b.sref
	k.pre = append(k.pre, func(ins []FusedInput, sv []float64) {
		sv[idx] = fuseScalarBin(code, ar.loadIn(ins, sv), br.loadIn(ins, sv))
	})
	r := fkSRef{kind: fkSDerived, idx: idx}
	return fkVal{sref: r, node: &fkNode{scalar: true, sref: r}}
}

// lowerUn emits the closure for a unary node (in place: result slot is the
// operand's slot, matching the interpreter).
func (k *fusedKernel) lowerUn(code FuseOpCode, a fkVal, slot int) fkVal {
	if a.vec == nil {
		if a.sref.kind == fkSConst {
			r := fkConst(fuseScalarUn(code, a.sref.c))
			return fkVal{sref: r, node: &fkNode{scalar: true, sref: r}}
		}
		idx := k.nsv
		k.nsv++
		ar := a.sref
		k.pre = append(k.pre, func(ins []FusedInput, sv []float64) {
			sv[idx] = fuseScalarUn(code, ar.loadIn(ins, sv))
		})
		r := fkSRef{kind: fkSDerived, idx: idx}
		return fkVal{sref: r, node: &fkNode{scalar: true, sref: r}}
	}
	var node *fkNode
	if a.node != nil {
		node = &fkNode{code: code, l: a.node}
	}
	return fkVal{vec: fkUn(code, a.vec, slot), node: node}
}

// fkLoadDense returns a zero-copy load of a dense input's element range.
func fkLoadDense(arg int) fkVec {
	return func(c *fuseCtx, lo, hi int) []float64 {
		return c.ins[arg].D.data[lo:hi]
	}
}

// fkLoadCSR decompresses a CSR input's element range into the node's slot.
func fkLoadCSR(arg, slot int) fkVec {
	return func(c *fuseCtx, lo, hi int) []float64 {
		d := c.scratch[slot][:hi-lo]
		csrLoadRange(c.ins[arg].C, d, lo, c.cols)
		return d
	}
}

// Loop selectors: resolve the opcode to its named tile kernel once, at
// compile time, so the emitted closure makes one bound call per tile
// instead of re-dispatching per op per tile.

func vvLoop(code FuseOpCode) func(dst, x, y []float64) {
	switch code {
	case FuseAdd:
		return vvAdd
	case FuseSub:
		return vvSub
	case FuseMul:
		return vvMul
	case FuseDiv:
		return vvDiv
	default:
		return vvPow
	}
}

func vsLoop(code FuseOpCode) func(dst, x []float64, s float64) {
	switch code {
	case FuseAdd:
		return vsAdd
	case FuseSub:
		return vsSub
	case FuseMul:
		return vsMul
	case FuseDiv:
		return vsDiv
	default:
		return vsPow
	}
}

func svLoop(code FuseOpCode) func(dst []float64, s float64, y []float64) {
	switch code {
	case FuseAdd:
		return svAdd
	case FuseSub:
		return svSub
	case FuseMul:
		return svMul
	case FuseDiv:
		return svDiv
	default:
		return svPow
	}
}

func uLoopC(code FuseOpCode) func(dst, x []float64) {
	switch code {
	case FuseNeg:
		return uNeg
	case FuseSq:
		return uSq
	case FuseExp:
		return uExp
	case FuseLog:
		return uLog
	case FuseSqrt:
		return uSqrt
	case FuseAbs:
		return uAbs
	default:
		// Compiled specialization: the tile-vectorized sigmoid (bit-exact
		// against fuseSigmoid; fusedexp.go) replaces the scalar loop.
		return sigmoidTile
	}
}

// fkBinVV emits vector∘vector. The result slot may alias the left
// operand's storage (same stack position); the loops are elementwise
// forward, so in-place updates are safe.
func fkBinVV(code FuseOpCode, l, r fkVec, slot int) fkVec {
	loop := vvLoop(code)
	return func(c *fuseCtx, lo, hi int) []float64 {
		x := l(c, lo, hi)
		y := r(c, lo, hi)
		d := c.scratch[slot][:hi-lo]
		loop(d, x, y)
		return d
	}
}

// fkBinVS emits vector∘scalar, with a tighter closure when the scalar
// folded to a compile-time constant.
func fkBinVS(code FuseOpCode, l fkVec, s fkSRef, slot int) fkVec {
	loop := vsLoop(code)
	if s.kind == fkSConst {
		cv := s.c
		return func(c *fuseCtx, lo, hi int) []float64 {
			x := l(c, lo, hi)
			d := c.scratch[slot][:hi-lo]
			loop(d, x, cv)
			return d
		}
	}
	return func(c *fuseCtx, lo, hi int) []float64 {
		x := l(c, lo, hi)
		d := c.scratch[slot][:hi-lo]
		loop(d, x, s.load(c))
		return d
	}
}

// fkBinSV emits scalar∘vector.
func fkBinSV(code FuseOpCode, s fkSRef, r fkVec, slot int) fkVec {
	loop := svLoop(code)
	if s.kind == fkSConst {
		cv := s.c
		return func(c *fuseCtx, lo, hi int) []float64 {
			y := r(c, lo, hi)
			d := c.scratch[slot][:hi-lo]
			loop(d, cv, y)
			return d
		}
	}
	return func(c *fuseCtx, lo, hi int) []float64 {
		y := r(c, lo, hi)
		d := c.scratch[slot][:hi-lo]
		loop(d, s.load(c), y)
		return d
	}
}

// fkUn emits a unary node, in place over its operand's slot.
func fkUn(code FuseOpCode, l fkVec, slot int) fkVec {
	loop := uLoopC(code)
	return func(c *fuseCtx, lo, hi int) []float64 {
		x := l(c, lo, hi)
		d := c.scratch[slot][:hi-lo]
		loop(d, x)
		return d
	}
}
