package la

import (
	"math"
	"math/rand"
	"testing"
	"time"
)

func TestScoreRowsMatchesSingleRow(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, tc := range []struct {
		rows, cols int
		bias       float64
		link       Link
	}{
		{1, 4, 0, LinkIdentity},
		{17, 8, 0.25, LinkIdentity},
		{256, 32, -1.5, LinkLogistic},
		{1000, 16, 0.75, LinkLogistic},
		{3, 1, 2, LinkLogistic},
	} {
		x := NewDense(tc.rows, tc.cols)
		for i := range x.RawData() {
			x.RawData()[i] = rng.NormFloat64()
		}
		w := make([]float64, tc.cols)
		for i := range w {
			w[i] = rng.NormFloat64()
		}
		dst := make([]float64, tc.rows)
		ScoreRowsInto(dst, x, w, tc.bias, tc.link)
		for i := 0; i < tc.rows; i++ {
			want := ScoreRow(x.RowView(i), w, tc.bias, tc.link)
			if d := math.Abs(dst[i] - want); d > 1e-12 {
				t.Fatalf("%dx%d %v: row %d batched %v vs single %v (|d|=%g)",
					tc.rows, tc.cols, tc.link, i, dst[i], want, d)
			}
			if tc.link == LinkLogistic && (dst[i] < 0 || dst[i] > 1) {
				t.Fatalf("logistic score %v outside [0,1]", dst[i])
			}
		}
	}
}

func TestScoreRowsIdentityBitExact(t *testing.T) {
	// The identity link is one GEMV plus a bias add; batched and single-row
	// must agree bit-for-bit (same Dot kernel, same order).
	x := NewDense(64, 8)
	rng := rand.New(rand.NewSource(11))
	for i := range x.RawData() {
		x.RawData()[i] = rng.Float64()
	}
	w := []float64{1, -2, 3, -4, 5, -6, 7, -8}
	dst := make([]float64, 64)
	ScoreRowsInto(dst, x, w, 0.5, LinkIdentity)
	for i := range dst {
		if want := ScoreRow(x.RowView(i), w, 0.5, LinkIdentity); dst[i] != want {
			t.Fatalf("row %d: batched %v != single %v", i, dst[i], want)
		}
	}
}

// TestBatchedScoringBeatsSingleRow pins the point of the serving batcher:
// scoring one coalesced batch through the pooled GEMV must not be slower
// than the same rows scored one call at a time (in practice it is several
// times faster). Trials are interleaved and each side keeps its best time,
// so transient scheduler load — the rest of the suite running in parallel —
// cannot flake the comparison; the assertion only requires parity-or-better.
func TestBatchedScoringBeatsSingleRow(t *testing.T) {
	if raceEnabled {
		t.Skip("timing pin: race-detector instrumentation distorts relative kernel costs")
	}
	const rows, cols, reps, trials = 512, 32, 40, 9
	x := NewDense(rows, cols)
	rng := rand.New(rand.NewSource(3))
	for i := range x.RawData() {
		x.RawData()[i] = rng.NormFloat64()
	}
	w := make([]float64, cols)
	for i := range w {
		w[i] = rng.NormFloat64()
	}
	dst := make([]float64, rows)

	timeOnce := func(f func()) time.Duration {
		start := time.Now()
		for r := 0; r < reps; r++ {
			f()
		}
		return time.Since(start)
	}
	batchedFn := func() { ScoreRowsInto(dst, x, w, 0.1, LinkLogistic) }
	singleFn := func() {
		for i := 0; i < rows; i++ {
			dst[i] = ScoreRow(x.RowView(i), w, 0.1, LinkLogistic)
		}
	}

	// Warm the fused kernel cache before timing.
	ScoreRowsInto(dst, x, w, 0.1, LinkLogistic)

	batched, single := time.Duration(math.MaxInt64), time.Duration(math.MaxInt64)
	for tr := 0; tr < trials; tr++ {
		batched = min(batched, timeOnce(batchedFn))
		single = min(single, timeOnce(singleFn))
	}
	t.Logf("batched %v vs single-row %v for %d×%d ×%d reps (%.2fx)",
		batched, single, rows, cols, reps, float64(single)/float64(batched))
	if batched > single {
		t.Fatalf("batched scoring slower than batch-size-1: %v > %v", batched, single)
	}
}

func BenchmarkScoreRowsBatched(b *testing.B) {
	const rows, cols = 256, 32
	x := NewDense(rows, cols)
	for i := range x.RawData() {
		x.RawData()[i] = float64(i%13) * 0.1
	}
	w := make([]float64, cols)
	for i := range w {
		w[i] = 0.01 * float64(i)
	}
	dst := make([]float64, rows)
	ScoreRowsInto(dst, x, w, 0.1, LinkLogistic)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ScoreRowsInto(dst, x, w, 0.1, LinkLogistic)
	}
	b.ReportMetric(float64(rows)*float64(b.N)/b.Elapsed().Seconds(), "rows/s")
}

func BenchmarkScoreRowsSingle(b *testing.B) {
	const rows, cols = 256, 32
	x := NewDense(rows, cols)
	for i := range x.RawData() {
		x.RawData()[i] = float64(i%13) * 0.1
	}
	w := make([]float64, cols)
	for i := range w {
		w[i] = 0.01 * float64(i)
	}
	dst := make([]float64, rows)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for r := 0; r < rows; r++ {
			dst[r] = ScoreRow(x.RowView(r), w, 0.1, LinkLogistic)
		}
	}
	b.ReportMetric(float64(rows)*float64(b.N)/b.Elapsed().Seconds(), "rows/s")
}
