package la

import "fmt"

// Batch scoring entry point for the serving layer (internal/serve): many
// feature rows, one weight vector, one link function. The margins come out
// of the pooled GEMV kernel in a single call — this is where request
// batching pays off, amortizing dispatch, pool scheduling and cache misses
// across the whole admission batch — and the logistic link applies the
// bias-add and sigmoid as one compiled fused pass over the margin vector
// (the same SPOOF codegen path the DML engine uses, including the 8-lane
// software-pipelined exp kernel).

// Link selects the inverse link applied to a model's linear margin.
type Link uint8

const (
	// LinkIdentity leaves the margin untouched (linear regression).
	LinkIdentity Link = iota
	// LinkLogistic applies the sigmoid (logistic regression probability).
	LinkLogistic
)

// String names the link for protocol errors and logs.
func (l Link) String() string {
	switch l {
	case LinkIdentity:
		return "identity"
	case LinkLogistic:
		return "logistic"
	default:
		return fmt.Sprintf("Link(%d)", uint8(l))
	}
}

// scoreSigmoidProg is sigmoid(margin + bias): input 0 is the margin vector,
// input 1 the broadcast bias. Compiled once at init; the per-signature
// kernel cache makes every subsequent batch a direct closure call.
var scoreSigmoidProg = func() *FuseProgram {
	p, err := CompileFused([]FusedOp{
		{Code: FuseLoad, Arg: 0},
		{Code: FuseLoad, Arg: 1},
		{Code: FuseAdd},
		{Code: FuseSigmoid},
	}, 2)
	if err != nil {
		panic("la: scoreSigmoidProg: " + err.Error())
	}
	return p
}()

// ScoreRowsInto scores a batch of feature rows against one model:
// dst[i] = link(x.RowView(i)·w + bias). dst must have length x.Rows() and
// w length x.Cols(). The margins are produced by one pooled GEMV; the
// logistic link then runs as one fused pass in place over dst.
func ScoreRowsInto(dst []float64, x *Dense, w []float64, bias float64, link Link) []float64 {
	MatVecInto(dst, x, w)
	mScoreRows.Add(int64(x.rows))
	switch link {
	case LinkLogistic:
		out := Dense{rows: 1, cols: len(dst), data: dst}
		FusedCellInto(&out, scoreSigmoidProg, []FusedInput{DenseInput(&out), ScalarInput(bias)})
	default:
		if bias != 0 {
			vsAdd(dst, dst, bias)
		}
	}
	return dst
}

// ScoreRow scores a single feature row: link(row·w + bias). This is the
// batch-size-1 reference path the serving benchmarks compare against; it
// matches ScoreRowsInto bit-for-bit on the identity link and to sigmoid
// rounding on the logistic link.
func ScoreRow(row, w []float64, bias float64, link Link) float64 {
	m := Dot(row, w) + bias
	mScoreRows.Inc()
	if link == LinkLogistic {
		return fuseSigmoid(m)
	}
	return m
}
