package la

import "dmml/internal/pool"

// Cache-blocked GEMM in the Goto/BLIS style: the k-dimension is split into
// KC-deep slabs, B slabs are packed once into an NR-interleaved panel shared
// (read-only) by all workers, and each worker packs an MC×KC slab of A into
// an MR-interleaved panel before sweeping a register-tiled MR×NR micro-kernel
// over it. Packing turns the strided accesses of the naive loops into unit
// stride for the micro-kernel, whose 8 accumulators live in registers for
// the whole KC-deep inner loop. The 2×4 tile is deliberate: with the 2
// operand loads and loop state it needs ~14 live values, which fits the 16
// SSE registers; a 4×4 tile needs ~24 and spills, halving throughput.
//
// Parallelism is over MC row blocks of A via the shared worker pool with
// dynamic chunk scheduling, so an A slab that finishes early (e.g. fewer
// flops retired due to denormals or cache luck) does not leave its worker
// idle.
const (
	gemmMR = 2   // micro-kernel rows
	gemmNR = 4   // micro-kernel cols
	gemmKC = 256 // k-slab depth: A micro-panel (KC×MR) ~8 KB, L1-resident
	gemmMC = 32  // A slab rows: packed slab (MC×KC) ~64 KB, L2-resident
	gemmNC = 512 // B slab cols bound: packed slab ≤ KC×NC ~1 MB, shared
)

// gemmBlockedMinFlops gates the blocked path: below it, packing overhead and
// the loss of the ikj kernel's zero-skipping outweigh the cache wins. A var
// so tests can force either path.
var gemmBlockedMinFlops = 1 << 21

// gemmUseBlocked decides the kernel for an (m×k)·(k×n) product. The ikj
// streaming kernel skips zero A elements, so clearly-sparse inputs stay on
// it; the O(m·k) scan is ~1/n of the multiply cost.
func gemmUseBlocked(a *Dense, n int) bool {
	if a.rows*a.cols*n < gemmBlockedMinFlops || a.cols < 2 || n < 2 {
		return false
	}
	return a.Sparsity() < 0.5
}

func roundUp(n, to int) int { return (n + to - 1) / to * to }

// K-split GEMM for skinny products (small m×n output, long inner dimension),
// the shape of Xᵀ·X-style normal equations with tall X. The ikj kernel
// re-streams all of B for every output row, turning a tiny-output product
// into a memory-bound sweep of m·K·n bytes; here the loop order is k-outer,
// so A and B are each read exactly once while the whole output stays
// cache-resident. The k-range is split across the pool with per-worker
// partial outputs merged at the end — the only parallelizable dimension when
// m and n are both small.
const (
	kSplitMaxOut = 1 << 12 // parallelize over k only when m*n fits L1 comfortably
	kSplitMinK   = 256
)

// gemmKAccum adds a[0:m, k0:k1] × b[k0:k1, 0:n] into the row-major m×n
// buffer acc.
//dmml:noalloc
func gemmKAccum(a, b *Dense, acc []float64, k0, k1 int) {
	n := b.cols
	for k := k0; k < k1; k++ {
		brow := b.data[k*n : (k+1)*n]
		for i := 0; i < a.rows; i++ {
			av := a.data[i*a.cols+k]
			if av == 0 {
				continue
			}
			arow := acc[i*n : (i+1)*n]
			for j, bv := range brow {
				arow[j] += av * bv
			}
		}
	}
}

// gemmKSplit computes out += a × b by splitting the k dimension across the
// worker pool. out must be zeroed (or hold a partial sum).
func gemmKSplit(a, b, out *Dense) {
	k, n := a.cols, b.cols
	work := a.rows * k * n
	if work < parallelThreshold || pool.SerialNow() {
		gemmKAccum(a, b, out.data, 0, k)
		return
	}
	outLen := a.rows * n
	partials := make([][]float64, pool.Workers())
	partials[0] = out.data
	pool.Do(k, pool.Grain(k, a.rows*n), func(slot, lo, hi int) {
		acc := partials[slot]
		if acc == nil {
			acc = pool.GetF64Zeroed(outLen)
			partials[slot] = acc
		}
		gemmKAccum(a, b, acc, lo, hi)
	})
	for _, p := range partials[1:] {
		if p != nil {
			Axpy(1, p, out.data)
			pool.PutF64(p)
		}
	}
}

// packA writes the mc×kc slab of a at (i0,k0) into dst as column-major
// micro-panels of gemmMR rows, zero-padding the row remainder. dst must hold
// roundUp(mc,gemmMR)*kc values.
//dmml:noalloc
func packA(dst []float64, a *Dense, i0, mc, k0, kc int) {
	at := 0
	for ip := 0; ip < mc; ip += gemmMR {
		panel := dst[at : at+kc*gemmMR]
		for r := 0; r < gemmMR; r++ {
			if ip+r >= mc {
				for k := 0; k < kc; k++ {
					panel[k*gemmMR+r] = 0
				}
				continue
			}
			arow := a.data[(i0+ip+r)*a.cols+k0:]
			for k := 0; k < kc; k++ {
				panel[k*gemmMR+r] = arow[k]
			}
		}
		at += kc * gemmMR
	}
}

// packB writes the kc×nc slab of b at (k0,j0) into dst as row-major
// micro-panels of gemmNR columns, zero-padding the column remainder. dst must
// hold kc*roundUp(nc,gemmNR) values.
//dmml:noalloc
func packB(dst []float64, b *Dense, k0, kc, j0, nc int) {
	ncPad := roundUp(nc, gemmNR)
	for k := 0; k < kc; k++ {
		brow := b.data[(k0+k)*b.cols+j0:]
		for jp := 0; jp < ncPad; jp += gemmNR {
			panel := dst[(jp/gemmNR)*kc*gemmNR+k*gemmNR:]
			for c := 0; c < gemmNR; c++ {
				if jp+c < nc {
					panel[c] = brow[jp+c]
				} else {
					panel[c] = 0
				}
			}
		}
	}
}

// gemmMicro accumulates a gemmMR×gemmNR tile of A·B into out at (i0,j0),
// given packed micro-panels ap (kc×MR, column-major) and bp (kc×NR,
// row-major). mValid/nValid bound the writeback for edge tiles; the
// accumulation itself always runs the full padded tile (padding is zero).
//dmml:noalloc
func gemmMicro(kc int, ap, bp []float64, out *Dense, i0, j0, mValid, nValid int) {
	var c00, c01, c02, c03 float64
	var c10, c11, c12, c13 float64
	ap = ap[:2*kc]
	bp = bp[:4*kc]
	for len(ap) >= 2 && len(bp) >= 4 {
		a0, a1 := ap[0], ap[1]
		b0, b1, b2, b3 := bp[0], bp[1], bp[2], bp[3]
		c00 += a0 * b0
		c01 += a0 * b1
		c02 += a0 * b2
		c03 += a0 * b3
		c10 += a1 * b0
		c11 += a1 * b1
		c12 += a1 * b2
		c13 += a1 * b3
		ap = ap[2:]
		bp = bp[4:]
	}
	tile := [gemmMR][gemmNR]float64{
		{c00, c01, c02, c03},
		{c10, c11, c12, c13},
	}
	if mValid > gemmMR {
		mValid = gemmMR
	}
	if nValid > gemmNR {
		nValid = gemmNR
	}
	for r := 0; r < mValid; r++ {
		orow := out.data[(i0+r)*out.cols+j0:]
		for c := 0; c < nValid; c++ {
			orow[c] += tile[r][c]
		}
	}
}

// gemmBlocked computes out += a × b with the packed, tiled kernel. out must
// be zero (or hold a partial sum to accumulate onto) and correctly sized.
func gemmBlocked(a, b, out *Dense) {
	m, k, n := a.rows, a.cols, b.cols
	for jc := 0; jc < n; jc += gemmNC {
		nc := min(gemmNC, n-jc)
		ncPad := roundUp(nc, gemmNR)
		for pc := 0; pc < k; pc += gemmKC {
			kc := min(gemmKC, k-pc)
			bBuf := pool.GetF64(kc * ncPad)
			packB(bBuf, b, pc, kc, jc, nc)
			nBlocks := (m + gemmMC - 1) / gemmMC
			pool.Do(nBlocks, 1, func(_, lo, hi int) {
				aBuf := pool.GetF64(roundUp(gemmMC, gemmMR) * kc)
				for blk := lo; blk < hi; blk++ {
					i0 := blk * gemmMC
					mc := min(gemmMC, m-i0)
					mcPad := roundUp(mc, gemmMR)
					packA(aBuf[:mcPad*kc], a, i0, mc, pc, kc)
					for jr := 0; jr < ncPad; jr += gemmNR {
						bp := bBuf[(jr/gemmNR)*kc*gemmNR:][:kc*gemmNR]
						for ir := 0; ir < mcPad; ir += gemmMR {
							ap := aBuf[(ir/gemmMR)*kc*gemmMR:][:kc*gemmMR]
							gemmMicro(kc, ap, bp, out, i0+ir, jc+jr, mc-ir, nc-jr)
						}
					}
				}
				pool.PutF64(aBuf)
			})
			pool.PutF64(bBuf)
		}
	}
}
