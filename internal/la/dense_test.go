package la

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func randDense(r *rand.Rand, rows, cols int) *Dense {
	m := NewDense(rows, cols)
	for i := range m.data {
		m.data[i] = r.NormFloat64()
	}
	return m
}

func TestNewDenseDataValidation(t *testing.T) {
	if _, err := NewDenseData(2, 3, make([]float64, 5)); err == nil {
		t.Fatal("want error for wrong data length")
	}
	if _, err := NewDenseData(0, 3, nil); err == nil {
		t.Fatal("want error for zero rows")
	}
	m, err := NewDenseData(2, 2, []float64{1, 2, 3, 4})
	if err != nil {
		t.Fatal(err)
	}
	if got := m.At(1, 0); got != 3 {
		t.Fatalf("At(1,0) = %v, want 3", got)
	}
}

func TestFromRows(t *testing.T) {
	m, err := FromRows([][]float64{{1, 2}, {3, 4}, {5, 6}})
	if err != nil {
		t.Fatal(err)
	}
	if r, c := m.Dims(); r != 3 || c != 2 {
		t.Fatalf("dims = %dx%d", r, c)
	}
	if m.At(2, 1) != 6 {
		t.Fatalf("At(2,1) = %v", m.At(2, 1))
	}
	if _, err := FromRows([][]float64{{1, 2}, {3}}); err == nil {
		t.Fatal("want error for ragged rows")
	}
	if _, err := FromRows(nil); err == nil {
		t.Fatal("want error for empty input")
	}
}

func TestTranspose(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	m := randDense(r, 37, 53)
	mt := m.T()
	for i := 0; i < 37; i++ {
		for j := 0; j < 53; j++ {
			if m.At(i, j) != mt.At(j, i) {
				t.Fatalf("transpose mismatch at (%d,%d)", i, j)
			}
		}
	}
	if !m.T().T().Equal(m, 0) {
		t.Fatal("double transpose is not identity")
	}
}

func TestSliceAndSelect(t *testing.T) {
	m, _ := FromRows([][]float64{{1, 2, 3}, {4, 5, 6}, {7, 8, 9}})
	s := m.Slice(1, 3, 0, 2)
	want, _ := FromRows([][]float64{{4, 5}, {7, 8}})
	if !s.Equal(want, 0) {
		t.Fatalf("Slice = %v", s)
	}
	sc := m.SelectCols([]int{2, 0})
	wantC, _ := FromRows([][]float64{{3, 1}, {6, 4}, {9, 7}})
	if !sc.Equal(wantC, 0) {
		t.Fatalf("SelectCols = %v", sc)
	}
	sr := m.SelectRows([]int{2, 2, 0})
	wantR, _ := FromRows([][]float64{{7, 8, 9}, {7, 8, 9}, {1, 2, 3}})
	if !sr.Equal(wantR, 0) {
		t.Fatalf("SelectRows = %v", sr)
	}
}

func TestElementwiseOps(t *testing.T) {
	a, _ := FromRows([][]float64{{1, 2}, {3, 4}})
	b, _ := FromRows([][]float64{{10, 20}, {30, 40}})
	sum := a.Clone().Add(b)
	want, _ := FromRows([][]float64{{11, 22}, {33, 44}})
	if !sum.Equal(want, 0) {
		t.Fatalf("Add = %v", sum)
	}
	diff := b.Clone().Sub(a)
	wantD, _ := FromRows([][]float64{{9, 18}, {27, 36}})
	if !diff.Equal(wantD, 0) {
		t.Fatalf("Sub = %v", diff)
	}
	prod := a.Clone().MulElem(b)
	wantP, _ := FromRows([][]float64{{10, 40}, {90, 160}})
	if !prod.Equal(wantP, 0) {
		t.Fatalf("MulElem = %v", prod)
	}
	sc := a.Clone().Scale(2)
	wantS, _ := FromRows([][]float64{{2, 4}, {6, 8}})
	if !sc.Equal(wantS, 0) {
		t.Fatalf("Scale = %v", sc)
	}
	ap := a.Clone().Apply(func(x float64) float64 { return x * x })
	wantA, _ := FromRows([][]float64{{1, 4}, {9, 16}})
	if !ap.Equal(wantA, 0) {
		t.Fatalf("Apply = %v", ap)
	}
}

func TestAggregates(t *testing.T) {
	m, _ := FromRows([][]float64{{1, 2, 0}, {3, 4, 0}})
	if got := m.Sum(); got != 10 {
		t.Fatalf("Sum = %v", got)
	}
	if got := m.SumSq(); got != 1+4+9+16 {
		t.Fatalf("SumSq = %v", got)
	}
	if got := m.NNZ(); got != 4 {
		t.Fatalf("NNZ = %v", got)
	}
	if got := m.Sparsity(); math.Abs(got-2.0/6) > 1e-15 {
		t.Fatalf("Sparsity = %v", got)
	}
	cs := m.ColSums()
	if cs[0] != 4 || cs[1] != 6 || cs[2] != 0 {
		t.Fatalf("ColSums = %v", cs)
	}
	cm := m.ColMeans()
	if cm[0] != 2 || cm[1] != 3 {
		t.Fatalf("ColMeans = %v", cm)
	}
	rs := m.RowSums()
	if rs[0] != 3 || rs[1] != 7 {
		t.Fatalf("RowSums = %v", rs)
	}
	stds := m.ColStds()
	if math.Abs(stds[0]-1) > 1e-12 || stds[2] != 0 {
		t.Fatalf("ColStds = %v", stds)
	}
}

func TestStackHCat(t *testing.T) {
	a, _ := FromRows([][]float64{{1, 2}})
	b, _ := FromRows([][]float64{{3, 4}, {5, 6}})
	st, err := Stack(a, b)
	if err != nil {
		t.Fatal(err)
	}
	want, _ := FromRows([][]float64{{1, 2}, {3, 4}, {5, 6}})
	if !st.Equal(want, 0) {
		t.Fatalf("Stack = %v", st)
	}
	c, _ := FromRows([][]float64{{7}, {8}})
	h, err := HCat(b, c)
	if err != nil {
		t.Fatal(err)
	}
	wantH, _ := FromRows([][]float64{{3, 4, 7}, {5, 6, 8}})
	if !h.Equal(wantH, 0) {
		t.Fatalf("HCat = %v", h)
	}
	if _, err := Stack(a, c); err == nil {
		t.Fatal("want column mismatch error")
	}
	if _, err := HCat(a, b); err == nil {
		t.Fatal("want row mismatch error")
	}
}

func TestIdentity(t *testing.T) {
	id := Identity(4)
	r := rand.New(rand.NewSource(2))
	m := randDense(r, 4, 4)
	if !MatMul(id, m).Equal(m, 1e-12) || !MatMul(m, id).Equal(m, 1e-12) {
		t.Fatal("identity does not preserve matrix under multiplication")
	}
}

func TestIndexPanics(t *testing.T) {
	m := NewDense(2, 2)
	for _, fn := range []func(){
		func() { m.At(2, 0) },
		func() { m.At(0, -1) },
		func() { m.Set(-1, 0, 1) },
		func() { m.RowView(5) },
		func() { m.Col(3) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("want panic for out-of-range access")
				}
			}()
			fn()
		}()
	}
}

// Property: transpose is an involution and preserves the multiset of values.
func TestTransposeProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		rows := 1 + r.Intn(20)
		cols := 1 + r.Intn(20)
		m := randDense(r, rows, cols)
		return m.T().T().Equal(m, 0) && math.Abs(m.T().Sum()-m.Sum()) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: (A+B)ᵀ = Aᵀ + Bᵀ.
func TestAddTransposeDistributes(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		rows := 1 + r.Intn(15)
		cols := 1 + r.Intn(15)
		a := randDense(r, rows, cols)
		b := randDense(r, rows, cols)
		lhs := a.Clone().Add(b).T()
		rhs := a.T().Add(b.T())
		return lhs.Equal(rhs, 1e-12)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
