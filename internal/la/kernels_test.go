package la

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// naiveMatMul is the reference triple loop used to validate optimized kernels.
func naiveMatMul(a, b *Dense) *Dense {
	out := NewDense(a.rows, b.cols)
	for i := 0; i < a.rows; i++ {
		for j := 0; j < b.cols; j++ {
			var s float64
			for k := 0; k < a.cols; k++ {
				s += a.At(i, k) * b.At(k, j)
			}
			out.Set(i, j, s)
		}
	}
	return out
}

func TestMatMulMatchesNaive(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	for _, dims := range [][3]int{{1, 1, 1}, {3, 4, 5}, {17, 9, 23}, {64, 32, 48}, {130, 70, 90}} {
		a := randDense(r, dims[0], dims[1])
		b := randDense(r, dims[1], dims[2])
		got := MatMul(a, b)
		want := naiveMatMul(a, b)
		if !got.Equal(want, 1e-10) {
			t.Fatalf("MatMul mismatch for dims %v", dims)
		}
	}
}

func TestMatMulShapePanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("want panic on inner-dimension mismatch")
		}
	}()
	MatMul(NewDense(2, 3), NewDense(4, 2))
}

func TestMatVecVecMat(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	m := randDense(r, 29, 13)
	x := make([]float64, 13)
	y := make([]float64, 29)
	for i := range x {
		x[i] = r.NormFloat64()
	}
	for i := range y {
		y[i] = r.NormFloat64()
	}
	mv := MatVec(m, x)
	for i := 0; i < 29; i++ {
		want := Dot(m.RowView(i), x)
		if math.Abs(mv[i]-want) > 1e-12 {
			t.Fatalf("MatVec[%d] = %v, want %v", i, mv[i], want)
		}
	}
	vm := VecMat(y, m)
	mtv := MatVec(m.T(), y)
	for j := range vm {
		if math.Abs(vm[j]-mtv[j]) > 1e-10 {
			t.Fatalf("VecMat[%d] = %v, want %v", j, vm[j], mtv[j])
		}
	}
}

// VecMat must agree with the sequential path when forced parallel (large input).
func TestVecMatParallelConsistency(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	m := randDense(r, 4000, 100) // above parallelThreshold
	y := make([]float64, 4000)
	for i := range y {
		y[i] = r.NormFloat64()
	}
	got := VecMat(y, m)
	want := MatVec(m.T(), y)
	for j := range got {
		if math.Abs(got[j]-want[j]) > 1e-8 {
			t.Fatalf("parallel VecMat[%d] = %v, want %v", j, got[j], want[j])
		}
	}
}

func TestGram(t *testing.T) {
	r := rand.New(rand.NewSource(6))
	x := randDense(r, 57, 11)
	got := Gram(x)
	want := MatMul(x.T(), x)
	if !got.Equal(want, 1e-10) {
		t.Fatal("Gram != XᵀX")
	}
	// Symmetry.
	if !got.Equal(got.T(), 1e-12) {
		t.Fatal("Gram result not symmetric")
	}
}

func TestGramParallel(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	x := randDense(r, 3000, 40)
	got := Gram(x)
	want := MatMul(x.T(), x)
	if !got.Equal(want, 1e-7) {
		t.Fatal("parallel Gram != XᵀX")
	}
}

func TestTraceAndTraceMatMul(t *testing.T) {
	r := rand.New(rand.NewSource(8))
	a := randDense(r, 14, 9)
	b := randDense(r, 9, 14)
	got := TraceMatMul(a, b)
	want := Trace(MatMul(a, b))
	if math.Abs(got-want) > 1e-10 {
		t.Fatalf("TraceMatMul = %v, want %v", got, want)
	}
}

func TestOuterAdd(t *testing.T) {
	m := NewDense(2, 3)
	OuterAdd(m, 2, []float64{1, 2}, []float64{3, 4, 5})
	want, _ := FromRows([][]float64{{6, 8, 10}, {12, 16, 20}})
	if !m.Equal(want, 1e-14) {
		t.Fatalf("OuterAdd = %v", m)
	}
}

func TestVectorHelpers(t *testing.T) {
	x := []float64{1, 2, 3, 4, 5}
	y := []float64{5, 4, 3, 2, 1}
	if got := Dot(x, y); got != 35 {
		t.Fatalf("Dot = %v", got)
	}
	z := CloneVec(y)
	Axpy(2, x, z)
	want := []float64{7, 8, 9, 10, 11}
	for i := range want {
		if z[i] != want[i] {
			t.Fatalf("Axpy = %v", z)
		}
	}
	if got := Norm2([]float64{3, 4}); got != 5 {
		t.Fatalf("Norm2 = %v", got)
	}
	if got := NormInf([]float64{1, -7, 3}); got != 7 {
		t.Fatalf("NormInf = %v", got)
	}
	if got := ArgMax([]float64{1, 9, 9, 3}); got != 1 {
		t.Fatalf("ArgMax = %v", got)
	}
	if got := ArgMin([]float64{4, -2, 5}); got != 1 {
		t.Fatalf("ArgMin = %v", got)
	}
	if ArgMax(nil) != -1 || ArgMin(nil) != -1 {
		t.Fatal("ArgMax/ArgMin of empty must be -1")
	}
	if got := MeanVec([]float64{2, 4, 6}); got != 4 {
		t.Fatalf("MeanVec = %v", got)
	}
	if got := MeanVec(nil); got != 0 {
		t.Fatalf("MeanVec(nil) = %v", got)
	}
	s := SubVec(x, y)
	a := AddVec(s, y)
	for i := range x {
		if a[i] != x[i] {
			t.Fatal("SubVec/AddVec do not round-trip")
		}
	}
}

// Property: associativity (A·B)·C = A·(B·C) within numerical tolerance.
func TestMatMulAssociativity(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		p, q, s, u := 1+r.Intn(10), 1+r.Intn(10), 1+r.Intn(10), 1+r.Intn(10)
		a := randDense(r, p, q)
		b := randDense(r, q, s)
		c := randDense(r, s, u)
		lhs := MatMul(MatMul(a, b), c)
		rhs := MatMul(a, MatMul(b, c))
		return lhs.Equal(rhs, 1e-8)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: (A·B)ᵀ = Bᵀ·Aᵀ.
func TestMatMulTransposeProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		p, q, s := 1+r.Intn(12), 1+r.Intn(12), 1+r.Intn(12)
		a := randDense(r, p, q)
		b := randDense(r, q, s)
		return MatMul(a, b).T().Equal(MatMul(b.T(), a.T()), 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
