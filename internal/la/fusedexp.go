package la

import "math"

// Tile-vectorized sigmoid for the compiled fusion backend.
//
// The scalar interpreter path computes sigmoid via fuseSigmoid, whose cost
// is one math.Exp call per element — on amd64 an assembly routine (SLEEF /
// Shibata reduction) that the Go compiler cannot inline or pipeline across
// loop iterations. The compiled backend replaces that loop with an 8-lane
// software-pipelined port of the *same* algorithm, so eight exponentials are
// in flight at once through the long FMA/divide dependency chains. Eight is
// deliberate: the polynomial is a serial chain of ~4-cycle FMAs on hardware
// that retires two FMAs per cycle, so fewer than eight independent chains
// leave the FMA ports idle, and more than eight overflows the reorder
// window (one 8-lane group is already ~240 uops).
//
// Bit-exactness is load-bearing, not best-effort: compiled≡interpreted is a
// tested invariant, so the vector lanes must reproduce math.Exp exactly.
// Two ports cover the two variants the assembly selects between at runtime:
// exp8FMA uses math.FMA (exactly rounded everywhere, hardware or soft) and
// matches the FMA path; exp8NoFMA uses plain ops and matches the pre-FMA
// path. A package-init probe bit-compares both against math.Exp across the
// sigmoid gate range and selects whichever matches; on platforms where
// neither does (e.g. a different arch-specific Exp), sigmoidTile falls back
// to the scalar loop — slower, never wrong.
//
// The fast lanes are gated to |m| ∈ [2^-28, 700): arguments whose exp is
// normal, finite, and away from the overflow/denormal tails — exactly the
// range the probe certifies. Out-of-gate lanes (including NaN/Inf) take
// fuseSigmoid scalar.

const (
	expLog2E = 1.4426950408889634073599246810018920                  // 1/ln(2)
	expLN2U  = 0.69314718055966295651160180568695068359375           // ln(2) upper half
	expLN2L  = 0.28235290563031577122588448175013436025525412068e-12 // ln(2) lower half

	// Round-to-nearest-even via the add-magic-subtract trick: adding
	// 1.5·2^52 forces the fraction out of the significand, matching the
	// assembly's CVTSD2SL for the argument range the gate admits.
	expRound = 0x1.8p52

	sigGateLo = 0x1p-28 // below this |m|, go scalar (probe range floor)
	sigGateHi = 700.0   // at or above this |m|, go scalar (overflow/denormal tails)
)

// fuseExpMode selects the sigmoid fast path: 0 scalar-only, 1 exp8FMA,
// 2 exp8NoFMA. Decided once at init by bit-comparison against math.Exp.
var fuseExpMode = probeExpMode()

// exp8FMA evaluates math.Exp on eight lanes, matching the FMA variant of
// the amd64 assembly bit for bit (math.FMA is exactly rounded on every
// platform, so the port is deterministic even without FMA hardware).
// Valid only for arguments inside the sigmoid gate.
//
//dmml:noalloc
func exp8FMA(x0, x1, x2, x3, x4, x5, x6, x7 float64) (float64, float64, float64, float64, float64, float64, float64, float64) {
	kd0 := expLog2E*x0 + expRound
	kd1 := expLog2E*x1 + expRound
	kd2 := expLog2E*x2 + expRound
	kd3 := expLog2E*x3 + expRound
	kd4 := expLog2E*x4 + expRound
	kd5 := expLog2E*x5 + expRound
	kd6 := expLog2E*x6 + expRound
	kd7 := expLog2E*x7 + expRound
	k0 := int64(math.Float64bits(kd0)) - 0x4338000000000000
	k1 := int64(math.Float64bits(kd1)) - 0x4338000000000000
	k2 := int64(math.Float64bits(kd2)) - 0x4338000000000000
	k3 := int64(math.Float64bits(kd3)) - 0x4338000000000000
	k4 := int64(math.Float64bits(kd4)) - 0x4338000000000000
	k5 := int64(math.Float64bits(kd5)) - 0x4338000000000000
	k6 := int64(math.Float64bits(kd6)) - 0x4338000000000000
	k7 := int64(math.Float64bits(kd7)) - 0x4338000000000000
	kd0 -= expRound
	kd1 -= expRound
	kd2 -= expRound
	kd3 -= expRound
	kd4 -= expRound
	kd5 -= expRound
	kd6 -= expRound
	kd7 -= expRound
	u0 := math.FMA(-kd0, expLN2U, x0)
	u1 := math.FMA(-kd1, expLN2U, x1)
	u2 := math.FMA(-kd2, expLN2U, x2)
	u3 := math.FMA(-kd3, expLN2U, x3)
	u4 := math.FMA(-kd4, expLN2U, x4)
	u5 := math.FMA(-kd5, expLN2U, x5)
	u6 := math.FMA(-kd6, expLN2U, x6)
	u7 := math.FMA(-kd7, expLN2U, x7)
	u0 = math.FMA(-kd0, expLN2L, u0)
	u1 = math.FMA(-kd1, expLN2L, u1)
	u2 = math.FMA(-kd2, expLN2L, u2)
	u3 = math.FMA(-kd3, expLN2L, u3)
	u4 = math.FMA(-kd4, expLN2L, u4)
	u5 = math.FMA(-kd5, expLN2L, u5)
	u6 = math.FMA(-kd6, expLN2L, u6)
	u7 = math.FMA(-kd7, expLN2L, u7)
	u0 *= 0.0625
	u1 *= 0.0625
	u2 *= 0.0625
	u3 *= 0.0625
	u4 *= 0.0625
	u5 *= 0.0625
	u6 *= 0.0625
	u7 *= 0.0625
	h0 := math.FMA(2.4801587301587301587e-5, u0, 1.9841269841269841270e-4)
	h1 := math.FMA(2.4801587301587301587e-5, u1, 1.9841269841269841270e-4)
	h2 := math.FMA(2.4801587301587301587e-5, u2, 1.9841269841269841270e-4)
	h3 := math.FMA(2.4801587301587301587e-5, u3, 1.9841269841269841270e-4)
	h4 := math.FMA(2.4801587301587301587e-5, u4, 1.9841269841269841270e-4)
	h5 := math.FMA(2.4801587301587301587e-5, u5, 1.9841269841269841270e-4)
	h6 := math.FMA(2.4801587301587301587e-5, u6, 1.9841269841269841270e-4)
	h7 := math.FMA(2.4801587301587301587e-5, u7, 1.9841269841269841270e-4)
	h0 = math.FMA(h0, u0, 1.3888888888888888889e-3)
	h1 = math.FMA(h1, u1, 1.3888888888888888889e-3)
	h2 = math.FMA(h2, u2, 1.3888888888888888889e-3)
	h3 = math.FMA(h3, u3, 1.3888888888888888889e-3)
	h4 = math.FMA(h4, u4, 1.3888888888888888889e-3)
	h5 = math.FMA(h5, u5, 1.3888888888888888889e-3)
	h6 = math.FMA(h6, u6, 1.3888888888888888889e-3)
	h7 = math.FMA(h7, u7, 1.3888888888888888889e-3)
	h0 = math.FMA(h0, u0, 8.3333333333333333333e-3)
	h1 = math.FMA(h1, u1, 8.3333333333333333333e-3)
	h2 = math.FMA(h2, u2, 8.3333333333333333333e-3)
	h3 = math.FMA(h3, u3, 8.3333333333333333333e-3)
	h4 = math.FMA(h4, u4, 8.3333333333333333333e-3)
	h5 = math.FMA(h5, u5, 8.3333333333333333333e-3)
	h6 = math.FMA(h6, u6, 8.3333333333333333333e-3)
	h7 = math.FMA(h7, u7, 8.3333333333333333333e-3)
	h0 = math.FMA(h0, u0, 4.1666666666666666667e-2)
	h1 = math.FMA(h1, u1, 4.1666666666666666667e-2)
	h2 = math.FMA(h2, u2, 4.1666666666666666667e-2)
	h3 = math.FMA(h3, u3, 4.1666666666666666667e-2)
	h4 = math.FMA(h4, u4, 4.1666666666666666667e-2)
	h5 = math.FMA(h5, u5, 4.1666666666666666667e-2)
	h6 = math.FMA(h6, u6, 4.1666666666666666667e-2)
	h7 = math.FMA(h7, u7, 4.1666666666666666667e-2)
	h0 = math.FMA(h0, u0, 1.6666666666666666667e-1)
	h1 = math.FMA(h1, u1, 1.6666666666666666667e-1)
	h2 = math.FMA(h2, u2, 1.6666666666666666667e-1)
	h3 = math.FMA(h3, u3, 1.6666666666666666667e-1)
	h4 = math.FMA(h4, u4, 1.6666666666666666667e-1)
	h5 = math.FMA(h5, u5, 1.6666666666666666667e-1)
	h6 = math.FMA(h6, u6, 1.6666666666666666667e-1)
	h7 = math.FMA(h7, u7, 1.6666666666666666667e-1)
	h0 = math.FMA(h0, u0, 0.5)
	h1 = math.FMA(h1, u1, 0.5)
	h2 = math.FMA(h2, u2, 0.5)
	h3 = math.FMA(h3, u3, 0.5)
	h4 = math.FMA(h4, u4, 0.5)
	h5 = math.FMA(h5, u5, 0.5)
	h6 = math.FMA(h6, u6, 0.5)
	h7 = math.FMA(h7, u7, 0.5)
	h0 = math.FMA(h0, u0, 1.0)
	h1 = math.FMA(h1, u1, 1.0)
	h2 = math.FMA(h2, u2, 1.0)
	h3 = math.FMA(h3, u3, 1.0)
	h4 = math.FMA(h4, u4, 1.0)
	h5 = math.FMA(h5, u5, 1.0)
	h6 = math.FMA(h6, u6, 1.0)
	h7 = math.FMA(h7, u7, 1.0)
	s0 := u0 * h0
	s1 := u1 * h1
	s2 := u2 * h2
	s3 := u3 * h3
	s4 := u4 * h4
	s5 := u5 * h5
	s6 := u6 * h6
	s7 := u7 * h7
	s0 = s0 * (s0 + 2)
	s1 = s1 * (s1 + 2)
	s2 = s2 * (s2 + 2)
	s3 = s3 * (s3 + 2)
	s4 = s4 * (s4 + 2)
	s5 = s5 * (s5 + 2)
	s6 = s6 * (s6 + 2)
	s7 = s7 * (s7 + 2)
	s0 = s0 * (s0 + 2)
	s1 = s1 * (s1 + 2)
	s2 = s2 * (s2 + 2)
	s3 = s3 * (s3 + 2)
	s4 = s4 * (s4 + 2)
	s5 = s5 * (s5 + 2)
	s6 = s6 * (s6 + 2)
	s7 = s7 * (s7 + 2)
	s0 = s0 * (s0 + 2)
	s1 = s1 * (s1 + 2)
	s2 = s2 * (s2 + 2)
	s3 = s3 * (s3 + 2)
	s4 = s4 * (s4 + 2)
	s5 = s5 * (s5 + 2)
	s6 = s6 * (s6 + 2)
	s7 = s7 * (s7 + 2)
	s0 = math.FMA(s0, s0+2, 1)
	s1 = math.FMA(s1, s1+2, 1)
	s2 = math.FMA(s2, s2+2, 1)
	s3 = math.FMA(s3, s3+2, 1)
	s4 = math.FMA(s4, s4+2, 1)
	s5 = math.FMA(s5, s5+2, 1)
	s6 = math.FMA(s6, s6+2, 1)
	s7 = math.FMA(s7, s7+2, 1)
	s0 *= math.Float64frombits(uint64(k0+0x3FF) << 52)
	s1 *= math.Float64frombits(uint64(k1+0x3FF) << 52)
	s2 *= math.Float64frombits(uint64(k2+0x3FF) << 52)
	s3 *= math.Float64frombits(uint64(k3+0x3FF) << 52)
	s4 *= math.Float64frombits(uint64(k4+0x3FF) << 52)
	s5 *= math.Float64frombits(uint64(k5+0x3FF) << 52)
	s6 *= math.Float64frombits(uint64(k6+0x3FF) << 52)
	s7 *= math.Float64frombits(uint64(k7+0x3FF) << 52)
	return s0, s1, s2, s3, s4, s5, s6, s7
}

// exp8NoFMA is the plain-operation twin of exp8FMA.
//
//dmml:noalloc
func exp8NoFMA(x0, x1, x2, x3, x4, x5, x6, x7 float64) (float64, float64, float64, float64, float64, float64, float64, float64) {
	kd0 := expLog2E*x0 + expRound
	kd1 := expLog2E*x1 + expRound
	kd2 := expLog2E*x2 + expRound
	kd3 := expLog2E*x3 + expRound
	kd4 := expLog2E*x4 + expRound
	kd5 := expLog2E*x5 + expRound
	kd6 := expLog2E*x6 + expRound
	kd7 := expLog2E*x7 + expRound
	k0 := int64(math.Float64bits(kd0)) - 0x4338000000000000
	k1 := int64(math.Float64bits(kd1)) - 0x4338000000000000
	k2 := int64(math.Float64bits(kd2)) - 0x4338000000000000
	k3 := int64(math.Float64bits(kd3)) - 0x4338000000000000
	k4 := int64(math.Float64bits(kd4)) - 0x4338000000000000
	k5 := int64(math.Float64bits(kd5)) - 0x4338000000000000
	k6 := int64(math.Float64bits(kd6)) - 0x4338000000000000
	k7 := int64(math.Float64bits(kd7)) - 0x4338000000000000
	kd0 -= expRound
	kd1 -= expRound
	kd2 -= expRound
	kd3 -= expRound
	kd4 -= expRound
	kd5 -= expRound
	kd6 -= expRound
	kd7 -= expRound
	u0 := x0 - kd0*expLN2U
	u1 := x1 - kd1*expLN2U
	u2 := x2 - kd2*expLN2U
	u3 := x3 - kd3*expLN2U
	u4 := x4 - kd4*expLN2U
	u5 := x5 - kd5*expLN2U
	u6 := x6 - kd6*expLN2U
	u7 := x7 - kd7*expLN2U
	u0 -= kd0 * expLN2L
	u1 -= kd1 * expLN2L
	u2 -= kd2 * expLN2L
	u3 -= kd3 * expLN2L
	u4 -= kd4 * expLN2L
	u5 -= kd5 * expLN2L
	u6 -= kd6 * expLN2L
	u7 -= kd7 * expLN2L
	u0 *= 0.0625
	u1 *= 0.0625
	u2 *= 0.0625
	u3 *= 0.0625
	u4 *= 0.0625
	u5 *= 0.0625
	u6 *= 0.0625
	u7 *= 0.0625
	h0 := 2.4801587301587301587e-5 * u0
	h1 := 2.4801587301587301587e-5 * u1
	h2 := 2.4801587301587301587e-5 * u2
	h3 := 2.4801587301587301587e-5 * u3
	h4 := 2.4801587301587301587e-5 * u4
	h5 := 2.4801587301587301587e-5 * u5
	h6 := 2.4801587301587301587e-5 * u6
	h7 := 2.4801587301587301587e-5 * u7
	h0 += 1.9841269841269841270e-4
	h1 += 1.9841269841269841270e-4
	h2 += 1.9841269841269841270e-4
	h3 += 1.9841269841269841270e-4
	h4 += 1.9841269841269841270e-4
	h5 += 1.9841269841269841270e-4
	h6 += 1.9841269841269841270e-4
	h7 += 1.9841269841269841270e-4
	h0 = h0*u0 + 1.3888888888888888889e-3
	h1 = h1*u1 + 1.3888888888888888889e-3
	h2 = h2*u2 + 1.3888888888888888889e-3
	h3 = h3*u3 + 1.3888888888888888889e-3
	h4 = h4*u4 + 1.3888888888888888889e-3
	h5 = h5*u5 + 1.3888888888888888889e-3
	h6 = h6*u6 + 1.3888888888888888889e-3
	h7 = h7*u7 + 1.3888888888888888889e-3
	h0 = h0*u0 + 8.3333333333333333333e-3
	h1 = h1*u1 + 8.3333333333333333333e-3
	h2 = h2*u2 + 8.3333333333333333333e-3
	h3 = h3*u3 + 8.3333333333333333333e-3
	h4 = h4*u4 + 8.3333333333333333333e-3
	h5 = h5*u5 + 8.3333333333333333333e-3
	h6 = h6*u6 + 8.3333333333333333333e-3
	h7 = h7*u7 + 8.3333333333333333333e-3
	h0 = h0*u0 + 4.1666666666666666667e-2
	h1 = h1*u1 + 4.1666666666666666667e-2
	h2 = h2*u2 + 4.1666666666666666667e-2
	h3 = h3*u3 + 4.1666666666666666667e-2
	h4 = h4*u4 + 4.1666666666666666667e-2
	h5 = h5*u5 + 4.1666666666666666667e-2
	h6 = h6*u6 + 4.1666666666666666667e-2
	h7 = h7*u7 + 4.1666666666666666667e-2
	h0 = h0*u0 + 1.6666666666666666667e-1
	h1 = h1*u1 + 1.6666666666666666667e-1
	h2 = h2*u2 + 1.6666666666666666667e-1
	h3 = h3*u3 + 1.6666666666666666667e-1
	h4 = h4*u4 + 1.6666666666666666667e-1
	h5 = h5*u5 + 1.6666666666666666667e-1
	h6 = h6*u6 + 1.6666666666666666667e-1
	h7 = h7*u7 + 1.6666666666666666667e-1
	h0 = h0*u0 + 0.5
	h1 = h1*u1 + 0.5
	h2 = h2*u2 + 0.5
	h3 = h3*u3 + 0.5
	h4 = h4*u4 + 0.5
	h5 = h5*u5 + 0.5
	h6 = h6*u6 + 0.5
	h7 = h7*u7 + 0.5
	h0 = h0*u0 + 1.0
	h1 = h1*u1 + 1.0
	h2 = h2*u2 + 1.0
	h3 = h3*u3 + 1.0
	h4 = h4*u4 + 1.0
	h5 = h5*u5 + 1.0
	h6 = h6*u6 + 1.0
	h7 = h7*u7 + 1.0
	s0 := u0 * h0
	s1 := u1 * h1
	s2 := u2 * h2
	s3 := u3 * h3
	s4 := u4 * h4
	s5 := u5 * h5
	s6 := u6 * h6
	s7 := u7 * h7
	s0 = s0 * (s0 + 2)
	s1 = s1 * (s1 + 2)
	s2 = s2 * (s2 + 2)
	s3 = s3 * (s3 + 2)
	s4 = s4 * (s4 + 2)
	s5 = s5 * (s5 + 2)
	s6 = s6 * (s6 + 2)
	s7 = s7 * (s7 + 2)
	s0 = s0 * (s0 + 2)
	s1 = s1 * (s1 + 2)
	s2 = s2 * (s2 + 2)
	s3 = s3 * (s3 + 2)
	s4 = s4 * (s4 + 2)
	s5 = s5 * (s5 + 2)
	s6 = s6 * (s6 + 2)
	s7 = s7 * (s7 + 2)
	s0 = s0 * (s0 + 2)
	s1 = s1 * (s1 + 2)
	s2 = s2 * (s2 + 2)
	s3 = s3 * (s3 + 2)
	s4 = s4 * (s4 + 2)
	s5 = s5 * (s5 + 2)
	s6 = s6 * (s6 + 2)
	s7 = s7 * (s7 + 2)
	s0 = s0 * (s0 + 2)
	s1 = s1 * (s1 + 2)
	s2 = s2 * (s2 + 2)
	s3 = s3 * (s3 + 2)
	s4 = s4 * (s4 + 2)
	s5 = s5 * (s5 + 2)
	s6 = s6 * (s6 + 2)
	s7 = s7 * (s7 + 2)
	s0++
	s1++
	s2++
	s3++
	s4++
	s5++
	s6++
	s7++
	s0 *= math.Float64frombits(uint64(k0+0x3FF) << 52)
	s1 *= math.Float64frombits(uint64(k1+0x3FF) << 52)
	s2 *= math.Float64frombits(uint64(k2+0x3FF) << 52)
	s3 *= math.Float64frombits(uint64(k3+0x3FF) << 52)
	s4 *= math.Float64frombits(uint64(k4+0x3FF) << 52)
	s5 *= math.Float64frombits(uint64(k5+0x3FF) << 52)
	s6 *= math.Float64frombits(uint64(k6+0x3FF) << 52)
	s7 *= math.Float64frombits(uint64(k7+0x3FF) << 52)
	return s0, s1, s2, s3, s4, s5, s6, s7
}

// probeExpMode certifies the vector lanes against math.Exp over the gate
// range: a multiplicative sweep of magnitudes plus the k·ln2 reduction
// boundaries where rounding of the exponent estimate flips. Any single bit
// of disagreement disqualifies a variant.
func probeExpMode() uint8 {
	okFMA, okPlain := true, true
	check := func(x float64) {
		want := math.Float64bits(math.Exp(x))
		if okFMA {
			a, b, c, d, e, f, g, h := exp8FMA(x, x, x, x, x, x, x, x)
			for _, got := range [8]float64{a, b, c, d, e, f, g, h} {
				if math.Float64bits(got) != want {
					okFMA = false
					break
				}
			}
		}
		if okPlain {
			a, b, c, d, e, f, g, h := exp8NoFMA(x, x, x, x, x, x, x, x)
			for _, got := range [8]float64{a, b, c, d, e, f, g, h} {
				if math.Float64bits(got) != want {
					okPlain = false
					break
				}
			}
		}
	}
	for m := sigGateLo; m < sigGateHi; m *= 1.001 {
		check(-m)
		if !okFMA && !okPlain {
			return 0
		}
	}
	for k := 1; k <= 1010; k++ {
		c := float64(k) * math.Ln2
		if c >= sigGateHi {
			break
		}
		check(-math.Nextafter(c, 0))
		check(-c)
		check(-math.Nextafter(c, 1024))
	}
	switch {
	case okFMA:
		return 1
	case okPlain:
		return 2
	default:
		return 0
	}
}

// sigLane finishes one in-gate sigmoid lane from m and e = exp(-|m|),
// branch-free: the numerator is 1 for m ≥ 0 and e for m < 0, selected by
// broadcasting m's sign bit. Matches fuseSigmoid's two branches exactly.
//
//dmml:noalloc
func sigLane(m, e float64) float64 {
	mask := uint64(int64(math.Float64bits(m)) >> 63)
	num := math.Float64frombits(math.Float64bits(e)&mask | 0x3FF0000000000000&^mask)
	return num / (1 + e)
}

// sigmoidTile applies the numerically stable sigmoid over a tile,
// bit-identical to the interpreter's per-element fuseSigmoid loop. In-gate
// quads run through the certified 4-lane exponential; anything else —
// probe failed, tiny or huge magnitudes, NaN/Inf, the tail — takes the
// scalar path. dst may alias x.
//
//dmml:noalloc
func sigmoidTile(dst, x []float64) {
	mode := fuseExpMode
	if mode == 0 {
		uSigmoid(dst, x)
		return
	}
	x = x[:len(dst)]
	i := 0
	for ; i+8 <= len(dst); i += 8 {
		m0, m1, m2, m3 := x[i], x[i+1], x[i+2], x[i+3]
		m4, m5, m6, m7 := x[i+4], x[i+5], x[i+6], x[i+7]
		a0, a1, a2, a3 := math.Abs(m0), math.Abs(m1), math.Abs(m2), math.Abs(m3)
		a4, a5, a6, a7 := math.Abs(m4), math.Abs(m5), math.Abs(m6), math.Abs(m7)
		if a0 >= sigGateLo && a0 < sigGateHi &&
			a1 >= sigGateLo && a1 < sigGateHi &&
			a2 >= sigGateLo && a2 < sigGateHi &&
			a3 >= sigGateLo && a3 < sigGateHi &&
			a4 >= sigGateLo && a4 < sigGateHi &&
			a5 >= sigGateLo && a5 < sigGateHi &&
			a6 >= sigGateLo && a6 < sigGateHi &&
			a7 >= sigGateLo && a7 < sigGateHi {
			var e0, e1, e2, e3, e4, e5, e6, e7 float64
			if mode == 1 {
				e0, e1, e2, e3, e4, e5, e6, e7 = exp8FMA(-a0, -a1, -a2, -a3, -a4, -a5, -a6, -a7)
			} else {
				e0, e1, e2, e3, e4, e5, e6, e7 = exp8NoFMA(-a0, -a1, -a2, -a3, -a4, -a5, -a6, -a7)
			}
			dst[i] = sigLane(m0, e0)
			dst[i+1] = sigLane(m1, e1)
			dst[i+2] = sigLane(m2, e2)
			dst[i+3] = sigLane(m3, e3)
			dst[i+4] = sigLane(m4, e4)
			dst[i+5] = sigLane(m5, e5)
			dst[i+6] = sigLane(m6, e6)
			dst[i+7] = sigLane(m7, e7)
		} else {
			dst[i] = fuseSigmoid(m0)
			dst[i+1] = fuseSigmoid(m1)
			dst[i+2] = fuseSigmoid(m2)
			dst[i+3] = fuseSigmoid(m3)
			dst[i+4] = fuseSigmoid(m4)
			dst[i+5] = fuseSigmoid(m5)
			dst[i+6] = fuseSigmoid(m6)
			dst[i+7] = fuseSigmoid(m7)
		}
	}
	for ; i < len(dst); i++ {
		dst[i] = fuseSigmoid(x[i])
	}
}
