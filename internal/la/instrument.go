package la

import "dmml/internal/metrics"

// Engine observability instruments (see internal/metrics). Everything here
// is a no-op costing one atomic load until metrics.Enable() — the kernels'
// AllocsPerRun pins and the E5 benchmark hold with these in place.
//
// The dispatch counters make the GEMM gate auditable at runtime: `dmmlbench
// -metrics` shows how many products the flops/sparsity heuristic sent to
// the blocked, k-split, and streaming kernels, which is the first question
// every perf regression hunt asks.
var (
	mFlops = metrics.NewCounter("la.flops")

	mMatMulCalls   = metrics.NewCounter("la.matmul.calls")
	mMatMulBlocked = metrics.NewCounter("la.matmul.dispatch.blocked")
	mMatMulKSplit  = metrics.NewCounter("la.matmul.dispatch.ksplit")
	mMatMulStream  = metrics.NewCounter("la.matmul.dispatch.stream")
	mMatMulTimer   = metrics.NewTimer("la.MatMul")

	mMatVecCalls = metrics.NewCounter("la.matvec.calls")
	mVecMatCalls = metrics.NewCounter("la.vecmat.calls")
	mGramCalls   = metrics.NewCounter("la.gram.calls")
	mGramTimer   = metrics.NewTimer("la.Gram")

	// Fused-pipeline instruments: one counter per template plus the sparse
	// fast-path counter, so `dmmlbench -metrics` shows how much of a run
	// executed fused and how often zero cells were skipped outright.
	mFusedCellCalls   = metrics.NewCounter("la.fused.cell.calls")
	mFusedAggCalls    = metrics.NewCounter("la.fused.rowagg.calls")
	mFusedSparseSkips = metrics.NewCounter("la.fused.sparse.fastpaths")
	mFusedCellTimer   = metrics.NewTimer("la.FusedCell")
	mFusedAggTimer    = metrics.NewTimer("la.FusedRowAgg")
)
