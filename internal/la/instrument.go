package la

import "dmml/internal/metrics"

// Engine observability instruments (see internal/metrics). Everything here
// is a no-op costing one atomic load until metrics.Enable() — the kernels'
// AllocsPerRun pins and the E5 benchmark hold with these in place.
//
// The dispatch counters make the GEMM gate auditable at runtime: `dmmlbench
// -metrics` shows how many products the flops/sparsity heuristic sent to
// the blocked, k-split, and streaming kernels, which is the first question
// every perf regression hunt asks.
var (
	mFlops = metrics.NewCounter("la.flops")

	mMatMulCalls   = metrics.NewCounter("la.matmul.calls")
	mMatMulBlocked = metrics.NewCounter("la.matmul.dispatch.blocked")
	mMatMulKSplit  = metrics.NewCounter("la.matmul.dispatch.ksplit")
	mMatMulStream  = metrics.NewCounter("la.matmul.dispatch.stream")
	mMatMulTimer   = metrics.NewTimer("la.MatMul")

	mMatVecCalls = metrics.NewCounter("la.matvec.calls")
	mVecMatCalls = metrics.NewCounter("la.vecmat.calls")
	mGramCalls   = metrics.NewCounter("la.gram.calls")
	mGramTimer   = metrics.NewTimer("la.Gram")

	// Fused-pipeline instruments: one counter per template plus the sparse
	// fast-path counter, so `dmmlbench -metrics` shows how much of a run
	// executed fused and how often zero cells were skipped outright.
	mFusedCellCalls   = metrics.NewCounter("la.fused.cell.calls")
	mFusedAggCalls    = metrics.NewCounter("la.fused.rowagg.calls")
	mFusedSparseSkips = metrics.NewCounter("la.fused.sparse.fastpaths")
	mFusedCellTimer   = metrics.NewTimer("la.FusedCell")
	mFusedAggTimer    = metrics.NewTimer("la.FusedRowAgg")

	// Compiled-backend instruments (fusedc.go): the dispatch counters split
	// every fused execution into compiled vs interpreted (with flat-template
	// hits broken out), the compile timer prices the one-time lowering, and
	// the compiled timers let `dmml -stats` show the two backends
	// side by side.
	mFusedCompiled     = metrics.NewCounter("la.fused.dispatch.compiled")
	mFusedInterp       = metrics.NewCounter("la.fused.dispatch.interp")
	mFusedFlat         = metrics.NewCounter("la.fused.dispatch.flat")
	mFusedCompileTimer = metrics.NewTimer("la.FusedCompile")
	mFusedCellCTimer   = metrics.NewTimer("la.FusedCellCompiled")
	mFusedAggCTimer    = metrics.NewTimer("la.FusedRowAggCompiled")

	// Serving-path scoring: total rows scored through ScoreRowsInto /
	// ScoreRow, so `dmmlserve -stats` can relate predictions to GEMV work.
	mScoreRows = metrics.NewCounter("la.score.rows")
)
