package la

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func randSparseDense(r *rand.Rand, rows, cols int, density float64) *Dense {
	m := NewDense(rows, cols)
	for i := range m.data {
		if r.Float64() < density {
			m.data[i] = r.NormFloat64()
		}
	}
	return m
}

func TestCSRRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(10))
	m := randSparseDense(r, 40, 25, 0.1)
	s := CSRFromDense(m)
	if !s.ToDense().Equal(m, 0) {
		t.Fatal("CSR round trip mismatch")
	}
	if s.NNZ() != m.NNZ() {
		t.Fatalf("NNZ %d != %d", s.NNZ(), m.NNZ())
	}
}

func TestCSRAt(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	m := randSparseDense(r, 30, 30, 0.15)
	s := CSRFromDense(m)
	for i := 0; i < 30; i++ {
		for j := 0; j < 30; j++ {
			if s.At(i, j) != m.At(i, j) {
				t.Fatalf("At(%d,%d) = %v, want %v", i, j, s.At(i, j), m.At(i, j))
			}
		}
	}
}

func TestFromCoords(t *testing.T) {
	s, err := FromCoords(3, 3, []Coord{
		{0, 1, 2}, {2, 2, 5}, {0, 1, 3}, // duplicate (0,1) sums to 5
		{1, 0, 1}, {1, 0, -1}, // duplicate cancels to 0, dropped
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := s.At(0, 1); got != 5 {
		t.Fatalf("At(0,1) = %v, want 5", got)
	}
	if got := s.At(1, 0); got != 0 {
		t.Fatalf("At(1,0) = %v, want 0", got)
	}
	if s.NNZ() != 2 {
		t.Fatalf("NNZ = %d, want 2", s.NNZ())
	}
	if _, err := FromCoords(2, 2, []Coord{{5, 0, 1}}); err == nil {
		t.Fatal("want out-of-range error")
	}
}

func TestNewCSRValidation(t *testing.T) {
	// Unsorted columns within a row must be rejected.
	if _, err := NewCSR(1, 3, []int{0, 2}, []int{2, 0}, []float64{1, 1}); err == nil {
		t.Fatal("want error for unsorted columns")
	}
	// Column out of range.
	if _, err := NewCSR(1, 2, []int{0, 1}, []int{5}, []float64{1}); err == nil {
		t.Fatal("want error for out-of-range column")
	}
	// Mismatched nnz.
	if _, err := NewCSR(1, 2, []int{0, 2}, []int{0}, []float64{1}); err == nil {
		t.Fatal("want error for inconsistent nnz")
	}
	// Valid.
	s, err := NewCSR(2, 3, []int{0, 2, 3}, []int{0, 2, 1}, []float64{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if s.At(1, 1) != 3 {
		t.Fatalf("At(1,1) = %v", s.At(1, 1))
	}
}

func TestCSRMatVecAgainstDense(t *testing.T) {
	r := rand.New(rand.NewSource(12))
	m := randSparseDense(r, 80, 33, 0.07)
	s := CSRFromDense(m)
	x := make([]float64, 33)
	for i := range x {
		x[i] = r.NormFloat64()
	}
	got := s.MatVec(x)
	want := MatVec(m, x)
	for i := range got {
		if math.Abs(got[i]-want[i]) > 1e-10 {
			t.Fatalf("MatVec[%d] = %v, want %v", i, got[i], want[i])
		}
	}
	y := make([]float64, 80)
	for i := range y {
		y[i] = r.NormFloat64()
	}
	gotV := s.VecMat(y)
	wantV := VecMat(y, m)
	for j := range gotV {
		if math.Abs(gotV[j]-wantV[j]) > 1e-10 {
			t.Fatalf("VecMat[%d] = %v, want %v", j, gotV[j], wantV[j])
		}
	}
}

func TestCSRMatMulDense(t *testing.T) {
	r := rand.New(rand.NewSource(13))
	m := randSparseDense(r, 45, 20, 0.1)
	b := randDense(r, 20, 17)
	got := CSRFromDense(m).MatMulDense(b)
	want := MatMul(m, b)
	if !got.Equal(want, 1e-10) {
		t.Fatal("CSR MatMulDense mismatch")
	}
}

func TestCSRGram(t *testing.T) {
	r := rand.New(rand.NewSource(14))
	m := randSparseDense(r, 60, 15, 0.2)
	got := CSRFromDense(m).Gram()
	want := Gram(m)
	if !got.Equal(want, 1e-10) {
		t.Fatal("CSR Gram mismatch")
	}
}

func TestCSRTranspose(t *testing.T) {
	r := rand.New(rand.NewSource(15))
	m := randSparseDense(r, 23, 41, 0.12)
	got := CSRFromDense(m).T().ToDense()
	if !got.Equal(m.T(), 0) {
		t.Fatal("CSR transpose mismatch")
	}
}

func TestCSRScale(t *testing.T) {
	m, _ := FromRows([][]float64{{1, 0}, {0, 2}})
	s := CSRFromDense(m).Scale(3)
	if s.At(0, 0) != 3 || s.At(1, 1) != 6 {
		t.Fatal("Scale mismatch")
	}
}

// Property: for random sparse matrices, all CSR ops agree with dense ops.
func TestCSREquivalenceProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		rows := 1 + r.Intn(30)
		cols := 1 + r.Intn(30)
		m := randSparseDense(r, rows, cols, 0.15)
		s := CSRFromDense(m)
		x := make([]float64, cols)
		for i := range x {
			x[i] = r.NormFloat64()
		}
		mv, dv := s.MatVec(x), MatVec(m, x)
		for i := range mv {
			if math.Abs(mv[i]-dv[i]) > 1e-9 {
				return false
			}
		}
		return s.ToDense().Equal(m, 0) && s.T().T().ToDense().Equal(m, 0)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
