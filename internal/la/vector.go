package la

import (
	"fmt"
	"math"
)

// Vector helpers operate on plain []float64 slices so callers can avoid
// wrapping 1-D data in matrices.

// Dot returns the inner product of x and y.
//dmml:noalloc
func Dot(x, y []float64) float64 {
	if len(x) != len(y) {
		panic(fmt.Sprintf("la: Dot length mismatch %d vs %d", len(x), len(y)))
	}
	var s float64
	// 4-way unrolled accumulation; keeps the loop dependence chain short.
	n := len(x)
	var s0, s1, s2, s3 float64
	i := 0
	for ; i+4 <= n; i += 4 {
		s0 += x[i] * y[i]
		s1 += x[i+1] * y[i+1]
		s2 += x[i+2] * y[i+2]
		s3 += x[i+3] * y[i+3]
	}
	for ; i < n; i++ {
		s += x[i] * y[i]
	}
	return s + s0 + s1 + s2 + s3
}

// Axpy computes y += a*x in place.
//dmml:noalloc
func Axpy(a float64, x, y []float64) {
	if len(x) != len(y) {
		panic(fmt.Sprintf("la: Axpy length mismatch %d vs %d", len(x), len(y)))
	}
	for i, v := range x {
		y[i] += a * v
	}
}

// ScaleVec multiplies x by a in place.
//dmml:noalloc
func ScaleVec(a float64, x []float64) {
	for i := range x {
		x[i] *= a
	}
}

// Norm2 returns the Euclidean norm of x.
//dmml:noalloc
func Norm2(x []float64) float64 {
	return math.Sqrt(Dot(x, x))
}

// NormInf returns the maximum absolute value of x.
//dmml:noalloc
func NormInf(x []float64) float64 {
	var mx float64
	for _, v := range x {
		if a := math.Abs(v); a > mx {
			mx = a
		}
	}
	return mx
}

// SubVec computes x - y into a new slice.
func SubVec(x, y []float64) []float64 {
	if len(x) != len(y) {
		panic(fmt.Sprintf("la: SubVec length mismatch %d vs %d", len(x), len(y)))
	}
	out := make([]float64, len(x))
	for i := range x {
		out[i] = x[i] - y[i]
	}
	return out
}

// AddVec computes x + y into a new slice.
func AddVec(x, y []float64) []float64 {
	if len(x) != len(y) {
		panic(fmt.Sprintf("la: AddVec length mismatch %d vs %d", len(x), len(y)))
	}
	out := make([]float64, len(x))
	for i := range x {
		out[i] = x[i] + y[i]
	}
	return out
}

// CloneVec returns a copy of x.
func CloneVec(x []float64) []float64 {
	out := make([]float64, len(x))
	copy(out, x)
	return out
}

// SumVec returns the sum of the elements of x.
//dmml:noalloc
func SumVec(x []float64) float64 {
	var s float64
	for _, v := range x {
		s += v
	}
	return s
}

// MeanVec returns the arithmetic mean of x (0 for empty input).
func MeanVec(x []float64) float64 {
	if len(x) == 0 {
		return 0
	}
	return SumVec(x) / float64(len(x))
}

// ArgMax returns the index of the largest element (first on ties, -1 if empty).
func ArgMax(x []float64) int {
	if len(x) == 0 {
		return -1
	}
	best := 0
	for i := 1; i < len(x); i++ {
		if x[i] > x[best] {
			best = i
		}
	}
	return best
}

// ArgMin returns the index of the smallest element (first on ties, -1 if empty).
func ArgMin(x []float64) int {
	if len(x) == 0 {
		return -1
	}
	best := 0
	for i := 1; i < len(x); i++ {
		if x[i] < x[best] {
			best = i
		}
	}
	return best
}
