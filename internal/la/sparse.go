package la

import (
	"fmt"
	"sort"
)

// CSR is a compressed sparse row matrix. Column indices within each row are
// strictly increasing and stored values may include explicit zeros only if
// inserted deliberately (the constructors drop them).
type CSR struct {
	rows, cols int
	rowPtr     []int // len rows+1
	colIdx     []int // len nnz
	vals       []float64
}

// NewCSR assembles a CSR matrix from raw components, validating the
// invariants (monotone rowPtr, sorted in-range column indices).
func NewCSR(rows, cols int, rowPtr, colIdx []int, vals []float64) (*CSR, error) {
	if rows <= 0 || cols <= 0 {
		return nil, fmt.Errorf("la: NewCSR non-positive dims %dx%d", rows, cols)
	}
	if len(rowPtr) != rows+1 {
		return nil, fmt.Errorf("la: NewCSR rowPtr length %d, want %d", len(rowPtr), rows+1)
	}
	if rowPtr[0] != 0 || rowPtr[rows] != len(colIdx) || len(colIdx) != len(vals) {
		return nil, fmt.Errorf("la: NewCSR inconsistent nnz bookkeeping")
	}
	for i := 0; i < rows; i++ {
		if rowPtr[i] > rowPtr[i+1] {
			return nil, fmt.Errorf("la: NewCSR rowPtr not monotone at row %d", i)
		}
		prev := -1
		for p := rowPtr[i]; p < rowPtr[i+1]; p++ {
			c := colIdx[p]
			if c <= prev || c >= cols {
				return nil, fmt.Errorf("la: NewCSR bad column %d in row %d", c, i)
			}
			prev = c
		}
	}
	return &CSR{rows: rows, cols: cols, rowPtr: rowPtr, colIdx: colIdx, vals: vals}, nil
}

// Coord is a single (row, col, value) entry used when building sparse
// matrices from triplets.
type Coord struct {
	Row, Col int
	Val      float64
}

// FromCoords builds a CSR matrix from unordered triplets. Duplicate (row,col)
// entries are summed; resulting zeros are kept out of the structure.
func FromCoords(rows, cols int, entries []Coord) (*CSR, error) {
	if rows <= 0 || cols <= 0 {
		return nil, fmt.Errorf("la: FromCoords non-positive dims %dx%d", rows, cols)
	}
	for _, e := range entries {
		if e.Row < 0 || e.Row >= rows || e.Col < 0 || e.Col >= cols {
			return nil, fmt.Errorf("la: FromCoords entry (%d,%d) out of range for %dx%d", e.Row, e.Col, rows, cols)
		}
	}
	sorted := make([]Coord, len(entries))
	copy(sorted, entries)
	sort.Slice(sorted, func(i, j int) bool {
		if sorted[i].Row != sorted[j].Row {
			return sorted[i].Row < sorted[j].Row
		}
		return sorted[i].Col < sorted[j].Col
	})
	rowPtr := make([]int, rows+1)
	colIdx := make([]int, 0, len(sorted))
	vals := make([]float64, 0, len(sorted))
	for i := 0; i < len(sorted); {
		j := i
		v := 0.0
		for ; j < len(sorted) && sorted[j].Row == sorted[i].Row && sorted[j].Col == sorted[i].Col; j++ {
			v += sorted[j].Val
		}
		if v != 0 {
			colIdx = append(colIdx, sorted[i].Col)
			vals = append(vals, v)
			rowPtr[sorted[i].Row+1]++
		}
		i = j
	}
	for i := 0; i < rows; i++ {
		rowPtr[i+1] += rowPtr[i]
	}
	return &CSR{rows: rows, cols: cols, rowPtr: rowPtr, colIdx: colIdx, vals: vals}, nil
}

// CSRFromDense converts a dense matrix into CSR, dropping zeros.
func CSRFromDense(m *Dense) *CSR {
	rowPtr := make([]int, m.rows+1)
	nnz := m.NNZ()
	colIdx := make([]int, 0, nnz)
	vals := make([]float64, 0, nnz)
	for i := 0; i < m.rows; i++ {
		row := m.RowView(i)
		for j, v := range row {
			if v != 0 {
				colIdx = append(colIdx, j)
				vals = append(vals, v)
			}
		}
		rowPtr[i+1] = len(colIdx)
	}
	return &CSR{rows: m.rows, cols: m.cols, rowPtr: rowPtr, colIdx: colIdx, vals: vals}
}

// ToDense materializes the CSR matrix densely.
func (s *CSR) ToDense() *Dense {
	out := NewDense(s.rows, s.cols)
	for i := 0; i < s.rows; i++ {
		row := out.RowView(i)
		for p := s.rowPtr[i]; p < s.rowPtr[i+1]; p++ {
			row[s.colIdx[p]] = s.vals[p]
		}
	}
	return out
}

// Dims returns the matrix dimensions.
func (s *CSR) Dims() (rows, cols int) { return s.rows, s.cols }

// Rows returns the number of rows.
func (s *CSR) Rows() int { return s.rows }

// Cols returns the number of columns.
func (s *CSR) Cols() int { return s.cols }

// NNZ returns the number of stored non-zeros.
func (s *CSR) NNZ() int { return len(s.vals) }

// Sparsity returns the fraction of zero cells.
func (s *CSR) Sparsity() float64 {
	return 1 - float64(s.NNZ())/(float64(s.rows)*float64(s.cols))
}

// At returns the element at (i, j) using binary search within the row.
func (s *CSR) At(i, j int) float64 {
	if i < 0 || i >= s.rows || j < 0 || j >= s.cols {
		panic(fmt.Sprintf("la: CSR index (%d,%d) out of range for %dx%d", i, j, s.rows, s.cols))
	}
	lo, hi := s.rowPtr[i], s.rowPtr[i+1]
	p := lo + sort.SearchInts(s.colIdx[lo:hi], j)
	if p < hi && s.colIdx[p] == j {
		return s.vals[p]
	}
	return 0
}

// RowNNZ returns the non-zero column indices and values of row i, aliasing
// internal storage.
func (s *CSR) RowNNZ(i int) (cols []int, vals []float64) {
	lo, hi := s.rowPtr[i], s.rowPtr[i+1]
	return s.colIdx[lo:hi], s.vals[lo:hi]
}

// MatVec returns s × x.
func (s *CSR) MatVec(x []float64) []float64 {
	return s.MatVecInto(make([]float64, s.rows), x)
}

// MatVecInto computes s × x into dst (overwriting it) and returns dst. Rows
// are scheduled dynamically on the worker pool: sparse row skew (a few dense
// rows among many near-empty ones) rebalances instead of serializing on the
// chunk that drew the dense rows.
func (s *CSR) MatVecInto(dst, x []float64) []float64 {
	if s.cols != len(x) {
		panic(fmt.Sprintf("la: CSR MatVec %dx%d × len %d", s.rows, s.cols, len(x)))
	}
	if len(dst) != s.rows {
		panic(fmt.Sprintf("la: CSR MatVecInto dst len %d for %d rows", len(dst), s.rows))
	}
	parallelRows(s.rows, len(s.vals), func(r0, r1 int) {
		for i := r0; i < r1; i++ {
			var acc float64
			for p := s.rowPtr[i]; p < s.rowPtr[i+1]; p++ {
				acc += s.vals[p] * x[s.colIdx[p]]
			}
			dst[i] = acc
		}
	})
	return dst
}

// VecMat returns xᵀ × s (length cols).
func (s *CSR) VecMat(x []float64) []float64 {
	return s.VecMatInto(make([]float64, s.cols), x)
}

// VecMatInto computes xᵀ × s into dst (overwriting it) and returns dst.
func (s *CSR) VecMatInto(dst, x []float64) []float64 {
	if s.rows != len(x) {
		panic(fmt.Sprintf("la: CSR VecMat len %d × %dx%d", len(x), s.rows, s.cols))
	}
	if len(dst) != s.cols {
		panic(fmt.Sprintf("la: CSR VecMatInto dst len %d for %d cols", len(dst), s.cols))
	}
	for j := range dst {
		dst[j] = 0
	}
	for i, xi := range x {
		if xi == 0 {
			continue
		}
		for p := s.rowPtr[i]; p < s.rowPtr[i+1]; p++ {
			dst[s.colIdx[p]] += xi * s.vals[p]
		}
	}
	return dst
}

// MatMulDense returns s × b for dense b.
func (s *CSR) MatMulDense(b *Dense) *Dense {
	if s.cols != b.rows {
		panic(fmt.Sprintf("la: CSR MatMulDense %dx%d × %dx%d", s.rows, s.cols, b.rows, b.cols))
	}
	out := NewDense(s.rows, b.cols)
	parallelRows(s.rows, len(s.vals)*b.cols, func(r0, r1 int) {
		for i := r0; i < r1; i++ {
			orow := out.RowView(i)
			for p := s.rowPtr[i]; p < s.rowPtr[i+1]; p++ {
				Axpy(s.vals[p], b.RowView(s.colIdx[p]), orow)
			}
		}
	})
	return out
}

// Gram returns sᵀs as a dense cols×cols matrix.
func (s *CSR) Gram() *Dense {
	d := s.cols
	out := NewDense(d, d)
	for i := 0; i < s.rows; i++ {
		cols, vals := s.RowNNZ(i)
		for a, ca := range cols {
			va := vals[a]
			orow := out.RowView(ca)
			for b := a; b < len(cols); b++ {
				orow[cols[b]] += va * vals[b]
			}
		}
	}
	for i := 0; i < d; i++ {
		for j := 0; j < i; j++ {
			out.data[i*d+j] = out.data[j*d+i]
		}
	}
	return out
}

// Scale multiplies all stored values by a in place and returns s.
func (s *CSR) Scale(a float64) *CSR {
	for i := range s.vals {
		s.vals[i] *= a
	}
	return s
}

// T returns the transpose as a new CSR matrix (built via CSC-style counting).
func (s *CSR) T() *CSR {
	rowPtr := make([]int, s.cols+1)
	for _, c := range s.colIdx {
		rowPtr[c+1]++
	}
	for i := 0; i < s.cols; i++ {
		rowPtr[i+1] += rowPtr[i]
	}
	colIdx := make([]int, len(s.colIdx))
	vals := make([]float64, len(s.vals))
	next := make([]int, s.cols)
	copy(next, rowPtr[:s.cols])
	for i := 0; i < s.rows; i++ {
		for p := s.rowPtr[i]; p < s.rowPtr[i+1]; p++ {
			c := s.colIdx[p]
			q := next[c]
			colIdx[q] = i
			vals[q] = s.vals[p]
			next[c]++
		}
	}
	return &CSR{rows: s.cols, cols: s.rows, rowPtr: rowPtr, colIdx: colIdx, vals: vals}
}

// String summarizes the matrix.
func (s *CSR) String() string {
	return fmt.Sprintf("CSR{%dx%d, nnz=%d}", s.rows, s.cols, s.NNZ())
}
