package la

// Equivalence properties for the pooled/blocked kernel engine: every fast
// path (dynamic-chunk parallel, cache-blocked packed GEMM, k-split GEMM,
// tiled Gram, scratch-backed Into variants) must agree with a plain serial
// reference, at GOMAXPROCS=1 and at GOMAXPROCS=N. Floating-point sums are
// reassociated by blocking/partials, so comparisons use a tolerance scaled
// to the reduction length.

import (
	"math/rand"
	"runtime"
	"testing"
	"testing/quick"
)

// refMatMul is the obviously-correct triple loop.
func refMatMul(a, b *Dense) *Dense {
	out := NewDense(a.rows, b.cols)
	for i := 0; i < a.rows; i++ {
		for j := 0; j < b.cols; j++ {
			var s float64
			for k := 0; k < a.cols; k++ {
				s += a.data[i*a.cols+k] * b.data[k*b.cols+j]
			}
			out.data[i*out.cols+j] = s
		}
	}
	return out
}

func randMat(r *rand.Rand, rows, cols int, sparsity float64) *Dense {
	m := NewDense(rows, cols)
	for i := range m.data {
		if r.Float64() >= sparsity {
			m.data[i] = r.NormFloat64()
		}
	}
	return m
}

// tolFor scales the comparison tolerance with the length of the reduction,
// since blocked and partial-accumulator sums reassociate.
func tolFor(k int) float64 { return 1e-9 * float64(k+1) }

// withGOMAXPROCS runs f at the given GOMAXPROCS, restoring the old value.
func withGOMAXPROCS(n int, f func()) {
	old := runtime.GOMAXPROCS(n)
	defer runtime.GOMAXPROCS(old)
	f()
}

// eachProcs runs f at GOMAXPROCS=1 and at GOMAXPROCS=max(4, NumCPU) so both
// the serial and parallel engine paths are exercised regardless of host.
func eachProcs(f func()) {
	withGOMAXPROCS(1, f)
	n := runtime.NumCPU()
	if n < 4 {
		n = 4
	}
	withGOMAXPROCS(n, f)
}

// TestGEMMPathsEquivalence drives all three GEMM kernels (ikj, blocked
// packed, k-split) directly over random shapes, including non-multiples of
// the tile sizes, and compares against the reference.
func TestGEMMPathsEquivalence(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	prop := func(seed int64) bool {
		rr := rand.New(rand.NewSource(seed))
		m := 1 + rr.Intn(90)
		k := 1 + rr.Intn(90)
		n := 1 + rr.Intn(90)
		a := randMat(rr, m, k, 0.2)
		b := randMat(rr, k, n, 0.2)
		want := refMatMul(a, b)
		tol := tolFor(k) * 100

		blocked := NewDense(m, n)
		gemmBlocked(a, b, blocked)
		if !blocked.Equal(want, tol) {
			t.Logf("blocked mismatch at m=%d k=%d n=%d", m, k, n)
			return false
		}
		ksplit := NewDense(m, n)
		gemmKSplit(a, b, ksplit)
		if !ksplit.Equal(want, tol) {
			t.Logf("k-split mismatch at m=%d k=%d n=%d", m, k, n)
			return false
		}
		ikj := NewDense(m, n)
		gemmRows(a, b, ikj, 0, m)
		if !ikj.Equal(want, tol) {
			t.Logf("ikj mismatch at m=%d k=%d n=%d", m, k, n)
			return false
		}
		return true
	}
	eachProcs(func() {
		if err := quick.Check(prop, &quick.Config{MaxCount: 25, Rand: r}); err != nil {
			t.Error(err)
		}
	})
}

// TestMatMulDispatchEquivalence exercises MatMul's own dispatch at shapes
// that land on each path: tiny (serial ikj), skinny XᵀX-like (k-split), and
// large dense (blocked).
func TestMatMulDispatchEquivalence(t *testing.T) {
	shapes := []struct{ m, k, n int }{
		{3, 4, 5},       // tiny: serial ikj
		{9, 4000, 11},   // skinny, long k: k-split
		{150, 150, 150}, // large: blocked
		{130, 70, 200},  // large, non-square, edge tiles
		{1, 1, 1},
		{5, 1, 5},
	}
	r := rand.New(rand.NewSource(12))
	for _, s := range shapes {
		a := randMat(r, s.m, s.k, 0.3)
		b := randMat(r, s.k, s.n, 0.0)
		want := refMatMul(a, b)
		eachProcs(func() {
			got := MatMul(a, b)
			if !got.Equal(want, tolFor(s.k)*100) {
				t.Errorf("MatMul mismatch at %dx%dx%d", s.m, s.k, s.n)
			}
		})
	}
}

// TestMatMulSparseStaysExact: the ikj path skips zeros, so a fully sparse row
// must produce exactly zero output (no packing-path roundoff surprises).
func TestMatMulSparseStaysExact(t *testing.T) {
	r := rand.New(rand.NewSource(13))
	a := randMat(r, 40, 40, 0.9)
	b := randMat(r, 40, 40, 0.0)
	want := refMatMul(a, b)
	if got := MatMul(a, b); !got.Equal(want, 1e-9) {
		t.Fatal("sparse MatMul mismatch")
	}
}

// TestMatVecVecMatGramEquivalence: pooled kernels against serial references
// under both GOMAXPROCS regimes, with the parallel threshold lowered so even
// small inputs take the pool path.
func TestMatVecVecMatGramEquivalence(t *testing.T) {
	oldThresh := parallelThreshold
	parallelThreshold = 1
	defer func() { parallelThreshold = oldThresh }()

	r := rand.New(rand.NewSource(14))
	prop := func(seed int64) bool {
		rr := rand.New(rand.NewSource(seed))
		rows := 1 + rr.Intn(200)
		cols := 1 + rr.Intn(80)
		m := randMat(rr, rows, cols, 0.3)
		x := make([]float64, rows)
		v := make([]float64, cols)
		for i := range x {
			x[i] = rr.NormFloat64()
		}
		for i := range v {
			v[i] = rr.NormFloat64()
		}

		// Serial references.
		mv := make([]float64, rows)
		for i := 0; i < rows; i++ {
			var s float64
			for j := 0; j < cols; j++ {
				s += m.data[i*cols+j] * v[j]
			}
			mv[i] = s
		}
		vm := make([]float64, cols)
		for i := 0; i < rows; i++ {
			for j := 0; j < cols; j++ {
				vm[j] += x[i] * m.data[i*cols+j]
			}
		}
		gram := refMatMul(m.T(), m)

		tol := tolFor(rows) * 10
		gotMV := MatVec(m, v)
		for i := range mv {
			if d := gotMV[i] - mv[i]; d > tol || d < -tol {
				t.Logf("MatVec[%d] off by %g at %dx%d", i, d, rows, cols)
				return false
			}
		}
		gotVM := VecMat(x, m)
		for j := range vm {
			if d := gotVM[j] - vm[j]; d > tol || d < -tol {
				t.Logf("VecMat[%d] off by %g at %dx%d", j, d, rows, cols)
				return false
			}
		}
		if got := Gram(m); !got.Equal(gram, tol) {
			t.Logf("Gram mismatch at %dx%d", rows, cols)
			return false
		}
		return true
	}
	eachProcs(func() {
		if err := quick.Check(prop, &quick.Config{MaxCount: 20, Rand: r}); err != nil {
			t.Error(err)
		}
	})
}

// TestGramTiledWide forces the tiled path (cols > gramTile) at both proc
// counts.
func TestGramTiledWide(t *testing.T) {
	r := rand.New(rand.NewSource(15))
	m := randMat(r, 300, gramTile*2+17, 0.2)
	want := refMatMul(m.T(), m)
	eachProcs(func() {
		if got := Gram(m); !got.Equal(want, tolFor(300)*10) {
			t.Error("tiled Gram mismatch")
		}
	})
}

// TestCSRIntoEquivalence: CSR Into-variants match the dense kernels.
func TestCSRIntoEquivalence(t *testing.T) {
	r := rand.New(rand.NewSource(16))
	dn := randMat(r, 120, 40, 0.8)
	sp := CSRFromDense(dn)
	x := make([]float64, 120)
	v := make([]float64, 40)
	for i := range x {
		x[i] = r.NormFloat64()
	}
	for i := range v {
		v[i] = r.NormFloat64()
	}
	eachProcs(func() {
		mv := sp.MatVecInto(make([]float64, 120), v)
		want := MatVec(dn, v)
		for i := range mv {
			if d := mv[i] - want[i]; d > 1e-9 || d < -1e-9 {
				t.Fatalf("CSR MatVecInto[%d] off by %g", i, d)
			}
		}
		vm := sp.VecMatInto(make([]float64, 40), x)
		wantVM := VecMat(x, dn)
		for j := range vm {
			if d := vm[j] - wantVM[j]; d > 1e-9 || d < -1e-9 {
				t.Fatalf("CSR VecMatInto[%d] off by %g", j, d)
			}
		}
	})
}

// TestTransposeParallel: the pool-parallel blocked transpose is exact.
func TestTransposeParallel(t *testing.T) {
	oldThresh := parallelThreshold
	parallelThreshold = 1
	defer func() { parallelThreshold = oldThresh }()
	r := rand.New(rand.NewSource(17))
	m := randMat(r, 257, 129, 0)
	eachProcs(func() {
		tr := m.T()
		for i := 0; i < m.rows; i++ {
			for j := 0; j < m.cols; j++ {
				if tr.At(j, i) != m.At(i, j) {
					t.Fatalf("T mismatch at (%d,%d)", i, j)
				}
			}
		}
	})
}

// TestIntoVariantsZeroAllocSteadyState is the satellite regression: VecMat
// and Gram used to allocate fresh per-chunk partials on every call; the Into
// variants with scratch-pooled partials must reach a zero-allocation steady
// state (measured serially — parallel runs borrow from the scratch pool,
// which is warmed by the first call).
func TestIntoVariantsZeroAllocSteadyState(t *testing.T) {
	withGOMAXPROCS(1, func() {
		r := rand.New(rand.NewSource(18))
		m := randMat(r, 500, 60, 0.1) // 30k elements: above parallelThreshold
		x := make([]float64, 500)
		v := make([]float64, 60)
		for i := range x {
			x[i] = r.NormFloat64()
		}
		for i := range v {
			v[i] = r.NormFloat64()
		}
		mvDst := make([]float64, 500)
		vmDst := make([]float64, 60)
		gramDst := NewDense(60, 60)

		if a := testing.AllocsPerRun(50, func() { MatVecInto(mvDst, m, v) }); a != 0 {
			t.Errorf("MatVecInto allocates %v per run, want 0", a)
		}
		if a := testing.AllocsPerRun(50, func() { VecMatInto(vmDst, x, m) }); a != 0 {
			t.Errorf("VecMatInto allocates %v per run, want 0", a)
		}
		if a := testing.AllocsPerRun(50, func() { GramInto(gramDst, m) }); a != 0 {
			t.Errorf("GramInto allocates %v per run, want 0", a)
		}
	})
}
