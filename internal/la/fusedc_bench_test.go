package la

// BenchmarkFusedDispatch: the interpreter dispatch tax, measured. One
// fixed workload — the E15 6-op sigmoid chain sigmoid(x*2+1)*x - x/3 over
// 200000×20 — evaluated by the tile interpreter, the compiled closure
// tree, the flat template kernel, and a hand-written loop, all single-core
// (pool forced serial via size-1 tiles staying under the parallel
// threshold is not enough at this size, so GOMAXPROCS pins the comparison
// instead). Run with -cpu=1:
//
//	go test -run '^$' -bench BenchmarkFusedDispatch -cpu=1 ./internal/la

import (
	"math/rand"
	"testing"
)

func fusedDispatchSetup(b *testing.B) (*FuseProgram, []FusedInput, *Dense) {
	b.Helper()
	r := rand.New(rand.NewSource(15000))
	rows, cols := 200000, 20
	x := randMat(r, rows, cols, 0)
	p, err := CompileFused([]FusedOp{
		{Code: FuseLoad, Arg: 0}, {Code: FuseConst, Val: 2}, {Code: FuseMul},
		{Code: FuseConst, Val: 1}, {Code: FuseAdd}, {Code: FuseSigmoid},
		{Code: FuseLoad, Arg: 0}, {Code: FuseMul},
		{Code: FuseLoad, Arg: 0}, {Code: FuseConst, Val: 3}, {Code: FuseDiv},
		{Code: FuseSub},
	}, 1)
	if err != nil {
		b.Fatal(err)
	}
	return p, []FusedInput{DenseInput(x)}, NewDense(rows, cols)
}

func BenchmarkFusedDispatchInterp(b *testing.B) {
	p, ins, out := fusedDispatchSetup(b)
	p.SetBackend(FuseBackendInterp)
	defer p.SetBackend(FuseBackendCompiled)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		FusedCellInto(out, p, ins)
	}
}

// Compiled closure tree, flat template suppressed: isolates the win from
// killing per-op dispatch alone.
func BenchmarkFusedDispatchClosures(b *testing.B) {
	p, ins, out := fusedDispatchSetup(b)
	k := p.kernelFor(ins)
	if k == nil || k.flatCell == nil {
		b.Fatal("expected a flat-compiled kernel to strip")
	}
	stripped := *k
	stripped.flatCell = nil
	stripped.flat = ""
	sig, _ := fuseKindSig(ins)
	m := map[uint64]*fusedKernel{sig: &stripped}
	p.kernels.Store(&m)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		FusedCellInto(out, p, ins)
	}
}

// The full compiled path as dispatched in production: flat template.
func BenchmarkFusedDispatchCompiled(b *testing.B) {
	p, ins, out := fusedDispatchSetup(b)
	if _, flat := p.CompileFusedKernel(ins); flat != "cell.sigchain" {
		b.Fatalf("flat = %q, want cell.sigchain", flat)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		FusedCellInto(out, p, ins)
	}
}

// The roofline: a hand-written loop with the tile-vectorized sigmoid.
func BenchmarkFusedDispatchHandWritten(b *testing.B) {
	_, ins, out := fusedDispatchSetup(b)
	x := ins[0].D.data
	scr := make([]float64, fusedTileW)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		flatSigChain(out.data, scr, x, 2, 1, 3)
	}
}

// The pre-vectorization roofline: hand-written loop, scalar math.Exp — what
// "hand-written" meant before the backend existed.
func BenchmarkFusedDispatchHandScalarExp(b *testing.B) {
	_, ins, out := fusedDispatchSetup(b)
	x := ins[0].D.data
	dst := out.data
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := range dst {
			m := x[j]*2 + 1
			dst[j] = fuseSigmoid(m)*x[j] - x[j]/3
		}
	}
}
