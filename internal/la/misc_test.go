package la

import (
	"math"
	"math/rand"
	"strings"
	"testing"
)

func TestAccessorsAndMutators(t *testing.T) {
	m := NewDense(3, 2)
	if m.Rows() != 3 || m.Cols() != 2 {
		t.Fatalf("Rows/Cols = %d/%d", m.Rows(), m.Cols())
	}
	m.Fill(2)
	if m.Sum() != 12 {
		t.Fatalf("Fill sum = %v", m.Sum())
	}
	m.Zero()
	if m.Sum() != 0 {
		t.Fatalf("Zero sum = %v", m.Sum())
	}
	m.SetRow(1, []float64{5, 7})
	if m.At(1, 0) != 5 || m.At(1, 1) != 7 {
		t.Fatal("SetRow failed")
	}
	raw := m.RawData()
	raw[0] = 9
	if m.At(0, 0) != 9 {
		t.Fatal("RawData does not alias storage")
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("want SetRow length panic")
			}
		}()
		m.SetRow(0, []float64{1})
	}()
}

func TestNormsAndString(t *testing.T) {
	m, _ := FromRows([][]float64{{3, -4}, {0, 0}})
	if m.FrobNorm() != 5 {
		t.Fatalf("FrobNorm = %v", m.FrobNorm())
	}
	if m.MaxAbs() != 4 {
		t.Fatalf("MaxAbs = %v", m.MaxAbs())
	}
	// Small matrices render fully; large ones summarize.
	if s := m.String(); !strings.Contains(s, "3") || !strings.Contains(s, "-4") {
		t.Fatalf("String = %s", s)
	}
	big := NewDense(20, 20)
	if s := big.String(); !strings.Contains(s, "20x20") {
		t.Fatalf("big String = %s", s)
	}
	sp := CSRFromDense(m)
	if s := sp.String(); !strings.Contains(s, "nnz=2") {
		t.Fatalf("CSR String = %s", s)
	}
	if r, c := sp.Dims(); r != 2 || c != 2 {
		t.Fatal("CSR Dims wrong")
	}
	if sp.Rows() != 2 || sp.Cols() != 2 {
		t.Fatal("CSR Rows/Cols wrong")
	}
	if got := sp.Sparsity(); math.Abs(got-0.5) > 1e-15 {
		t.Fatalf("CSR Sparsity = %v", got)
	}
}

func TestEqualShapes(t *testing.T) {
	a := NewDense(2, 2)
	b := NewDense(2, 3)
	if a.Equal(b, 1) {
		t.Fatal("different shapes must not be Equal")
	}
}

func TestNewDensePanicsOnBadDims(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("want panic")
		}
	}()
	NewDense(0, 1)
}

// Force the sequential fallback paths of the parallel kernels under
// GOMAXPROCS=1-style small work.
func TestSmallKernels(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	a := randDense(r, 2, 2)
	b := randDense(r, 2, 2)
	if !MatMul(a, b).Equal(naiveMatMul(a, b), 1e-12) {
		t.Fatal("small MatMul mismatch")
	}
	g := Gram(a)
	if !g.Equal(MatMul(a.T(), a), 1e-12) {
		t.Fatal("small Gram mismatch")
	}
}
