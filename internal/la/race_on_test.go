//go:build race

package la

// raceEnabled lets timing pins skip under the race detector, whose
// instrumentation distorts relative kernel costs.
const raceEnabled = true
