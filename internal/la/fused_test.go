package la

// Fused-pipeline properties: the tile-interpreted Cell and RowAgg templates
// must agree with a naive op-by-op materializing reference, at GOMAXPROCS=1
// and N, serial and forced-parallel, over dense, scalar, and CSR inputs —
// and the Into variants must hold the engine's zero-allocation contract.

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"dmml/internal/pool"
)

// refFused evaluates a fused program the way the unfused evaluator would:
// one fully materialized rows·cols buffer per operation.
func refFused(p *FuseProgram, ins []FusedInput, rows, cols int) []float64 {
	n := rows * cols
	type slot struct {
		vec []float64
		s   float64
		isS bool
	}
	var stack []slot
	for _, op := range p.ops {
		switch op.Code {
		case FuseConst:
			stack = append(stack, slot{s: op.Val, isS: true})
		case FuseLoad:
			in := ins[op.Arg]
			switch {
			case in.IsScalar:
				stack = append(stack, slot{s: in.S, isS: true})
			case in.D != nil:
				stack = append(stack, slot{vec: append([]float64(nil), in.D.data...)})
			default:
				stack = append(stack, slot{vec: append([]float64(nil), in.C.ToDense().data...)})
			}
		case FuseAdd, FuseSub, FuseMul, FuseDiv, FusePow:
			b := stack[len(stack)-1]
			a := stack[len(stack)-2]
			stack = stack[:len(stack)-2]
			if a.isS && b.isS {
				stack = append(stack, slot{s: fuseScalarBin(op.Code, a.s, b.s), isS: true})
				continue
			}
			out := make([]float64, n)
			for i := range out {
				av, bv := a.s, b.s
				if !a.isS {
					av = a.vec[i]
				}
				if !b.isS {
					bv = b.vec[i]
				}
				out[i] = fuseScalarBin(op.Code, av, bv)
			}
			stack = append(stack, slot{vec: out})
		default:
			a := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			if a.isS {
				stack = append(stack, slot{s: fuseScalarUn(op.Code, a.s), isS: true})
				continue
			}
			out := make([]float64, n)
			for i := range out {
				out[i] = fuseScalarUn(op.Code, a.vec[i])
			}
			stack = append(stack, slot{vec: out})
		}
	}
	res := stack[0]
	if res.isS {
		out := make([]float64, n)
		for i := range out {
			out[i] = res.s
		}
		return out
	}
	return res.vec
}

// genFusedCase builds a random valid program plus matching random inputs:
// dense, CSR-sparse, and scalar operands in random positions.
func genFusedCase(rr *rand.Rand, rows, cols int) (*FuseProgram, []FusedInput) {
	nin := 1 + rr.Intn(4)
	ins := make([]FusedInput, nin)
	for i := range ins {
		switch rr.Intn(4) {
		case 0:
			ins[i] = ScalarInput(rr.NormFloat64())
		case 1:
			ins[i] = CSRInput(CSRFromDense(randMat(rr, rows, cols, 0.8)))
		default:
			ins[i] = DenseInput(randMat(rr, rows, cols, 0.3))
		}
	}
	// Random postfix program with tracked depth: a leaf when shallow,
	// otherwise a mix of leaves, unary ops, and binary folds.
	var ops []FusedOp
	depth := 0
	// Safe unary ops only: exp/log/sqrt on arbitrary reals produce
	// NaN/Inf, which compare fine but make tolerances meaningless.
	unary := []FuseOpCode{FuseNeg, FuseSq, FuseAbs, FuseSigmoid}
	binary := []FuseOpCode{FuseAdd, FuseSub, FuseMul}
	leaf := func() {
		if rr.Intn(5) == 0 {
			ops = append(ops, FusedOp{Code: FuseConst, Val: rr.NormFloat64()})
		} else {
			ops = append(ops, FusedOp{Code: FuseLoad, Arg: rr.Intn(nin)})
		}
		depth++
	}
	leaf()
	steps := 2 + rr.Intn(10)
	for s := 0; s < steps; s++ {
		switch {
		case depth >= 2 && rr.Intn(2) == 0:
			ops = append(ops, FusedOp{Code: binary[rr.Intn(len(binary))]})
			depth--
		case rr.Intn(3) == 0:
			ops = append(ops, FusedOp{Code: unary[rr.Intn(len(unary))]})
		case depth < fuseMaxDepth-1:
			leaf()
		}
	}
	for depth > 1 {
		ops = append(ops, FusedOp{Code: binary[rr.Intn(len(binary))]})
		depth--
	}
	p, err := CompileFused(ops, nin)
	if err != nil {
		panic(err)
	}
	return p, ins
}

func closeSlices(a, b []float64, tol float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Abs(a[i]-b[i]) > tol {
			return false
		}
	}
	return true
}

// TestFusedCellEquivalence: the tiled stack machine against the
// materializing reference over random programs and input mixes, on both the
// serial path and the forced-parallel pool path.
func TestFusedCellEquivalence(t *testing.T) {
	oldThresh := parallelThreshold
	parallelThreshold = 1
	defer func() { parallelThreshold = oldThresh }()

	r := rand.New(rand.NewSource(21))
	prop := func(seed int64) bool {
		rr := rand.New(rand.NewSource(seed))
		rows := 1 + rr.Intn(40)
		cols := 1 + rr.Intn(40)
		p, ins := genFusedCase(rr, rows, cols)
		want := refFused(p, ins, rows, cols)
		got := FusedCell(p, ins, rows, cols)
		if !closeSlices(got.data, want, 1e-12*float64(p.arith+1)) {
			t.Logf("cell mismatch at %dx%d, %d ops", rows, cols, len(p.ops))
			return false
		}
		return true
	}
	eachProcs(func() {
		if err := quick.Check(prop, &quick.Config{MaxCount: 40, Rand: r}); err != nil {
			t.Error(err)
		}
	})
}

// TestFusedAggEquivalence: every RowAgg reduction (sum, rowSums, colSums,
// matrix-vector) against reductions of the materialized reference.
func TestFusedAggEquivalence(t *testing.T) {
	oldThresh := parallelThreshold
	parallelThreshold = 1
	defer func() { parallelThreshold = oldThresh }()

	r := rand.New(rand.NewSource(22))
	prop := func(seed int64) bool {
		rr := rand.New(rand.NewSource(seed))
		rows := 1 + rr.Intn(40)
		cols := 1 + rr.Intn(40)
		p, ins := genFusedCase(rr, rows, cols)
		ref := refFused(p, ins, rows, cols)
		tol := tolFor(rows*cols) * float64(p.arith+1)

		var wantSum float64
		for _, v := range ref {
			wantSum += v
		}
		if got := FusedSum(p, ins, rows, cols); math.Abs(got-wantSum) > tol {
			t.Logf("sum mismatch at %dx%d: %g vs %g", rows, cols, got, wantSum)
			return false
		}

		wantRow := make([]float64, rows)
		wantCol := make([]float64, cols)
		for i := 0; i < rows; i++ {
			for j := 0; j < cols; j++ {
				wantRow[i] += ref[i*cols+j]
				wantCol[j] += ref[i*cols+j]
			}
		}
		if got := FusedRowSumsInto(make([]float64, rows), p, ins, rows, cols); !closeSlices(got, wantRow, tol) {
			t.Logf("rowSums mismatch at %dx%d", rows, cols)
			return false
		}
		if got := FusedColSumsInto(make([]float64, cols), p, ins, rows, cols); !closeSlices(got, wantCol, tol) {
			t.Logf("colSums mismatch at %dx%d", rows, cols)
			return false
		}

		v := make([]float64, cols)
		for j := range v {
			v[j] = rr.NormFloat64()
		}
		wantMV := make([]float64, rows)
		for i := 0; i < rows; i++ {
			for j := 0; j < cols; j++ {
				wantMV[i] += ref[i*cols+j] * v[j]
			}
		}
		if got := FusedMatVecInto(make([]float64, rows), p, ins, rows, cols, v); !closeSlices(got, wantMV, tol*10) {
			t.Logf("matvec mismatch at %dx%d", rows, cols)
			return false
		}
		return true
	}
	eachProcs(func() {
		if err := quick.Check(prop, &quick.Config{MaxCount: 40, Rand: r}); err != nil {
			t.Error(err)
		}
	})
}

// TestFusedWideRows drives the cols > fusedTileW column-chunking path.
func TestFusedWideRows(t *testing.T) {
	r := rand.New(rand.NewSource(23))
	rows, cols := 3, fusedTileW*2+37
	x := randMat(r, rows, cols, 0.5)
	// (x * 2) + 1
	p, err := CompileFused([]FusedOp{
		{Code: FuseLoad, Arg: 0},
		{Code: FuseConst, Val: 2},
		{Code: FuseMul},
		{Code: FuseConst, Val: 1},
		{Code: FuseAdd},
	}, 1)
	if err != nil {
		t.Fatal(err)
	}
	ins := []FusedInput{DenseInput(x)}
	ref := refFused(p, ins, rows, cols)
	tol := tolFor(cols)
	if got := FusedCell(p, ins, rows, cols); !closeSlices(got.data, ref, 1e-12) {
		t.Error("wide cell mismatch")
	}
	wantRow := make([]float64, rows)
	for i := 0; i < rows; i++ {
		for j := 0; j < cols; j++ {
			wantRow[i] += ref[i*cols+j]
		}
	}
	if got := FusedRowSumsInto(make([]float64, rows), p, ins, rows, cols); !closeSlices(got, wantRow, tol) {
		t.Error("wide rowSums mismatch")
	}
	wantCol := make([]float64, cols)
	for i := 0; i < rows; i++ {
		for j := 0; j < cols; j++ {
			wantCol[j] += ref[i*cols+j]
		}
	}
	if got := FusedColSumsInto(make([]float64, cols), p, ins, rows, cols); !closeSlices(got, wantCol, tol) {
		t.Error("wide colSums mismatch")
	}
}

// TestFusedSparseFastPath: a zero-annihilating program over a single CSR
// input must take the nnz-only path and still match the dense reference; a
// non-annihilating program (x+1 maps zeros to 1) must not.
func TestFusedSparseFastPath(t *testing.T) {
	r := rand.New(rand.NewSource(24))
	d := randMat(r, 60, 50, 0.9)
	c := CSRFromDense(d)

	// sum((3*x)^2) annihilates zeros.
	sq, err := CompileFused([]FusedOp{
		{Code: FuseConst, Val: 3},
		{Code: FuseLoad, Arg: 0},
		{Code: FuseMul},
		{Code: FuseSq},
	}, 1)
	if err != nil {
		t.Fatal(err)
	}
	ins := []FusedInput{CSRInput(c)}
	if idx, ok := zeroAnnihilatingCSR(sq, ins); !ok || idx != 0 {
		t.Fatalf("zeroAnnihilatingCSR((3x)^2) = %d,%v, want 0,true", idx, ok)
	}
	var want float64
	for _, v := range d.data {
		want += (3 * v) * (3 * v)
	}
	if got := FusedSum(sq, ins, 60, 50); math.Abs(got-want) > tolFor(60*50) {
		t.Errorf("sparse FusedSum = %g, want %g", got, want)
	}

	// x+1 does not annihilate zeros: the fast path must be rejected.
	add1, err := CompileFused([]FusedOp{
		{Code: FuseLoad, Arg: 0},
		{Code: FuseConst, Val: 1},
		{Code: FuseAdd},
	}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := zeroAnnihilatingCSR(add1, ins); ok {
		t.Error("zeroAnnihilatingCSR(x+1) = true, want false")
	}
	if got, want := FusedSum(add1, ins, 60, 50), d.Sum()+60*50; math.Abs(got-want) > tolFor(60*50) {
		t.Errorf("dense-path FusedSum = %g, want %g", got, want)
	}

	// Two matrix inputs: no single-sparse fast path even if annihilating.
	mul2, err := CompileFused([]FusedOp{
		{Code: FuseLoad, Arg: 0},
		{Code: FuseLoad, Arg: 1},
		{Code: FuseMul},
	}, 2)
	if err != nil {
		t.Fatal(err)
	}
	two := []FusedInput{CSRInput(c), CSRInput(c)}
	if _, ok := zeroAnnihilatingCSR(mul2, two); ok {
		t.Error("zeroAnnihilatingCSR with two matrix inputs = true, want false")
	}
}

// TestCompileFusedRejects: malformed programs fail compilation instead of
// corrupting the interpreter stack.
func TestCompileFusedRejects(t *testing.T) {
	cases := []struct {
		name string
		ops  []FusedOp
		nin  int
	}{
		{"empty", nil, 0},
		{"underflow-binary", []FusedOp{{Code: FuseLoad}, {Code: FuseAdd}}, 1},
		{"underflow-unary", []FusedOp{{Code: FuseNeg}}, 0},
		{"leftover", []FusedOp{{Code: FuseLoad}, {Code: FuseLoad}}, 1},
		{"bad-input", []FusedOp{{Code: FuseLoad, Arg: 2}}, 1},
		{"bad-opcode", []FusedOp{{Code: 250}}, 0},
	}
	for _, tc := range cases {
		if _, err := CompileFused(tc.ops, tc.nin); err == nil {
			t.Errorf("CompileFused(%s) succeeded, want error", tc.name)
		}
	}
	deep := make([]FusedOp, 0, fuseMaxDepth+2)
	for i := 0; i < fuseMaxDepth+1; i++ {
		deep = append(deep, FusedOp{Code: FuseConst, Val: 1})
	}
	for i := 0; i < fuseMaxDepth; i++ {
		deep = append(deep, FusedOp{Code: FuseAdd})
	}
	if _, err := CompileFused(deep, 0); err == nil {
		t.Error("CompileFused(too deep) succeeded, want error")
	}
}

// TestFusedZeroAllocSteadyState pins the scratch-reuse contract: after
// warmup, fused Cell-into and RowAgg calls allocate nothing in the serial
// regime — the whole point of running a GD loop fused.
func TestFusedZeroAllocSteadyState(t *testing.T) {
	withGOMAXPROCS(1, func() {
		r := rand.New(rand.NewSource(25))
		rows, cols := 500, 60
		x := randMat(r, rows, cols, 0)
		y := randMat(r, rows, cols, 0)
		out := NewDense(rows, cols)
		v := make([]float64, cols)
		rowDst := make([]float64, rows)
		colDst := make([]float64, cols)
		for j := range v {
			v[j] = r.NormFloat64()
		}
		// (x - y) * 0.5 fused cell; sum((x-y)^2) and (x-y)·v row aggregates.
		cell, err := CompileFused([]FusedOp{
			{Code: FuseLoad, Arg: 0},
			{Code: FuseLoad, Arg: 1},
			{Code: FuseSub},
			{Code: FuseConst, Val: 0.5},
			{Code: FuseMul},
		}, 2)
		if err != nil {
			t.Fatal(err)
		}
		agg, err := CompileFused([]FusedOp{
			{Code: FuseLoad, Arg: 0},
			{Code: FuseLoad, Arg: 1},
			{Code: FuseSub},
			{Code: FuseSq},
		}, 2)
		if err != nil {
			t.Fatal(err)
		}
		ins := []FusedInput{DenseInput(x), DenseInput(y)}
		if a := testing.AllocsPerRun(50, func() { FusedCellInto(out, cell, ins) }); a != 0 {
			t.Errorf("FusedCellInto allocates %v per run, want 0", a)
		}
		if a := testing.AllocsPerRun(50, func() { FusedSum(agg, ins, rows, cols) }); a != 0 {
			t.Errorf("FusedSum allocates %v per run, want 0", a)
		}
		if a := testing.AllocsPerRun(50, func() { FusedRowSumsInto(rowDst, agg, ins, rows, cols) }); a != 0 {
			t.Errorf("FusedRowSumsInto allocates %v per run, want 0", a)
		}
		if a := testing.AllocsPerRun(50, func() { FusedColSumsInto(colDst, agg, ins, rows, cols) }); a != 0 {
			t.Errorf("FusedColSumsInto allocates %v per run, want 0", a)
		}
		if a := testing.AllocsPerRun(50, func() { FusedMatVecInto(rowDst, cell, ins, rows, cols, v) }); a != 0 {
			t.Errorf("FusedMatVecInto allocates %v per run, want 0", a)
		}

		// A complete fused GD iteration — residual r = Xw - y via the matvec
		// template, gradient g = Xᵀr via the scratch XtYInto path, update
		// w -= lr·g — holds the zero-alloc pin end to end.
		w := make([]float64, cols)
		grad := make([]float64, cols)
		resid := make([]float64, rows)
		yv := make([]float64, rows)
		for i := range yv {
			yv[i] = r.NormFloat64()
		}
		ident, err := CompileFused([]FusedOp{{Code: FuseLoad, Arg: 0}, {Code: FuseConst, Val: 1}, {Code: FuseMul}}, 1)
		if err != nil {
			t.Fatal(err)
		}
		xIn := []FusedInput{DenseInput(x)}
		gdStep := func() {
			FusedMatVecInto(resid, ident, xIn, rows, cols, w)
			for i := range resid {
				resid[i] -= yv[i]
			}
			XtYInto(grad, x, resid)
			for j := range w {
				w[j] -= 1e-4 * grad[j]
			}
		}
		if a := testing.AllocsPerRun(50, gdStep); a != 0 {
			t.Errorf("fused GD step allocates %v per run, want 0", a)
		}
	})
}

// TestXtYIntoEquivalence: the new scratch-path XtYInto agrees with XtY and
// allocates nothing in the serial regime.
func TestXtYIntoEquivalence(t *testing.T) {
	r := rand.New(rand.NewSource(26))
	x := randMat(r, 300, 40, 0.2)
	y := make([]float64, 300)
	for i := range y {
		y[i] = r.NormFloat64()
	}
	want := XtY(x, y)
	dst := make([]float64, 40)
	eachProcs(func() {
		if got := XtYInto(dst, x, y); !closeSlices(got, want, tolFor(300)) {
			t.Error("XtYInto mismatch vs XtY")
		}
	})
	withGOMAXPROCS(1, func() {
		if a := testing.AllocsPerRun(50, func() { XtYInto(dst, x, y) }); a != 0 {
			t.Errorf("XtYInto allocates %v per run, want 0", a)
		}
	})
}

// TestFusedParallelRace hammers the pool path from the race detector's
// perspective: forced-parallel fused kernels over shared inputs. Run with
// -race via `make race` (internal/la is in RACE_PKGS).
func TestFusedParallelRace(t *testing.T) {
	oldThresh := parallelThreshold
	parallelThreshold = 1
	defer func() { parallelThreshold = oldThresh }()
	r := rand.New(rand.NewSource(27))
	rows, cols := 200, 30
	x := randMat(r, rows, cols, 0.3)
	c := CSRFromDense(randMat(r, rows, cols, 0.8))
	p, err := CompileFused([]FusedOp{
		{Code: FuseLoad, Arg: 0},
		{Code: FuseLoad, Arg: 1},
		{Code: FuseAdd},
		{Code: FuseSq},
	}, 2)
	if err != nil {
		t.Fatal(err)
	}
	ins := []FusedInput{DenseInput(x), CSRInput(c)}
	_ = pool.Workers() // warm the pool before the racing section
	for i := 0; i < 4; i++ {
		FusedCell(p, ins, rows, cols)
		FusedSum(p, ins, rows, cols)
		FusedRowSumsInto(make([]float64, rows), p, ins, rows, cols)
		FusedColSumsInto(make([]float64, cols), p, ins, rows, cols)
	}
}
