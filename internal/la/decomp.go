package la

import (
	"errors"
	"fmt"
	"math"
)

// ErrNotPositiveDefinite is returned by Cholesky when the input matrix is
// not (numerically) symmetric positive definite.
var ErrNotPositiveDefinite = errors.New("la: matrix is not positive definite")

// ErrSingular is returned by solvers when the system is singular to working
// precision.
var ErrSingular = errors.New("la: matrix is singular")

// Cholesky computes the lower-triangular factor L with A = L·Lᵀ for a
// symmetric positive-definite matrix A. A is not modified.
func Cholesky(a *Dense) (*Dense, error) {
	if a.rows != a.cols {
		return nil, fmt.Errorf("la: Cholesky of non-square %dx%d", a.rows, a.cols)
	}
	n := a.rows
	l := NewDense(n, n)
	for j := 0; j < n; j++ {
		d := a.At(j, j)
		lrowj := l.RowView(j)
		for k := 0; k < j; k++ {
			d -= lrowj[k] * lrowj[k]
		}
		if d <= 0 || math.IsNaN(d) {
			return nil, ErrNotPositiveDefinite
		}
		ljj := math.Sqrt(d)
		lrowj[j] = ljj
		inv := 1 / ljj
		for i := j + 1; i < n; i++ {
			s := a.At(i, j)
			lrowi := l.RowView(i)
			for k := 0; k < j; k++ {
				s -= lrowi[k] * lrowj[k]
			}
			lrowi[j] = s * inv
		}
	}
	return l, nil
}

// SolveCholesky solves A·x = b given the Cholesky factor L of A, via forward
// then backward substitution.
func SolveCholesky(l *Dense, b []float64) ([]float64, error) {
	n := l.rows
	if len(b) != n {
		return nil, fmt.Errorf("la: SolveCholesky rhs length %d, want %d", len(b), n)
	}
	// Forward: L·y = b
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		s := b[i]
		row := l.RowView(i)
		for k := 0; k < i; k++ {
			s -= row[k] * y[k]
		}
		if row[i] == 0 {
			return nil, ErrSingular
		}
		y[i] = s / row[i]
	}
	// Backward: Lᵀ·x = y
	x := make([]float64, n)
	for i := n - 1; i >= 0; i-- {
		s := y[i]
		for k := i + 1; k < n; k++ {
			s -= l.At(k, i) * x[k]
		}
		x[i] = s / l.At(i, i)
	}
	return x, nil
}

// SolveSPD solves A·x = b for symmetric positive-definite A.
func SolveSPD(a *Dense, b []float64) ([]float64, error) {
	l, err := Cholesky(a)
	if err != nil {
		return nil, err
	}
	return SolveCholesky(l, b)
}

// QR holds a Householder QR decomposition of an m×n matrix with m ≥ n.
// R is upper triangular n×n; Q is represented implicitly by the Householder
// vectors and can be applied to vectors.
type QR struct {
	qr   *Dense    // packed factors: R in upper triangle, v's below
	tau  []float64 // Householder coefficients
	m, n int
}

// QRDecompose computes the Householder QR factorization of a (m ≥ n required).
func QRDecompose(a *Dense) (*QR, error) {
	m, n := a.rows, a.cols
	if m < n {
		return nil, fmt.Errorf("la: QRDecompose requires rows >= cols, got %dx%d", m, n)
	}
	qr := a.Clone()
	tau := make([]float64, n)
	for k := 0; k < n; k++ {
		// Householder reflector for column k below the diagonal:
		// H = I − beta·u·uᵀ with u normalized so u[k] = 1; u[k+1:] is stored
		// in the subdiagonal of column k and beta in tau[k].
		var normSq float64
		for i := k; i < m; i++ {
			v := qr.At(i, k)
			normSq += v * v
		}
		norm := math.Sqrt(normSq)
		if norm == 0 {
			tau[k] = 0
			continue
		}
		x0 := qr.At(k, k)
		alpha := norm
		if x0 > 0 {
			alpha = -norm // avoid cancellation in v0 = x0 − alpha
		}
		v0 := x0 - alpha
		vTv := 2 * (normSq - alpha*x0)
		beta := 2 * v0 * v0 / vTv
		tau[k] = beta
		invV0 := 1 / v0
		for i := k + 1; i < m; i++ {
			qr.Set(i, k, qr.At(i, k)*invV0)
		}
		qr.Set(k, k, alpha)
		// Apply H to the remaining columns.
		for j := k + 1; j < n; j++ {
			s := qr.At(k, j)
			for i := k + 1; i < m; i++ {
				s += qr.At(i, k) * qr.At(i, j)
			}
			s *= beta
			qr.Set(k, j, qr.At(k, j)-s)
			for i := k + 1; i < m; i++ {
				qr.Set(i, j, qr.At(i, j)-s*qr.At(i, k))
			}
		}
	}
	return &QR{qr: qr, tau: tau, m: m, n: n}, nil
}

// R returns the upper-triangular factor as a dense n×n matrix.
func (q *QR) R() *Dense {
	r := NewDense(q.n, q.n)
	for i := 0; i < q.n; i++ {
		for j := i; j < q.n; j++ {
			r.Set(i, j, q.qr.At(i, j))
		}
	}
	return r
}

// QtVec applies Qᵀ to a length-m vector, returning the transformed vector.
func (q *QR) QtVec(b []float64) []float64 {
	if len(b) != q.m {
		panic(fmt.Sprintf("la: QtVec length %d, want %d", len(b), q.m))
	}
	y := CloneVec(b)
	for k := 0; k < q.n; k++ {
		if q.tau[k] == 0 {
			continue
		}
		s := y[k]
		for i := k + 1; i < q.m; i++ {
			s += q.qr.At(i, k) * y[i]
		}
		s *= q.tau[k]
		y[k] -= s
		for i := k + 1; i < q.m; i++ {
			y[i] -= s * q.qr.At(i, k)
		}
	}
	return y
}

// Solve finds the least-squares solution x minimizing ‖A·x − b‖₂.
func (q *QR) Solve(b []float64) ([]float64, error) {
	y := q.QtVec(b)
	x := make([]float64, q.n)
	for i := q.n - 1; i >= 0; i-- {
		s := y[i]
		for j := i + 1; j < q.n; j++ {
			s -= q.qr.At(i, j) * x[j]
		}
		d := q.qr.At(i, i)
		if math.Abs(d) < 1e-14 {
			return nil, ErrSingular
		}
		x[i] = s / d
	}
	return x, nil
}

// LstSq computes the least-squares solution of A·x = b via QR.
func LstSq(a *Dense, b []float64) ([]float64, error) {
	qr, err := QRDecompose(a)
	if err != nil {
		return nil, err
	}
	return qr.Solve(b)
}

// PowerIteration computes the dominant eigenvalue/eigenvector of a symmetric
// matrix using power iteration with the given starting vector (which must be
// non-zero). It returns after maxIter iterations or when the eigenvector
// rotation falls below tol.
func PowerIteration(a *Dense, start []float64, maxIter int, tol float64) (eigval float64, eigvec []float64, err error) {
	if a.rows != a.cols {
		return 0, nil, fmt.Errorf("la: PowerIteration on non-square %dx%d", a.rows, a.cols)
	}
	if len(start) != a.rows {
		return 0, nil, fmt.Errorf("la: PowerIteration start length %d, want %d", len(start), a.rows)
	}
	v := CloneVec(start)
	nrm := Norm2(v)
	if nrm == 0 {
		return 0, nil, errors.New("la: PowerIteration zero start vector")
	}
	ScaleVec(1/nrm, v)
	lambda := 0.0
	for it := 0; it < maxIter; it++ {
		w := MatVec(a, v)
		nw := Norm2(w)
		if nw == 0 {
			return 0, v, nil // a·v = 0: eigenvalue 0
		}
		ScaleVec(1/nw, w)
		newLambda := Dot(w, MatVec(a, w))
		diff := 1 - math.Abs(Dot(w, v))
		v = w
		lambda = newLambda
		if diff < tol {
			break
		}
	}
	return lambda, v, nil
}

// TopKEigen computes the k largest-magnitude eigenpairs of a symmetric matrix
// via power iteration with deflation. Start vectors are deterministic.
func TopKEigen(a *Dense, k, maxIter int, tol float64) (vals []float64, vecs *Dense, err error) {
	if a.rows != a.cols {
		return nil, nil, fmt.Errorf("la: TopKEigen on non-square %dx%d", a.rows, a.cols)
	}
	n := a.rows
	if k <= 0 || k > n {
		return nil, nil, fmt.Errorf("la: TopKEigen k=%d out of range for n=%d", k, n)
	}
	work := a.Clone()
	vals = make([]float64, 0, k)
	vecs = NewDense(n, k)
	for j := 0; j < k; j++ {
		start := make([]float64, n)
		for i := range start {
			// Deterministic pseudo-random start, varied per component.
			start[i] = math.Sin(float64(i+1) * float64(j+3) * 0.7391)
		}
		lam, v, perr := PowerIteration(work, start, maxIter, tol)
		if perr != nil {
			return nil, nil, perr
		}
		vals = append(vals, lam)
		for i := 0; i < n; i++ {
			vecs.Set(i, j, v[i])
		}
		// Deflate: work -= lam * v vᵀ
		OuterAdd(work, -lam, v, v)
	}
	return vals, vecs, nil
}

// Inverse returns the inverse of a square matrix via Gauss-Jordan with
// partial pivoting. Intended for small matrices (model dimensions), not
// data-sized ones.
func Inverse(a *Dense) (*Dense, error) {
	if a.rows != a.cols {
		return nil, fmt.Errorf("la: Inverse of non-square %dx%d", a.rows, a.cols)
	}
	n := a.rows
	aug := NewDense(n, 2*n)
	for i := 0; i < n; i++ {
		copy(aug.RowView(i)[:n], a.RowView(i))
		aug.Set(i, n+i, 1)
	}
	for col := 0; col < n; col++ {
		// Partial pivot.
		piv := col
		for r := col + 1; r < n; r++ {
			if math.Abs(aug.At(r, col)) > math.Abs(aug.At(piv, col)) {
				piv = r
			}
		}
		if math.Abs(aug.At(piv, col)) < 1e-14 {
			return nil, ErrSingular
		}
		if piv != col {
			pr, cr := aug.RowView(piv), aug.RowView(col)
			for j := range pr {
				pr[j], cr[j] = cr[j], pr[j]
			}
		}
		inv := 1 / aug.At(col, col)
		ScaleVec(inv, aug.RowView(col))
		for r := 0; r < n; r++ {
			if r == col {
				continue
			}
			f := aug.At(r, col)
			if f != 0 {
				Axpy(-f, aug.RowView(col), aug.RowView(r))
			}
		}
	}
	out := NewDense(n, n)
	for i := 0; i < n; i++ {
		copy(out.RowView(i), aug.RowView(i)[n:])
	}
	return out, nil
}
