package la

import (
	"fmt"
	"math"
	"sort"
)

// SVDResult holds a thin singular value decomposition A = U·diag(S)·Vᵀ with
// U m×n (orthonormal columns), S descending, V n×n orthogonal.
type SVDResult struct {
	U *Dense
	S []float64
	V *Dense
}

// SVD computes the thin singular value decomposition of an m×n matrix with
// m ≥ n via one-sided Jacobi rotations — accurate for the small-to-moderate
// n the model dimensions in this repository use.
func SVD(a *Dense, maxSweeps int, tol float64) (*SVDResult, error) {
	m, n := a.Dims()
	if m < n {
		return nil, fmt.Errorf("la: SVD requires rows >= cols, got %dx%d", m, n)
	}
	if maxSweeps <= 0 {
		maxSweeps = 30
	}
	if tol <= 0 {
		tol = 1e-12
	}
	u := a.Clone()
	v := Identity(n)

	// One-sided Jacobi: orthogonalize column pairs of U, accumulating the
	// rotations into V.
	for sweep := 0; sweep < maxSweeps; sweep++ {
		off := 0.0
		for p := 0; p < n-1; p++ {
			for q := p + 1; q < n; q++ {
				var alpha, beta, gamma float64
				for i := 0; i < m; i++ {
					up := u.At(i, p)
					uq := u.At(i, q)
					alpha += up * up
					beta += uq * uq
					gamma += up * uq
				}
				if math.Abs(gamma) <= tol*math.Sqrt(alpha*beta) {
					continue
				}
				off += gamma * gamma
				// Jacobi rotation zeroing the (p,q) inner product.
				zeta := (beta - alpha) / (2 * gamma)
				t := math.Copysign(1, zeta) / (math.Abs(zeta) + math.Sqrt(1+zeta*zeta))
				c := 1 / math.Sqrt(1+t*t)
				s := c * t
				for i := 0; i < m; i++ {
					up := u.At(i, p)
					uq := u.At(i, q)
					u.Set(i, p, c*up-s*uq)
					u.Set(i, q, s*up+c*uq)
				}
				for i := 0; i < n; i++ {
					vp := v.At(i, p)
					vq := v.At(i, q)
					v.Set(i, p, c*vp-s*vq)
					v.Set(i, q, s*vp+c*vq)
				}
			}
		}
		if off < tol {
			break
		}
	}

	// Singular values are the column norms of U; normalize columns.
	sv := make([]float64, n)
	for j := 0; j < n; j++ {
		col := u.Col(j)
		sv[j] = Norm2(col)
		if sv[j] > 0 {
			inv := 1 / sv[j]
			for i := 0; i < m; i++ {
				u.Set(i, j, u.At(i, j)*inv)
			}
		}
	}

	// Sort descending by singular value, permuting U and V columns.
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(i, j int) bool { return sv[order[i]] > sv[order[j]] })
	uSorted := NewDense(m, n)
	vSorted := NewDense(n, n)
	sSorted := make([]float64, n)
	for k, j := range order {
		sSorted[k] = sv[j]
		for i := 0; i < m; i++ {
			uSorted.Set(i, k, u.At(i, j))
		}
		for i := 0; i < n; i++ {
			vSorted.Set(i, k, v.At(i, j))
		}
	}
	return &SVDResult{U: uSorted, S: sSorted, V: vSorted}, nil
}

// Reconstruct returns U·diag(S)·Vᵀ (for verification and low-rank use).
func (r *SVDResult) Reconstruct(rank int) (*Dense, error) {
	n := len(r.S)
	if rank < 1 || rank > n {
		return nil, fmt.Errorf("la: rank %d out of range [1,%d]", rank, n)
	}
	m := r.U.Rows()
	us := NewDense(m, rank)
	for j := 0; j < rank; j++ {
		for i := 0; i < m; i++ {
			us.Set(i, j, r.U.At(i, j)*r.S[j])
		}
	}
	vt := r.V.Slice(0, r.V.Rows(), 0, rank).T()
	return MatMul(us, vt), nil
}

// Rank estimates the numerical rank at the given relative tolerance.
func (r *SVDResult) Rank(rel float64) int {
	if len(r.S) == 0 || r.S[0] == 0 {
		return 0
	}
	rank := 0
	for _, s := range r.S {
		if s > rel*r.S[0] {
			rank++
		}
	}
	return rank
}
