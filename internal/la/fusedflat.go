package la

import "math"

// Flat template kernels: the second tier of the compiled fusion backend.
// The closure tree already removes the interpreter's per-op dispatch, but a
// matched template goes further — one loop, no calls, no stack scratch.
// The matcher runs at compile time over the structural tree the lowering
// builds alongside the closures (fkNode; nil under any CSR load, so flats
// are dense-only) and recognizes the shapes `dmml -stats` shows dominate
// real scripts: sigmoid chains, axpy-like cells, scaled binary cells, and
// the rowagg-over-product family.
//
// Cell templates must be bit-identical to the interpreter: their loops
// replicate the interpreted op sequence exactly, leaning only on identities
// that hold bitwise (IEEE add/mul commute; x*1 ≡ x; a-b ≡ a+(-b); x+0 only
// ever feeds sigmoid, where ±0 agree). Aggregate templates are covered by
// the reduction tolerance the fused≡unfused property already grants
// (relative 1e-8), so they reassociate freely with unrolled accumulators.

// fkNode is the structural shadow of one compiled node: a dense load, a
// scalar reference, or an operator over children. Pure compile-time data.
type fkNode struct {
	code   FuseOpCode
	arg    int    // input index for dense loads
	scalar bool   // scalar reference (constant, input, or derived)
	sref   fkSRef // valid when scalar
	l, r   *fkNode
}

// is reports whether n is a vector-valued node with the given opcode.
func (n *fkNode) is(code FuseOpCode) bool {
	return n != nil && !n.scalar && n.code == code
}

// dense reports the input index when n is a plain dense load.
func (n *fkNode) dense() (int, bool) {
	if n != nil && !n.scalar && n.code == FuseLoad {
		return n.arg, true
	}
	return 0, false
}

// scalarRef reports n's scalar reference when n is scalar-valued.
func (n *fkNode) scalarRef() (fkSRef, bool) {
	if n != nil && n.scalar {
		return n.sref, true
	}
	return fkSRef{}, false
}

// matchScaled matches X, X*s, and s*X (IEEE multiplication commutes bit
// for bit). The bare load reports scale 1 — a bitwise identity.
func matchScaled(n *fkNode) (int, fkSRef, bool) {
	if arg, ok := n.dense(); ok {
		return arg, fkConst(1), true
	}
	if n.is(FuseMul) {
		if arg, ok := n.l.dense(); ok {
			if s, ok2 := n.r.scalarRef(); ok2 {
				return arg, s, true
			}
		}
		if arg, ok := n.r.dense(); ok {
			if s, ok2 := n.l.scalarRef(); ok2 {
				return arg, s, true
			}
		}
	}
	return 0, fkSRef{}, false
}

// matchScaledStrict is matchScaled without the bare-load form: a real
// multiply must be present.
func matchScaledStrict(n *fkNode) (int, fkSRef, bool) {
	if _, bare := n.dense(); bare {
		return 0, fkSRef{}, false
	}
	return matchScaled(n)
}

// matchAffine matches X, X*a, a*X, and those plus a scalar b in either
// order: the m = X*a + b shapes feeding sigmoid. Defaults a=1, b=0 keep
// one loop shape; both defaults are bitwise-safe in sigmoid position.
func matchAffine(n *fkNode) (int, fkSRef, fkSRef, bool) {
	if arg, a, ok := matchScaled(n); ok {
		return arg, a, fkConst(0), true
	}
	if n.is(FuseAdd) {
		if arg, a, ok := matchScaledStrict(n.l); ok {
			if b, ok2 := n.r.scalarRef(); ok2 {
				return arg, a, b, true
			}
		}
		if arg, a, ok := matchScaledStrict(n.r); ok {
			if b, ok2 := n.l.scalarRef(); ok2 {
				return arg, a, b, true
			}
		}
		// X + b (scale 1): the add must still be real.
		if arg, ok := n.l.dense(); ok {
			if b, ok2 := n.r.scalarRef(); ok2 {
				return arg, fkConst(1), b, true
			}
		}
		if arg, ok := n.r.dense(); ok {
			if b, ok2 := n.l.scalarRef(); ok2 {
				return arg, fkConst(1), b, true
			}
		}
	}
	return 0, fkSRef{}, fkSRef{}, false
}

// matchFlat installs flat kernels for recognized template shapes; the
// closure tree remains bound for entry points without a flat form.
func matchFlat(k *fusedKernel, n *fkNode) {
	if n == nil {
		return
	}
	matchFlatCell(k, n)
	matchFlatAgg(k, n)
}

// matchFlatCell recognizes element-wise output templates.
func matchFlatCell(k *fusedKernel, n *fkNode) {
	// sigchain: sigmoid(X*a+b) * X - X/c — the E15 heavy hitter.
	if n.is(FuseSub) && n.r.is(FuseDiv) {
		if sig, xArg, ok := matchSigMulX(n.l); ok {
			if dArg, ok2 := n.r.l.dense(); ok2 && dArg == xArg {
				if c, ok3 := n.r.r.scalarRef(); ok3 {
					if aArg, aR, bR, ok4 := matchAffine(sig.l); ok4 && aArg == xArg {
						arg := xArg
						k.flatCell = func(ins []FusedInput, sv, dst, scr []float64, lo, hi int) {
							flatSigChain(dst, scr, ins[arg].D.data[lo:hi],
								aR.loadIn(ins, sv), bR.loadIn(ins, sv), c.loadIn(ins, sv))
						}
						k.flat = "cell.sigchain"
						return
					}
				}
			}
		}
	}
	// sigmoid(X*a+b) on its own.
	if n.is(FuseSigmoid) {
		if arg, aR, bR, ok := matchAffine(n.l); ok {
			k.flatCell = func(ins []FusedInput, sv, dst, scr []float64, lo, hi int) {
				flatSigAffine(dst, scr, ins[arg].D.data[lo:hi],
					aR.loadIn(ins, sv), bR.loadIn(ins, sv))
			}
			k.flat = "cell.sigmoid"
			return
		}
	}
	// axpy: X ± Y*s in its four arrangements (add commutes bitwise, the
	// two sub orders get distinct loops).
	if n.is(FuseAdd) || n.is(FuseSub) {
		if matchFlatAxpy(k, n) {
			return
		}
	}
	// scalebin: (X ∘ Y) scaled by s — ∘ ∈ {+,-,×}, scale by × (either
	// order; commutes bitwise) or ÷.
	matchFlatScaleBin(k, n)
}

// matchSigMulX matches sigmoid(...) * X in either operand order, returning
// the sigmoid node and X's input index.
func matchSigMulX(n *fkNode) (*fkNode, int, bool) {
	if !n.is(FuseMul) {
		return nil, 0, false
	}
	if n.l.is(FuseSigmoid) {
		if arg, ok := n.r.dense(); ok {
			return n.l, arg, true
		}
	}
	if n.r.is(FuseSigmoid) {
		if arg, ok := n.l.dense(); ok {
			return n.r, arg, true
		}
	}
	return nil, 0, false
}

func matchFlatAxpy(k *fusedKernel, n *fkNode) bool {
	lArg, lDense := n.l.dense()
	rArg, rDense := n.r.dense()
	if n.is(FuseAdd) {
		if lDense {
			if yArg, s, ok := matchScaledStrict(n.r); ok {
				setFlatAxpy(k, flatAxpyAdd, lArg, yArg, s)
				return true
			}
		}
		if rDense {
			if yArg, s, ok := matchScaledStrict(n.l); ok {
				setFlatAxpy(k, flatAxpyAdd, rArg, yArg, s)
				return true
			}
		}
	} else { // FuseSub
		if lDense {
			if yArg, s, ok := matchScaledStrict(n.r); ok {
				setFlatAxpy(k, flatAxpySub, lArg, yArg, s)
				return true
			}
		}
		if rDense {
			if yArg, s, ok := matchScaledStrict(n.l); ok {
				setFlatAxpy(k, flatAxpyRSub, rArg, yArg, s)
				return true
			}
		}
	}
	return false
}

func setFlatAxpy(k *fusedKernel, loop func(dst, x, y []float64, s float64), xArg, yArg int, s fkSRef) {
	k.flatCell = func(ins []FusedInput, sv, dst, scr []float64, lo, hi int) {
		loop(dst, ins[xArg].D.data[lo:hi], ins[yArg].D.data[lo:hi], s.loadIn(ins, sv))
	}
	k.flat = "cell.axpy"
}

func matchFlatScaleBin(k *fusedKernel, n *fkNode) {
	var bin *fkNode
	var s fkSRef
	div := false
	switch {
	case n.is(FuseMul):
		if sc, ok := n.r.scalarRef(); ok {
			bin, s = n.l, sc
		} else if sc, ok := n.l.scalarRef(); ok {
			bin, s = n.r, sc
		}
	case n.is(FuseDiv):
		if sc, ok := n.r.scalarRef(); ok {
			bin, s, div = n.l, sc, true
		}
	}
	if bin == nil {
		return
	}
	xArg, okX := bin.l.dense()
	yArg, okY := bin.r.dense()
	if !okX || !okY {
		return
	}
	var loop func(dst, x, y []float64, s float64)
	switch {
	case bin.is(FuseAdd) && !div:
		loop = flatSBAddMul
	case bin.is(FuseAdd):
		loop = flatSBAddDiv
	case bin.is(FuseSub) && !div:
		loop = flatSBSubMul
	case bin.is(FuseSub):
		loop = flatSBSubDiv
	case bin.is(FuseMul) && !div:
		loop = flatSBMulMul
	case bin.is(FuseMul):
		loop = flatSBMulDiv
	default:
		return
	}
	k.flatCell = func(ins []FusedInput, sv, dst, scr []float64, lo, hi int) {
		loop(dst, ins[xArg].D.data[lo:hi], ins[yArg].D.data[lo:hi], s.loadIn(ins, sv))
	}
	k.flat = "cell.scalebin"
}

// matchFlatAgg recognizes the element terms whose reductions dominate the
// aggregate templates and installs both the full-sum and per-row kernels.
// A cell match keeps naming priority; the agg kernels still bind.
func matchFlatAgg(k *fusedKernel, n *fkNode) {
	name := ""
	if n.is(FuseSq) {
		if n.l.is(FuseSub) {
			xArg, okX := n.l.l.dense()
			yArg, okY := n.l.r.dense()
			if okX && okY {
				k.flatSum = func(ins []FusedInput, sv []float64, lo, hi int) float64 {
					return sumSqDiff(ins[xArg].D.data[lo:hi], ins[yArg].D.data[lo:hi])
				}
				k.flatRow = func(ins []FusedInput, sv, v, dst []float64, cols, r0, r1 int) {
					x, y := ins[xArg].D.data, ins[yArg].D.data
					for r := r0; r < r1; r++ {
						row := x[r*cols : (r+1)*cols]
						yrw := y[r*cols : (r+1)*cols]
						if v == nil {
							dst[r] = sumSqDiff(row, yrw)
						} else {
							dst[r] = dotSqDiff(row, yrw, v)
						}
					}
				}
				name = "agg.sqdiff"
			}
		} else if xArg, ok := n.l.dense(); ok {
			k.flatSum = func(ins []FusedInput, sv []float64, lo, hi int) float64 {
				return sumSq(ins[xArg].D.data[lo:hi])
			}
			k.flatRow = func(ins []FusedInput, sv, v, dst []float64, cols, r0, r1 int) {
				x := ins[xArg].D.data
				for r := r0; r < r1; r++ {
					row := x[r*cols : (r+1)*cols]
					if v == nil {
						dst[r] = sumSq(row)
					} else {
						dst[r] = dotSq(row, v)
					}
				}
			}
			name = "agg.sq"
		}
	}
	if n.is(FuseMul) {
		xArg, okX := n.l.dense()
		yArg, okY := n.r.dense()
		if okX && okY {
			k.flatSum = func(ins []FusedInput, sv []float64, lo, hi int) float64 {
				return sumMul(ins[xArg].D.data[lo:hi], ins[yArg].D.data[lo:hi])
			}
			k.flatRow = func(ins []FusedInput, sv, v, dst []float64, cols, r0, r1 int) {
				x, y := ins[xArg].D.data, ins[yArg].D.data
				for r := r0; r < r1; r++ {
					row := x[r*cols : (r+1)*cols]
					yrw := y[r*cols : (r+1)*cols]
					if v == nil {
						dst[r] = sumMul(row, yrw)
					} else {
						dst[r] = dotMul(row, yrw, v)
					}
				}
			}
			name = "agg.mul"
		}
	}
	if n.is(FuseAdd) {
		if matchFlatAggAdd(k, n) {
			name = k.flat // matchFlatAggAdd names itself when unnamed
		}
	}
	if name != "" && k.flat == "" {
		k.flat = name
	}
}

// matchFlatAggAdd handles the two Add-rooted aggregate terms: X*Y + Z
// (muladd, all dense) and X*s + Y (scaleadd). Add commutes bitwise, so
// both operand orders match.
func matchFlatAggAdd(k *fusedKernel, n *fkNode) bool {
	for _, or := range [2][2]*fkNode{{n.l, n.r}, {n.r, n.l}} {
		mul, other := or[0], or[1]
		if !mul.is(FuseMul) {
			continue
		}
		zArg, okZ := other.dense()
		if !okZ {
			continue
		}
		xArg, okX := mul.l.dense()
		yArg, okY := mul.r.dense()
		if okX && okY {
			k.flatSum = func(ins []FusedInput, sv []float64, lo, hi int) float64 {
				return sumMulAdd(ins[xArg].D.data[lo:hi], ins[yArg].D.data[lo:hi], ins[zArg].D.data[lo:hi])
			}
			k.flatRow = func(ins []FusedInput, sv, v, dst []float64, cols, r0, r1 int) {
				x, y, z := ins[xArg].D.data, ins[yArg].D.data, ins[zArg].D.data
				for r := r0; r < r1; r++ {
					b, e := r*cols, (r+1)*cols
					if v == nil {
						dst[r] = sumMulAdd(x[b:e], y[b:e], z[b:e])
					} else {
						dst[r] = dotMulAdd(x[b:e], y[b:e], z[b:e], v)
					}
				}
			}
			if k.flat == "" {
				k.flat = "agg.muladd"
			}
			return true
		}
		if sArg, s, ok := matchScaledStrict(mul); ok {
			k.flatSum = func(ins []FusedInput, sv []float64, lo, hi int) float64 {
				return sumScaleAdd(ins[sArg].D.data[lo:hi], s.loadIn(ins, sv), ins[zArg].D.data[lo:hi])
			}
			k.flatRow = func(ins []FusedInput, sv, v, dst []float64, cols, r0, r1 int) {
				x, y := ins[sArg].D.data, ins[zArg].D.data
				sc := s.loadIn(ins, sv)
				for r := r0; r < r1; r++ {
					b, e := r*cols, (r+1)*cols
					if v == nil {
						dst[r] = sumScaleAdd(x[b:e], sc, y[b:e])
					} else {
						dst[r] = dotScaleAdd(x[b:e], sc, y[b:e], v)
					}
				}
			}
			if k.flat == "" {
				k.flat = "agg.scaleadd"
			}
			return true
		}
	}
	return false
}

// --- cell template loops ---

// flatSigChain computes dst = sigmoid(x*a+b)*x - x/c in a single register
// pass: the affine argument feeds the 4-lane exponential directly and the
// chain tail consumes it without ever touching a staging buffer — x is
// read once and dst written once per element. Bit-identical to the
// interpreted op sequence. dst may alias x.
//
//dmml:noalloc
func flatSigChain(dst, scr, x []float64, a, b, c float64) {
	mode := fuseExpMode
	x = x[:len(dst)]
	i := 0
	if mode != 0 {
		for ; i+8 <= len(dst); i += 8 {
			x0, x1, x2, x3 := x[i], x[i+1], x[i+2], x[i+3]
			x4, x5, x6, x7 := x[i+4], x[i+5], x[i+6], x[i+7]
			m0 := x0*a + b
			m1 := x1*a + b
			m2 := x2*a + b
			m3 := x3*a + b
			m4 := x4*a + b
			m5 := x5*a + b
			m6 := x6*a + b
			m7 := x7*a + b
			// The x/c divisions are independent of the exponential, and the
			// exp8 FMA chain alone overflows the reorder window — issued
			// here, before it, they run on the divider port underneath the
			// polynomial instead of queueing behind it.
			d0 := x0 / c
			d1 := x1 / c
			d2 := x2 / c
			d3 := x3 / c
			d4 := x4 / c
			d5 := x5 / c
			d6 := x6 / c
			d7 := x7 / c
			a0, a1, a2, a3 := math.Abs(m0), math.Abs(m1), math.Abs(m2), math.Abs(m3)
			a4, a5, a6, a7 := math.Abs(m4), math.Abs(m5), math.Abs(m6), math.Abs(m7)
			if a0 >= sigGateLo && a0 < sigGateHi &&
				a1 >= sigGateLo && a1 < sigGateHi &&
				a2 >= sigGateLo && a2 < sigGateHi &&
				a3 >= sigGateLo && a3 < sigGateHi &&
				a4 >= sigGateLo && a4 < sigGateHi &&
				a5 >= sigGateLo && a5 < sigGateHi &&
				a6 >= sigGateLo && a6 < sigGateHi &&
				a7 >= sigGateLo && a7 < sigGateHi {
				var e0, e1, e2, e3, e4, e5, e6, e7 float64
				if mode == 1 {
					e0, e1, e2, e3, e4, e5, e6, e7 = exp8FMA(-a0, -a1, -a2, -a3, -a4, -a5, -a6, -a7)
				} else {
					e0, e1, e2, e3, e4, e5, e6, e7 = exp8NoFMA(-a0, -a1, -a2, -a3, -a4, -a5, -a6, -a7)
				}
				dst[i] = sigLane(m0, e0)*x0 - d0
				dst[i+1] = sigLane(m1, e1)*x1 - d1
				dst[i+2] = sigLane(m2, e2)*x2 - d2
				dst[i+3] = sigLane(m3, e3)*x3 - d3
				dst[i+4] = sigLane(m4, e4)*x4 - d4
				dst[i+5] = sigLane(m5, e5)*x5 - d5
				dst[i+6] = sigLane(m6, e6)*x6 - d6
				dst[i+7] = sigLane(m7, e7)*x7 - d7
			} else {
				dst[i] = fuseSigmoid(m0)*x0 - d0
				dst[i+1] = fuseSigmoid(m1)*x1 - d1
				dst[i+2] = fuseSigmoid(m2)*x2 - d2
				dst[i+3] = fuseSigmoid(m3)*x3 - d3
				dst[i+4] = fuseSigmoid(m4)*x4 - d4
				dst[i+5] = fuseSigmoid(m5)*x5 - d5
				dst[i+6] = fuseSigmoid(m6)*x6 - d6
				dst[i+7] = fuseSigmoid(m7)*x7 - d7
			}
		}
	}
	for ; i < len(dst); i++ {
		m := x[i]*a + b
		dst[i] = fuseSigmoid(m)*x[i] - x[i]/c
	}
}

// flatSigAffine computes dst = sigmoid(x*a + b). dst may alias x.
//
//dmml:noalloc
func flatSigAffine(dst, scr, x []float64, a, b float64) {
	x = x[:len(dst)]
	for at := 0; at < len(dst); at += fusedTileW {
		end := min(at+fusedTileW, len(dst))
		m := scr[:end-at]
		xa := x[at:end]
		for j := range m {
			m[j] = xa[j]*a + b
		}
		sigmoidTile(dst[at:end], m)
	}
}

//dmml:noalloc
func flatAxpyAdd(dst, x, y []float64, s float64) {
	x, y = x[:len(dst)], y[:len(dst)]
	i := 0
	for ; i+4 <= len(dst); i += 4 {
		dst[i] = x[i] + y[i]*s
		dst[i+1] = x[i+1] + y[i+1]*s
		dst[i+2] = x[i+2] + y[i+2]*s
		dst[i+3] = x[i+3] + y[i+3]*s
	}
	for ; i < len(dst); i++ {
		dst[i] = x[i] + y[i]*s
	}
}

//dmml:noalloc
func flatAxpySub(dst, x, y []float64, s float64) {
	x, y = x[:len(dst)], y[:len(dst)]
	i := 0
	for ; i+4 <= len(dst); i += 4 {
		dst[i] = x[i] - y[i]*s
		dst[i+1] = x[i+1] - y[i+1]*s
		dst[i+2] = x[i+2] - y[i+2]*s
		dst[i+3] = x[i+3] - y[i+3]*s
	}
	for ; i < len(dst); i++ {
		dst[i] = x[i] - y[i]*s
	}
}

//dmml:noalloc
func flatAxpyRSub(dst, x, y []float64, s float64) {
	x, y = x[:len(dst)], y[:len(dst)]
	for i := range dst {
		dst[i] = y[i]*s - x[i]
	}
}

//dmml:noalloc
func flatSBAddMul(dst, x, y []float64, s float64) {
	x, y = x[:len(dst)], y[:len(dst)]
	for i := range dst {
		dst[i] = (x[i] + y[i]) * s
	}
}

//dmml:noalloc
func flatSBSubMul(dst, x, y []float64, s float64) {
	x, y = x[:len(dst)], y[:len(dst)]
	i := 0
	for ; i+4 <= len(dst); i += 4 {
		dst[i] = (x[i] - y[i]) * s
		dst[i+1] = (x[i+1] - y[i+1]) * s
		dst[i+2] = (x[i+2] - y[i+2]) * s
		dst[i+3] = (x[i+3] - y[i+3]) * s
	}
	for ; i < len(dst); i++ {
		dst[i] = (x[i] - y[i]) * s
	}
}

//dmml:noalloc
func flatSBMulMul(dst, x, y []float64, s float64) {
	x, y = x[:len(dst)], y[:len(dst)]
	for i := range dst {
		dst[i] = (x[i] * y[i]) * s
	}
}

//dmml:noalloc
func flatSBAddDiv(dst, x, y []float64, s float64) {
	x, y = x[:len(dst)], y[:len(dst)]
	for i := range dst {
		dst[i] = (x[i] + y[i]) / s
	}
}

//dmml:noalloc
func flatSBSubDiv(dst, x, y []float64, s float64) {
	x, y = x[:len(dst)], y[:len(dst)]
	for i := range dst {
		dst[i] = (x[i] - y[i]) / s
	}
}

//dmml:noalloc
func flatSBMulDiv(dst, x, y []float64, s float64) {
	x, y = x[:len(dst)], y[:len(dst)]
	for i := range dst {
		dst[i] = (x[i] * y[i]) / s
	}
}

// --- aggregate template loops (4-accumulator unrolled; reductions carry
// the fused properties' relative tolerance, so reassociation is free) ---

//dmml:noalloc
func sumSqDiff(x, y []float64) float64 {
	y = y[:len(x)]
	var s, s0, s1, s2, s3 float64
	i := 0
	for ; i+4 <= len(x); i += 4 {
		d0 := x[i] - y[i]
		d1 := x[i+1] - y[i+1]
		d2 := x[i+2] - y[i+2]
		d3 := x[i+3] - y[i+3]
		s0 += d0 * d0
		s1 += d1 * d1
		s2 += d2 * d2
		s3 += d3 * d3
	}
	for ; i < len(x); i++ {
		d := x[i] - y[i]
		s += d * d
	}
	return s + s0 + s1 + s2 + s3
}

//dmml:noalloc
func dotSqDiff(x, y, v []float64) float64 {
	y, v = y[:len(x)], v[:len(x)]
	var s float64
	for i := range x {
		d := x[i] - y[i]
		s += d * d * v[i]
	}
	return s
}

//dmml:noalloc
func sumSq(x []float64) float64 {
	var s, s0, s1, s2, s3 float64
	i := 0
	for ; i+4 <= len(x); i += 4 {
		s0 += x[i] * x[i]
		s1 += x[i+1] * x[i+1]
		s2 += x[i+2] * x[i+2]
		s3 += x[i+3] * x[i+3]
	}
	for ; i < len(x); i++ {
		s += x[i] * x[i]
	}
	return s + s0 + s1 + s2 + s3
}

//dmml:noalloc
func dotSq(x, v []float64) float64 {
	v = v[:len(x)]
	var s float64
	for i := range x {
		s += x[i] * x[i] * v[i]
	}
	return s
}

//dmml:noalloc
func sumMul(x, y []float64) float64 {
	return Dot(x, y[:len(x)])
}

//dmml:noalloc
func dotMul(x, y, v []float64) float64 {
	y, v = y[:len(x)], v[:len(x)]
	var s float64
	for i := range x {
		s += x[i] * y[i] * v[i]
	}
	return s
}

//dmml:noalloc
func sumMulAdd(x, y, z []float64) float64 {
	y, z = y[:len(x)], z[:len(x)]
	var s, s0, s1, s2, s3 float64
	i := 0
	for ; i+4 <= len(x); i += 4 {
		s0 += x[i]*y[i] + z[i]
		s1 += x[i+1]*y[i+1] + z[i+1]
		s2 += x[i+2]*y[i+2] + z[i+2]
		s3 += x[i+3]*y[i+3] + z[i+3]
	}
	for ; i < len(x); i++ {
		s += x[i]*y[i] + z[i]
	}
	return s + s0 + s1 + s2 + s3
}

//dmml:noalloc
func dotMulAdd(x, y, z, v []float64) float64 {
	y, z, v = y[:len(x)], z[:len(x)], v[:len(x)]
	var s float64
	for i := range x {
		s += (x[i]*y[i] + z[i]) * v[i]
	}
	return s
}

//dmml:noalloc
func sumScaleAdd(x []float64, sc float64, y []float64) float64 {
	y = y[:len(x)]
	var s, s0, s1, s2, s3 float64
	i := 0
	for ; i+4 <= len(x); i += 4 {
		s0 += x[i]*sc + y[i]
		s1 += x[i+1]*sc + y[i+1]
		s2 += x[i+2]*sc + y[i+2]
		s3 += x[i+3]*sc + y[i+3]
	}
	for ; i < len(x); i++ {
		s += x[i]*sc + y[i]
	}
	return s + s0 + s1 + s2 + s3
}

//dmml:noalloc
func dotScaleAdd(x []float64, sc float64, y, v []float64) float64 {
	y, v = y[:len(x)], v[:len(x)]
	var s float64
	for i := range x {
		s += (x[i]*sc + y[i]) * v[i]
	}
	return s
}
