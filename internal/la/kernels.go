package la

import (
	"fmt"

	"dmml/internal/pool"
)

// parallelThreshold is the minimum amount of scalar work (flops) below which
// kernels stay single-threaded; dispatch overhead costs more than it saves
// on small inputs. A var so tests can force the parallel path.
var parallelThreshold = 1 << 18

// parallelRows runs fn over row ranges of [0,rows) on the shared worker
// pool with dynamic chunk scheduling: workers claim bounded chunks off an
// atomic index, so skewed per-row cost (zero-heavy GEMM rows, uneven sparse
// rows) rebalances instead of serializing on the slowest static chunk. work
// is the total scalar-op estimate used for the serial cutoff and grain.
func parallelRows(rows int, work int, fn func(r0, r1 int)) {
	if work < parallelThreshold || rows < 2 {
		fn(0, rows)
		return
	}
	pool.Do(rows, pool.Grain(rows, work/rows), func(_, lo, hi int) { fn(lo, hi) })
}

// MatMul returns a × b. It panics if the inner dimensions disagree.
//
// Large, mostly-dense products go through the cache-blocked packed kernel
// (see gemm.go); small or sparse ones stay on the ikj streaming kernel that
// skips zero elements of a.
func MatMul(a, b *Dense) *Dense {
	if a.cols != b.rows {
		panic(fmt.Sprintf("la: MatMul %dx%d × %dx%d", a.rows, a.cols, b.rows, b.cols))
	}
	out := NewDense(a.rows, b.cols)
	work := a.rows * a.cols * b.cols
	sw := mMatMulTimer.Start()
	mMatMulCalls.Inc()
	mFlops.Add(2 * int64(work))
	switch {
	case a.rows*b.cols <= kSplitMaxOut && a.cols >= kSplitMinK && work >= parallelThreshold:
		// Skinny product (Xᵀ·X-shaped): k-outer order reads each operand
		// once and keeps the whole output in cache; parallel over k.
		mMatMulKSplit.Inc()
		gemmKSplit(a, b, out)
	case gemmUseBlocked(a, b.cols):
		mMatMulBlocked.Inc()
		gemmBlocked(a, b, out)
	default:
		mMatMulStream.Inc()
		parallelRows(a.rows, work, func(r0, r1 int) {
			gemmRows(a, b, out, r0, r1)
		})
	}
	sw.Stop()
	return out
}

// gemmRows computes out[r0:r1] = a[r0:r1] × b using an ikj loop order so the
// inner loop streams contiguously over b's rows and out's rows.
//dmml:noalloc
func gemmRows(a, b, out *Dense, r0, r1 int) {
	n := b.cols
	for i := r0; i < r1; i++ {
		arow := a.data[i*a.cols : (i+1)*a.cols]
		orow := out.data[i*n : (i+1)*n]
		for k, av := range arow {
			if av == 0 {
				continue
			}
			brow := b.data[k*n : (k+1)*n]
			for j, bv := range brow {
				orow[j] += av * bv
			}
		}
	}
}

// MatVec returns m × x as a new length-rows vector.
func MatVec(m *Dense, x []float64) []float64 {
	return MatVecInto(make([]float64, m.rows), m, x)
}

// MatVecInto computes m × x into dst (overwriting it) and returns dst. dst
// must have length m.Rows(). It allocates nothing in the serial regime, so
// iterative solvers can reuse one buffer across thousands of calls.
func MatVecInto(dst []float64, m *Dense, x []float64) []float64 {
	if m.cols != len(x) {
		panic(fmt.Sprintf("la: MatVec %dx%d × len %d", m.rows, m.cols, len(x)))
	}
	if len(dst) != m.rows {
		panic(fmt.Sprintf("la: MatVecInto dst len %d for %d rows", len(dst), m.rows))
	}
	mMatVecCalls.Inc()
	mFlops.Add(2 * int64(m.rows) * int64(m.cols))
	// Direct serial path (not via parallelRows): keeps the closure off the
	// heap so iterative solvers see zero steady-state allocations.
	if m.rows*m.cols < parallelThreshold || m.rows < 2 || pool.SerialNow() {
		for i := 0; i < m.rows; i++ {
			dst[i] = Dot(m.RowView(i), x)
		}
		return dst
	}
	parallelRows(m.rows, m.rows*m.cols, func(r0, r1 int) {
		for i := r0; i < r1; i++ {
			dst[i] = Dot(m.RowView(i), x)
		}
	})
	return dst
}

// VecMat returns xᵀ × m (equivalently mᵀ × x) as a new length-cols vector.
func VecMat(x []float64, m *Dense) []float64 {
	return VecMatInto(make([]float64, m.cols), x, m)
}

// VecMatInto computes xᵀ × m into dst (overwriting it) and returns dst. dst
// must have length m.Cols(). Parallel runs use per-worker partial
// accumulators drawn from the scratch pool and merged at the end; the serial
// regime allocates nothing.
func VecMatInto(dst []float64, x []float64, m *Dense) []float64 {
	if m.rows != len(x) {
		panic(fmt.Sprintf("la: VecMat len %d × %dx%d", len(x), m.rows, m.cols))
	}
	if len(dst) != m.cols {
		panic(fmt.Sprintf("la: VecMatInto dst len %d for %d cols", len(dst), m.cols))
	}
	mVecMatCalls.Inc()
	mFlops.Add(2 * int64(m.rows) * int64(m.cols))
	for j := range dst {
		dst[j] = 0
	}
	work := m.rows * m.cols
	if work < parallelThreshold || m.rows < 2 || pool.SerialNow() {
		vecMatAccum(dst, x, m, 0, m.rows)
		return dst
	}
	partials := make([][]float64, pool.Workers())
	partials[0] = dst
	pool.Do(m.rows, pool.Grain(m.rows, m.cols), func(slot, lo, hi int) {
		acc := partials[slot]
		if acc == nil {
			acc = pool.GetF64Zeroed(m.cols)
			partials[slot] = acc
		}
		vecMatAccum(acc, x, m, lo, hi)
	})
	for _, p := range partials[1:] {
		if p != nil {
			Axpy(1, p, dst)
			pool.PutF64(p)
		}
	}
	return dst
}

// vecMatAccum adds x[r0:r1]ᵀ × m[r0:r1] into acc. Rows are folded into the
// accumulator two at a time: for narrow matrices the per-row Axpy loop is
// short enough that call and loop overhead dominate, and the fused two-row
// sweep doubles the flops retired per iteration.
//dmml:noalloc
func vecMatAccum(acc, x []float64, m *Dense, r0, r1 int) {
	i := r0
	for ; i+1 < r1; i += 2 {
		x0, x1 := x[i], x[i+1]
		switch {
		case x0 == 0 && x1 == 0:
		case x1 == 0:
			Axpy(x0, m.RowView(i), acc)
		case x0 == 0:
			Axpy(x1, m.RowView(i+1), acc)
		default:
			row0 := m.RowView(i)[:len(acc)]
			row1 := m.RowView(i + 1)[:len(acc)]
			for b := range acc {
				acc[b] += x0*row0[b] + x1*row1[b]
			}
		}
	}
	for ; i < r1; i++ {
		if xi := x[i]; xi != 0 {
			Axpy(xi, m.RowView(i), acc)
		}
	}
}

// Gram returns XᵀX exploiting symmetry (syrk). The result is cols×cols.
func Gram(x *Dense) *Dense {
	out := NewDense(x.cols, x.cols)
	GramInto(out, x)
	return out
}

// GramInto computes XᵀX into out (overwriting it) and returns out. out must
// be cols×cols. Parallel runs accumulate into per-worker scratch matrices
// merged at the end; the serial regime allocates nothing.
func GramInto(out *Dense, x *Dense) *Dense {
	d := x.cols
	if out.rows != d || out.cols != d {
		panic(fmt.Sprintf("la: GramInto %dx%d dst for %d cols", out.rows, out.cols, d))
	}
	sw := mGramTimer.Start()
	defer sw.Stop()
	mGramCalls.Inc()
	mFlops.Add(int64(x.rows) * int64(d) * int64(d))
	out.Zero()
	work := x.rows * d * d
	if work < parallelThreshold || x.rows < 2 || pool.SerialNow() {
		gramAccum(x, out.data, 0, x.rows)
	} else {
		partials := make([][]float64, pool.Workers())
		partials[0] = out.data
		pool.Do(x.rows, pool.Grain(x.rows, d*d), func(slot, lo, hi int) {
			acc := partials[slot]
			if acc == nil {
				acc = pool.GetF64Zeroed(d * d)
				partials[slot] = acc
			}
			gramAccum(x, acc, lo, hi)
		})
		for _, p := range partials[1:] {
			if p != nil {
				Axpy(1, p, out.data)
				pool.PutF64(p)
			}
		}
	}
	// Mirror the upper triangle into the lower triangle.
	for i := 0; i < d; i++ {
		for j := 0; j < i; j++ {
			out.data[i*d+j] = out.data[j*d+i]
		}
	}
	return out
}

// gramTile is the column-block edge for the tiled syrk accumulation: a
// gramTile² output tile (32 KB) stays L1-resident while a panel of rows
// streams through it.
const gramTile = 64

// gramRowPanel bounds how many rows are swept per tile pass so the row panel
// itself stays cache-resident across the (ta,tb) tile loop.
const gramRowPanel = 256

// gramPairAccum adds two rows' contributions to one accumulator row of the
// upper triangle, skipping zero coefficients so sparse inputs keep their
// short-circuit (and 0·Inf stays out of the sum).
//dmml:noalloc
func gramPairAccum(arow []float64, a, d int, va0, va1 float64, row0, row1 []float64) {
	switch {
	case va0 == 0 && va1 == 0:
	case va1 == 0:
		for b := a; b < d; b++ {
			arow[b] += va0 * row0[b]
		}
	case va0 == 0:
		for b := a; b < d; b++ {
			arow[b] += va1 * row1[b]
		}
	default:
		for b := a; b < d; b++ {
			arow[b] += va0*row0[b] + va1*row1[b]
		}
	}
}

// gramAccum adds the upper triangle of X[r0:r1]ᵀ X[r0:r1] into the row-major
// d×d buffer acc. Wide matrices are tiled over column blocks so the
// accumulator tile stays in L1 instead of thrashing a d²-sized working set
// per input row.
//dmml:noalloc
func gramAccum(x *Dense, acc []float64, r0, r1 int) {
	d := x.cols
	if d <= gramTile {
		// Narrow matrices: the triangular inner loop averages only d/2
		// iterations, so per-iteration overhead dominates. Folding four input
		// rows into each accumulator sweep retires 8 flops per iteration of
		// that short loop instead of 2; rows with zeros fall back to pairwise
		// updates that keep the zero-skip (and its 0·Inf semantics).
		i := r0
		for ; i+3 < r1; i += 4 {
			row0, row1 := x.RowView(i), x.RowView(i+1)
			row2, row3 := x.RowView(i+2), x.RowView(i+3)
			for a := 0; a < d; a++ {
				va0, va1, va2, va3 := row0[a], row1[a], row2[a], row3[a]
				if va0 == 0 && va1 == 0 && va2 == 0 && va3 == 0 {
					continue
				}
				arow := acc[a*d : (a+1)*d]
				if va0 != 0 && va1 != 0 && va2 != 0 && va3 != 0 {
					for b := a; b < d; b++ {
						arow[b] += va0*row0[b] + va1*row1[b] + va2*row2[b] + va3*row3[b]
					}
					continue
				}
				gramPairAccum(arow, a, d, va0, va1, row0, row1)
				gramPairAccum(arow, a, d, va2, va3, row2, row3)
			}
		}
		for ; i+1 < r1; i += 2 {
			row0, row1 := x.RowView(i), x.RowView(i+1)
			for a := 0; a < d; a++ {
				gramPairAccum(acc[a*d:(a+1)*d], a, d, row0[a], row1[a], row0, row1)
			}
		}
		for ; i < r1; i++ {
			row := x.RowView(i)
			for a, va := range row {
				if va == 0 {
					continue
				}
				arow := acc[a*d : (a+1)*d]
				for b := a; b < d; b++ {
					arow[b] += va * row[b]
				}
			}
		}
		return
	}
	for i0 := r0; i0 < r1; i0 += gramRowPanel {
		i1 := min(i0+gramRowPanel, r1)
		for ta := 0; ta < d; ta += gramTile {
			taMax := min(ta+gramTile, d)
			for tb := ta; tb < d; tb += gramTile {
				tbMax := min(tb+gramTile, d)
				for i := i0; i < i1; i++ {
					row := x.RowView(i)
					for a := ta; a < taMax; a++ {
						va := row[a]
						if va == 0 {
							continue
						}
						arow := acc[a*d : (a+1)*d]
						b0 := tb
						if a > b0 {
							b0 = a
						}
						for b := b0; b < tbMax; b++ {
							arow[b] += va * row[b]
						}
					}
				}
			}
		}
	}
}

// XtY returns Xᵀy for a matrix X and a column vector y of length X.rows.
func XtY(x *Dense, y []float64) []float64 { return XtYInto(make([]float64, x.cols), x, y) }

// XtYInto computes Xᵀy into dst (overwriting it) and returns dst. dst must
// have length X.Cols(). Like VecMatInto it allocates nothing in the serial
// regime, so solvers that compute a gradient per iteration can reuse one
// buffer instead of allocating a fresh vector every call.
func XtYInto(dst []float64, x *Dense, y []float64) []float64 { return VecMatInto(dst, y, x) }

// OuterAdd adds alpha * x yᵀ into m in place.
func OuterAdd(m *Dense, alpha float64, x, y []float64) {
	if m.rows != len(x) || m.cols != len(y) {
		panic(fmt.Sprintf("la: OuterAdd %dx%d with len %d, %d", m.rows, m.cols, len(x), len(y)))
	}
	for i, xi := range x {
		if xi == 0 {
			continue
		}
		Axpy(alpha*xi, y, m.RowView(i))
	}
}

// Trace returns the sum of diagonal elements of a square matrix.
func Trace(m *Dense) float64 {
	if m.rows != m.cols {
		panic(fmt.Sprintf("la: Trace of non-square %dx%d", m.rows, m.cols))
	}
	var s float64
	for i := 0; i < m.rows; i++ {
		s += m.data[i*m.cols+i]
	}
	return s
}

// TraceMatMul returns trace(A×B) without materializing the product.
// A must be p×q and B q×p.
func TraceMatMul(a, b *Dense) float64 {
	if a.cols != b.rows || a.rows != b.cols {
		panic(fmt.Sprintf("la: TraceMatMul %dx%d × %dx%d", a.rows, a.cols, b.rows, b.cols))
	}
	var s float64
	for i := 0; i < a.rows; i++ {
		arow := a.RowView(i)
		for k, av := range arow {
			s += av * b.data[k*b.cols+i]
		}
	}
	return s
}
