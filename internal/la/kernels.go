package la

import (
	"fmt"
	"runtime"
	"sync"
)

// parallelThreshold is the minimum amount of scalar work (flops) below which
// kernels stay single-threaded; goroutine fan-out costs more than it saves
// on small inputs.
const parallelThreshold = 1 << 18

// parallelRows splits [0,rows) into contiguous chunks and runs fn on each in
// its own goroutine, bounded by GOMAXPROCS.
func parallelRows(rows int, work int, fn func(r0, r1 int)) {
	procs := runtime.GOMAXPROCS(0)
	if procs <= 1 || work < parallelThreshold || rows < 2 {
		fn(0, rows)
		return
	}
	chunks := procs
	if chunks > rows {
		chunks = rows
	}
	var wg sync.WaitGroup
	chunk := (rows + chunks - 1) / chunks
	for r0 := 0; r0 < rows; r0 += chunk {
		r1 := min(r0+chunk, rows)
		wg.Add(1)
		go func(a, b int) {
			defer wg.Done()
			fn(a, b)
		}(r0, r1)
	}
	wg.Wait()
}

// MatMul returns a × b. It panics if the inner dimensions disagree.
func MatMul(a, b *Dense) *Dense {
	if a.cols != b.rows {
		panic(fmt.Sprintf("la: MatMul %dx%d × %dx%d", a.rows, a.cols, b.rows, b.cols))
	}
	out := NewDense(a.rows, b.cols)
	work := a.rows * a.cols * b.cols
	parallelRows(a.rows, work, func(r0, r1 int) {
		gemmRows(a, b, out, r0, r1)
	})
	return out
}

// gemmRows computes out[r0:r1] = a[r0:r1] × b using an ikj loop order so the
// inner loop streams contiguously over b's rows and out's rows.
func gemmRows(a, b, out *Dense, r0, r1 int) {
	n := b.cols
	for i := r0; i < r1; i++ {
		arow := a.data[i*a.cols : (i+1)*a.cols]
		orow := out.data[i*n : (i+1)*n]
		for k, av := range arow {
			if av == 0 {
				continue
			}
			brow := b.data[k*n : (k+1)*n]
			for j, bv := range brow {
				orow[j] += av * bv
			}
		}
	}
}

// MatVec returns m × x as a new length-rows vector.
func MatVec(m *Dense, x []float64) []float64 {
	if m.cols != len(x) {
		panic(fmt.Sprintf("la: MatVec %dx%d × len %d", m.rows, m.cols, len(x)))
	}
	out := make([]float64, m.rows)
	parallelRows(m.rows, m.rows*m.cols, func(r0, r1 int) {
		for i := r0; i < r1; i++ {
			out[i] = Dot(m.RowView(i), x)
		}
	})
	return out
}

// VecMat returns xᵀ × m (equivalently mᵀ × x) as a new length-cols vector.
func VecMat(x []float64, m *Dense) []float64 {
	if m.rows != len(x) {
		panic(fmt.Sprintf("la: VecMat len %d × %dx%d", len(x), m.rows, m.cols))
	}
	procs := runtime.GOMAXPROCS(0)
	work := m.rows * m.cols
	if procs <= 1 || work < parallelThreshold {
		out := make([]float64, m.cols)
		for i, xi := range x {
			if xi == 0 {
				continue
			}
			Axpy(xi, m.RowView(i), out)
		}
		return out
	}
	// Per-worker partial accumulators avoid write contention on out.
	chunks := procs
	if chunks > m.rows {
		chunks = m.rows
	}
	partials := make([][]float64, chunks)
	var wg sync.WaitGroup
	chunk := (m.rows + chunks - 1) / chunks
	idx := 0
	for r0 := 0; r0 < m.rows; r0 += chunk {
		r1 := min(r0+chunk, m.rows)
		wg.Add(1)
		go func(slot, a, b int) {
			defer wg.Done()
			acc := make([]float64, m.cols)
			for i := a; i < b; i++ {
				if xi := x[i]; xi != 0 {
					Axpy(xi, m.RowView(i), acc)
				}
			}
			partials[slot] = acc
		}(idx, r0, r1)
		idx++
	}
	wg.Wait()
	out := make([]float64, m.cols)
	for _, p := range partials[:idx] {
		Axpy(1, p, out)
	}
	return out
}

// Gram returns XᵀX exploiting symmetry (syrk). The result is cols×cols.
func Gram(x *Dense) *Dense {
	d := x.cols
	out := NewDense(d, d)
	procs := runtime.GOMAXPROCS(0)
	work := x.rows * d * d
	if procs <= 1 || work < parallelThreshold {
		gramAccum(x, out, 0, x.rows)
	} else {
		chunks := procs
		if chunks > x.rows {
			chunks = x.rows
		}
		accs := make([]*Dense, chunks)
		var wg sync.WaitGroup
		chunk := (x.rows + chunks - 1) / chunks
		idx := 0
		for r0 := 0; r0 < x.rows; r0 += chunk {
			r1 := min(r0+chunk, x.rows)
			wg.Add(1)
			go func(slot, a, b int) {
				defer wg.Done()
				acc := NewDense(d, d)
				gramAccum(x, acc, a, b)
				accs[slot] = acc
			}(idx, r0, r1)
			idx++
		}
		wg.Wait()
		for _, acc := range accs[:idx] {
			out.Add(acc)
		}
	}
	// Mirror the upper triangle into the lower triangle.
	for i := 0; i < d; i++ {
		for j := 0; j < i; j++ {
			out.data[i*d+j] = out.data[j*d+i]
		}
	}
	return out
}

// gramAccum adds the upper triangle of X[r0:r1]ᵀ X[r0:r1] into out.
func gramAccum(x, out *Dense, r0, r1 int) {
	d := x.cols
	for i := r0; i < r1; i++ {
		row := x.RowView(i)
		for a, va := range row {
			if va == 0 {
				continue
			}
			orow := out.data[a*d : (a+1)*d]
			for b := a; b < d; b++ {
				orow[b] += va * row[b]
			}
		}
	}
}

// XtY returns Xᵀy for a matrix X and a column vector y of length X.rows.
func XtY(x *Dense, y []float64) []float64 { return VecMat(y, x) }

// OuterAdd adds alpha * x yᵀ into m in place.
func OuterAdd(m *Dense, alpha float64, x, y []float64) {
	if m.rows != len(x) || m.cols != len(y) {
		panic(fmt.Sprintf("la: OuterAdd %dx%d with len %d, %d", m.rows, m.cols, len(x), len(y)))
	}
	for i, xi := range x {
		if xi == 0 {
			continue
		}
		Axpy(alpha*xi, y, m.RowView(i))
	}
}

// Trace returns the sum of diagonal elements of a square matrix.
func Trace(m *Dense) float64 {
	if m.rows != m.cols {
		panic(fmt.Sprintf("la: Trace of non-square %dx%d", m.rows, m.cols))
	}
	var s float64
	for i := 0; i < m.rows; i++ {
		s += m.data[i*m.cols+i]
	}
	return s
}

// TraceMatMul returns trace(A×B) without materializing the product.
// A must be p×q and B q×p.
func TraceMatMul(a, b *Dense) float64 {
	if a.cols != b.rows || a.rows != b.cols {
		panic(fmt.Sprintf("la: TraceMatMul %dx%d × %dx%d", a.rows, a.cols, b.rows, b.cols))
	}
	var s float64
	for i := 0; i < a.rows; i++ {
		arow := a.RowView(i)
		for k, av := range arow {
			s += av * b.data[k*b.cols+i]
		}
	}
	return s
}
