package la

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// randSPD builds a random symmetric positive-definite matrix A = BᵀB + n·I.
func randSPD(r *rand.Rand, n int) *Dense {
	b := randDense(r, n, n)
	a := Gram(b)
	for i := 0; i < n; i++ {
		a.Set(i, i, a.At(i, i)+float64(n))
	}
	return a
}

func TestCholeskyReconstruction(t *testing.T) {
	r := rand.New(rand.NewSource(20))
	for _, n := range []int{1, 2, 5, 17, 40} {
		a := randSPD(r, n)
		l, err := Cholesky(a)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if !MatMul(l, l.T()).Equal(a, 1e-8) {
			t.Fatalf("n=%d: L·Lᵀ != A", n)
		}
		// L must be lower triangular.
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if l.At(i, j) != 0 {
					t.Fatalf("n=%d: L not lower triangular at (%d,%d)", n, i, j)
				}
			}
		}
	}
}

func TestCholeskyRejectsNonPD(t *testing.T) {
	a, _ := FromRows([][]float64{{1, 2}, {2, 1}}) // eigenvalues 3, -1
	if _, err := Cholesky(a); err != ErrNotPositiveDefinite {
		t.Fatalf("err = %v, want ErrNotPositiveDefinite", err)
	}
	if _, err := Cholesky(NewDense(2, 3)); err == nil {
		t.Fatal("want error for non-square input")
	}
}

func TestSolveSPD(t *testing.T) {
	r := rand.New(rand.NewSource(21))
	a := randSPD(r, 12)
	xTrue := make([]float64, 12)
	for i := range xTrue {
		xTrue[i] = r.NormFloat64()
	}
	b := MatVec(a, xTrue)
	x, err := SolveSPD(a, b)
	if err != nil {
		t.Fatal(err)
	}
	for i := range x {
		if math.Abs(x[i]-xTrue[i]) > 1e-8 {
			t.Fatalf("x[%d] = %v, want %v", i, x[i], xTrue[i])
		}
	}
}

func TestQRReconstruction(t *testing.T) {
	r := rand.New(rand.NewSource(22))
	for _, dims := range [][2]int{{5, 3}, {20, 7}, {50, 50}, {9, 1}} {
		a := randDense(r, dims[0], dims[1])
		qr, err := QRDecompose(a)
		if err != nil {
			t.Fatal(err)
		}
		rMat := qr.R()
		// Verify via the normal equations: RᵀR must equal AᵀA.
		if !Gram(rMat).Equal(Gram(a), 1e-7) {
			t.Fatalf("dims %v: RᵀR != AᵀA", dims)
		}
		// R must be upper triangular.
		for i := 0; i < dims[1]; i++ {
			for j := 0; j < i; j++ {
				if rMat.At(i, j) != 0 {
					t.Fatalf("R not upper triangular at (%d,%d)", i, j)
				}
			}
		}
	}
}

func TestQRRejectsWide(t *testing.T) {
	if _, err := QRDecompose(NewDense(2, 5)); err == nil {
		t.Fatal("want error for wide matrix")
	}
}

func TestQtVecPreservesNorm(t *testing.T) {
	r := rand.New(rand.NewSource(23))
	a := randDense(r, 30, 8)
	qr, _ := QRDecompose(a)
	b := make([]float64, 30)
	for i := range b {
		b[i] = r.NormFloat64()
	}
	y := qr.QtVec(b)
	if math.Abs(Norm2(y)-Norm2(b)) > 1e-9 {
		t.Fatalf("Qᵀ changed the norm: %v vs %v", Norm2(y), Norm2(b))
	}
}

func TestLstSqExact(t *testing.T) {
	// Square nonsingular system: least-squares solution is exact.
	r := rand.New(rand.NewSource(24))
	a := randSPD(r, 9)
	xTrue := make([]float64, 9)
	for i := range xTrue {
		xTrue[i] = r.NormFloat64()
	}
	b := MatVec(a, xTrue)
	x, err := LstSq(a, b)
	if err != nil {
		t.Fatal(err)
	}
	for i := range x {
		if math.Abs(x[i]-xTrue[i]) > 1e-7 {
			t.Fatalf("x[%d] = %v, want %v", i, x[i], xTrue[i])
		}
	}
}

func TestLstSqOverdetermined(t *testing.T) {
	// The least-squares residual must be orthogonal to the column space.
	r := rand.New(rand.NewSource(25))
	a := randDense(r, 60, 6)
	b := make([]float64, 60)
	for i := range b {
		b[i] = r.NormFloat64()
	}
	x, err := LstSq(a, b)
	if err != nil {
		t.Fatal(err)
	}
	resid := SubVec(MatVec(a, x), b)
	grad := VecMat(resid, a) // Aᵀ(Ax−b) should be ~0
	if NormInf(grad) > 1e-8 {
		t.Fatalf("normal equations violated: |Aᵀr|∞ = %v", NormInf(grad))
	}
}

func TestPowerIterationKnownEigen(t *testing.T) {
	// Diagonal matrix: dominant eigenpair is known exactly.
	a, _ := FromRows([][]float64{
		{5, 0, 0},
		{0, 2, 0},
		{0, 0, 1},
	})
	lam, v, err := PowerIteration(a, []float64{1, 1, 1}, 500, 1e-14)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(lam-5) > 1e-6 {
		t.Fatalf("eigenvalue = %v, want 5", lam)
	}
	if math.Abs(math.Abs(v[0])-1) > 1e-5 {
		t.Fatalf("eigenvector = %v, want ±e1", v)
	}
}

func TestTopKEigen(t *testing.T) {
	a, _ := FromRows([][]float64{
		{4, 1, 0},
		{1, 3, 0},
		{0, 0, 1},
	})
	vals, vecs, err := TopKEigen(a, 2, 1000, 1e-14)
	if err != nil {
		t.Fatal(err)
	}
	// Analytic eigenvalues of the 2x2 block: (7±√5)/2 ≈ 4.618, 2.382.
	want0 := (7 + math.Sqrt(5)) / 2
	want1 := (7 - math.Sqrt(5)) / 2
	if math.Abs(vals[0]-want0) > 1e-5 || math.Abs(vals[1]-want1) > 1e-5 {
		t.Fatalf("eigenvalues = %v, want [%v %v]", vals, want0, want1)
	}
	// A·v = λ·v for each pair.
	for j := 0; j < 2; j++ {
		v := vecs.Col(j)
		av := MatVec(a, v)
		for i := range v {
			if math.Abs(av[i]-vals[j]*v[i]) > 1e-4 {
				t.Fatalf("eigenpair %d violated at %d: %v vs %v", j, i, av[i], vals[j]*v[i])
			}
		}
	}
}

func TestInverse(t *testing.T) {
	r := rand.New(rand.NewSource(26))
	a := randSPD(r, 8)
	inv, err := Inverse(a)
	if err != nil {
		t.Fatal(err)
	}
	if !MatMul(a, inv).Equal(Identity(8), 1e-8) {
		t.Fatal("A·A⁻¹ != I")
	}
	// Singular matrix must be rejected.
	sing, _ := FromRows([][]float64{{1, 2}, {2, 4}})
	if _, err := Inverse(sing); err != ErrSingular {
		t.Fatalf("err = %v, want ErrSingular", err)
	}
}

// Property: SolveSPD returns a vector satisfying A·x ≈ b for random SPD A.
func TestSolveSPDProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(15)
		a := randSPD(r, n)
		b := make([]float64, n)
		for i := range b {
			b[i] = r.NormFloat64()
		}
		x, err := SolveSPD(a, b)
		if err != nil {
			return false
		}
		ax := MatVec(a, x)
		for i := range b {
			if math.Abs(ax[i]-b[i]) > 1e-6*(1+math.Abs(b[i])) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: QR solve and Cholesky (normal-equations) solve agree on
// well-conditioned overdetermined systems.
func TestQRvsNormalEquations(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(8)
		m := n*3 + r.Intn(20)
		a := randDense(r, m, n)
		b := make([]float64, m)
		for i := range b {
			b[i] = r.NormFloat64()
		}
		x1, err := LstSq(a, b)
		if err != nil {
			return true // skip ill-conditioned draws
		}
		g := Gram(a)
		x2, err := SolveSPD(g, XtY(a, b))
		if err != nil {
			return true
		}
		for i := range x1 {
			if math.Abs(x1[i]-x2[i]) > 1e-5*(1+math.Abs(x1[i])) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
