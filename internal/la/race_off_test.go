//go:build !race

package la

const raceEnabled = false
