package la

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"

	"dmml/internal/pool"
)

// Fused operator pipelines (SPOOF-lite). The DML compiler collapses
// single-consumer elementwise regions into a postfix micro-op program; this
// file interprets such programs over row tiles so a whole expression tree
// makes one pass over its inputs and materializes (at most) one output:
//
//   - Cell template: FusedCellInto evaluates the program per element into a
//     single dst matrix — no intermediate Dense per operator.
//   - RowAgg template: FusedSum / FusedRowSumsInto / FusedColSumsInto /
//     FusedMatVecInto reduce the program's virtual result without
//     materializing it at all.
//
// The interpreter is a stack machine whose slots are either scalars or
// tile-wide vectors. Vector slots live in one pool.GetF64 scratch block per
// worker, so steady-state fused evaluation allocates nothing. Dense inputs
// are loaded as zero-copy sub-slices; CSR inputs decompress a tile in
// O(nnz) time (the zero run between stored entries is a memset, never a
// per-element walk of the sparse structure), and fully zero-annihilating
// single-sparse-input aggregations skip the zero cells outright.

// FuseOpCode enumerates the micro-ops of a fused program.
type FuseOpCode uint8

const (
	// FuseLoad pushes input Arg (a conformable matrix tile or a scalar).
	FuseLoad FuseOpCode = iota
	// FuseConst pushes the literal Val.
	FuseConst
	// Binary ops: pop b, pop a, push a∘b.
	FuseAdd
	FuseSub
	FuseMul
	FuseDiv
	FusePow
	// Unary ops: pop a, push f(a).
	FuseNeg
	FuseSq
	FuseExp
	FuseLog
	FuseSqrt
	FuseAbs
	FuseSigmoid
)

// FusedOp is one instruction of a postfix fused program.
type FusedOp struct {
	Code FuseOpCode
	Arg  int     // input index for FuseLoad
	Val  float64 // literal for FuseConst
}

// FusedInput is one operand of a fused program: a scalar broadcast, a dense
// matrix, or a CSR sparse matrix. Matrix inputs must all share the logical
// rows×cols shape passed to the execution entry points.
type FusedInput struct {
	IsScalar bool
	S        float64
	D        *Dense
	C        *CSR
}

// ScalarInput wraps a broadcast scalar operand.
func ScalarInput(s float64) FusedInput { return FusedInput{IsScalar: true, S: s} }

// DenseInput wraps a dense matrix operand.
func DenseInput(m *Dense) FusedInput { return FusedInput{D: m} }

// CSRInput wraps a sparse matrix operand.
func CSRInput(c *CSR) FusedInput { return FusedInput{C: c} }

const (
	// fusedTileW is the tile width in elements: large enough to amortize
	// the per-tile dispatch switch, small enough that depth·tile scratch
	// (and the tile itself) stay L1/L2-resident.
	fusedTileW = 512
	// fuseMaxDepth bounds the operand stack; expression trees deeper than
	// this are rejected at compile time (the DML fuser never builds them).
	fuseMaxDepth = 16
)

// FuseProgram is a validated fused micro-op program ready for execution.
type FuseProgram struct {
	ops   []FusedOp
	nin   int // number of inputs
	depth int // maximum operand-stack depth
	arith int // arithmetic ops per element (excludes loads/consts)

	// backend selects interpretation vs compilation to closure kernels; the
	// compiled path caches one kernel per input-kind signature (fusedc.go).
	// Set the backend before first execution: kernelFor reads it unlocked.
	backend FuseBackend
	kmu     sync.Mutex
	kernels atomic.Pointer[map[uint64]*fusedKernel]
}

// SetBackend selects the execution backend. Call before the program's first
// execution; the dispatch path reads the field without synchronization.
func (p *FuseProgram) SetBackend(b FuseBackend) { p.backend = b }

// Backend reports the program's execution backend.
func (p *FuseProgram) Backend() FuseBackend { return p.backend }

// CompileFused validates a postfix program over nin inputs: every opcode
// must be known, stack effects must balance to exactly one result, loads
// must be in range, and the operand stack must fit the interpreter.
func CompileFused(ops []FusedOp, nin int) (*FuseProgram, error) {
	if len(ops) == 0 {
		return nil, fmt.Errorf("la: CompileFused empty program")
	}
	depth, maxDepth, arith := 0, 0, 0
	for i, op := range ops {
		switch op.Code {
		case FuseLoad:
			if op.Arg < 0 || op.Arg >= nin {
				return nil, fmt.Errorf("la: CompileFused op %d loads input %d of %d", i, op.Arg, nin)
			}
			depth++
		case FuseConst:
			depth++
		case FuseAdd, FuseSub, FuseMul, FuseDiv, FusePow:
			if depth < 2 {
				return nil, fmt.Errorf("la: CompileFused op %d: binary op on stack depth %d", i, depth)
			}
			depth--
			arith++
		case FuseNeg, FuseSq, FuseExp, FuseLog, FuseSqrt, FuseAbs, FuseSigmoid:
			if depth < 1 {
				return nil, fmt.Errorf("la: CompileFused op %d: unary op on empty stack", i)
			}
			arith++
		default:
			return nil, fmt.Errorf("la: CompileFused op %d: unknown opcode %d", i, op.Code)
		}
		if depth > maxDepth {
			maxDepth = depth
		}
	}
	if depth != 1 {
		return nil, fmt.Errorf("la: CompileFused leaves %d values on the stack, want 1", depth)
	}
	if maxDepth > fuseMaxDepth {
		return nil, fmt.Errorf("la: CompileFused stack depth %d exceeds %d", maxDepth, fuseMaxDepth)
	}
	return &FuseProgram{ops: ops, nin: nin, depth: maxDepth, arith: arith}, nil
}

// NumInputs returns the number of inputs the program loads from.
func (p *FuseProgram) NumInputs() int { return p.nin }

// ArithOps returns the arithmetic operations applied per element — the
// number of intermediate matrices a naive evaluation would materialize.
func (p *FuseProgram) ArithOps() int { return p.arith }

// fuseSlot is one stack slot: a tile-wide vector (vec != nil) or a scalar.
type fuseSlot struct {
	vec []float64
	s   float64
}

// fuseCtx is the per-worker interpreter state. Contexts are recycled
// through a sync.Pool and their vector scratch comes from pool.GetF64, so a
// steady-state fused loop performs no heap allocation.
type fuseCtx struct {
	stack   [fuseMaxDepth]fuseSlot
	scratch [fuseMaxDepth][]float64
	buf     []float64

	// Bindings for the compiled backend: closure kernels capture no per-call
	// state, so the inputs, hoisted dynamic scalars, and logical column count
	// of the current call travel through the pooled context instead.
	ins  []FusedInput
	sv   []float64
	cols int
}

var fuseCtxPool = sync.Pool{New: func() any { return new(fuseCtx) }}

// getFuseCtx hands out a per-worker interpreter context whose vector
// scratch block deliberately outlives this call: putFuseCtx releases it.
//
//dmml:owns-scratch
func getFuseCtx(depth int) *fuseCtx {
	ctx := fuseCtxPool.Get().(*fuseCtx)
	ctx.buf = pool.GetF64(depth * fusedTileW)
	for i := 0; i < depth; i++ {
		ctx.scratch[i] = ctx.buf[i*fusedTileW : (i+1)*fusedTileW]
	}
	return ctx
}

func putFuseCtx(ctx *fuseCtx) {
	pool.PutF64(ctx.buf)
	ctx.buf = nil
	for i := range ctx.scratch {
		ctx.scratch[i] = nil
	}
	for i := range ctx.stack {
		ctx.stack[i] = fuseSlot{}
	}
	ctx.ins, ctx.sv, ctx.cols = nil, nil, 0
	fuseCtxPool.Put(ctx)
}

// evalTile interprets the program over the flat element range [lo,hi) of
// the logical rows×cols space (hi-lo ≤ fusedTileW). Results of arithmetic
// ops are written into the scratch slice of their stack position, so a
// caller may pre-bind scratch[0] to the destination tile and receive the
// final vector in place.
func (p *FuseProgram) evalTile(ctx *fuseCtx, ins []FusedInput, cols, lo, hi int) fuseSlot {
	n := hi - lo
	stack := &ctx.stack
	sp := 0
	for _, op := range p.ops {
		switch op.Code {
		case FuseConst:
			stack[sp] = fuseSlot{s: op.Val}
			sp++
		case FuseLoad:
			in := &ins[op.Arg]
			switch {
			case in.IsScalar:
				stack[sp] = fuseSlot{s: in.S}
			case in.D != nil:
				stack[sp] = fuseSlot{vec: in.D.data[lo:hi]}
			default:
				dst := ctx.scratch[sp][:n]
				csrLoadRange(in.C, dst, lo, cols)
				stack[sp] = fuseSlot{vec: dst}
			}
			sp++
		case FuseAdd, FuseSub, FuseMul, FuseDiv, FusePow:
			b := stack[sp-1]
			a := stack[sp-2]
			sp -= 2
			if a.vec == nil && b.vec == nil {
				stack[sp] = fuseSlot{s: fuseScalarBin(op.Code, a.s, b.s)}
			} else {
				dst := ctx.scratch[sp][:n]
				fuseBinInto(op.Code, dst, a, b)
				stack[sp] = fuseSlot{vec: dst}
			}
			sp++
		default: // unary
			a := stack[sp-1]
			if a.vec == nil {
				stack[sp-1] = fuseSlot{s: fuseScalarUn(op.Code, a.s)}
			} else {
				dst := ctx.scratch[sp-1][:n]
				fuseUnInto(op.Code, dst, a.vec)
				stack[sp-1] = fuseSlot{vec: dst}
			}
		}
	}
	return stack[0]
}

// csrLoadRange decompresses the flat range [lo, lo+len(dst)) of a CSR
// matrix into dst: one memset plus an O(nnz-in-range) scatter, so the zero
// runs between stored entries cost a clear rather than per-element work.
//dmml:noalloc
func csrLoadRange(c *CSR, dst []float64, lo, cols int) {
	for i := range dst {
		dst[i] = 0
	}
	hi := lo + len(dst)
	r1 := (hi + cols - 1) / cols
	for r := lo / cols; r < r1; r++ {
		base := r * cols
		for p := c.rowPtr[r]; p < c.rowPtr[r+1]; p++ {
			at := base + c.colIdx[p]
			if at < lo {
				continue
			}
			if at >= hi {
				break
			}
			dst[at-lo] = c.vals[p]
		}
	}
}

// fusedCheckInputs validates an input list against the program and the
// logical shape. Branch order matters: an ambiguous input that sets both D
// and C must be rejected before the dense branch can win silently and
// report a misleading dense-shape mismatch for what is really a malformed
// operand — the compiled backend picks its load kernels by the same
// kind test, so ambiguity has to die here.
func fusedCheckInputs(p *FuseProgram, ins []FusedInput, rows, cols int) {
	if len(ins) != p.nin {
		panic(fmt.Sprintf("la: fused program wants %d inputs, got %d", p.nin, len(ins)))
	}
	for i, in := range ins {
		switch {
		case in.IsScalar:
		case in.D != nil && in.C != nil:
			panic(fmt.Sprintf("la: fused input %d sets both dense and sparse operands", i))
		case in.D != nil:
			if in.D.rows != rows || in.D.cols != cols {
				panic(fmt.Sprintf("la: fused dense input %d is %dx%d, want %dx%d", i, in.D.rows, in.D.cols, rows, cols))
			}
		case in.C != nil:
			if in.C.rows != rows || in.C.cols != cols {
				panic(fmt.Sprintf("la: fused sparse input %d is %dx%d, want %dx%d", i, in.C.rows, in.C.cols, rows, cols))
			}
		default:
			panic(fmt.Sprintf("la: fused input %d is neither scalar nor matrix", i))
		}
	}
}

// FusedCell evaluates the program elementwise into a new rows×cols matrix.
func FusedCell(p *FuseProgram, ins []FusedInput, rows, cols int) *Dense {
	return FusedCellInto(NewDense(rows, cols), p, ins)
}

// FusedCellInto evaluates the program elementwise into out (overwriting it)
// and returns out. The whole expression tree runs as one pass: each tile of
// the output is produced by interpreting the micro-ops over stack scratch,
// with the final operation writing straight into out's storage. Large
// outputs split their tile sweep across the worker pool; the serial regime
// allocates nothing.
func FusedCellInto(out *Dense, p *FuseProgram, ins []FusedInput) *Dense {
	rows, cols := out.rows, out.cols
	fusedCheckInputs(p, ins, rows, cols)
	k, sv := p.prepare(ins)
	t := mFusedCellTimer
	if k != nil {
		t = mFusedCellCTimer
		if k.flatCell != nil {
			mFusedFlat.Inc()
		}
	}
	sw := t.Start()
	defer sw.Stop()
	mFusedCellCalls.Inc()
	total := rows * cols
	mFlops.Add(int64(p.arith) * int64(total))
	work := total * (p.arith + 1)
	if work < parallelThreshold || pool.SerialNow() {
		fusedCellRange(p, k, ins, sv, out.data, cols, 0, total)
	} else {
		nt := (total + fusedTileW - 1) / fusedTileW
		pool.Do(nt, pool.Grain(nt, fusedTileW*(p.arith+1)), func(_, t0, t1 int) {
			hi := t1 * fusedTileW
			if hi > total {
				hi = total
			}
			fusedCellRange(p, k, ins, sv, out.data, cols, t0*fusedTileW, hi)
		})
	}
	p.release(sv)
	return out
}

func fusedCellRange(p *FuseProgram, k *fusedKernel, ins []FusedInput, sv, dstAll []float64, cols, lo, hi int) {
	if k != nil && k.flatCell != nil {
		// Fully specialized template: one pass, no closure chain, no stack
		// scratch — only the tile-wide buffer the sigmoid templates stage
		// their affine argument in.
		scr := pool.GetF64(fusedTileW)
		k.flatCell(ins, sv, dstAll[lo:hi], scr, lo, hi)
		pool.PutF64(scr)
		return
	}
	ctx := getFuseCtx(p.depth)
	ctx.ins, ctx.sv, ctx.cols = ins, sv, cols
	for at := lo; at < hi; at += fusedTileW {
		end := min(at+fusedTileW, hi)
		dst := dstAll[at:end]
		// Bind stack position 0 to the output tile: the final op of the
		// program lands its vector there, so no copy-out pass is needed.
		ctx.scratch[0] = dst
		res := fuseEvalTile(p, k, ctx, ins, cols, at, end)
		switch {
		case res.vec == nil:
			for i := range dst {
				dst[i] = res.s
			}
		case &res.vec[0] != &dst[0]:
			copy(dst, res.vec) // pure-load program: result aliases an input
		}
	}
	putFuseCtx(ctx)
}

// fuseEvalTile produces the program's value over [lo,hi): one direct call
// into the compiled closure tree when a kernel is bound, else a trip
// through the micro-op interpreter. Compiled kernels always produce a
// vector (scalar-rooted programs are refused at compile time).
func fuseEvalTile(p *FuseProgram, k *fusedKernel, ctx *fuseCtx, ins []FusedInput, cols, lo, hi int) fuseSlot {
	if k != nil {
		return fuseSlot{vec: k.root(ctx, lo, hi)}
	}
	return p.evalTile(ctx, ins, cols, lo, hi)
}

// zeroAnnihilatingCSR reports whether the program has exactly one matrix
// input, that input is CSR, and the program maps its zero cells to zero —
// in which case sum-style aggregations only need to visit stored non-zeros.
func zeroAnnihilatingCSR(p *FuseProgram, ins []FusedInput) (int, bool) {
	matIdx := -1
	for i, in := range ins {
		if in.IsScalar {
			continue
		}
		if in.C == nil || matIdx >= 0 {
			return -1, false
		}
		matIdx = i
	}
	if matIdx < 0 {
		return -1, false
	}
	// Abstractly evaluate the program at a zero cell of the sparse input.
	var stack [fuseMaxDepth]float64
	sp := 0
	for _, op := range p.ops {
		switch op.Code {
		case FuseConst:
			stack[sp] = op.Val
			sp++
		case FuseLoad:
			if op.Arg == matIdx {
				stack[sp] = 0
			} else {
				stack[sp] = ins[op.Arg].S
			}
			sp++
		case FuseAdd, FuseSub, FuseMul, FuseDiv, FusePow:
			sp--
			stack[sp-1] = fuseScalarBin(op.Code, stack[sp-1], stack[sp])
		default:
			stack[sp-1] = fuseScalarUn(op.Code, stack[sp-1])
		}
	}
	return matIdx, stack[0] == 0
}

// FusedSum reduces the program's virtual rows×cols result to its scalar sum
// without materializing it. Parallel runs accumulate per-worker partials in
// pooled scratch; a zero-annihilating program over a single CSR input skips
// the zero cells entirely and only visits stored non-zeros.
func FusedSum(p *FuseProgram, ins []FusedInput, rows, cols int) float64 {
	fusedCheckInputs(p, ins, rows, cols)
	total := rows * cols
	if matIdx, ok := zeroAnnihilatingCSR(p, ins); ok {
		// Re-point the sparse input at a flat dense view of its stored
		// values: the program runs over nnz elements instead of rows·cols,
		// and the skipped zero cells contribute exactly 0 to the sum. The
		// rewrite happens before kernel selection, so the compiled backend
		// specializes for the dense shadow and still gets the skip.
		c := ins[matIdx].C
		if c.NNZ() == 0 {
			return 0
		}
		mFusedSparseSkips.Inc()
		shadow := make([]FusedInput, len(ins))
		copy(shadow, ins)
		shadow[matIdx] = FusedInput{D: &Dense{rows: 1, cols: c.NNZ(), data: c.vals}}
		ins, cols, total = shadow, c.NNZ(), c.NNZ()
	}
	k, sv := p.prepare(ins)
	t := mFusedAggTimer
	if k != nil {
		t = mFusedAggCTimer
		if k.flatSum != nil {
			mFusedFlat.Inc()
		}
	}
	sw := t.Start()
	defer sw.Stop()
	mFusedAggCalls.Inc()
	mFlops.Add(int64(p.arith+1) * int64(total))
	work := total * (p.arith + 1)
	if work < parallelThreshold || pool.SerialNow() {
		s := fusedSumRange(p, k, ins, sv, cols, 0, total)
		p.release(sv)
		return s
	}
	// Per-slot scalar partials, stride 8 to keep workers off a shared line.
	partials := pool.GetF64Zeroed(pool.Workers() * 8)
	nt := (total + fusedTileW - 1) / fusedTileW
	pool.Do(nt, pool.Grain(nt, fusedTileW*(p.arith+1)), func(slot, t0, t1 int) {
		hi := t1 * fusedTileW
		if hi > total {
			hi = total
		}
		partials[slot*8] += fusedSumRange(p, k, ins, sv, cols, t0*fusedTileW, hi)
	})
	var s float64
	for i := 0; i < len(partials); i += 8 {
		s += partials[i]
	}
	pool.PutF64(partials)
	p.release(sv)
	return s
}

func fusedSumRange(p *FuseProgram, k *fusedKernel, ins []FusedInput, sv []float64, cols, lo, hi int) float64 {
	if k != nil && k.flatSum != nil {
		return k.flatSum(ins, sv, lo, hi)
	}
	ctx := getFuseCtx(p.depth)
	ctx.ins, ctx.sv, ctx.cols = ins, sv, cols
	var s float64
	for at := lo; at < hi; at += fusedTileW {
		end := min(at+fusedTileW, hi)
		res := fuseEvalTile(p, k, ctx, ins, cols, at, end)
		if res.vec == nil {
			s += res.s * float64(end-at)
		} else {
			s += fuseSumVec(res.vec)
		}
	}
	putFuseCtx(ctx)
	return s
}

// FusedRowSumsInto reduces each virtual row of the program's result to its
// sum, writing dst[i] for row i. dst must have length rows. Rows split
// across the pool with disjoint writes; nothing is materialized.
func FusedRowSumsInto(dst []float64, p *FuseProgram, ins []FusedInput, rows, cols int) []float64 {
	return fusedRowVec(dst, p, ins, rows, cols, nil)
}

// FusedMatVecInto computes (program result) × v into dst without
// materializing the matrix. dst must have length rows and v length cols.
func FusedMatVecInto(dst []float64, p *FuseProgram, ins []FusedInput, rows, cols int, v []float64) []float64 {
	if len(v) != cols {
		panic(fmt.Sprintf("la: FusedMatVecInto v len %d for %d cols", len(v), cols))
	}
	return fusedRowVec(dst, p, ins, rows, cols, v)
}

func fusedRowVec(dst []float64, p *FuseProgram, ins []FusedInput, rows, cols int, v []float64) []float64 {
	fusedCheckInputs(p, ins, rows, cols)
	if len(dst) != rows {
		panic(fmt.Sprintf("la: fused row aggregate dst len %d for %d rows", len(dst), rows))
	}
	k, sv := p.prepare(ins)
	t := mFusedAggTimer
	if k != nil {
		t = mFusedAggCTimer
		if k.flatRow != nil {
			mFusedFlat.Inc()
		}
	}
	sw := t.Start()
	defer sw.Stop()
	mFusedAggCalls.Inc()
	mFlops.Add(int64(p.arith+1) * int64(rows) * int64(cols))
	work := rows * cols * (p.arith + 1)
	if work < parallelThreshold || rows < 2 || pool.SerialNow() {
		fusedRowVecRange(p, k, ins, sv, cols, v, dst, 0, rows)
	} else {
		pool.Do(rows, pool.Grain(rows, cols*(p.arith+1)), func(_, r0, r1 int) {
			fusedRowVecRange(p, k, ins, sv, cols, v, dst, r0, r1)
		})
	}
	p.release(sv)
	return dst
}

// fusedRowVecRange fills dst[r0:r1) with per-row sums (v == nil) or row·v
// dot products. Narrow matrices batch several rows per interpreted tile so
// dispatch overhead amortizes; wide rows chunk along columns instead.
func fusedRowVecRange(p *FuseProgram, k *fusedKernel, ins []FusedInput, sv []float64, cols int, v, dst []float64, r0, r1 int) {
	if k != nil && k.flatRow != nil {
		k.flatRow(ins, sv, v, dst, cols, r0, r1)
		return
	}
	ctx := getFuseCtx(p.depth)
	ctx.ins, ctx.sv, ctx.cols = ins, sv, cols
	if cols <= fusedTileW {
		rowsPerTile := fusedTileW / cols
		if rowsPerTile < 1 {
			rowsPerTile = 1
		}
		for r := r0; r < r1; r += rowsPerTile {
			rEnd := min(r+rowsPerTile, r1)
			res := fuseEvalTile(p, k, ctx, ins, cols, r*cols, rEnd*cols)
			if res.vec == nil {
				base := res.s * float64(cols)
				if v != nil {
					base = res.s * fuseSumVec(v)
				}
				for i := r; i < rEnd; i++ {
					dst[i] = base
				}
			} else {
				for i := r; i < rEnd; i++ {
					seg := res.vec[(i-r)*cols : (i-r+1)*cols]
					if v == nil {
						dst[i] = fuseSumVec(seg)
					} else {
						dst[i] = Dot(seg, v)
					}
				}
			}
		}
	} else {
		for i := r0; i < r1; i++ {
			var s float64
			for c0 := 0; c0 < cols; c0 += fusedTileW {
				c1 := min(c0+fusedTileW, cols)
				res := fuseEvalTile(p, k, ctx, ins, cols, i*cols+c0, i*cols+c1)
				switch {
				case res.vec == nil && v == nil:
					s += res.s * float64(c1-c0)
				case res.vec == nil:
					s += res.s * fuseSumVec(v[c0:c1])
				case v == nil:
					s += fuseSumVec(res.vec)
				default:
					s += Dot(res.vec, v[c0:c1])
				}
			}
			dst[i] = s
		}
	}
	putFuseCtx(ctx)
}

// FusedColSumsInto reduces each virtual column of the program's result to
// its sum. dst must have length cols. Parallel runs merge per-worker
// partial vectors drawn from pooled scratch.
func FusedColSumsInto(dst []float64, p *FuseProgram, ins []FusedInput, rows, cols int) []float64 {
	fusedCheckInputs(p, ins, rows, cols)
	if len(dst) != cols {
		panic(fmt.Sprintf("la: FusedColSumsInto dst len %d for %d cols", len(dst), cols))
	}
	k, sv := p.prepare(ins)
	t := mFusedAggTimer
	if k != nil {
		t = mFusedAggCTimer
	}
	sw := t.Start()
	defer sw.Stop()
	mFusedAggCalls.Inc()
	mFlops.Add(int64(p.arith+1) * int64(rows) * int64(cols))
	for j := range dst {
		dst[j] = 0
	}
	work := rows * cols * (p.arith + 1)
	if work < parallelThreshold || rows < 2 || pool.SerialNow() {
		fusedColSumsRange(p, k, ins, sv, cols, dst, 0, rows)
		p.release(sv)
		return dst
	}
	partials := make([][]float64, pool.Workers())
	partials[0] = dst
	pool.Do(rows, pool.Grain(rows, cols*(p.arith+1)), func(slot, r0, r1 int) {
		acc := partials[slot]
		if acc == nil {
			acc = pool.GetF64Zeroed(cols)
			partials[slot] = acc
		}
		fusedColSumsRange(p, k, ins, sv, cols, acc, r0, r1)
	})
	for _, part := range partials[1:] {
		if part != nil {
			Axpy(1, part, dst)
			pool.PutF64(part)
		}
	}
	p.release(sv)
	return dst
}

func fusedColSumsRange(p *FuseProgram, k *fusedKernel, ins []FusedInput, sv []float64, cols int, acc []float64, r0, r1 int) {
	ctx := getFuseCtx(p.depth)
	ctx.ins, ctx.sv, ctx.cols = ins, sv, cols
	if cols <= fusedTileW {
		rowsPerTile := fusedTileW / cols
		if rowsPerTile < 1 {
			rowsPerTile = 1
		}
		for r := r0; r < r1; r += rowsPerTile {
			rEnd := min(r+rowsPerTile, r1)
			res := fuseEvalTile(p, k, ctx, ins, cols, r*cols, rEnd*cols)
			if res.vec == nil {
				add := res.s * float64(rEnd-r)
				for j := range acc {
					acc[j] += add
				}
			} else {
				for i := 0; i < rEnd-r; i++ {
					Axpy(1, res.vec[i*cols:(i+1)*cols], acc)
				}
			}
		}
	} else {
		for i := r0; i < r1; i++ {
			for c0 := 0; c0 < cols; c0 += fusedTileW {
				c1 := min(c0+fusedTileW, cols)
				res := fuseEvalTile(p, k, ctx, ins, cols, i*cols+c0, i*cols+c1)
				if res.vec == nil {
					for j := c0; j < c1; j++ {
						acc[j] += res.s
					}
				} else {
					Axpy(1, res.vec, acc[c0:c1])
				}
			}
		}
	}
	putFuseCtx(ctx)
}

// fuseSumVec sums a tile with a 4-way unrolled accumulator chain.
//dmml:noalloc
func fuseSumVec(x []float64) float64 {
	var s, s0, s1, s2, s3 float64
	n := len(x)
	i := 0
	for ; i+4 <= n; i += 4 {
		s0 += x[i]
		s1 += x[i+1]
		s2 += x[i+2]
		s3 += x[i+3]
	}
	for ; i < n; i++ {
		s += x[i]
	}
	return s + s0 + s1 + s2 + s3
}

//dmml:noalloc
func fuseScalarBin(code FuseOpCode, a, b float64) float64 {
	switch code {
	case FuseAdd:
		return a + b
	case FuseSub:
		return a - b
	case FuseMul:
		return a * b
	case FuseDiv:
		return a / b
	default: // FusePow
		return math.Pow(a, b)
	}
}

//dmml:noalloc
func fuseScalarUn(code FuseOpCode, a float64) float64 {
	switch code {
	case FuseNeg:
		return -a
	case FuseSq:
		return a * a
	case FuseExp:
		return math.Exp(a)
	case FuseLog:
		return math.Log(a)
	case FuseSqrt:
		return math.Sqrt(a)
	case FuseAbs:
		return math.Abs(a)
	default: // FuseSigmoid
		return fuseSigmoid(a)
	}
}

// fuseSigmoid mirrors opt.Sigmoid's numerically stable form exactly so
// fused and unfused evaluation agree bit for bit (la cannot import opt).
//dmml:noalloc
func fuseSigmoid(m float64) float64 {
	if m >= 0 {
		return 1 / (1 + math.Exp(-m))
	}
	e := math.Exp(m)
	return e / (1 + e)
}

// Tile loop kernels. Each named function is one micro-op's inner loop over
// a tile; the interpreter's fuseBinInto/fuseUnInto switches and the compiled
// backend's closure constructors both dispatch to these, so the two
// execution paths are bit-identical by construction. The hot vector-vector
// and vector-scalar adds/subs/muls are 4-way unrolled like Dot; dst may
// alias an operand (in-place update of the same stack position).

//dmml:noalloc
func vvAdd(dst, x, y []float64) {
	x, y = x[:len(dst)], y[:len(dst)]
	i := 0
	for ; i+4 <= len(dst); i += 4 {
		dst[i] = x[i] + y[i]
		dst[i+1] = x[i+1] + y[i+1]
		dst[i+2] = x[i+2] + y[i+2]
		dst[i+3] = x[i+3] + y[i+3]
	}
	for ; i < len(dst); i++ {
		dst[i] = x[i] + y[i]
	}
}

//dmml:noalloc
func vvSub(dst, x, y []float64) {
	x, y = x[:len(dst)], y[:len(dst)]
	i := 0
	for ; i+4 <= len(dst); i += 4 {
		dst[i] = x[i] - y[i]
		dst[i+1] = x[i+1] - y[i+1]
		dst[i+2] = x[i+2] - y[i+2]
		dst[i+3] = x[i+3] - y[i+3]
	}
	for ; i < len(dst); i++ {
		dst[i] = x[i] - y[i]
	}
}

//dmml:noalloc
func vvMul(dst, x, y []float64) {
	x, y = x[:len(dst)], y[:len(dst)]
	i := 0
	for ; i+4 <= len(dst); i += 4 {
		dst[i] = x[i] * y[i]
		dst[i+1] = x[i+1] * y[i+1]
		dst[i+2] = x[i+2] * y[i+2]
		dst[i+3] = x[i+3] * y[i+3]
	}
	for ; i < len(dst); i++ {
		dst[i] = x[i] * y[i]
	}
}

//dmml:noalloc
func vvDiv(dst, x, y []float64) {
	x, y = x[:len(dst)], y[:len(dst)]
	for i := range dst {
		dst[i] = x[i] / y[i]
	}
}

//dmml:noalloc
func vvPow(dst, x, y []float64) {
	x, y = x[:len(dst)], y[:len(dst)]
	for i := range dst {
		dst[i] = math.Pow(x[i], y[i])
	}
}

//dmml:noalloc
func vsAdd(dst, x []float64, s float64) {
	x = x[:len(dst)]
	i := 0
	for ; i+4 <= len(dst); i += 4 {
		dst[i] = x[i] + s
		dst[i+1] = x[i+1] + s
		dst[i+2] = x[i+2] + s
		dst[i+3] = x[i+3] + s
	}
	for ; i < len(dst); i++ {
		dst[i] = x[i] + s
	}
}

//dmml:noalloc
func vsSub(dst, x []float64, s float64) {
	x = x[:len(dst)]
	for i := range dst {
		dst[i] = x[i] - s
	}
}

//dmml:noalloc
func vsMul(dst, x []float64, s float64) {
	x = x[:len(dst)]
	i := 0
	for ; i+4 <= len(dst); i += 4 {
		dst[i] = x[i] * s
		dst[i+1] = x[i+1] * s
		dst[i+2] = x[i+2] * s
		dst[i+3] = x[i+3] * s
	}
	for ; i < len(dst); i++ {
		dst[i] = x[i] * s
	}
}

//dmml:noalloc
func vsDiv(dst, x []float64, s float64) {
	x = x[:len(dst)]
	for i := range dst {
		dst[i] = x[i] / s
	}
}

//dmml:noalloc
func vsPow(dst, x []float64, s float64) {
	x = x[:len(dst)]
	for i := range dst {
		dst[i] = math.Pow(x[i], s)
	}
}

// svAdd and svMul delegate to their vs twins: IEEE addition and
// multiplication are commutative bit for bit, so s∘y and y∘s agree exactly.

//dmml:noalloc
func svAdd(dst []float64, s float64, y []float64) { vsAdd(dst, y, s) }

//dmml:noalloc
func svMul(dst []float64, s float64, y []float64) { vsMul(dst, y, s) }

//dmml:noalloc
func svSub(dst []float64, s float64, y []float64) {
	y = y[:len(dst)]
	for i := range dst {
		dst[i] = s - y[i]
	}
}

//dmml:noalloc
func svDiv(dst []float64, s float64, y []float64) {
	y = y[:len(dst)]
	for i := range dst {
		dst[i] = s / y[i]
	}
}

//dmml:noalloc
func svPow(dst []float64, s float64, y []float64) {
	y = y[:len(dst)]
	for i := range dst {
		dst[i] = math.Pow(s, y[i])
	}
}

//dmml:noalloc
func uNeg(dst, x []float64) {
	x = x[:len(dst)]
	i := 0
	for ; i+4 <= len(dst); i += 4 {
		dst[i] = -x[i]
		dst[i+1] = -x[i+1]
		dst[i+2] = -x[i+2]
		dst[i+3] = -x[i+3]
	}
	for ; i < len(dst); i++ {
		dst[i] = -x[i]
	}
}

//dmml:noalloc
func uSq(dst, x []float64) {
	x = x[:len(dst)]
	i := 0
	for ; i+4 <= len(dst); i += 4 {
		dst[i] = x[i] * x[i]
		dst[i+1] = x[i+1] * x[i+1]
		dst[i+2] = x[i+2] * x[i+2]
		dst[i+3] = x[i+3] * x[i+3]
	}
	for ; i < len(dst); i++ {
		dst[i] = x[i] * x[i]
	}
}

//dmml:noalloc
func uExp(dst, x []float64) {
	x = x[:len(dst)]
	for i := range dst {
		dst[i] = math.Exp(x[i])
	}
}

//dmml:noalloc
func uLog(dst, x []float64) {
	x = x[:len(dst)]
	for i := range dst {
		dst[i] = math.Log(x[i])
	}
}

//dmml:noalloc
func uSqrt(dst, x []float64) {
	x = x[:len(dst)]
	for i := range dst {
		dst[i] = math.Sqrt(x[i])
	}
}

//dmml:noalloc
func uAbs(dst, x []float64) {
	x = x[:len(dst)]
	for i := range dst {
		dst[i] = math.Abs(x[i])
	}
}

//dmml:noalloc
func uSigmoid(dst, x []float64) {
	x = x[:len(dst)]
	for i := range dst {
		dst[i] = fuseSigmoid(x[i])
	}
}

// fuseBinInto applies a binary micro-op over a tile by dispatching to the
// named loop kernels above.
//dmml:noalloc
func fuseBinInto(code FuseOpCode, dst []float64, a, b fuseSlot) {
	switch {
	case a.vec != nil && b.vec != nil:
		switch code {
		case FuseAdd:
			vvAdd(dst, a.vec, b.vec)
		case FuseSub:
			vvSub(dst, a.vec, b.vec)
		case FuseMul:
			vvMul(dst, a.vec, b.vec)
		case FuseDiv:
			vvDiv(dst, a.vec, b.vec)
		default: // FusePow
			vvPow(dst, a.vec, b.vec)
		}
	case a.vec != nil:
		switch code {
		case FuseAdd:
			vsAdd(dst, a.vec, b.s)
		case FuseSub:
			vsSub(dst, a.vec, b.s)
		case FuseMul:
			vsMul(dst, a.vec, b.s)
		case FuseDiv:
			vsDiv(dst, a.vec, b.s)
		default: // FusePow
			vsPow(dst, a.vec, b.s)
		}
	default: // scalar ∘ vector
		switch code {
		case FuseAdd:
			svAdd(dst, a.s, b.vec)
		case FuseSub:
			svSub(dst, a.s, b.vec)
		case FuseMul:
			svMul(dst, a.s, b.vec)
		case FuseDiv:
			svDiv(dst, a.s, b.vec)
		default: // FusePow
			svPow(dst, a.s, b.vec)
		}
	}
}

// fuseUnInto applies a unary micro-op over a tile; dst may alias x.
//dmml:noalloc
func fuseUnInto(code FuseOpCode, dst, x []float64) {
	switch code {
	case FuseNeg:
		uNeg(dst, x)
	case FuseSq:
		uSq(dst, x)
	case FuseExp:
		uExp(dst, x)
	case FuseLog:
		uLog(dst, x)
	case FuseSqrt:
		uSqrt(dst, x)
	case FuseAbs:
		uAbs(dst, x)
	default: // FuseSigmoid
		uSigmoid(dst, x)
	}
}
