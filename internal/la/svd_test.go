package la

import (
	"math"
	"math/rand"
	"testing"
)

func TestSVDReconstruction(t *testing.T) {
	r := rand.New(rand.NewSource(500))
	for _, dims := range [][2]int{{5, 3}, {20, 8}, {12, 12}, {30, 1}} {
		a := randDense(r, dims[0], dims[1])
		res, err := SVD(a, 0, 0)
		if err != nil {
			t.Fatal(err)
		}
		back, err := res.Reconstruct(dims[1])
		if err != nil {
			t.Fatal(err)
		}
		if !back.Equal(a, 1e-8) {
			t.Fatalf("dims %v: U S Vᵀ != A", dims)
		}
		// Singular values descending and non-negative.
		for i := range res.S {
			if res.S[i] < 0 {
				t.Fatalf("negative singular value %v", res.S[i])
			}
			if i > 0 && res.S[i] > res.S[i-1]+1e-12 {
				t.Fatalf("singular values not sorted: %v", res.S)
			}
		}
		// U has orthonormal columns, V orthogonal.
		if !Gram(res.U).Equal(Identity(dims[1]), 1e-8) {
			t.Fatalf("dims %v: UᵀU != I", dims)
		}
		if !Gram(res.V).Equal(Identity(dims[1]), 1e-8) {
			t.Fatalf("dims %v: VᵀV != I", dims)
		}
	}
}

func TestSVDMatchesEigenOfGram(t *testing.T) {
	// σᵢ² are the eigenvalues of AᵀA.
	r := rand.New(rand.NewSource(501))
	a := randDense(r, 40, 5)
	res, err := SVD(a, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	vals, _, err := TopKEigen(Gram(a), 5, 2000, 1e-13)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if math.Abs(res.S[i]*res.S[i]-vals[i]) > 1e-6*(1+vals[i]) {
			t.Fatalf("σ²[%d] = %v, eig %v", i, res.S[i]*res.S[i], vals[i])
		}
	}
}

func TestSVDLowRank(t *testing.T) {
	// Build an exactly rank-2 matrix and verify rank detection + truncation.
	r := rand.New(rand.NewSource(502))
	u := randDense(r, 30, 2)
	v := randDense(r, 2, 6)
	a := MatMul(u, v)
	res, err := SVD(a, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if rank := res.Rank(1e-9); rank != 2 {
		t.Fatalf("rank = %d, want 2", rank)
	}
	back, err := res.Reconstruct(2)
	if err != nil {
		t.Fatal(err)
	}
	if !back.Equal(a, 1e-8) {
		t.Fatal("rank-2 truncation lost information on a rank-2 matrix")
	}
}

func TestSVDValidation(t *testing.T) {
	if _, err := SVD(NewDense(2, 5), 0, 0); err == nil {
		t.Fatal("want wide-matrix error")
	}
	res, _ := SVD(NewDense(3, 2), 0, 0)
	if _, err := res.Reconstruct(0); err == nil {
		t.Fatal("want rank error")
	}
	if _, err := res.Reconstruct(3); err == nil {
		t.Fatal("want rank error")
	}
	if res.Rank(1e-9) != 0 {
		t.Fatal("zero matrix should have rank 0")
	}
}
