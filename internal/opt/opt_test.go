package opt

import (
	"math"
	"math/rand"
	"testing"

	"dmml/internal/la"
	"dmml/internal/pool"
)

// synthRegression builds y = X·wTrue + noise.
func synthRegression(r *rand.Rand, n, d int, noise float64) (*la.Dense, []float64, []float64) {
	x := la.NewDense(n, d)
	wTrue := make([]float64, d)
	for j := range wTrue {
		wTrue[j] = r.NormFloat64()
	}
	for i := 0; i < n; i++ {
		for j := 0; j < d; j++ {
			x.Set(i, j, r.NormFloat64())
		}
	}
	y := la.MatVec(x, wTrue)
	for i := range y {
		y[i] += noise * r.NormFloat64()
	}
	return x, y, wTrue
}

// synthClassification builds a linearly separable ±1 problem with margin.
func synthClassification(r *rand.Rand, n, d int) (*la.Dense, []float64, []float64) {
	x := la.NewDense(n, d)
	wTrue := make([]float64, d)
	for j := range wTrue {
		wTrue[j] = r.NormFloat64()
	}
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		for j := 0; j < d; j++ {
			x.Set(i, j, r.NormFloat64())
		}
		if la.Dot(x.RowView(i), wTrue) >= 0 {
			y[i] = 1
		} else {
			y[i] = -1
		}
	}
	return x, y, wTrue
}

func TestLossValuesAndDerivs(t *testing.T) {
	cases := []struct {
		loss Loss
		m, y float64
		want float64
	}{
		{Squared{}, 3, 1, 2},
		{Squared{}, 1, 1, 0},
		{Logistic{}, 0, 1, math.Log(2)},
		{Hinge{}, 0.5, 1, 0.5},
		{Hinge{}, 2, 1, 0},
	}
	for _, c := range cases {
		if got := c.loss.Value(c.m, c.y); math.Abs(got-c.want) > 1e-12 {
			t.Fatalf("%s.Value(%v,%v) = %v, want %v", c.loss.Name(), c.m, c.y, got, c.want)
		}
	}
	// Numeric derivative check for smooth losses.
	for _, loss := range []Loss{Squared{}, Logistic{}} {
		for _, m := range []float64{-2, -0.1, 0, 0.5, 3} {
			for _, y := range []float64{-1, 1} {
				const h = 1e-6
				num := (loss.Value(m+h, y) - loss.Value(m-h, y)) / (2 * h)
				if got := loss.Deriv(m, y); math.Abs(got-num) > 1e-5 {
					t.Fatalf("%s.Deriv(%v,%v) = %v, numeric %v", loss.Name(), m, y, got, num)
				}
			}
		}
	}
	// Logistic extremes must not overflow.
	if v := (Logistic{}).Value(1e4, 1); v != 0 {
		t.Fatalf("logistic extreme value = %v", v)
	}
	if v := (Logistic{}).Value(-1e4, 1); math.IsInf(v, 0) || v < 9000 {
		t.Fatalf("logistic extreme value = %v", v)
	}
}

func TestSigmoid(t *testing.T) {
	if got := Sigmoid(0); got != 0.5 {
		t.Fatalf("Sigmoid(0) = %v", got)
	}
	if got := Sigmoid(100); got <= 0.999 {
		t.Fatalf("Sigmoid(100) = %v", got)
	}
	if got := Sigmoid(-100); got >= 0.001 {
		t.Fatalf("Sigmoid(-100) = %v", got)
	}
	// Symmetry: σ(−m) = 1 − σ(m).
	for _, m := range []float64{-3, -0.5, 0.2, 5} {
		if math.Abs(Sigmoid(-m)-(1-Sigmoid(m))) > 1e-12 {
			t.Fatalf("sigmoid symmetry broken at %v", m)
		}
	}
}

func TestLossAndGradientNumeric(t *testing.T) {
	r := rand.New(rand.NewSource(60))
	x, y, _ := synthRegression(r, 40, 5, 0.1)
	data := DenseData{x}
	w := make([]float64, 5)
	for j := range w {
		w[j] = r.NormFloat64()
	}
	for _, loss := range []Loss{Squared{}, Logistic{}} {
		yy := y
		if loss.Name() == "logistic" {
			yy = make([]float64, len(y))
			for i := range yy {
				yy[i] = 1
				if y[i] < 0 {
					yy[i] = -1
				}
			}
		}
		_, grad := LossAndGradient(data, yy, w, loss, 0.3)
		const h = 1e-6
		for j := range w {
			wp, wm := la.CloneVec(w), la.CloneVec(w)
			wp[j] += h
			wm[j] -= h
			lp, _ := LossAndGradient(data, yy, wp, loss, 0.3)
			lm, _ := LossAndGradient(data, yy, wm, loss, 0.3)
			num := (lp - lm) / (2 * h)
			if math.Abs(grad[j]-num) > 1e-4 {
				t.Fatalf("%s grad[%d] = %v, numeric %v", loss.Name(), j, grad[j], num)
			}
		}
	}
}

func TestGradientDescentRecoversLeastSquares(t *testing.T) {
	r := rand.New(rand.NewSource(61))
	x, y, _ := synthRegression(r, 300, 6, 0.01)
	res, err := GradientDescent(DenseData{x}, y, Squared{}, GDConfig{Step: 0.1, MaxIter: 500, Tol: 1e-12, Backtracking: true})
	if err != nil {
		t.Fatal(err)
	}
	wLS, err := la.LstSq(x, y)
	if err != nil {
		t.Fatal(err)
	}
	for j := range wLS {
		if math.Abs(res.W[j]-wLS[j]) > 1e-3 {
			t.Fatalf("GD w[%d] = %v, LS %v", j, res.W[j], wLS[j])
		}
	}
	// Loss must be monotone non-increasing with backtracking.
	for i := 1; i < len(res.History); i++ {
		if res.History[i] > res.History[i-1]+1e-12 {
			t.Fatalf("loss increased at %d: %v -> %v", i, res.History[i-1], res.History[i])
		}
	}
}

func TestGradientDescentBacktrackingTamesHugeStep(t *testing.T) {
	r := rand.New(rand.NewSource(62))
	x, y, _ := synthRegression(r, 100, 4, 0.01)
	res, err := GradientDescent(DenseData{x}, y, Squared{}, GDConfig{Step: 1e6, MaxIter: 200, Backtracking: true})
	if err != nil {
		t.Fatal(err)
	}
	final := res.History[len(res.History)-1]
	if math.IsNaN(final) || final > res.History[0] {
		t.Fatalf("backtracking failed: history %v ... %v", res.History[0], final)
	}
}

func TestGDConfigValidation(t *testing.T) {
	x := la.NewDense(2, 2)
	y := []float64{0, 0}
	if _, err := GradientDescent(DenseData{x}, y, Squared{}, GDConfig{Step: 0, MaxIter: 5}); err == nil {
		t.Fatal("want step error")
	}
	if _, err := GradientDescent(DenseData{x}, y, Squared{}, GDConfig{Step: 1, MaxIter: 0}); err == nil {
		t.Fatal("want MaxIter error")
	}
	if _, err := GradientDescent(DenseData{x}, []float64{1}, Squared{}, GDConfig{Step: 1, MaxIter: 5}); err == nil {
		t.Fatal("want label mismatch error")
	}
}

func TestCGSolvesSPD(t *testing.T) {
	r := rand.New(rand.NewSource(63))
	b := la.NewDense(8, 8)
	for i := 0; i < 8; i++ {
		for j := 0; j < 8; j++ {
			b.Set(i, j, r.NormFloat64())
		}
	}
	a := la.Gram(b)
	for i := 0; i < 8; i++ {
		a.Set(i, i, a.At(i, i)+8)
	}
	rhs := make([]float64, 8)
	for i := range rhs {
		rhs[i] = r.NormFloat64()
	}
	x, iters, err := CG(func(v []float64) []float64 { return la.MatVec(a, v) }, rhs, 200, 1e-12)
	if err != nil {
		t.Fatal(err)
	}
	if iters > 9 {
		t.Fatalf("CG took %d iterations for an 8x8 SPD system", iters)
	}
	want, _ := la.SolveSPD(a, rhs)
	for i := range x {
		if math.Abs(x[i]-want[i]) > 1e-8 {
			t.Fatalf("CG x[%d] = %v, want %v", i, x[i], want[i])
		}
	}
}

func TestCGRejectsIndefinite(t *testing.T) {
	a, _ := la.FromRows([][]float64{{1, 0}, {0, -1}})
	_, _, err := CG(func(v []float64) []float64 { return la.MatVec(a, v) }, []float64{0, 1}, 50, 1e-10)
	if err == nil {
		t.Fatal("want non-PD error")
	}
}

func TestSGDConvergesLogistic(t *testing.T) {
	r := rand.New(rand.NewSource(64))
	x, y, _ := synthClassification(r, 2000, 8)
	res, err := SGD(DenseRows{x}, y, Logistic{}, SGDConfig{Step: 0.5, Decay: 0.5, Epochs: 10, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if final := res.EpochLoss[len(res.EpochLoss)-1]; final > 0.2 {
		t.Fatalf("final loss = %v, want < 0.2 on separable data", final)
	}
	// Accuracy check.
	correct := 0
	for i := 0; i < 2000; i++ {
		m := la.Dot(res.W, x.RowView(i))
		if (m >= 0) == (y[i] > 0) {
			correct++
		}
	}
	if acc := float64(correct) / 2000; acc < 0.95 {
		t.Fatalf("accuracy = %v", acc)
	}
}

func TestSGDAggregateMergeWeights(t *testing.T) {
	a := &SGDAggregate{Loss: Squared{}}
	a.Initialize(2)
	a.W = []float64{1, 1}
	a.seen = 3
	b := &SGDAggregate{Loss: Squared{}}
	b.Initialize(2)
	b.W = []float64{4, 0}
	b.seen = 1
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	// Weighted average: (3·1 + 1·4)/4 = 1.75; (3·1 + 0)/4 = 0.75.
	if math.Abs(a.W[0]-1.75) > 1e-12 || math.Abs(a.W[1]-0.75) > 1e-12 {
		t.Fatalf("merged W = %v", a.W)
	}
	// Dimension mismatch.
	c := &SGDAggregate{Loss: Squared{}}
	c.Initialize(3)
	if err := a.Merge(c); err == nil {
		t.Fatal("want dimension mismatch error")
	}
}

func TestParallelSGDModesConverge(t *testing.T) {
	r := rand.New(rand.NewSource(65))
	x, y, _ := synthClassification(r, 3000, 6)
	cfg := SGDConfig{Step: 0.5, Decay: 0.5, Epochs: 8, Seed: 2}
	seq, err := SGD(DenseRows{x}, y, Logistic{}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, mode := range []ParallelMode{ModelAverage, SharedAtomic} {
		res, err := ParallelSGD(DenseRows{x}, y, Logistic{}, cfg, 4, mode)
		if err != nil {
			t.Fatalf("mode %d: %v", mode, err)
		}
		seqFinal := seq.EpochLoss[len(seq.EpochLoss)-1]
		parFinal := res.EpochLoss[len(res.EpochLoss)-1]
		if parFinal > 3*seqFinal+0.1 {
			t.Fatalf("mode %d: parallel loss %v far above sequential %v", mode, parFinal, seqFinal)
		}
	}
	// workers=1 falls back to sequential and must match exactly.
	one, err := ParallelSGD(DenseRows{x}, y, Logistic{}, cfg, 1, ModelAverage)
	if err != nil {
		t.Fatal(err)
	}
	for j := range one.W {
		if one.W[j] != seq.W[j] {
			t.Fatal("workers=1 does not match sequential SGD")
		}
	}
}

func TestParallelSGDValidation(t *testing.T) {
	x := la.NewDense(4, 2)
	y := make([]float64, 4)
	if _, err := ParallelSGD(DenseRows{x}, y, Squared{}, SGDConfig{Step: 1, Epochs: 1}, 0, ModelAverage); err == nil {
		t.Fatal("want workers error")
	}
	if _, err := ParallelSGD(DenseRows{x}, y, Squared{}, SGDConfig{Step: 1, Epochs: 1}, 2, ParallelMode(99)); err == nil {
		t.Fatal("want unknown mode error")
	}
	if _, err := SGD(DenseRows{x}, []float64{1}, Squared{}, SGDConfig{Step: 1, Epochs: 1}); err == nil {
		t.Fatal("want label mismatch error")
	}
}

func TestAdaGradConverges(t *testing.T) {
	r := rand.New(rand.NewSource(66))
	x, y, _ := synthClassification(r, 1500, 5)
	res, err := AdaGrad(DenseRows{x}, y, Logistic{}, SGDConfig{Step: 0.5, Epochs: 10, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if final := res.EpochLoss[len(res.EpochLoss)-1]; final > 0.25 {
		t.Fatalf("AdaGrad final loss = %v", final)
	}
}

func TestSGDMatchesGDOnQuadratic(t *testing.T) {
	// With enough epochs and decay, SGD should approach the least-squares
	// optimum on a small well-conditioned problem.
	r := rand.New(rand.NewSource(67))
	x, y, _ := synthRegression(r, 500, 4, 0.05)
	res, err := SGD(DenseRows{x}, y, Squared{}, SGDConfig{Step: 0.05, Decay: 1, Epochs: 60, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	wLS, _ := la.LstSq(x, y)
	for j := range wLS {
		if math.Abs(res.W[j]-wLS[j]) > 0.05 {
			t.Fatalf("SGD w[%d] = %v, LS %v", j, res.W[j], wLS[j])
		}
	}
}

// TestGradientDescentReleasesScratch pins the per-buffer defer pairing in
// GradientDescent: every scratch buffer (including the ones renamed by the
// w/cand and grad/candGrad swaps) goes back to the pool exactly once, and the
// returned W is a private clone. If a defer released the wrong buffer — or
// W aliased the pool — the scribble pass below would corrupt the result.
func TestGradientDescentReleasesScratch(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	x, y, _ := synthRegression(r, 120, 5, 0.01)
	res, err := GradientDescent(DenseData{x}, y, Squared{}, GDConfig{Step: 0.1, MaxIter: 50, Backtracking: true})
	if err != nil {
		t.Fatal(err)
	}
	want := la.CloneVec(res.W)

	// Drain the pool's small classes and scribble over everything GD might
	// have released, then run a second fit for good measure.
	var grabbed [][]float64
	for i := 0; i < 64; i++ {
		buf := pool.GetF64(len(want))
		for j := range buf {
			buf[j] = math.NaN()
		}
		grabbed = append(grabbed, buf)
	}
	for _, buf := range grabbed {
		pool.PutF64(buf)
	}
	res2, err := GradientDescent(DenseData{x}, y, Squared{}, GDConfig{Step: 0.1, MaxIter: 50, Backtracking: true})
	if err != nil {
		t.Fatal(err)
	}

	for j := range want {
		if res.W[j] != want[j] {
			t.Fatalf("res.W[%d] mutated after pool reuse: %v != %v (W aliases a pooled buffer)", j, res.W[j], want[j])
		}
		if math.IsNaN(res2.W[j]) {
			t.Fatalf("second fit read poisoned scratch at w[%d]: pooled buffer not re-zeroed or double-released", j)
		}
	}
}
