package opt

import (
	"fmt"

	"dmml/internal/la"
)

// LBFGSConfig configures the limited-memory BFGS optimizer.
type LBFGSConfig struct {
	// Memory is the number of correction pairs kept (default 8).
	Memory int
	// MaxIter bounds iterations (required > 0).
	MaxIter int
	// Tol stops when the gradient infinity-norm falls below it (default 1e-8).
	Tol float64
	// L2 regularization strength.
	L2 float64
}

// LBFGSResult reports the fit.
type LBFGSResult struct {
	W       []float64
	History []float64 // loss at each iteration (including final)
	Iters   int
}

// LBFGS minimizes the regularized empirical risk with the two-loop-recursion
// limited-memory BFGS method and a backtracking Armijo line search — the
// batch second-order solver declarative ML systems run when SGD's
// per-iteration cheapness is not worth its iteration count.
func LBFGS(data BulkData, y []float64, loss Loss, cfg LBFGSConfig) (*LBFGSResult, error) {
	if cfg.MaxIter <= 0 {
		return nil, fmt.Errorf("opt: LBFGS MaxIter must be > 0")
	}
	if data.Rows() != len(y) {
		return nil, fmt.Errorf("opt: %d labels for %d rows", len(y), data.Rows())
	}
	mem := cfg.Memory
	if mem <= 0 {
		mem = 8
	}
	tol := cfg.Tol
	if tol == 0 {
		tol = 1e-8
	}
	d := data.Cols()
	w := make([]float64, d)
	fw, grad := LossAndGradient(data, y, w, loss, cfg.L2)

	type pair struct {
		s, yv []float64
		rho   float64
	}
	var hist []pair
	res := &LBFGSResult{}
	for it := 0; it < cfg.MaxIter; it++ {
		res.History = append(res.History, fw)
		res.Iters = it + 1
		if la.NormInf(grad) < tol {
			break
		}
		// Two-loop recursion: dir = −H·grad.
		q := la.CloneVec(grad)
		alphas := make([]float64, len(hist))
		for i := len(hist) - 1; i >= 0; i-- {
			alphas[i] = hist[i].rho * la.Dot(hist[i].s, q)
			la.Axpy(-alphas[i], hist[i].yv, q)
		}
		if n := len(hist); n > 0 {
			// Initial Hessian scaling γ = sᵀy / yᵀy.
			last := hist[n-1]
			gamma := la.Dot(last.s, last.yv) / la.Dot(last.yv, last.yv)
			la.ScaleVec(gamma, q)
		}
		for i := range hist {
			beta := hist[i].rho * la.Dot(hist[i].yv, q)
			la.Axpy(alphas[i]-beta, hist[i].s, q)
		}
		dir := q
		la.ScaleVec(-1, dir)
		// Ensure descent; fall back to steepest descent otherwise.
		if la.Dot(dir, grad) >= 0 {
			dir = la.CloneVec(grad)
			la.ScaleVec(-1, dir)
		}

		// Backtracking Armijo line search.
		step := 1.0
		gd := la.Dot(grad, dir)
		const c1 = 1e-4
		var wNew []float64
		var fNew float64
		var gNew []float64
		for {
			wNew = la.CloneVec(w)
			la.Axpy(step, dir, wNew)
			fNew, gNew = LossAndGradient(data, y, wNew, loss, cfg.L2)
			if fNew <= fw+c1*step*gd || step < 1e-14 {
				break
			}
			step /= 2
		}
		if step < 1e-14 && fNew > fw {
			// No progress possible along this direction; converged enough.
			break
		}
		s := la.SubVec(wNew, w)
		yv := la.SubVec(gNew, grad)
		if sy := la.Dot(s, yv); sy > 1e-12 {
			hist = append(hist, pair{s: s, yv: yv, rho: 1 / sy})
			if len(hist) > mem {
				hist = hist[1:]
			}
		}
		w, fw, grad = wNew, fNew, gNew
	}
	res.History = append(res.History, fw)
	res.W = w
	return res, nil
}
