package opt

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"dmml/internal/la"
)

// fakeBlocks adapts a dense matrix into an opt.BlockData with fixed-size row
// blocks, for testing the streaming evaluation without the ooc machinery.
type fakeBlocks struct {
	m         *la.Dense
	blockRows int
	failAt    int // block index to fail at, -1 for never
}

func (f *fakeBlocks) Rows() int { return f.m.Rows() }
func (f *fakeBlocks) Cols() int { return f.m.Cols() }
func (f *fakeBlocks) MatVec(v []float64) []float64 {
	return la.MatVec(f.m, v)
}
func (f *fakeBlocks) VecMat(x []float64) []float64 {
	return la.VecMat(x, f.m)
}
func (f *fakeBlocks) NumBlocks() int {
	return (f.m.Rows() + f.blockRows - 1) / f.blockRows
}

func (f *fakeBlocks) ForEachBlock(fn func(RowBlock) error) error {
	for i := 0; i < f.NumBlocks(); i++ {
		if i == f.failAt {
			return fmt.Errorf("injected block failure at %d", i)
		}
		r0 := i * f.blockRows
		nb := f.blockRows
		if r0+nb > f.m.Rows() {
			nb = f.m.Rows() - r0
		}
		if err := fn(&fakeBlock{f.m, r0, nb}); err != nil {
			return err
		}
	}
	return nil
}

type fakeBlock struct {
	m        *la.Dense
	startRow int
	rows     int
}

func (b *fakeBlock) StartRow() int { return b.startRow }
func (b *fakeBlock) Rows() int     { return b.rows }
func (b *fakeBlock) Cols() int     { return b.m.Cols() }

func (b *fakeBlock) MatVecInto(dst, v []float64) []float64 {
	for i := 0; i < b.rows; i++ {
		dst[i] = la.Dot(b.m.RowView(b.startRow+i), v)
	}
	return dst
}

func (b *fakeBlock) VecMatAccum(out, x []float64) {
	for i, xi := range x {
		la.Axpy(xi, b.m.RowView(b.startRow+i), out)
	}
}

// TestStreamMatchesBulk: GradientDescent over a BlockData source must produce
// the same iterates as over the plain dense source — the streaming evaluation
// is the same computation in block order.
func TestStreamMatchesBulk(t *testing.T) {
	r := rand.New(rand.NewSource(40))
	m, y := randProblem(r, 500, 7)
	cfg := GDConfig{Step: 0.2, MaxIter: 12, L2: 0.05}
	want, err := GradientDescent(DenseData{M: m}, y, Logistic{}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, br := range []int{1, 64, 100, 500, 512} {
		got, err := GradientDescent(&fakeBlocks{m: m, blockRows: br, failAt: -1}, y, Logistic{}, cfg)
		if err != nil {
			t.Fatal(err)
		}
		for j := range want.W {
			if math.Abs(got.W[j]-want.W[j]) > 1e-10 {
				t.Fatalf("blockRows=%d w[%d] = %v, want %v", br, j, got.W[j], want.W[j])
			}
		}
	}
}

// TestStreamLossAndGradient checks the public entry point dispatches too.
func TestStreamLossAndGradient(t *testing.T) {
	r := rand.New(rand.NewSource(41))
	m, y := randProblem(r, 300, 5)
	w := make([]float64, 5)
	for j := range w {
		w[j] = r.NormFloat64()
	}
	wantL, wantG := LossAndGradient(DenseData{M: m}, y, w, Squared{}, 0.1)
	gotL, gotG := LossAndGradient(&fakeBlocks{m: m, blockRows: 77, failAt: -1}, y, w, Squared{}, 0.1)
	if math.Abs(gotL-wantL) > 1e-10 {
		t.Fatalf("loss = %v, want %v", gotL, wantL)
	}
	for j := range wantG {
		if math.Abs(gotG[j]-wantG[j]) > 1e-10 {
			t.Fatalf("grad[%d] = %v, want %v", j, gotG[j], wantG[j])
		}
	}
}

func TestStreamBlockFailurePanics(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	m, y := randProblem(r, 200, 4)
	w := make([]float64, 4)
	defer func() {
		if recover() == nil {
			t.Fatal("want panic on mid-stream block failure")
		}
	}()
	LossAndGradient(&fakeBlocks{m: m, blockRows: 50, failAt: 2}, y, w, Logistic{}, 0)
}

func TestStreamingSGDValidation(t *testing.T) {
	r := rand.New(rand.NewSource(43))
	m, y := randProblem(r, 100, 3)
	fb := &fakeBlocks{m: m, blockRows: 10, failAt: -1}
	if _, err := StreamingSGD(fb, y, Logistic{}, StreamConfig{Step: 0, Epochs: 1}); err == nil {
		t.Fatal("want error for zero step")
	}
	if _, err := StreamingSGD(fb, y, Logistic{}, StreamConfig{Step: 0.1, Epochs: 0}); err == nil {
		t.Fatal("want error for zero epochs")
	}
	if _, err := StreamingSGD(fb, y[:50], Logistic{}, StreamConfig{Step: 0.1, Epochs: 1}); err == nil {
		t.Fatal("want error for label length mismatch")
	}
	fb.failAt = 1
	if _, err := StreamingSGD(fb, y, Logistic{}, StreamConfig{Step: 0.1, Epochs: 1}); err == nil {
		t.Fatal("want propagated block failure")
	}
}
