package opt

import (
	"fmt"

	"dmml/internal/la"
	"dmml/internal/pool"
)

// BulkData abstracts the bulk linear-algebra access pattern needed by batch
// gradient descent: X·v and xᵀ·X. la.Dense, la.CSR, compressed matrices and
// factorized joins all satisfy it through thin adapters.
type BulkData interface {
	Rows() int
	Cols() int
	MatVec(v []float64) []float64
	VecMat(x []float64) []float64
}

// BulkDataInto is optionally implemented by BulkData sources that can compute
// into caller-provided buffers. Iterative solvers probe for it so their inner
// loops reuse one set of buffers across iterations instead of allocating
// margin and gradient vectors on every pass.
type BulkDataInto interface {
	BulkData
	// MatVecInto computes X·v into dst (length Rows) and returns dst.
	MatVecInto(dst, v []float64) []float64
	// VecMatInto computes xᵀ·X into dst (length Cols) and returns dst.
	VecMatInto(dst, x []float64) []float64
}

// DenseData adapts *la.Dense to BulkData.
type DenseData struct{ M *la.Dense }

// Rows implements BulkData.
func (d DenseData) Rows() int { return d.M.Rows() }

// Cols implements BulkData.
func (d DenseData) Cols() int { return d.M.Cols() }

// MatVec implements BulkData.
func (d DenseData) MatVec(v []float64) []float64 { return la.MatVec(d.M, v) }

// VecMat implements BulkData.
func (d DenseData) VecMat(x []float64) []float64 { return la.VecMat(x, d.M) }

// MatVecInto implements BulkDataInto.
func (d DenseData) MatVecInto(dst, v []float64) []float64 { return la.MatVecInto(dst, d.M, v) }

// VecMatInto implements BulkDataInto.
func (d DenseData) VecMatInto(dst, x []float64) []float64 { return la.VecMatInto(dst, x, d.M) }

// CSRData adapts *la.CSR to BulkData.
type CSRData struct{ M *la.CSR }

// Rows implements BulkData.
func (d CSRData) Rows() int { return d.M.Rows() }

// Cols implements BulkData.
func (d CSRData) Cols() int { return d.M.Cols() }

// MatVec implements BulkData.
func (d CSRData) MatVec(v []float64) []float64 { return d.M.MatVec(v) }

// VecMat implements BulkData.
func (d CSRData) VecMat(x []float64) []float64 { return d.M.VecMat(x) }

// MatVecInto implements BulkDataInto.
func (d CSRData) MatVecInto(dst, v []float64) []float64 { return d.M.MatVecInto(dst, v) }

// VecMatInto implements BulkDataInto.
func (d CSRData) VecMatInto(dst, x []float64) []float64 { return d.M.VecMatInto(dst, x) }

var (
	_ BulkDataInto = DenseData{}
	_ BulkDataInto = CSRData{}
)

// LossAndGradient computes the mean loss and its gradient at w, including an
// L2 penalty of λ/2·‖w‖² (bias-inclusive; exclude the bias by passing λ=0
// and regularizing externally if needed).
func LossAndGradient(data BulkData, y, w []float64, loss Loss, l2 float64) (float64, []float64) {
	grad := make([]float64, data.Cols())
	margins := pool.GetF64(data.Rows())
	derivs := pool.GetF64(data.Rows())
	v := lossAndGradientInto(data, y, w, loss, l2, margins, derivs, grad)
	pool.PutF64(margins)
	pool.PutF64(derivs)
	return v, grad
}

// lossAndGradientInto is LossAndGradient with caller-owned buffers: margins
// and derivs have length Rows, grad length Cols. When data implements
// BulkDataInto the whole evaluation is allocation-free.
func lossAndGradientInto(data BulkData, y, w []float64, loss Loss, l2 float64, margins, derivs, grad []float64) float64 {
	n := data.Rows()
	if len(y) != n {
		panic(fmt.Sprintf("opt: %d labels for %d rows", len(y), n))
	}
	if bd, ok := data.(BlockData); ok {
		// Out-of-core sources stream block-by-block: one pass, bounded
		// resident memory, prefetch handled by the source.
		return lossAndGradientStream(bd, y, w, loss, l2, margins, derivs, grad)
	}
	di, hasInto := data.(BulkDataInto)
	if hasInto {
		di.MatVecInto(margins, w)
	} else {
		copy(margins, data.MatVec(w))
	}
	total := 0.0
	for i, m := range margins {
		total += loss.Value(m, y[i])
		derivs[i] = loss.Deriv(m, y[i])
	}
	if hasInto {
		di.VecMatInto(grad, derivs)
	} else {
		copy(grad, data.VecMat(derivs))
	}
	invN := 1 / float64(n)
	for j := range grad {
		grad[j] = grad[j]*invN + l2*w[j]
	}
	return total*invN + 0.5*l2*la.Dot(w, w)
}

// GDConfig configures full-batch gradient descent.
type GDConfig struct {
	Step    float64 // initial step size (required > 0)
	L2      float64 // L2 regularization strength
	MaxIter int     // maximum iterations (required > 0)
	Tol     float64 // stop when |Δloss| < Tol (0 disables)
	// Backtracking halves the step while the update does not decrease the
	// loss, making plain GD robust to an aggressive Step.
	Backtracking bool
}

// GDResult reports the fit.
type GDResult struct {
	W       []float64
	History []float64 // loss per iteration (before each step), incl. final
	Iters   int
}

// GradientDescent minimizes the regularized empirical risk by full-batch
// gradient descent.
func GradientDescent(data BulkData, y []float64, loss Loss, cfg GDConfig) (*GDResult, error) {
	if cfg.Step <= 0 {
		return nil, fmt.Errorf("opt: GD step must be > 0, got %v", cfg.Step)
	}
	if cfg.MaxIter <= 0 {
		return nil, fmt.Errorf("opt: GD MaxIter must be > 0, got %d", cfg.MaxIter)
	}
	if data.Rows() != len(y) {
		return nil, fmt.Errorf("opt: %d labels for %d rows", len(y), data.Rows())
	}
	d := data.Cols()
	n := data.Rows()
	// Iteration state lives in scratch buffers reused across the whole run:
	// with a BulkDataInto source the loop allocates nothing after warm-up.
	// Defer arguments are evaluated here, so each defer releases the buffer
	// acquired on its own line even though the variables are swapped below —
	// the swaps only permute the same six buffers among the six names. (The
	// one-defer-per-buffer form also lets dmmlvet's scratchpair analyzer
	// prove the pairing.)
	w := pool.GetF64Zeroed(d)
	defer pool.PutF64(w)
	cand := pool.GetF64(d)
	defer pool.PutF64(cand)
	grad := pool.GetF64(d)
	defer pool.PutF64(grad)
	candGrad := pool.GetF64(d)
	defer pool.PutF64(candGrad)
	margins := pool.GetF64(n)
	defer pool.PutF64(margins)
	derivs := pool.GetF64(n)
	defer pool.PutF64(derivs)
	res := &GDResult{}
	step := cfg.Step
	prev := lossAndGradientInto(data, y, w, loss, cfg.L2, margins, derivs, grad)
	for it := 0; it < cfg.MaxIter; it++ {
		epochSW := mGDEpochTimer.Start()
		mGDEpochs.Inc()
		mGDLoss.Set(prev)
		res.History = append(res.History, prev)
		copy(cand, w)
		la.Axpy(-step, grad, cand)
		cur := lossAndGradientInto(data, y, cand, loss, cfg.L2, margins, derivs, candGrad)
		if cfg.Backtracking {
			for cur > prev && step > 1e-12 {
				step /= 2
				copy(cand, w)
				la.Axpy(-step, grad, cand)
				cur = lossAndGradientInto(data, y, cand, loss, cfg.L2, margins, derivs, candGrad)
			}
		}
		w, cand = cand, w
		grad, candGrad = candGrad, grad
		res.Iters = it + 1
		epochSW.Stop()
		if cfg.Tol > 0 && abs(prev-cur) < cfg.Tol {
			prev = cur
			break
		}
		prev = cur
	}
	res.History = append(res.History, prev)
	res.W = la.CloneVec(w)
	return res, nil
}

//dmml:noalloc
func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

// CG solves A·x = b for symmetric positive-definite A given only the
// matrix–vector product apply. It returns after maxIter iterations or when
// the residual norm falls below tol.
func CG(apply func(v []float64) []float64, b []float64, maxIter int, tol float64) ([]float64, int, error) {
	if maxIter <= 0 {
		return nil, 0, fmt.Errorf("opt: CG maxIter must be > 0")
	}
	n := len(b)
	x := make([]float64, n)
	r := la.CloneVec(b) // r = b − A·0
	p := la.CloneVec(r)
	rs := la.Dot(r, r)
	iters := 0
	for it := 0; it < maxIter; it++ {
		iters = it + 1
		ap := apply(p)
		pap := la.Dot(p, ap)
		if pap <= 0 {
			return nil, iters, fmt.Errorf("opt: CG detected a non-positive-definite operator")
		}
		alpha := rs / pap
		la.Axpy(alpha, p, x)
		la.Axpy(-alpha, ap, r)
		rsNew := la.Dot(r, r)
		if rsNew < tol*tol {
			break
		}
		beta := rsNew / rs
		for i := range p {
			p[i] = r[i] + beta*p[i]
		}
		rs = rsNew
	}
	return x, iters, nil
}
