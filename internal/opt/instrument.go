package opt

import "dmml/internal/metrics"

// Observability instruments (no-ops until metrics.Enable). Training is
// instrumented at epoch granularity: the per-epoch timer histogram shows
// step-time drift across a run (e.g. a shrinking active set or cache
// effects), and the loss gauge exposes the current objective so a live
// dashboard — or a stuck-run investigation — can see convergence without
// waiting for the fit to return.
var (
	mGDEpochTimer = metrics.NewTimer("opt.gd.epoch")
	mGDLoss       = metrics.NewGauge("opt.gd.loss")
	mGDEpochs     = metrics.NewCounter("opt.gd.epochs")

	mSGDEpochTimer = metrics.NewTimer("opt.sgd.epoch")
	mSGDLoss       = metrics.NewGauge("opt.sgd.loss")
	mSGDEpochs     = metrics.NewCounter("opt.sgd.epochs")
)
