// Package opt provides gradient-based optimization for generalized linear
// models: pluggable margin-based losses, full-batch gradient descent,
// stochastic gradient descent with a Bismarck-style unified aggregate (UDA)
// architecture, parallel SGD (shared-model and model-averaging), and a
// conjugate-gradient solver.
//
// Conventions: a model is a weight vector w; the margin for example x is
// m = w·x; classification labels are −1/+1; regression targets are real.
package opt

import "math"

// Loss is a margin-based loss: given the margin m = w·x and the label y it
// yields the loss value and its derivative with respect to the margin.
type Loss interface {
	// Value returns L(m, y).
	Value(m, y float64) float64
	// Deriv returns ∂L/∂m.
	Deriv(m, y float64) float64
	// Name identifies the loss in reports.
	Name() string
}

// Squared is the squared-error loss ½(m−y)², for regression.
type Squared struct{}

// Value implements Loss.
//dmml:noalloc
func (Squared) Value(m, y float64) float64 { d := m - y; return 0.5 * d * d }

// Deriv implements Loss.
//dmml:noalloc
func (Squared) Deriv(m, y float64) float64 { return m - y }

// Name implements Loss.
func (Squared) Name() string { return "squared" }

// Logistic is the logistic loss log(1+exp(−y·m)), labels −1/+1.
type Logistic struct{}

// Value implements Loss.
//dmml:noalloc
func (Logistic) Value(m, y float64) float64 {
	z := y * m
	if z > 35 {
		return 0
	}
	if z < -35 {
		return -z
	}
	return math.Log1p(math.Exp(-z))
}

// Deriv implements Loss.
//dmml:noalloc
func (Logistic) Deriv(m, y float64) float64 {
	z := y * m
	// −y·σ(−z)
	if z > 35 {
		return 0
	}
	if z < -35 {
		return -y
	}
	return -y / (1 + math.Exp(z))
}

// Name implements Loss.
func (Logistic) Name() string { return "logistic" }

// Hinge is the SVM hinge loss max(0, 1−y·m), labels −1/+1.
type Hinge struct{}

// Value implements Loss.
//dmml:noalloc
func (Hinge) Value(m, y float64) float64 { return math.Max(0, 1-y*m) }

// Deriv implements Loss (a subgradient).
//dmml:noalloc
func (Hinge) Deriv(m, y float64) float64 {
	if y*m < 1 {
		return -y
	}
	return 0
}

// Name implements Loss.
func (Hinge) Name() string { return "hinge" }

// Sigmoid is the logistic link 1/(1+e^{−m}).
//dmml:noalloc
func Sigmoid(m float64) float64 {
	if m >= 0 {
		return 1 / (1 + math.Exp(-m))
	}
	e := math.Exp(m)
	return e / (1 + e)
}
