package opt

import (
	"fmt"

	"dmml/internal/la"
	"dmml/internal/pool"
)

// RowBlock is one resident row-block of a larger-than-memory matrix. Blocks
// are only valid inside the ForEachBlock callback that delivered them — the
// backing page may be unpinned (and evicted) as soon as the callback returns.
type RowBlock interface {
	// StartRow is the block's first row index in the full matrix.
	StartRow() int
	// Rows is the number of rows in this block.
	Rows() int
	// Cols is the number of columns (same for every block).
	Cols() int
	// MatVecInto computes Xb·v into dst (length Rows, block-local) and
	// returns dst.
	MatVecInto(dst, v []float64) []float64
	// VecMatAccum adds xᵀ·Xb into out (length Cols); x is block-local with
	// length Rows.
	VecMatAccum(out, x []float64)
}

// BlockData is implemented by out-of-core sources whose rows stream through
// memory block-by-block (e.g. ooc.Matrix). Solvers that detect it switch to a
// single-pass streaming evaluation that touches each block exactly once per
// iteration, so the source can bound resident memory and prefetch ahead.
type BlockData interface {
	BulkData
	// NumBlocks returns the number of row blocks.
	NumBlocks() int
	// ForEachBlock invokes f for every block in row order. It stops on the
	// first error and returns it.
	ForEachBlock(f func(b RowBlock) error) error
}

// lossAndGradientStream is the BlockData evaluation of lossAndGradientInto:
// one pass over the blocks computing margins, pointwise derivatives, and the
// gradient accumulation per block. A single pass suffices because the loss
// derivative at row i depends only on that row's margin — the block's
// contribution to the gradient is complete the moment its margins are.
func lossAndGradientStream(data BlockData, y, w []float64, loss Loss, l2 float64, margins, derivs, grad []float64) float64 {
	n := data.Rows()
	if len(y) != n {
		panic(fmt.Sprintf("opt: %d labels for %d rows", len(y), n))
	}
	for j := range grad {
		grad[j] = 0
	}
	total := 0.0
	err := data.ForEachBlock(func(b RowBlock) error {
		r0, nb := b.StartRow(), b.Rows()
		mb := margins[r0 : r0+nb]
		db := derivs[r0 : r0+nb]
		b.MatVecInto(mb, w)
		for i, m := range mb {
			total += loss.Value(m, y[r0+i])
			db[i] = loss.Deriv(m, y[r0+i])
		}
		b.VecMatAccum(grad, db)
		return nil
	})
	if err != nil {
		// Solver iteration loops have no error path; a block source failing
		// mid-pass means its backing storage is gone, which is fatal.
		panic(fmt.Sprintf("opt: block stream failed: %v", err))
	}
	invN := 1 / float64(n)
	for j := range grad {
		grad[j] = grad[j]*invN + l2*w[j]
	}
	return total*invN + 0.5*l2*la.Dot(w, w)
}

// StreamConfig configures block-streaming SGD.
type StreamConfig struct {
	Step   float64 // initial step size (required > 0)
	Decay  float64 // per-epoch multiplicative step decay (0 = none)
	L2     float64 // L2 regularization strength
	Epochs int     // number of passes over the data (required > 0)
}

// StreamingSGD fits w by block-wise minibatch gradient descent: each resident
// block is one minibatch, so a full epoch is one sequential pass over the
// block stream — the access pattern the out-of-core prefetcher is built for.
// Returns the fitted weights and the mean loss observed per epoch (computed
// from the margins of the same pass, so it trails the final weights by one
// update per block).
func StreamingSGD(data BlockData, y []float64, loss Loss, cfg StreamConfig) (*GDResult, error) {
	if cfg.Step <= 0 {
		return nil, fmt.Errorf("opt: streaming SGD step must be > 0, got %v", cfg.Step)
	}
	if cfg.Epochs <= 0 {
		return nil, fmt.Errorf("opt: streaming SGD epochs must be > 0, got %d", cfg.Epochs)
	}
	if data.Rows() != len(y) {
		return nil, fmt.Errorf("opt: %d labels for %d rows", len(y), data.Rows())
	}
	d := data.Cols()
	w := pool.GetF64Zeroed(d)
	defer pool.PutF64(w)
	gradB := pool.GetF64(d)
	defer pool.PutF64(gradB)
	// Full-length margin/derivative scratch, sliced per block. Labels are
	// already O(rows) in memory, so this does not change the footprint class.
	margins := pool.GetF64(data.Rows())
	defer pool.PutF64(margins)
	derivs := pool.GetF64(data.Rows())
	defer pool.PutF64(derivs)
	res := &GDResult{}
	step := cfg.Step
	for e := 0; e < cfg.Epochs; e++ {
		total := 0.0
		err := data.ForEachBlock(func(b RowBlock) error {
			nb := b.Rows()
			r0 := b.StartRow()
			mb := margins[r0 : r0+nb]
			db := derivs[r0 : r0+nb]
			b.MatVecInto(mb, w)
			for i, m := range mb {
				total += loss.Value(m, y[r0+i])
				db[i] = loss.Deriv(m, y[r0+i])
			}
			for j := range gradB {
				gradB[j] = 0
			}
			b.VecMatAccum(gradB, db)
			invB := 1 / float64(nb)
			for j := range w {
				w[j] -= step * (gradB[j]*invB + cfg.L2*w[j])
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
		res.History = append(res.History, total/float64(data.Rows()))
		res.Iters = e + 1
		if cfg.Decay > 0 {
			step *= cfg.Decay
		}
	}
	res.W = la.CloneVec(w)
	return res, nil
}
