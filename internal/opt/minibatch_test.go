package opt

import (
	"math"
	"math/rand"
	"testing"

	"dmml/internal/la"
)

func TestMiniBatchSGDConverges(t *testing.T) {
	r := rand.New(rand.NewSource(210))
	x, y, _ := synthClassification(r, 2000, 6)
	res, err := MiniBatchSGD(DenseRows{x}, y, Logistic{}, MiniBatchConfig{
		Step: 0.5, Decay: 0.5, Epochs: 10, BatchSize: 32, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if final := res.EpochLoss[len(res.EpochLoss)-1]; final > 0.2 {
		t.Fatalf("final loss = %v", final)
	}
}

func TestMiniBatchSGDMatchesLeastSquares(t *testing.T) {
	r := rand.New(rand.NewSource(211))
	x, y, _ := synthRegression(r, 600, 4, 0.05)
	res, err := MiniBatchSGD(DenseRows{x}, y, Squared{}, MiniBatchConfig{
		Step: 0.1, Decay: 1, Epochs: 60, BatchSize: 16, Seed: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	wLS, _ := la.LstSq(x, y)
	for j := range wLS {
		if math.Abs(res.W[j]-wLS[j]) > 0.05 {
			t.Fatalf("w[%d] = %v, LS %v", j, res.W[j], wLS[j])
		}
	}
}

func TestMiniBatchValidation(t *testing.T) {
	x := la.NewDense(4, 2)
	y := make([]float64, 4)
	bad := []MiniBatchConfig{
		{Step: 0, Epochs: 1, BatchSize: 1},
		{Step: 1, Epochs: 0, BatchSize: 1},
		{Step: 1, Epochs: 1, BatchSize: 0},
	}
	for i, cfg := range bad {
		if _, err := MiniBatchSGD(DenseRows{x}, y, Squared{}, cfg); err == nil {
			t.Fatalf("case %d: want validation error", i)
		}
	}
	if _, err := MiniBatchSGD(DenseRows{x}, y[:2], Squared{}, MiniBatchConfig{Step: 1, Epochs: 1, BatchSize: 1}); err == nil {
		t.Fatal("want label mismatch error")
	}
}

func TestLBFGSMatchesExactLeastSquares(t *testing.T) {
	r := rand.New(rand.NewSource(215))
	x, y, _ := synthRegression(r, 400, 6, 0.05)
	res, err := LBFGS(DenseData{x}, y, Squared{}, LBFGSConfig{MaxIter: 100, L2: 0})
	if err != nil {
		t.Fatal(err)
	}
	wLS, _ := la.LstSq(x, y)
	for j := range wLS {
		if math.Abs(res.W[j]-wLS[j]) > 1e-5 {
			t.Fatalf("w[%d] = %v, LS %v", j, res.W[j], wLS[j])
		}
	}
	// Quadratic objective: convergence in far fewer iterations than plain GD.
	if res.Iters > 40 {
		t.Fatalf("LBFGS took %d iterations on a quadratic", res.Iters)
	}
	// Monotone decrease.
	for i := 1; i < len(res.History); i++ {
		if res.History[i] > res.History[i-1]+1e-12 {
			t.Fatalf("loss increased at %d", i)
		}
	}
}

func TestLBFGSLogisticBeatsGDIterations(t *testing.T) {
	r := rand.New(rand.NewSource(216))
	x, y, _ := synthClassification(r, 1500, 8)
	lb, err := LBFGS(DenseData{x}, y, Logistic{}, LBFGSConfig{MaxIter: 60, L2: 1e-3, Tol: 1e-7})
	if err != nil {
		t.Fatal(err)
	}
	gd, err := GradientDescent(DenseData{x}, y, Logistic{}, GDConfig{Step: 0.5, L2: 1e-3, MaxIter: 60, Backtracking: true})
	if err != nil {
		t.Fatal(err)
	}
	lbFinal := lb.History[len(lb.History)-1]
	gdFinal := gd.History[len(gd.History)-1]
	if lbFinal > gdFinal+1e-6 {
		t.Fatalf("LBFGS final %v worse than GD %v at equal iterations", lbFinal, gdFinal)
	}
}

func TestLBFGSValidation(t *testing.T) {
	x := la.NewDense(3, 2)
	if _, err := LBFGS(DenseData{x}, make([]float64, 3), Squared{}, LBFGSConfig{}); err == nil {
		t.Fatal("want MaxIter error")
	}
	if _, err := LBFGS(DenseData{x}, make([]float64, 2), Squared{}, LBFGSConfig{MaxIter: 5}); err == nil {
		t.Fatal("want label mismatch error")
	}
}
