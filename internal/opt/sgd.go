package opt

import (
	"fmt"
	"math"
	"math/rand"
	"sync/atomic"

	"dmml/internal/la"
	"dmml/internal/pool"
)

// RowData abstracts per-example access for stochastic methods.
type RowData interface {
	Rows() int
	Cols() int
	// Row returns example i's feature vector; it may alias internal storage
	// and must not be mutated.
	Row(i int) []float64
}

// DenseRows adapts *la.Dense to RowData.
type DenseRows struct{ M *la.Dense }

// Rows implements RowData.
func (d DenseRows) Rows() int { return d.M.Rows() }

// Cols implements RowData.
func (d DenseRows) Cols() int { return d.M.Cols() }

// Row implements RowData.
func (d DenseRows) Row(i int) []float64 { return d.M.RowView(i) }

// UDA is Bismarck's unified user-defined-aggregate contract for incremental
// gradient methods run inside a data system: the system drives Initialize
// once, Transition per tuple, and Terminate at the end of the pass; Merge
// combines states from parallel partitions.
type UDA interface {
	// Initialize prepares state for a model of dimension d.
	Initialize(d int)
	// Transition folds one labeled example into the state.
	Transition(x []float64, y float64)
	// Terminate finalizes and returns the model after a pass.
	Terminate() []float64
	// Merge folds another partition's state into this one (model averaging).
	Merge(other UDA) error
}

// SGDAggregate is the SGD instantiation of the Bismarck UDA.
type SGDAggregate struct {
	W     []float64
	Loss  Loss
	Step  float64
	L2    float64
	seen  int
	other int // examples represented by merged-in states
}

// Initialize implements UDA.
func (s *SGDAggregate) Initialize(d int) {
	s.W = make([]float64, d)
	s.seen, s.other = 0, 0
}

// Transition implements UDA: one incremental gradient step.
func (s *SGDAggregate) Transition(x []float64, y float64) {
	m := la.Dot(s.W, x)
	g := s.Loss.Deriv(m, y)
	if s.L2 != 0 {
		la.ScaleVec(1-s.Step*s.L2, s.W)
	}
	if g != 0 {
		la.Axpy(-s.Step*g, x, s.W)
	}
	s.seen++
}

// Terminate implements UDA.
func (s *SGDAggregate) Terminate() []float64 { return s.W }

// Merge implements UDA by count-weighted model averaging, Bismarck's
// partitioned-execution combine step.
func (s *SGDAggregate) Merge(other UDA) error {
	o, ok := other.(*SGDAggregate)
	if !ok {
		return fmt.Errorf("opt: cannot merge %T into *SGDAggregate", other)
	}
	if len(o.W) != len(s.W) {
		return fmt.Errorf("opt: merge dimension mismatch %d vs %d", len(o.W), len(s.W))
	}
	wt := float64(s.seen + s.other)
	wo := float64(o.seen + o.other)
	if wt+wo == 0 {
		return nil
	}
	a := wt / (wt + wo)
	for j := range s.W {
		s.W[j] = a*s.W[j] + (1-a)*o.W[j]
	}
	s.other += o.seen + o.other
	return nil
}

// SGDConfig configures stochastic gradient descent.
type SGDConfig struct {
	Step   float64 // initial step size (> 0)
	Decay  float64 // per-epoch decay: step_e = Step/(1+Decay·e)
	L2     float64 // L2 regularization
	Epochs int     // passes over the data (> 0)
	Seed   int64   // shuffle seed
}

func (c SGDConfig) validate(n int) error {
	if c.Step <= 0 {
		return fmt.Errorf("opt: SGD step must be > 0, got %v", c.Step)
	}
	if c.Epochs <= 0 {
		return fmt.Errorf("opt: SGD epochs must be > 0, got %d", c.Epochs)
	}
	if n == 0 {
		return fmt.Errorf("opt: SGD over empty data")
	}
	return nil
}

// SGDResult reports an SGD fit and its per-epoch mean loss trajectory.
type SGDResult struct {
	W         []float64
	EpochLoss []float64 // mean loss after each epoch
}

// MeanLoss computes the unregularized mean loss of w over the data. Large
// inputs are evaluated in parallel on the worker pool with per-slot partial
// sums.
func MeanLoss(data RowData, y []float64, w []float64, loss Loss) float64 {
	n := data.Rows()
	if n*data.Cols() < 1<<18 || pool.SerialNow() {
		total := 0.0
		for i := 0; i < n; i++ {
			total += loss.Value(la.Dot(w, data.Row(i)), y[i])
		}
		return total / float64(n)
	}
	sums := pool.GetF64Zeroed(pool.Workers())
	pool.Do(n, pool.Grain(n, data.Cols()), func(slot, lo, hi int) {
		var t float64
		for i := lo; i < hi; i++ {
			t += loss.Value(la.Dot(w, data.Row(i)), y[i])
		}
		sums[slot] += t
	})
	total := la.SumVec(sums)
	pool.PutF64(sums)
	return total / float64(n)
}

// SGD trains by sequential stochastic gradient descent with per-epoch
// shuffling, driving an SGDAggregate exactly as a data system would drive a
// Bismarck UDA.
func SGD(data RowData, y []float64, loss Loss, cfg SGDConfig) (*SGDResult, error) {
	n := data.Rows()
	if err := cfg.validate(n); err != nil {
		return nil, err
	}
	if len(y) != n {
		return nil, fmt.Errorf("opt: %d labels for %d rows", len(y), n)
	}
	agg := &SGDAggregate{Loss: loss, L2: cfg.L2}
	agg.Initialize(data.Cols())
	rng := rand.New(rand.NewSource(cfg.Seed))
	order := rng.Perm(n)
	res := &SGDResult{}
	for e := 0; e < cfg.Epochs; e++ {
		epochSW := mSGDEpochTimer.Start()
		mSGDEpochs.Inc()
		agg.Step = cfg.Step / (1 + cfg.Decay*float64(e))
		for _, i := range order {
			agg.Transition(data.Row(i), y[i])
		}
		rng.Shuffle(n, func(a, b int) { order[a], order[b] = order[b], order[a] })
		epochLoss := MeanLoss(data, y, agg.W, loss)
		mSGDLoss.Set(epochLoss)
		epochSW.Stop()
		res.EpochLoss = append(res.EpochLoss, epochLoss)
	}
	res.W = agg.Terminate()
	return res, nil
}

// ParallelMode selects the parallel SGD execution strategy (Bismarck §4).
type ParallelMode int

// Parallel SGD strategies.
const (
	// ModelAverage partitions rows across workers; each runs an independent
	// UDA pass per epoch and the states are merged by weighted averaging.
	ModelAverage ParallelMode = iota
	// SharedAtomic keeps one shared model updated with per-coordinate atomic
	// compare-and-swap (lock-free, Hogwild-style but race-free in Go).
	SharedAtomic
)

// ParallelSGD trains with the given number of workers and strategy.
func ParallelSGD(data RowData, y []float64, loss Loss, cfg SGDConfig, workers int, mode ParallelMode) (*SGDResult, error) {
	n := data.Rows()
	if err := cfg.validate(n); err != nil {
		return nil, err
	}
	if len(y) != n {
		return nil, fmt.Errorf("opt: %d labels for %d rows", len(y), n)
	}
	if workers < 1 {
		return nil, fmt.Errorf("opt: workers must be >= 1, got %d", workers)
	}
	if workers == 1 {
		return SGD(data, y, loss, cfg)
	}
	switch mode {
	case ModelAverage:
		return modelAverageSGD(data, y, loss, cfg, workers)
	case SharedAtomic:
		return sharedAtomicSGD(data, y, loss, cfg, workers)
	default:
		return nil, fmt.Errorf("opt: unknown parallel mode %d", mode)
	}
}

func partition(n, workers int) [][2]int {
	parts := make([][2]int, 0, workers)
	chunk := (n + workers - 1) / workers
	for r0 := 0; r0 < n; r0 += chunk {
		parts = append(parts, [2]int{r0, min(r0+chunk, n)})
	}
	return parts
}

// partitionState is the per-partition scaffolding shared by both parallel
// strategies, allocated once and reused across epochs: visiting order within
// the partition and a partition-seeded RNG to reshuffle it each epoch.
type partitionState struct {
	order []int
	rng   *rand.Rand
}

func newPartitionStates(parts [][2]int, seed int64) []partitionState {
	sts := make([]partitionState, len(parts))
	for pi, p := range parts {
		sts[pi].rng = rand.New(rand.NewSource(seed + int64(pi)))
		sts[pi].order = make([]int, p[1]-p[0])
		for k := range sts[pi].order {
			sts[pi].order[k] = p[0] + k
		}
	}
	return sts
}

func (st *partitionState) reshuffle() {
	o := st.order
	st.rng.Shuffle(len(o), func(a, b int) { o[a], o[b] = o[b], o[a] })
}

func modelAverageSGD(data RowData, y []float64, loss Loss, cfg SGDConfig, workers int) (*SGDResult, error) {
	n, d := data.Rows(), data.Cols()
	parts := partition(n, workers)
	w := make([]float64, d)
	res := &SGDResult{}
	// Per-partition aggregates are allocated once and reused across epochs;
	// partitions are scheduled on the shared worker pool.
	aggs := make([]*SGDAggregate, len(parts))
	for pi := range aggs {
		aggs[pi] = &SGDAggregate{Loss: loss, L2: cfg.L2}
		aggs[pi].Initialize(d)
	}
	states := newPartitionStates(parts, cfg.Seed)
	for e := 0; e < cfg.Epochs; e++ {
		step := cfg.Step / (1 + cfg.Decay*float64(e))
		pool.Do(len(parts), 1, func(_, lo, hi int) {
			for pi := lo; pi < hi; pi++ {
				agg := aggs[pi]
				agg.Step = step
				agg.seen, agg.other = 0, 0
				copy(agg.W, w) // warm start from the merged model
				states[pi].reshuffle()
				for _, i := range states[pi].order {
					agg.Transition(data.Row(i), y[i])
				}
			}
		})
		merged := aggs[0]
		for _, a := range aggs[1:] {
			if err := merged.Merge(a); err != nil {
				return nil, err
			}
		}
		copy(w, merged.W)
		res.EpochLoss = append(res.EpochLoss, MeanLoss(data, y, w, loss))
	}
	res.W = w
	return res, nil
}

func sharedAtomicSGD(data RowData, y []float64, loss Loss, cfg SGDConfig, workers int) (*SGDResult, error) {
	n, d := data.Rows(), data.Cols()
	shared := make([]atomic.Uint64, d)
	load := func(buf []float64) {
		for j := range buf {
			buf[j] = math.Float64frombits(shared[j].Load())
		}
	}
	addTo := func(j int, delta float64) {
		for {
			old := shared[j].Load()
			nv := math.Float64bits(math.Float64frombits(old) + delta)
			if shared[j].CompareAndSwap(old, nv) {
				return
			}
		}
	}
	parts := partition(n, workers)
	res := &SGDResult{}
	// Per-partition model snapshots are allocated once and reused across
	// epochs; partitions run concurrently on the shared worker pool.
	bufs := make([][]float64, len(parts))
	for pi := range bufs {
		bufs[pi] = make([]float64, d)
	}
	states := newPartitionStates(parts, cfg.Seed)
	wLocal := make([]float64, d)
	for e := 0; e < cfg.Epochs; e++ {
		step := cfg.Step / (1 + cfg.Decay*float64(e))
		pool.Do(len(parts), 1, func(_, lo, hi int) {
			for pi := lo; pi < hi; pi++ {
				buf := bufs[pi]
				states[pi].reshuffle()
				for _, i := range states[pi].order {
					x := data.Row(i)
					load(buf)
					m := la.Dot(buf, x)
					g := loss.Deriv(m, y[i])
					for j, xj := range x {
						delta := -step * (g*xj + cfg.L2*buf[j])
						if delta != 0 {
							addTo(j, delta)
						}
					}
				}
			}
		})
		load(wLocal)
		res.EpochLoss = append(res.EpochLoss, MeanLoss(data, y, wLocal, loss))
	}
	w := make([]float64, d)
	load(w)
	res.W = w
	return res, nil
}

// AdaGrad trains with per-coordinate adaptive step sizes, a common
// alternative to plain SGD in the ML-system literature.
func AdaGrad(data RowData, y []float64, loss Loss, cfg SGDConfig) (*SGDResult, error) {
	n := data.Rows()
	if err := cfg.validate(n); err != nil {
		return nil, err
	}
	if len(y) != n {
		return nil, fmt.Errorf("opt: %d labels for %d rows", len(y), n)
	}
	d := data.Cols()
	w := make([]float64, d)
	g2 := make([]float64, d)
	const eps = 1e-8
	rng := rand.New(rand.NewSource(cfg.Seed))
	order := rng.Perm(n)
	res := &SGDResult{}
	for e := 0; e < cfg.Epochs; e++ {
		for _, i := range order {
			x := data.Row(i)
			gm := loss.Deriv(la.Dot(w, x), y[i])
			for j, xj := range x {
				g := gm*xj + cfg.L2*w[j]
				if g == 0 {
					continue
				}
				g2[j] += g * g
				w[j] -= cfg.Step / math.Sqrt(g2[j]+eps) * g
			}
		}
		rng.Shuffle(n, func(a, b int) { order[a], order[b] = order[b], order[a] })
		res.EpochLoss = append(res.EpochLoss, MeanLoss(data, y, w, loss))
	}
	res.W = w
	return res, nil
}
