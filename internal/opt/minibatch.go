package opt

import (
	"fmt"
	"math/rand"

	"dmml/internal/la"
)

// MiniBatchConfig configures mini-batch SGD.
type MiniBatchConfig struct {
	Step      float64 // initial step size (> 0)
	Decay     float64 // per-epoch decay
	L2        float64
	Epochs    int // passes over the data (> 0)
	BatchSize int // examples per gradient step (> 0)
	Seed      int64
}

// BatchGradientInto writes the L2-regularized mini-batch gradient direction
// into grad:
//
//	grad = l2·w + Σ_{k∈rows} ∂L/∂m(w·x_{off+k}, y_{off+k}) · x_{off+k}
//
// rows holds example indices relative to off; grad must have length
// data.Cols(). The caller applies the −step/|batch| scaling. It is shared by
// MiniBatchSGD and the parameter-server workers so both compute bit-identical
// batch gradients.
func BatchGradientInto(data RowData, y, w []float64, loss Loss, l2 float64, rows []int, off int, grad []float64) {
	for j := range grad {
		grad[j] = l2 * w[j]
	}
	for _, k := range rows {
		i := off + k
		x := data.Row(i)
		g := loss.Deriv(la.Dot(w, x), y[i])
		if g != 0 {
			la.Axpy(g, x, grad)
		}
	}
}

// MiniBatchSGD trains with averaged mini-batch gradients — the middle ground
// between full-batch GD and per-example SGD that most of the surveyed
// systems (parameter servers, SystemML's distributed SGD) actually run.
func MiniBatchSGD(data RowData, y []float64, loss Loss, cfg MiniBatchConfig) (*SGDResult, error) {
	n := data.Rows()
	if cfg.Step <= 0 {
		return nil, fmt.Errorf("opt: mini-batch step must be > 0, got %v", cfg.Step)
	}
	if cfg.Epochs <= 0 {
		return nil, fmt.Errorf("opt: mini-batch epochs must be > 0, got %d", cfg.Epochs)
	}
	if cfg.BatchSize <= 0 {
		return nil, fmt.Errorf("opt: batch size must be > 0, got %d", cfg.BatchSize)
	}
	if n == 0 {
		return nil, fmt.Errorf("opt: mini-batch SGD over empty data")
	}
	if len(y) != n {
		return nil, fmt.Errorf("opt: %d labels for %d rows", len(y), n)
	}
	d := data.Cols()
	w := make([]float64, d)
	grad := make([]float64, d)
	rng := rand.New(rand.NewSource(cfg.Seed))
	order := rng.Perm(n)
	res := &SGDResult{}
	for e := 0; e < cfg.Epochs; e++ {
		step := cfg.Step / (1 + cfg.Decay*float64(e))
		for b := 0; b < n; b += cfg.BatchSize {
			hi := min(b+cfg.BatchSize, n)
			BatchGradientInto(data, y, w, loss, cfg.L2, order[b:hi], 0, grad)
			la.Axpy(-step/float64(hi-b), grad, w)
		}
		rng.Shuffle(n, func(a, b int) { order[a], order[b] = order[b], order[a] })
		res.EpochLoss = append(res.EpochLoss, MeanLoss(data, y, w, loss))
	}
	res.W = w
	return res, nil
}
