package opt

import (
	"math"
	"math/rand"
	"runtime"
	"testing"

	"dmml/internal/factorized"
	"dmml/internal/la"
	"dmml/internal/pool"
	"dmml/internal/workload"
)

func randProblem(r *rand.Rand, n, d int) (*la.Dense, []float64) {
	x := la.NewDense(n, d)
	y := make([]float64, n)
	wTrue := make([]float64, d)
	for j := range wTrue {
		wTrue[j] = r.NormFloat64()
	}
	for i := 0; i < n; i++ {
		row := x.RowView(i)
		for j := range row {
			row[j] = r.NormFloat64()
		}
		if la.Dot(row, wTrue) > 0 {
			y[i] = 1
		} else {
			y[i] = -1
		}
	}
	return x, y
}

// TestLossAndGradientZeroAllocSteadyState: with a BulkDataInto source and
// warm scratch, the GD inner-loop evaluation must not allocate.
func TestLossAndGradientZeroAllocSteadyState(t *testing.T) {
	old := runtime.GOMAXPROCS(1)
	defer runtime.GOMAXPROCS(old)
	r := rand.New(rand.NewSource(70))
	x, y := randProblem(r, 400, 30)
	data := DenseData{M: x}
	w := make([]float64, 30)
	grad := make([]float64, 30)
	margins := pool.GetF64(400)
	derivs := pool.GetF64(400)
	lossAndGradientInto(data, y, w, Logistic{}, 0.01, margins, derivs, grad) // warm up
	if a := testing.AllocsPerRun(50, func() {
		lossAndGradientInto(data, y, w, Logistic{}, 0.01, margins, derivs, grad)
	}); a != 0 {
		t.Errorf("lossAndGradientInto allocates %v per run, want 0", a)
	}
	pool.PutF64(margins)
	pool.PutF64(derivs)
}

// TestGradientDescentProcsEquivalent: the pooled kernels only reassociate
// floating-point sums, so a GD run must land on (numerically) the same model
// at GOMAXPROCS=1 and GOMAXPROCS=N.
func TestGradientDescentProcsEquivalent(t *testing.T) {
	r := rand.New(rand.NewSource(71))
	x, y := randProblem(r, 600, 20)
	cfg := GDConfig{Step: 0.5, MaxIter: 30, Backtracking: true}
	run := func() *GDResult {
		res, err := GradientDescent(DenseData{M: x}, y, Logistic{}, cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	old := runtime.GOMAXPROCS(1)
	serial := run()
	n := runtime.NumCPU()
	if n < 4 {
		n = 4
	}
	runtime.GOMAXPROCS(n)
	parallel := run()
	runtime.GOMAXPROCS(old)
	if len(serial.W) != len(parallel.W) {
		t.Fatalf("dimension mismatch")
	}
	for j := range serial.W {
		if d := serial.W[j] - parallel.W[j]; math.Abs(d) > 1e-6 {
			t.Errorf("W[%d] differs by %g across proc counts", j, d)
		}
	}
}

// TestParallelSGDStillLearns: the pool-scheduled parallel strategies must
// keep converging (loss shrinking vs the zero model) for both modes.
func TestParallelSGDStillLearns(t *testing.T) {
	old := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(old)
	r := rand.New(rand.NewSource(72))
	x, y := randProblem(r, 2000, 15)
	cfg := SGDConfig{Step: 0.5, Decay: 0.5, Epochs: 3, Seed: 9}
	zeroLoss := MeanLoss(DenseRows{M: x}, y, make([]float64, 15), Logistic{})
	for _, mode := range []ParallelMode{ModelAverage, SharedAtomic} {
		res, err := ParallelSGD(DenseRows{M: x}, y, Logistic{}, cfg, 4, mode)
		if err != nil {
			t.Fatal(err)
		}
		final := res.EpochLoss[len(res.EpochLoss)-1]
		if final > 0.5*zeroLoss {
			t.Errorf("mode %d: final loss %v not well below zero-model loss %v", mode, final, zeroLoss)
		}
	}
}

// TestJoinTreeGDStepZeroAllocSteadyState: the acceptance property of the
// join-tree engine — a full GD inner-loop evaluation over a 3-level
// snowflake JoinTree (MatVecInto through the tree, loss, VecMatInto back)
// allocates nothing once the tree and pool scratch are warm.
func TestJoinTreeGDStepZeroAllocSteadyState(t *testing.T) {
	old := runtime.GOMAXPROCS(1)
	defer runtime.GOMAXPROCS(old)
	r := rand.New(rand.NewSource(72))
	s, err := workload.GenerateSnowflake(r, workload.SnowflakeConfig{
		FactRows:  600,
		FactFeats: 3,
		Nodes: []workload.SnowNode{
			{Rows: 40, Feats: 4, Parent: -1},
			{Rows: 8, Feats: 3, Parent: 0},
			{Rows: 25, Feats: 2, Parent: -1},
		},
		Task:   workload.RegressionTask,
		Signal: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	nodes := make([]factorized.Node, len(s.X))
	var edges []factorized.Edge
	for v := range s.X {
		nodes[v] = factorized.Node{X: s.X[v], Rows: s.Rows[v]}
		if v > 0 {
			edges = append(edges, factorized.Edge{Parent: s.Parents[v], Child: v, FK: s.FKs[v]})
		}
	}
	tree, err := factorized.NewJoinTree(nodes, edges)
	if err != nil {
		t.Fatal(err)
	}
	n, d := tree.Rows(), tree.Cols()
	w := make([]float64, d)
	grad := make([]float64, d)
	margins := pool.GetF64(n)
	derivs := pool.GetF64(n)
	lossAndGradientInto(tree, s.Y, w, Squared{}, 0.01, margins, derivs, grad) // warm up
	if a := testing.AllocsPerRun(50, func() {
		lossAndGradientInto(tree, s.Y, w, Squared{}, 0.01, margins, derivs, grad)
	}); a != 0 {
		t.Errorf("JoinTree GD step allocates %v per run, want 0", a)
	}
	pool.PutF64(margins)
	pool.PutF64(derivs)
}
