package featureng

import (
	"fmt"
	"math/rand"

	"dmml/internal/la"
)

// SubsetFit is the result of fitting a ridge linear model on one feature
// subset.
type SubsetFit struct {
	Subset   []int
	W        []float64
	TrainMSE float64
}

// ExploreStats reports the work an exploration performed, the quantity
// Columbus optimizes.
type ExploreStats struct {
	// DataPasses counts full scans over the n×d data matrix.
	DataPasses int
	// SolveFlops estimates the cubic solve work (Σ d_s³).
	SolveFlops float64
}

// Explorer runs feature-subset exploration for ridge linear regression, the
// core Columbus workload: evaluate many candidate feature sets cheaply.
type Explorer struct {
	// Reuse computes the full Gram matrix XᵀX and correlation vector Xᵀy once
	// and answers every subset from sub-blocks — Columbus's key optimization.
	// When false each subset rescans the data (the naive baseline).
	Reuse bool
	// CoresetFrac, when in (0,1), fits on a uniform row sample of that
	// fraction instead of all rows (Columbus's sampling optimization).
	CoresetFrac float64
	// Seed drives coreset sampling.
	Seed int64
	// L2 is the ridge penalty (must be > 0 for rank-deficient subsets).
	L2 float64
}

// Explore fits every subset and reports per-subset models plus work stats.
func (e *Explorer) Explore(x *la.Dense, y []float64, subsets [][]int) ([]SubsetFit, ExploreStats, error) {
	n, d := x.Dims()
	if len(y) != n {
		return nil, ExploreStats{}, fmt.Errorf("featureng: %d labels for %d rows", len(y), n)
	}
	if len(subsets) == 0 {
		return nil, ExploreStats{}, fmt.Errorf("featureng: no subsets to explore")
	}
	for _, s := range subsets {
		if len(s) == 0 {
			return nil, ExploreStats{}, fmt.Errorf("featureng: empty subset")
		}
		for _, c := range s {
			if c < 0 || c >= d {
				return nil, ExploreStats{}, fmt.Errorf("featureng: column %d out of range for %d cols", c, d)
			}
		}
	}

	work := x
	yWork := y
	var stats ExploreStats
	if e.CoresetFrac > 0 && e.CoresetFrac < 1 {
		rng := rand.New(rand.NewSource(e.Seed))
		m := int(float64(n) * e.CoresetFrac)
		if m < len(subsets[0])+1 {
			m = min(n, len(subsets[0])+1)
		}
		rows := rng.Perm(n)[:m]
		work = x.SelectRows(rows)
		yWork = make([]float64, m)
		for i, r := range rows {
			yWork[i] = y[r]
		}
	}

	if e.Reuse {
		return e.exploreReuse(work, yWork, subsets, &stats)
	}
	return e.exploreNaive(work, yWork, subsets, &stats)
}

func (e *Explorer) exploreNaive(x *la.Dense, y []float64, subsets [][]int, stats *ExploreStats) ([]SubsetFit, ExploreStats, error) {
	out := make([]SubsetFit, 0, len(subsets))
	xty := make([]float64, x.Cols()) // reused across subsets; sliced per size
	for _, s := range subsets {
		sub := x.SelectCols(s)
		stats.DataPasses++ // one scan to build the subset Gram
		g := la.Gram(sub)
		for j := range s {
			g.Set(j, j, g.At(j, j)+e.L2)
		}
		c := la.XtYInto(xty[:len(s)], sub, y)
		w, err := la.SolveSPD(g, c)
		if err != nil {
			return nil, *stats, fmt.Errorf("featureng: subset %v: %w", s, err)
		}
		stats.SolveFlops += cube(len(s))
		out = append(out, SubsetFit{Subset: append([]int(nil), s...), W: w, TrainMSE: trainMSE(g, c, w, y, e.L2)})
	}
	return out, *stats, nil
}

func (e *Explorer) exploreReuse(x *la.Dense, y []float64, subsets [][]int, stats *ExploreStats) ([]SubsetFit, ExploreStats, error) {
	// One pass builds the full Gram and correlations; every subset is then
	// answered from sub-blocks with zero additional data scans.
	gFull := la.Gram(x)
	cFull := la.XtY(x, y)
	stats.DataPasses = 1
	out := make([]SubsetFit, 0, len(subsets))
	for _, s := range subsets {
		k := len(s)
		g := la.NewDense(k, k)
		c := make([]float64, k)
		for a, ca := range s {
			c[a] = cFull[ca]
			for b, cb := range s {
				g.Set(a, b, gFull.At(ca, cb))
			}
		}
		for j := 0; j < k; j++ {
			g.Set(j, j, g.At(j, j)+e.L2)
		}
		w, err := la.SolveSPD(g, c)
		if err != nil {
			return nil, *stats, fmt.Errorf("featureng: subset %v: %w", s, err)
		}
		stats.SolveFlops += cube(k)
		out = append(out, SubsetFit{Subset: append([]int(nil), s...), W: w, TrainMSE: trainMSE(g, c, w, y, e.L2)})
	}
	return out, *stats, nil
}

// trainMSE computes mean squared error from Gram-space quantities without a
// data pass: ‖Xw−y‖² = wᵀ(XᵀX)w − 2wᵀXᵀy + yᵀy. The Gram passed in includes
// the ridge term, which is subtracted back out.
func trainMSE(gPlusRidge *la.Dense, c, w, y []float64, l2 float64) float64 {
	gw := la.MatVec(gPlusRidge, w)
	wGw := la.Dot(w, gw) - l2*la.Dot(w, w)
	yy := la.Dot(y, y)
	n := float64(len(y))
	mse := (wGw - 2*la.Dot(w, c) + yy) / n
	if mse < 0 {
		mse = 0 // numerical floor
	}
	return mse
}

func cube(k int) float64 { return float64(k) * float64(k) * float64(k) }

// GreedyForwardSelection picks up to maxFeatures features by greedily adding
// the feature that most reduces training MSE, reusing the shared Gram matrix
// across all candidate evaluations (the Columbus exploration pattern).
func GreedyForwardSelection(x *la.Dense, y []float64, maxFeatures int, l2 float64) ([]int, []float64, error) {
	_, d := x.Dims()
	if maxFeatures < 1 || maxFeatures > d {
		return nil, nil, fmt.Errorf("featureng: maxFeatures %d out of range for %d cols", maxFeatures, d)
	}
	expl := &Explorer{Reuse: true, L2: l2}
	selected := []int{}
	var mseTrail []float64
	remaining := map[int]bool{}
	for j := 0; j < d; j++ {
		remaining[j] = true
	}
	for len(selected) < maxFeatures {
		var cands [][]int
		var order []int
		for j := range remaining {
			cands = append(cands, append(append([]int(nil), selected...), j))
			order = append(order, j)
		}
		fits, _, err := expl.Explore(x, y, cands)
		if err != nil {
			return nil, nil, err
		}
		bestIdx, bestMSE := -1, 0.0
		for i, f := range fits {
			if bestIdx < 0 || f.TrainMSE < bestMSE {
				bestIdx, bestMSE = i, f.TrainMSE
			}
		}
		pick := order[bestIdx]
		selected = append(selected, pick)
		mseTrail = append(mseTrail, bestMSE)
		delete(remaining, pick)
	}
	return selected, mseTrail, nil
}
