// Package featureng provides feature-engineering primitives and the
// Columbus-style feature-subset exploration the paper surveys: declarative
// transform pipelines, and linear-model exploration over many feature
// subsets that reuses one Gram-matrix computation across all subsets instead
// of rescanning the data per subset.
package featureng

import (
	"fmt"
	"hash/fnv"
	"math"

	"dmml/internal/la"
)

// Transform is a fit-then-apply feature transformation.
type Transform interface {
	// Fit learns transform parameters from training data.
	Fit(x *la.Dense) error
	// Apply transforms data using the fitted parameters.
	Apply(x *la.Dense) (*la.Dense, error)
	// Name identifies the transform in lineage records.
	Name() string
}

// Standardizer centers each column and scales it to unit variance.
// Zero-variance columns are centered only.
type Standardizer struct {
	mean, std []float64
}

// Fit implements Transform.
func (s *Standardizer) Fit(x *la.Dense) error {
	s.mean = x.ColMeans()
	s.std = x.ColStds()
	return nil
}

// Apply implements Transform.
func (s *Standardizer) Apply(x *la.Dense) (*la.Dense, error) {
	if s.mean == nil {
		return nil, fmt.Errorf("featureng: standardizer not fitted")
	}
	if x.Cols() != len(s.mean) {
		return nil, fmt.Errorf("featureng: standardizer fitted on %d cols, got %d", len(s.mean), x.Cols())
	}
	out := x.Clone()
	for i := 0; i < out.Rows(); i++ {
		row := out.RowView(i)
		for j := range row {
			row[j] -= s.mean[j]
			if s.std[j] > 0 {
				row[j] /= s.std[j]
			}
		}
	}
	return out, nil
}

// Name implements Transform.
func (s *Standardizer) Name() string { return "standardize" }

// Binner replaces each value with the index of its equi-width bin, learned
// per column from the training min/max.
type Binner struct {
	Bins     int
	min, max []float64
}

// Fit implements Transform.
func (b *Binner) Fit(x *la.Dense) error {
	if b.Bins < 2 {
		return fmt.Errorf("featureng: binner needs ≥ 2 bins, got %d", b.Bins)
	}
	d := x.Cols()
	b.min = make([]float64, d)
	b.max = make([]float64, d)
	for j := 0; j < d; j++ {
		col := x.Col(j)
		b.min[j], b.max[j] = math.Inf(1), math.Inf(-1)
		for _, v := range col {
			b.min[j] = math.Min(b.min[j], v)
			b.max[j] = math.Max(b.max[j], v)
		}
	}
	return nil
}

// Apply implements Transform.
func (b *Binner) Apply(x *la.Dense) (*la.Dense, error) {
	if b.min == nil {
		return nil, fmt.Errorf("featureng: binner not fitted")
	}
	if x.Cols() != len(b.min) {
		return nil, fmt.Errorf("featureng: binner fitted on %d cols, got %d", len(b.min), x.Cols())
	}
	out := x.Clone()
	for i := 0; i < out.Rows(); i++ {
		row := out.RowView(i)
		for j := range row {
			width := b.max[j] - b.min[j]
			if width == 0 {
				row[j] = 0
				continue
			}
			bin := int((row[j] - b.min[j]) / width * float64(b.Bins))
			if bin < 0 {
				bin = 0
			}
			if bin >= b.Bins {
				bin = b.Bins - 1
			}
			row[j] = float64(bin)
		}
	}
	return out, nil
}

// Name implements Transform.
func (b *Binner) Name() string { return fmt.Sprintf("bin(%d)", b.Bins) }

// Hasher applies the hashing trick: each (column, quantized value) pair is
// hashed into one of Dims buckets with a ±1 sign, producing a fixed-width
// representation regardless of input cardinality.
type Hasher struct {
	Dims int
}

// Fit implements Transform (stateless).
func (h *Hasher) Fit(*la.Dense) error {
	if h.Dims < 1 {
		return fmt.Errorf("featureng: hasher needs ≥ 1 dims, got %d", h.Dims)
	}
	return nil
}

// Apply implements Transform.
func (h *Hasher) Apply(x *la.Dense) (*la.Dense, error) {
	if h.Dims < 1 {
		return nil, fmt.Errorf("featureng: hasher not fitted")
	}
	out := la.NewDense(x.Rows(), h.Dims)
	var key [16]byte
	for i := 0; i < x.Rows(); i++ {
		row := x.RowView(i)
		orow := out.RowView(i)
		for j, v := range row {
			bits := math.Float64bits(v)
			for b := 0; b < 8; b++ {
				key[b] = byte(bits >> (8 * b))
			}
			for b := 0; b < 8; b++ {
				key[8+b] = byte(uint(j) >> (8 * b))
			}
			hh := fnv.New64a()
			hh.Write(key[:])
			sum := hh.Sum64()
			bucket := int(sum % uint64(h.Dims))
			sign := 1.0
			if (sum>>63)&1 == 1 {
				sign = -1
			}
			orow[bucket] += sign
		}
	}
	return out, nil
}

// Name implements Transform.
func (h *Hasher) Name() string { return fmt.Sprintf("hash(%d)", h.Dims) }

// Interactions appends pairwise products of the listed column pairs.
type Interactions struct {
	Pairs [][2]int
	cols  int
}

// Fit implements Transform.
func (t *Interactions) Fit(x *la.Dense) error {
	t.cols = x.Cols()
	for _, p := range t.Pairs {
		if p[0] < 0 || p[0] >= t.cols || p[1] < 0 || p[1] >= t.cols {
			return fmt.Errorf("featureng: interaction pair %v out of range for %d cols", p, t.cols)
		}
	}
	return nil
}

// Apply implements Transform.
func (t *Interactions) Apply(x *la.Dense) (*la.Dense, error) {
	if t.cols == 0 {
		return nil, fmt.Errorf("featureng: interactions not fitted")
	}
	if x.Cols() != t.cols {
		return nil, fmt.Errorf("featureng: interactions fitted on %d cols, got %d", t.cols, x.Cols())
	}
	extra := la.NewDense(x.Rows(), len(t.Pairs))
	for i := 0; i < x.Rows(); i++ {
		row := x.RowView(i)
		erow := extra.RowView(i)
		for k, p := range t.Pairs {
			erow[k] = row[p[0]] * row[p[1]]
		}
	}
	return la.HCat(x, extra)
}

// Name implements Transform.
func (t *Interactions) Name() string { return fmt.Sprintf("interact(%d)", len(t.Pairs)) }

// Pipeline chains transforms; Fit fits each stage on the output of the
// previous one.
type Pipeline struct {
	Stages []Transform
}

// Fit implements Transform.
func (p *Pipeline) Fit(x *la.Dense) error {
	cur := x
	for _, st := range p.Stages {
		if err := st.Fit(cur); err != nil {
			return fmt.Errorf("featureng: pipeline stage %s: %w", st.Name(), err)
		}
		next, err := st.Apply(cur)
		if err != nil {
			return fmt.Errorf("featureng: pipeline stage %s: %w", st.Name(), err)
		}
		cur = next
	}
	return nil
}

// Apply implements Transform.
func (p *Pipeline) Apply(x *la.Dense) (*la.Dense, error) {
	cur := x
	for _, st := range p.Stages {
		next, err := st.Apply(cur)
		if err != nil {
			return nil, fmt.Errorf("featureng: pipeline stage %s: %w", st.Name(), err)
		}
		cur = next
	}
	return cur, nil
}

// Name implements Transform.
func (p *Pipeline) Name() string {
	name := "pipeline["
	for i, st := range p.Stages {
		if i > 0 {
			name += "→"
		}
		name += st.Name()
	}
	return name + "]"
}
