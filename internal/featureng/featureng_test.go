package featureng

import (
	"math"
	"math/rand"
	"testing"

	"dmml/internal/la"
	"dmml/internal/workload"
)

func TestStandardizer(t *testing.T) {
	r := rand.New(rand.NewSource(140))
	x, _, _ := workload.Regression(r, 500, 4, 0)
	x.Apply(func(v float64) float64 { return v*3 + 7 })
	s := &Standardizer{}
	if err := s.Fit(x); err != nil {
		t.Fatal(err)
	}
	out, err := s.Apply(x)
	if err != nil {
		t.Fatal(err)
	}
	for j, m := range out.ColMeans() {
		if math.Abs(m) > 1e-10 {
			t.Fatalf("col %d mean = %v", j, m)
		}
	}
	for j, sd := range out.ColStds() {
		if math.Abs(sd-1) > 1e-10 {
			t.Fatalf("col %d std = %v", j, sd)
		}
	}
	// Unfitted apply fails.
	if _, err := (&Standardizer{}).Apply(x); err == nil {
		t.Fatal("want unfitted error")
	}
	// Width mismatch fails.
	if _, err := s.Apply(la.NewDense(3, 2)); err == nil {
		t.Fatal("want width mismatch error")
	}
}

func TestStandardizerConstantColumn(t *testing.T) {
	x, _ := la.FromRows([][]float64{{5, 1}, {5, 2}, {5, 3}})
	s := &Standardizer{}
	_ = s.Fit(x)
	out, err := s.Apply(x)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if out.At(i, 0) != 0 {
			t.Fatalf("constant column should center to 0, got %v", out.At(i, 0))
		}
	}
}

func TestBinner(t *testing.T) {
	x, _ := la.FromRows([][]float64{{0}, {2.5}, {5}, {7.5}, {10}})
	b := &Binner{Bins: 4}
	if err := b.Fit(x); err != nil {
		t.Fatal(err)
	}
	out, err := b.Apply(x)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{0, 1, 2, 3, 3}
	for i, w := range want {
		if out.At(i, 0) != w {
			t.Fatalf("bin[%d] = %v, want %v", i, out.At(i, 0), w)
		}
	}
	// Values beyond the training range clamp.
	probe, _ := la.FromRows([][]float64{{-100}, {100}})
	clamped, _ := b.Apply(probe)
	if clamped.At(0, 0) != 0 || clamped.At(1, 0) != 3 {
		t.Fatalf("clamping failed: %v", clamped)
	}
	if err := (&Binner{Bins: 1}).Fit(x); err == nil {
		t.Fatal("want bins error")
	}
}

func TestHasher(t *testing.T) {
	r := rand.New(rand.NewSource(141))
	x, _, _ := workload.Regression(r, 50, 20, 0)
	h := &Hasher{Dims: 8}
	if err := h.Fit(x); err != nil {
		t.Fatal(err)
	}
	out, err := h.Apply(x)
	if err != nil {
		t.Fatal(err)
	}
	if out.Cols() != 8 {
		t.Fatalf("hashed width = %d", out.Cols())
	}
	// Determinism: same input hashes identically.
	out2, _ := h.Apply(x)
	if !out.Equal(out2, 0) {
		t.Fatal("hashing is not deterministic")
	}
	if err := (&Hasher{}).Fit(x); err == nil {
		t.Fatal("want dims error")
	}
}

func TestInteractions(t *testing.T) {
	x, _ := la.FromRows([][]float64{{2, 3}, {4, 5}})
	tr := &Interactions{Pairs: [][2]int{{0, 1}, {0, 0}}}
	if err := tr.Fit(x); err != nil {
		t.Fatal(err)
	}
	out, err := tr.Apply(x)
	if err != nil {
		t.Fatal(err)
	}
	if out.Cols() != 4 {
		t.Fatalf("width = %d", out.Cols())
	}
	if out.At(0, 2) != 6 || out.At(0, 3) != 4 || out.At(1, 2) != 20 || out.At(1, 3) != 16 {
		t.Fatalf("interactions = %v", out)
	}
	bad := &Interactions{Pairs: [][2]int{{0, 9}}}
	if err := bad.Fit(x); err == nil {
		t.Fatal("want range error")
	}
}

func TestPipeline(t *testing.T) {
	r := rand.New(rand.NewSource(142))
	x, _, _ := workload.Regression(r, 100, 3, 0)
	p := &Pipeline{Stages: []Transform{
		&Standardizer{},
		&Interactions{Pairs: [][2]int{{0, 1}}},
	}}
	if err := p.Fit(x); err != nil {
		t.Fatal(err)
	}
	out, err := p.Apply(x)
	if err != nil {
		t.Fatal(err)
	}
	if out.Cols() != 4 {
		t.Fatalf("pipeline width = %d", out.Cols())
	}
	if p.Name() != "pipeline[standardize→interact(1)]" {
		t.Fatalf("name = %s", p.Name())
	}
}

func subsetsFor(d, count, size int, seed int64) [][]int {
	r := rand.New(rand.NewSource(seed))
	out := make([][]int, count)
	for i := range out {
		out[i] = r.Perm(d)[:size]
	}
	return out
}

func TestExploreReuseMatchesNaive(t *testing.T) {
	r := rand.New(rand.NewSource(143))
	x, y, _ := workload.Regression(r, 400, 12, 0.1)
	subsets := subsetsFor(12, 10, 5, 7)
	naive := &Explorer{L2: 0.1}
	reuse := &Explorer{Reuse: true, L2: 0.1}
	fitsN, statsN, err := naive.Explore(x, y, subsets)
	if err != nil {
		t.Fatal(err)
	}
	fitsR, statsR, err := reuse.Explore(x, y, subsets)
	if err != nil {
		t.Fatal(err)
	}
	for i := range fitsN {
		for j := range fitsN[i].W {
			if math.Abs(fitsN[i].W[j]-fitsR[i].W[j]) > 1e-8 {
				t.Fatalf("subset %d w[%d]: naive %v vs reuse %v", i, j, fitsN[i].W[j], fitsR[i].W[j])
			}
		}
		if math.Abs(fitsN[i].TrainMSE-fitsR[i].TrainMSE) > 1e-8 {
			t.Fatalf("subset %d MSE: %v vs %v", i, fitsN[i].TrainMSE, fitsR[i].TrainMSE)
		}
	}
	// The whole point: reuse does 1 data pass, naive does one per subset.
	if statsR.DataPasses != 1 {
		t.Fatalf("reuse passes = %d", statsR.DataPasses)
	}
	if statsN.DataPasses != 10 {
		t.Fatalf("naive passes = %d", statsN.DataPasses)
	}
}

func TestExploreTrainMSEIsAccurate(t *testing.T) {
	r := rand.New(rand.NewSource(144))
	x, y, _ := workload.Regression(r, 300, 6, 0.2)
	full := []int{0, 1, 2, 3, 4, 5}
	fits, _, err := (&Explorer{Reuse: true, L2: 1e-9}).Explore(x, y, [][]int{full})
	if err != nil {
		t.Fatal(err)
	}
	// Direct residual computation must agree with the Gram-space MSE.
	pred := la.MatVec(x, fits[0].W)
	var direct float64
	for i := range y {
		d := pred[i] - y[i]
		direct += d * d
	}
	direct /= float64(len(y))
	if math.Abs(direct-fits[0].TrainMSE) > 1e-6 {
		t.Fatalf("gram-space MSE %v vs direct %v", fits[0].TrainMSE, direct)
	}
}

func TestExploreCoreset(t *testing.T) {
	r := rand.New(rand.NewSource(145))
	x, y, _ := workload.Regression(r, 2000, 8, 0.05)
	subsets := [][]int{{0, 1, 2, 3, 4, 5, 6, 7}}
	full, _, err := (&Explorer{Reuse: true, L2: 0.01}).Explore(x, y, subsets)
	if err != nil {
		t.Fatal(err)
	}
	coreset, _, err := (&Explorer{Reuse: true, L2: 0.01, CoresetFrac: 0.25, Seed: 5}).Explore(x, y, subsets)
	if err != nil {
		t.Fatal(err)
	}
	// Coreset estimates approximate the full fit.
	for j := range full[0].W {
		if math.Abs(full[0].W[j]-coreset[0].W[j]) > 0.1 {
			t.Fatalf("coreset w[%d] = %v, full %v", j, coreset[0].W[j], full[0].W[j])
		}
	}
}

func TestExploreValidation(t *testing.T) {
	x := la.NewDense(10, 3)
	y := make([]float64, 10)
	e := &Explorer{L2: 0.1}
	if _, _, err := e.Explore(x, y[:5], [][]int{{0}}); err == nil {
		t.Fatal("want label mismatch error")
	}
	if _, _, err := e.Explore(x, y, nil); err == nil {
		t.Fatal("want no-subsets error")
	}
	if _, _, err := e.Explore(x, y, [][]int{{}}); err == nil {
		t.Fatal("want empty subset error")
	}
	if _, _, err := e.Explore(x, y, [][]int{{9}}); err == nil {
		t.Fatal("want range error")
	}
}

func TestGreedyForwardSelection(t *testing.T) {
	r := rand.New(rand.NewSource(146))
	// Only features 0 and 3 carry signal.
	n := 500
	x := la.NewDense(n, 6)
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		row := x.RowView(i)
		for j := range row {
			row[j] = r.NormFloat64()
		}
		y[i] = 3*row[0] - 2*row[3] + 0.01*r.NormFloat64()
	}
	sel, mses, err := GreedyForwardSelection(x, y, 3, 1e-6)
	if err != nil {
		t.Fatal(err)
	}
	if !(sel[0] == 0 || sel[0] == 3) || !(sel[1] == 0 || sel[1] == 3) || sel[0] == sel[1] {
		t.Fatalf("selected = %v, want {0,3} first", sel)
	}
	// MSE trail must be non-increasing.
	for i := 1; i < len(mses); i++ {
		if mses[i] > mses[i-1]+1e-9 {
			t.Fatalf("MSE trail not monotone: %v", mses)
		}
	}
	if _, _, err := GreedyForwardSelection(x, y, 0, 0.1); err == nil {
		t.Fatal("want maxFeatures error")
	}
}
