// Package ooc implements the out-of-core training datapath: a row-block
// partitioned matrix whose blocks live in a storage.BufferPool as pages —
// CLA-compressed (via internal/compress's page codec) when the encoding pays,
// raw row-major otherwise — with an async double-buffered prefetcher that
// pins block N+1 while the optimizer computes on block N.
//
// The paper's out-of-core and CLA sections motivate the design: training on
// data larger than RAM at near in-memory speed requires (a) bounded resident
// memory with LRU spill, (b) compression so each disk/pool byte carries more
// rows, and (c) operating directly on the compressed form so pinning a block
// does not cost a decompression. ooc.Matrix implements opt.BulkDataInto and
// opt.BlockData, so every bulk solver in internal/opt accepts one unchanged.
package ooc

import (
	"fmt"

	"dmml/internal/compress"
	"dmml/internal/la"
	"dmml/internal/opt"
	"dmml/internal/storage"
)

// Options tunes block construction.
type Options struct {
	// BlockRows is the number of rows per block (default 4096). The last
	// block may be short.
	BlockRows int
	// NoCompress disables CLA compression: every block is stored as a raw
	// row-major page. Mostly for experiments comparing the two layouts.
	NoCompress bool
	// MinRatio is the compression ratio (dense bytes / page bytes) a block
	// must achieve for the compressed form to be kept; below it the raw
	// layout wins because decoding cost buys no byte savings. Default 1.2.
	MinRatio float64
	// Prefetch enables the async double-buffered block prefetcher for
	// ForEachBlock streams. Default off; SetPrefetch toggles it per matrix.
	Prefetch bool
	// CompressOpts forwards planner options to internal/compress.
	CompressOpts compress.Options
}

func (o Options) withDefaults() Options {
	if o.BlockRows <= 0 {
		o.BlockRows = 4096
	}
	if o.MinRatio <= 0 {
		o.MinRatio = 1.2
	}
	return o
}

// blockMeta describes one row block without holding its data.
type blockMeta struct {
	startRow   int
	rows       int
	words      int // page length in float64 words
	compressed bool
}

// Matrix is a block-partitioned matrix whose row blocks are buffer-pool
// pages. It is immutable after Build/FromDense. Reads pin pages on demand, so
// resident memory is bounded by the pool's budget regardless of matrix size.
type Matrix struct {
	bp       *storage.BufferPool
	owner    int
	rows     int
	cols     int
	blocks   []blockMeta
	prefetch bool
}

// Rows implements opt.BulkData.
func (m *Matrix) Rows() int { return m.rows }

// Cols implements opt.BulkData.
func (m *Matrix) Cols() int { return m.cols }

// Dims returns the matrix dimensions.
func (m *Matrix) Dims() (rows, cols int) { return m.rows, m.cols }

// NumBlocks implements opt.BlockData.
func (m *Matrix) NumBlocks() int { return len(m.blocks) }

// SetPrefetch toggles async block prefetch for subsequent streams.
func (m *Matrix) SetPrefetch(on bool) { m.prefetch = on }

// CompressedBlocks returns how many blocks kept the CLA-compressed layout.
func (m *Matrix) CompressedBlocks() int {
	n := 0
	for _, b := range m.blocks {
		if b.compressed {
			n++
		}
	}
	return n
}

// PagedBytes returns the total page bytes across all blocks — the footprint
// the matrix would have if fully resident, and the amount of disk it occupies
// when fully spilled.
func (m *Matrix) PagedBytes() int64 {
	var n int64
	for _, b := range m.blocks {
		n += 8 * int64(b.words)
	}
	return n
}

// DenseBytes returns the footprint of the equivalent fully-dense matrix.
func (m *Matrix) DenseBytes() int64 { return 8 * int64(m.rows) * int64(m.cols) }

// Drop releases every page (resident and spilled) backing the matrix.
func (m *Matrix) Drop() error { return m.bp.DropOwner(m.owner) }

// Builder assembles a Matrix block-by-block so sources (CSV readers, result
// writers) never materialize more than one block of dense data at a time.
type Builder struct {
	bp    *storage.BufferPool
	owner int
	cols  int
	opts  Options
	m     *Matrix
	done  bool
}

// NewBuilder starts building a cols-wide matrix in bp.
func NewBuilder(bp *storage.BufferPool, cols int, opts Options) *Builder {
	opts = opts.withDefaults()
	owner := bp.RegisterOwner()
	return &Builder{
		bp:    bp,
		owner: owner,
		cols:  cols,
		opts:  opts,
		m:     &Matrix{bp: bp, owner: owner, cols: cols, prefetch: opts.Prefetch},
	}
}

// AppendBlock adds d's rows as the next block. The block is compressed when
// compression pays (per Options), written into a pool page, and unpinned, so
// the pool may evict or spill it immediately.
func (b *Builder) AppendBlock(d *la.Dense) error {
	if b.done {
		return fmt.Errorf("ooc: AppendBlock after Finish")
	}
	if d.Cols() != b.cols {
		return fmt.Errorf("ooc: AppendBlock with %d cols, want %d", d.Cols(), b.cols)
	}
	meta := blockMeta{startRow: b.m.rows, rows: d.Rows()}
	var cm *compress.Matrix
	if !b.opts.NoCompress {
		c := compress.Compress(d, b.opts.CompressOpts)
		words := compress.EncodedLen(c)
		if float64(d.Rows()*d.Cols())/float64(words) >= b.opts.MinRatio {
			cm = c
			meta.compressed = true
			meta.words = words
		}
	}
	if cm == nil {
		meta.words = d.Rows() * d.Cols()
	}
	id := storage.PageID{Owner: b.owner, Index: len(b.m.blocks)}
	page, err := b.bp.Pin(id, meta.words)
	if err != nil {
		return fmt.Errorf("ooc: AppendBlock: %w", err)
	}
	if cm != nil {
		if err := compress.EncodeInto(page, cm); err != nil {
			b.bp.Unpin(id, false)
			return fmt.Errorf("ooc: AppendBlock: %w", err)
		}
	} else {
		copy(page, d.RawData())
	}
	b.bp.Unpin(id, true)
	b.m.blocks = append(b.m.blocks, meta)
	b.m.rows += meta.rows
	mBlocksBuilt.Inc()
	return nil
}

// Finish flushes all dirty pages to disk (so the matrix survives pool
// eviction of any block) and returns the completed Matrix.
func (b *Builder) Finish() (*Matrix, error) {
	if b.done {
		return nil, fmt.Errorf("ooc: Finish called twice")
	}
	b.done = true
	if b.m.rows == 0 {
		return nil, fmt.Errorf("ooc: Finish with no rows appended")
	}
	if err := b.bp.FlushAll(); err != nil {
		return nil, fmt.Errorf("ooc: Finish: %w", err)
	}
	return b.m, nil
}

// FromDense partitions m into blocks and pages them into bp. The source is
// read one block at a time, so peak extra memory is one block's dense copy.
func FromDense(bp *storage.BufferPool, m *la.Dense, opts Options) (*Matrix, error) {
	opts = opts.withDefaults()
	b := NewBuilder(bp, m.Cols(), opts)
	rows, cols := m.Dims()
	for r0 := 0; r0 < rows; r0 += opts.BlockRows {
		nb := opts.BlockRows
		if r0+nb > rows {
			nb = rows - r0
		}
		blk, err := la.NewDenseData(nb, cols, m.RawData()[r0*cols:(r0+nb)*cols])
		if err != nil {
			return nil, err
		}
		if err := b.AppendBlock(blk); err != nil {
			return nil, err
		}
	}
	return b.Finish()
}

// ToDense materializes the full matrix — the decompress-on-pin path. Only
// use it when the result is known to fit in memory (tests, small outputs).
func (m *Matrix) ToDense() (*la.Dense, error) {
	out := la.NewDense(m.rows, m.cols)
	err := m.ForEachBlock(func(rb opt.RowBlock) error {
		b := rb.(*block)
		dst := out.RawData()[b.meta.startRow*m.cols : (b.meta.startRow+b.meta.rows)*m.cols]
		return b.decompressInto(dst)
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

var (
	_ opt.BulkDataInto = (*Matrix)(nil)
	_ opt.BlockData    = (*Matrix)(nil)
)
