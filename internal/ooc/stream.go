package ooc

import (
	"fmt"
	"sync"

	"dmml/internal/compress"
	"dmml/internal/la"
	"dmml/internal/opt"
	"dmml/internal/storage"
)

// block is one pinned, decoded row block. It implements opt.RowBlock and is
// valid only while its page stays pinned (i.e. inside the ForEachBlock
// callback that delivered it).
type block struct {
	m    *Matrix
	meta *blockMeta
	idx  int
	page []float64        // pinned page words
	cm   *compress.Matrix // decoded view, non-nil iff compressed
	dn   *la.Dense        // zero-copy dense view, non-nil iff raw
}

// StartRow implements opt.RowBlock.
func (b *block) StartRow() int { return b.meta.startRow }

// Rows implements opt.RowBlock.
func (b *block) Rows() int { return b.meta.rows }

// Cols implements opt.RowBlock.
func (b *block) Cols() int { return b.m.cols }

// MatVecInto implements opt.RowBlock: operate-over-compressed for CLA blocks,
// plain row-major kernel for raw blocks.
func (b *block) MatVecInto(dst, v []float64) []float64 {
	if b.cm != nil {
		return b.cm.MatVecInto(dst, v)
	}
	return la.MatVecInto(dst, b.dn, v)
}

// VecMatAccum implements opt.RowBlock. The compressed path dispatches through
// the Group interface, so the noalloc proof lives on the concrete group
// methods in internal/compress rather than on this wrapper.
func (b *block) VecMatAccum(out, x []float64) {
	if b.cm != nil {
		b.cm.VecMatAccum(out, x)
		return
	}
	cols := b.m.cols
	raw := b.dn.RawData()
	for i, xi := range x {
		if xi == 0 {
			continue
		}
		row := raw[i*cols : (i+1)*cols]
		la.Axpy(xi, row, out)
	}
}

// GramAccum adds Xbᵀ·Xb into out (cols×cols, row-major) — the block
// contribution to the full Gram matrix.
func (b *block) GramAccum(out *la.Dense) {
	if b.cm != nil {
		b.cm.GramAccum(out)
		return
	}
	cols := b.m.cols
	raw := b.dn.RawData()
	od := out.RawData()
	for i := 0; i < b.meta.rows; i++ {
		row := raw[i*cols : (i+1)*cols]
		for j, vj := range row {
			if vj == 0 {
				continue
			}
			la.Axpy(vj, row, od[j*cols:(j+1)*cols])
		}
	}
}

// decompressInto writes the block's rows into dst (rows*cols floats,
// row-major) — the decompress-on-pin path for consumers that need raw rows.
func (b *block) decompressInto(dst []float64) error {
	if len(dst) != b.meta.rows*b.m.cols {
		return fmt.Errorf("ooc: decompressInto dst len %d, want %d", len(dst), b.meta.rows*b.m.cols)
	}
	if b.cm == nil {
		copy(dst, b.dn.RawData())
		return nil
	}
	d, err := la.NewDenseData(b.meta.rows, b.m.cols, dst)
	if err != nil {
		return err
	}
	sw := mDecompressTimer.Start()
	b.cm.DecompressInto(d)
	sw.Stop()
	return nil
}

// pinBlock pins block idx's page and decodes it into a usable view.
func (m *Matrix) pinBlock(idx int) (*block, error) {
	meta := &m.blocks[idx]
	id := storage.PageID{Owner: m.owner, Index: idx}
	page, err := m.bp.Pin(id, meta.words)
	if err != nil {
		return nil, fmt.Errorf("ooc: pin block %d: %w", idx, err)
	}
	mBlockPins.Inc()
	b := &block{m: m, meta: meta, idx: idx, page: page}
	if meta.compressed {
		sw := mDecodeTimer.Start()
		cm, err := compress.DecodePage(page)
		sw.Stop()
		if err != nil {
			m.bp.Unpin(id, false)
			return nil, fmt.Errorf("ooc: decode block %d: %w", idx, err)
		}
		b.cm = cm
	} else {
		dn, err := la.NewDenseData(meta.rows, m.cols, page)
		if err != nil {
			m.bp.Unpin(id, false)
			return nil, fmt.Errorf("ooc: view block %d: %w", idx, err)
		}
		b.dn = dn
	}
	return b, nil
}

func (m *Matrix) unpinBlock(idx int) {
	m.bp.Unpin(storage.PageID{Owner: m.owner, Index: idx}, false)
}

// ForEachBlock implements opt.BlockData. With prefetch enabled a producer
// goroutine pins and decodes block N+1 while the callback computes on block
// N; the unbuffered handoff channel caps the pipeline at two pinned blocks
// (the one in flight plus the one in the callback), so resident memory stays
// bounded no matter how many blocks stream past. Steady state allocates
// nothing beyond the per-block decode views.
func (m *Matrix) ForEachBlock(f func(opt.RowBlock) error) error {
	if !m.prefetch || len(m.blocks) < 2 {
		for i := range m.blocks {
			b, err := m.pinBlock(i)
			if err != nil {
				return err
			}
			err = f(b)
			m.unpinBlock(i)
			if err != nil {
				return err
			}
		}
		return nil
	}
	type fetched struct {
		b   *block
		err error
	}
	ch := make(chan fetched) // unbuffered: producer stays ≤1 block ahead
	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	// Defers run LIFO: close(done) first to release a blocked producer, then
	// wait for it to exit so no pin outlives this call.
	defer wg.Wait()
	defer close(done)
	go func() {
		defer wg.Done()
		defer close(ch)
		for i := range m.blocks {
			b, err := m.pinBlock(i)
			select {
			case ch <- fetched{b, err}:
			case <-done:
				// Consumer bailed; release the orphaned pin and stop.
				if err == nil {
					m.unpinBlock(i)
				}
				return
			}
		}
	}()
	for range m.blocks {
		var fe fetched
		var ok bool
		// A block already parked in the channel means the producer finished
		// ahead of the compute — a prefetch hit. Blocking on the receive
		// means compute outran I/O+decode for this block.
		select {
		case fe, ok = <-ch:
			if ok {
				mPrefetchHits.Inc()
			}
		default:
			fe, ok = <-ch
			if ok {
				mPrefetchMisses.Inc()
			}
		}
		if !ok {
			return fmt.Errorf("ooc: block stream ended early")
		}
		if fe.err != nil {
			return fe.err
		}
		err := f(fe.b)
		m.unpinBlock(fe.b.idx)
		if err != nil {
			return err
		}
	}
	updatePrefetchHitRate()
	return nil
}

// MatVec implements opt.BulkData.
func (m *Matrix) MatVec(v []float64) []float64 {
	return m.MatVecInto(make([]float64, m.rows), v)
}

// MatVecInto implements opt.BulkDataInto by streaming blocks.
func (m *Matrix) MatVecInto(dst, v []float64) []float64 {
	if len(dst) != m.rows || len(v) != m.cols {
		panic(fmt.Sprintf("ooc: MatVecInto dst %d, v %d for %dx%d", len(dst), len(v), m.rows, m.cols))
	}
	err := m.ForEachBlock(func(b opt.RowBlock) error {
		b.MatVecInto(dst[b.StartRow():b.StartRow()+b.Rows()], v)
		return nil
	})
	if err != nil {
		panic(fmt.Sprintf("ooc: MatVecInto: %v", err))
	}
	return dst
}

// VecMat implements opt.BulkData.
func (m *Matrix) VecMat(x []float64) []float64 {
	return m.VecMatInto(make([]float64, m.cols), x)
}

// VecMatInto implements opt.BulkDataInto by streaming blocks.
func (m *Matrix) VecMatInto(dst, x []float64) []float64 {
	if len(dst) != m.cols || len(x) != m.rows {
		panic(fmt.Sprintf("ooc: VecMatInto dst %d, x %d for %dx%d", len(dst), len(x), m.rows, m.cols))
	}
	for j := range dst {
		dst[j] = 0
	}
	err := m.ForEachBlock(func(b opt.RowBlock) error {
		b.VecMatAccum(dst, x[b.StartRow():b.StartRow()+b.Rows()])
		return nil
	})
	if err != nil {
		panic(fmt.Sprintf("ooc: VecMatInto: %v", err))
	}
	return dst
}

// Gram computes XᵀX by streaming blocks — the physical pattern the DML
// evaluator rewrites t(X)%*%X into, now available out-of-core.
func (m *Matrix) Gram() (*la.Dense, error) {
	out := la.NewDense(m.cols, m.cols)
	err := m.ForEachBlock(func(b opt.RowBlock) error {
		b.(*block).GramAccum(out)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// ColSums accumulates per-column sums across all blocks.
func (m *Matrix) ColSums() ([]float64, error) {
	out := make([]float64, m.cols)
	ones := make([]float64, 0)
	err := m.ForEachBlock(func(rb opt.RowBlock) error {
		b := rb.(*block)
		if b.cm != nil {
			b.cm.ColSumsAccum(out)
			return nil
		}
		if cap(ones) < b.meta.rows {
			ones = make([]float64, b.meta.rows)
			for i := range ones {
				ones[i] = 1
			}
		}
		b.VecMatAccum(out, ones[:b.meta.rows])
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}
