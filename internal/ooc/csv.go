package ooc

import (
	"encoding/csv"
	"fmt"
	"io"
	"os"
	"strconv"

	"dmml/internal/la"
	"dmml/internal/storage"
)

// ReadCSV streams numeric CSV from r into a block-paged matrix: rows
// accumulate into one dense block buffer at a time, each full block is
// compressed and paged out through the builder, and the buffer is reused —
// peak memory is one block plus whatever the pool keeps resident, no matter
// how large the file is.
func ReadCSV(bp *storage.BufferPool, r io.Reader, opts Options) (*Matrix, error) {
	opts = opts.withDefaults()
	cr := csv.NewReader(r)
	cr.ReuseRecord = true
	var (
		b     *Builder
		cols  int
		buf   []float64 // block accumulation buffer, opts.BlockRows*cols
		nrows int       // rows currently in buf
		row   int       // absolute row, for errors
	)
	flush := func() error {
		if nrows == 0 {
			return nil
		}
		d, err := la.NewDenseData(nrows, cols, buf[:nrows*cols])
		if err != nil {
			return err
		}
		if err := b.AppendBlock(d); err != nil {
			return err
		}
		nrows = 0
		return nil
	}
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("ooc: csv read: %w", err)
		}
		if b == nil {
			cols = len(rec)
			b = NewBuilder(bp, cols, opts)
			buf = make([]float64, opts.BlockRows*cols)
		}
		if len(rec) != cols {
			return nil, fmt.Errorf("ooc: csv row %d has %d fields, want %d", row, len(rec), cols)
		}
		dst := buf[nrows*cols : (nrows+1)*cols]
		for j, field := range rec {
			v, err := strconv.ParseFloat(field, 64)
			if err != nil {
				return nil, fmt.Errorf("ooc: csv row %d col %d: %w", row, j, err)
			}
			dst[j] = v
		}
		nrows++
		row++
		if nrows == opts.BlockRows {
			if err := flush(); err != nil {
				return nil, err
			}
		}
	}
	if b == nil {
		return nil, fmt.Errorf("ooc: csv input is empty")
	}
	if err := flush(); err != nil {
		return nil, err
	}
	return b.Finish()
}

// ReadCSVFile streams a CSV file into a block-paged matrix.
func ReadCSVFile(bp *storage.BufferPool, path string, opts Options) (*Matrix, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("ooc: %w", err)
	}
	defer f.Close()
	return ReadCSV(bp, f, opts)
}
