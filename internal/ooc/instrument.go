package ooc

import "dmml/internal/metrics"

// Observability instruments (no-ops until metrics.Enable). Together with the
// storage.bufferpool.* counters these answer the out-of-core questions: how
// often does a block pin hit the pool, how often does the prefetcher stay
// ahead of the kernel, and where does the time go (decode vs decompress).
var (
	mBlocksBuilt     = metrics.NewCounter("ooc.blocks.built")
	mBlockPins       = metrics.NewCounter("ooc.blocks.pins")
	mPrefetchHits    = metrics.NewCounter("ooc.prefetch.hits")
	mPrefetchMisses  = metrics.NewCounter("ooc.prefetch.misses")
	mPrefetchHitRate = metrics.NewGauge("ooc.prefetch.hit_rate")
	mDecodeTimer     = metrics.NewTimer("ooc.block.decode")
	mDecompressTimer = metrics.NewTimer("ooc.block.decompress")
)

// updatePrefetchHitRate recomputes the process-wide prefetch hit-rate gauge
// from the cumulative counters.
func updatePrefetchHitRate() {
	h, m := mPrefetchHits.Value(), mPrefetchMisses.Value()
	if h+m > 0 {
		mPrefetchHitRate.Set(float64(h) / float64(h+m))
	}
}
