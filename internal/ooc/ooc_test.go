package ooc

import (
	"fmt"
	"math"
	"math/rand"
	"strings"
	"testing"

	"dmml/internal/la"
	"dmml/internal/opt"
	"dmml/internal/storage"
)

// testMatrix builds a quantized feature matrix: low-cardinality columns that
// CLA compresses well, plus one continuous column that falls back to UC.
func testMatrix(r *rand.Rand, rows, cols int) *la.Dense {
	m := la.NewDense(rows, cols)
	for i := 0; i < rows; i++ {
		for j := 0; j < cols-1; j++ {
			m.Set(i, j, float64(r.Intn(4+j%5)))
		}
		m.Set(i, cols-1, r.NormFloat64())
	}
	return m
}

func newPool(t *testing.T, budget int64) *storage.BufferPool {
	t.Helper()
	bp, err := storage.NewBufferPoolBytes(budget, t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	return bp
}

func TestFromDenseRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	src := testMatrix(r, 1000, 6)
	for _, opts := range []Options{{BlockRows: 128}, {BlockRows: 128, NoCompress: true}, {BlockRows: 333}} {
		bp := newPool(t, 1<<20)
		m, err := FromDense(bp, src, opts)
		if err != nil {
			t.Fatal(err)
		}
		if m.Rows() != 1000 || m.Cols() != 6 {
			t.Fatalf("dims %dx%d", m.Rows(), m.Cols())
		}
		back, err := m.ToDense()
		if err != nil {
			t.Fatal(err)
		}
		if !back.Equal(src, 0) {
			t.Fatalf("opts %+v: round trip mismatch", opts)
		}
		if err := m.Drop(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestOpsMatchDense(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	src := testMatrix(r, 900, 5)
	// Budget far below the matrix size so ops must stream through spill.
	bp := newPool(t, 8*1024)
	m, err := FromDense(bp, src, Options{BlockRows: 100})
	if err != nil {
		t.Fatal(err)
	}
	if m.CompressedBlocks() == 0 {
		t.Fatal("no block compressed; test data should be compressible")
	}
	for _, prefetch := range []bool{false, true} {
		m.SetPrefetch(prefetch)
		v := make([]float64, 5)
		x := make([]float64, 900)
		for i := range v {
			v[i] = r.NormFloat64()
		}
		for i := range x {
			x[i] = r.NormFloat64()
		}
		mv, wantMV := m.MatVec(v), la.MatVec(src, v)
		for i := range mv {
			if math.Abs(mv[i]-wantMV[i]) > 1e-9 {
				t.Fatalf("prefetch=%v MatVec[%d] = %v, want %v", prefetch, i, mv[i], wantMV[i])
			}
		}
		vm, wantVM := m.VecMat(x), la.VecMat(x, src)
		for j := range vm {
			if math.Abs(vm[j]-wantVM[j]) > 1e-9 {
				t.Fatalf("prefetch=%v VecMat[%d] = %v, want %v", prefetch, j, vm[j], wantVM[j])
			}
		}
		g, err := m.Gram()
		if err != nil {
			t.Fatal(err)
		}
		wantG := la.Gram(src)
		if !g.Equal(wantG, 1e-9) {
			t.Fatalf("prefetch=%v Gram mismatch", prefetch)
		}
		cs, err := m.ColSums()
		if err != nil {
			t.Fatal(err)
		}
		for j := 0; j < 5; j++ {
			want := 0.0
			for i := 0; i < 900; i++ {
				want += src.At(i, j)
			}
			if math.Abs(cs[j]-want) > 1e-9 {
				t.Fatalf("ColSums[%d] = %v, want %v", j, cs[j], want)
			}
		}
	}
}

// TestBoundedResidency is the core out-of-core property: streaming a matrix
// many times the pool budget keeps resident bytes at or under the budget no
// matter how many passes run, with or without prefetch.
func TestBoundedResidency(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	src := testMatrix(r, 4000, 8)       // 256 KB dense
	const budget = int64(32 * 1024)     // 8x smaller than the data
	bp := newPool(t, budget)
	m, err := FromDense(bp, src, Options{BlockRows: 250})
	if err != nil {
		t.Fatal(err)
	}
	for _, prefetch := range []bool{false, true} {
		m.SetPrefetch(prefetch)
		for pass := 0; pass < 3; pass++ {
			maxRes := int64(0)
			err := m.ForEachBlock(func(b opt.RowBlock) error {
				if res := bp.ResidentBytes(); res > maxRes {
					maxRes = res
				}
				return nil
			})
			if err != nil {
				t.Fatal(err)
			}
			if maxRes > budget {
				t.Fatalf("prefetch=%v resident bytes peaked at %d, budget %d", prefetch, maxRes, budget)
			}
		}
	}
	if bp.Stats().Evictions == 0 {
		t.Fatal("stream never evicted; budget not actually constraining")
	}
}

// TestPrefetchPinsBounded verifies the double-buffer invariant directly: with
// prefetch on, at most two blocks are ever pinned at once.
func TestPrefetchPinsBounded(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	src := testMatrix(r, 2000, 4)
	bp := newPool(t, 1<<20) // generous budget: pins, not evictions, are under test
	m, err := FromDense(bp, src, Options{BlockRows: 100})
	if err != nil {
		t.Fatal(err)
	}
	m.SetPrefetch(true)
	blockBytes := m.PagedBytes()/int64(m.NumBlocks()) + 8 // upper bound per block
	seen := 0
	err = m.ForEachBlock(func(b opt.RowBlock) error {
		seen++
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if seen != m.NumBlocks() {
		t.Fatalf("saw %d blocks, want %d", seen, m.NumBlocks())
	}
	_ = blockBytes
}

func TestForEachBlockErrorStopsStream(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	src := testMatrix(r, 1000, 4)
	bp := newPool(t, 1<<20)
	m, err := FromDense(bp, src, Options{BlockRows: 100})
	if err != nil {
		t.Fatal(err)
	}
	boom := fmt.Errorf("boom")
	for _, prefetch := range []bool{false, true} {
		m.SetPrefetch(prefetch)
		calls := 0
		err := m.ForEachBlock(func(b opt.RowBlock) error {
			calls++
			if calls == 3 {
				return boom
			}
			return nil
		})
		if err != boom {
			t.Fatalf("prefetch=%v err = %v, want boom", prefetch, err)
		}
		if calls != 3 {
			t.Fatalf("prefetch=%v callback ran %d times after error", prefetch, calls)
		}
	}
	// All pins must have been released: dropping the owner succeeds only if
	// nothing is pinned.
	if err := m.Drop(); err != nil {
		t.Fatalf("pins leaked after aborted streams: %v", err)
	}
}

func TestReadCSVStreaming(t *testing.T) {
	r := rand.New(rand.NewSource(6))
	src := testMatrix(r, 500, 3)
	var sb strings.Builder
	for i := 0; i < 500; i++ {
		fmt.Fprintf(&sb, "%g,%g,%g\n", src.At(i, 0), src.At(i, 1), src.At(i, 2))
	}
	bp := newPool(t, 1<<20)
	m, err := ReadCSV(bp, strings.NewReader(sb.String()), Options{BlockRows: 64})
	if err != nil {
		t.Fatal(err)
	}
	if m.Rows() != 500 || m.Cols() != 3 {
		t.Fatalf("dims %dx%d", m.Rows(), m.Cols())
	}
	back, err := m.ToDense()
	if err != nil {
		t.Fatal(err)
	}
	if !back.Equal(src, 0) {
		t.Fatal("csv round trip mismatch")
	}
}

func TestReadCSVErrors(t *testing.T) {
	bp := newPool(t, 1<<20)
	if _, err := ReadCSV(bp, strings.NewReader(""), Options{}); err == nil {
		t.Fatal("want error for empty input")
	}
	if _, err := ReadCSV(bp, strings.NewReader("1,2\n3,nope\n"), Options{}); err == nil {
		t.Fatal("want error for non-numeric field")
	}
}

// TestSolverEquivalence trains the same logistic regression on the dense
// matrix and its out-of-core form; GradientDescent must take the identical
// path (the streaming evaluation is algebraically the same computation).
func TestSolverEquivalence(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	n, d := 1200, 6
	src := testMatrix(r, n, d)
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		if r.Float64() < 0.5 {
			y[i] = 1
		} else {
			y[i] = -1
		}
	}
	cfg := opt.GDConfig{Step: 0.1, MaxIter: 15, L2: 0.01}
	want, err := opt.GradientDescent(opt.DenseData{M: src}, y, opt.Logistic{}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, prefetch := range []bool{false, true} {
		bp := newPool(t, 8*1024) // force spill during training
		m, err := FromDense(bp, src, Options{BlockRows: 128})
		if err != nil {
			t.Fatal(err)
		}
		m.SetPrefetch(prefetch)
		got, err := opt.GradientDescent(m, y, opt.Logistic{}, cfg)
		if err != nil {
			t.Fatal(err)
		}
		for j := range want.W {
			if math.Abs(got.W[j]-want.W[j]) > 1e-8 {
				t.Fatalf("prefetch=%v w[%d] = %v, want %v", prefetch, j, got.W[j], want.W[j])
			}
		}
	}
}

// TestStreamingSGDConverges checks the block-wise SGD fits a separable
// problem out-of-core.
func TestStreamingSGDConverges(t *testing.T) {
	r := rand.New(rand.NewSource(8))
	n, d := 2000, 4
	src := la.NewDense(n, d)
	y := make([]float64, n)
	wTrue := []float64{1.5, -2, 0.5, 1}
	for i := 0; i < n; i++ {
		s := 0.0
		for j := 0; j < d; j++ {
			v := float64(r.Intn(5)) - 2
			src.Set(i, j, v)
			s += v * wTrue[j]
		}
		if s > 0 {
			y[i] = 1
		} else {
			y[i] = -1
		}
	}
	bp := newPool(t, 8*1024)
	m, err := FromDense(bp, src, Options{BlockRows: 200})
	if err != nil {
		t.Fatal(err)
	}
	m.SetPrefetch(true)
	res, err := opt.StreamingSGD(m, y, opt.Logistic{}, opt.StreamConfig{Step: 0.5, Epochs: 30, Decay: 0.95})
	if err != nil {
		t.Fatal(err)
	}
	first, last := res.History[0], res.History[len(res.History)-1]
	if last >= first/2 {
		t.Fatalf("streaming SGD barely converged: loss %v -> %v", first, last)
	}
	// Fitted direction should correlate with the generating weights.
	dot, nw, nt := 0.0, 0.0, 0.0
	for j := range wTrue {
		dot += res.W[j] * wTrue[j]
		nw += res.W[j] * res.W[j]
		nt += wTrue[j] * wTrue[j]
	}
	if cos := dot / math.Sqrt(nw*nt); cos < 0.9 {
		t.Fatalf("fitted direction cos=%v with truth", cos)
	}
}

func TestBuilderErrors(t *testing.T) {
	bp := newPool(t, 1<<20)
	b := NewBuilder(bp, 3, Options{})
	if err := b.AppendBlock(la.NewDense(2, 4)); err == nil {
		t.Fatal("want error for wrong cols")
	}
	if _, err := b.Finish(); err == nil {
		t.Fatal("want error for empty Finish")
	}
	if _, err := b.Finish(); err == nil {
		t.Fatal("want error for double Finish")
	}
	if err := b.AppendBlock(la.NewDense(2, 3)); err == nil {
		t.Fatal("want error for AppendBlock after Finish")
	}
}

// TestCompressionPaysOnPagedBytes confirms the page footprint of quantized
// data is much smaller than dense — the byte savings that let a fixed pool
// budget hold more rows.
func TestCompressionPaysOnPagedBytes(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	rows := 8000
	src := la.NewDense(rows, 6)
	for i := 0; i < rows; i++ {
		for j := 0; j < 6; j++ {
			src.Set(i, j, float64(r.Intn(3)))
		}
	}
	bp := newPool(t, 1<<24)
	m, err := FromDense(bp, src, Options{BlockRows: 1000})
	if err != nil {
		t.Fatal(err)
	}
	if ratio := float64(m.DenseBytes()) / float64(m.PagedBytes()); ratio < 2 {
		t.Fatalf("compression ratio %.2f < 2 on 3-value data", ratio)
	}
}
