package ml

import (
	"math"
	"math/rand"
	"testing"

	"dmml/internal/la"
	"dmml/internal/workload"
)

func TestLinearRegressionSolversAgree(t *testing.T) {
	r := rand.New(rand.NewSource(110))
	x, y, wTrue := workload.Regression(r, 400, 6, 0.01)
	var ws [][]float64
	for _, solver := range []Solver{SolverNormal, SolverQR, SolverCG} {
		m := &LinearRegression{Solver: solver}
		if err := m.Fit(x, y); err != nil {
			t.Fatalf("solver %d: %v", solver, err)
		}
		ws = append(ws, m.W)
		for j := range wTrue {
			if math.Abs(m.W[j]-wTrue[j]) > 0.05 {
				t.Fatalf("solver %d: w[%d]=%v, true %v", solver, j, m.W[j], wTrue[j])
			}
		}
	}
	for j := range ws[0] {
		if math.Abs(ws[0][j]-ws[1][j]) > 1e-6 || math.Abs(ws[0][j]-ws[2][j]) > 1e-6 {
			t.Fatalf("solvers disagree at %d: %v %v %v", j, ws[0][j], ws[1][j], ws[2][j])
		}
	}
}

func TestLinearRegressionIntercept(t *testing.T) {
	r := rand.New(rand.NewSource(111))
	x, y, _ := workload.Regression(r, 300, 3, 0.01)
	for i := range y {
		y[i] += 5 // constant offset
	}
	m := &LinearRegression{Intercept: true}
	if err := m.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	if math.Abs(m.B-5) > 0.05 {
		t.Fatalf("intercept = %v, want ≈ 5", m.B)
	}
	pred := m.Predict(x)
	if mse := MSE(pred, y); mse > 0.01 {
		t.Fatalf("MSE = %v", mse)
	}
	if r2 := R2(pred, y); r2 < 0.99 {
		t.Fatalf("R2 = %v", r2)
	}
}

func TestRidgeShrinks(t *testing.T) {
	r := rand.New(rand.NewSource(112))
	x, y, _ := workload.Regression(r, 100, 5, 0.5)
	ols := &LinearRegression{}
	ridge := &LinearRegression{L2: 100}
	if err := ols.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	if err := ridge.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	if la.Norm2(ridge.W) >= la.Norm2(ols.W) {
		t.Fatalf("ridge norm %v not smaller than OLS %v", la.Norm2(ridge.W), la.Norm2(ols.W))
	}
}

func TestLinearRegressionErrors(t *testing.T) {
	x := la.NewDense(3, 2)
	if err := (&LinearRegression{}).Fit(x, []float64{1}); err == nil {
		t.Fatal("want label count error")
	}
	if err := (&LinearRegression{Solver: SolverQR, L2: 1}).Fit(x, []float64{1, 2, 3}); err == nil {
		t.Fatal("want QR+ridge rejection")
	}
}

func TestLogisticRegressionBothPaths(t *testing.T) {
	r := rand.New(rand.NewSource(113))
	x, y, _ := workload.Classification(r, 1000, 5, 0)
	for _, useSGD := range []bool{false, true} {
		m := &LogisticRegression{UseSGD: useSGD, Epochs: 50}
		if err := m.Fit(x, y); err != nil {
			t.Fatal(err)
		}
		if acc := Accuracy(m.Predict(x), y); acc < 0.97 {
			t.Fatalf("useSGD=%v accuracy = %v", useSGD, acc)
		}
		probs := m.PredictProba(x)
		for _, p := range probs {
			if p < 0 || p > 1 {
				t.Fatalf("probability %v out of range", p)
			}
		}
	}
}

func TestLogisticRegressionRejectsBadLabels(t *testing.T) {
	x := la.NewDense(2, 2)
	if err := (&LogisticRegression{}).Fit(x, []float64{0, 1}); err == nil {
		t.Fatal("want label domain error")
	}
}

func TestKMeansRecoversClusters(t *testing.T) {
	r := rand.New(rand.NewSource(114))
	x, truth, _ := workload.ClusteredPoints(r, 600, 4, 3, 0.5)
	m := &KMeans{K: 3, Seed: 7}
	if err := m.Fit(x); err != nil {
		t.Fatal(err)
	}
	if ari := AdjustedRandIndex(m.Assign, truth); ari < 0.98 {
		t.Fatalf("ARI = %v", ari)
	}
}

func TestKMeansPrunedMatchesExact(t *testing.T) {
	r := rand.New(rand.NewSource(115))
	x, _, _ := workload.ClusteredPoints(r, 800, 6, 5, 1.0)
	exact := &KMeans{K: 5, Seed: 3}
	pruned := &KMeans{K: 5, Seed: 3, Pruned: true}
	if err := exact.Fit(x); err != nil {
		t.Fatal(err)
	}
	if err := pruned.Fit(x); err != nil {
		t.Fatal(err)
	}
	// Same seed → same init → identical clustering trajectories; final
	// inertia must agree tightly even if iteration details differ.
	ei, pi := exact.Inertia(x), pruned.Inertia(x)
	if math.Abs(ei-pi)/ei > 0.01 {
		t.Fatalf("inertia: exact %v vs pruned %v", ei, pi)
	}
	// The pruned variant must actually skip distance evaluations.
	if pruned.DistEval >= exact.DistEval {
		t.Fatalf("pruned evals %d ≥ exact %d", pruned.DistEval, exact.DistEval)
	}
}

func TestKMeansValidation(t *testing.T) {
	x := la.NewDense(5, 2)
	if err := (&KMeans{K: 0}).Fit(x); err == nil {
		t.Fatal("want K range error")
	}
	if err := (&KMeans{K: 6}).Fit(x); err == nil {
		t.Fatal("want K>n error")
	}
}

func TestKMeansPredictOne(t *testing.T) {
	r := rand.New(rand.NewSource(116))
	x, _, centers := workload.ClusteredPoints(r, 200, 3, 3, 0.2)
	m := &KMeans{K: 3, Seed: 1}
	if err := m.Fit(x); err != nil {
		t.Fatal(err)
	}
	// A true center must be assigned to the fitted center nearest it.
	c := m.PredictOne(centers.RowView(0))
	if c < 0 || c >= 3 {
		t.Fatalf("PredictOne = %d", c)
	}
}

func TestGaussianNB(t *testing.T) {
	r := rand.New(rand.NewSource(117))
	x, truth, _ := workload.ClusteredPoints(r, 500, 4, 3, 1.0)
	m := &GaussianNB{}
	if err := m.Fit(x, truth); err != nil {
		t.Fatal(err)
	}
	if acc := Accuracy(m.Predict(x), truth); acc < 0.97 {
		t.Fatalf("NB accuracy = %v", acc)
	}
	if len(m.Classes()) != 3 {
		t.Fatalf("classes = %v", m.Classes())
	}
	if err := m.Fit(x, truth[:10]); err == nil {
		t.Fatal("want label count error")
	}
}

func TestPCARecoversVarianceDirection(t *testing.T) {
	r := rand.New(rand.NewSource(118))
	// Data with dominant variance along (1,1,0)/√2.
	n := 500
	x := la.NewDense(n, 3)
	for i := 0; i < n; i++ {
		t1 := 10 * r.NormFloat64()
		x.Set(i, 0, t1+0.1*r.NormFloat64())
		x.Set(i, 1, t1+0.1*r.NormFloat64())
		x.Set(i, 2, 0.1*r.NormFloat64())
	}
	m := &PCA{K: 2}
	if err := m.Fit(x); err != nil {
		t.Fatal(err)
	}
	v := m.Components.Col(0)
	// Component 0 ≈ ±(0.707, 0.707, 0).
	if math.Abs(math.Abs(v[0])-math.Sqrt2/2) > 0.02 || math.Abs(math.Abs(v[1])-math.Sqrt2/2) > 0.02 || math.Abs(v[2]) > 0.05 {
		t.Fatalf("first component = %v", v)
	}
	if m.Explained[0] < 50*m.Explained[1] {
		t.Fatalf("explained = %v, want dominant first component", m.Explained)
	}
	// Round trip through transform/inverse loses only the dropped variance.
	scores := m.Transform(x)
	back := m.InverseTransform(scores)
	if resid := back.Sub(x).FrobNorm() / x.FrobNorm(); resid > 0.05 {
		t.Fatalf("reconstruction residual = %v", resid)
	}
}

func TestPCAValidation(t *testing.T) {
	x := la.NewDense(5, 3)
	if err := (&PCA{K: 0}).Fit(x); err == nil {
		t.Fatal("want K error")
	}
	if err := (&PCA{K: 4}).Fit(x); err == nil {
		t.Fatal("want K>d error")
	}
	if err := (&PCA{K: 1}).Fit(la.NewDense(1, 3)); err == nil {
		t.Fatal("want n<2 error")
	}
}

func TestDecisionTreeXOR(t *testing.T) {
	// XOR is not linearly separable; a depth-2 tree nails it.
	x, _ := la.FromRows([][]float64{
		{0, 0}, {0, 1}, {1, 0}, {1, 1},
		{0.1, 0.1}, {0.1, 0.9}, {0.9, 0.1}, {0.9, 0.9},
	})
	y := []int{0, 1, 1, 0, 0, 1, 1, 0}
	m := &DecisionTree{MaxDepth: 3}
	if err := m.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	if acc := Accuracy(m.Predict(x), y); acc != 1 {
		t.Fatalf("XOR accuracy = %v", acc)
	}
	if d := m.Depth(); d < 2 {
		t.Fatalf("depth = %d, want ≥ 2 for XOR", d)
	}
}

func TestDecisionTreeDepthLimit(t *testing.T) {
	r := rand.New(rand.NewSource(119))
	x, truth, _ := workload.ClusteredPoints(r, 300, 3, 4, 1.0)
	m := &DecisionTree{MaxDepth: 1}
	if err := m.Fit(x, truth); err != nil {
		t.Fatal(err)
	}
	if d := m.Depth(); d > 1 {
		t.Fatalf("depth = %d exceeds limit", d)
	}
	deep := &DecisionTree{MaxDepth: 12}
	if err := deep.Fit(x, truth); err != nil {
		t.Fatal(err)
	}
	if acc := Accuracy(deep.Predict(x), truth); acc < 0.95 {
		t.Fatalf("deep tree accuracy = %v", acc)
	}
}

func TestDecisionTreeErrors(t *testing.T) {
	if err := (&DecisionTree{}).Fit(la.NewDense(2, 2), []int{0}); err == nil {
		t.Fatal("want label count error")
	}
}

func TestKNN(t *testing.T) {
	r := rand.New(rand.NewSource(120))
	x, truth, _ := workload.ClusteredPoints(r, 400, 3, 3, 0.5)
	m := &KNN{K: 5}
	if err := m.Fit(x, truth); err != nil {
		t.Fatal(err)
	}
	if acc := Accuracy(m.Predict(x), truth); acc < 0.98 {
		t.Fatalf("KNN accuracy = %v", acc)
	}
	if err := (&KNN{K: 0}).Fit(x, truth); err == nil {
		t.Fatal("want K error")
	}
	if err := (&KNN{K: 3}).Fit(x, truth[:5]); err == nil {
		t.Fatal("want label count error")
	}
}

func TestMetrics(t *testing.T) {
	if got := Accuracy([]int{1, 2, 3}, []int{1, 2, 4}); math.Abs(got-2.0/3) > 1e-12 {
		t.Fatalf("Accuracy = %v", got)
	}
	if got := Accuracy([]int{}, []int{}); got != 0 {
		t.Fatalf("empty accuracy = %v", got)
	}
	if got := MSE([]float64{1, 2}, []float64{1, 4}); got != 2 {
		t.Fatalf("MSE = %v", got)
	}
	if got := R2([]float64{1, 2, 3}, []float64{1, 2, 3}); got != 1 {
		t.Fatalf("perfect R2 = %v", got)
	}
	cm, err := ConfusionMatrix([]int{1, 1, 0}, []int{1, 0, 0})
	if err != nil {
		t.Fatal(err)
	}
	if cm[1][1] != 1 || cm[0][1] != 1 || cm[0][0] != 1 {
		t.Fatalf("confusion = %v", cm)
	}
	if _, err := ConfusionMatrix([]int{1}, []int{1, 2}); err == nil {
		t.Fatal("want length error")
	}
	// ARI: identical partitions up to relabeling score 1.
	if got := AdjustedRandIndex([]int{0, 0, 1, 1}, []int{5, 5, 9, 9}); math.Abs(got-1) > 1e-12 {
		t.Fatalf("ARI = %v", got)
	}
}
