package ml

import (
	"fmt"

	"dmml/internal/la"
	"dmml/internal/opt"
)

// LinearSVM is a linear support-vector classifier over ±1 labels trained by
// mini-batch subgradient descent on the L2-regularized hinge loss.
type LinearSVM struct {
	// C scales the inverse regularization: λ = 1/(C·n). Default 1.
	C float64
	// Epochs bounds training passes; default 50.
	Epochs int
	// BatchSize for mini-batch updates; default 16.
	BatchSize int
	// Seed for shuffling.
	Seed int64

	// W holds fitted coefficients.
	W []float64
}

// Fit trains on x (n×d) and labels y ∈ {−1,+1}.
func (m *LinearSVM) Fit(x *la.Dense, y []float64) error {
	n, _ := x.Dims()
	if len(y) != n {
		return fmt.Errorf("ml: %d labels for %d rows", len(y), n)
	}
	for i, v := range y {
		if v != 1 && v != -1 {
			return fmt.Errorf("ml: label %v at row %d; SVM wants -1/+1", v, i)
		}
	}
	c := m.C
	if c == 0 {
		c = 1
	}
	epochs := m.Epochs
	if epochs == 0 {
		epochs = 50
	}
	batch := m.BatchSize
	if batch == 0 {
		batch = 16
	}
	res, err := opt.MiniBatchSGD(opt.DenseRows{M: x}, y, opt.Hinge{}, opt.MiniBatchConfig{
		Step:      0.5,
		Decay:     1,
		L2:        1 / (c * float64(n)),
		Epochs:    epochs,
		BatchSize: batch,
		Seed:      m.Seed,
	})
	if err != nil {
		return fmt.Errorf("ml: SVM fit: %w", err)
	}
	m.W = res.W
	return nil
}

// DecisionFunction returns the margins X·w.
func (m *LinearSVM) DecisionFunction(x *la.Dense) []float64 {
	return la.MatVec(x, m.W)
}

// Predict returns ±1 labels.
func (m *LinearSVM) Predict(x *la.Dense) []float64 {
	out := m.DecisionFunction(x)
	for i, v := range out {
		if v >= 0 {
			out[i] = 1
		} else {
			out[i] = -1
		}
	}
	return out
}
