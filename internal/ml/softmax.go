package ml

import (
	"fmt"
	"math"
	"math/rand"

	"dmml/internal/la"
)

// SoftmaxRegression is a multinomial logistic classifier over integer class
// labels, trained by mini-batch SGD on the cross-entropy loss.
type SoftmaxRegression struct {
	// L2 regularization strength.
	L2 float64
	// Step is the learning rate (default 0.5, decayed per epoch).
	Step float64
	// Epochs bounds passes over the data (default 50).
	Epochs int
	// BatchSize for gradient averaging (default 32).
	BatchSize int
	// Seed for shuffling.
	Seed int64

	// W is d×K: column c scores class classes[c].
	W       *la.Dense
	classes []int
}

// Fit trains on x (n×d) and integer labels y.
func (m *SoftmaxRegression) Fit(x *la.Dense, y []int) error {
	n, dims := x.Dims()
	if len(y) != n {
		return fmt.Errorf("ml: %d labels for %d rows", len(y), n)
	}
	classIdx := map[int]int{}
	m.classes = nil
	for _, c := range y {
		if _, ok := classIdx[c]; !ok {
			classIdx[c] = len(classIdx)
			m.classes = append(m.classes, c)
		}
	}
	k := len(m.classes)
	if k < 2 {
		return fmt.Errorf("ml: softmax needs ≥ 2 classes, got %d", k)
	}
	step := m.Step
	if step == 0 {
		step = 0.5
	}
	epochs := m.Epochs
	if epochs == 0 {
		epochs = 50
	}
	batch := m.BatchSize
	if batch == 0 {
		batch = 32
	}
	m.W = la.NewDense(dims, k)
	grad := la.NewDense(dims, k)
	probs := make([]float64, k)
	rng := rand.New(rand.NewSource(m.Seed))
	order := rng.Perm(n)
	for e := 0; e < epochs; e++ {
		lr := step / (1 + 0.5*float64(e))
		for b := 0; b < n; b += batch {
			hi := min(b+batch, n)
			grad.Zero()
			for _, i := range order[b:hi] {
				row := x.RowView(i)
				m.softmaxInto(row, probs)
				probs[classIdx[y[i]]] -= 1 // ∂CE/∂score = p − 1{true}
				// grad += row ⊗ probs
				for j, xj := range row {
					if xj == 0 {
						continue
					}
					la.Axpy(xj, probs, grad.RowView(j))
				}
			}
			scale := -lr / float64(hi-b)
			if m.L2 != 0 {
				m.W.Scale(1 - lr*m.L2)
			}
			m.W.AddScaled(grad, scale)
		}
		rng.Shuffle(n, func(a, b int) { order[a], order[b] = order[b], order[a] })
	}
	return nil
}

// softmaxInto writes the class probabilities for one example into out.
func (m *SoftmaxRegression) softmaxInto(row []float64, out []float64) {
	scores := la.VecMat(row, m.W)
	mx := scores[la.ArgMax(scores)]
	total := 0.0
	for c, s := range scores {
		out[c] = math.Exp(s - mx)
		total += out[c]
	}
	la.ScaleVec(1/total, out)
}

// Classes returns the label set in first-encounter order.
func (m *SoftmaxRegression) Classes() []int { return m.classes }

// PredictProba returns an n×K matrix of class probabilities (column order =
// Classes()).
func (m *SoftmaxRegression) PredictProba(x *la.Dense) *la.Dense {
	n, _ := x.Dims()
	out := la.NewDense(n, len(m.classes))
	for i := 0; i < n; i++ {
		m.softmaxInto(x.RowView(i), out.RowView(i))
	}
	return out
}

// Predict returns the most probable class per row.
func (m *SoftmaxRegression) Predict(x *la.Dense) []int {
	n, _ := x.Dims()
	out := make([]int, n)
	probs := make([]float64, len(m.classes))
	for i := 0; i < n; i++ {
		m.softmaxInto(x.RowView(i), probs)
		out[i] = m.classes[la.ArgMax(probs)]
	}
	return out
}

// CrossEntropy computes the mean negative log-likelihood over a labeled set.
func (m *SoftmaxRegression) CrossEntropy(x *la.Dense, y []int) (float64, error) {
	n, _ := x.Dims()
	if len(y) != n {
		return 0, fmt.Errorf("ml: %d labels for %d rows", len(y), n)
	}
	classIdx := map[int]int{}
	for i, c := range m.classes {
		classIdx[c] = i
	}
	probs := make([]float64, len(m.classes))
	total := 0.0
	for i := 0; i < n; i++ {
		ci, ok := classIdx[y[i]]
		if !ok {
			return 0, fmt.Errorf("ml: unseen class %d at row %d", y[i], i)
		}
		m.softmaxInto(x.RowView(i), probs)
		p := probs[ci]
		if p < 1e-12 {
			p = 1e-12
		}
		total -= math.Log(p)
	}
	return total / float64(n), nil
}
