package ml

import (
	"fmt"
	"sort"

	"dmml/internal/la"
)

// KNN is a k-nearest-neighbor classifier over integer labels (brute force,
// Euclidean distance, majority vote with nearest-first tie-break).
type KNN struct {
	K int

	x *la.Dense
	y []int
}

// Fit stores the training set.
func (m *KNN) Fit(x *la.Dense, y []int) error {
	n, _ := x.Dims()
	if len(y) != n {
		return fmt.Errorf("ml: %d labels for %d rows", len(y), n)
	}
	if m.K < 1 || m.K > n {
		return fmt.Errorf("ml: KNN K=%d out of range for n=%d", m.K, n)
	}
	m.x, m.y = x, y
	return nil
}

// PredictOne classifies a single point.
func (m *KNN) PredictOne(p []float64) int {
	n, _ := m.x.Dims()
	type cand struct {
		d2  float64
		idx int
	}
	cands := make([]cand, n)
	for i := 0; i < n; i++ {
		diff := la.SubVec(m.x.RowView(i), p)
		cands[i] = cand{la.Dot(diff, diff), i}
	}
	sort.Slice(cands, func(a, b int) bool { return cands[a].d2 < cands[b].d2 })
	votes := map[int]int{}
	best, bestVotes := m.y[cands[0].idx], 0
	for _, c := range cands[:m.K] {
		lbl := m.y[c.idx]
		votes[lbl]++
		if votes[lbl] > bestVotes {
			best, bestVotes = lbl, votes[lbl]
		}
	}
	return best
}

// Predict classifies every row of x.
func (m *KNN) Predict(x *la.Dense) []int {
	n, _ := x.Dims()
	out := make([]int, n)
	for i := 0; i < n; i++ {
		out[i] = m.PredictOne(x.RowView(i))
	}
	return out
}
