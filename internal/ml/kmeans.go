package ml

import (
	"fmt"
	"math"
	"math/rand"

	"dmml/internal/la"
)

// KMeans clusters rows into K groups by Lloyd's algorithm with k-means++
// initialization. Pruned enables a triangle-inequality bound (Elkan-style
// single bound) that skips distance computations for points far inside their
// cluster, the classic data-system optimization for iterative ML.
type KMeans struct {
	K        int
	MaxIter  int // default 100
	Tol      float64
	Seed     int64
	Pruned   bool
	Centers  *la.Dense
	Assign   []int
	Iters    int
	DistEval int // number of point-center distance computations performed
}

// Fit clusters x. It returns an error for degenerate configurations.
func (m *KMeans) Fit(x *la.Dense) error {
	n, d := x.Dims()
	if m.K < 1 || m.K > n {
		return fmt.Errorf("ml: kmeans K=%d out of range for n=%d", m.K, n)
	}
	maxIter := m.MaxIter
	if maxIter == 0 {
		maxIter = 100
	}
	rng := rand.New(rand.NewSource(m.Seed))
	m.Centers = m.initPlusPlus(x, rng)
	m.Assign = make([]int, n)
	for i := range m.Assign {
		m.Assign[i] = -1
	}
	m.DistEval = 0

	// Upper bound on each point's distance to its assigned center (for the
	// pruned variant).
	upper := make([]float64, n)
	for i := range upper {
		upper[i] = math.Inf(1)
	}
	centerShift := make([]float64, m.K)

	for it := 0; it < maxIter; it++ {
		m.Iters = it + 1
		// Pairwise center separations for the pruning test.
		var halfMinSep []float64
		if m.Pruned {
			halfMinSep = make([]float64, m.K)
			for c := range halfMinSep {
				halfMinSep[c] = math.Inf(1)
				for o := 0; o < m.K; o++ {
					if o == c {
						continue
					}
					sep := rowDist(m.Centers, c, o)
					if sep < halfMinSep[c] {
						halfMinSep[c] = sep
					}
				}
				halfMinSep[c] /= 2
			}
		}
		changed := 0
		for i := 0; i < n; i++ {
			cur := m.Assign[i]
			if m.Pruned && cur >= 0 {
				// Tighten the stale upper bound, then apply the triangle
				// inequality: if u(i) ≤ ½·min separation of its center, no
				// other center can be closer.
				if upper[i] <= halfMinSep[cur] {
					continue
				}
				upper[i] = m.dist(x, i, cur)
				if upper[i] <= halfMinSep[cur] {
					continue
				}
			}
			best, bestD := cur, math.Inf(1)
			if cur >= 0 {
				bestD = m.dist(x, i, cur)
			}
			for c := 0; c < m.K; c++ {
				if c == cur {
					continue
				}
				if dd := m.dist(x, i, c); dd < bestD {
					best, bestD = c, dd
				}
			}
			upper[i] = bestD
			if best != cur {
				m.Assign[i] = best
				changed++
			}
		}
		// Recompute centers.
		newCenters := la.NewDense(m.K, d)
		counts := make([]int, m.K)
		for i := 0; i < n; i++ {
			la.Axpy(1, x.RowView(i), newCenters.RowView(m.Assign[i]))
			counts[m.Assign[i]]++
		}
		for c := 0; c < m.K; c++ {
			if counts[c] == 0 {
				// Re-seed an empty cluster at a random point.
				copy(newCenters.RowView(c), x.RowView(rng.Intn(n)))
				continue
			}
			la.ScaleVec(1/float64(counts[c]), newCenters.RowView(c))
		}
		maxShift := 0.0
		for c := 0; c < m.K; c++ {
			centerShift[c] = la.Norm2(la.SubVec(newCenters.RowView(c), m.Centers.RowView(c)))
			if centerShift[c] > maxShift {
				maxShift = centerShift[c]
			}
			// Bounds drift by the center movement.
		}
		for i := range upper {
			upper[i] += centerShift[m.Assign[i]]
		}
		m.Centers = newCenters
		if changed == 0 || maxShift < m.Tol {
			break
		}
	}
	return nil
}

func (m *KMeans) dist(x *la.Dense, i, c int) float64 {
	m.DistEval++
	return la.Norm2(la.SubVec(x.RowView(i), m.Centers.RowView(c)))
}

func rowDist(m *la.Dense, a, b int) float64 {
	return la.Norm2(la.SubVec(m.RowView(a), m.RowView(b)))
}

// initPlusPlus implements k-means++ seeding.
func (m *KMeans) initPlusPlus(x *la.Dense, rng *rand.Rand) *la.Dense {
	n, d := x.Dims()
	centers := la.NewDense(m.K, d)
	first := rng.Intn(n)
	copy(centers.RowView(0), x.RowView(first))
	minD2 := make([]float64, n)
	for i := range minD2 {
		diff := la.SubVec(x.RowView(i), centers.RowView(0))
		minD2[i] = la.Dot(diff, diff)
	}
	// Greedy k-means++: sample several candidates per seed and keep the one
	// that most reduces the potential, which makes the seeding robust to
	// single unlucky draws.
	trials := 2 + int(math.Log(float64(m.K)+1))*2
	sample := func() int {
		total := la.SumVec(minD2)
		if total <= 0 {
			return rng.Intn(n)
		}
		u := rng.Float64() * total
		acc := 0.0
		for i, v := range minD2 {
			acc += v
			if acc >= u {
				return i
			}
		}
		return n - 1
	}
	for c := 1; c < m.K; c++ {
		bestPick, bestPotential := -1, math.Inf(1)
		for t := 0; t < trials; t++ {
			pick := sample()
			potential := 0.0
			for i := range minD2 {
				diff := la.SubVec(x.RowView(i), x.RowView(pick))
				d2 := la.Dot(diff, diff)
				if d2 > minD2[i] {
					d2 = minD2[i]
				}
				potential += d2
			}
			if potential < bestPotential {
				bestPotential, bestPick = potential, pick
			}
		}
		copy(centers.RowView(c), x.RowView(bestPick))
		for i := range minD2 {
			diff := la.SubVec(x.RowView(i), centers.RowView(c))
			if d2 := la.Dot(diff, diff); d2 < minD2[i] {
				minD2[i] = d2
			}
		}
	}
	return centers
}

// Inertia returns the within-cluster sum of squared distances of the fit.
func (m *KMeans) Inertia(x *la.Dense) float64 {
	total := 0.0
	for i := 0; i < x.Rows(); i++ {
		diff := la.SubVec(x.RowView(i), m.Centers.RowView(m.Assign[i]))
		total += la.Dot(diff, diff)
	}
	return total
}

// PredictOne returns the nearest center for a single point.
func (m *KMeans) PredictOne(p []float64) int {
	best, bestD := 0, math.Inf(1)
	for c := 0; c < m.K; c++ {
		diff := la.SubVec(p, m.Centers.RowView(c))
		if d2 := la.Dot(diff, diff); d2 < bestD {
			best, bestD = c, d2
		}
	}
	return best
}
