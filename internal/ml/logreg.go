package ml

import (
	"fmt"

	"dmml/internal/la"
	"dmml/internal/opt"
)

// LogisticRegression is a binary classifier over ±1 labels trained by batch
// gradient descent (default) or SGD.
type LogisticRegression struct {
	// L2 regularization strength.
	L2 float64
	// UseSGD switches from batch GD to the Bismarck-style SGD path.
	UseSGD bool
	// UseLBFGS switches to the limited-memory BFGS batch solver (ignored
	// when UseSGD is set).
	UseLBFGS bool
	// Step is the (initial) learning rate; default 0.5.
	Step float64
	// Epochs bounds iterations (GD) or passes (SGD); default 100.
	Epochs int
	// Seed for SGD shuffling.
	Seed int64

	// W holds fitted coefficients.
	W []float64
}

// Fit trains on x (n×d) and labels y ∈ {−1,+1}.
func (m *LogisticRegression) Fit(x *la.Dense, y []float64) error {
	n, _ := x.Dims()
	if len(y) != n {
		return fmt.Errorf("ml: %d labels for %d rows", len(y), n)
	}
	for i, v := range y {
		if v != 1 && v != -1 {
			return fmt.Errorf("ml: label %v at row %d; logistic regression wants -1/+1", v, i)
		}
	}
	step := m.Step
	if step == 0 {
		step = 0.5
	}
	epochs := m.Epochs
	if epochs == 0 {
		epochs = 100
	}
	if m.UseSGD {
		res, err := opt.SGD(opt.DenseRows{M: x}, y, opt.Logistic{},
			opt.SGDConfig{Step: step, Decay: 0.5, L2: m.L2, Epochs: epochs, Seed: m.Seed})
		if err != nil {
			return fmt.Errorf("ml: logistic SGD: %w", err)
		}
		m.W = res.W
		return nil
	}
	if m.UseLBFGS {
		res, err := opt.LBFGS(opt.DenseData{M: x}, y, opt.Logistic{},
			opt.LBFGSConfig{MaxIter: epochs, L2: m.L2, Tol: 1e-9})
		if err != nil {
			return fmt.Errorf("ml: logistic LBFGS: %w", err)
		}
		m.W = res.W
		return nil
	}
	res, err := opt.GradientDescent(opt.DenseData{M: x}, y, opt.Logistic{},
		opt.GDConfig{Step: step, L2: m.L2, MaxIter: epochs, Tol: 1e-9, Backtracking: true})
	if err != nil {
		return fmt.Errorf("ml: logistic GD: %w", err)
	}
	m.W = res.W
	return nil
}

// DecisionFunction returns the margins X·w.
func (m *LogisticRegression) DecisionFunction(x *la.Dense) []float64 {
	return la.MatVec(x, m.W)
}

// PredictProba returns P(y=+1|x) per row.
func (m *LogisticRegression) PredictProba(x *la.Dense) []float64 {
	out := m.DecisionFunction(x)
	for i, v := range out {
		out[i] = opt.Sigmoid(v)
	}
	return out
}

// Predict returns ±1 labels.
func (m *LogisticRegression) Predict(x *la.Dense) []float64 {
	out := m.DecisionFunction(x)
	for i, v := range out {
		if v >= 0 {
			out[i] = 1
		} else {
			out[i] = -1
		}
	}
	return out
}
