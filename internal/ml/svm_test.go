package ml

import (
	"math/rand"
	"testing"

	"dmml/internal/la"
	"dmml/internal/workload"
)

func TestLinearSVM(t *testing.T) {
	r := rand.New(rand.NewSource(212))
	x, y, _ := workload.Classification(r, 1500, 6, 0)
	m := &LinearSVM{C: 10, Epochs: 30, Seed: 1}
	if err := m.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	if acc := Accuracy(m.Predict(x), y); acc < 0.95 {
		t.Fatalf("SVM accuracy = %v", acc)
	}
}

func TestLinearSVMValidation(t *testing.T) {
	x := la.NewDense(3, 2)
	if err := (&LinearSVM{}).Fit(x, []float64{1, -1}); err == nil {
		t.Fatal("want label count error")
	}
	if err := (&LinearSVM{}).Fit(x, []float64{0, 1, -1}); err == nil {
		t.Fatal("want label domain error")
	}
}

func TestSoftmaxRegression(t *testing.T) {
	r := rand.New(rand.NewSource(213))
	x, truth, _ := workload.ClusteredPoints(r, 900, 4, 3, 1.0)
	m := &SoftmaxRegression{Epochs: 30, Seed: 2, L2: 1e-4}
	if err := m.Fit(x, truth); err != nil {
		t.Fatal(err)
	}
	if acc := Accuracy(m.Predict(x), truth); acc < 0.95 {
		t.Fatalf("softmax accuracy = %v", acc)
	}
	if len(m.Classes()) != 3 {
		t.Fatalf("classes = %v", m.Classes())
	}
	// Probabilities sum to 1 per row.
	probs := m.PredictProba(x.Slice(0, 5, 0, 4))
	for i := 0; i < 5; i++ {
		sum := 0.0
		for j := 0; j < 3; j++ {
			p := probs.At(i, j)
			if p < 0 || p > 1 {
				t.Fatalf("prob out of range: %v", p)
			}
			sum += p
		}
		if sum < 0.999 || sum > 1.001 {
			t.Fatalf("row %d probs sum to %v", i, sum)
		}
	}
	// Cross-entropy on training data is low for a well-fit model.
	ce, err := m.CrossEntropy(x, truth)
	if err != nil {
		t.Fatal(err)
	}
	if ce > 0.3 {
		t.Fatalf("cross entropy = %v", ce)
	}
	if _, err := m.CrossEntropy(x, make([]int, 900)); err == nil {
		// all-zeros labels include class 0 which exists — build unseen class
		bad := make([]int, 900)
		for i := range bad {
			bad[i] = 99
		}
		if _, err := m.CrossEntropy(x, bad); err == nil {
			t.Fatal("want unseen class error")
		}
	}
}

func TestSoftmaxValidation(t *testing.T) {
	x := la.NewDense(4, 2)
	if err := (&SoftmaxRegression{}).Fit(x, []int{0, 0}); err == nil {
		t.Fatal("want label count error")
	}
	if err := (&SoftmaxRegression{}).Fit(x, []int{0, 0, 0, 0}); err == nil {
		t.Fatal("want single-class error")
	}
}

func TestSoftmaxMatchesBinaryLogistic(t *testing.T) {
	// On a binary problem, softmax and binary logistic should agree on
	// nearly all predictions.
	r := rand.New(rand.NewSource(214))
	x, yf, _ := workload.Classification(r, 1000, 5, 0)
	yi := make([]int, len(yf))
	for i, v := range yf {
		if v > 0 {
			yi[i] = 1
		}
	}
	sm := &SoftmaxRegression{Epochs: 30, Seed: 3}
	if err := sm.Fit(x, yi); err != nil {
		t.Fatal(err)
	}
	lr := &LogisticRegression{Epochs: 60}
	if err := lr.Fit(x, yf); err != nil {
		t.Fatal(err)
	}
	smPred := sm.Predict(x)
	lrPred := lr.Predict(x)
	agree := 0
	for i := range smPred {
		lrClass := 0
		if lrPred[i] > 0 {
			lrClass = 1
		}
		if smPred[i] == lrClass {
			agree++
		}
	}
	if frac := float64(agree) / float64(len(smPred)); frac < 0.97 {
		t.Fatalf("softmax and logistic agree on only %v", frac)
	}
}

func TestLogisticLBFGSPath(t *testing.T) {
	r := rand.New(rand.NewSource(217))
	x, y, _ := workload.Classification(r, 800, 5, 0.02)
	m := &LogisticRegression{UseLBFGS: true, Epochs: 50, L2: 1e-3}
	if err := m.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	if acc := Accuracy(m.Predict(x), y); acc < 0.95 {
		t.Fatalf("LBFGS logistic accuracy = %v", acc)
	}
}

func TestPCASVDPathMatchesEigen(t *testing.T) {
	r := rand.New(rand.NewSource(218))
	x, _, _ := workload.ClusteredPoints(r, 300, 5, 3, 1.0)
	eig := &PCA{K: 3}
	svd := &PCA{K: 3, UseSVD: true}
	if err := eig.Fit(x); err != nil {
		t.Fatal(err)
	}
	if err := svd.Fit(x); err != nil {
		t.Fatal(err)
	}
	for k := 0; k < 3; k++ {
		if relDiff := (svd.Explained[k] - eig.Explained[k]) / eig.Explained[k]; relDiff > 1e-6 || relDiff < -1e-6 {
			t.Fatalf("component %d variance: svd %v vs eig %v", k, svd.Explained[k], eig.Explained[k])
		}
		// Components match up to sign.
		dot := 0.0
		for i := 0; i < 5; i++ {
			dot += svd.Components.At(i, k) * eig.Components.At(i, k)
		}
		if dot < 0 {
			dot = -dot
		}
		if dot < 0.999 {
			t.Fatalf("component %d axes differ: |cos| = %v", k, dot)
		}
	}
}
