package ml

import (
	"fmt"
	"math"

	"dmml/internal/la"
)

// GaussianNB is a Gaussian naive Bayes classifier over arbitrary integer
// class labels.
type GaussianNB struct {
	// VarSmoothing is added to per-feature variances for stability
	// (default 1e-9 of the largest feature variance).
	VarSmoothing float64

	classes []int
	prior   []float64
	mean    *la.Dense // class × feature
	vari    *la.Dense
}

// Fit estimates per-class feature means/variances and priors.
func (m *GaussianNB) Fit(x *la.Dense, y []int) error {
	n, d := x.Dims()
	if len(y) != n {
		return fmt.Errorf("ml: %d labels for %d rows", len(y), n)
	}
	classIdx := map[int]int{}
	for _, c := range y {
		if _, ok := classIdx[c]; !ok {
			classIdx[c] = len(classIdx)
			m.classes = append(m.classes, c)
		}
	}
	k := len(m.classes)
	m.prior = make([]float64, k)
	m.mean = la.NewDense(k, d)
	m.vari = la.NewDense(k, d)
	counts := make([]float64, k)
	for i := 0; i < n; i++ {
		ci := classIdx[y[i]]
		counts[ci]++
		la.Axpy(1, x.RowView(i), m.mean.RowView(ci))
	}
	for c := 0; c < k; c++ {
		if counts[c] == 0 {
			return fmt.Errorf("ml: empty class %d", m.classes[c])
		}
		la.ScaleVec(1/counts[c], m.mean.RowView(c))
		m.prior[c] = counts[c] / float64(n)
	}
	for i := 0; i < n; i++ {
		ci := classIdx[y[i]]
		row := x.RowView(i)
		mu := m.mean.RowView(ci)
		vr := m.vari.RowView(ci)
		for j := 0; j < d; j++ {
			dev := row[j] - mu[j]
			vr[j] += dev * dev
		}
	}
	maxVar := 0.0
	for c := 0; c < k; c++ {
		la.ScaleVec(1/counts[c], m.vari.RowView(c))
		for _, v := range m.vari.RowView(c) {
			if v > maxVar {
				maxVar = v
			}
		}
	}
	smooth := m.VarSmoothing
	if smooth == 0 {
		smooth = 1e-9 * math.Max(maxVar, 1)
	}
	m.vari.Apply(func(v float64) float64 { return v + smooth })
	return nil
}

// Classes returns the label set in first-encounter order.
func (m *GaussianNB) Classes() []int { return m.classes }

// LogPosterior returns the unnormalized log posterior per class for a point.
func (m *GaussianNB) LogPosterior(p []float64) []float64 {
	k := len(m.classes)
	out := make([]float64, k)
	for c := 0; c < k; c++ {
		lp := math.Log(m.prior[c])
		mu := m.mean.RowView(c)
		vr := m.vari.RowView(c)
		for j, v := range p {
			dev := v - mu[j]
			lp -= 0.5 * (math.Log(2*math.Pi*vr[j]) + dev*dev/vr[j])
		}
		out[c] = lp
	}
	return out
}

// Predict returns the most probable class per row.
func (m *GaussianNB) Predict(x *la.Dense) []int {
	n, _ := x.Dims()
	out := make([]int, n)
	for i := 0; i < n; i++ {
		out[i] = m.classes[la.ArgMax(m.LogPosterior(x.RowView(i)))]
	}
	return out
}
