package ml

import (
	"fmt"
	"math"
	"sort"

	"dmml/internal/la"
)

// DecisionTree is a CART classifier over integer labels using Gini impurity.
type DecisionTree struct {
	MaxDepth       int // default 10
	MinSamplesLeaf int // default 1

	root *treeNode
}

type treeNode struct {
	// Leaf fields.
	isLeaf bool
	label  int
	// Split fields.
	feature   int
	threshold float64
	left      *treeNode
	right     *treeNode
}

// Fit grows the tree on x and labels y.
func (m *DecisionTree) Fit(x *la.Dense, y []int) error {
	n, _ := x.Dims()
	if len(y) != n {
		return fmt.Errorf("ml: %d labels for %d rows", len(y), n)
	}
	if n == 0 {
		return fmt.Errorf("ml: empty training set")
	}
	maxDepth := m.MaxDepth
	if maxDepth == 0 {
		maxDepth = 10
	}
	minLeaf := m.MinSamplesLeaf
	if minLeaf == 0 {
		minLeaf = 1
	}
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	m.root = grow(x, y, idx, maxDepth, minLeaf)
	return nil
}

func majority(y []int, idx []int) (int, bool) {
	counts := map[int]int{}
	for _, i := range idx {
		counts[y[i]]++
	}
	best, bestN, pure := 0, -1, true
	for c, n := range counts {
		if n > bestN {
			best, bestN = c, n
		}
	}
	pure = len(counts) == 1
	return best, pure
}

func gini(counts map[int]int, total int) float64 {
	if total == 0 {
		return 0
	}
	g := 1.0
	for _, n := range counts {
		p := float64(n) / float64(total)
		g -= p * p
	}
	return g
}

func grow(x *la.Dense, y []int, idx []int, depth, minLeaf int) *treeNode {
	label, pure := majority(y, idx)
	if pure || depth == 0 || len(idx) < 2*minLeaf {
		return &treeNode{isLeaf: true, label: label}
	}
	_, d := x.Dims()
	bestFeat, bestThr, bestScore := -1, 0.0, math.Inf(1)
	bestBalance := math.MaxInt // |nl−nr| tie-break: prefer balanced splits
	sorted := make([]int, len(idx))
	for f := 0; f < d; f++ {
		copy(sorted, idx)
		sort.Slice(sorted, func(a, b int) bool { return x.At(sorted[a], f) < x.At(sorted[b], f) })
		// Sweep split points, maintaining left/right class counts.
		leftCounts := map[int]int{}
		rightCounts := map[int]int{}
		for _, i := range sorted {
			rightCounts[y[i]]++
		}
		for pos := 0; pos < len(sorted)-1; pos++ {
			i := sorted[pos]
			leftCounts[y[i]]++
			rightCounts[y[i]]--
			if rightCounts[y[i]] == 0 {
				delete(rightCounts, y[i])
			}
			nl, nr := pos+1, len(sorted)-pos-1
			if nl < minLeaf || nr < minLeaf {
				continue
			}
			a, b := x.At(i, f), x.At(sorted[pos+1], f)
			if a == b {
				continue // cannot split between equal values
			}
			score := (float64(nl)*gini(leftCounts, nl) + float64(nr)*gini(rightCounts, nr)) / float64(len(sorted))
			balance := nl - nr
			if balance < 0 {
				balance = -balance
			}
			if score < bestScore-1e-12 || (score < bestScore+1e-12 && balance < bestBalance) {
				bestScore, bestFeat, bestThr, bestBalance = score, f, (a+b)/2, balance
			}
		}
	}
	if bestFeat < 0 {
		return &treeNode{isLeaf: true, label: label}
	}
	var leftIdx, rightIdx []int
	for _, i := range idx {
		if x.At(i, bestFeat) <= bestThr {
			leftIdx = append(leftIdx, i)
		} else {
			rightIdx = append(rightIdx, i)
		}
	}
	if len(leftIdx) == 0 || len(rightIdx) == 0 {
		return &treeNode{isLeaf: true, label: label}
	}
	return &treeNode{
		feature:   bestFeat,
		threshold: bestThr,
		left:      grow(x, y, leftIdx, depth-1, minLeaf),
		right:     grow(x, y, rightIdx, depth-1, minLeaf),
	}
}

// PredictOne classifies a single point.
func (m *DecisionTree) PredictOne(p []float64) int {
	node := m.root
	for !node.isLeaf {
		if p[node.feature] <= node.threshold {
			node = node.left
		} else {
			node = node.right
		}
	}
	return node.label
}

// Predict classifies every row.
func (m *DecisionTree) Predict(x *la.Dense) []int {
	n, _ := x.Dims()
	out := make([]int, n)
	for i := 0; i < n; i++ {
		out[i] = m.PredictOne(x.RowView(i))
	}
	return out
}

// Depth returns the fitted tree depth (0 for a single leaf).
func (m *DecisionTree) Depth() int { return nodeDepth(m.root) }

func nodeDepth(n *treeNode) int {
	if n == nil || n.isLeaf {
		return 0
	}
	l, r := nodeDepth(n.left), nodeDepth(n.right)
	if l > r {
		return l + 1
	}
	return r + 1
}
