package ml

import (
	"fmt"
	"math"
)

// Accuracy is the fraction of equal entries in pred and truth.
func Accuracy[T comparable](pred, truth []T) float64 {
	if len(pred) != len(truth) || len(pred) == 0 {
		return 0
	}
	n := 0
	for i := range pred {
		if pred[i] == truth[i] {
			n++
		}
	}
	return float64(n) / float64(len(pred))
}

// MSE is the mean squared error.
func MSE(pred, truth []float64) float64 {
	if len(pred) != len(truth) || len(pred) == 0 {
		return math.NaN()
	}
	s := 0.0
	for i := range pred {
		d := pred[i] - truth[i]
		s += d * d
	}
	return s / float64(len(pred))
}

// R2 is the coefficient of determination.
func R2(pred, truth []float64) float64 {
	if len(pred) != len(truth) || len(pred) == 0 {
		return math.NaN()
	}
	mean := 0.0
	for _, v := range truth {
		mean += v
	}
	mean /= float64(len(truth))
	var ssRes, ssTot float64
	for i := range truth {
		ssRes += (truth[i] - pred[i]) * (truth[i] - pred[i])
		ssTot += (truth[i] - mean) * (truth[i] - mean)
	}
	if ssTot == 0 {
		if ssRes == 0 {
			return 1
		}
		return math.Inf(-1)
	}
	return 1 - ssRes/ssTot
}

// ConfusionMatrix tallies counts[trueClass][predClass] for integer labels.
func ConfusionMatrix(pred, truth []int) (map[int]map[int]int, error) {
	if len(pred) != len(truth) {
		return nil, fmt.Errorf("ml: confusion matrix length mismatch %d vs %d", len(pred), len(truth))
	}
	out := map[int]map[int]int{}
	for i := range pred {
		row, ok := out[truth[i]]
		if !ok {
			row = map[int]int{}
			out[truth[i]] = row
		}
		row[pred[i]]++
	}
	return out, nil
}

// AdjustedRandIndex scores a clustering against ground-truth assignments
// (1 = identical partitions up to relabeling, ~0 = random).
func AdjustedRandIndex(a, b []int) float64 {
	if len(a) != len(b) || len(a) == 0 {
		return math.NaN()
	}
	n := len(a)
	cont := map[[2]int]int{}
	aCount := map[int]int{}
	bCount := map[int]int{}
	for i := 0; i < n; i++ {
		cont[[2]int{a[i], b[i]}]++
		aCount[a[i]]++
		bCount[b[i]]++
	}
	choose2 := func(x int) float64 { return float64(x) * float64(x-1) / 2 }
	var sumCont, sumA, sumB float64
	for _, v := range cont {
		sumCont += choose2(v)
	}
	for _, v := range aCount {
		sumA += choose2(v)
	}
	for _, v := range bCount {
		sumB += choose2(v)
	}
	total := choose2(n)
	expected := sumA * sumB / total
	maxIdx := (sumA + sumB) / 2
	if maxIdx == expected {
		return 1
	}
	return (sumCont - expected) / (maxIdx - expected)
}
