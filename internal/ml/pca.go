package ml

import (
	"fmt"

	"dmml/internal/la"
)

// PCA computes the top-K principal components of centered data via power
// iteration with deflation on the covariance matrix.
type PCA struct {
	K int
	// UseSVD computes components via a singular value decomposition of the
	// centered data instead of eigendecomposition of the covariance —
	// numerically preferable when the covariance is ill-conditioned.
	UseSVD bool

	// Components is d×K: column j is the j-th principal axis.
	Components *la.Dense
	// Explained holds the variance captured by each component.
	Explained []float64
	// Mean is the per-feature training mean used for centering.
	Mean []float64
}

// Fit estimates the components from x (n×d).
func (m *PCA) Fit(x *la.Dense) error {
	n, d := x.Dims()
	if m.K < 1 || m.K > d {
		return fmt.Errorf("ml: PCA K=%d out of range for d=%d", m.K, d)
	}
	if n < 2 {
		return fmt.Errorf("ml: PCA needs at least 2 rows")
	}
	m.Mean = x.ColMeans()
	centered := x.Clone()
	for i := 0; i < n; i++ {
		row := centered.RowView(i)
		for j := range row {
			row[j] -= m.Mean[j]
		}
	}
	if m.UseSVD && n >= d {
		res, err := la.SVD(centered, 0, 0)
		if err != nil {
			return fmt.Errorf("ml: PCA svd: %w", err)
		}
		m.Components = res.V.Slice(0, d, 0, m.K)
		m.Explained = make([]float64, m.K)
		for i := 0; i < m.K; i++ {
			m.Explained[i] = res.S[i] * res.S[i] / float64(n-1)
		}
		return nil
	}
	cov := la.Gram(centered).Scale(1 / float64(n-1))
	vals, vecs, err := la.TopKEigen(cov, m.K, 2000, 1e-12)
	if err != nil {
		return fmt.Errorf("ml: PCA eigensolve: %w", err)
	}
	m.Components = vecs
	m.Explained = vals
	return nil
}

// Transform projects rows of x onto the fitted components (n×K scores).
func (m *PCA) Transform(x *la.Dense) *la.Dense {
	n, _ := x.Dims()
	centered := x.Clone()
	for i := 0; i < n; i++ {
		row := centered.RowView(i)
		for j := range row {
			row[j] -= m.Mean[j]
		}
	}
	return la.MatMul(centered, m.Components)
}

// InverseTransform maps scores back to the original feature space.
func (m *PCA) InverseTransform(scores *la.Dense) *la.Dense {
	out := la.MatMul(scores, m.Components.T())
	n, _ := out.Dims()
	for i := 0; i < n; i++ {
		row := out.RowView(i)
		for j := range row {
			row[j] += m.Mean[j]
		}
	}
	return out
}
