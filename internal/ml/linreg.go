// Package ml is dmml's in-database-style algorithm library (the MADlib
// analog the paper surveys): linear and logistic regression, k-means, naive
// Bayes, PCA, CART decision trees and k-NN, all built on the la substrate
// and the opt optimizers.
package ml

import (
	"fmt"

	"dmml/internal/la"
	"dmml/internal/opt"
)

// LinearRegression fits ordinary or ridge least squares. Solver selects the
// computation: direct normal equations (Cholesky), QR, or conjugate gradient
// on the Gram matrix — mirroring the direct-vs-iterative choice in-RDBMS
// analytics systems expose.
type LinearRegression struct {
	// L2 is the ridge penalty λ (0 = OLS).
	L2 float64
	// Solver selects the fitting algorithm; default SolverNormal.
	Solver Solver
	// Intercept adds a bias column internally.
	Intercept bool

	// W holds the fitted coefficients (without intercept).
	W []float64
	// B is the fitted intercept (0 unless Intercept).
	B float64
}

// Solver enumerates linear-regression fitting algorithms.
type Solver int

// Solvers.
const (
	// SolverNormal solves (XᵀX+λI)w = Xᵀy by Cholesky.
	SolverNormal Solver = iota
	// SolverQR uses a Householder QR least-squares solve (λ must be 0).
	SolverQR
	// SolverCG runs conjugate gradient on the normal equations.
	SolverCG
)

// Fit estimates the model from x (n×d) and y (len n).
func (m *LinearRegression) Fit(x *la.Dense, y []float64) error {
	n, d := x.Dims()
	if len(y) != n {
		return fmt.Errorf("ml: %d labels for %d rows", len(y), n)
	}
	design := x
	if m.Intercept {
		ones := la.NewDense(n, 1)
		ones.Fill(1)
		var err error
		design, err = la.HCat(x, ones)
		if err != nil {
			return err
		}
		d++
	}
	var w []float64
	var err error
	switch m.Solver {
	case SolverQR:
		if m.L2 != 0 {
			return fmt.Errorf("ml: QR solver does not support ridge (L2=%v)", m.L2)
		}
		w, err = la.LstSq(design, y)
	case SolverCG:
		g := la.Gram(design)
		for j := 0; j < d; j++ {
			g.Set(j, j, g.At(j, j)+m.L2)
		}
		w, _, err = opt.CG(func(v []float64) []float64 { return la.MatVec(g, v) },
			la.XtY(design, y), 10*d+50, 1e-10)
	default:
		g := la.Gram(design)
		for j := 0; j < d; j++ {
			g.Set(j, j, g.At(j, j)+m.L2)
		}
		w, err = la.SolveSPD(g, la.XtY(design, y))
	}
	if err != nil {
		return fmt.Errorf("ml: linear regression fit: %w", err)
	}
	if m.Intercept {
		m.W = w[:d-1]
		m.B = w[d-1]
	} else {
		m.W = w
		m.B = 0
	}
	return nil
}

// Predict returns ŷ = X·w + b.
func (m *LinearRegression) Predict(x *la.Dense) []float64 {
	out := la.MatVec(x, m.W)
	if m.B != 0 {
		for i := range out {
			out[i] += m.B
		}
	}
	return out
}
