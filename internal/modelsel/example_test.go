package modelsel_test

import (
	"fmt"

	"dmml/internal/modelsel"
)

// Expanding a declarative hyperparameter grid.
func ExampleGrid() {
	configs := modelsel.Grid(map[string][]float64{
		"step": {0.1, 0.5},
		"l2":   {0, 0.01},
	})
	fmt.Println("configs:", len(configs))
	fmt.Printf("first: step=%v l2=%v\n", configs[0]["step"], configs[0]["l2"])
	// Output:
	// configs: 4
	// first: step=0.1 l2=0
}
