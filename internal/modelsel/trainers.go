package modelsel

import (
	"fmt"

	"dmml/internal/la"
	"dmml/internal/opt"
)

// SGDTrainer instantiates incrementally trainable logistic-regression models
// from configs with keys "step" and "l2", scored by validation accuracy.
// It is the Trainer used by the model-search experiments.
type SGDTrainer struct {
	XTrain *la.Dense
	YTrain []float64
	XVal   *la.Dense
	YVal   []float64
	Seed   int64
}

// New implements Trainer.
func (t *SGDTrainer) New(cfg Config) (Model, error) {
	step, ok := cfg["step"]
	if !ok || step <= 0 {
		return nil, fmt.Errorf("modelsel: config needs positive \"step\", got %v", cfg["step"])
	}
	if t.XTrain == nil || t.XVal == nil {
		return nil, fmt.Errorf("modelsel: SGDTrainer missing data")
	}
	agg := &opt.SGDAggregate{Loss: opt.Logistic{}, L2: cfg["l2"]}
	agg.Initialize(t.XTrain.Cols())
	return &sgdModel{t: t, agg: agg, step: step}, nil
}

type sgdModel struct {
	t      *SGDTrainer
	agg    *opt.SGDAggregate
	step   float64
	epochs int
}

// Train implements Model: run additional SGD passes with per-epoch decay,
// continuing from the current state (the property successive halving needs).
func (m *sgdModel) Train(epochs int) error {
	if epochs <= 0 {
		return fmt.Errorf("modelsel: Train epochs must be > 0")
	}
	n := m.t.XTrain.Rows()
	for e := 0; e < epochs; e++ {
		m.agg.Step = m.step / (1 + 0.5*float64(m.epochs))
		// Deterministic rotation through a seeded permutation per epoch.
		perm := permForEpoch(n, m.t.Seed, m.epochs)
		for _, i := range perm {
			m.agg.Transition(m.t.XTrain.RowView(i), m.t.YTrain[i])
		}
		m.epochs++
	}
	return nil
}

// Score implements Model: validation accuracy.
func (m *sgdModel) Score() (float64, error) {
	w := m.agg.W
	correct := 0
	for i := 0; i < m.t.XVal.Rows(); i++ {
		margin := la.Dot(w, m.t.XVal.RowView(i))
		if (margin >= 0) == (m.t.YVal[i] > 0) {
			correct++
		}
	}
	return float64(correct) / float64(m.t.XVal.Rows()), nil
}

// EpochsTrained implements Model.
func (m *sgdModel) EpochsTrained() int { return m.epochs }

// permForEpoch derives a deterministic permutation for (seed, epoch).
func permForEpoch(n int, seed int64, epoch int) []int {
	// Multiplicative stride permutation: cheap, deterministic, epoch-varying.
	stride := int64(2*epoch+3)*2654435761 + seed
	out := make([]int, n)
	s := int(((stride % int64(n)) + int64(n)) % int64(n))
	if s == 0 {
		s = 1
	}
	// Ensure stride is coprime with n by falling back to +1 scans.
	for gcd(s, n) != 1 {
		s++
		if s >= n {
			s = 1
			break
		}
	}
	at := 0
	for i := range out {
		out[i] = at
		at = (at + s) % n
	}
	return out
}

func gcd(a, b int) int {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

// RidgeCVResult is the cross-validated error of one ridge penalty.
type RidgeCVResult struct {
	Lambda  float64
	MeanMSE float64
}

// RidgeCVShared evaluates every λ across k folds while computing the data-
// dependent intermediates only once: the full Gram/correlation plus one
// small Gram per fold's test block; every (λ, fold) pair is then answered
// algebraically with zero extra data passes. This is the
// reuse-of-intermediates pattern (Columbus / lifecycle systems) that E12
// measures. It returns the results sorted by MeanMSE and the number of data
// passes performed.
func RidgeCVShared(x *la.Dense, y []float64, lambdas []float64, k int, seed int64) ([]RidgeCVResult, int, error) {
	n, d := x.Dims()
	if len(y) != n {
		return nil, 0, fmt.Errorf("modelsel: %d labels for %d rows", len(y), n)
	}
	if len(lambdas) == 0 {
		return nil, 0, fmt.Errorf("modelsel: no lambdas")
	}
	folds, err := KFold(n, k, seed)
	if err != nil {
		return nil, 0, err
	}
	passes := 1
	gFull := la.Gram(x)
	cFull := la.XtY(x, y)

	type foldBlocks struct {
		gTest   *la.Dense
		cTest   []float64
		yTestSq float64
		nTest   int
	}
	blocks := make([]foldBlocks, k)
	for f, pair := range folds {
		test := pair[1]
		xt := x.SelectRows(test)
		yt := make([]float64, len(test))
		for i, r := range test {
			yt[i] = y[r]
		}
		passes++ // one scan over the fold's test block
		blocks[f] = foldBlocks{
			gTest:   la.Gram(xt),
			cTest:   la.XtY(xt, yt),
			yTestSq: la.Dot(yt, yt),
			nTest:   len(test),
		}
	}

	out := make([]RidgeCVResult, 0, len(lambdas))
	for _, lam := range lambdas {
		total := 0.0
		for f := range folds {
			b := blocks[f]
			gTrain := gFull.Clone().Sub(b.gTest)
			cTrain := la.SubVec(cFull, b.cTest)
			for j := 0; j < d; j++ {
				gTrain.Set(j, j, gTrain.At(j, j)+lam)
			}
			w, err := la.SolveSPD(gTrain, cTrain)
			if err != nil {
				return nil, passes, fmt.Errorf("modelsel: lambda %v fold %d: %w", lam, f, err)
			}
			// Test MSE from Gram-space identities, no data pass.
			gw := la.MatVec(b.gTest, w)
			mse := (la.Dot(w, gw) - 2*la.Dot(w, b.cTest) + b.yTestSq) / float64(b.nTest)
			if mse < 0 {
				mse = 0
			}
			total += mse
		}
		out = append(out, RidgeCVResult{Lambda: lam, MeanMSE: total / float64(k)})
	}
	sortRidge(out)
	return out, passes, nil
}

// RidgeCVNaive evaluates every (λ, fold) pair independently, rescanning the
// training rows each time — the no-reuse baseline.
func RidgeCVNaive(x *la.Dense, y []float64, lambdas []float64, k int, seed int64) ([]RidgeCVResult, int, error) {
	n, d := x.Dims()
	if len(y) != n {
		return nil, 0, fmt.Errorf("modelsel: %d labels for %d rows", len(y), n)
	}
	if len(lambdas) == 0 {
		return nil, 0, fmt.Errorf("modelsel: no lambdas")
	}
	folds, err := KFold(n, k, seed)
	if err != nil {
		return nil, 0, err
	}
	passes := 0
	out := make([]RidgeCVResult, 0, len(lambdas))
	xty := make([]float64, d) // reused across every (λ, fold) solve
	for _, lam := range lambdas {
		total := 0.0
		for f, pair := range folds {
			train, test := pair[0], pair[1]
			xtr := x.SelectRows(train)
			ytr := make([]float64, len(train))
			for i, r := range train {
				ytr[i] = y[r]
			}
			passes++ // full train-block scan per (λ, fold)
			g := la.Gram(xtr)
			for j := 0; j < d; j++ {
				g.Set(j, j, g.At(j, j)+lam)
			}
			w, err := la.SolveSPD(g, la.XtYInto(xty, xtr, ytr))
			if err != nil {
				return nil, passes, fmt.Errorf("modelsel: lambda %v fold %d: %w", lam, f, err)
			}
			var mse float64
			for _, r := range test {
				dlt := la.Dot(w, x.RowView(r)) - y[r]
				mse += dlt * dlt
			}
			total += mse / float64(len(test))
		}
		out = append(out, RidgeCVResult{Lambda: lam, MeanMSE: total / float64(k)})
	}
	sortRidge(out)
	return out, passes, nil
}

func sortRidge(rs []RidgeCVResult) {
	for i := 1; i < len(rs); i++ {
		for j := i; j > 0 && rs[j].MeanMSE < rs[j-1].MeanMSE; j-- {
			rs[j], rs[j-1] = rs[j-1], rs[j]
		}
	}
}

// BatchResult is one model from a batched training pass.
type BatchResult struct {
	Config Config
	W      []float64
	Score  float64
}

// TrainBatched trains every config simultaneously with ONE pass over the
// data per epoch — TuPAQ's batching optimization: the example is loaded
// once and all k models update against it, amortizing data access across
// the whole search batch. Scores are validation accuracies.
func TrainBatched(t *SGDTrainer, configs []Config, epochs int) ([]BatchResult, error) {
	if len(configs) == 0 {
		return nil, fmt.Errorf("modelsel: no configs")
	}
	if epochs <= 0 {
		return nil, fmt.Errorf("modelsel: epochs must be > 0")
	}
	if t.XTrain == nil || t.XVal == nil {
		return nil, fmt.Errorf("modelsel: trainer missing data")
	}
	d := t.XTrain.Cols()
	n := t.XTrain.Rows()
	type armState struct {
		w    []float64
		step float64
		l2   float64
	}
	arms := make([]armState, len(configs))
	for i, cfg := range configs {
		if cfg["step"] <= 0 {
			return nil, fmt.Errorf("modelsel: config %d needs positive \"step\"", i)
		}
		arms[i] = armState{w: make([]float64, d), step: cfg["step"], l2: cfg["l2"]}
	}
	loss := opt.Logistic{}
	for e := 0; e < epochs; e++ {
		perm := permForEpoch(n, t.Seed, e)
		for _, idx := range perm {
			x := t.XTrain.RowView(idx)
			y := t.YTrain[idx]
			// One row load feeds every model's update.
			for a := range arms {
				arm := &arms[a]
				step := arm.step / (1 + 0.5*float64(e))
				g := loss.Deriv(la.Dot(arm.w, x), y)
				if arm.l2 != 0 {
					la.ScaleVec(1-step*arm.l2, arm.w)
				}
				if g != 0 {
					la.Axpy(-step*g, x, arm.w)
				}
			}
		}
	}
	out := make([]BatchResult, len(configs))
	for i := range arms {
		correct := 0
		for r := 0; r < t.XVal.Rows(); r++ {
			if (la.Dot(arms[i].w, t.XVal.RowView(r)) >= 0) == (t.YVal[r] > 0) {
				correct++
			}
		}
		out[i] = BatchResult{
			Config: configs[i].clone(),
			W:      arms[i].w,
			Score:  float64(correct) / float64(t.XVal.Rows()),
		}
	}
	return out, nil
}
