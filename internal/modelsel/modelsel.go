// Package modelsel implements model-selection management in the style the
// paper surveys (MLbase/TuPAQ, Columbus's batched evaluation): declarative
// hyperparameter spaces, grid and random search, bandit-based successive
// halving and a Hyperband-lite wrapper, plus k-fold cross-validation with
// shared-intermediate reuse for linear models.
package modelsel

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// Config is one hyperparameter assignment.
type Config map[string]float64

// clone copies a config.
func (c Config) clone() Config {
	out := make(Config, len(c))
	for k, v := range c {
		out[k] = v
	}
	return out
}

// Model is an incrementally trainable model under evaluation. Train extends
// training by the given number of epochs; Score returns the validation
// metric (higher is better).
type Model interface {
	Train(epochs int) error
	Score() (float64, error)
	EpochsTrained() int
}

// Trainer instantiates models from configs.
type Trainer interface {
	New(cfg Config) (Model, error)
}

// Result reports one evaluated config.
type Result struct {
	Config Config
	Score  float64
	Epochs int
}

// SearchStats aggregates the work a search performed.
type SearchStats struct {
	TotalEpochs  int
	ModelsOpened int
}

// Grid expands the cross product of per-parameter value lists into configs,
// in deterministic (sorted-key) order.
func Grid(space map[string][]float64) []Config {
	keys := make([]string, 0, len(space))
	for k := range space {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	configs := []Config{{}}
	for _, k := range keys {
		var next []Config
		for _, base := range configs {
			for _, v := range space[k] {
				c := base.clone()
				c[k] = v
				next = append(next, c)
			}
		}
		configs = next
	}
	if len(space) == 0 {
		return nil
	}
	return configs
}

// RandomConfigs samples count configs uniformly from per-parameter
// [lo, hi] ranges (log-uniform when logScale[param] is set).
func RandomConfigs(space map[string][2]float64, logScale map[string]bool, count int, seed int64) []Config {
	keys := make([]string, 0, len(space))
	for k := range space {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	rng := rand.New(rand.NewSource(seed))
	out := make([]Config, count)
	for i := range out {
		c := Config{}
		for _, k := range keys {
			lo, hi := space[k][0], space[k][1]
			if logScale[k] {
				c[k] = math.Exp(math.Log(lo) + rng.Float64()*(math.Log(hi)-math.Log(lo)))
			} else {
				c[k] = lo + rng.Float64()*(hi-lo)
			}
		}
		out[i] = c
	}
	return out
}

// EvaluateAll trains every config for the full epoch budget — the exhaustive
// baseline that successive halving is compared against.
func EvaluateAll(tr Trainer, configs []Config, epochs int) ([]Result, SearchStats, error) {
	if epochs <= 0 {
		return nil, SearchStats{}, fmt.Errorf("modelsel: epochs must be > 0")
	}
	var stats SearchStats
	out := make([]Result, 0, len(configs))
	for _, cfg := range configs {
		m, err := tr.New(cfg)
		if err != nil {
			return nil, stats, err
		}
		stats.ModelsOpened++
		if err := m.Train(epochs); err != nil {
			return nil, stats, err
		}
		stats.TotalEpochs += epochs
		score, err := m.Score()
		if err != nil {
			return nil, stats, err
		}
		out = append(out, Result{Config: cfg, Score: score, Epochs: epochs})
	}
	sortResults(out)
	return out, stats, nil
}

// SuccessiveHalving runs the TuPAQ-style bandit: all configs start with
// startEpochs of training; each round the top 1/eta survive and train eta×
// longer, until one remains or maxEpochs is reached per survivor.
func SuccessiveHalving(tr Trainer, configs []Config, startEpochs, maxEpochs int, eta float64) ([]Result, SearchStats, error) {
	if len(configs) == 0 {
		return nil, SearchStats{}, fmt.Errorf("modelsel: no configs")
	}
	if startEpochs <= 0 || maxEpochs < startEpochs {
		return nil, SearchStats{}, fmt.Errorf("modelsel: bad epoch budget %d..%d", startEpochs, maxEpochs)
	}
	if eta <= 1 {
		return nil, SearchStats{}, fmt.Errorf("modelsel: eta must be > 1, got %v", eta)
	}
	var stats SearchStats
	type arm struct {
		cfg   Config
		model Model
		score float64
	}
	arms := make([]*arm, 0, len(configs))
	for _, cfg := range configs {
		m, err := tr.New(cfg)
		if err != nil {
			return nil, stats, err
		}
		stats.ModelsOpened++
		arms = append(arms, &arm{cfg: cfg, model: m})
	}
	budget := startEpochs
	var retired []Result
	for {
		for _, a := range arms {
			add := budget - a.model.EpochsTrained()
			if add > 0 {
				if err := a.model.Train(add); err != nil {
					return nil, stats, err
				}
				stats.TotalEpochs += add
			}
			s, err := a.model.Score()
			if err != nil {
				return nil, stats, err
			}
			a.score = s
		}
		sort.Slice(arms, func(i, j int) bool { return arms[i].score > arms[j].score })
		if len(arms) == 1 || budget >= maxEpochs {
			break
		}
		keep := int(math.Ceil(float64(len(arms)) / eta))
		if keep < 1 {
			keep = 1
		}
		for _, a := range arms[keep:] {
			retired = append(retired, Result{Config: a.cfg, Score: a.score, Epochs: a.model.EpochsTrained()})
		}
		arms = arms[:keep]
		budget = int(math.Min(float64(maxEpochs), float64(budget)*eta))
	}
	out := make([]Result, 0, len(configs))
	for _, a := range arms {
		out = append(out, Result{Config: a.cfg, Score: a.score, Epochs: a.model.EpochsTrained()})
	}
	out = append(out, retired...)
	sortResults(out)
	return out, stats, nil
}

// Hyperband runs several successive-halving brackets with different
// aggressiveness, hedging against configs that need long training to shine.
func Hyperband(tr Trainer, makeConfigs func(count int, bracket int) []Config, maxEpochs int, eta float64) ([]Result, SearchStats, error) {
	if maxEpochs <= 0 || eta <= 1 {
		return nil, SearchStats{}, fmt.Errorf("modelsel: bad hyperband parameters")
	}
	sMax := int(math.Floor(math.Log(float64(maxEpochs)) / math.Log(eta)))
	var all []Result
	var stats SearchStats
	for s := sMax; s >= 0; s-- {
		n := int(math.Ceil(float64(sMax+1) / float64(s+1) * math.Pow(eta, float64(s))))
		r := int(math.Max(1, float64(maxEpochs)*math.Pow(eta, -float64(s))))
		configs := makeConfigs(n, s)
		res, st, err := SuccessiveHalving(tr, configs, r, maxEpochs, eta)
		if err != nil {
			return nil, stats, err
		}
		all = append(all, res...)
		stats.TotalEpochs += st.TotalEpochs
		stats.ModelsOpened += st.ModelsOpened
	}
	sortResults(all)
	return all, stats, nil
}

func sortResults(rs []Result) {
	sort.Slice(rs, func(i, j int) bool { return rs[i].Score > rs[j].Score })
}

// KFold splits [0,n) into k folds and returns (trainIdx, testIdx) pairs,
// shuffled by seed.
func KFold(n, k int, seed int64) ([][2][]int, error) {
	if k < 2 || k > n {
		return nil, fmt.Errorf("modelsel: k=%d out of range for n=%d", k, n)
	}
	perm := rand.New(rand.NewSource(seed)).Perm(n)
	folds := make([][]int, k)
	for i, p := range perm {
		folds[i%k] = append(folds[i%k], p)
	}
	out := make([][2][]int, k)
	for f := 0; f < k; f++ {
		var train []int
		for g := 0; g < k; g++ {
			if g != f {
				train = append(train, folds[g]...)
			}
		}
		out[f] = [2][]int{train, folds[f]}
	}
	return out, nil
}

// CrossValidate runs fitScore on every fold and returns the per-fold scores.
// fitScore receives (trainIdx, testIdx) and returns the fold's score.
func CrossValidate(n, k int, seed int64, fitScore func(train, test []int) (float64, error)) ([]float64, error) {
	folds, err := KFold(n, k, seed)
	if err != nil {
		return nil, err
	}
	scores := make([]float64, k)
	for f, pair := range folds {
		s, err := fitScore(pair[0], pair[1])
		if err != nil {
			return nil, fmt.Errorf("modelsel: fold %d: %w", f, err)
		}
		scores[f] = s
	}
	return scores, nil
}
