package modelsel

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"dmml/internal/la"
	"dmml/internal/workload"
)

func TestGrid(t *testing.T) {
	configs := Grid(map[string][]float64{
		"step": {0.1, 0.5},
		"l2":   {0, 0.01, 0.1},
	})
	if len(configs) != 6 {
		t.Fatalf("grid size = %d", len(configs))
	}
	seen := map[string]bool{}
	for _, c := range configs {
		key := fmt.Sprintf("%v/%v", c["step"], c["l2"])
		if seen[key] {
			t.Fatalf("duplicate config %v", c)
		}
		seen[key] = true
	}
	if Grid(nil) != nil {
		t.Fatal("empty grid should be nil")
	}
}

func TestRandomConfigs(t *testing.T) {
	configs := RandomConfigs(map[string][2]float64{
		"step": {0.01, 1},
		"l2":   {1e-6, 1e-1},
	}, map[string]bool{"l2": true}, 50, 9)
	if len(configs) != 50 {
		t.Fatalf("count = %d", len(configs))
	}
	for _, c := range configs {
		if c["step"] < 0.01 || c["step"] > 1 {
			t.Fatalf("step %v out of range", c["step"])
		}
		if c["l2"] < 1e-6 || c["l2"] > 1e-1 {
			t.Fatalf("l2 %v out of range", c["l2"])
		}
	}
	// Determinism.
	again := RandomConfigs(map[string][2]float64{
		"step": {0.01, 1},
		"l2":   {1e-6, 1e-1},
	}, map[string]bool{"l2": true}, 50, 9)
	for i := range configs {
		if configs[i]["step"] != again[i]["step"] {
			t.Fatal("random configs not deterministic for fixed seed")
		}
	}
}

// fakeTrainer scores each config by a known function of its parameters and
// converges toward that score as epochs accumulate; lets us verify search
// logic exactly.
type fakeTrainer struct{}

type fakeModel struct {
	target float64
	epochs int
}

func (fakeTrainer) New(cfg Config) (Model, error) {
	return &fakeModel{target: cfg["quality"]}, nil
}

func (m *fakeModel) Train(epochs int) error { m.epochs += epochs; return nil }

func (m *fakeModel) Score() (float64, error) {
	// Approaches target as epochs grow; poor configs stay poor.
	return m.target * (1 - math.Exp(-float64(m.epochs)/4)), nil
}

func (m *fakeModel) EpochsTrained() int { return m.epochs }

func makeFakeConfigs(n int) []Config {
	out := make([]Config, n)
	for i := range out {
		out[i] = Config{"quality": float64(i+1) / float64(n)}
	}
	return out
}

func TestEvaluateAll(t *testing.T) {
	configs := makeFakeConfigs(8)
	res, stats, err := EvaluateAll(fakeTrainer{}, configs, 10)
	if err != nil {
		t.Fatal(err)
	}
	if stats.TotalEpochs != 80 || stats.ModelsOpened != 8 {
		t.Fatalf("stats = %+v", stats)
	}
	if res[0].Config["quality"] != 1 {
		t.Fatalf("best config = %v", res[0].Config)
	}
	// Sorted descending.
	for i := 1; i < len(res); i++ {
		if res[i].Score > res[i-1].Score {
			t.Fatal("results not sorted")
		}
	}
	if _, _, err := EvaluateAll(fakeTrainer{}, configs, 0); err == nil {
		t.Fatal("want epochs error")
	}
}

func TestSuccessiveHalvingFindsBestCheaper(t *testing.T) {
	configs := makeFakeConfigs(16)
	shRes, shStats, err := SuccessiveHalving(fakeTrainer{}, configs, 1, 16, 2)
	if err != nil {
		t.Fatal(err)
	}
	_, gridStats, err := EvaluateAll(fakeTrainer{}, configs, 16)
	if err != nil {
		t.Fatal(err)
	}
	if shRes[0].Config["quality"] != 1 {
		t.Fatalf("SH best = %v", shRes[0].Config)
	}
	// The headline claim: SH finds the best with far fewer total epochs.
	if float64(shStats.TotalEpochs) > 0.5*float64(gridStats.TotalEpochs) {
		t.Fatalf("SH epochs %d not ≪ grid %d", shStats.TotalEpochs, gridStats.TotalEpochs)
	}
	// Every config must appear exactly once in the ranked output.
	if len(shRes) != 16 {
		t.Fatalf("SH results = %d", len(shRes))
	}
}

func TestSuccessiveHalvingValidation(t *testing.T) {
	if _, _, err := SuccessiveHalving(fakeTrainer{}, nil, 1, 8, 2); err == nil {
		t.Fatal("want no-configs error")
	}
	if _, _, err := SuccessiveHalving(fakeTrainer{}, makeFakeConfigs(2), 0, 8, 2); err == nil {
		t.Fatal("want budget error")
	}
	if _, _, err := SuccessiveHalving(fakeTrainer{}, makeFakeConfigs(2), 1, 8, 1); err == nil {
		t.Fatal("want eta error")
	}
}

func TestHyperband(t *testing.T) {
	res, stats, err := Hyperband(fakeTrainer{}, func(count, bracket int) []Config {
		return makeFakeConfigs(count)
	}, 16, 2)
	if err != nil {
		t.Fatal(err)
	}
	if res[0].Config["quality"] != 1 {
		t.Fatalf("hyperband best = %v", res[0].Config)
	}
	if stats.TotalEpochs == 0 || stats.ModelsOpened == 0 {
		t.Fatalf("stats = %+v", stats)
	}
}

func TestKFold(t *testing.T) {
	folds, err := KFold(10, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(folds) != 3 {
		t.Fatalf("folds = %d", len(folds))
	}
	seen := map[int]int{}
	for _, pair := range folds {
		if len(pair[0])+len(pair[1]) != 10 {
			t.Fatal("fold does not cover all rows")
		}
		for _, i := range pair[1] {
			seen[i]++
		}
		// Train and test are disjoint.
		inTest := map[int]bool{}
		for _, i := range pair[1] {
			inTest[i] = true
		}
		for _, i := range pair[0] {
			if inTest[i] {
				t.Fatal("row in both train and test")
			}
		}
	}
	for i := 0; i < 10; i++ {
		if seen[i] != 1 {
			t.Fatalf("row %d appears in %d test folds", i, seen[i])
		}
	}
	if _, err := KFold(5, 1, 0); err == nil {
		t.Fatal("want k error")
	}
	if _, err := KFold(3, 5, 0); err == nil {
		t.Fatal("want k>n error")
	}
}

func TestCrossValidate(t *testing.T) {
	calls := 0
	scores, err := CrossValidate(20, 4, 2, func(train, test []int) (float64, error) {
		calls++
		return float64(len(test)), nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if calls != 4 || len(scores) != 4 {
		t.Fatalf("calls = %d scores = %v", calls, scores)
	}
	if _, err := CrossValidate(10, 2, 0, func(_, _ []int) (float64, error) {
		return 0, fmt.Errorf("boom")
	}); err == nil {
		t.Fatal("want propagated error")
	}
}

func TestSGDTrainerSearch(t *testing.T) {
	r := rand.New(rand.NewSource(150))
	x, y, _ := workload.Classification(r, 1200, 6, 0.05)
	xt := x.SelectRows(seqInts(0, 900))
	yt := y[:900]
	xv := x.SelectRows(seqInts(900, 1200))
	yv := y[900:]
	tr := &SGDTrainer{XTrain: xt, YTrain: yt, XVal: xv, YVal: yv, Seed: 3}
	configs := Grid(map[string][]float64{
		"step": {1e-4, 0.05, 0.5},
		"l2":   {0, 0.001},
	})
	res, _, err := SuccessiveHalving(tr, configs, 1, 8, 2)
	if err != nil {
		t.Fatal(err)
	}
	if res[0].Score < 0.85 {
		t.Fatalf("best validation accuracy = %v", res[0].Score)
	}
	// Ranked output: the winner dominates the last survivor.
	if res[0].Score < res[len(res)-1].Score {
		t.Fatal("results not ranked by score")
	}
	// Config validation.
	if _, err := tr.New(Config{"step": 0}); err == nil {
		t.Fatal("want step validation error")
	}
}

func seqInts(lo, hi int) []int {
	out := make([]int, hi-lo)
	for i := range out {
		out[i] = lo + i
	}
	return out
}

func TestRidgeCVSharedMatchesNaive(t *testing.T) {
	r := rand.New(rand.NewSource(151))
	x, y, _ := workload.Regression(r, 500, 8, 0.3)
	lambdas := []float64{1e-4, 0.01, 0.1, 1, 10}
	shared, passesS, err := RidgeCVShared(x, y, lambdas, 5, 11)
	if err != nil {
		t.Fatal(err)
	}
	naive, passesN, err := RidgeCVNaive(x, y, lambdas, 5, 11)
	if err != nil {
		t.Fatal(err)
	}
	// Same fold split (same seed) → identical math → same results.
	for i := range shared {
		if shared[i].Lambda != naive[i].Lambda {
			t.Fatalf("lambda ranking differs: %v vs %v", shared[i], naive[i])
		}
		if math.Abs(shared[i].MeanMSE-naive[i].MeanMSE) > 1e-6*(1+shared[i].MeanMSE) {
			t.Fatalf("MSE differs for λ=%v: %v vs %v", shared[i].Lambda, shared[i].MeanMSE, naive[i].MeanMSE)
		}
	}
	// Reuse: k+1 passes vs k·|λ| passes.
	if passesS != 6 {
		t.Fatalf("shared passes = %d, want 6", passesS)
	}
	if passesN != 25 {
		t.Fatalf("naive passes = %d, want 25", passesN)
	}
}

func TestRidgeCVValidation(t *testing.T) {
	x := la.NewDense(10, 2)
	y := make([]float64, 10)
	if _, _, err := RidgeCVShared(x, y, nil, 2, 0); err == nil {
		t.Fatal("want no-lambdas error")
	}
	if _, _, err := RidgeCVShared(x, y[:3], []float64{1}, 2, 0); err == nil {
		t.Fatal("want label mismatch error")
	}
	if _, _, err := RidgeCVNaive(x, y, []float64{1}, 50, 0); err == nil {
		t.Fatal("want fold error")
	}
}

// Batched training must produce the same models as training each config
// separately through the incremental trainer (identical update sequences).
func TestTrainBatchedMatchesSeparate(t *testing.T) {
	r := rand.New(rand.NewSource(152))
	x, y, _ := workload.Classification(r, 800, 5, 0.05)
	tr := &SGDTrainer{
		XTrain: x.SelectRows(seqInts(0, 600)), YTrain: y[:600],
		XVal: x.SelectRows(seqInts(600, 800)), YVal: y[600:],
		Seed: 7,
	}
	configs := []Config{
		{"step": 0.1, "l2": 0.0},
		{"step": 0.5, "l2": 0.01},
		{"step": 1.0, "l2": 0.0},
	}
	batched, err := TrainBatched(tr, configs, 4)
	if err != nil {
		t.Fatal(err)
	}
	for i, cfg := range configs {
		m, err := tr.New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if err := m.Train(4); err != nil {
			t.Fatal(err)
		}
		sep, err := m.Score()
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(batched[i].Score-sep) > 1e-12 {
			t.Fatalf("config %d: batched score %v vs separate %v", i, batched[i].Score, sep)
		}
	}
}

func TestTrainBatchedValidation(t *testing.T) {
	tr := &SGDTrainer{}
	if _, err := TrainBatched(tr, nil, 4); err == nil {
		t.Fatal("want no-configs error")
	}
	if _, err := TrainBatched(tr, []Config{{"step": 1}}, 0); err == nil {
		t.Fatal("want epochs error")
	}
	if _, err := TrainBatched(tr, []Config{{"step": 1}}, 1); err == nil {
		t.Fatal("want missing-data error")
	}
	r := rand.New(rand.NewSource(153))
	x, y, _ := workload.Classification(r, 100, 3, 0)
	tr = &SGDTrainer{XTrain: x, YTrain: y, XVal: x, YVal: y}
	if _, err := TrainBatched(tr, []Config{{"step": 0}}, 1); err == nil {
		t.Fatal("want step error")
	}
}
