package metrics

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"time"
)

// CounterSnapshot is one counter's merged value.
type CounterSnapshot struct {
	Name  string `json:"name"`
	Value int64  `json:"value"`
}

// GaugeSnapshot is one gauge's last value.
type GaugeSnapshot struct {
	Name  string  `json:"name"`
	Value float64 `json:"value"`
}

// Snapshot is a point-in-time view of every registered instrument, sorted
// by name so dumps diff cleanly across runs.
type Snapshot struct {
	Counters   []CounterSnapshot   `json:"counters"`
	Gauges     []GaugeSnapshot     `json:"gauges"`
	Histograms []HistogramSnapshot `json:"histograms"`
	Timers     []TimerSnapshot     `json:"timers"`
}

// TakeSnapshot merges every instrument's stripes into a Snapshot.
func TakeSnapshot() Snapshot {
	registry.mu.Lock()
	defer registry.mu.Unlock()
	var snap Snapshot
	for _, name := range sortedNames(registry.counters) {
		snap.Counters = append(snap.Counters, CounterSnapshot{Name: name, Value: registry.counters[name].Value()})
	}
	for _, name := range sortedNames(registry.gauges) {
		v := registry.gauges[name].Value()
		// encoding/json rejects NaN/Inf; a single poisoned gauge (0/0
		// loss, empty-input ratio) must not invalidate the whole dump.
		if math.IsNaN(v) {
			v = 0
		} else if math.IsInf(v, 1) {
			v = math.MaxFloat64
		} else if math.IsInf(v, -1) {
			v = -math.MaxFloat64
		}
		snap.Gauges = append(snap.Gauges, GaugeSnapshot{Name: name, Value: v})
	}
	for _, name := range sortedNames(registry.hists) {
		snap.Histograms = append(snap.Histograms, registry.hists[name].Snapshot())
	}
	for _, name := range sortedNames(registry.timers) {
		snap.Timers = append(snap.Timers, registry.timers[name].Snapshot())
	}
	return snap
}

// WriteJSON writes the full registry snapshot as indented JSON — the
// `dmmlbench -metrics` dump consumed by the CI bench guard.
func WriteJSON(w io.Writer) error {
	data, err := json.MarshalIndent(TakeSnapshot(), "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	_, err = w.Write(data)
	return err
}

// OpStat is one operator row of the -stats table: how often it ran, its
// cumulative wall time, and its self time (wall time minus child spans).
type OpStat struct {
	Name  string
	Count int64
	Total time.Duration
	Self  time.Duration
}

// Ops returns per-operator stats for every timer whose name starts with
// prefix ("" for all), sorted by self time descending (name-ascending for
// ties, so equal-cost rows order deterministically). Timers that never
// fired are omitted.
func Ops(prefix string) []OpStat {
	registry.mu.Lock()
	defer registry.mu.Unlock()
	var ops []OpStat
	for name, t := range registry.timers {
		if !strings.HasPrefix(name, prefix) {
			continue
		}
		s := t.Snapshot()
		if s.Count == 0 {
			continue
		}
		ops = append(ops, OpStat{
			Name:  name,
			Count: s.Count,
			Total: time.Duration(s.TotalNs),
			Self:  time.Duration(s.SelfNs),
		})
	}
	sort.Slice(ops, func(i, j int) bool {
		if ops[i].Self != ops[j].Self {
			return ops[i].Self > ops[j].Self
		}
		return ops[i].Name < ops[j].Name
	})
	return ops
}

// FormatOpsTable renders ops as a SystemML-style heavy-hitter table: rank,
// operator, call count, self time, total wall time, and self share of
// denom (typically the whole run's wall time). k bounds the rows (k <= 0
// prints all).
//
//	#  operator            count        self       total   share
//	1  dml.op.%*%              3      8.10ms      8.31ms   65.9%
func FormatOpsTable(ops []OpStat, k int, denom time.Duration) string {
	if k > 0 && len(ops) > k {
		ops = ops[:k]
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%-3s %-24s %9s %11s %11s %7s\n", "#", "operator", "count", "self", "total", "share")
	for i, op := range ops {
		share := 0.0
		if denom > 0 {
			share = 100 * float64(op.Self) / float64(denom)
		}
		fmt.Fprintf(&b, "%-3d %-24s %9d %11s %11s %6.1f%%\n",
			i+1, op.Name, op.Count, fmtDur(op.Self), fmtDur(op.Total), share)
	}
	return b.String()
}

// fmtDur renders a duration at fixed ms/µs/ns granularity — stable column
// widths, unlike time.Duration.String's adaptive units.
func fmtDur(d time.Duration) string {
	switch {
	case d >= time.Second:
		return fmt.Sprintf("%.2fs", d.Seconds())
	case d >= time.Millisecond:
		return fmt.Sprintf("%.2fms", float64(d)/float64(time.Millisecond))
	case d >= time.Microsecond:
		return fmt.Sprintf("%.2fµs", float64(d)/float64(time.Microsecond))
	default:
		return fmt.Sprintf("%dns", d.Nanoseconds())
	}
}
