// Package metrics is dmml's engine-wide observability substrate: a
// low-overhead, concurrency-safe registry of counters, gauges, and
// duration histograms, plus a lightweight span API for parent/child
// operator timing (see span.go).
//
// Design constraints, in priority order:
//
//  1. Disabled means free. Collection is off by default; every increment
//     path starts with one atomic-bool load and returns. Instrumented
//     kernels (la, compress, pool, opt, paramserver, storage) run at full
//     speed when nobody is watching.
//  2. Zero allocations on the hot path, enabled or not. Counter.Add,
//     Gauge.Set, Histogram.Observe, and Timer stopwatches never touch the
//     heap; the alloc_test pins this with testing.AllocsPerRun.
//  3. No coordination on the hot path. Instruments are lock-striped:
//     each holds a small array of cache-line-padded atomic cells and a
//     writer picks a stripe from its own stack address, so goroutines on
//     different stacks land on different cache lines instead of bouncing
//     one counter line between cores. Readers (Snapshot, Value) merge the
//     stripes.
//
// Instruments are created once at package init via NewCounter/NewGauge/
// NewTimer/NewHistogram (get-or-create by name, so double registration is
// safe) and held in package-level vars at the call sites. The registry is
// global: one process, one engine, one set of instruments — mirroring how
// SystemML's -stats instruments its single runtime.
package metrics

import (
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"unsafe"
)

// enabled gates all collection. Off by default: dmml is a library first,
// and unobserved runs must not pay for observability.
var enabled atomic.Bool

// Enable turns collection on process-wide (dmml -stats, dmmlbench -metrics).
func Enable() { enabled.Store(true) }

// Disable turns collection off. Already-recorded values are retained.
func Disable() { enabled.Store(false) }

// Enabled reports whether collection is on. Exposed so call sites can skip
// building expensive labels/spans when nobody is collecting.
func Enabled() bool { return enabled.Load() }

// numStripes is the stripe count per instrument. 8 padded int64 cells cost
// 512 B per counter — irrelevant for the few dozen engine instruments —
// and are enough to keep a machine's worth of workers off each other's
// cache lines.
const numStripes = 8

// padCell is one cache-line-padded atomic cell of a striped instrument.
type padCell struct {
	v atomic.Int64
	_ [56]byte // pad to 64 B so adjacent stripes never share a line
}

// stripeIdx picks this goroutine's stripe from the address of a stack
// variable: goroutine stacks are distinct allocations, so the high bits of
// a stack address spread goroutines across stripes while staying stable
// within one call frame depth. The unsafe.Pointer is converted to uintptr
// immediately and never stored, so b does not escape.
//dmml:noalloc
func stripeIdx() int {
	var b byte
	return int(uintptr(unsafe.Pointer(&b))>>9) & (numStripes - 1)
}

// Counter is a monotonically increasing striped int64. Increments are one
// atomic add on a goroutine-local-ish cache line; reads merge the stripes.
type Counter struct {
	name    string
	stripes [numStripes]padCell
}

// Add increments the counter by n. No-op (one atomic load) when collection
// is disabled. Never allocates.
//dmml:noalloc
func (c *Counter) Add(n int64) {
	if !enabled.Load() {
		return
	}
	c.stripes[stripeIdx()].v.Add(n)
}

// Inc increments the counter by 1.
//dmml:noalloc
func (c *Counter) Inc() { c.Add(1) }

// Value merges the stripes into the current total.
func (c *Counter) Value() int64 {
	var sum int64
	for i := range c.stripes {
		sum += c.stripes[i].v.Load()
	}
	return sum
}

// Name returns the registered instrument name.
func (c *Counter) Name() string { return c.name }

func (c *Counter) reset() {
	for i := range c.stripes {
		c.stripes[i].v.Store(0)
	}
}

// Gauge is a last-write-wins float64 (queue depth, compression ratio,
// current loss). A single atomic cell: gauges are set at coarse points,
// not in inner loops, so striping would only blur the "current value"
// semantics.
type Gauge struct {
	name string
	bits atomic.Uint64
}

// Set stores v. No-op when collection is disabled. Never allocates.
//dmml:noalloc
func (g *Gauge) Set(v float64) {
	if !enabled.Load() {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Value returns the last stored value (0 before any Set).
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Name returns the registered instrument name.
func (g *Gauge) Name() string { return g.name }

func (g *Gauge) reset() { g.bits.Store(0) }

// registry is the process-global instrument table. Creation takes a lock;
// increments never do.
var registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
	timers   map[string]*Timer
}

func init() {
	registry.counters = make(map[string]*Counter)
	registry.gauges = make(map[string]*Gauge)
	registry.hists = make(map[string]*Histogram)
	registry.timers = make(map[string]*Timer)
}

// NewCounter returns the counter registered under name, creating it on
// first use. Call at package init and keep the pointer; the per-call map
// lookup is for registration only, never the increment path.
func NewCounter(name string) *Counter {
	registry.mu.Lock()
	defer registry.mu.Unlock()
	if c, ok := registry.counters[name]; ok {
		return c
	}
	c := &Counter{name: name}
	registry.counters[name] = c
	return c
}

// NewGauge returns the gauge registered under name, creating it on first use.
func NewGauge(name string) *Gauge {
	registry.mu.Lock()
	defer registry.mu.Unlock()
	if g, ok := registry.gauges[name]; ok {
		return g
	}
	g := &Gauge{name: name}
	registry.gauges[name] = g
	return g
}

// NewHistogram returns the histogram registered under name, creating it on
// first use.
func NewHistogram(name string) *Histogram {
	registry.mu.Lock()
	defer registry.mu.Unlock()
	if h, ok := registry.hists[name]; ok {
		return h
	}
	h := &Histogram{name: name}
	registry.hists[name] = h
	return h
}

// NewTimer returns the timer registered under name, creating it on first
// use. Spans (span.go) resolve their timers through this, so a span name
// and a NewTimer call site with the same name share one instrument.
func NewTimer(name string) *Timer {
	registry.mu.Lock()
	defer registry.mu.Unlock()
	if t, ok := registry.timers[name]; ok {
		return t
	}
	t := &Timer{name: name}
	registry.timers[name] = t
	return t
}

// Reset zeroes every registered instrument (instruments stay registered).
// Tests and long-lived servers use it to scope a measurement window.
func Reset() {
	registry.mu.Lock()
	defer registry.mu.Unlock()
	for _, c := range registry.counters {
		c.reset()
	}
	for _, g := range registry.gauges {
		g.reset()
	}
	for _, h := range registry.hists {
		h.reset()
	}
	for _, t := range registry.timers {
		t.reset()
	}
}

// sortedNames returns the keys of a string-keyed map in sorted order.
func sortedNames[V any](m map[string]V) []string {
	names := make([]string, 0, len(m))
	for name := range m {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}
