package metrics

import (
	"testing"
	"time"
)

// The whole point of the metrics layer is that instrumented kernels pay
// (almost) nothing: one atomic load when disabled, a striped atomic add
// when enabled, and zero heap allocations either way. These pins fail the
// build the moment an increment path starts allocating — e.g. if the
// stripe-index stack variable ever escapes.

func pinZeroAllocs(t *testing.T, name string, f func()) {
	t.Helper()
	if n := testing.AllocsPerRun(200, f); n != 0 {
		t.Errorf("%s: %v allocs/op, want 0", name, n)
	}
}

func TestIncrementPathsDoNotAllocate(t *testing.T) {
	c := NewCounter("test.alloc.counter")
	g := NewGauge("test.alloc.gauge")
	h := NewHistogram("test.alloc.hist")
	tm := NewTimer("test.alloc.timer")

	for _, mode := range []struct {
		name string
		set  func()
	}{
		{"disabled", Disable},
		{"enabled", Enable},
	} {
		mode.set()
		pinZeroAllocs(t, mode.name+"/Counter.Add", func() { c.Add(3) })
		pinZeroAllocs(t, mode.name+"/Gauge.Set", func() { g.Set(1.5) })
		pinZeroAllocs(t, mode.name+"/Histogram.Observe", func() { h.Observe(1234) })
		pinZeroAllocs(t, mode.name+"/Timer.Observe", func() { tm.Observe(time.Microsecond) })
		pinZeroAllocs(t, mode.name+"/Timer.Start+Stop", func() { tm.Start().Stop() })
	}
	Disable()
	Reset()
}

// The disabled span path must also be free: no context allocation, no
// closure, no clock read.
func TestDisabledSpanDoesNotAllocate(t *testing.T) {
	Disable()
	ctx := testCtx{}
	pinZeroAllocs(t, "disabled/Span", func() {
		_, end := Span(ctx, "test.alloc.span")
		end()
	})
}

// testCtx is a heap-free context.Context stand-in (context.Background is
// also alloc-free, but a local type makes the pin self-contained).
type testCtx struct{}

func (testCtx) Deadline() (time.Time, bool) { return time.Time{}, false }
func (testCtx) Done() <-chan struct{}       { return nil }
func (testCtx) Err() error                  { return nil }
func (testCtx) Value(key any) any           { return nil }
