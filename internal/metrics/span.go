package metrics

import (
	"context"
	"sync"
	"time"
)

// span is the in-flight state of one Span call. Pooled: a DML program can
// open millions of operator spans, and recycling the structs keeps the
// enabled--stats overhead to the context allocation the API requires.
type span struct {
	timer  *Timer
	parent *span
	start  time.Time
	child  time.Duration
}

var spanPool = sync.Pool{New: func() any { return new(span) }}

// spanKey is the context key carrying the innermost open span.
type spanKey struct{}

// noopEnd is handed out while collection is disabled so Span never
// allocates a closure on the disabled path.
var noopEnd = func() {}

// Span opens a timed span named name (e.g. "la.Gemm", "dml.op.%*%") under
// whatever span ctx already carries, and returns the child context plus an
// end function. Ending the span records its wall time into the Timer
// registered under name and charges the duration to the parent span's
// child time, so the parent's recorded self time excludes it.
//
// End exactly once, on the same goroutine that opened the span; a span
// tree is per-goroutine (hand work to another goroutine by opening a new
// root there). While collection is disabled, Span returns ctx unchanged
// and a shared no-op end, costing one atomic load and zero allocations.
func Span(ctx context.Context, name string) (context.Context, func()) {
	if !enabled.Load() {
		return ctx, noopEnd
	}
	s := spanPool.Get().(*span)
	s.timer = NewTimer(name)
	s.child = 0
	s.parent = nil
	if p, ok := ctx.Value(spanKey{}).(*span); ok {
		s.parent = p
	}
	s.start = time.Now()
	return context.WithValue(ctx, spanKey{}, s), func() {
		total := time.Since(s.start)
		self := total - s.child
		s.timer.observeSpan(total, self)
		if s.parent != nil {
			s.parent.child += total
		}
		s.timer, s.parent = nil, nil
		spanPool.Put(s)
	}
}
