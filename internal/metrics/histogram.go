package metrics

import (
	"math"
	"math/bits"
	"sync/atomic"
	"time"
)

// numBuckets covers power-of-two buckets for int64 observations: bucket i
// counts values v with bits.Len64(v) == i, i.e. v in [2^(i-1), 2^i). For
// nanosecond durations that spans sub-ns to ~4.6 hours before saturating
// into the top bucket — wide enough for every engine operation.
const numBuckets = 44

// histStripe is one writer stripe of a histogram: a count/sum pair, the
// power-of-two bucket counts, and min/max cells. Everything is a plain
// atomic int64, so concurrent observers never coordinate beyond the cache
// coherence of their own stripe.
//
// Observations are clamped non-negative (Observe), which lets both extrema
// make the *zero value* mean "empty" — no sentinel installation, and
// therefore no init-publication ordering to get wrong (an earlier design
// published an init flag before storing per-stripe sentinels; a concurrent
// first Observe could then read the zero min and pin it to 0 forever):
//
//   - minC stores math.MaxInt64 - min. A zeroed cell decodes to
//     MaxInt64, the identity for a min-merge, and a tighter (smaller)
//     minimum is a *larger* stored value, so the install condition is a
//     plain "is mine larger" CAS.
//   - max stores the maximum directly. A zeroed cell is 0, the identity
//     for a max-merge over non-negative observations.
type histStripe struct {
	count   atomic.Int64
	sum     atomic.Int64
	minC    atomic.Int64 // math.MaxInt64 - min; 0 (decoding to MaxInt64) when empty
	max     atomic.Int64 // max; 0 when empty (exact: observations are >= 0)
	buckets [numBuckets]atomic.Int64
	_       [48]byte // keep stripes from sharing the trailing cache line
}

func (s *histStripe) observe(v int64) {
	s.count.Add(1)
	s.sum.Add(v)
	b := bits.Len64(uint64(v))
	if b >= numBuckets {
		b = numBuckets - 1
	}
	s.buckets[b].Add(1)
	// Min/max via CAS races: losing a race means another writer already
	// installed a tighter bound, so retry until ours is not an improvement.
	c := math.MaxInt64 - v
	for {
		cur := s.minC.Load()
		if c <= cur || s.minC.CompareAndSwap(cur, c) {
			break
		}
	}
	for {
		cur := s.max.Load()
		if v <= cur || s.max.CompareAndSwap(cur, v) {
			break
		}
	}
}

// Histogram records int64 observations (the engine convention is
// nanoseconds for durations, raw units otherwise) into lock-striped
// power-of-two buckets. Negative observations are clamped to 0.
type Histogram struct {
	name    string
	stripes [numStripes]histStripe
}

// Observe records v. No-op when collection is disabled. Never allocates.
// The zero Histogram value is ready to use: stripe extrema encode "empty"
// as their zero value (see histStripe), so there is no lazy init step.
//dmml:noalloc
func (h *Histogram) Observe(v int64) {
	if !enabled.Load() {
		return
	}
	if v < 0 {
		v = 0
	}
	h.stripes[stripeIdx()].observe(v)
}

// Name returns the registered instrument name.
func (h *Histogram) Name() string { return h.name }

// HistogramSnapshot is a merged, read-only view of a histogram.
type HistogramSnapshot struct {
	Name  string  `json:"name"`
	Count int64   `json:"count"`
	Sum   int64   `json:"sum"`
	Min   int64   `json:"min"` // 0 when Count == 0
	Max   int64   `json:"max"` // 0 when Count == 0
	Mean  float64 `json:"mean"`
	// Buckets[i] counts observations v with 2^(i-1) <= v < 2^i (i = 0
	// counts v == 0). Trailing empty buckets are trimmed.
	Buckets []int64 `json:"buckets"`
}

// Snapshot merges the stripes into one consistent-enough view. Concurrent
// writers may straddle the merge; totals are still exact once writers
// quiesce, which is how every reporting path uses it.
func (h *Histogram) Snapshot() HistogramSnapshot {
	snap := HistogramSnapshot{Name: h.name, Min: math.MaxInt64, Max: math.MinInt64}
	var buckets [numBuckets]int64
	for i := range h.stripes {
		s := &h.stripes[i]
		snap.Count += s.count.Load()
		snap.Sum += s.sum.Load()
		// Empty stripes decode to the merge identities (min MaxInt64, max 0),
		// so no emptiness check is needed per stripe.
		if m := math.MaxInt64 - s.minC.Load(); m < snap.Min {
			snap.Min = m
		}
		if m := s.max.Load(); m > snap.Max {
			snap.Max = m
		}
		for b := range buckets {
			buckets[b] += s.buckets[b].Load()
		}
	}
	if snap.Count == 0 {
		snap.Min, snap.Max = 0, 0
	} else {
		snap.Mean = float64(snap.Sum) / float64(snap.Count)
	}
	last := 0
	for b, n := range buckets {
		if n != 0 {
			last = b + 1
		}
	}
	snap.Buckets = append([]int64(nil), buckets[:last]...)
	return snap
}

func (h *Histogram) reset() {
	for i := range h.stripes {
		s := &h.stripes[i]
		s.count.Store(0)
		s.sum.Store(0)
		s.minC.Store(0)
		s.max.Store(0)
		for b := range s.buckets {
			s.buckets[b].Store(0)
		}
	}
}

// Timer is a duration histogram that additionally tracks self time — the
// portion of an operation's wall time not spent inside child spans. Plain
// stopwatch observations count fully as self time; the span API (span.go)
// splits total and self so an operator table can avoid double-charging
// parents for their children.
type Timer struct {
	name string
	hist Histogram
	self [numStripes]padCell // self-time nanoseconds
}

// Name returns the registered instrument name.
func (t *Timer) Name() string { return t.name }

// Observe records one operation of duration d (all of it self time).
// No-op when collection is disabled. Never allocates.
func (t *Timer) Observe(d time.Duration) { t.observeSpan(d, d) }

func (t *Timer) observeSpan(total, self time.Duration) {
	if !enabled.Load() {
		return
	}
	if total < 0 {
		total = 0
	}
	if self < 0 {
		self = 0
	}
	t.hist.stripes[stripeIdx()].observe(int64(total))
	t.self[stripeIdx()].v.Add(int64(self))
}

// Stopwatch is an in-flight timing started by Timer.Start. The zero value
// (returned while collection is disabled) makes Stop a no-op.
type Stopwatch struct {
	t     *Timer
	start time.Time
}

// Start begins timing one operation. When collection is disabled it reads
// no clock and returns the zero Stopwatch. Never allocates.
func (t *Timer) Start() Stopwatch {
	if !enabled.Load() {
		return Stopwatch{}
	}
	return Stopwatch{t: t, start: time.Now()}
}

// Stop records the elapsed time since Start. No-op on the zero Stopwatch.
func (sw Stopwatch) Stop() {
	if sw.t == nil {
		return
	}
	sw.t.Observe(time.Since(sw.start))
}

// TimerSnapshot is a merged, read-only view of a timer.
type TimerSnapshot struct {
	Name    string  `json:"name"`
	Count   int64   `json:"count"`
	TotalNs int64   `json:"total_ns"`
	SelfNs  int64   `json:"self_ns"`
	MinNs   int64   `json:"min_ns"`
	MaxNs   int64   `json:"max_ns"`
	MeanNs  float64 `json:"mean_ns"`
	Buckets []int64 `json:"buckets"`
}

// Snapshot merges the stripes into one view.
func (t *Timer) Snapshot() TimerSnapshot {
	h := t.hist.Snapshot()
	var self int64
	for i := range t.self {
		self += t.self[i].v.Load()
	}
	return TimerSnapshot{
		Name:    t.name,
		Count:   h.Count,
		TotalNs: h.Sum,
		SelfNs:  self,
		MinNs:   h.Min,
		MaxNs:   h.Max,
		MeanNs:  h.Mean,
		Buckets: h.Buckets,
	}
}

func (t *Timer) reset() {
	t.hist.reset()
	for i := range t.self {
		t.self[i].v.Store(0)
	}
}
