package metrics

import (
	"sync"
	"testing"
)

// TestHistogramFirstObserveRace is the regression test for the
// init-publication race: the old lazy ensureInit published init=true via
// CAS *before* storing the per-stripe min/max sentinels, so a concurrent
// first Observe could read the zero-value min=0 (pinning the histogram's
// min to 0 forever) or have its freshly installed extremum overwritten by
// the sentinel store. The current encoding has no init step at all; this
// hammers first-Observe from many goroutines (run under -race via
// RACE_PKGS) and asserts the extrema are exact every iteration.
func TestHistogramFirstObserveRace(t *testing.T) {
	withEnabled(t, func() {
		const goroutines = 16
		for iter := 0; iter < 300; iter++ {
			h := &Histogram{name: "test.hist.firstobserve"}
			start := make(chan struct{})
			var wg sync.WaitGroup
			for g := 0; g < goroutines; g++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					<-start
					h.Observe(7)
				}()
			}
			close(start)
			wg.Wait()
			s := h.Snapshot()
			if s.Count != goroutines {
				t.Fatalf("iter %d: count = %d, want %d", iter, s.Count, goroutines)
			}
			if s.Min != 7 || s.Max != 7 {
				t.Fatalf("iter %d: min/max = %d/%d, want 7/7", iter, s.Min, s.Max)
			}
		}
	})
}

func TestHistogramZeroOnlyObservations(t *testing.T) {
	withEnabled(t, func() {
		h := &Histogram{name: "test.hist.zeros"}
		for i := 0; i < 5; i++ {
			h.Observe(0)
		}
		s := h.Snapshot()
		if s.Min != 0 || s.Max != 0 || s.Count != 5 {
			t.Fatalf("zeros: min/max/count = %d/%d/%d, want 0/0/5", s.Min, s.Max, s.Count)
		}
	})
}

func TestHistogramResetClearsExtrema(t *testing.T) {
	withEnabled(t, func() {
		h := NewHistogram("test.hist.resetextrema")
		h.Observe(3)
		h.Observe(1000)
		h.reset()
		h.Observe(42)
		s := h.Snapshot()
		if s.Min != 42 || s.Max != 42 {
			t.Fatalf("post-reset min/max = %d/%d, want 42/42", s.Min, s.Max)
		}
	})
}

func TestQuantileEmptyAndEdges(t *testing.T) {
	withEnabled(t, func() {
		var empty HistogramSnapshot
		if got := empty.Quantile(0.5); got != 0 {
			t.Fatalf("empty quantile = %v, want 0", got)
		}
		h := &Histogram{name: "test.hist.qedges"}
		h.Observe(10)
		h.Observe(100)
		h.Observe(1000)
		s := h.Snapshot()
		if got := s.Quantile(0); got != 10 {
			t.Fatalf("q=0 -> %v, want Min=10", got)
		}
		if got := s.Quantile(1); got != 1000 {
			t.Fatalf("q=1 -> %v, want Max=1000", got)
		}
		if got := s.Quantile(-1); got != 10 {
			t.Fatalf("q=-1 -> %v, want Min=10", got)
		}
		if got := s.Quantile(2); got != 1000 {
			t.Fatalf("q=2 -> %v, want Max=1000", got)
		}
	})
}

// Quantiles land inside the right bucket: with n copies of a single value,
// every quantile must come back inside that value's power-of-two bucket
// (clamped to the exact min/max, so here: exactly the value).
func TestQuantileSingleValue(t *testing.T) {
	withEnabled(t, func() {
		h := &Histogram{name: "test.hist.qsingle"}
		for i := 0; i < 1000; i++ {
			h.Observe(300)
		}
		s := h.Snapshot()
		for _, q := range []float64{0.01, 0.5, 0.99, 0.999} {
			if got := s.Quantile(q); got != 300 {
				t.Fatalf("q=%v -> %v, want 300 (min/max clamp)", q, got)
			}
		}
	})
}

// A two-point distribution checks rank arithmetic: 90 observations of a
// small value and 10 of a large one put p50 in the small bucket and p99 in
// the large one, an order of magnitude apart.
func TestQuantileTwoPointDistribution(t *testing.T) {
	withEnabled(t, func() {
		h := &Histogram{name: "test.hist.qtwopoint"}
		for i := 0; i < 90; i++ {
			h.Observe(100)
		}
		for i := 0; i < 10; i++ {
			h.Observe(10_000)
		}
		s := h.Snapshot()
		p50, p99 := s.Quantile(0.50), s.Quantile(0.99)
		// p50 falls in 100's bucket [64, 128); p99 in 10_000's [8192, 16384).
		if p50 < 64 || p50 >= 128 {
			t.Fatalf("p50 = %v, want within [64, 128)", p50)
		}
		if p99 < 8192 || p99 > 10_000 {
			t.Fatalf("p99 = %v, want within [8192, 10000]", p99)
		}
		if p99 <= p50 {
			t.Fatalf("p99 %v <= p50 %v", p99, p50)
		}
	})
}

func TestQuantileMonotone(t *testing.T) {
	withEnabled(t, func() {
		h := &Histogram{name: "test.hist.qmono"}
		for v := int64(1); v <= 4096; v++ {
			h.Observe(v)
		}
		s := h.Snapshot()
		qs := []float64{0, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 0.999, 1}
		vals := s.Quantiles(qs...)
		for i := 1; i < len(vals); i++ {
			if vals[i] < vals[i-1] {
				t.Fatalf("quantiles not monotone: q=%v -> %v after q=%v -> %v",
					qs[i], vals[i], qs[i-1], vals[i-1])
			}
		}
		// Uniform 1..4096: the true median is ~2048; bucket resolution is a
		// factor of two, so accept [1024, 4096].
		if m := vals[4]; m < 1024 || m > 4096 {
			t.Fatalf("median of uniform 1..4096 = %v, want within [1024, 4096]", m)
		}
	})
}

func TestTimerSnapshotQuantile(t *testing.T) {
	withEnabled(t, func() {
		tm := NewTimer("test.timer.quantile")
		for i := 0; i < 100; i++ {
			tm.Observe(1000)
		}
		s := tm.Snapshot()
		if got := s.Quantile(0.99); got != 1000 {
			t.Fatalf("timer p99 = %v, want 1000", got)
		}
	})
}
