package metrics

import (
	"bytes"
	"context"
	"encoding/json"
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

// withEnabled runs f with collection on, restoring the prior state (and
// clearing recorded values) afterwards so tests don't leak into each other.
func withEnabled(t *testing.T, f func()) {
	t.Helper()
	was := Enabled()
	Enable()
	defer func() {
		if !was {
			Disable()
		}
		Reset()
	}()
	f()
}

func TestCounterParallelIncrements(t *testing.T) {
	withEnabled(t, func() {
		c := NewCounter("test.counter.parallel")
		const goroutines, perG = 16, 10_000
		var wg sync.WaitGroup
		for g := 0; g < goroutines; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := 0; i < perG; i++ {
					c.Inc()
				}
			}()
		}
		wg.Wait()
		if got := c.Value(); got != goroutines*perG {
			t.Fatalf("Value = %d, want %d", got, goroutines*perG)
		}
	})
}

func TestCounterDisabledIsNoop(t *testing.T) {
	Disable()
	c := NewCounter("test.counter.disabled")
	c.Add(42)
	if got := c.Value(); got != 0 {
		t.Fatalf("disabled counter recorded %d", got)
	}
}

func TestGauge(t *testing.T) {
	withEnabled(t, func() {
		g := NewGauge("test.gauge")
		g.Set(3.5)
		g.Set(-1.25)
		if got := g.Value(); got != -1.25 {
			t.Fatalf("Value = %v, want -1.25", got)
		}
	})
}

// TestHistogramMerge drives concurrent observers with a known value
// distribution and checks that the merged snapshot's count, sum, min, max,
// and per-bucket totals are exact.
func TestHistogramMerge(t *testing.T) {
	withEnabled(t, func() {
		h := NewHistogram("test.hist.merge")
		const goroutines = 8
		values := []int64{0, 1, 1, 3, 7, 8, 100, 1023, 1024, 1 << 20}
		var wg sync.WaitGroup
		for g := 0; g < goroutines; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for _, v := range values {
					h.Observe(v)
				}
			}()
		}
		wg.Wait()
		snap := h.Snapshot()
		var wantSum int64
		for _, v := range values {
			wantSum += v
		}
		if want := int64(goroutines * len(values)); snap.Count != want {
			t.Errorf("Count = %d, want %d", snap.Count, want)
		}
		if want := int64(goroutines) * wantSum; snap.Sum != want {
			t.Errorf("Sum = %d, want %d", snap.Sum, want)
		}
		if snap.Min != 0 || snap.Max != 1<<20 {
			t.Errorf("Min/Max = %d/%d, want 0/%d", snap.Min, snap.Max, 1<<20)
		}
		// Every observation of v lands in bucket bits.Len64(v); check a few
		// boundary pairs (1023 vs 1024 straddle buckets 10 and 11).
		wantBuckets := map[int]int64{0: 1, 1: 2, 2: 1, 3: 1, 4: 1, 7: 1, 10: 1, 11: 1, 21: 1}
		for b, n := range wantBuckets {
			if got := snap.Buckets[b]; got != n*goroutines {
				t.Errorf("bucket %d = %d, want %d", b, got, n*goroutines)
			}
		}
		var inBuckets int64
		for _, n := range snap.Buckets {
			inBuckets += n
		}
		if inBuckets != snap.Count {
			t.Errorf("bucket total %d != count %d", inBuckets, snap.Count)
		}
	})
}

func TestHistogramEmptySnapshot(t *testing.T) {
	withEnabled(t, func() {
		h := NewHistogram("test.hist.empty")
		snap := h.Snapshot()
		if snap.Count != 0 || snap.Min != 0 || snap.Max != 0 || len(snap.Buckets) != 0 {
			t.Fatalf("empty snapshot = %+v", snap)
		}
	})
}

func TestTimerParallelObserve(t *testing.T) {
	withEnabled(t, func() {
		tm := NewTimer("test.timer.parallel")
		const goroutines, perG = 8, 1000
		var wg sync.WaitGroup
		for g := 0; g < goroutines; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := 0; i < perG; i++ {
					tm.Observe(time.Microsecond)
				}
			}()
		}
		wg.Wait()
		snap := tm.Snapshot()
		if want := int64(goroutines * perG); snap.Count != want {
			t.Fatalf("Count = %d, want %d", snap.Count, want)
		}
		if want := int64(goroutines*perG) * 1000; snap.TotalNs != want || snap.SelfNs != want {
			t.Fatalf("Total/Self = %d/%d, want %d", snap.TotalNs, snap.SelfNs, want)
		}
	})
}

// TestSpanParentChild opens a parent span with two child spans and checks
// the self-time accounting: the parent's self time must exclude the
// children's wall time, and totals must nest.
func TestSpanParentChild(t *testing.T) {
	withEnabled(t, func() {
		ctx, endParent := Span(context.Background(), "test.span.parent")
		for i := 0; i < 2; i++ {
			_, endChild := Span(ctx, "test.span.child")
			time.Sleep(5 * time.Millisecond)
			endChild()
		}
		endParent()

		parent := NewTimer("test.span.parent").Snapshot()
		child := NewTimer("test.span.child").Snapshot()
		if parent.Count != 1 || child.Count != 2 {
			t.Fatalf("counts = %d/%d, want 1/2", parent.Count, child.Count)
		}
		if child.TotalNs < (10 * time.Millisecond).Nanoseconds() {
			t.Fatalf("children total %dns, want >= 10ms", child.TotalNs)
		}
		if parent.TotalNs < child.TotalNs {
			t.Fatalf("parent total %d < children total %d", parent.TotalNs, child.TotalNs)
		}
		if got := parent.TotalNs - parent.SelfNs; got < child.TotalNs {
			t.Fatalf("parent charged %dns to children, want >= %dns", got, child.TotalNs)
		}
	})
}

func TestSpanDisabled(t *testing.T) {
	Disable()
	ctx := context.Background()
	ctx2, end := Span(ctx, "test.span.disabled")
	end()
	if ctx2 != ctx {
		t.Fatal("disabled Span must return ctx unchanged")
	}
	if snap := NewTimer("test.span.disabled").Snapshot(); snap.Count != 0 {
		t.Fatalf("disabled span recorded %d", snap.Count)
	}
}

func TestNewIsGetOrCreate(t *testing.T) {
	if NewCounter("test.dedupe") != NewCounter("test.dedupe") {
		t.Fatal("NewCounter returned distinct instruments for one name")
	}
	if NewTimer("test.dedupe.t") != NewTimer("test.dedupe.t") {
		t.Fatal("NewTimer returned distinct instruments for one name")
	}
}

func TestResetZeroesButKeepsRegistration(t *testing.T) {
	withEnabled(t, func() {
		c := NewCounter("test.reset")
		h := NewHistogram("test.reset.h")
		c.Add(5)
		h.Observe(9)
		Reset()
		if c.Value() != 0 {
			t.Fatalf("counter = %d after Reset", c.Value())
		}
		if snap := h.Snapshot(); snap.Count != 0 || snap.Min != 0 {
			t.Fatalf("histogram after Reset = %+v", snap)
		}
		c.Add(1)
		if NewCounter("test.reset").Value() != 1 {
			t.Fatal("instrument lost registration across Reset")
		}
	})
}

func TestWriteJSONRoundTrips(t *testing.T) {
	withEnabled(t, func() {
		NewCounter("test.json.counter").Add(7)
		NewGauge("test.json.gauge").Set(2.5)
		NewTimer("test.json.timer").Observe(time.Millisecond)
		var buf bytes.Buffer
		if err := WriteJSON(&buf); err != nil {
			t.Fatal(err)
		}
		var snap Snapshot
		if err := json.Unmarshal(buf.Bytes(), &snap); err != nil {
			t.Fatalf("dump is not valid JSON: %v", err)
		}
		found := false
		for _, c := range snap.Counters {
			if c.Name == "test.json.counter" && c.Value == 7 {
				found = true
			}
		}
		if !found {
			t.Fatalf("counter missing from dump:\n%s", buf.String())
		}
	})
}

func TestFormatOpsTable(t *testing.T) {
	ops := []OpStat{
		{Name: "dml.op.%*%", Count: 3, Total: 8310 * time.Microsecond, Self: 8100 * time.Microsecond},
		{Name: "dml.op.sum", Count: 10, Total: time.Millisecond, Self: time.Millisecond},
	}
	out := FormatOpsTable(ops, 1, 10*time.Millisecond)
	if !strings.Contains(out, "dml.op.%*%") || strings.Contains(out, "dml.op.sum") {
		t.Fatalf("top-1 table wrong:\n%s", out)
	}
	if !strings.Contains(out, "81.0%") {
		t.Fatalf("share column wrong:\n%s", out)
	}
}

func TestGaugeNaNSurvivesJSON(t *testing.T) {
	// encoding/json rejects NaN/Inf; gauges must never poison the dump.
	withEnabled(t, func() {
		NewGauge("test.json.nan").Set(math.NaN())
		var buf bytes.Buffer
		if err := WriteJSON(&buf); err != nil {
			t.Fatalf("WriteJSON with NaN gauge: %v", err)
		}
	})
}
