package metrics

// Quantile estimation over the power-of-two buckets. Bucket i counts
// observations v with bits.Len64(v) == i, i.e. bucket 0 holds exactly the
// zeros and bucket i >= 1 spans [2^(i-1), 2^i). A quantile is located by
// walking the cumulative counts to the bucket containing the target rank
// and interpolating linearly inside that bucket's value range — the
// standard log-bucketed estimator (resolution is a factor of two, tightened
// by clamping to the exact tracked Min/Max). This is what the serving
// loadtest uses to report p50/p99/p999 latencies.

// Quantile returns the estimated q-quantile of the recorded observations,
// for q in [0, 1]. q <= 0 returns Min, q >= 1 returns Max, and an empty
// histogram returns 0.
func (s HistogramSnapshot) Quantile(q float64) float64 {
	if s.Count == 0 {
		return 0
	}
	if q <= 0 {
		return float64(s.Min)
	}
	if q >= 1 {
		return float64(s.Max)
	}
	// Target rank in (0, Count]: the r-th smallest observation.
	r := q * float64(s.Count)
	if r < 1 {
		r = 1
	}
	var cum float64
	for b, n := range s.Buckets {
		if n == 0 {
			continue
		}
		next := cum + float64(n)
		if r <= next {
			lo, hi := bucketBounds(b)
			frac := (r - cum) / float64(n)
			v := lo + frac*(hi-lo)
			// The exact extrema are tracked; never report outside them.
			if v < float64(s.Min) {
				v = float64(s.Min)
			}
			if v > float64(s.Max) {
				v = float64(s.Max)
			}
			return v
		}
		cum = next
	}
	return float64(s.Max)
}

// Quantiles returns the estimates for each q in qs (one cumulative walk per
// call to Quantile; histogram snapshots are tiny, so clarity wins).
func (s HistogramSnapshot) Quantiles(qs ...float64) []float64 {
	out := make([]float64, len(qs))
	for i, q := range qs {
		out[i] = s.Quantile(q)
	}
	return out
}

// bucketBounds returns the value range [lo, hi) covered by bucket b.
func bucketBounds(b int) (lo, hi float64) {
	if b == 0 {
		return 0, 1 // bucket 0 holds exactly the zeros
	}
	return float64(int64(1) << (b - 1)), float64(int64(1) << b)
}

// Quantile returns the estimated q-quantile of the timer's recorded
// durations in nanoseconds, with the same semantics as
// HistogramSnapshot.Quantile.
func (s TimerSnapshot) Quantile(q float64) float64 {
	return HistogramSnapshot{
		Count:   s.Count,
		Sum:     s.TotalNs,
		Min:     s.MinNs,
		Max:     s.MaxNs,
		Buckets: s.Buckets,
	}.Quantile(q)
}
