package modeldb

import (
	"bytes"
	"math"
	"testing"

	"dmml/internal/la"
)

func TestLogAndVersioning(t *testing.T) {
	s := NewStore()
	r1, err := s.Log(Spec{Name: "churn", Config: map[string]float64{"step": 0.1}, ParentID: -1})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := s.Log(Spec{Name: "churn", Config: map[string]float64{"step": 0.5}, ParentID: r1.ID})
	if err != nil {
		t.Fatal(err)
	}
	other, err := s.Log(Spec{Name: "fraud", ParentID: -1})
	if err != nil {
		t.Fatal(err)
	}
	if r1.Version != 1 || r2.Version != 2 || other.Version != 1 {
		t.Fatalf("versions: %d %d %d", r1.Version, r2.Version, other.Version)
	}
	latest, err := s.Latest("churn")
	if err != nil {
		t.Fatal(err)
	}
	if latest.ID != r2.ID {
		t.Fatalf("latest = %d", latest.ID)
	}
	if got := s.Versions("churn"); len(got) != 2 {
		t.Fatalf("versions = %d", len(got))
	}
	if s.NumRuns() != 3 {
		t.Fatalf("runs = %d", s.NumRuns())
	}
}

func TestLogValidation(t *testing.T) {
	s := NewStore()
	if _, err := s.Log(Spec{ParentID: -1}); err == nil {
		t.Fatal("want name error")
	}
	if _, err := s.Log(Spec{Name: "x", ParentID: 99}); err == nil {
		t.Fatal("want missing parent error")
	}
	if _, err := s.Latest("nope"); err == nil {
		t.Fatal("want no-runs error")
	}
	if _, err := s.Get(42); err == nil {
		t.Fatal("want not-found error")
	}
}

func TestBestAndQuery(t *testing.T) {
	s := NewStore()
	for i, acc := range []float64{0.8, 0.95, 0.9} {
		if _, err := s.Log(Spec{
			Name:     "m",
			Metrics:  map[string]float64{"acc": acc, "loss": 1 - acc},
			Config:   map[string]float64{"idx": float64(i)},
			ParentID: -1,
		}); err != nil {
			t.Fatal(err)
		}
	}
	best, err := s.Best("m", "acc", true)
	if err != nil {
		t.Fatal(err)
	}
	if best.Metrics["acc"] != 0.95 {
		t.Fatalf("best acc = %v", best.Metrics["acc"])
	}
	worstLoss, err := s.Best("m", "loss", false)
	if err != nil {
		t.Fatal(err)
	}
	if worstLoss.Metrics["acc"] != 0.95 {
		t.Fatalf("min-loss run acc = %v", worstLoss.Metrics["acc"])
	}
	if _, err := s.Best("m", "f1", true); err == nil {
		t.Fatal("want missing metric error")
	}
	good := s.Query(func(r Run) bool { return r.Metrics["acc"] >= 0.9 })
	if len(good) != 2 {
		t.Fatalf("query = %d runs", len(good))
	}
}

func TestLineage(t *testing.T) {
	s := NewStore()
	a, _ := s.Log(Spec{Name: "m", ParentID: -1})
	b, _ := s.Log(Spec{Name: "m", ParentID: a.ID})
	c, _ := s.Log(Spec{Name: "m", ParentID: b.ID})
	chain, err := s.Lineage(c.ID)
	if err != nil {
		t.Fatal(err)
	}
	if len(chain) != 3 || chain[0].ID != c.ID || chain[2].ID != a.ID {
		t.Fatalf("lineage = %+v", chain)
	}
}

func TestDiff(t *testing.T) {
	s := NewStore()
	a, _ := s.Log(Spec{Name: "m", Config: map[string]float64{"step": 0.1, "l2": 0.01},
		Metrics: map[string]float64{"acc": 0.8}, ParentID: -1})
	b, _ := s.Log(Spec{Name: "m", Config: map[string]float64{"step": 0.5, "l2": 0.01},
		Metrics: map[string]float64{"acc": 0.9}, ParentID: a.ID})
	d, err := s.Diff(a.ID, b.ID)
	if err != nil {
		t.Fatal(err)
	}
	if ch, ok := d.ConfigChanged["step"]; !ok || ch != [2]float64{0.1, 0.5} {
		t.Fatalf("config diff = %+v", d.ConfigChanged)
	}
	if _, changed := d.ConfigChanged["l2"]; changed {
		t.Fatal("unchanged key reported")
	}
	if math.Abs(d.MetricDelta["acc"]-0.1) > 1e-12 {
		t.Fatalf("metric delta = %v", d.MetricDelta["acc"])
	}
	if _, err := s.Diff(a.ID, 99); err == nil {
		t.Fatal("want missing run error")
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	s := NewStore()
	a, _ := s.Log(Spec{Name: "m", Config: map[string]float64{"step": 0.1},
		Metrics: map[string]float64{"acc": 0.9}, Weights: []float64{1, 2, 3},
		Transforms: []string{"standardize"}, Tags: []string{"prod"}, ParentID: -1})
	_, _ = s.Log(Spec{Name: "m", ParentID: a.ID})
	var buf bytes.Buffer
	if err := s.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.NumRuns() != 2 {
		t.Fatalf("loaded runs = %d", loaded.NumRuns())
	}
	got, err := loaded.Get(a.ID)
	if err != nil {
		t.Fatal(err)
	}
	if got.Weights[2] != 3 || got.Transforms[0] != "standardize" || got.Tags[0] != "prod" {
		t.Fatalf("loaded run = %+v", got)
	}
	// New logs continue the ID sequence.
	next, err := loaded.Log(Spec{Name: "m", ParentID: -1})
	if err != nil {
		t.Fatal(err)
	}
	if next.ID != 3 || next.Version != 3 {
		t.Fatalf("next run = %+v", next)
	}
	// Corrupt input fails cleanly.
	if _, err := Load(bytes.NewBufferString("{broken")); err == nil {
		t.Fatal("want decode error")
	}
}

func TestDatasetHash(t *testing.T) {
	x, _ := la.FromRows([][]float64{{1, 2}, {3, 4}})
	y := []float64{1, -1}
	h1 := DatasetHash(x, y)
	h2 := DatasetHash(x.Clone(), append([]float64(nil), y...))
	if h1 != h2 {
		t.Fatal("equal data must hash equally")
	}
	x2 := x.Clone()
	x2.Set(0, 0, 1.0000001)
	if DatasetHash(x2, y) == h1 {
		t.Fatal("changed data must change the hash")
	}
	y2 := []float64{1, 1}
	if DatasetHash(x, y2) == h1 {
		t.Fatal("changed labels must change the hash")
	}
}

func TestSpecIsolation(t *testing.T) {
	// Mutating the spec after logging must not affect the stored run.
	s := NewStore()
	cfg := map[string]float64{"step": 0.1}
	r, _ := s.Log(Spec{Name: "m", Config: cfg, ParentID: -1})
	cfg["step"] = 99
	got, _ := s.Get(r.ID)
	if got.Config["step"] != 0.1 {
		t.Fatal("store aliases caller's config map")
	}
}
