// Package modeldb is a ModelDB-style model management store, the lifecycle
// layer the paper surveys: every training run is logged with its dataset
// hash, transform chain, hyperparameters, metrics and parent run, giving
// versioning, lineage queries, diffs and JSON persistence.
package modeldb

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"io"
	"math"
	"sort"
	"sync"

	"dmml/internal/la"
)

// Run is one recorded training run.
type Run struct {
	ID          int                `json:"id"`
	Name        string             `json:"name"`
	Version     int                `json:"version"`
	DatasetHash string             `json:"dataset_hash,omitempty"`
	Transforms  []string           `json:"transforms,omitempty"`
	Config      map[string]float64 `json:"config,omitempty"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
	Weights     []float64          `json:"weights,omitempty"`
	ParentID    int                `json:"parent_id"` // -1 = root
	Tags        []string           `json:"tags,omitempty"`
}

// Spec describes a run to be logged; the store assigns ID and Version.
type Spec struct {
	Name        string
	DatasetHash string
	Transforms  []string
	Config      map[string]float64
	Metrics     map[string]float64
	Weights     []float64
	ParentID    int // -1 or a previously logged run
	Tags        []string
}

// Store is an in-memory, JSON-persistable run registry. It is safe for
// concurrent use: Log takes the write lock, every read path the read lock
// — the serving layer hot-reloads weights from a store that trainers are
// still logging into. Read paths return deep copies (see Run.clone), so a
// caller mutating a returned Run can never corrupt the registry.
type Store struct {
	mu     sync.RWMutex
	runs   []Run
	byID   map[int]int // id -> index in runs
	byName map[string][]int
	nextID int
}

// NewStore creates an empty store.
func NewStore() *Store {
	return &Store{byID: map[int]int{}, byName: map[string][]int{}, nextID: 1}
}

// clone returns a deep copy of the run: the registry and its callers must
// never share slice or map storage, in either direction.
func (r Run) clone() Run {
	r.Transforms = append([]string(nil), r.Transforms...)
	r.Config = cloneMap(r.Config)
	r.Metrics = cloneMap(r.Metrics)
	r.Weights = append([]float64(nil), r.Weights...)
	r.Tags = append([]string(nil), r.Tags...)
	return r
}

// Log records a run, assigning its ID and per-name version.
func (s *Store) Log(spec Spec) (Run, error) {
	if spec.Name == "" {
		return Run{}, fmt.Errorf("modeldb: run needs a name")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if spec.ParentID != -1 && spec.ParentID != 0 {
		if _, ok := s.byID[spec.ParentID]; !ok {
			return Run{}, fmt.Errorf("modeldb: parent run %d not found", spec.ParentID)
		}
	}
	parent := spec.ParentID
	if parent == 0 {
		parent = -1
	}
	run := Run{
		ID:          s.nextID,
		Name:        spec.Name,
		Version:     len(s.byName[spec.Name]) + 1,
		DatasetHash: spec.DatasetHash,
		Transforms:  append([]string(nil), spec.Transforms...),
		Config:      cloneMap(spec.Config),
		Metrics:     cloneMap(spec.Metrics),
		Weights:     append([]float64(nil), spec.Weights...),
		ParentID:    parent,
		Tags:        append([]string(nil), spec.Tags...),
	}
	s.nextID++
	s.byID[run.ID] = len(s.runs)
	s.byName[run.Name] = append(s.byName[run.Name], run.ID)
	s.runs = append(s.runs, run)
	return run.clone(), nil
}

func cloneMap(m map[string]float64) map[string]float64 {
	if m == nil {
		return nil
	}
	out := make(map[string]float64, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

// getLocked fetches a run by ID without locking or cloning; callers hold
// at least the read lock and must clone before the run escapes the store.
func (s *Store) getLocked(id int) (Run, error) {
	i, ok := s.byID[id]
	if !ok {
		return Run{}, fmt.Errorf("modeldb: run %d not found", id)
	}
	return s.runs[i], nil
}

// Get fetches a run by ID.
func (s *Store) Get(id int) (Run, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	r, err := s.getLocked(id)
	if err != nil {
		return Run{}, err
	}
	return r.clone(), nil
}

// Versions returns all runs with the given name, oldest first.
func (s *Store) Versions(name string) []Run {
	s.mu.RLock()
	defer s.mu.RUnlock()
	ids := s.byName[name]
	out := make([]Run, len(ids))
	for i, id := range ids {
		out[i] = s.runs[s.byID[id]].clone()
	}
	return out
}

// Latest returns the newest run with the given name.
func (s *Store) Latest(name string) (Run, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	ids := s.byName[name]
	if len(ids) == 0 {
		return Run{}, fmt.Errorf("modeldb: no runs named %q", name)
	}
	return s.runs[s.byID[ids[len(ids)-1]]].clone(), nil
}

// Best returns the run with the extreme value of the metric among all runs
// with the given name.
func (s *Store) Best(name, metric string, higherBetter bool) (Run, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	ids := s.byName[name]
	bestIdx, bestVal := -1, 0.0
	for _, id := range ids {
		r := s.runs[s.byID[id]]
		v, ok := r.Metrics[metric]
		if !ok {
			continue
		}
		if bestIdx < 0 || (higherBetter && v > bestVal) || (!higherBetter && v < bestVal) {
			bestIdx, bestVal = s.byID[id], v
		}
	}
	if bestIdx < 0 {
		return Run{}, fmt.Errorf("modeldb: no runs named %q with metric %q", name, metric)
	}
	return s.runs[bestIdx].clone(), nil
}

// Query returns all runs satisfying pred, in log order. pred runs under
// the store's read lock: it must not retain or mutate its argument and
// must not call back into the store.
func (s *Store) Query(pred func(Run) bool) []Run {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var out []Run
	for _, r := range s.runs {
		if pred(r) {
			out = append(out, r.clone())
		}
	}
	return out
}

// Lineage returns the chain from the run to its root ancestor, run first.
func (s *Store) Lineage(id int) ([]Run, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var out []Run
	seen := map[int]bool{}
	for id != -1 {
		if seen[id] {
			return nil, fmt.Errorf("modeldb: lineage cycle at run %d", id)
		}
		seen[id] = true
		r, err := s.getLocked(id)
		if err != nil {
			return nil, err
		}
		out = append(out, r.clone())
		id = r.ParentID
	}
	return out, nil
}

// Diff summarizes config and metric changes between two runs.
type Diff struct {
	ConfigChanged map[string][2]float64 `json:"config_changed"`
	MetricDelta   map[string]float64    `json:"metric_delta"`
}

// Diff compares run a to run b (b−a for metric deltas).
func (s *Store) Diff(a, b int) (Diff, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	ra, err := s.getLocked(a)
	if err != nil {
		return Diff{}, err
	}
	rb, err := s.getLocked(b)
	if err != nil {
		return Diff{}, err
	}
	d := Diff{ConfigChanged: map[string][2]float64{}, MetricDelta: map[string]float64{}}
	keys := map[string]bool{}
	for k := range ra.Config {
		keys[k] = true
	}
	for k := range rb.Config {
		keys[k] = true
	}
	for k := range keys {
		va, vb := ra.Config[k], rb.Config[k]
		if va != vb {
			d.ConfigChanged[k] = [2]float64{va, vb}
		}
	}
	for k, vb := range rb.Metrics {
		if va, ok := ra.Metrics[k]; ok {
			d.MetricDelta[k] = vb - va
		}
	}
	return d, nil
}

// NumRuns returns the number of logged runs.
func (s *Store) NumRuns() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.runs)
}

type persisted struct {
	NextID int   `json:"next_id"`
	Runs   []Run `json:"runs"`
}

// Save serializes the store as JSON. It holds the read lock for the whole
// encode, so a snapshot is internally consistent even with concurrent Logs.
func (s *Store) Save(w io.Writer) error {
	s.mu.RLock()
	defer s.mu.RUnlock()
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(persisted{NextID: s.nextID, Runs: s.runs}); err != nil {
		return fmt.Errorf("modeldb: save: %w", err)
	}
	return nil
}

// Load deserializes a store previously written by Save.
func Load(r io.Reader) (*Store, error) {
	var p persisted
	if err := json.NewDecoder(r).Decode(&p); err != nil {
		return nil, fmt.Errorf("modeldb: load: %w", err)
	}
	s := NewStore()
	s.nextID = p.NextID
	for _, run := range p.Runs {
		s.byID[run.ID] = len(s.runs)
		s.byName[run.Name] = append(s.byName[run.Name], run.ID)
		s.runs = append(s.runs, run)
	}
	// Keep name→versions sorted by version for stable Latest semantics.
	for name := range s.byName {
		ids := s.byName[name]
		sort.Slice(ids, func(i, j int) bool {
			return s.runs[s.byID[ids[i]]].Version < s.runs[s.byID[ids[j]]].Version
		})
	}
	return s, nil
}

// DatasetHash fingerprints a dataset (features + labels) for lineage
// records: equal data hashes equally, any element change alters the hash.
func DatasetHash(x *la.Dense, y []float64) string {
	h := fnv.New64a()
	var buf [8]byte
	rows, cols := x.Dims()
	binary.LittleEndian.PutUint64(buf[:], uint64(rows))
	h.Write(buf[:])
	binary.LittleEndian.PutUint64(buf[:], uint64(cols))
	h.Write(buf[:])
	for _, v := range x.RawData() {
		binary.LittleEndian.PutUint64(buf[:], math.Float64bits(v))
		h.Write(buf[:])
	}
	for _, v := range y {
		binary.LittleEndian.PutUint64(buf[:], math.Float64bits(v))
		h.Write(buf[:])
	}
	return fmt.Sprintf("%016x", h.Sum64())
}
