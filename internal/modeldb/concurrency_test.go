package modeldb

import (
	"bytes"
	"fmt"
	"io"
	"sync"
	"testing"
)

// TestConcurrentLogAndRead is the regression test for the unsynchronized
// Store: concurrent Log vs Get/Latest/Best/Versions/Query/Lineage/Save was
// a data race on runs/byID/byName. It hammers every read path while
// writers append; run under -race via RACE_PKGS.
func TestConcurrentLogAndRead(t *testing.T) {
	s := NewStore()
	seed, err := s.Log(Spec{
		Name:     "served",
		Config:   map[string]float64{"bias": 0.5},
		Metrics:  map[string]float64{"auc": 0.9},
		Weights:  []float64{1, 2, 3},
		ParentID: -1,
	})
	if err != nil {
		t.Fatal(err)
	}

	const writers, readers, perG = 4, 8, 200
	var wg sync.WaitGroup
	start := make(chan struct{})
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			<-start
			for i := 0; i < perG; i++ {
				_, err := s.Log(Spec{
					Name:     fmt.Sprintf("served-%d", w%2),
					Metrics:  map[string]float64{"auc": float64(i)},
					Weights:  []float64{float64(i)},
					ParentID: seed.ID,
				})
				if err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			<-start
			for i := 0; i < perG; i++ {
				switch r % 6 {
				case 0:
					if _, err := s.Get(seed.ID); err != nil {
						t.Error(err)
						return
					}
				case 1:
					if _, err := s.Latest("served"); err != nil {
						t.Error(err)
						return
					}
				case 2:
					s.Versions("served-0")
				case 3:
					_, _ = s.Best("served-1", "auc", true)
				case 4:
					s.Query(func(r Run) bool { return len(r.Weights) > 0 })
					if _, err := s.Lineage(seed.ID); err != nil {
						t.Error(err)
						return
					}
				case 5:
					if err := s.Save(io.Discard); err != nil {
						t.Error(err)
						return
					}
				}
			}
		}(r)
	}
	close(start)
	wg.Wait()
	if got, want := s.NumRuns(), 1+writers*perG; got != want {
		t.Fatalf("NumRuns = %d, want %d", got, want)
	}
}

// TestReadPathsDeepCopy proves that mutating a Run returned by any read
// path leaves the store bit-identical: returned Weights/Transforms/Tags
// slices and Config/Metrics maps must not alias registry internals.
func TestReadPathsDeepCopy(t *testing.T) {
	s := NewStore()
	logged, err := s.Log(Spec{
		Name:        "m",
		DatasetHash: "abc",
		Transforms:  []string{"scale", "impute"},
		Config:      map[string]float64{"step": 0.1},
		Metrics:     map[string]float64{"auc": 0.9},
		Weights:     []float64{1, 2, 3},
		ParentID:    -1,
		Tags:        []string{"prod"},
	})
	if err != nil {
		t.Fatal(err)
	}
	var before bytes.Buffer
	if err := s.Save(&before); err != nil {
		t.Fatal(err)
	}

	vandalize := func(r Run) {
		for i := range r.Weights {
			r.Weights[i] = -99
		}
		for i := range r.Transforms {
			r.Transforms[i] = "corrupted"
		}
		for i := range r.Tags {
			r.Tags[i] = "corrupted"
		}
		for k := range r.Config {
			r.Config[k] = -99
		}
		for k := range r.Metrics {
			r.Metrics[k] = -99
		}
	}

	vandalize(logged)
	if r, err := s.Get(logged.ID); err != nil {
		t.Fatal(err)
	} else {
		vandalize(r)
	}
	if r, err := s.Latest("m"); err != nil {
		t.Fatal(err)
	} else {
		vandalize(r)
	}
	if r, err := s.Best("m", "auc", true); err != nil {
		t.Fatal(err)
	} else {
		vandalize(r)
	}
	for _, r := range s.Versions("m") {
		vandalize(r)
	}
	for _, r := range s.Query(func(Run) bool { return true }) {
		vandalize(r)
	}
	if rs, err := s.Lineage(logged.ID); err != nil {
		t.Fatal(err)
	} else {
		for _, r := range rs {
			vandalize(r)
		}
	}

	var after bytes.Buffer
	if err := s.Save(&after); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(before.Bytes(), after.Bytes()) {
		t.Fatalf("store changed after mutating returned runs:\nbefore: %s\nafter:  %s",
			before.String(), after.String())
	}
	// And the logged spec's slices must not feed back either (Spec isolation
	// existed before; re-check alongside the read-path guarantee).
	got, err := s.Get(logged.ID)
	if err != nil {
		t.Fatal(err)
	}
	if got.Weights[0] != 1 || got.Config["step"] != 0.1 || got.Transforms[0] != "scale" {
		t.Fatalf("registry contents corrupted: %+v", got)
	}
}
