// Package workload generates the synthetic datasets used across dmml's
// tests, examples, and experiment harness. Every generator takes an explicit
// *rand.Rand so runs are reproducible, and exposes the knobs the paper's
// surveyed experiments sweep: dimensionality, sparsity, Zipf skew,
// tuple ratio and feature ratio of normalized schemas, and label noise.
package workload

import (
	"fmt"
	"math"
	"math/rand"

	"dmml/internal/la"
)

// Regression generates X (n×d, standard normal), y = X·wTrue + noise·ε, and
// the true weights.
func Regression(r *rand.Rand, n, d int, noise float64) (x *la.Dense, y, wTrue []float64) {
	x = la.NewDense(n, d)
	wTrue = make([]float64, d)
	for j := range wTrue {
		wTrue[j] = r.NormFloat64()
	}
	for i := 0; i < n; i++ {
		row := x.RowView(i)
		for j := range row {
			row[j] = r.NormFloat64()
		}
	}
	y = la.MatVec(x, wTrue)
	for i := range y {
		y[i] += noise * r.NormFloat64()
	}
	return x, y, wTrue
}

// Classification generates a ±1 problem: y = sign(X·wTrue), with a fraction
// flip of labels flipped to inject noise.
func Classification(r *rand.Rand, n, d int, flip float64) (x *la.Dense, y, wTrue []float64) {
	x, margins, wTrue := Regression(r, n, d, 0)
	y = make([]float64, n)
	for i, m := range margins {
		if m >= 0 {
			y[i] = 1
		} else {
			y[i] = -1
		}
		if r.Float64() < flip {
			y[i] = -y[i]
		}
	}
	return x, y, wTrue
}

// SparseMatrix generates a CSR matrix with the given density of standard
// normal non-zeros.
func SparseMatrix(r *rand.Rand, rows, cols int, density float64) *la.CSR {
	var coords []la.Coord
	for i := 0; i < rows; i++ {
		for j := 0; j < cols; j++ {
			if r.Float64() < density {
				coords = append(coords, la.Coord{Row: i, Col: j, Val: r.NormFloat64()})
			}
		}
	}
	m, err := la.FromCoords(rows, cols, coords)
	if err != nil {
		panic(fmt.Sprintf("workload: %v", err)) // cannot happen: coords in range
	}
	return m
}

// Zipf samples n categorical codes in [0, card) with probability ∝
// 1/(rank+1)^skew. skew = 0 is uniform; larger skews concentrate mass on few
// categories (the regime where CLA compression shines).
func Zipf(r *rand.Rand, n, card int, skew float64) []int {
	if card < 1 {
		panic("workload: Zipf card < 1")
	}
	cum := make([]float64, card)
	total := 0.0
	for k := 0; k < card; k++ {
		total += 1 / math.Pow(float64(k+1), skew)
		cum[k] = total
	}
	out := make([]int, n)
	for i := range out {
		u := r.Float64() * total
		lo, hi := 0, card-1
		for lo < hi {
			mid := (lo + hi) / 2
			if cum[mid] < u {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		out[i] = lo
	}
	return out
}

// ZipfColumn renders Zipf codes as a float64 column (category k ↦ value k).
func ZipfColumn(r *rand.Rand, n, card int, skew float64) []float64 {
	codes := Zipf(r, n, card, skew)
	out := make([]float64, n)
	for i, c := range codes {
		out[i] = float64(c)
	}
	return out
}

// TelemetryMatrix builds an n×d matrix of independent Zipf-skewed categorical
// columns with the given cardinalities, mimicking machine-telemetry logs.
func TelemetryMatrix(r *rand.Rand, n int, cards []int, skew float64) *la.Dense {
	m := la.NewDense(n, len(cards))
	for j, card := range cards {
		col := ZipfColumn(r, n, card, skew)
		for i, v := range col {
			m.Set(i, j, v)
		}
	}
	return m
}

// ClusteredPoints generates n points in d dimensions around k Gaussian
// centers with the given within-cluster spread. It returns the points, the
// true assignment of each point, and the centers.
func ClusteredPoints(r *rand.Rand, n, d, k int, spread float64) (x *la.Dense, assign []int, centers *la.Dense) {
	centers = la.NewDense(k, d)
	for c := 0; c < k; c++ {
		for j := 0; j < d; j++ {
			centers.Set(c, j, 10*r.NormFloat64())
		}
	}
	x = la.NewDense(n, d)
	assign = make([]int, n)
	for i := 0; i < n; i++ {
		c := r.Intn(k)
		assign[i] = c
		row := x.RowView(i)
		for j := 0; j < d; j++ {
			row[j] = centers.At(c, j) + spread*r.NormFloat64()
		}
	}
	return x, assign, centers
}
