package workload

import (
	"fmt"
	"math/rand"

	"dmml/internal/la"
	"dmml/internal/storage"
)

// Task selects the target type for generated star schemas.
type Task int

// Task values.
const (
	RegressionTask Task = iota
	ClassificationTask
)

// StarConfig parameterizes a normalized star schema S ⋉ R₁ ⋉ … ⋉ R_K, the
// workload of the factorized-learning (Orion/F) and avoid-joins (Hamlet)
// experiments. The tuple ratio of dimension k is FactRows/DimRows[k]; the
// feature ratio is DimFeats[k]/FactFeats.
type StarConfig struct {
	FactRows  int
	FactFeats int
	DimRows   []int
	DimFeats  []int
	Task      Task
	Noise     float64 // label noise (regression: σ; classification: flip prob)
	// DimSignal scales the true weights on dimension features. 0 makes the
	// label independent of all dimension tables (Hamlet's "safe to drop"
	// regime); 1 gives them the same weight scale as fact features.
	DimSignal float64
}

func (c StarConfig) validate() error {
	if c.FactRows <= 0 || c.FactFeats <= 0 {
		return fmt.Errorf("workload: star needs positive fact rows/features")
	}
	if len(c.DimRows) == 0 || len(c.DimRows) != len(c.DimFeats) {
		return fmt.Errorf("workload: DimRows and DimFeats must be non-empty and equal length")
	}
	for k := range c.DimRows {
		if c.DimRows[k] <= 0 || c.DimFeats[k] <= 0 {
			return fmt.Errorf("workload: dimension %d needs positive rows/features", k)
		}
	}
	return nil
}

// Star is a generated normalized schema with both the raw-array view used by
// factorized learning and a relational-table view used by the join engine.
type Star struct {
	Config StarConfig
	FactX  *la.Dense   // FactRows × FactFeats
	Y      []float64   // labels, len FactRows
	FKs    [][]int     // per dimension: len FactRows, row index into DimX[k]
	DimX   []*la.Dense // per dimension: DimRows[k] × DimFeats[k]
	WTrue  []float64   // over [fact feats | dim1 feats | dim2 feats | ...]
}

// GenerateStar builds a Star per the config.
func GenerateStar(r *rand.Rand, cfg StarConfig) (*Star, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	s := &Star{Config: cfg}
	totalFeats := cfg.FactFeats
	for _, d := range cfg.DimFeats {
		totalFeats += d
	}
	s.WTrue = make([]float64, totalFeats)
	for j := 0; j < cfg.FactFeats; j++ {
		s.WTrue[j] = r.NormFloat64()
	}
	at := cfg.FactFeats
	for k := range cfg.DimFeats {
		for j := 0; j < cfg.DimFeats[k]; j++ {
			s.WTrue[at] = cfg.DimSignal * r.NormFloat64()
			at++
		}
	}

	s.FactX = la.NewDense(cfg.FactRows, cfg.FactFeats)
	for i := 0; i < cfg.FactRows; i++ {
		row := s.FactX.RowView(i)
		for j := range row {
			row[j] = r.NormFloat64()
		}
	}
	s.DimX = make([]*la.Dense, len(cfg.DimRows))
	s.FKs = make([][]int, len(cfg.DimRows))
	for k := range cfg.DimRows {
		s.DimX[k] = la.NewDense(cfg.DimRows[k], cfg.DimFeats[k])
		for i := 0; i < cfg.DimRows[k]; i++ {
			row := s.DimX[k].RowView(i)
			for j := range row {
				row[j] = r.NormFloat64()
			}
		}
		fk := make([]int, cfg.FactRows)
		for i := range fk {
			fk[i] = r.Intn(cfg.DimRows[k])
		}
		s.FKs[k] = fk
	}

	// Labels from the joined feature vector.
	s.Y = make([]float64, cfg.FactRows)
	buf := make([]float64, totalFeats)
	for i := 0; i < cfg.FactRows; i++ {
		s.joinedRow(i, buf)
		m := la.Dot(s.WTrue, buf)
		switch cfg.Task {
		case RegressionTask:
			s.Y[i] = m + cfg.Noise*r.NormFloat64()
		case ClassificationTask:
			if m >= 0 {
				s.Y[i] = 1
			} else {
				s.Y[i] = -1
			}
			if r.Float64() < cfg.Noise {
				s.Y[i] = -s.Y[i]
			}
		}
	}
	return s, nil
}

// TotalFeatures is the width of the joined feature vector.
func (s *Star) TotalFeatures() int { return len(s.WTrue) }

// joinedRow writes the joined feature vector for fact row i into buf.
func (s *Star) joinedRow(i int, buf []float64) {
	copy(buf, s.FactX.RowView(i))
	at := s.Config.FactFeats
	for k := range s.DimX {
		row := s.DimX[k].RowView(s.FKs[k][i])
		copy(buf[at:], row)
		at += s.Config.DimFeats[k]
	}
}

// Materialize produces the fully joined feature matrix (the input the
// "materialized learning" baseline trains on) without going through the
// relational engine.
func (s *Star) Materialize() *la.Dense {
	out := la.NewDense(s.Config.FactRows, s.TotalFeatures())
	for i := 0; i < s.Config.FactRows; i++ {
		s.joinedRow(i, out.RowView(i))
	}
	return out
}

// Tables renders the star as relational tables: a fact table with columns
// (fk0..fkK-1, f0..f{dS-1}, label) and one dimension table per k with
// columns (id, d0..d{dk-1}). Used to exercise the join engine end-to-end.
func (s *Star) Tables() (fact *storage.Table, dims []*storage.Table, err error) {
	var factFields []storage.Field
	for k := range s.DimX {
		factFields = append(factFields, storage.Field{Name: fmt.Sprintf("fk%d", k), Type: storage.Int64})
	}
	for j := 0; j < s.Config.FactFeats; j++ {
		factFields = append(factFields, storage.Field{Name: fmt.Sprintf("f%d", j), Type: storage.Float64})
	}
	factFields = append(factFields, storage.Field{Name: "label", Type: storage.Float64})
	factSchema, err := storage.NewSchema(factFields...)
	if err != nil {
		return nil, nil, err
	}
	fact = storage.NewTable(factSchema)
	vals := make([]any, len(factFields))
	for i := 0; i < s.Config.FactRows; i++ {
		at := 0
		for k := range s.DimX {
			vals[at] = int64(s.FKs[k][i])
			at++
		}
		for j := 0; j < s.Config.FactFeats; j++ {
			vals[at] = s.FactX.At(i, j)
			at++
		}
		vals[at] = s.Y[i]
		if err := fact.AppendRow(vals...); err != nil {
			return nil, nil, err
		}
	}

	for k := range s.DimX {
		fields := []storage.Field{{Name: "id", Type: storage.Int64}}
		for j := 0; j < s.Config.DimFeats[k]; j++ {
			fields = append(fields, storage.Field{Name: fmt.Sprintf("d%d_%d", k, j), Type: storage.Float64})
		}
		schema, err := storage.NewSchema(fields...)
		if err != nil {
			return nil, nil, err
		}
		dim := storage.NewTable(schema)
		dvals := make([]any, len(fields))
		for i := 0; i < s.Config.DimRows[k]; i++ {
			dvals[0] = int64(i)
			for j := 0; j < s.Config.DimFeats[k]; j++ {
				dvals[1+j] = s.DimX[k].At(i, j)
			}
			if err := dim.AppendRow(dvals...); err != nil {
				return nil, nil, err
			}
		}
		dims = append(dims, dim)
	}
	return fact, dims, nil
}

// TupleRatio returns FactRows/DimRows[k], the Orion/F crossover knob.
func (s *Star) TupleRatio(k int) float64 {
	return float64(s.Config.FactRows) / float64(s.Config.DimRows[k])
}

// FeatureRatio returns DimFeats[k]/FactFeats, Hamlet's second rule input.
func (s *Star) FeatureRatio(k int) float64 {
	return float64(s.Config.DimFeats[k]) / float64(s.Config.FactFeats)
}
