package workload

import (
	"math"
	"math/rand"
	"testing"

	"dmml/internal/la"
	"dmml/internal/relational"
	"dmml/internal/storage"
)

func TestRegressionGenerator(t *testing.T) {
	r := rand.New(rand.NewSource(70))
	x, y, w := Regression(r, 200, 5, 0)
	// Zero noise: y must equal X·w exactly.
	pred := la.MatVec(x, w)
	for i := range y {
		if y[i] != pred[i] {
			t.Fatal("noise-free regression labels do not match X·w")
		}
	}
	// Determinism under the same seed.
	r2 := rand.New(rand.NewSource(70))
	x2, y2, _ := Regression(r2, 200, 5, 0)
	if !x.Equal(x2, 0) || y[0] != y2[0] {
		t.Fatal("generator is not deterministic for a fixed seed")
	}
}

func TestClassificationGenerator(t *testing.T) {
	r := rand.New(rand.NewSource(71))
	x, y, w := Classification(r, 500, 4, 0)
	for i := range y {
		if y[i] != 1 && y[i] != -1 {
			t.Fatalf("label %v not in {-1,+1}", y[i])
		}
		m := la.Dot(x.RowView(i), w)
		if (m >= 0) != (y[i] > 0) {
			t.Fatal("noise-free labels disagree with true margin")
		}
	}
	// With flip=1 every label is inverted.
	r3 := rand.New(rand.NewSource(71))
	_, yFlip, _ := Classification(r3, 500, 4, 1)
	for i := range yFlip {
		if yFlip[i] != -y[i] {
			t.Fatal("flip=1 must invert all labels")
		}
	}
}

func TestSparseMatrixDensity(t *testing.T) {
	r := rand.New(rand.NewSource(72))
	m := SparseMatrix(r, 200, 50, 0.1)
	got := 1 - m.Sparsity()
	if math.Abs(got-0.1) > 0.02 {
		t.Fatalf("density = %v, want ≈ 0.1", got)
	}
}

func TestZipfSkew(t *testing.T) {
	r := rand.New(rand.NewSource(73))
	// Uniform: all categories roughly equal.
	uni := Zipf(r, 50000, 10, 0)
	counts := make([]int, 10)
	for _, c := range uni {
		counts[c]++
	}
	for _, c := range counts {
		if c < 4000 || c > 6000 {
			t.Fatalf("uniform Zipf counts = %v", counts)
		}
	}
	// Skewed: category 0 dominates.
	skew := Zipf(r, 50000, 10, 1.5)
	counts = make([]int, 10)
	for _, c := range skew {
		counts[c]++
	}
	if counts[0] < 3*counts[9] {
		t.Fatalf("skewed Zipf counts = %v, want head ≫ tail", counts)
	}
	// Range check.
	for _, c := range skew {
		if c < 0 || c >= 10 {
			t.Fatalf("Zipf code %d out of range", c)
		}
	}
}

func TestTelemetryMatrix(t *testing.T) {
	r := rand.New(rand.NewSource(74))
	m := TelemetryMatrix(r, 1000, []int{5, 100}, 1.0)
	if rows, cols := m.Dims(); rows != 1000 || cols != 2 {
		t.Fatalf("dims = %dx%d", rows, cols)
	}
	for i := 0; i < 1000; i++ {
		if v := m.At(i, 0); v < 0 || v > 4 {
			t.Fatalf("column 0 value %v out of range", v)
		}
	}
}

func TestClusteredPoints(t *testing.T) {
	r := rand.New(rand.NewSource(75))
	x, assign, centers := ClusteredPoints(r, 300, 3, 4, 0.1)
	if rows, _ := x.Dims(); rows != 300 {
		t.Fatalf("rows = %d", rows)
	}
	// With tiny spread every point must be far closer to its own center.
	for i := 0; i < 300; i++ {
		own := la.Norm2(la.SubVec(x.RowView(i), centers.RowView(assign[i])))
		for c := 0; c < 4; c++ {
			if c == assign[i] {
				continue
			}
			other := la.Norm2(la.SubVec(x.RowView(i), centers.RowView(c)))
			if other < own {
				t.Fatalf("point %d closer to foreign center %d", i, c)
			}
		}
	}
}

func starConfig() StarConfig {
	return StarConfig{
		FactRows:  400,
		FactFeats: 3,
		DimRows:   []int{40, 25},
		DimFeats:  []int{4, 2},
		Task:      RegressionTask,
		DimSignal: 1,
	}
}

func TestGenerateStarShapes(t *testing.T) {
	r := rand.New(rand.NewSource(76))
	s, err := GenerateStar(r, starConfig())
	if err != nil {
		t.Fatal(err)
	}
	if s.TotalFeatures() != 3+4+2 {
		t.Fatalf("TotalFeatures = %d", s.TotalFeatures())
	}
	if got := s.TupleRatio(0); got != 10 {
		t.Fatalf("TupleRatio(0) = %v", got)
	}
	if got := s.FeatureRatio(0); math.Abs(got-4.0/3) > 1e-15 {
		t.Fatalf("FeatureRatio(0) = %v", got)
	}
	m := s.Materialize()
	if rows, cols := m.Dims(); rows != 400 || cols != 9 {
		t.Fatalf("materialized dims = %dx%d", rows, cols)
	}
	// Noise-free regression: y = M·wTrue exactly.
	pred := la.MatVec(m, s.WTrue)
	for i := range s.Y {
		if math.Abs(pred[i]-s.Y[i]) > 1e-12 {
			t.Fatal("labels disagree with materialized features")
		}
	}
}

func TestGenerateStarValidation(t *testing.T) {
	r := rand.New(rand.NewSource(77))
	bad := starConfig()
	bad.FactRows = 0
	if _, err := GenerateStar(r, bad); err == nil {
		t.Fatal("want fact rows error")
	}
	bad = starConfig()
	bad.DimFeats = []int{1}
	if _, err := GenerateStar(r, bad); err == nil {
		t.Fatal("want dims length mismatch error")
	}
}

// The relational-engine materialization must agree with Star.Materialize.
func TestStarTablesJoinMatchesMaterialize(t *testing.T) {
	r := rand.New(rand.NewSource(78))
	cfg := starConfig()
	cfg.FactRows = 120
	s, err := GenerateStar(r, cfg)
	if err != nil {
		t.Fatal(err)
	}
	fact, dims, err := s.Tables()
	if err != nil {
		t.Fatal(err)
	}
	joined := fact
	for k, dim := range dims {
		joined, err = relational.HashJoin(joined, dim, "fk"+string(rune('0'+k)), "id", relational.JoinOptions{DropRightKey: true})
		if err != nil {
			t.Fatal(err)
		}
	}
	if joined.NumRows() != 120 {
		t.Fatalf("joined rows = %d", joined.NumRows())
	}
	// Column order: f0..f2, d0_0..d0_3, d1_0..d1_1.
	cols := []string{"f0", "f1", "f2", "d0_0", "d0_1", "d0_2", "d0_3", "d1_0", "d1_1"}
	got, err := storage.ToMatrix(joined, cols)
	if err != nil {
		t.Fatal(err)
	}
	// The join preserves fact-row order for PK-FK joins in our engine.
	want := s.Materialize()
	if !got.Equal(want, 1e-12) {
		t.Fatal("relational materialization disagrees with direct materialization")
	}
	labels, err := storage.ToMatrix(joined, []string{"label"})
	if err != nil {
		t.Fatal(err)
	}
	for i := range s.Y {
		if labels.At(i, 0) != s.Y[i] {
			t.Fatal("labels scrambled by join")
		}
	}
}

func TestStarClassificationTask(t *testing.T) {
	r := rand.New(rand.NewSource(79))
	cfg := starConfig()
	cfg.Task = ClassificationTask
	s, err := GenerateStar(r, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range s.Y {
		if v != 1 && v != -1 {
			t.Fatalf("classification label %v", v)
		}
	}
}

func TestStarDimSignalZero(t *testing.T) {
	r := rand.New(rand.NewSource(80))
	cfg := starConfig()
	cfg.DimSignal = 0
	s, err := GenerateStar(r, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range s.WTrue[cfg.FactFeats:] {
		if w != 0 {
			t.Fatal("DimSignal=0 must zero all dimension weights")
		}
	}
}
