package workload

import (
	"fmt"
	"math/rand"

	"dmml/internal/la"
)

// SnowNode describes one non-root relation of a snowflake schema. Parent is
// the index of the relation it joins into: -1 for the fact table, otherwise
// the index of an earlier SnowNode. Feats may be 0 for a key-only link
// relation.
type SnowNode struct {
	Rows, Feats int
	Parent      int
}

// SnowflakeConfig parameterizes a multi-level normalized schema — the
// workload of the join-tree factorized-learning experiments. Node k of the
// generated tree is Nodes[k-1]; node 0 is the fact table.
type SnowflakeConfig struct {
	FactRows  int
	FactFeats int
	Nodes     []SnowNode
	Task      Task
	Noise     float64 // label noise (regression: σ; classification: flip prob)
	// Signal scales the true weights on non-fact features (1 = same scale
	// as fact features).
	Signal float64
}

func (c SnowflakeConfig) validate() error {
	if c.FactRows <= 0 || c.FactFeats <= 0 {
		return fmt.Errorf("workload: snowflake needs positive fact rows/features")
	}
	for k, nd := range c.Nodes {
		if nd.Rows <= 0 || nd.Feats < 0 {
			return fmt.Errorf("workload: snowflake node %d needs positive rows and non-negative features", k)
		}
		if nd.Parent < -1 || nd.Parent >= k {
			return fmt.Errorf("workload: snowflake node %d parent %d must be -1 (fact) or an earlier node", k, nd.Parent)
		}
	}
	return nil
}

// Snowflake is a generated normalized schema in join-tree form: X[0] is the
// fact table, X[1+k] realizes Nodes[k] (nil when it has no features),
// Parents[1+k] is its parent's node index, and FKs[1+k] maps each parent row
// to its row. WTrue spans the joined feature vector in node order.
type Snowflake struct {
	Config  SnowflakeConfig
	X       []*la.Dense
	Rows    []int
	Parents []int // Parents[0] = -1
	FKs     [][]int
	Y       []float64
	WTrue   []float64
}

// GenerateSnowflake builds a Snowflake per the config.
func GenerateSnowflake(r *rand.Rand, cfg SnowflakeConfig) (*Snowflake, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	n := 1 + len(cfg.Nodes)
	s := &Snowflake{
		Config:  cfg,
		X:       make([]*la.Dense, n),
		Rows:    make([]int, n),
		Parents: make([]int, n),
		FKs:     make([][]int, n),
	}
	fill := func(m *la.Dense) {
		for i := 0; i < m.Rows(); i++ {
			row := m.RowView(i)
			for j := range row {
				row[j] = r.NormFloat64()
			}
		}
	}
	s.Rows[0] = cfg.FactRows
	s.Parents[0] = -1
	s.X[0] = la.NewDense(cfg.FactRows, cfg.FactFeats)
	fill(s.X[0])
	for k, nd := range cfg.Nodes {
		v := 1 + k
		s.Rows[v] = nd.Rows
		s.Parents[v] = nd.Parent + 1
		if nd.Feats > 0 {
			s.X[v] = la.NewDense(nd.Rows, nd.Feats)
			fill(s.X[v])
		}
		fk := make([]int, s.Rows[s.Parents[v]])
		for i := range fk {
			fk[i] = r.Intn(nd.Rows)
		}
		s.FKs[v] = fk
	}

	total := s.TotalFeatures()
	s.WTrue = make([]float64, total)
	at := 0
	for v := 0; v < n; v++ {
		if s.X[v] == nil {
			continue
		}
		scale := cfg.Signal
		if v == 0 {
			scale = 1
		}
		for j := 0; j < s.X[v].Cols(); j++ {
			s.WTrue[at] = scale * r.NormFloat64()
			at++
		}
	}

	// Labels from the joined feature vector.
	m := s.Materialize()
	s.Y = make([]float64, cfg.FactRows)
	for i := 0; i < cfg.FactRows; i++ {
		margin := la.Dot(s.WTrue, m.RowView(i))
		switch cfg.Task {
		case RegressionTask:
			s.Y[i] = margin + cfg.Noise*r.NormFloat64()
		case ClassificationTask:
			if margin >= 0 {
				s.Y[i] = 1
			} else {
				s.Y[i] = -1
			}
			if r.Float64() < cfg.Noise {
				s.Y[i] = -s.Y[i]
			}
		}
	}
	return s, nil
}

// TotalFeatures is the width of the joined feature vector.
func (s *Snowflake) TotalFeatures() int {
	total := 0
	for _, x := range s.X {
		if x != nil {
			total += x.Cols()
		}
	}
	return total
}

// Materialize produces the fully joined feature matrix (the baseline the
// materialized-learning variants train on).
func (s *Snowflake) Materialize() *la.Dense {
	n := len(s.X)
	out := la.NewDense(s.Config.FactRows, s.TotalFeatures())
	key := make([]int, n)
	for i := 0; i < s.Config.FactRows; i++ {
		key[0] = i
		row := out.RowView(i)
		at := 0
		// Nodes are parent-before-child by construction, so one forward
		// pass resolves every composed key.
		for v := 0; v < n; v++ {
			if v > 0 {
				key[v] = s.FKs[v][key[s.Parents[v]]]
			}
			if s.X[v] != nil {
				copy(row[at:], s.X[v].RowView(key[v]))
				at += s.X[v].Cols()
			}
		}
	}
	return out
}
