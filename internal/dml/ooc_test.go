package dml

import (
	"fmt"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"dmml/internal/la"
	"dmml/internal/storage"
)

// newColumn wraps a slice as an n x 1 matrix Value.
func newColumn(v []float64) (Value, error) {
	m, err := la.NewDenseData(len(v), 1, v)
	if err != nil {
		return Value{}, err
	}
	return Matrix(m), nil
}

// writeCSV writes an rows x cols CSV of low-cardinality values (compressible,
// like quantized features) plus a deterministic noise column.
func writeCSV(t *testing.T, rows, cols int) string {
	t.Helper()
	r := rand.New(rand.NewSource(17))
	var sb strings.Builder
	for i := 0; i < rows; i++ {
		for j := 0; j < cols; j++ {
			if j > 0 {
				sb.WriteByte(',')
			}
			if j == cols-1 {
				fmt.Fprintf(&sb, "%.6f", r.NormFloat64())
			} else {
				fmt.Fprintf(&sb, "%d", r.Intn(3+j))
			}
		}
		sb.WriteByte('\n')
	}
	path := filepath.Join(t.TempDir(), "data.csv")
	if err := os.WriteFile(path, []byte(sb.String()), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func runProg(t *testing.T, src string, env Env) Value {
	t.Helper()
	p, err := Parse(src)
	if err != nil {
		t.Fatalf("parse %q: %v", src, err)
	}
	v, _, err := p.Run(env)
	if err != nil {
		t.Fatalf("run %q: %v", src, err)
	}
	return v
}

func TestStringLiteralLexing(t *testing.T) {
	p, err := Parse(`X = read("a\"b\\c\n\t.csv")` + "\nnrow(X)")
	if err != nil {
		t.Fatal(err)
	}
	call := p.Stmts[0].Expr.(*Call)
	got := call.Args[0].(*StrLit).Val
	if got != "a\"b\\c\n\t.csv" {
		t.Fatalf("unescaped value = %q", got)
	}
	for _, bad := range []string{
		`read("unterminated`,
		"read(\"newline\nin string\")",
		`read("bad \q escape")`,
	} {
		if _, err := Parse(bad); err == nil {
			t.Fatalf("Parse(%q): want lex error", bad)
		}
	}
}

func TestStringOutsideReadRejected(t *testing.T) {
	for _, src := range []string{
		`x = "hello"` + "\nx + 1",
		`1 + "two"`,
		`sum("m")`,
	} {
		p, err := Parse(src)
		if err != nil {
			t.Fatalf("parse %q: %v", src, err)
		}
		if _, _, err := p.Run(Env{}); err == nil {
			t.Fatalf("Run(%q): want error for string outside read()", src)
		}
	}
}

func TestReadNonLiteralRejected(t *testing.T) {
	p, err := Parse("x = 1\nread(x)")
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := p.Run(Env{}); err == nil {
		t.Fatal("want error for read with non-string argument")
	}
}

func TestReadDense(t *testing.T) {
	path := writeCSV(t, 40, 4)
	v := runProg(t, fmt.Sprintf("X = read(%q)\nnrow(X) * 1000 + ncol(X)", path), Env{})
	if !v.IsScalar || v.S != 40*1000+4 {
		t.Fatalf("dims probe = %v, want 40004", v)
	}
	x := runProg(t, fmt.Sprintf("read(%q)", path), Env{})
	if x.M == nil || x.O != nil {
		t.Fatalf("read without config must be dense, got %v", x)
	}
}

func TestReadErrors(t *testing.T) {
	p, err := Parse(`read("/definitely/not/there.csv")`)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := p.Run(Env{}); err == nil {
		t.Fatal("want error for missing file")
	}
	dir := t.TempDir()
	ragged := filepath.Join(dir, "ragged.csv")
	os.WriteFile(ragged, []byte("1,2\n3\n"), 0o644)
	nonnum := filepath.Join(dir, "nonnum.csv")
	os.WriteFile(nonnum, []byte("1,two\n"), 0o644)
	empty := filepath.Join(dir, "empty.csv")
	os.WriteFile(empty, []byte(""), 0o644)
	for _, path := range []string{ragged, nonnum, empty, dir} {
		p, err := Parse(fmt.Sprintf("read(%q)", path))
		if err != nil {
			t.Fatal(err)
		}
		if _, _, err := p.Run(Env{}); err == nil {
			t.Fatalf("read(%q): want parse/IO error", path)
		}
	}
}

// oocEnvForFile installs a read config whose budget is far below the file
// size, so read() goes out-of-core, and restores the default on cleanup.
func oocEnvForFile(t *testing.T, budget int64, blockRows int, prefetch bool) {
	t.Helper()
	bp, err := storage.NewBufferPoolBytes(budget, t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	SetReadConfig(ReadConfig{Pool: bp, Budget: budget / 4, BlockRows: blockRows, Prefetch: prefetch})
	t.Cleanup(func() { SetReadConfig(ReadConfig{}) })
}

func TestReadOutOfCoreMatchesDense(t *testing.T) {
	path := writeCSV(t, 600, 5)
	probes := []string{
		"nrow(X)",
		"ncol(X)",
		"sum(X)",
		"mean(X)",
		"sum(colSums(X))",
		"sum(X %*% w)",
		"sum(t(X) %*% y)",
		"sum(t(X) %*% X)",
	}
	env := Env{}
	dense := runProg(t, fmt.Sprintf("X = read(%q)", path), env)
	if dense.M == nil {
		t.Fatal("want dense matrix before configuration")
	}
	w := make([]float64, 5)
	y := make([]float64, 600)
	r := rand.New(rand.NewSource(5))
	for j := range w {
		w[j] = r.NormFloat64()
	}
	for i := range y {
		y[i] = r.NormFloat64()
	}
	wm, _ := newColumn(w)
	ym, _ := newColumn(y)

	want := make([]float64, len(probes))
	for i, probe := range probes {
		src := fmt.Sprintf("X = read(%q)\n%s", path, probe)
		v := runProg(t, src, Env{"w": wm, "y": ym})
		want[i] = v.S
	}

	for _, prefetch := range []bool{false, true} {
		oocEnvForFile(t, 16*1024, 128, prefetch)
		for i, probe := range probes {
			src := fmt.Sprintf("X = read(%q)\n%s", path, probe)
			v := runProg(t, src, Env{"w": wm, "y": ym})
			if math.Abs(v.S-want[i]) > 1e-9*(1+math.Abs(want[i])) {
				t.Fatalf("prefetch=%v probe %q = %v, want %v", prefetch, probe, v.S, want[i])
			}
		}
		// And the value really is out-of-core under this config.
		v := runProg(t, fmt.Sprintf("read(%q)", path), Env{})
		if v.O == nil {
			t.Fatalf("prefetch=%v: want out-of-core matrix", prefetch)
		}
		if v.O.NumBlocks() < 2 {
			t.Fatalf("prefetch=%v: want multiple blocks, got %d", prefetch, v.O.NumBlocks())
		}
	}
}

func TestOutOfCoreUnsupportedOps(t *testing.T) {
	path := writeCSV(t, 600, 5)
	oocEnvForFile(t, 16*1024, 128, false)
	for _, probe := range []string{
		"X + 1",
		"-X",
		"exp(X)",
		"min(X)",
		"rowSums(X)",
		"X[1, 1]",
		"t(X)",
		"X %*% X2",
		"sum(sigmoid(X) - X)",
	} {
		src := fmt.Sprintf("X = read(%q)\nX2 = read(%q)\n%s", path, path, probe)
		p, err := Parse(src)
		if err != nil {
			t.Fatal(err)
		}
		if _, _, err := p.Run(Env{}); err == nil {
			t.Fatalf("probe %q: want out-of-core unsupported error", probe)
		}
	}
}

// TestOutOfCoreGradientPipeline exercises the physical patterns a batch
// gradient program needs — the workload read() paging exists for.
func TestOutOfCoreGradientPipeline(t *testing.T) {
	path := writeCSV(t, 900, 4)
	src := fmt.Sprintf(`X = read(%q)
n = nrow(X)
g = t(X) %%*%% (X %%*%% w - y) / n
sum(g)`, path)

	env := Env{}
	denseX := runProg(t, fmt.Sprintf("read(%q)", path), env)
	w := make([]float64, 4)
	y := make([]float64, 900)
	r := rand.New(rand.NewSource(6))
	for j := range w {
		w[j] = r.NormFloat64()
	}
	for i := range y {
		y[i] = r.NormFloat64()
	}
	wm, _ := newColumn(w)
	ym, _ := newColumn(y)
	_ = denseX
	want := runProg(t, src, Env{"w": wm, "y": ym})

	oocEnvForFile(t, 8*1024, 64, true)
	got := runProg(t, src, Env{"w": wm, "y": ym})
	if math.Abs(got.S-want.S) > 1e-9*(1+math.Abs(want.S)) {
		t.Fatalf("ooc gradient = %v, want %v", got.S, want.S)
	}
}
