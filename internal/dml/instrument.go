package dml

// Operator-span name tables for the -stats instrumentation. Names are
// precomputed so opSpanName never concatenates strings on the eval hot
// path: with -stats enabled, every executed operator opens a span, and a
// counted loop can execute millions of them.

// binOpSpanNames maps every binary operator the parser accepts to its span
// name. Comparison operators are included: they execute in loop guards.
var binOpSpanNames = map[string]string{
	"+": "dml.op.+", "-": "dml.op.-", "*": "dml.op.*", "/": "dml.op./",
	"^": "dml.op.^", "%*%": "dml.op.%*%",
	"<": "dml.op.cmp", ">": "dml.op.cmp", "<=": "dml.op.cmp",
	">=": "dml.op.cmp", "==": "dml.op.cmp", "!=": "dml.op.cmp",
}

// callSpanNames maps every builtin (including the rewriter's fused
// internal forms) to its span name. An unknown function name times under
// the generic bucket rather than allocating a fresh string — it is about
// to fail evaluation anyway.
var callSpanNames = map[string]string{
	"t": "dml.op.t", "sum": "dml.op.sum", "mean": "dml.op.mean",
	"min": "dml.op.min", "max": "dml.op.max", "trace": "dml.op.trace",
	"nrow": "dml.op.nrow", "ncol": "dml.op.ncol",
	"rowSums": "dml.op.rowSums", "colSums": "dml.op.colSums",
	"exp": "dml.op.exp", "log": "dml.op.log", "sqrt": "dml.op.sqrt",
	"abs": "dml.op.abs", "sigmoid": "dml.op.sigmoid", "eye": "dml.op.eye",
	"cbind": "dml.op.cbind", "rbind": "dml.op.rbind", "solve": "dml.op.solve",
	"__sumsq": "dml.op.__sumsq", "__tracemm": "dml.op.__tracemm",
}

// Fused-template span names: the fusion pass emits Fused nodes rather than
// calls, so they get dedicated names instead of callSpanNames entries. They
// appear in the -stats heavy-hitter table alongside the builtin operators.
const (
	fusedCellSpanName   = "dml.op.fused.cell"
	fusedRowAggSpanName = "dml.op.fused.rowagg"
)

// opSpanName returns the span name for a node, or "" for nodes too cheap
// to time (literals, variable reads).
func opSpanName(n Node) string {
	switch t := n.(type) {
	case *BinOp:
		if name, ok := binOpSpanNames[t.Op]; ok {
			return name
		}
		return "dml.op.binop"
	case *Call:
		if name, ok := callSpanNames[t.Fn]; ok {
			return name
		}
		return "dml.op.call"
	case *Index:
		return "dml.op.index"
	case *Unary:
		return "dml.op.neg"
	case *Fused:
		if t.Kind == FuseCell {
			return fusedCellSpanName
		}
		return fusedRowAggSpanName
	}
	return ""
}
