package dml_test

import (
	"fmt"
	"log"

	"dmml/internal/dml"
	"dmml/internal/la"
)

// Ridge regression through the declarative language: write linear algebra,
// let the optimizer pick the physical plan.
func Example() {
	x, err := la.FromRows([][]float64{
		{1, 0}, {0, 1}, {1, 1}, {2, 1}, {1, 2},
	})
	if err != nil {
		log.Fatal(err)
	}
	y, err := la.FromRows([][]float64{{2}, {3}, {5}, {7}, {8}}) // y = 2a+3b
	if err != nil {
		log.Fatal(err)
	}
	prog, err := dml.Parse(`
G = t(X) %*% X + 0.000001 * eye(ncol(X))
w = solve(G, t(X) %*% y)
w`)
	if err != nil {
		log.Fatal(err)
	}
	env := dml.Env{"X": dml.Matrix(x), "y": dml.Matrix(y)}
	prog = prog.Optimize(dml.ShapesFromEnv(env))
	v, _, err := prog.Run(env)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("w0 = %.2f, w1 = %.2f\n", v.M.At(0, 0), v.M.At(1, 0))
	// Output:
	// w0 = 2.00, w1 = 3.00
}

// Loops and conditionals make whole iterative algorithms expressible; the
// optimizer hoists loop-invariant work.
func Example_controlFlow() {
	prog, err := dml.Parse(`
s = 0
for (i in 1:10) {
  if (i > 5) {
    s = s + i
  }
}
s`)
	if err != nil {
		log.Fatal(err)
	}
	v, _, err := prog.Run(dml.Env{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(v)
	// Output:
	// 40
}
