package dml

import (
	"fmt"
	"strconv"
	"unicode"
)

type tokKind int

const (
	tokEOF tokKind = iota
	tokNewline
	tokNum
	tokIdent
	tokOp     // + - * / ^ =
	tokMatMul // %*%
	tokLParen
	tokRParen
	tokComma
	tokLBrace
	tokRBrace
	tokColon
	tokLBracket
	tokRBracket
	tokStr // double-quoted string literal; text holds the unquoted value
)

type token struct {
	kind tokKind
	text string
	num  float64
	pos  int
}

func (t token) String() string {
	switch t.kind {
	case tokEOF:
		return "end of input"
	case tokNewline:
		return "newline"
	default:
		return fmt.Sprintf("%q", t.text)
	}
}

// lex tokenizes src. Newlines are significant (statement separators);
// '#' starts a comment to end of line.
func lex(src string) ([]token, error) {
	var toks []token
	i := 0
	n := len(src)
	for i < n {
		c := src[i]
		switch {
		case c == '#':
			for i < n && src[i] != '\n' {
				i++
			}
		case c == '\n' || c == ';':
			toks = append(toks, token{kind: tokNewline, text: "\n", pos: i})
			i++
		case c == ' ' || c == '\t' || c == '\r':
			i++
		case c == '(':
			toks = append(toks, token{kind: tokLParen, text: "(", pos: i})
			i++
		case c == ')':
			toks = append(toks, token{kind: tokRParen, text: ")", pos: i})
			i++
		case c == ',':
			toks = append(toks, token{kind: tokComma, text: ",", pos: i})
			i++
		case c == '[':
			toks = append(toks, token{kind: tokLBracket, text: "[", pos: i})
			i++
		case c == ']':
			toks = append(toks, token{kind: tokRBracket, text: "]", pos: i})
			i++
		case c == '{':
			toks = append(toks, token{kind: tokLBrace, text: "{", pos: i})
			i++
		case c == '}':
			toks = append(toks, token{kind: tokRBrace, text: "}", pos: i})
			i++
		case c == ':':
			toks = append(toks, token{kind: tokColon, text: ":", pos: i})
			i++
		case c == '<' || c == '>' || c == '!':
			op := string(c)
			if i+1 < n && src[i+1] == '=' {
				op += "="
				i++
			} else if c == '!' {
				return nil, fmt.Errorf("dml: %s: unexpected '!'; only != is supported", posString(src, i))
			}
			toks = append(toks, token{kind: tokOp, text: op, pos: i})
			i++
		case c == '%':
			if i+2 < n && src[i+1] == '*' && src[i+2] == '%' {
				toks = append(toks, token{kind: tokMatMul, text: "%*%", pos: i})
				i += 3
			} else {
				return nil, fmt.Errorf("dml: %s: unexpected %%; only %%*%% is supported", posString(src, i))
			}
		case c == '=':
			if i+1 < n && src[i+1] == '=' {
				toks = append(toks, token{kind: tokOp, text: "==", pos: i})
				i += 2
			} else {
				toks = append(toks, token{kind: tokOp, text: "=", pos: i})
				i++
			}
		case c == '"':
			j := i + 1
			var sb []byte
			closed := false
			for j < n {
				cj := src[j]
				if cj == '"' {
					closed = true
					j++
					break
				}
				if cj == '\n' {
					break
				}
				if cj == '\\' && j+1 < n {
					j++
					switch src[j] {
					case '"':
						sb = append(sb, '"')
					case '\\':
						sb = append(sb, '\\')
					case 'n':
						sb = append(sb, '\n')
					case 't':
						sb = append(sb, '\t')
					default:
						return nil, fmt.Errorf("dml: %s: unknown escape \\%c in string", posString(src, j-1), src[j])
					}
					j++
					continue
				}
				sb = append(sb, cj)
				j++
			}
			if !closed {
				return nil, fmt.Errorf("dml: %s: unterminated string literal", posString(src, i))
			}
			toks = append(toks, token{kind: tokStr, text: string(sb), pos: i})
			i = j
		case c == '+' || c == '-' || c == '*' || c == '/' || c == '^':
			toks = append(toks, token{kind: tokOp, text: string(c), pos: i})
			i++
		case c >= '0' && c <= '9' || c == '.':
			j := i
			seenE := false
			for j < n {
				cj := src[j]
				if cj >= '0' && cj <= '9' || cj == '.' {
					j++
					continue
				}
				if (cj == 'e' || cj == 'E') && !seenE {
					seenE = true
					j++
					if j < n && (src[j] == '+' || src[j] == '-') {
						j++
					}
					continue
				}
				break
			}
			v, err := strconv.ParseFloat(src[i:j], 64)
			if err != nil {
				return nil, fmt.Errorf("dml: %s: bad number %q", posString(src, i), src[i:j])
			}
			toks = append(toks, token{kind: tokNum, text: src[i:j], num: v, pos: i})
			i = j
		case unicode.IsLetter(rune(c)) || c == '_':
			j := i
			for j < n && (unicode.IsLetter(rune(src[j])) || unicode.IsDigit(rune(src[j])) || src[j] == '_') {
				j++
			}
			toks = append(toks, token{kind: tokIdent, text: src[i:j], pos: i})
			i = j
		default:
			return nil, fmt.Errorf("dml: %s: unexpected character %q", posString(src, i), c)
		}
	}
	toks = append(toks, token{kind: tokEOF, pos: n})
	return toks, nil
}
