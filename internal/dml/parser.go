package dml

import "fmt"

// Parse parses a DML program: newline-separated assignments and expressions.
// The returned Program retains the source text so analyzer and evaluator
// diagnostics can report line:col positions.
func Parse(src string) (*Program, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks, src: src}
	prog := &Program{Src: src}
	for {
		p.skipNewlines()
		if p.peek().kind == tokEOF {
			break
		}
		stmt, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		prog.Stmts = append(prog.Stmts, stmt)
		switch p.peek().kind {
		case tokNewline:
			p.next()
		case tokEOF:
		default:
			return nil, p.errAt(p.peek().pos, "unexpected %s after statement", p.peek())
		}
	}
	if len(prog.Stmts) == 0 {
		return nil, fmt.Errorf("dml: empty program")
	}
	return prog, nil
}

type parser struct {
	toks []token
	src  string
	at   int
}

// errAt formats a parse error anchored at a byte offset as line:col.
func (p *parser) errAt(pos int, format string, args ...any) error {
	return fmt.Errorf("dml: %s: %s", posString(p.src, pos), fmt.Sprintf(format, args...))
}

func (p *parser) peek() token  { return p.toks[p.at] }
func (p *parser) peek2() token { return p.toks[min(p.at+1, len(p.toks)-1)] }
func (p *parser) next() token  { t := p.toks[p.at]; p.at++; return t }

func (p *parser) skipNewlines() {
	for p.peek().kind == tokNewline {
		p.next()
	}
}

func (p *parser) parseStmt() (Stmt, error) {
	start := p.peek().pos
	if p.peek().kind == tokIdent {
		switch p.peek().text {
		case "for":
			return p.parseFor()
		case "if":
			return p.parseIf()
		}
	}
	if p.peek().kind == tokIdent && p.peek2().kind == tokOp && p.peek2().text == "=" {
		name := p.next().text
		p.next() // '='
		expr, err := p.parseExpr()
		if err != nil {
			return Stmt{}, err
		}
		return Stmt{Name: name, Expr: expr, Pos: start}, nil
	}
	expr, err := p.parseExpr()
	if err != nil {
		return Stmt{}, err
	}
	return Stmt{Expr: expr, Pos: start}, nil
}

func (p *parser) expect(kind tokKind, what string) (token, error) {
	t := p.peek()
	if t.kind != kind {
		return t, p.errAt(t.pos, "expected %s, got %s", what, t)
	}
	return p.next(), nil
}

// parseFor parses `for (v in from:to) { body }`.
func (p *parser) parseFor() (Stmt, error) {
	start := p.peek().pos
	p.next() // "for"
	if _, err := p.expect(tokLParen, "("); err != nil {
		return Stmt{}, err
	}
	v, err := p.expect(tokIdent, "loop variable")
	if err != nil {
		return Stmt{}, err
	}
	kw := p.peek()
	if kw.kind != tokIdent || kw.text != "in" {
		return Stmt{}, p.errAt(kw.pos, "expected \"in\", got %s", kw)
	}
	p.next()
	from, err := p.parseExpr()
	if err != nil {
		return Stmt{}, err
	}
	if _, err := p.expect(tokColon, ":"); err != nil {
		return Stmt{}, err
	}
	to, err := p.parseExpr()
	if err != nil {
		return Stmt{}, err
	}
	if _, err := p.expect(tokRParen, ")"); err != nil {
		return Stmt{}, err
	}
	body, err := p.parseBlock()
	if err != nil {
		return Stmt{}, err
	}
	return Stmt{For: &ForStmt{Var: v.text, From: from, To: to, Body: body}, Pos: start}, nil
}

// parseIf parses `if (cond) { then } [else { else }]`.
func (p *parser) parseIf() (Stmt, error) {
	start := p.peek().pos
	p.next() // "if"
	if _, err := p.expect(tokLParen, "("); err != nil {
		return Stmt{}, err
	}
	cond, err := p.parseExpr()
	if err != nil {
		return Stmt{}, err
	}
	if _, err := p.expect(tokRParen, ")"); err != nil {
		return Stmt{}, err
	}
	then, err := p.parseBlock()
	if err != nil {
		return Stmt{}, err
	}
	st := Stmt{If: &IfStmt{Cond: cond, Then: then}, Pos: start}
	if p.peek().kind == tokIdent && p.peek().text == "else" {
		p.next()
		els, err := p.parseBlock()
		if err != nil {
			return Stmt{}, err
		}
		st.If.Else = els
	}
	return st, nil
}

// parseBlock parses `{ stmt* }` with newline/semicolon separators.
func (p *parser) parseBlock() ([]Stmt, error) {
	if _, err := p.expect(tokLBrace, "{"); err != nil {
		return nil, err
	}
	var body []Stmt
	for {
		p.skipNewlines()
		if p.peek().kind == tokRBrace {
			p.next()
			return body, nil
		}
		if p.peek().kind == tokEOF {
			return nil, p.errAt(p.peek().pos, "unterminated block")
		}
		stmt, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		body = append(body, stmt)
		switch p.peek().kind {
		case tokNewline:
			p.next()
		case tokRBrace:
		default:
			return nil, p.errAt(p.peek().pos, "unexpected %s in block", p.peek())
		}
	}
}

// Precedence (loosest to tightest, R-like): comparisons, then additive,
// multiplicative, %*%, unary minus, power, primary.
func (p *parser) parseExpr() (Node, error) { return p.parseCompare() }

var compareOps = map[string]bool{"<": true, ">": true, "<=": true, ">=": true, "==": true, "!=": true}

func (p *parser) parseCompare() (Node, error) {
	left, err := p.parseAdd()
	if err != nil {
		return nil, err
	}
	if p.peek().kind == tokOp && compareOps[p.peek().text] {
		op := p.next()
		right, err := p.parseAdd()
		if err != nil {
			return nil, err
		}
		return &BinOp{Op: op.text, Left: left, Right: right, Pos: op.pos}, nil
	}
	return left, nil
}

func (p *parser) parseAdd() (Node, error) {
	left, err := p.parseMul()
	if err != nil {
		return nil, err
	}
	for p.peek().kind == tokOp && (p.peek().text == "+" || p.peek().text == "-") {
		op := p.next()
		right, err := p.parseMul()
		if err != nil {
			return nil, err
		}
		left = &BinOp{Op: op.text, Left: left, Right: right, Pos: op.pos}
	}
	return left, nil
}

func (p *parser) parseMul() (Node, error) {
	left, err := p.parseMatMul()
	if err != nil {
		return nil, err
	}
	for p.peek().kind == tokOp && (p.peek().text == "*" || p.peek().text == "/") {
		op := p.next()
		right, err := p.parseMatMul()
		if err != nil {
			return nil, err
		}
		left = &BinOp{Op: op.text, Left: left, Right: right, Pos: op.pos}
	}
	return left, nil
}

func (p *parser) parseMatMul() (Node, error) {
	left, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for p.peek().kind == tokMatMul {
		op := p.next()
		right, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		left = &BinOp{Op: "%*%", Left: left, Right: right, Pos: op.pos}
	}
	return left, nil
}

func (p *parser) parseUnary() (Node, error) {
	if p.peek().kind == tokOp && p.peek().text == "-" {
		op := p.next()
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &Unary{X: x, Pos: op.pos}, nil
	}
	return p.parsePower()
}

func (p *parser) parsePower() (Node, error) {
	base, err := p.parsePostfix()
	if err != nil {
		return nil, err
	}
	if p.peek().kind == tokOp && p.peek().text == "^" {
		op := p.next()
		// Right-associative; exponent may carry unary minus.
		exp, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &BinOp{Op: "^", Left: base, Right: exp, Pos: op.pos}, nil
	}
	return base, nil
}

// parsePostfix parses a primary followed by any number of right-indexing
// suffixes: X[rows, cols].
func (p *parser) parsePostfix() (Node, error) {
	base, err := p.parsePrimary()
	if err != nil {
		return nil, err
	}
	for p.peek().kind == tokLBracket {
		open := p.next()
		row, err := p.parseIndexSpec(tokComma)
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokComma, ","); err != nil {
			return nil, err
		}
		col, err := p.parseIndexSpec(tokRBracket)
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokRBracket, "]"); err != nil {
			return nil, err
		}
		base = &Index{X: base, Row: row, Col: col, Pos: open.pos}
	}
	return base, nil
}

// parseIndexSpec parses one axis of an index expression, stopping before the
// given terminator: empty (all), expr, or expr:expr.
func (p *parser) parseIndexSpec(terminator tokKind) (*IndexSpec, error) {
	if p.peek().kind == terminator {
		return &IndexSpec{All: true}, nil
	}
	lo, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if p.peek().kind != tokColon {
		return &IndexSpec{Lo: lo}, nil
	}
	p.next()
	hi, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	return &IndexSpec{Lo: lo, Hi: hi}, nil
}

func (p *parser) parsePrimary() (Node, error) {
	t := p.peek()
	switch t.kind {
	case tokNum:
		p.next()
		return &NumLit{Val: t.num, Pos: t.pos}, nil
	case tokStr:
		p.next()
		return &StrLit{Val: t.text, Pos: t.pos}, nil
	case tokIdent:
		p.next()
		if p.peek().kind != tokLParen {
			return &Var{Name: t.text, Pos: t.pos}, nil
		}
		// Function call.
		arity, ok := builtins[t.text]
		if !ok {
			return nil, p.errAt(t.pos, "unknown function %q", t.text)
		}
		p.next() // '('
		var args []Node
		if p.peek().kind != tokRParen {
			for {
				arg, err := p.parseExpr()
				if err != nil {
					return nil, err
				}
				args = append(args, arg)
				if p.peek().kind == tokComma {
					p.next()
					continue
				}
				break
			}
		}
		if p.peek().kind != tokRParen {
			return nil, p.errAt(p.peek().pos, "expected ) in call to %s, got %s", t.text, p.peek())
		}
		p.next()
		if arity >= 0 && len(args) != arity {
			return nil, p.errAt(t.pos, "%s expects %d argument(s), got %d", t.text, arity, len(args))
		}
		return &Call{Fn: t.text, Args: args, Pos: t.pos}, nil
	case tokLParen:
		p.next()
		inner, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if p.peek().kind != tokRParen {
			return nil, p.errAt(p.peek().pos, "expected ), got %s", p.peek())
		}
		p.next()
		return inner, nil
	default:
		return nil, p.errAt(t.pos, "unexpected %s", t)
	}
}
