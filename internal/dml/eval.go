package dml

import (
	"context"
	"fmt"
	"math"

	"dmml/internal/la"
	"dmml/internal/metrics"
	"dmml/internal/ooc"
	"dmml/internal/opt"
)

// Value is a DML runtime value: a scalar, a dense matrix, or a block-paged
// out-of-core matrix produced by read() when the input exceeds the configured
// memory budget (see SetReadConfig).
type Value struct {
	IsScalar bool
	S        float64
	M        *la.Dense
	O        *ooc.Matrix // non-nil for out-of-core matrices; M is nil then
}

// Scalar wraps a float64 as a Value.
func Scalar(v float64) Value { return Value{IsScalar: true, S: v} }

// Matrix wraps a dense matrix as a Value.
func Matrix(m *la.Dense) Value { return Value{M: m} }

// OOC wraps a block-paged out-of-core matrix as a Value.
func OOC(m *ooc.Matrix) Value { return Value{O: m} }

// String implements fmt.Stringer.
func (v Value) String() string {
	if v.IsScalar {
		return fmt.Sprintf("%g", v.S)
	}
	if v.O != nil {
		return fmt.Sprintf("<out-of-core matrix %dx%d in %d blocks>", v.O.Rows(), v.O.Cols(), v.O.NumBlocks())
	}
	return v.M.String()
}

// oocUnsupported reports an operation that would need the whole matrix
// resident. Out-of-core matrices support exactly the streaming access paths:
// size queries, column aggregates, and the mat-vec/Gram product patterns.
func oocUnsupported(op string) error {
	return fmt.Errorf("%s is not supported on an out-of-core matrix; "+
		"supported: nrow, ncol, sum, mean, colSums, X %%*%% v, t(X) %%*%% v, t(X) %%*%% X", op)
}

// Env binds variable names to values.
type Env map[string]Value

// EvalStats counts the physical work an evaluation performed; the rewrite
// experiments compare these across naive and optimized plans.
type EvalStats struct {
	// CellsAllocated counts matrix cells materialized for intermediates.
	CellsAllocated int64
	// Flops estimates floating-point operations of matrix products and
	// fused aggregates.
	Flops float64
	// CSEHits counts subexpressions answered from the per-statement cache.
	CSEHits int64
	// FusedRegions counts fused-template executions (Cell and RowAgg).
	FusedRegions int64
	// FusedCompiled counts fused-template executions that ran through a
	// compiled kernel rather than the tile interpreter (FusedCompiled ≤
	// FusedRegions; the gap is interpreter fallbacks and -fuse=interp runs).
	FusedCompiled int64
	// CellsSaved counts the intermediate matrix cells fusion did NOT
	// materialize — what an unfused plan would have added to CellsAllocated.
	CellsSaved int64
	// Warnings holds the lint findings collected by the static analyzer
	// pre-pass (errors abort before evaluation and never appear here).
	Warnings []Diagnostic
}

// Run evaluates the program against env (mutating it with assignments) and
// returns the value of the final statement plus evaluation statistics.
//
// Before any statement executes, the static semantic analyzer validates the
// program against the environment's shapes: error diagnostics (undefined
// variables, dimension mismatches, type errors) abort with no evaluation at
// all, while warnings are collected into EvalStats.Warnings.
func (p *Program) Run(env Env) (Value, *EvalStats, error) {
	stats := &EvalStats{}
	a := p.Analyze(ShapesFromEnv(env))
	stats.Warnings = a.Warnings()
	if errs := a.Errors(); len(errs) > 0 {
		msg := errs[0].Format(p.Src)
		if len(errs) > 1 {
			msg = fmt.Sprintf("%s (and %d more errors)", msg, len(errs)-1)
		}
		return Value{}, stats, fmt.Errorf("dml: %s", msg)
	}
	last, err := runStmts(env, stats, p.Stmts, p.Src)
	return last, stats, err
}

// maxLoopIters caps counted loops so a typo cannot hang the interpreter.
const maxLoopIters = 10_000_000

func runStmts(env Env, stats *EvalStats, stmts []Stmt, src string) (Value, error) {
	var last Value
	for i, stmt := range stmts {
		fail := func(err error) (Value, error) {
			if src != "" {
				return Value{}, fmt.Errorf("dml: %s: statement %d (%s): %w",
					posString(src, stmt.Pos), i+1, stmt, err)
			}
			return Value{}, fmt.Errorf("dml: statement %d (%s): %w", i+1, stmt, err)
		}
		switch {
		case stmt.For != nil:
			ev := &evaluator{env: env, stats: stats, memo: map[string]Value{}}
			fromV, err := ev.eval(stmt.For.From)
			if err != nil {
				return fail(err)
			}
			toV, err := ev.eval(stmt.For.To)
			if err != nil {
				return fail(err)
			}
			if !fromV.IsScalar || !toV.IsScalar {
				return fail(fmt.Errorf("loop bounds must be scalars"))
			}
			from, to := int(fromV.S), int(toV.S)
			if to-from+1 > maxLoopIters {
				return fail(fmt.Errorf("loop of %d iterations exceeds the %d cap", to-from+1, maxLoopIters))
			}
			for k := from; k <= to; k++ {
				env[stmt.For.Var] = Scalar(float64(k))
				v, err := runStmts(env, stats, stmt.For.Body, src)
				if err != nil {
					return Value{}, err
				}
				last = v
			}
		case stmt.If != nil:
			ev := &evaluator{env: env, stats: stats, memo: map[string]Value{}}
			cond, err := ev.eval(stmt.If.Cond)
			if err != nil {
				return fail(err)
			}
			if !cond.IsScalar {
				return fail(fmt.Errorf("if condition must be a scalar"))
			}
			branch := stmt.If.Then
			if cond.S == 0 {
				branch = stmt.If.Else
			}
			v, err := runStmts(env, stats, branch, src)
			if err != nil {
				return Value{}, err
			}
			if len(branch) > 0 {
				last = v
			}
		default:
			ev := &evaluator{env: env, stats: stats, memo: map[string]Value{}}
			v, err := ev.eval(stmt.Expr)
			if err != nil {
				return fail(err)
			}
			if stmt.Name != "" {
				env[stmt.Name] = v
			}
			last = v
		}
	}
	return last, nil
}

type evaluator struct {
	env   Env
	stats *EvalStats
	memo  map[string]Value // per-statement CSE cache
	// ctx carries the innermost open metrics span while -stats collection
	// is enabled, so nested operator evaluations report parent/child self
	// time. nil until the first instrumented node.
	ctx context.Context
}

func (e *evaluator) allocCells(rows, cols int) {
	e.stats.CellsAllocated += int64(rows) * int64(cols)
}

func (e *evaluator) eval(n Node) (Value, error) {
	// CSE: identical matrix subtrees inside one statement evaluate once.
	key := ""
	switch n.(type) {
	case *BinOp, *Call, *Index, *Fused:
		key = n.String()
		if v, ok := e.memo[key]; ok {
			e.stats.CSEHits++
			return v, nil
		}
	}
	v, err := e.evalRaw(n)
	if err != nil {
		return Value{}, err
	}
	if key != "" {
		e.memo[key] = v
	}
	return v, nil
}

func (e *evaluator) evalRaw(n Node) (Value, error) {
	// Operator tracing for -stats: each compound node runs under a span so
	// the top-K table can attribute wall time per operator with child time
	// separated out. Everything inside this block is skipped — at the cost
	// of one atomic load — when collection is disabled.
	if metrics.Enabled() {
		if name := opSpanName(n); name != "" {
			saved := e.ctx
			if saved == nil {
				saved = context.Background()
			}
			ctx, end := metrics.Span(saved, name)
			e.ctx = ctx
			defer func() {
				end()
				e.ctx = saved
			}()
		}
	}
	switch t := n.(type) {
	case *NumLit:
		return Scalar(t.Val), nil
	case *StrLit:
		return Value{}, fmt.Errorf("string literal %s is only valid as the argument of read()", t)
	case *Var:
		v, ok := e.env[t.Name]
		if !ok {
			return Value{}, fmt.Errorf("undefined variable %q", t.Name)
		}
		return v, nil
	case *Unary:
		v, err := e.eval(t.X)
		if err != nil {
			return Value{}, err
		}
		if v.IsScalar {
			return Scalar(-v.S), nil
		}
		if v.O != nil {
			return Value{}, oocUnsupported("unary minus")
		}
		out := v.M.Clone().Scale(-1)
		e.allocCells(out.Rows(), out.Cols())
		return Matrix(out), nil
	case *BinOp:
		return e.evalBinOp(t)
	case *Call:
		return e.evalCall(t)
	case *Fused:
		return e.evalFused(t)
	case *Index:
		return e.evalIndex(t)
	default:
		return Value{}, fmt.Errorf("unknown node type %T", n)
	}
}

func (e *evaluator) evalBinOp(n *BinOp) (Value, error) {
	if n.Op == "%*%" {
		return e.evalMatMul(n)
	}
	l, err := e.eval(n.Left)
	if err != nil {
		return Value{}, err
	}
	r, err := e.eval(n.Right)
	if err != nil {
		return Value{}, err
	}
	if l.O != nil || r.O != nil {
		return Value{}, oocUnsupported(fmt.Sprintf("element-wise %s", n.Op))
	}
	if compareOps[n.Op] {
		if !l.IsScalar || !r.IsScalar {
			return Value{}, fmt.Errorf("comparison %s needs scalar operands", n.Op)
		}
		return Scalar(boolToFloat(compare(n.Op, l.S, r.S))), nil
	}
	apply := func(a, b float64) (float64, error) {
		switch n.Op {
		case "+":
			return a + b, nil
		case "-":
			return a - b, nil
		case "*":
			return a * b, nil
		case "/":
			return a / b, nil
		case "^":
			return math.Pow(a, b), nil
		}
		return 0, fmt.Errorf("unknown operator %q", n.Op)
	}
	switch {
	case l.IsScalar && r.IsScalar:
		v, err := apply(l.S, r.S)
		return Scalar(v), err
	case l.IsScalar:
		out := r.M.Clone()
		e.allocCells(out.Rows(), out.Cols())
		var ferr error
		out.Apply(func(x float64) float64 {
			v, err := apply(l.S, x)
			if err != nil {
				ferr = err
			}
			return v
		})
		return Matrix(out), ferr
	case r.IsScalar:
		out := l.M.Clone()
		e.allocCells(out.Rows(), out.Cols())
		var ferr error
		out.Apply(func(x float64) float64 {
			v, err := apply(x, r.S)
			if err != nil {
				ferr = err
			}
			return v
		})
		return Matrix(out), ferr
	default:
		lr, lc := l.M.Dims()
		rr, rc := r.M.Dims()
		if lr != rr || lc != rc {
			return Value{}, fmt.Errorf("element-wise %s on %dx%d and %dx%d", n.Op, lr, lc, rr, rc)
		}
		out := l.M.Clone()
		e.allocCells(lr, lc)
		ld, rd := out.RawData(), r.M.RawData()
		for i := range ld {
			v, err := apply(ld[i], rd[i])
			if err != nil {
				return Value{}, err
			}
			ld[i] = v
		}
		return Matrix(out), nil
	}
}

// evalMatMul executes %*% with physical-operator selection: t(X) %*% X maps
// to the fused Gram kernel, products against thin right-hand sides map to
// matrix–vector kernels, and t(X) %*% y avoids materializing the transpose.
func (e *evaluator) evalMatMul(n *BinOp) (Value, error) {
	// t(A) %*% A → Gram(A) without materializing the transpose.
	if lt, ok := n.Left.(*Call); ok && lt.Fn == "t" {
		if lt.Args[0].String() == n.Right.String() {
			inner, err := e.eval(lt.Args[0])
			if err != nil {
				return Value{}, err
			}
			if !inner.IsScalar {
				if inner.O != nil {
					rows, cols := inner.O.Dims()
					g, err := inner.O.Gram()
					if err != nil {
						return Value{}, err
					}
					e.stats.Flops += float64(rows) * float64(cols) * float64(cols)
					e.allocCells(cols, cols)
					return Matrix(g), nil
				}
				rows, cols := inner.M.Dims()
				e.stats.Flops += float64(rows) * float64(cols) * float64(cols)
				e.allocCells(cols, cols)
				return Matrix(la.Gram(inner.M)), nil
			}
		}
		// t(A) %*% B with thin B → per-column VecMat on A (no transpose).
		innerV, err := e.eval(lt.Args[0])
		if err != nil {
			return Value{}, err
		}
		rv, err := e.eval(n.Right)
		if err != nil {
			return Value{}, err
		}
		if rv.O != nil {
			return Value{}, oocUnsupported("%*% with an out-of-core right operand")
		}
		if !innerV.IsScalar && !rv.IsScalar && rv.M.Cols() == 1 {
			// t(X) %*% y with out-of-core X streams blocks through VecMat.
			if innerV.O != nil {
				if innerV.O.Rows() != rv.M.Rows() {
					return Value{}, fmt.Errorf("%%*%% on %dx%d and %dx%d",
						innerV.O.Cols(), innerV.O.Rows(), rv.M.Rows(), rv.M.Cols())
				}
				res := innerV.O.VecMat(rv.M.Col(0))
				e.stats.Flops += 2 * float64(innerV.O.Rows()) * float64(innerV.O.Cols())
				e.allocCells(len(res), 1)
				out, err := la.NewDenseData(len(res), 1, res)
				if err != nil {
					return Value{}, err
				}
				return Matrix(out), nil
			}
			a := innerV.M
			if a.Rows() != rv.M.Rows() {
				return Value{}, fmt.Errorf("%%*%% on %dx%d and %dx%d", a.Cols(), a.Rows(), rv.M.Rows(), rv.M.Cols())
			}
			col := rv.M.Col(0)
			res := la.VecMat(col, a)
			e.stats.Flops += 2 * float64(a.Rows()) * float64(a.Cols())
			e.allocCells(len(res), 1)
			out := la.NewDense(len(res), 1)
			for i, v := range res {
				out.Set(i, 0, v)
			}
			return Matrix(out), nil
		}
		if innerV.O != nil {
			return Value{}, oocUnsupported("t(X) %*% B with a wide right operand")
		}
		// Fall through: generic path with materialized operands.
		return e.genericMatMul(Value{M: innerV.M.T()}, rv)
	}
	l, err := e.eval(n.Left)
	if err != nil {
		return Value{}, err
	}
	r, err := e.eval(n.Right)
	if err != nil {
		return Value{}, err
	}
	return e.genericMatMul(l, r)
}

func (e *evaluator) genericMatMul(l, r Value) (Value, error) {
	if l.IsScalar || r.IsScalar {
		return Value{}, fmt.Errorf("%%*%% needs matrices on both sides")
	}
	if r.O != nil {
		return Value{}, oocUnsupported("%*% with an out-of-core right operand")
	}
	if l.O != nil {
		// X %*% v with out-of-core X streams blocks through MatVec.
		rr, rc := r.M.Dims()
		if l.O.Cols() != rr {
			return Value{}, fmt.Errorf("%%*%% on %dx%d and %dx%d", l.O.Rows(), l.O.Cols(), rr, rc)
		}
		if rc != 1 {
			return Value{}, oocUnsupported("X %*% B with a wide right operand")
		}
		res := l.O.MatVec(r.M.Col(0))
		e.stats.Flops += 2 * float64(l.O.Rows()) * float64(l.O.Cols())
		e.allocCells(len(res), 1)
		out, err := la.NewDenseData(len(res), 1, res)
		if err != nil {
			return Value{}, err
		}
		return Matrix(out), nil
	}
	lr, lc := l.M.Dims()
	rr, rc := r.M.Dims()
	if lc != rr {
		return Value{}, fmt.Errorf("%%*%% on %dx%d and %dx%d", lr, lc, rr, rc)
	}
	e.stats.Flops += 2 * float64(lr) * float64(lc) * float64(rc)
	e.allocCells(lr, rc)
	if rc == 1 {
		res := la.MatVec(l.M, r.M.Col(0))
		out := la.NewDense(lr, 1)
		for i, v := range res {
			out.Set(i, 0, v)
		}
		return Matrix(out), nil
	}
	return Matrix(la.MatMul(l.M, r.M)), nil
}

// evalFused executes a fused region: inputs evaluate through the normal
// (CSE-cached) path, then the compiled micro-op program runs as one pass —
// a Cell template writes a single output matrix, a RowAgg template reduces
// with no materialized intermediate at all. Only the final output counts
// toward CellsAllocated; the intermediates an unfused plan would have
// materialized accumulate in CellsSaved instead.
func (e *evaluator) evalFused(n *Fused) (Value, error) {
	ins := make([]la.FusedInput, len(n.Inputs))
	rows, cols := -1, -1
	for i, in := range n.Inputs {
		v, err := e.eval(in)
		if err != nil {
			return Value{}, err
		}
		if v.IsScalar {
			ins[i] = la.ScalarInput(v.S)
			continue
		}
		if v.O != nil {
			return Value{}, oocUnsupported("fused element-wise region")
		}
		r, c := v.M.Dims()
		if rows < 0 {
			rows, cols = r, c
		} else if r != rows || c != cols {
			return Value{}, fmt.Errorf("element-wise op on %dx%d and %dx%d in fused region", rows, cols, r, c)
		}
		ins[i] = la.DenseInput(v.M)
	}
	if rows < 0 {
		// Every input turned out scalar at runtime; the region was fused on
		// static shape information that no longer holds, so evaluate the
		// original expression instead.
		return e.eval(n.Body)
	}
	prog := n.Prog
	cells := int64(rows) * int64(cols)
	e.stats.FusedRegions++
	if compiled, _ := prog.CompileFusedKernel(ins); compiled {
		e.stats.FusedCompiled++
	}
	e.stats.Flops += float64(prog.ArithOps()) * float64(cells)
	if n.Kind == FuseCell {
		out := la.FusedCell(prog, ins, rows, cols)
		e.allocCells(rows, cols)
		e.stats.CellsSaved += int64(n.MatOps-1) * cells
		return Matrix(out), nil
	}
	e.stats.CellsSaved += int64(n.MatOps) * cells
	switch n.Agg {
	case aggRowSums:
		out := la.NewDense(rows, 1)
		la.FusedRowSumsInto(out.RawData(), prog, ins, rows, cols)
		e.allocCells(rows, 1)
		return Matrix(out), nil
	case aggColSums:
		out := la.NewDense(1, cols)
		la.FusedColSumsInto(out.RawData(), prog, ins, rows, cols)
		e.allocCells(1, cols)
		return Matrix(out), nil
	case aggMatVec:
		v, err := e.eval(n.Vec)
		if err != nil {
			return Value{}, err
		}
		if v.IsScalar {
			return Value{}, fmt.Errorf("%%*%% needs matrices on both sides")
		}
		if v.O != nil {
			return Value{}, oocUnsupported("%*% with an out-of-core right operand")
		}
		vr, vc := v.M.Dims()
		if vc != 1 || vr != cols {
			return Value{}, fmt.Errorf("%%*%% on %dx%d and %dx%d", rows, cols, vr, vc)
		}
		e.stats.Flops += 2 * float64(cells)
		out := la.NewDense(rows, 1)
		la.FusedMatVecInto(out.RawData(), prog, ins, rows, cols, v.M.RawData())
		e.allocCells(rows, 1)
		return Matrix(out), nil
	default: // aggSum
		return Scalar(la.FusedSum(prog, ins, rows, cols)), nil
	}
}

func (e *evaluator) evalCall(n *Call) (Value, error) {
	// Fused operators and read() first: they bypass child materialization
	// (read's argument is a string literal, not an evaluable expression).
	switch n.Fn {
	case "read":
		s, ok := n.Args[0].(*StrLit)
		if !ok {
			return Value{}, fmt.Errorf("read: argument must be a string literal path")
		}
		v, err := readMatrix(s.Val)
		if err != nil {
			return Value{}, fmt.Errorf("read(%q): %w", s.Val, err)
		}
		if v.M != nil {
			e.allocCells(v.M.Rows(), v.M.Cols())
		}
		return v, nil
	case "__sumsq":
		v, err := e.eval(n.Args[0])
		if err != nil {
			return Value{}, err
		}
		if v.IsScalar {
			return Scalar(v.S * v.S), nil
		}
		if v.O != nil {
			return Value{}, oocUnsupported("sum(X^2)")
		}
		e.stats.Flops += 2 * float64(v.M.Rows()) * float64(v.M.Cols())
		return Scalar(v.M.SumSq()), nil
	case "__tracemm":
		a, err := e.eval(n.Args[0])
		if err != nil {
			return Value{}, err
		}
		b, err := e.eval(n.Args[1])
		if err != nil {
			return Value{}, err
		}
		if a.IsScalar || b.IsScalar {
			return Value{}, fmt.Errorf("__tracemm needs matrices")
		}
		if a.O != nil || b.O != nil {
			return Value{}, oocUnsupported("trace(A %*% B)")
		}
		ar, ac := a.M.Dims()
		br, bc := b.M.Dims()
		if ac != br || ar != bc {
			return Value{}, fmt.Errorf("trace(A %%*%% B) on %dx%d and %dx%d", ar, ac, br, bc)
		}
		e.stats.Flops += 2 * float64(ar) * float64(ac)
		return Scalar(la.TraceMatMul(a.M, b.M)), nil
	}

	args := make([]Value, len(n.Args))
	for i, a := range n.Args {
		v, err := e.eval(a)
		if err != nil {
			return Value{}, err
		}
		args[i] = v
	}
	needMatrix := func(i int) (*la.Dense, error) {
		if args[i].IsScalar {
			return nil, fmt.Errorf("%s: argument %d must be a matrix", n.Fn, i+1)
		}
		if args[i].O != nil {
			return nil, oocUnsupported(n.Fn)
		}
		return args[i].M, nil
	}
	// oocColSums streams per-column sums for aggregate builtins over
	// out-of-core operands.
	oocColSums := func(m *ooc.Matrix) ([]float64, error) {
		sums, err := m.ColSums()
		if err != nil {
			return nil, fmt.Errorf("%s: %w", n.Fn, err)
		}
		return sums, nil
	}
	elementwise := func(f func(float64) float64) (Value, error) {
		if args[0].IsScalar {
			return Scalar(f(args[0].S)), nil
		}
		if args[0].O != nil {
			return Value{}, oocUnsupported(n.Fn)
		}
		out := args[0].M.Clone().Apply(f)
		e.allocCells(out.Rows(), out.Cols())
		return Matrix(out), nil
	}
	switch n.Fn {
	case "t":
		m, err := needMatrix(0)
		if err != nil {
			return Value{}, err
		}
		e.allocCells(m.Cols(), m.Rows())
		return Matrix(m.T()), nil
	case "sum", "mean":
		if args[0].IsScalar {
			return args[0], nil
		}
		var total float64
		var cells float64
		if o := args[0].O; o != nil {
			sums, err := oocColSums(o)
			if err != nil {
				return Value{}, err
			}
			for _, v := range sums {
				total += v
			}
			cells = float64(o.Rows()) * float64(o.Cols())
		} else {
			m := args[0].M
			total = m.Sum()
			cells = float64(m.Rows()) * float64(m.Cols())
		}
		if n.Fn == "mean" {
			return Scalar(total / cells), nil
		}
		return Scalar(total), nil
	case "min", "max":
		if args[0].IsScalar {
			return args[0], nil
		}
		if args[0].O != nil {
			return Value{}, oocUnsupported(n.Fn)
		}
		data := args[0].M.RawData()
		best := data[0]
		for _, v := range data[1:] {
			if (n.Fn == "min" && v < best) || (n.Fn == "max" && v > best) {
				best = v
			}
		}
		return Scalar(best), nil
	case "trace":
		m, err := needMatrix(0)
		if err != nil {
			return Value{}, err
		}
		if m.Rows() != m.Cols() {
			return Value{}, fmt.Errorf("trace of non-square %dx%d", m.Rows(), m.Cols())
		}
		return Scalar(la.Trace(m)), nil
	case "nrow":
		if o := args[0].O; o != nil {
			return Scalar(float64(o.Rows())), nil
		}
		m, err := needMatrix(0)
		if err != nil {
			return Value{}, err
		}
		return Scalar(float64(m.Rows())), nil
	case "ncol":
		if o := args[0].O; o != nil {
			return Scalar(float64(o.Cols())), nil
		}
		m, err := needMatrix(0)
		if err != nil {
			return Value{}, err
		}
		return Scalar(float64(m.Cols())), nil
	case "rowSums":
		m, err := needMatrix(0)
		if err != nil {
			return Value{}, err
		}
		sums := m.RowSums()
		out := la.NewDense(len(sums), 1)
		for i, v := range sums {
			out.Set(i, 0, v)
		}
		e.allocCells(len(sums), 1)
		return Matrix(out), nil
	case "colSums":
		if o := args[0].O; o != nil {
			sums, err := oocColSums(o)
			if err != nil {
				return Value{}, err
			}
			out, err := la.NewDenseData(1, len(sums), sums)
			if err != nil {
				return Value{}, err
			}
			e.allocCells(1, len(sums))
			return Matrix(out), nil
		}
		m, err := needMatrix(0)
		if err != nil {
			return Value{}, err
		}
		sums := m.ColSums()
		out := la.NewDense(1, len(sums))
		for j, v := range sums {
			out.Set(0, j, v)
		}
		e.allocCells(1, len(sums))
		return Matrix(out), nil
	case "exp":
		return elementwise(math.Exp)
	case "log":
		return elementwise(math.Log)
	case "sqrt":
		return elementwise(math.Sqrt)
	case "abs":
		return elementwise(math.Abs)
	case "sigmoid":
		return elementwise(opt.Sigmoid)
	case "eye":
		if !args[0].IsScalar {
			return Value{}, fmt.Errorf("eye: argument must be a scalar")
		}
		k := int(args[0].S)
		if k < 1 || float64(k) != args[0].S {
			return Value{}, fmt.Errorf("eye: need a positive integer, got %g", args[0].S)
		}
		e.allocCells(k, k)
		return Matrix(la.Identity(k)), nil
	case "cbind", "rbind":
		a, err := needMatrix(0)
		if err != nil {
			return Value{}, err
		}
		b, err := needMatrix(1)
		if err != nil {
			return Value{}, err
		}
		var out *la.Dense
		if n.Fn == "cbind" {
			out, err = la.HCat(a, b)
		} else {
			out, err = la.Stack(a, b)
		}
		if err != nil {
			return Value{}, fmt.Errorf("%s: %w", n.Fn, err)
		}
		e.allocCells(out.Rows(), out.Cols())
		return Matrix(out), nil
	case "solve":
		a, err := needMatrix(0)
		if err != nil {
			return Value{}, err
		}
		b, err := needMatrix(1)
		if err != nil {
			return Value{}, err
		}
		if a.Rows() != a.Cols() {
			return Value{}, fmt.Errorf("solve: coefficient matrix is %dx%d, want square", a.Rows(), a.Cols())
		}
		if b.Rows() != a.Rows() || b.Cols() != 1 {
			return Value{}, fmt.Errorf("solve: rhs is %dx%d, want %dx1", b.Rows(), b.Cols(), a.Rows())
		}
		rhs := b.Col(0)
		x, err := la.SolveSPD(a, rhs)
		if err != nil {
			// Non-SPD systems fall back to least squares via QR.
			x, err = la.LstSq(a, rhs)
			if err != nil {
				return Value{}, fmt.Errorf("solve: %w", err)
			}
		}
		e.stats.Flops += float64(a.Rows()) * float64(a.Rows()) * float64(a.Rows()) / 3
		out := la.NewDense(len(x), 1)
		for i, v := range x {
			out.Set(i, 0, v)
		}
		e.allocCells(len(x), 1)
		return Matrix(out), nil
	default:
		return Value{}, fmt.Errorf("unknown function %q", n.Fn)
	}
}

func compare(op string, a, b float64) bool {
	switch op {
	case "<":
		return a < b
	case ">":
		return a > b
	case "<=":
		return a <= b
	case ">=":
		return a >= b
	case "==":
		return a == b
	default: // "!="
		return a != b
	}
}

func boolToFloat(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

// evalIndex executes right indexing with 1-based inclusive bounds.
func (e *evaluator) evalIndex(n *Index) (Value, error) {
	base, err := e.eval(n.X)
	if err != nil {
		return Value{}, err
	}
	if base.IsScalar {
		return Value{}, fmt.Errorf("cannot index a scalar")
	}
	if base.O != nil {
		return Value{}, oocUnsupported("indexing")
	}
	rows, cols := base.M.Dims()
	r0, r1, err := e.resolveSpec(n.Row, rows, "row")
	if err != nil {
		return Value{}, err
	}
	c0, c1, err := e.resolveSpec(n.Col, cols, "column")
	if err != nil {
		return Value{}, err
	}
	if r0 == r1-1 && c0 == c1-1 {
		return Scalar(base.M.At(r0, c0)), nil
	}
	out := base.M.Slice(r0, r1, c0, c1)
	e.allocCells(out.Rows(), out.Cols())
	return Matrix(out), nil
}

// resolveSpec converts a 1-based IndexSpec into a half-open 0-based range.
func (e *evaluator) resolveSpec(spec *IndexSpec, size int, axis string) (lo, hi int, err error) {
	if spec.All {
		return 0, size, nil
	}
	loV, err := e.eval(spec.Lo)
	if err != nil {
		return 0, 0, err
	}
	if !loV.IsScalar {
		return 0, 0, fmt.Errorf("%s index must be a scalar", axis)
	}
	lo1 := int(loV.S)
	if float64(lo1) != loV.S {
		return 0, 0, fmt.Errorf("%s index %g is not an integer", axis, loV.S)
	}
	hi1 := lo1
	if spec.Hi != nil {
		hiV, err := e.eval(spec.Hi)
		if err != nil {
			return 0, 0, err
		}
		if !hiV.IsScalar {
			return 0, 0, fmt.Errorf("%s index must be a scalar", axis)
		}
		hi1 = int(hiV.S)
		if float64(hi1) != hiV.S {
			return 0, 0, fmt.Errorf("%s index %g is not an integer", axis, hiV.S)
		}
	}
	if lo1 < 1 || hi1 < lo1 || hi1 > size {
		return 0, 0, fmt.Errorf("%s range %d:%d out of bounds for size %d", axis, lo1, hi1, size)
	}
	return lo1 - 1, hi1, nil
}
