package dml

import (
	"fmt"
	"sync/atomic"

	"dmml/internal/la"
)

// FusionMode selects how fused regions execute — or whether fusion runs at
// all. It is the engine-level face of the la package's fused backends:
// "compile" lowers each region to specialized closure/flat kernels,
// "interp" keeps the per-op tile interpreter (the escape hatch when the
// compiled path is suspected), and "off" disables the fusion pass entirely
// so every intermediate materializes.
type FusionMode uint8

const (
	// FusionCompiled fuses regions and executes them through compiled
	// closure kernels (the default).
	FusionCompiled FusionMode = iota
	// FusionInterp fuses regions but pins them to the tile interpreter.
	FusionInterp
	// FusionOff skips the fusion pass; the plan materializes every
	// intermediate like the unfused baseline.
	FusionOff
)

func (m FusionMode) String() string {
	switch m {
	case FusionInterp:
		return "interp"
	case FusionOff:
		return "off"
	default:
		return "compile"
	}
}

// ParseFusionMode maps the -fuse flag values onto a FusionMode.
func ParseFusionMode(s string) (FusionMode, error) {
	switch s {
	case "compile", "compiled":
		return FusionCompiled, nil
	case "interp":
		return FusionInterp, nil
	case "off":
		return FusionOff, nil
	default:
		return FusionCompiled, fmt.Errorf("unknown fusion mode %q (want compile, interp, or off)", s)
	}
}

// defaultFusion is the process-wide mode Optimize uses when the caller does
// not pick one explicitly — how dmmlbench's -fuse flag reaches experiment
// code that calls plain Optimize.
var defaultFusion atomic.Uint32

// DefaultFusion returns the process-wide fusion mode (FusionCompiled unless
// SetDefaultFusion changed it).
func DefaultFusion() FusionMode { return FusionMode(defaultFusion.Load()) }

// SetDefaultFusion sets the mode plain Optimize calls use. Explicit
// OptimizeFusion callers are unaffected.
func SetDefaultFusion(m FusionMode) { defaultFusion.Store(uint32(m)) }

// OptimizeFusion is Optimize with an explicit fusion mode. FusionCompiled is
// exactly Optimize; FusionOff is exactly OptimizeUnfused; FusionInterp
// optimizes with fusion and then pins every region's micro-op program to the
// interpreter backend, so A/B runs differ only in how the fused loop body
// executes, not in what was fused.
func (p *Program) OptimizeFusion(vars map[string]Shape, mode FusionMode) *Program {
	if mode == FusionOff {
		return p.optimize(vars, false)
	}
	opt := p.optimize(vars, true)
	if mode == FusionInterp {
		opt.forEachFused(func(f *Fused) { f.Prog.SetBackend(la.FuseBackendInterp) })
	}
	return opt
}
