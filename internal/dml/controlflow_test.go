package dml

import (
	"math"
	"math/rand"
	"strings"
	"testing"

	"dmml/internal/la"
	"dmml/internal/workload"
)

func TestForLoopBasics(t *testing.T) {
	v, _ := run(t, `
s = 0
for (i in 1:10) {
  s = s + i
}
s`, Env{})
	if v.S != 55 {
		t.Fatalf("sum 1..10 = %v", v.S)
	}
}

func TestForLoopEmptyRange(t *testing.T) {
	// from > to: body never executes.
	v, _ := run(t, `
s = 42
for (i in 5:1) {
  s = 0
}
s`, Env{})
	if v.S != 42 {
		t.Fatalf("s = %v, want untouched 42", v.S)
	}
}

func TestNestedLoops(t *testing.T) {
	v, _ := run(t, `
s = 0
for (i in 1:3) {
  for (j in 1:4) {
    s = s + i * j
  }
}
s`, Env{})
	if v.S != 60 { // (1+2+3)*(1+2+3+4)
		t.Fatalf("nested sum = %v", v.S)
	}
}

func TestIfElse(t *testing.T) {
	cases := map[string]float64{
		"if (2 > 1) { 10 } else { 20 }": 10,
		"if (2 < 1) { 10 } else { 20 }": 20,
		"if (1 == 1) { 5 }":             5,
		"if (1 != 1) { 5 }\n7":          7,
		"if (3 >= 3) { 1 } else { 0 }":  1,
		"if (3 <= 2) { 1 } else { 0 }":  0,
		"x = 5\nif (x > 3) { x * 2 }":   10,
	}
	for src, want := range cases {
		v, _ := run(t, src, Env{})
		if v.S != want {
			t.Fatalf("%q = %v, want %v", src, v.S, want)
		}
	}
}

func TestComparisonAsValue(t *testing.T) {
	v, _ := run(t, "1 + 2 > 2", Env{}) // (1+2) > 2 → 1
	if v.S != 1 {
		t.Fatalf("comparison value = %v", v.S)
	}
}

func TestComparisonRejectsMatrix(t *testing.T) {
	p, err := Parse("A > 1")
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := p.Run(Env{"A": Matrix(la.NewDense(2, 2))}); err == nil {
		t.Fatal("want scalar-comparison error")
	}
}

// Gradient descent written entirely in DML converges like the Go
// implementation — the SystemML "declarative iterative ML" story.
func TestGradientDescentInDML(t *testing.T) {
	r := rand.New(rand.NewSource(300))
	x, yv, wTrue := workload.Regression(r, 500, 4, 0.01)
	y := la.NewDense(len(yv), 1)
	for i, v := range yv {
		y.Set(i, 0, v)
	}
	src := `
w = 0 * t(X) %*% y            # zero vector with the right shape
n = nrow(X)
for (it in 1:200) {
  g = t(X) %*% (X %*% w - y) / n
  w = w - 0.3 * g
}
w`
	env := Env{"X": Matrix(x), "y": Matrix(y)}
	v, _, err := mustParse(t, src).Run(env)
	if err != nil {
		t.Fatal(err)
	}
	for j := range wTrue {
		if math.Abs(v.M.At(j, 0)-wTrue[j]) > 0.02 {
			t.Fatalf("w[%d] = %v, true %v", j, v.M.At(j, 0), wTrue[j])
		}
	}
	// And the optimized program gets the same answer.
	opt := mustParse(t, src).Optimize(ShapesFromEnv(env))
	vOpt, _, err := opt.Run(Env{"X": Matrix(x), "y": Matrix(y)})
	if err != nil {
		t.Fatal(err)
	}
	if !vOpt.M.Equal(v.M, 1e-9) {
		t.Fatal("optimized loop changed the result")
	}
}

func mustParse(t *testing.T, src string) *Program {
	t.Helper()
	p, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestControlFlowParseErrors(t *testing.T) {
	for _, src := range []string{
		"for (i in 1:3) { s = 1", // unterminated block
		"for i in 1:3 { }",       // missing parens
		"for (i of 1:3) { }",     // wrong keyword
		"for (i in 1) { }",       // missing colon
		"if 1 { }",               // missing parens
		"if (1) 2",               // missing block
	} {
		if _, err := Parse(src); err == nil {
			t.Fatalf("Parse(%q) should fail", src)
		}
	}
}

func TestControlFlowRunErrors(t *testing.T) {
	a := la.NewDense(2, 2)
	for _, src := range []string{
		"for (i in A:3) { 1 }",         // matrix bound
		"if (A) { 1 }",                 // matrix condition
		"for (i in 1:100000000) { 1 }", // loop cap
	} {
		p := mustParse(t, src)
		if _, _, err := p.Run(Env{"A": Matrix(a)}); err == nil {
			t.Fatalf("Run(%q) should fail", src)
		}
	}
}

func TestControlFlowStringRoundTrip(t *testing.T) {
	src := `
s = 0
for (i in 1:3) {
  if (i > 1) {
    s = s + i
  } else {
    s = s - i
  }
}
s`
	p := mustParse(t, src)
	rendered := p.String()
	if !strings.Contains(rendered, "for (i in 1:3)") || !strings.Contains(rendered, "else {") {
		t.Fatalf("rendered = %s", rendered)
	}
	p2 := mustParse(t, rendered)
	v1, _, err := p.Run(Env{})
	if err != nil {
		t.Fatal(err)
	}
	v2, _, err := p2.Run(Env{})
	if err != nil {
		t.Fatal(err)
	}
	if v1.S != v2.S { // s = -1+2+3 = 4
		t.Fatalf("round trip changed semantics: %v vs %v", v1.S, v2.S)
	}
	if v1.S != 4 {
		t.Fatalf("s = %v, want 4", v1.S)
	}
}

// Rewrites still fire inside loop bodies (with the loop variable known to
// be a scalar).
func TestRewriteInsideLoopBody(t *testing.T) {
	p := mustParse(t, `
total = 0
for (i in 1:3) {
  total = total + sum(X ^ 2)
}
total`)
	opt := p.Optimize(map[string]Shape{"X": matShape(10, 5)})
	if !strings.Contains(opt.String(), "__sumsq") {
		t.Fatalf("loop body not rewritten:\n%s", opt)
	}
}

// A variable whose shape changes inside a conditional must not be used for
// chain reordering afterwards (conservative invalidation).
func TestShapeInvalidationAfterBranch(t *testing.T) {
	p := mustParse(t, `
if (flag > 0) {
  M = t(M)
}
M %*% M %*% v`)
	// With M's shape invalidated, the chain must be left untouched
	// (no DP reorder without shapes) — and still parse/render fine.
	opt := p.Optimize(map[string]Shape{"M": matShape(10, 10), "v": matShape(10, 1)})
	if opt.String() != p.String() {
		t.Fatalf("chain reordered despite unknown shapes:\n%s", opt)
	}
}

// LICM: t(X) inside a loop body is invariant and must be hoisted out; the
// hoisted program computes the same result with far fewer transpose cells.
func TestLICMHoistsInvariantTranspose(t *testing.T) {
	r := rand.New(rand.NewSource(301))
	x, yv, _ := workload.Regression(r, 400, 5, 0.01)
	y := la.NewDense(len(yv), 1)
	for i, v := range yv {
		y.Set(i, 0, v)
	}
	// Gram-form gradient descent: t(X)%*%X and t(X)%*%y are loop-invariant
	// products that a naive interpreter recomputes every iteration.
	src := `
w = 0 * t(X) %*% y
for (it in 1:20) {
  w = w - 0.002 * (t(X) %*% X %*% w - t(X) %*% y)
}
sum(w ^ 2)`
	env := func() Env { return Env{"X": Matrix(x), "y": Matrix(y)} }
	naiveProg := mustParse(t, src)
	optProg := mustParse(t, src).Optimize(ShapesFromEnv(env()))
	if !optProg.HasLICMTemp() {
		t.Fatalf("no LICM temp in optimized program:\n%s", optProg)
	}
	vN, statsN, err := naiveProg.Run(env())
	if err != nil {
		t.Fatal(err)
	}
	vO, statsO, err := optProg.Run(env())
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(vN.S-vO.S) > 1e-9*(1+math.Abs(vN.S)) {
		t.Fatalf("LICM changed result: %v vs %v", vN.S, vO.S)
	}
	if statsO.CellsAllocated >= statsN.CellsAllocated {
		t.Fatalf("LICM did not reduce allocation: %d vs %d",
			statsO.CellsAllocated, statsN.CellsAllocated)
	}
}

// LICM must NOT hoist expressions that read loop-modified state.
func TestLICMLeavesVariantCode(t *testing.T) {
	src := `
acc = eye(3)
for (i in 1:3) {
  acc = acc %*% acc
}
sum(acc)`
	p := mustParse(t, src)
	opt := p.Optimize(map[string]Shape{})
	if opt.HasLICMTemp() {
		t.Fatalf("variant expression hoisted:\n%s", opt)
	}
	// Semantics: acc squares thrice → identity stays identity, sum = 3.
	v, _, err := opt.Run(Env{})
	if err != nil {
		t.Fatal(err)
	}
	if v.S != 3 {
		t.Fatalf("sum = %v", v.S)
	}
}

// LICM must not hoist expressions referencing the loop variable.
func TestLICMRespectsLoopVariable(t *testing.T) {
	src := `
s = 0
for (i in 1:3) {
  s = s + sum(eye(2) * i)
}
s`
	p := mustParse(t, src)
	opt := p.Optimize(map[string]Shape{})
	// eye(2) alone is invariant and may hoist; eye(2)*i must not. Verify
	// semantics are preserved either way.
	v, _, err := opt.Run(Env{})
	if err != nil {
		t.Fatal(err)
	}
	if v.S != 12 { // 2*(1+2+3)
		t.Fatalf("s = %v, want 12", v.S)
	}
}

// Hoisting duplicated invariants creates a single shared temp.
func TestLICMDeduplicatesTemps(t *testing.T) {
	src := `
s = 0
for (i in 1:2) {
  s = s + sum(t(X)) + trace(t(X))
}
s`
	p := mustParse(t, src)
	opt := p.Optimize(map[string]Shape{"X": matShape(3, 3)})
	if strings.Count(opt.String(), licmTempPrefix+"1") < 2 || strings.Contains(opt.String(), licmTempPrefix+"2") {
		t.Fatalf("expected one shared temp:\n%s", opt)
	}
}
