package dml

import (
	"bufio"
	"encoding/csv"
	"errors"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
	"sync"

	"dmml/internal/la"
	"dmml/internal/ooc"
	"dmml/internal/storage"
)

// ReadConfig controls how the read() builtin materializes CSV inputs. With no
// configuration (or a nil Pool) every file parses into a dense in-memory
// matrix. When a buffer pool and byte budget are set, files whose on-disk
// size exceeds the budget stream into a block-paged out-of-core matrix
// instead: row blocks are CLA-compressed and live in the pool, spilling and
// re-pinning under its eviction policy, so resident memory stays bounded by
// the pool budget no matter how large the input is.
type ReadConfig struct {
	// Pool backs out-of-core matrices. nil disables paging entirely.
	Pool *storage.BufferPool
	// Budget is the dense-size threshold in bytes: inputs whose file size
	// exceeds it go out-of-core. <=0 disables paging.
	Budget int64
	// BlockRows is the rows-per-block granularity (0 = ooc default).
	BlockRows int
	// Prefetch enables the async block prefetcher on matrices read here.
	Prefetch bool
}

var (
	readMu  sync.Mutex
	readCfg ReadConfig
)

// SetReadConfig installs the process-wide policy for the read() builtin.
// Callers own the pool's lifetime: matrices read out-of-core keep their
// pages in the pool until the pool itself is discarded.
func SetReadConfig(cfg ReadConfig) {
	readMu.Lock()
	readCfg = cfg
	readMu.Unlock()
}

func currentReadConfig() ReadConfig {
	readMu.Lock()
	defer readMu.Unlock()
	return readCfg
}

// readMatrix loads a CSV file for the read() builtin, choosing dense or
// block-paged representation by comparing the file size against the
// configured budget. File size is the paging trigger (not parsed dense size)
// so the decision costs one stat and no I/O; a text float averages close to
// 8 bytes, making the two sizes the same order of magnitude.
func readMatrix(path string) (Value, error) {
	cfg := currentReadConfig()
	fi, err := os.Stat(path)
	if err != nil {
		return Value{}, err
	}
	if fi.IsDir() {
		return Value{}, fmt.Errorf("%s is a directory", path)
	}
	if cfg.Pool != nil && cfg.Budget > 0 && fi.Size() > cfg.Budget {
		m, err := ooc.ReadCSVFile(cfg.Pool, path, ooc.Options{
			BlockRows: cfg.BlockRows,
			Prefetch:  cfg.Prefetch,
		})
		if err != nil {
			return Value{}, err
		}
		return OOC(m), nil
	}
	m, err := readDenseCSV(path)
	if err != nil {
		return Value{}, err
	}
	return Matrix(m), nil
}

// readDenseCSV parses a whole CSV file of float64 cells into a dense matrix.
func readDenseCSV(path string) (*la.Dense, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	rd := csv.NewReader(bufio.NewReaderSize(f, 1<<16))
	rd.ReuseRecord = true
	var data []float64
	rows, cols := 0, 0
	for {
		rec, err := rd.Read()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			return nil, err
		}
		if cols == 0 {
			cols = len(rec)
		} else if len(rec) != cols {
			return nil, fmt.Errorf("row %d has %d fields, want %d", rows+1, len(rec), cols)
		}
		for j, field := range rec {
			v, err := strconv.ParseFloat(strings.TrimSpace(field), 64)
			if err != nil {
				return nil, fmt.Errorf("row %d field %d: %w", rows+1, j+1, err)
			}
			data = append(data, v)
		}
		rows++
	}
	if rows == 0 {
		return nil, fmt.Errorf("empty CSV input")
	}
	return la.NewDenseData(rows, cols, data)
}
