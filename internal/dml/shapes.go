package dml

import (
	"fmt"
	"math"
)

// Shape describes an expression's dimensions when statically known. It is
// the coarse, fully-known-or-nothing view used by the public Optimize API;
// the analyzer works on the richer AbsShape lattice below and converts.
type Shape struct {
	Rows, Cols int
	Scalar     bool
	Known      bool
}

func scalarShape() Shape       { return Shape{Scalar: true, Known: true} }
func matShape(r, c int) Shape  { return Shape{Rows: r, Cols: c, Known: true} }
func unknownShape() Shape      { return Shape{} }
func (s Shape) isMatrix() bool { return s.Known && !s.Scalar }

// ShapesFromEnv derives static shapes from runtime bindings.
func ShapesFromEnv(env Env) map[string]Shape {
	out := make(map[string]Shape, len(env))
	for name, v := range env {
		switch {
		case v.IsScalar:
			out[name] = scalarShape()
		case v.O != nil:
			out[name] = matShape(v.O.Rows(), v.O.Cols())
		default:
			r, c := v.M.Dims()
			out[name] = matShape(r, c)
		}
	}
	return out
}

// ShapeKind is the top level of the abstract shape lattice.
type ShapeKind uint8

const (
	// ShapeTop is the lattice top: scalar or matrix, nothing known.
	ShapeTop ShapeKind = iota
	// ShapeScalar is a scalar, optionally with a known constant value.
	ShapeScalar
	// ShapeMatrix is a matrix; each dimension is known or DimUnknown.
	ShapeMatrix
	// ShapeString is a string literal — only legal as the argument of read().
	ShapeString
)

// DimUnknown marks a matrix dimension the analyzer could not pin down.
const DimUnknown = -1

// AbsShape is one value of the analyzer's abstract domain:
//
//	⊤ (unknown) ⊒ scalar ⊒ scalar(c)        — constants propagate
//	⊤ (unknown) ⊒ matrix(?×?) ⊒ matrix(r×c) — per-dimension precision
//
// Constant scalars power size inference through eye(n), nrow/ncol results,
// index spans, loop trip counts, and branch reachability.
type AbsShape struct {
	Kind       ShapeKind
	Rows, Cols int // meaningful only for ShapeMatrix; DimUnknown if unknown
	constVal   *float64
}

func topAbs() AbsShape    { return AbsShape{Kind: ShapeTop} }
func scalarAbs() AbsShape { return AbsShape{Kind: ShapeScalar} }
func constAbs(v float64) AbsShape {
	return AbsShape{Kind: ShapeScalar, constVal: &v}
}
func matrixAbs(r, c int) AbsShape {
	return AbsShape{Kind: ShapeMatrix, Rows: r, Cols: c}
}
func stringAbs() AbsShape { return AbsShape{Kind: ShapeString} }

// IsScalar reports whether the value is definitely a scalar.
func (a AbsShape) IsScalar() bool { return a.Kind == ShapeScalar }

// IsMatrix reports whether the value is definitely a matrix.
func (a AbsShape) IsMatrix() bool { return a.Kind == ShapeMatrix }

// DimsKnown reports whether the value is a matrix with both dims known.
func (a AbsShape) DimsKnown() bool {
	return a.Kind == ShapeMatrix && a.Rows != DimUnknown && a.Cols != DimUnknown
}

// Const returns the known constant value of a scalar, if any.
func (a AbsShape) Const() (float64, bool) {
	if a.constVal == nil {
		return 0, false
	}
	return *a.constVal, true
}

// String implements fmt.Stringer: "scalar", "scalar(3)", "matrix(4x?)", "?".
func (a AbsShape) String() string {
	switch a.Kind {
	case ShapeScalar:
		if a.constVal != nil {
			return fmt.Sprintf("scalar(%g)", *a.constVal)
		}
		return "scalar"
	case ShapeString:
		return "string"
	case ShapeMatrix:
		dim := func(d int) string {
			if d == DimUnknown {
				return "?"
			}
			return fmt.Sprintf("%d", d)
		}
		return fmt.Sprintf("matrix(%sx%s)", dim(a.Rows), dim(a.Cols))
	default:
		return "?"
	}
}

// join computes the least upper bound of two abstract shapes (used at
// control-flow merge points and loop fixpoints).
func (a AbsShape) join(b AbsShape) AbsShape {
	if a.Kind != b.Kind {
		return topAbs()
	}
	switch a.Kind {
	case ShapeScalar:
		if a.constVal != nil && b.constVal != nil && *a.constVal == *b.constVal {
			return a
		}
		return scalarAbs()
	case ShapeMatrix:
		return matrixAbs(joinDim(a.Rows, b.Rows), joinDim(a.Cols, b.Cols))
	default:
		return topAbs()
	}
}

func joinDim(x, y int) int {
	if x == y {
		return x
	}
	return DimUnknown
}

func (a AbsShape) equal(b AbsShape) bool {
	if a.Kind != b.Kind || a.Rows != b.Rows || a.Cols != b.Cols {
		return false
	}
	if (a.constVal == nil) != (b.constVal == nil) {
		return false
	}
	return a.constVal == nil || *a.constVal == *b.constVal
}

// shape converts to the coarse public Shape (fully known or nothing).
func (a AbsShape) shape() Shape {
	switch {
	case a.Kind == ShapeScalar:
		return scalarShape()
	case a.DimsKnown():
		return matShape(a.Rows, a.Cols)
	default:
		return unknownShape()
	}
}

// absFromShape lifts the coarse public Shape into the abstract domain.
func absFromShape(s Shape) AbsShape {
	switch {
	case !s.Known:
		return topAbs()
	case s.Scalar:
		return scalarAbs()
	default:
		return matrixAbs(s.Rows, s.Cols)
	}
}

// binding pairs an abstract shape with path-sensitivity: definite means the
// variable is assigned on every path reaching this program point.
type binding struct {
	shape    AbsShape
	definite bool
}

// absEnv is the abstract store: every variable that MAY be defined here.
type absEnv map[string]binding

func (e absEnv) clone() absEnv {
	out := make(absEnv, len(e))
	for k, v := range e {
		out[k] = v
	}
	return out
}

// joinEnv merges the stores of two control-flow paths: shapes join, and a
// variable stays definite only if both paths define it.
func joinEnv(a, b absEnv) absEnv {
	out := make(absEnv, len(a))
	for k, va := range a {
		if vb, ok := b[k]; ok {
			out[k] = binding{shape: va.shape.join(vb.shape), definite: va.definite && vb.definite}
		} else {
			out[k] = binding{shape: va.shape, definite: false}
		}
	}
	for k, vb := range b {
		if _, ok := a[k]; !ok {
			out[k] = binding{shape: vb.shape, definite: false}
		}
	}
	return out
}

func envEqual(a, b absEnv) bool {
	if len(a) != len(b) {
		return false
	}
	for k, va := range a {
		vb, ok := b[k]
		if !ok || va.definite != vb.definite || !va.shape.equal(vb.shape) {
			return false
		}
	}
	return true
}

// shapeHooks customizes inferAbs for the analyzer: report receives
// diagnostics (errors fire only when the evaluator is guaranteed to reject),
// and missing resolves variables absent from the environment. A nil hooks
// pointer (the rewriter's mode) infers silently and treats unknowns as ⊤.
type shapeHooks struct {
	report  func(pos int, sev Severity, code, msg string)
	missing func(name string, pos int) AbsShape
}

func (h *shapeHooks) say(pos int, sev Severity, code, msg string) {
	if h != nil && h.report != nil {
		h.report(pos, sev, code, msg)
	}
}

// inferAbs abstractly interprets an expression over env. It is the single
// shape/type inference engine shared by the analyzer (h non-nil: diagnostics
// on) and the rewrite engine (h nil: silent, used for size-aware rewrites
// such as matrix-chain reordering).
func inferAbs(n Node, env absEnv, h *shapeHooks) AbsShape {
	switch t := n.(type) {
	case *NumLit:
		return constAbs(t.Val)
	case *StrLit:
		return stringAbs()
	case *Var:
		b, ok := env[t.Name]
		if !ok {
			if h != nil && h.missing != nil {
				return h.missing(t.Name, t.Pos)
			}
			return topAbs()
		}
		if !b.definite {
			h.say(t.Pos, SevWarning, CodeMaybeUndefined,
				fmt.Sprintf("variable %q may be undefined: it is assigned on some but not all paths", t.Name))
		}
		return b.shape
	case *Unary:
		s := inferAbs(t.X, env, h)
		if v, ok := s.Const(); ok {
			return constAbs(-v)
		}
		return s
	case *BinOp:
		return inferBinOp(t, env, h)
	case *Call:
		return inferCall(t, env, h)
	case *Index:
		return inferIndex(t, env, h)
	case *Fused:
		// A fused region has exactly the shape of the expression it replaced.
		return inferAbs(t.Body, env, h)
	}
	return topAbs()
}

func inferBinOp(t *BinOp, env absEnv, h *shapeHooks) AbsShape {
	l := inferAbs(t.Left, env, h)
	r := inferAbs(t.Right, env, h)
	if l.Kind == ShapeString || r.Kind == ShapeString {
		h.say(t.Pos, SevError, CodeTypeMismatch,
			"strings are only valid as the argument of read()")
		return topAbs()
	}
	if compareOps[t.Op] {
		if l.IsMatrix() || r.IsMatrix() {
			h.say(t.Pos, SevError, CodeTypeMismatch,
				fmt.Sprintf("comparison %s needs scalar operands", t.Op))
		}
		if lv, ok := l.Const(); ok {
			if rv, ok := r.Const(); ok {
				return constAbs(boolToFloat(compare(t.Op, lv, rv)))
			}
		}
		return scalarAbs()
	}
	if t.Op == "%*%" {
		if l.IsScalar() || r.IsScalar() {
			h.say(t.Pos, SevError, CodeTypeMismatch, "%*% needs matrices on both sides")
			return topAbs()
		}
		rows, cols := DimUnknown, DimUnknown
		if l.IsMatrix() {
			rows = l.Rows
		}
		if r.IsMatrix() {
			cols = r.Cols
		}
		if l.IsMatrix() && r.IsMatrix() && l.Cols != DimUnknown && r.Rows != DimUnknown && l.Cols != r.Rows {
			h.say(t.Pos, SevError, CodeDimMismatch,
				fmt.Sprintf("%%*%% on %dx%d and %dx%d: inner dimensions %d and %d differ",
					l.Rows, l.Cols, r.Rows, r.Cols, l.Cols, r.Rows))
		}
		return matrixAbs(rows, cols)
	}
	// Element-wise arithmetic with scalar broadcast.
	switch {
	case l.IsScalar() && r.IsScalar():
		if lv, ok := l.Const(); ok {
			if rv, ok := r.Const(); ok {
				return constAbs(applyArith(t.Op, lv, rv))
			}
		}
		return scalarAbs()
	case l.IsMatrix() && r.IsMatrix():
		if l.Rows != DimUnknown && r.Rows != DimUnknown && l.Rows != r.Rows ||
			l.Cols != DimUnknown && r.Cols != DimUnknown && l.Cols != r.Cols {
			h.say(t.Pos, SevError, CodeDimMismatch,
				fmt.Sprintf("element-wise %s on %s and %s", t.Op, l, r))
		}
		return matrixAbs(joinKnownDim(l.Rows, r.Rows), joinKnownDim(l.Cols, r.Cols))
	case l.IsMatrix():
		// Right side is scalar or unknown; if it is a matrix it must match
		// the left, so the result shape is the left's either way.
		return l
	case r.IsMatrix():
		return r
	case l.IsScalar():
		// scalar op ⊤: result has the ⊤ side's kind — unknown.
		return topAbs()
	default:
		return topAbs()
	}
}

// joinKnownDim prefers whichever dimension is known (they must agree when
// both are, or a diagnostic has already fired).
func joinKnownDim(x, y int) int {
	if x == DimUnknown {
		return y
	}
	return x
}

func applyArith(op string, a, b float64) float64 {
	switch op {
	case "+":
		return a + b
	case "-":
		return a - b
	case "*":
		return a * b
	case "/":
		return a / b
	default: // "^"
		return math.Pow(a, b)
	}
}

func inferCall(t *Call, env absEnv, h *shapeHooks) AbsShape {
	want, known := builtins[t.Fn]
	if !known {
		h.say(t.Pos, SevError, CodeBadArity, fmt.Sprintf("unknown function %q", t.Fn))
		return topAbs()
	}
	if want >= 0 && len(t.Args) != want {
		h.say(t.Pos, SevError, CodeBadArity,
			fmt.Sprintf("%s expects %d argument(s), got %d", t.Fn, want, len(t.Args)))
		return topAbs()
	}
	args := make([]AbsShape, len(t.Args))
	for i, a := range t.Args {
		args[i] = inferAbs(a, env, h)
	}
	// needMatrix mirrors the evaluator: a definitely-scalar argument to a
	// matrix-only builtin always fails at runtime.
	needMatrix := func(i int) {
		if args[i].IsScalar() {
			h.say(t.Args[i].pos(), SevError, CodeTypeMismatch,
				fmt.Sprintf("%s: argument %d must be a matrix", t.Fn, i+1))
		}
	}
	switch t.Fn {
	case "read":
		if args[0].Kind != ShapeString {
			h.say(t.Args[0].pos(), SevError, CodeTypeMismatch,
				"read: argument must be a string literal path")
		}
		// Dimensions come from the file at runtime.
		return matrixAbs(DimUnknown, DimUnknown)
	case "t":
		needMatrix(0)
		if args[0].IsMatrix() {
			return matrixAbs(args[0].Cols, args[0].Rows)
		}
		return matrixAbs(DimUnknown, DimUnknown)
	case "sum", "mean", "min", "max", "__sumsq":
		return scalarAbs()
	case "trace":
		needMatrix(0)
		if args[0].DimsKnown() && args[0].Rows != args[0].Cols {
			h.say(t.Pos, SevError, CodeBadArg,
				fmt.Sprintf("trace of non-square %dx%d", args[0].Rows, args[0].Cols))
		}
		return scalarAbs()
	case "__tracemm":
		needMatrix(0)
		needMatrix(1)
		a, b := args[0], args[1]
		if a.DimsKnown() && b.DimsKnown() && (a.Cols != b.Rows || a.Rows != b.Cols) {
			h.say(t.Pos, SevError, CodeDimMismatch,
				fmt.Sprintf("trace(A %%*%% B) on %dx%d and %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
		}
		return scalarAbs()
	case "nrow", "ncol":
		needMatrix(0)
		if args[0].IsMatrix() {
			d := args[0].Rows
			if t.Fn == "ncol" {
				d = args[0].Cols
			}
			if d != DimUnknown {
				return constAbs(float64(d))
			}
		}
		return scalarAbs()
	case "rowSums":
		needMatrix(0)
		if args[0].IsMatrix() {
			return matrixAbs(args[0].Rows, 1)
		}
		return matrixAbs(DimUnknown, 1)
	case "colSums":
		needMatrix(0)
		if args[0].IsMatrix() {
			return matrixAbs(1, args[0].Cols)
		}
		return matrixAbs(1, DimUnknown)
	case "exp", "log", "sqrt", "abs", "sigmoid":
		switch args[0].Kind {
		case ShapeScalar:
			return scalarAbs()
		case ShapeMatrix:
			return args[0]
		default:
			return topAbs()
		}
	case "eye":
		if args[0].IsMatrix() {
			h.say(t.Args[0].pos(), SevError, CodeTypeMismatch, "eye: argument must be a scalar")
			return matrixAbs(DimUnknown, DimUnknown)
		}
		if v, ok := args[0].Const(); ok {
			k := int(v)
			if k < 1 || float64(k) != v {
				h.say(t.Args[0].pos(), SevError, CodeBadArg,
					fmt.Sprintf("eye: need a positive integer, got %g", v))
				return matrixAbs(DimUnknown, DimUnknown)
			}
			return matrixAbs(k, k)
		}
		return matrixAbs(DimUnknown, DimUnknown)
	case "solve":
		needMatrix(0)
		needMatrix(1)
		a, b := args[0], args[1]
		if a.DimsKnown() && a.Rows != a.Cols {
			h.say(t.Args[0].pos(), SevError, CodeBadArg,
				fmt.Sprintf("solve: coefficient matrix is %dx%d, want square", a.Rows, a.Cols))
		}
		if b.IsMatrix() && b.Cols != DimUnknown && b.Cols != 1 {
			h.say(t.Args[1].pos(), SevError, CodeDimMismatch,
				fmt.Sprintf("solve: rhs has %d columns, want 1", b.Cols))
		}
		if a.IsMatrix() && b.IsMatrix() && a.Rows != DimUnknown && b.Rows != DimUnknown && a.Rows != b.Rows {
			h.say(t.Args[1].pos(), SevError, CodeDimMismatch,
				fmt.Sprintf("solve: coefficient matrix has %d rows but rhs has %d", a.Rows, b.Rows))
		}
		if a.IsMatrix() {
			return matrixAbs(a.Cols, 1)
		}
		return matrixAbs(DimUnknown, 1)
	case "cbind", "rbind":
		needMatrix(0)
		needMatrix(1)
		a, b := args[0], args[1]
		if !a.IsMatrix() || !b.IsMatrix() {
			return matrixAbs(DimUnknown, DimUnknown)
		}
		if t.Fn == "cbind" {
			if a.Rows != DimUnknown && b.Rows != DimUnknown && a.Rows != b.Rows {
				h.say(t.Pos, SevError, CodeDimMismatch,
					fmt.Sprintf("cbind: row counts %d and %d differ", a.Rows, b.Rows))
			}
			return matrixAbs(joinKnownDim(a.Rows, b.Rows), addDims(a.Cols, b.Cols))
		}
		if a.Cols != DimUnknown && b.Cols != DimUnknown && a.Cols != b.Cols {
			h.say(t.Pos, SevError, CodeDimMismatch,
				fmt.Sprintf("rbind: column counts %d and %d differ", a.Cols, b.Cols))
		}
		return matrixAbs(addDims(a.Rows, b.Rows), joinKnownDim(a.Cols, b.Cols))
	}
	return topAbs()
}

func addDims(x, y int) int {
	if x == DimUnknown || y == DimUnknown {
		return DimUnknown
	}
	return x + y
}

func inferIndex(t *Index, env absEnv, h *shapeHooks) AbsShape {
	base := inferAbs(t.X, env, h)
	if base.IsScalar() {
		h.say(t.Pos, SevError, CodeTypeMismatch, "cannot index a scalar")
		return topAbs()
	}
	baseRows, baseCols := DimUnknown, DimUnknown
	if base.IsMatrix() {
		baseRows, baseCols = base.Rows, base.Cols
	}
	rowSpan := inferSpan(t.Row, baseRows, "row", env, h)
	colSpan := inferSpan(t.Col, baseCols, "column", env, h)
	switch {
	case rowSpan == 1 && colSpan == 1:
		return scalarAbs()
	case rowSpan > 1 || colSpan > 1:
		r, c := DimUnknown, DimUnknown
		if rowSpan > 0 {
			r = rowSpan
		}
		if colSpan > 0 {
			c = colSpan
		}
		return matrixAbs(r, c)
	default:
		// Spans unknown: a 1x1 selection would yield a scalar, so the result
		// kind itself is unknown.
		return topAbs()
	}
}

// inferSpan computes the static width of one index axis (DimUnknown if not
// derivable) and reports indices that are certain to fail at runtime.
func inferSpan(spec *IndexSpec, axisSize int, axis string, env absEnv, h *shapeHooks) int {
	if spec.All {
		return axisSize
	}
	checkBound := func(n Node) (int, bool) {
		s := inferAbs(n, env, h)
		if s.IsMatrix() {
			h.say(n.pos(), SevError, CodeTypeMismatch,
				fmt.Sprintf("%s index must be a scalar", axis))
			return 0, false
		}
		v, ok := s.Const()
		if !ok {
			return 0, false
		}
		if float64(int(v)) != v {
			h.say(n.pos(), SevError, CodeBadArg,
				fmt.Sprintf("%s index %g is not an integer", axis, v))
			return 0, false
		}
		return int(v), true
	}
	lo, loOK := checkBound(spec.Lo)
	hi, hiOK := lo, loOK
	if spec.Hi != nil {
		hi, hiOK = checkBound(spec.Hi)
	}
	if !loOK || !hiOK {
		return DimUnknown
	}
	if lo < 1 || hi < lo || (axisSize != DimUnknown && hi > axisSize) {
		h.say(spec.Lo.pos(), SevError, CodeBadArg,
			fmt.Sprintf("%s range %d:%d out of bounds for size %s", axis, lo, hi, sizeString(axisSize)))
		return DimUnknown
	}
	return hi - lo + 1
}

func sizeString(d int) string {
	if d == DimUnknown {
		return "?"
	}
	return fmt.Sprintf("%d", d)
}

// inferShape computes the coarse static shape of n given variable shapes —
// the legacy entry point, now backed by the abstract interpreter.
func inferShape(n Node, vars map[string]Shape) Shape {
	env := make(absEnv, len(vars))
	for k, s := range vars {
		env[k] = binding{shape: absFromShape(s), definite: true}
	}
	return inferAbs(n, env, nil).shape()
}
