// Package dml implements a small declarative ML language in the style of
// SystemML's DML, which the paper surveys as the "ML systems from the ground
// up" approach: an R-like matrix expression language compiled through an
// algebraic rewrite engine (matrix-chain reordering, aggregate fusion such
// as sum(X^2), trace(A %*% B) contraction, constant folding, common-
// subexpression elimination) and executed on the la substrate.
//
// A program is a sequence of assignments and expressions:
//
//	G = t(X) %*% X + lambda * eye(ncol(X))
//	w = solve(G, t(X) %*% y)
//	mse = sum((X %*% w - y)^2) / nrow(X)
//
// Supported: + - * / ^ (element-wise; scalars broadcast), %*% (matrix
// product), t(), unary minus, scalar comparisons (< > <= >= == !=), counted
// loops `for (i in 1:n) { … }`, conditionals `if (cond) { … } else { … }`,
// R-style right indexing `X[i, j]` / `X[a:b, ]` (1-based, inclusive), and
// the builtins sum, mean, min, max, trace, nrow, ncol, rowSums, colSums,
// exp, log, sqrt, abs, sigmoid, eye, solve, cbind, rbind.
package dml

import (
	"fmt"
	"strconv"
	"strings"
)

// Node is an expression AST node.
type Node interface {
	fmt.Stringer
	// pos returns the source position for error messages.
	pos() int
}

// NumLit is a numeric literal.
type NumLit struct {
	Val float64
	Pos int
}

// StrLit is a double-quoted string literal. Strings exist only as arguments
// to read(); anywhere else the analyzer rejects them.
type StrLit struct {
	Val string
	Pos int
}

// Var is an identifier reference.
type Var struct {
	Name string
	Pos  int
}

// BinOp is a binary operation. Op is one of "+", "-", "*", "/", "^", "%*%".
type BinOp struct {
	Op          string
	Left, Right Node
	Pos         int
}

// Unary is unary negation.
type Unary struct {
	X   Node
	Pos int
}

// Call is a builtin function application.
type Call struct {
	Fn   string
	Args []Node
	Pos  int
}

func (n *NumLit) pos() int { return n.Pos }
func (n *StrLit) pos() int { return n.Pos }
func (n *Var) pos() int    { return n.Pos }
func (n *BinOp) pos() int  { return n.Pos }
func (n *Unary) pos() int  { return n.Pos }
func (n *Call) pos() int   { return n.Pos }

// String implements fmt.Stringer.
func (n *NumLit) String() string { return strconv.FormatFloat(n.Val, 'g', -1, 64) }

// String implements fmt.Stringer.
func (n *StrLit) String() string { return strconv.Quote(n.Val) }

// String implements fmt.Stringer.
func (n *Var) String() string { return n.Name }

// String implements fmt.Stringer.
func (n *BinOp) String() string {
	return fmt.Sprintf("(%s %s %s)", n.Left, n.Op, n.Right)
}

// String implements fmt.Stringer.
func (n *Unary) String() string { return fmt.Sprintf("(-%s)", n.X) }

// String implements fmt.Stringer.
func (n *Call) String() string {
	parts := make([]string, len(n.Args))
	for i, a := range n.Args {
		parts[i] = a.String()
	}
	return fmt.Sprintf("%s(%s)", n.Fn, strings.Join(parts, ", "))
}

// Stmt is one program statement: an assignment (Name non-empty), a bare
// expression, or a control-flow construct (exactly one of For/If non-nil).
type Stmt struct {
	Name string // "" for bare expressions
	Expr Node
	For  *ForStmt
	If   *IfStmt
	Pos  int // byte offset of the statement's first token
}

// ForStmt is a counted loop: `for (v in from:to) { body }`. Bounds evaluate
// to scalars; the loop variable is visible to the body (and after the loop,
// matching R semantics).
type ForStmt struct {
	Var      string
	From, To Node
	Body     []Stmt
}

// IfStmt branches on a scalar condition: non-zero takes Then, zero Else.
type IfStmt struct {
	Cond Node
	Then []Stmt
	Else []Stmt // may be nil
}

// String implements fmt.Stringer.
func (s Stmt) String() string {
	switch {
	case s.For != nil:
		return fmt.Sprintf("for (%s in %s:%s) {\n%s\n}", s.For.Var, s.For.From, s.For.To, indentStmts(s.For.Body))
	case s.If != nil:
		out := fmt.Sprintf("if (%s) {\n%s\n}", s.If.Cond, indentStmts(s.If.Then))
		if len(s.If.Else) > 0 {
			out += fmt.Sprintf(" else {\n%s\n}", indentStmts(s.If.Else))
		}
		return out
	case s.Name == "":
		return s.Expr.String()
	default:
		return fmt.Sprintf("%s = %s", s.Name, s.Expr)
	}
}

func indentStmts(stmts []Stmt) string {
	lines := make([]string, 0, len(stmts))
	for _, st := range stmts {
		for _, line := range strings.Split(st.String(), "\n") {
			lines = append(lines, "  "+line)
		}
	}
	return strings.Join(lines, "\n")
}

// Program is a parsed (and possibly rewritten) statement list. Src holds the
// original source text when the program came from Parse, so analyzer and
// evaluator diagnostics can report line:col positions.
type Program struct {
	Stmts []Stmt
	Src   string
}

// String renders the program source-like, one statement per line.
func (p *Program) String() string {
	lines := make([]string, len(p.Stmts))
	for i, s := range p.Stmts {
		lines[i] = s.String()
	}
	return strings.Join(lines, "\n")
}

// builtins maps function names to their arity (-1 = unchecked).
var builtins = map[string]int{
	"t": 1, "sum": 1, "mean": 1, "min": 1, "max": 1, "trace": 1,
	"nrow": 1, "ncol": 1, "rowSums": 1, "colSums": 1,
	"exp": 1, "log": 1, "sqrt": 1, "abs": 1, "sigmoid": 1,
	"eye": 1, "solve": 2, "cbind": 2, "rbind": 2, "read": 1,
	// Internal fused operators produced by the rewriter; they are not
	// parseable from source but render in String output.
	"__sumsq": 1, "__tracemm": 2,
}

// IndexSpec selects along one axis of a right-indexing expression: the whole
// axis (All), a single 1-based position (Lo only), or an inclusive 1-based
// range Lo:Hi.
type IndexSpec struct {
	All    bool
	Lo, Hi Node // Hi nil = single position
}

// String renders the spec as it appears between brackets.
func (s *IndexSpec) String() string {
	if s.All {
		return ""
	}
	if s.Hi == nil {
		return s.Lo.String()
	}
	return fmt.Sprintf("%s:%s", s.Lo, s.Hi)
}

// Index is R-style right indexing: X[rows, cols]. Selecting a single row
// AND a single column yields a scalar; otherwise a sub-matrix.
type Index struct {
	X        Node
	Row, Col *IndexSpec
	Pos      int
}

func (n *Index) pos() int { return n.Pos }

// String implements fmt.Stringer.
func (n *Index) String() string {
	return fmt.Sprintf("%s[%s, %s]", n.X, n.Row, n.Col)
}
