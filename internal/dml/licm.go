package dml

import (
	"fmt"
	"strings"
)

// Loop-invariant code motion: expensive subexpressions inside a loop body
// whose free variables are untouched by the loop are hoisted into temporary
// assignments before the loop, so they evaluate once instead of per
// iteration — SystemML's classic rewrite for iterative scripts like
//
//	for (i in 1:k) { w = w - a * t(X) %*% (X %*% w - y) }
//
// where t(X) is invariant (and, with CSE off across statements, would
// otherwise re-materialize every iteration).
//
// Hoisting is speculative: a hoisted expression evaluates even when the loop
// body would have run zero times. Expressions are pure, so this only costs
// wasted work — except that a hoisted expression which would error (e.g. a
// singular solve) now errors unconditionally. This matches SystemML's
// semantics for its own code motion.

// licmTempPrefix names generated temporaries; the lexer accepts leading
// underscores so hoisted programs still render/parse.
const licmTempPrefix = "__licm"

// applyLICM rewrites a statement list, hoisting invariant subexpressions out
// of every loop (recursively). counter numbers the generated temporaries.
func applyLICM(stmts []Stmt, counter *int) []Stmt {
	var out []Stmt
	for _, stmt := range stmts {
		switch {
		case stmt.For != nil:
			body := applyLICM(stmt.For.Body, counter)
			assigned := map[string]bool{stmt.For.Var: true}
			collectAssigned(body, assigned)
			var prelude []Stmt
			hoisted := map[string]string{} // expr string -> temp name
			for i := range body {
				if body[i].Expr != nil {
					body[i].Expr = hoistNode(body[i].Expr, assigned, hoisted, &prelude, counter, true)
				}
				// Loop bounds of nested loops were already handled by the
				// recursive applyLICM call; conditions of nested ifs too.
			}
			out = append(out, prelude...)
			out = append(out, Stmt{For: &ForStmt{
				Var: stmt.For.Var, From: stmt.For.From, To: stmt.For.To, Body: body,
			}, Pos: stmt.Pos})
		case stmt.If != nil:
			out = append(out, Stmt{If: &IfStmt{
				Cond: stmt.If.Cond,
				Then: applyLICM(stmt.If.Then, counter),
				Else: applyLICM(stmt.If.Else, counter),
			}, Pos: stmt.Pos})
		default:
			out = append(out, stmt)
		}
	}
	return out
}

// collectAssigned records every variable assigned in the statement list.
func collectAssigned(stmts []Stmt, into map[string]bool) {
	for _, stmt := range stmts {
		switch {
		case stmt.For != nil:
			into[stmt.For.Var] = true
			collectAssigned(stmt.For.Body, into)
		case stmt.If != nil:
			collectAssigned(stmt.If.Then, into)
			collectAssigned(stmt.If.Else, into)
		case stmt.Name != "":
			into[stmt.Name] = true
		}
	}
}

// freeVars collects variable references in an expression.
func freeVars(n Node, into map[string]bool) {
	switch t := n.(type) {
	case *Var:
		into[t.Name] = true
	case *Unary:
		freeVars(t.X, into)
	case *BinOp:
		freeVars(t.Left, into)
		freeVars(t.Right, into)
	case *Call:
		for _, a := range t.Args {
			freeVars(a, into)
		}
	case *Fused:
		// Body subsumes Inputs and Vec: both are subtrees of the original
		// expression.
		freeVars(t.Body, into)
	case *Index:
		freeVars(t.X, into)
		if !t.Row.All {
			freeVars(t.Row.Lo, into)
			if t.Row.Hi != nil {
				freeVars(t.Row.Hi, into)
			}
		}
		if !t.Col.All {
			freeVars(t.Col.Lo, into)
			if t.Col.Hi != nil {
				freeVars(t.Col.Hi, into)
			}
		}
	}
}

// isInvariant reports whether every free variable of n escapes the loop's
// assigned set.
func isInvariant(n Node, assigned map[string]bool) bool {
	fv := map[string]bool{}
	freeVars(n, fv)
	for v := range fv {
		if assigned[v] {
			return false
		}
	}
	return true
}

// worthHoisting limits motion to expressions that cost real work per
// iteration: matrix products, solves, transposes, and the aggregate calls.
func worthHoisting(n Node) bool {
	switch t := n.(type) {
	case *BinOp:
		return t.Op == "%*%"
	case *Call:
		switch t.Fn {
		case "t", "solve", "eye", "__tracemm":
			return true
		}
	}
	return false
}

// hoistNode walks an expression; maximal invariant + worthwhile subtrees are
// replaced by temp variables whose defining assignments accumulate in
// prelude. top marks the statement root (never replaced wholesale, so the
// statement keeps its own assignment semantics). A t() call that is the
// left operand of %*% is deliberately left in place: the evaluator fuses
// that pattern (Gram / transpose-free products), which beats hoisting a
// materialized transpose.
func hoistNode(n Node, assigned map[string]bool, hoisted map[string]string, prelude *[]Stmt, counter *int, top bool) Node {
	return hoistNodeCtx(n, assigned, hoisted, prelude, counter, top, false)
}

func hoistNodeCtx(n Node, assigned map[string]bool, hoisted map[string]string, prelude *[]Stmt, counter *int, top, fusedT bool) Node {
	if c, ok := n.(*Call); ok && c.Fn == "t" && fusedT {
		// Keep the transpose for the fused physical operator; still hoist
		// inside its argument.
		return &Call{Fn: "t", Args: []Node{
			hoistNodeCtx(c.Args[0], assigned, hoisted, prelude, counter, false, false),
		}, Pos: c.Pos}
	}
	if !top && worthHoisting(n) && isInvariant(n, assigned) {
		key := n.String()
		name, ok := hoisted[key]
		if !ok {
			*counter++
			name = fmt.Sprintf("%s%d", licmTempPrefix, *counter)
			hoisted[key] = name
			*prelude = append(*prelude, Stmt{Name: name, Expr: n, Pos: n.pos()})
		}
		return &Var{Name: name, Pos: n.pos()}
	}
	switch t := n.(type) {
	case *Unary:
		return &Unary{X: hoistNodeCtx(t.X, assigned, hoisted, prelude, counter, false, false), Pos: t.Pos}
	case *BinOp:
		return &BinOp{
			Op:    t.Op,
			Left:  hoistNodeCtx(t.Left, assigned, hoisted, prelude, counter, false, t.Op == "%*%"),
			Right: hoistNodeCtx(t.Right, assigned, hoisted, prelude, counter, false, false),
			Pos:   t.Pos,
		}
	case *Call:
		args := make([]Node, len(t.Args))
		for i, a := range t.Args {
			args[i] = hoistNodeCtx(a, assigned, hoisted, prelude, counter, false, false)
		}
		return &Call{Fn: t.Fn, Args: args, Pos: t.Pos}
	default:
		return n
	}
}

// HasLICMTemp reports whether the program contains hoisted temporaries
// (diagnostic helper for tests and EXPLAIN output).
func (p *Program) HasLICMTemp() bool {
	return strings.Contains(p.String(), licmTempPrefix)
}
