package dml

import (
	"dmml/internal/la"
)

// Operator fusion, SPOOF-lite: after the algebraic rewrites, single-consumer
// regions of elementwise operators are collapsed into one internal Fused node
// compiled to an la micro-op program. Two templates exist:
//
//   - Cell: an elementwise/scalar expression tree over conformable matrices
//     (e.g. sigmoid(X %*% w) executed as inputs + one fused pass) runs as a
//     single pool-parallel sweep writing one scratch-backed output, instead
//     of materializing a fresh matrix per operator.
//   - RowAgg: an elementwise region feeding sum / rowSums / colSums / a
//     matrix–vector product reduces with slot partials and materializes no
//     intermediate at all.
//
// Fusion is NOT applied to (a) multi-consumer intermediates — a subtree that
// occurs more than once in the statement stays an ordinary input so CSE still
// evaluates it exactly once — and (b) shape-unknown nodes: only subtrees the
// abstract interpreter proves to be matrices join a region, so programs
// optimized without shape information run unfused. Scalar subtrees never
// form regions; they compile to broadcast inputs (or FuseConst for literals).

// FuseKind selects the fused execution template.
type FuseKind uint8

const (
	// FuseCell executes an elementwise region as one pass over the cells.
	FuseCell FuseKind = iota
	// FuseRowAgg executes an elementwise region directly into a reduction.
	FuseRowAgg
)

// fuseAgg names the reduction of a FuseRowAgg region.
type fuseAgg uint8

const (
	aggSum fuseAgg = iota
	aggRowSums
	aggColSums
	aggMatVec
)

// Fused is an internal AST node produced by the fusion pass; the parser
// never emits it. Body keeps the original expression, and String delegates
// to it, so a fused program renders exactly like its unfused counterpart:
// every string-keyed mechanism (CSE memo, rewrite fixpoints, the Gram
// pattern match in evalMatMul, LICM hoist keys) keeps working unchanged,
// and re-optimizing a fused program is a no-op.
type Fused struct {
	Kind   FuseKind
	Agg    fuseAgg // meaningful when Kind == FuseRowAgg
	Body   Node    // original expression: shapes, free vars, rendering
	Prog   *la.FuseProgram
	Inputs []Node // region leaves, deduped by String; evaluated unfused
	Vec    Node   // aggMatVec only: the vector operand
	// MatOps counts the region's AST operators, i.e. the full-size
	// intermediates the unfused plan would materialize. It can differ from
	// Prog.ArithOps(): the square a __sumsq region appends never
	// materializes in either plan.
	MatOps int
	Pos    int
}

func (n *Fused) pos() int { return n.Pos }

// String implements fmt.Stringer by rendering the original expression.
func (n *Fused) String() string { return n.Body.String() }

// fuseStmts applies the fusion pass to a rewritten statement list, tracking
// variable shapes through assignments exactly like optimizeStmts.
func fuseStmts(stmts []Stmt, env absEnv) []Stmt {
	out := make([]Stmt, len(stmts))
	for i, stmt := range stmts {
		switch {
		case stmt.For != nil:
			inner := env.clone()
			inner[stmt.For.Var] = binding{shape: scalarAbs(), definite: true}
			invalidateAssigned(stmt.For.Body, inner)
			out[i] = Stmt{For: &ForStmt{
				Var:  stmt.For.Var,
				From: stmt.For.From,
				To:   stmt.For.To,
				Body: fuseStmts(stmt.For.Body, inner),
			}, Pos: stmt.Pos}
			invalidateAssigned(stmt.For.Body, env)
			env[stmt.For.Var] = binding{shape: scalarAbs(), definite: true}
		case stmt.If != nil:
			out[i] = Stmt{If: &IfStmt{
				Cond: stmt.If.Cond,
				Then: fuseStmts(stmt.If.Then, env.clone()),
				Else: fuseStmts(stmt.If.Else, env.clone()),
			}, Pos: stmt.Pos}
			invalidateAssigned(stmt.If.Then, env)
			invalidateAssigned(stmt.If.Else, env)
		default:
			fz := &fuser{env: env, counts: map[string]int{}}
			countSubtrees(stmt.Expr, fz.counts)
			expr := fz.fuseExpr(stmt.Expr)
			out[i] = Stmt{Name: stmt.Name, Expr: expr, Pos: stmt.Pos}
			if stmt.Name != "" {
				env[stmt.Name] = binding{shape: inferAbs(expr, env, nil), definite: true}
			}
		}
	}
	return out
}

// countSubtrees increments counts for every subtree occurrence in the
// statement; the single-consumer rule consults it so a shared intermediate
// becomes a region input (evaluated once via CSE) rather than being inlined
// — and recomputed — in several places.
func countSubtrees(n Node, counts map[string]int) {
	counts[n.String()]++
	switch t := n.(type) {
	case *Unary:
		countSubtrees(t.X, counts)
	case *BinOp:
		countSubtrees(t.Left, counts)
		countSubtrees(t.Right, counts)
	case *Call:
		for _, a := range t.Args {
			countSubtrees(a, counts)
		}
	case *Index:
		countSubtrees(t.X, counts)
		countSpec(t.Row, counts)
		countSpec(t.Col, counts)
	}
}

func countSpec(spec *IndexSpec, counts map[string]int) {
	if spec.All {
		return
	}
	countSubtrees(spec.Lo, counts)
	if spec.Hi != nil {
		countSubtrees(spec.Hi, counts)
	}
}

// fuser holds per-statement fusion state.
type fuser struct {
	env    absEnv
	counts map[string]int
}

// fusableOp reports whether n is an elementwise operator whose result is
// definitely a matrix — the only nodes that may join a fused region.
func (fz *fuser) fusableOp(n Node) bool {
	switch t := n.(type) {
	case *Unary:
	case *BinOp:
		switch t.Op {
		case "+", "-", "*", "/", "^":
		default:
			return false
		}
	case *Call:
		switch t.Fn {
		case "exp", "log", "sqrt", "abs", "sigmoid":
		default:
			return false
		}
	default:
		return false
	}
	return inferAbs(n, fz.env, nil).IsMatrix()
}

// fuseExpr rewrites n bottom-up, replacing maximal fusable regions with
// Fused nodes. Already-fused nodes pass through untouched, which makes the
// pass idempotent.
func (fz *fuser) fuseExpr(n Node) Node {
	switch t := n.(type) {
	case *Unary:
		if f := fz.tryCell(n); f != nil {
			return f
		}
		return &Unary{X: fz.fuseExpr(t.X), Pos: t.Pos}
	case *BinOp:
		if t.Op == "%*%" {
			if f := fz.tryMatVec(t); f != nil {
				return f
			}
		} else if f := fz.tryCell(n); f != nil {
			return f
		}
		return &BinOp{Op: t.Op, Left: fz.fuseExpr(t.Left), Right: fz.fuseExpr(t.Right), Pos: t.Pos}
	case *Call:
		if f := fz.tryRowAgg(t); f != nil {
			return f
		}
		if f := fz.tryCell(n); f != nil {
			return f
		}
		args := make([]Node, len(t.Args))
		for i, a := range t.Args {
			args[i] = fz.fuseExpr(a)
		}
		return &Call{Fn: t.Fn, Args: args, Pos: t.Pos}
	case *Index:
		return &Index{X: fz.fuseExpr(t.X), Row: fz.fuseSpec(t.Row), Col: fz.fuseSpec(t.Col), Pos: t.Pos}
	}
	return n
}

func (fz *fuser) fuseSpec(spec *IndexSpec) *IndexSpec {
	if spec.All {
		return spec
	}
	out := &IndexSpec{Lo: fz.fuseExpr(spec.Lo)}
	if spec.Hi != nil {
		out.Hi = fz.fuseExpr(spec.Hi)
	}
	return out
}

// tryCell fuses an elementwise region rooted at n into a Cell template.
// Regions of fewer than two operators are left alone: a single elementwise
// op materializes exactly its output either way, so fusion would only add
// dispatch overhead.
func (fz *fuser) tryCell(n Node) Node {
	if !fz.fusableOp(n) {
		return nil
	}
	rb := fz.newRegion(n)
	rb.inline(n)
	if rb.failed || rb.arith < 2 {
		return nil
	}
	prog, err := la.CompileFused(rb.ops, len(rb.inputs))
	if err != nil {
		return nil
	}
	return &Fused{Kind: FuseCell, Body: n, Prog: prog, Inputs: rb.inputs, MatOps: rb.arith, Pos: n.pos()}
}

// tryRowAgg fuses sum/__sumsq/rowSums/colSums over an elementwise region,
// so the reduction consumes region cells directly and the intermediate is
// never materialized. A bare-variable argument stays unfused: the existing
// Sum/SumSq/RowSums kernels already run in one pass.
func (fz *fuser) tryRowAgg(c *Call) Node {
	var agg fuseAgg
	sumsq := false
	switch c.Fn {
	case "sum":
		agg = aggSum
	case "__sumsq":
		agg, sumsq = aggSum, true
	case "rowSums":
		agg = aggRowSums
	case "colSums":
		agg = aggColSums
	default:
		return nil
	}
	arg := c.Args[0]
	if !fz.fusableOp(arg) {
		return nil
	}
	rb := fz.newRegion(arg)
	rb.inline(arg)
	matOps := rb.arith
	if sumsq {
		rb.op(la.FuseSq)
	}
	if rb.failed || matOps < 1 {
		return nil
	}
	prog, err := la.CompileFused(rb.ops, len(rb.inputs))
	if err != nil {
		return nil
	}
	return &Fused{Kind: FuseRowAgg, Agg: agg, Body: c, Prog: prog, Inputs: rb.inputs, MatOps: matOps, Pos: c.Pos}
}

// tryMatVec fuses `region %*% v` when v is statically a column vector: each
// output element reduces one region row on the fly. The Gram and transpose
// patterns are untouched — their left operand is a t() call, which is not an
// elementwise region.
func (fz *fuser) tryMatVec(b *BinOp) Node {
	if !fz.fusableOp(b.Left) {
		return nil
	}
	rs := inferAbs(b.Right, fz.env, nil)
	if !rs.IsMatrix() || rs.Cols != 1 {
		return nil
	}
	rb := fz.newRegion(b.Left)
	rb.inline(b.Left)
	if rb.failed || rb.arith < 1 {
		return nil
	}
	prog, err := la.CompileFused(rb.ops, len(rb.inputs))
	if err != nil {
		return nil
	}
	return &Fused{
		Kind: FuseRowAgg, Agg: aggMatVec, Body: b, Prog: prog,
		Inputs: rb.inputs, Vec: fz.fuseExpr(b.Right), MatOps: rb.arith, Pos: b.Pos,
	}
}

// regionBuilder compiles one region into a postfix micro-op program plus its
// input list.
type regionBuilder struct {
	fz       *fuser
	ops      []la.FusedOp
	inputs   []Node
	inputIdx map[string]int
	arith    int
	// rootCount is the statement-wide occurrence count of the region root.
	// A child with MORE occurrences than the root is consumed outside this
	// region too, so it stays an input; a child with the same count only
	// ever appears inside copies of this region, which CSE evaluates once.
	rootCount int
	failed    bool
}

func (fz *fuser) newRegion(root Node) *regionBuilder {
	return &regionBuilder{fz: fz, inputIdx: map[string]int{}, rootCount: fz.counts[root.String()]}
}

func (rb *regionBuilder) op(code la.FuseOpCode) {
	rb.ops = append(rb.ops, la.FusedOp{Code: code})
	rb.arith++
}

// absorb compiles n into the region: literals become constants, fusable
// single-consumer operators are inlined, and everything else — leaves,
// matrix products, scalar subtrees, shared intermediates — loads as an
// input the evaluator computes normally (once, via CSE).
func (rb *regionBuilder) absorb(n Node) {
	if rb.failed {
		return
	}
	if lit, ok := n.(*NumLit); ok {
		rb.ops = append(rb.ops, la.FusedOp{Code: la.FuseConst, Val: lit.Val})
		return
	}
	if rb.fz.fusableOp(n) && rb.fz.counts[n.String()] <= rb.rootCount {
		rb.inline(n)
		return
	}
	rb.load(n)
}

// inline emits n's operator unconditionally (the region root bypasses the
// single-consumer check: fusing a shared root just means CSE caches the
// fused value).
func (rb *regionBuilder) inline(n Node) {
	switch t := n.(type) {
	case *Unary:
		rb.absorb(t.X)
		rb.op(la.FuseNeg)
	case *BinOp:
		if t.Op == "^" && isLit(t.Right, 2) {
			rb.absorb(t.Left)
			rb.op(la.FuseSq)
			return
		}
		rb.absorb(t.Left)
		rb.absorb(t.Right)
		rb.op(binFuseCode(t.Op))
	case *Call:
		rb.absorb(t.Args[0])
		rb.op(callFuseCode(t.Fn))
	default:
		rb.failed = true
	}
}

func (rb *regionBuilder) load(n Node) {
	key := n.String()
	idx, ok := rb.inputIdx[key]
	if !ok {
		idx = len(rb.inputs)
		rb.inputIdx[key] = idx
		rb.inputs = append(rb.inputs, rb.fz.fuseExpr(n))
	}
	rb.ops = append(rb.ops, la.FusedOp{Code: la.FuseLoad, Arg: idx})
}

func binFuseCode(op string) la.FuseOpCode {
	switch op {
	case "+":
		return la.FuseAdd
	case "-":
		return la.FuseSub
	case "*":
		return la.FuseMul
	case "/":
		return la.FuseDiv
	default: // "^" — fusableOp admits no other operator
		return la.FusePow
	}
}

func callFuseCode(fn string) la.FuseOpCode {
	switch fn {
	case "exp":
		return la.FuseExp
	case "log":
		return la.FuseLog
	case "sqrt":
		return la.FuseSqrt
	case "abs":
		return la.FuseAbs
	default: // "sigmoid" — fusableOp admits no other call
		return la.FuseSigmoid
	}
}

// forEachFused visits every Fused node in the program, including regions
// nested in other regions' inputs and inside control-flow bodies.
func (p *Program) forEachFused(fn func(*Fused)) {
	var walkNode func(Node)
	walkNode = func(nd Node) {
		switch t := nd.(type) {
		case *Fused:
			fn(t)
			for _, in := range t.Inputs {
				walkNode(in)
			}
			if t.Vec != nil {
				walkNode(t.Vec)
			}
		case *Unary:
			walkNode(t.X)
		case *BinOp:
			walkNode(t.Left)
			walkNode(t.Right)
		case *Call:
			for _, a := range t.Args {
				walkNode(a)
			}
		case *Index:
			walkNode(t.X)
			for _, spec := range []*IndexSpec{t.Row, t.Col} {
				if !spec.All {
					walkNode(spec.Lo)
					if spec.Hi != nil {
						walkNode(spec.Hi)
					}
				}
			}
		}
	}
	var walkStmts func([]Stmt)
	walkStmts = func(stmts []Stmt) {
		for _, s := range stmts {
			switch {
			case s.For != nil:
				walkNode(s.For.From)
				walkNode(s.For.To)
				walkStmts(s.For.Body)
			case s.If != nil:
				walkNode(s.If.Cond)
				walkStmts(s.If.Then)
				walkStmts(s.If.Else)
			default:
				walkNode(s.Expr)
			}
		}
	}
	walkStmts(p.Stmts)
}

// FusedRegionCount reports how many fused regions the program contains
// (diagnostic helper for tests and EXPLAIN output; Fused nodes render like
// their unfused bodies, so String cannot reveal them).
func (p *Program) FusedRegionCount() int {
	n := 0
	p.forEachFused(func(*Fused) { n++ })
	return n
}
