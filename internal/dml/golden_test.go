package dml

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var updateGoldens = flag.Bool("update-goldens", false, "rewrite testdata/lint/*.golden from current analyzer output")

// TestLintGoldens runs the linter over every fixture in testdata/lint and
// compares the full diagnostic listing against the checked-in golden file.
// Together the fixtures cover every diagnostic code the analyzer can emit.
func TestLintGoldens(t *testing.T) {
	files, err := filepath.Glob(filepath.Join("testdata", "lint", "*.dml"))
	if err != nil {
		t.Fatal(err)
	}
	if len(files) == 0 {
		t.Fatal("no lint fixtures found")
	}
	for _, file := range files {
		name := strings.TrimSuffix(filepath.Base(file), ".dml")
		t.Run(name, func(t *testing.T) {
			src, err := os.ReadFile(file)
			if err != nil {
				t.Fatal(err)
			}
			p, err := Parse(string(src))
			if err != nil {
				t.Fatalf("fixtures must parse; %s: %v", file, err)
			}
			got := p.Lint(nil).Format()
			if got != "" {
				got += "\n"
			}
			golden := strings.TrimSuffix(file, ".dml") + ".golden"
			if *updateGoldens {
				if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(golden)
			if err != nil {
				t.Fatalf("missing golden (run with -update-goldens): %v", err)
			}
			if got != string(want) {
				t.Errorf("diagnostics for %s differ\n--- got ---\n%s--- want ---\n%s", file, got, want)
			}
		})
	}
}

// TestGoldensCoverAllCodes fails when a diagnostic code has no fixture
// exercising it, so new lint rules must ship with golden coverage.
func TestGoldensCoverAllCodes(t *testing.T) {
	codes := []string{
		CodeUndefinedVar, CodeDimMismatch, CodeTypeMismatch, CodeBadArg,
		CodeUnusedVar, CodeUnreachable, CodeEmptyLoop, CodeShadowedVar,
		CodeMaybeUndefined,
	}
	goldens, err := filepath.Glob(filepath.Join("testdata", "lint", "*.golden"))
	if err != nil {
		t.Fatal(err)
	}
	var all strings.Builder
	for _, g := range goldens {
		b, err := os.ReadFile(g)
		if err != nil {
			t.Fatal(err)
		}
		all.Write(b)
	}
	for _, code := range codes {
		if !strings.Contains(all.String(), "["+code+"]") {
			t.Errorf("no golden fixture covers diagnostic code %q", code)
		}
	}
}
