package dml

import (
	"fmt"
	"sort"
	"strings"
)

// Severity classifies a diagnostic. Errors mean the program is statically
// guaranteed to fail (or is malformed) and abort execution; warnings flag
// suspicious-but-runnable constructs and are collected without aborting.
type Severity int

const (
	// SevWarning marks lint findings that do not stop execution.
	SevWarning Severity = iota + 1
	// SevError marks defects that abort execution before evaluation.
	SevError
)

// String implements fmt.Stringer.
func (s Severity) String() string {
	if s == SevError {
		return "error"
	}
	return "warning"
}

// Diagnostic codes emitted by the analyzer. Error codes fire only when the
// evaluator is statically guaranteed to reject the construct; warning codes
// flag legal-but-suspicious programs.
const (
	CodeUndefinedVar   = "undefined-var"   // read of a variable no path defines
	CodeDimMismatch    = "dim-mismatch"    // incompatible matrix dimensions
	CodeTypeMismatch   = "type-mismatch"   // scalar where matrix required, or vice versa
	CodeBadArg         = "bad-arg"         // statically invalid builtin argument or index
	CodeBadArity       = "bad-arity"       // wrong argument count / unknown function
	CodeUnusedVar      = "unused-var"      // assigned but never read
	CodeUnreachable    = "unreachable"     // branch dead under a constant condition
	CodeEmptyLoop      = "empty-loop"      // constant zero/negative trip count
	CodeShadowedVar    = "shadowed-var"    // loop variable shadows an existing binding
	CodeMaybeUndefined = "maybe-undefined" // defined on some but not all paths
)

// Diagnostic is one analyzer finding, anchored to a byte offset in the
// source. Use Format (or lineCol) to render the offset as line:col.
type Diagnostic struct {
	Pos      int
	Severity Severity
	Code     string
	Msg      string
}

// Format renders the diagnostic with a line:col prefix resolved against src.
// With no source text (programmatically built ASTs), the raw offset is shown.
func (d Diagnostic) Format(src string) string {
	return fmt.Sprintf("%s: %s[%s]: %s", posString(src, d.Pos), d.Severity, d.Code, d.Msg)
}

// lineCol converts a byte offset into 1-based line and column numbers.
// Offsets past the end of src clamp to its final position.
func lineCol(src string, pos int) (line, col int) {
	if pos > len(src) {
		pos = len(src)
	}
	line, col = 1, 1
	for i := 0; i < pos; i++ {
		if src[i] == '\n' {
			line++
			col = 1
		} else {
			col++
		}
	}
	return line, col
}

// posString renders a byte offset as "line:col" against src, falling back to
// "offset N" when no source text is available.
func posString(src string, pos int) string {
	if src == "" {
		return fmt.Sprintf("offset %d", pos)
	}
	line, col := lineCol(src, pos)
	return fmt.Sprintf("%d:%d", line, col)
}

// Analysis is the result of running the static semantic analyzer: the
// collected diagnostics plus the final inferred shape environment.
type Analysis struct {
	// Diags holds every finding, sorted by source position.
	Diags []Diagnostic
	// Shapes is the abstract shape of each variable after the program.
	Shapes map[string]AbsShape

	src string
}

// HasErrors reports whether any diagnostic is error-severity.
func (a *Analysis) HasErrors() bool {
	for _, d := range a.Diags {
		if d.Severity == SevError {
			return true
		}
	}
	return false
}

// Errors returns the error-severity diagnostics.
func (a *Analysis) Errors() []Diagnostic { return a.filter(SevError) }

// Warnings returns the warning-severity diagnostics.
func (a *Analysis) Warnings() []Diagnostic { return a.filter(SevWarning) }

func (a *Analysis) filter(sev Severity) []Diagnostic {
	var out []Diagnostic
	for _, d := range a.Diags {
		if d.Severity == sev {
			out = append(out, d)
		}
	}
	return out
}

// Format renders every diagnostic, one per line, with line:col positions.
func (a *Analysis) Format() string {
	lines := make([]string, len(a.Diags))
	for i, d := range a.Diags {
		lines[i] = d.Format(a.src)
	}
	return strings.Join(lines, "\n")
}

// sortDiags orders diagnostics by position, then severity (errors first),
// then code, for deterministic output.
func sortDiags(diags []Diagnostic) {
	sort.SliceStable(diags, func(i, j int) bool {
		if diags[i].Pos != diags[j].Pos {
			return diags[i].Pos < diags[j].Pos
		}
		if diags[i].Severity != diags[j].Severity {
			return diags[i].Severity > diags[j].Severity
		}
		return diags[i].Code < diags[j].Code
	})
}
