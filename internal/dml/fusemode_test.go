package dml

// FusionMode plumbing: the -fuse flag's three modes must parse, must select
// the backend they claim, and — the property the escape hatch exists for —
// compile and interp modes must agree on every program the generators can
// produce. FuzzCompiledFusionSemantics is the native-fuzzing form CI runs.

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestParseFusionMode(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want FusionMode
		err  bool
	}{
		{"compile", FusionCompiled, false},
		{"compiled", FusionCompiled, false},
		{"interp", FusionInterp, false},
		{"off", FusionOff, false},
		{"", FusionCompiled, true},
		{"on", FusionCompiled, true},
	} {
		got, err := ParseFusionMode(tc.in)
		if (err != nil) != tc.err || got != tc.want {
			t.Errorf("ParseFusionMode(%q) = %v, %v; want %v, err=%v", tc.in, got, err, tc.want, tc.err)
		}
	}
	for _, m := range []FusionMode{FusionCompiled, FusionInterp, FusionOff} {
		back, err := ParseFusionMode(m.String())
		if err != nil || back != m {
			t.Errorf("round trip %v -> %q -> %v, %v", m, m.String(), back, err)
		}
	}
}

// TestOptimizeFusionModes: one concrete script through all three modes —
// off produces no regions, interp fuses but never runs compiled kernels,
// compile fuses and runs every region compiled; all three agree.
func TestOptimizeFusionModes(t *testing.T) {
	const rows, cols = 31, 7
	src := `h = sigmoid(X * 2 + 1) * X - X / 3
loss = sum((h - Y) ^ 2)`
	shapes := map[string]Shape{"X": matShape(rows, cols), "Y": matShape(rows, cols)}
	r := rand.New(rand.NewSource(51))
	env := Env{"X": Matrix(randDense(r, rows, cols)), "Y": Matrix(randDense(r, rows, cols))}
	prog := mustParse(t, src)

	off := prog.OptimizeFusion(shapes, FusionOff)
	if n := off.FusedRegionCount(); n != 0 {
		t.Fatalf("FusionOff left %d fused regions", n)
	}
	wantVal, _, err := off.Run(cloneEnv(env))
	if err != nil {
		t.Fatal(err)
	}

	interp := prog.OptimizeFusion(shapes, FusionInterp)
	if interp.FusedRegionCount() == 0 {
		t.Fatal("FusionInterp produced no fused regions")
	}
	gotI, statsI, err := interp.Run(cloneEnv(env))
	if err != nil {
		t.Fatal(err)
	}
	if statsI.FusedRegions == 0 || statsI.FusedCompiled != 0 {
		t.Fatalf("interp mode: FusedRegions=%d FusedCompiled=%d, want >0 and 0",
			statsI.FusedRegions, statsI.FusedCompiled)
	}

	compiled := prog.OptimizeFusion(shapes, FusionCompiled)
	gotC, statsC, err := compiled.Run(cloneEnv(env))
	if err != nil {
		t.Fatal(err)
	}
	if statsC.FusedRegions == 0 || statsC.FusedCompiled != statsC.FusedRegions {
		t.Fatalf("compile mode: FusedRegions=%d FusedCompiled=%d, want all compiled",
			statsC.FusedRegions, statsC.FusedCompiled)
	}

	if !valueClose(wantVal, gotI, 1e-8) || !valueClose(wantVal, gotC, 1e-8) {
		t.Fatalf("modes disagree: off %v, interp %v, compile %v", wantVal, gotI, gotC)
	}
}

// compiledInterpAgree runs one generated case under both fused backends and
// reports whether they agree (and errors identically).
func compiledInterpAgree(t *testing.T, seed int64) bool {
	r := rand.New(rand.NewSource(seed))
	const rows, cols = 9, 5
	var expr Node
	var sh map[string]Shape
	var env Env
	if r.Intn(2) == 0 {
		expr = genFusedProgramExpr(r, 1+r.Intn(4))
		sh = fuseTestShapes(rows, cols)
		env = fuseTestEnv(r, rows, cols)
	} else {
		const side = 5
		expr = genExpr(r, 2+r.Intn(3))
		sh = map[string]Shape{"A": matShape(side, side), "B": matShape(side, side)}
		env = Env{"A": Matrix(randDense(r, side, side)), "B": Matrix(randDense(r, side, side))}
	}
	prog := &Program{Stmts: []Stmt{{Name: "out", Expr: expr}}}

	gotC, _, errC := prog.OptimizeFusion(sh, FusionCompiled).Run(cloneEnv(env))
	gotI, _, errI := prog.OptimizeFusion(sh, FusionInterp).Run(cloneEnv(env))
	if (errC == nil) != (errI == nil) {
		t.Logf("seed %d expr %s: compiled err %v, interp err %v", seed, expr, errC, errI)
		return false
	}
	if errC == nil && !valueClose(gotC, gotI, 1e-8) {
		t.Logf("seed %d expr %s: compiled %v, interp %v", seed, expr, gotC, gotI)
		return false
	}
	return true
}

// Property: the compiled backend is semantically invisible — any generated
// program evaluates the same under -fuse=compile and -fuse=interp.
func TestCompiledFusionEquivalenceQuick(t *testing.T) {
	f := func(seed int64) bool { return compiledInterpAgree(t, seed) }
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// Native fuzz target: same property, driven by the fuzzer's seed corpus
// (make fuzz-smoke runs this alongside FuzzFusionSemantics).
func FuzzCompiledFusionSemantics(f *testing.F) {
	for _, seed := range []int64{2, 11, 64, 4096, 123456} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, seed int64) {
		if !compiledInterpAgree(t, seed) {
			t.Fatalf("compiled and interpreted fused backends disagree (seed %d)", seed)
		}
	})
}
