package dml

import (
	"math/rand"
	"runtime"
	"testing"
	"testing/quick"

	"dmml/internal/la"
)

// withProcs runs fn at GOMAXPROCS(n), restoring the old value.
func withProcs(n int, fn func()) {
	old := runtime.GOMAXPROCS(n)
	defer runtime.GOMAXPROCS(old)
	fn()
}

func fuseTestShapes(rows, cols int) map[string]Shape {
	return map[string]Shape{
		"A": matShape(rows, cols),
		"B": matShape(rows, cols),
		"v": matShape(cols, 1),
		"s": scalarShape(),
	}
}

func fuseTestEnv(r *rand.Rand, rows, cols int) Env {
	fill := func(m *la.Dense) *la.Dense {
		m.Apply(func(float64) float64 { return r.NormFloat64() })
		return m
	}
	return Env{
		"A": Matrix(fill(la.NewDense(rows, cols))),
		"B": Matrix(fill(la.NewDense(rows, cols))),
		"v": Matrix(fill(la.NewDense(cols, 1))),
		"s": Scalar(r.NormFloat64()),
	}
}

func cloneEnv(env Env) Env {
	out := make(Env, len(env))
	for k, v := range env {
		if v.IsScalar {
			out[k] = v
		} else {
			out[k] = Matrix(v.M.Clone())
		}
	}
	return out
}

// genCellExpr builds a random elementwise expression over A, B (rows×cols)
// and scalars, restricted to operators that stay finite-or-NaN-free on
// normal data so fused and unfused results compare under a relative
// tolerance.
func genCellExpr(r *rand.Rand, depth int) Node {
	if depth == 0 {
		switch r.Intn(4) {
		case 0:
			return &Var{Name: "A"}
		case 1:
			return &Var{Name: "B"}
		case 2:
			return &Var{Name: "s"}
		default:
			return &NumLit{Val: float64(r.Intn(7)-3) / 2}
		}
	}
	switch r.Intn(9) {
	case 0:
		return &BinOp{Op: "+", Left: genCellExpr(r, depth-1), Right: genCellExpr(r, depth-1)}
	case 1:
		return &BinOp{Op: "-", Left: genCellExpr(r, depth-1), Right: genCellExpr(r, depth-1)}
	case 2:
		return &BinOp{Op: "*", Left: genCellExpr(r, depth-1), Right: genCellExpr(r, depth-1)}
	case 3:
		return &BinOp{Op: "/", Left: genCellExpr(r, depth-1), Right: &NumLit{Val: float64(r.Intn(3)) + 1.5}}
	case 4:
		return &BinOp{Op: "^", Left: genCellExpr(r, depth-1), Right: &NumLit{Val: 2}}
	case 5:
		return &Unary{X: genCellExpr(r, depth-1)}
	case 6:
		return &Call{Fn: "abs", Args: []Node{genCellExpr(r, depth-1)}}
	case 7:
		return &Call{Fn: "sigmoid", Args: []Node{genCellExpr(r, depth-1)}}
	default:
		// A shared subtree: exercises the multi-consumer input path.
		shared := genCellExpr(r, depth-1)
		return &BinOp{Op: "+", Left: shared, Right: &BinOp{Op: "*", Left: shared, Right: &NumLit{Val: 0.5}}}
	}
}

// genFusedProgramExpr wraps a random elementwise region in each of the
// aggregate consumers the RowAgg template supports, or leaves it bare (Cell).
func genFusedProgramExpr(r *rand.Rand, depth int) Node {
	region := genCellExpr(r, depth)
	switch r.Intn(6) {
	case 0:
		return &Call{Fn: "sum", Args: []Node{region}}
	case 1:
		return &Call{Fn: "rowSums", Args: []Node{region}}
	case 2:
		return &Call{Fn: "colSums", Args: []Node{region}}
	case 3:
		return &BinOp{Op: "%*%", Left: region, Right: &Var{Name: "v"}}
	case 4:
		return &Call{Fn: "sum", Args: []Node{&BinOp{Op: "^", Left: region, Right: &NumLit{Val: 2}}}}
	default:
		return region
	}
}

// Property: fused and unfused plans agree (within float reassociation
// tolerance) on random elementwise/aggregate programs, at GOMAXPROCS 1 and N.
func TestFusedUnfusedEquivalenceQuick(t *testing.T) {
	const rows, cols = 17, 9
	shapes := fuseTestShapes(rows, cols)
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		expr := genFusedProgramExpr(r, 2+r.Intn(3))
		prog := &Program{Stmts: []Stmt{{Name: "out", Expr: expr}}}
		env := fuseTestEnv(r, rows, cols)

		unfused := prog.OptimizeUnfused(shapes)
		want, _, errU := unfused.Run(cloneEnv(env))

		fused := prog.Optimize(shapes)
		ok := true
		for _, procs := range []int{1, runtime.NumCPU()} {
			withProcs(procs, func() {
				got, _, errF := fused.Run(cloneEnv(env))
				if (errU == nil) != (errF == nil) {
					t.Logf("seed %d procs %d expr %s: unfused err %v, fused err %v", seed, procs, expr, errU, errF)
					ok = false
					return
				}
				if errU == nil && !valueClose(want, got, 1e-9) {
					t.Logf("seed %d procs %d expr %s: unfused %v fused %v", seed, procs, expr, want, got)
					ok = false
				}
			})
			if !ok {
				break
			}
		}
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// The same equivalence on a matrix large enough to cross the la kernels'
// parallel threshold, so the pool-parallel fused drivers (not just the
// serial fast path) are exercised through the evaluator.
func TestFusedEquivalenceParallelRegime(t *testing.T) {
	const rows, cols = 700, 400 // 280k cells ≥ la parallelThreshold (1<<18)
	r := rand.New(rand.NewSource(7))
	shapes := fuseTestShapes(rows, cols)
	env := fuseTestEnv(r, rows, cols)
	prog := mustParse(t, `C = sigmoid(A * 2 + B) * A - B / 3
m = sum((A - B)^2)
g = (A * A + B) %*% v
r = rowSums(abs(A) + abs(B))`)

	want, _, err := prog.OptimizeUnfused(shapes).Run(cloneEnv(env))
	if err != nil {
		t.Fatal(err)
	}
	fused := prog.Optimize(shapes)
	if got := fused.FusedRegionCount(); got != 4 {
		t.Fatalf("FusedRegionCount = %d, want 4", got)
	}
	for _, procs := range []int{1, runtime.NumCPU()} {
		withProcs(procs, func() {
			fenv := cloneEnv(env)
			got, stats, err := fused.Run(fenv)
			if err != nil {
				t.Fatalf("procs %d: %v", procs, err)
			}
			if !valueClose(want, got, 1e-9) {
				t.Fatalf("procs %d: fused result diverges", procs)
			}
			if stats.FusedRegions != 4 {
				t.Fatalf("procs %d: FusedRegions = %d, want 4", procs, stats.FusedRegions)
			}
		})
	}
}

// Region formation rules: what fuses, what stays, and how shared
// intermediates become inputs.
func TestFuseRegionFormation(t *testing.T) {
	shapes := map[string]Shape{
		"X": matShape(30, 6), "Y": matShape(30, 6),
		"w": matShape(6, 1), "y": matShape(30, 1),
	}
	cases := []struct {
		name    string
		src     string
		regions int
	}{
		{"cell chain", "Z = sigmoid(X * 2 + 1) * X", 1},
		{"single op unfused", "Z = X + Y", 0},
		{"bare aggregate unfused", "m = sum(X)", 0},
		{"rowagg over region", "m = sum(X * Y)", 1},
		{"sumsq over residual", "m = sum((X %*% w - y)^2)", 1},
		{"rowSums region", "r = rowSums(X * X + Y)", 1},
		{"colSums region", "c = colSums(X / 2 - Y)", 1},
		{"matvec over region", "g = (X + Y * 0.5) %*% w", 1},
		{"gram pattern untouched", "G = t(X) %*% X", 0},
		{"matmul not elementwise", "P = X %*% t(Y)", 0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			opt := mustParse(t, tc.src).Optimize(shapes)
			if got := opt.FusedRegionCount(); got != tc.regions {
				t.Fatalf("%s: FusedRegionCount = %d, want %d (program: %s)", tc.src, got, tc.regions, opt)
			}
		})
	}

	t.Run("shape-unknown stays unfused", func(t *testing.T) {
		opt := mustParse(t, "Z = sigmoid(X * 2 + 1) * X").Optimize(nil)
		if got := opt.FusedRegionCount(); got != 0 {
			t.Fatalf("FusedRegionCount = %d, want 0 without shape information", got)
		}
	})

	t.Run("multi-consumer subtree becomes input", func(t *testing.T) {
		opt := mustParse(t, "Z = (X + Y) * (X + Y) + X").Optimize(shapes)
		fused, ok := opt.Stmts[0].Expr.(*Fused)
		if !ok {
			t.Fatalf("statement did not fuse: %s", opt)
		}
		if len(fused.Inputs) != 2 {
			t.Fatalf("inputs = %d, want 2 (shared (X + Y) deduped, X)", len(fused.Inputs))
		}
		if fused.Inputs[0].String() != "(X + Y)" {
			t.Fatalf("input[0] = %s, want the shared (X + Y) kept as an unfused input", fused.Inputs[0])
		}
		if fused.Prog.ArithOps() != 2 {
			t.Fatalf("arith ops = %d, want 2 (mul + add; the shared sum is NOT re-inlined)", fused.Prog.ArithOps())
		}
	})

	t.Run("fused regions keep the Gram pattern", func(t *testing.T) {
		src := "G = t(X * 2 + Y) %*% (X * 2 + Y)"
		opt := mustParse(t, src).Optimize(shapes)
		if got := opt.FusedRegionCount(); got != 2 {
			t.Fatalf("FusedRegionCount = %d, want 2", got)
		}
		r := rand.New(rand.NewSource(3))
		env := Env{
			"X": Matrix(randDense(r, 30, 6)), "Y": Matrix(randDense(r, 30, 6)),
		}
		want, _, err := mustParse(t, src).OptimizeUnfused(shapes).Run(cloneEnv(env))
		if err != nil {
			t.Fatal(err)
		}
		got, _, err := opt.Run(cloneEnv(env))
		if err != nil {
			t.Fatal(err)
		}
		if !valueClose(want, got, 1e-9) {
			t.Fatalf("gram-over-fused-region diverges: %v vs %v", want, got)
		}
	})
}

func randDense(r *rand.Rand, rows, cols int) *la.Dense {
	m := la.NewDense(rows, cols)
	m.Apply(func(float64) float64 { return r.NormFloat64() })
	return m
}

// Fusion must report its savings: the fused plan materializes only final
// outputs, and CellsSaved accounts for the skipped intermediates.
func TestFusedCellsAllocatedSavings(t *testing.T) {
	const rows, cols = 64, 32
	src := `P = sigmoid(X * 2 + 1) * X - X / 3
m = sum((X - P)^2)
g = (X * X + P) %*% w`
	shapes := map[string]Shape{"X": matShape(rows, cols), "w": matShape(cols, 1)}
	r := rand.New(rand.NewSource(11))
	env := Env{"X": Matrix(randDense(r, rows, cols)), "w": Matrix(randDense(r, cols, 1))}
	prog := mustParse(t, src)

	_, unfused, err := prog.OptimizeUnfused(shapes).Run(cloneEnv(env))
	if err != nil {
		t.Fatal(err)
	}
	_, fused, err := prog.Optimize(shapes).Run(cloneEnv(env))
	if err != nil {
		t.Fatal(err)
	}
	if fused.FusedRegions != 3 {
		t.Fatalf("FusedRegions = %d, want 3", fused.FusedRegions)
	}
	if fused.CellsSaved == 0 {
		t.Fatal("CellsSaved = 0, want fused savings reported")
	}
	if unfused.CellsAllocated < 3*fused.CellsAllocated {
		t.Fatalf("CellsAllocated fused %d vs unfused %d: want ≥3x reduction",
			fused.CellsAllocated, unfused.CellsAllocated)
	}
	if got := fused.CellsAllocated + fused.CellsSaved; got != unfused.CellsAllocated {
		t.Fatalf("fused allocated+saved = %d, want the unfused plan's %d",
			got, unfused.CellsAllocated)
	}
}

// Re-optimizing a fused program must be a no-op: same regions, same results.
func TestFuseIdempotent(t *testing.T) {
	shapes := map[string]Shape{"X": matShape(12, 5), "w": matShape(5, 1)}
	src := `Z = sigmoid(X * 2 + 1) * X
g = (X + X * 0.5) %*% w
m = sum(Z * Z)`
	once := mustParse(t, src).Optimize(shapes)
	twice := once.Optimize(shapes)
	if once.String() != twice.String() {
		t.Fatalf("re-optimize changed rendering:\n%s\nvs\n%s", once, twice)
	}
	if a, b := once.FusedRegionCount(), twice.FusedRegionCount(); a != b {
		t.Fatalf("re-optimize changed region count: %d vs %d", a, b)
	}
	r := rand.New(rand.NewSource(5))
	env := Env{"X": Matrix(randDense(r, 12, 5)), "w": Matrix(randDense(r, 5, 1))}
	v1, _, err := once.Run(cloneEnv(env))
	if err != nil {
		t.Fatal(err)
	}
	v2, _, err := twice.Run(cloneEnv(env))
	if err != nil {
		t.Fatal(err)
	}
	if !valueClose(v1, v2, 0) {
		t.Fatalf("re-optimized program diverges: %v vs %v", v1, v2)
	}
}

// Fused programs run inside loops: LICM temporaries and loop-carried
// variables interact with fusion, and the fused GD loop must match the
// unfused one.
func TestFusedGDLoopEquivalence(t *testing.T) {
	const rows, cols = 50, 8
	src := `for (i in 1:25) {
  w = w - 0.01 * (t(X) %*% (X %*% w - y))
}
mse = sum((X %*% w - y)^2) / nrow(X)`
	shapes := map[string]Shape{
		"X": matShape(rows, cols), "y": matShape(rows, 1), "w": matShape(cols, 1),
	}
	r := rand.New(rand.NewSource(9))
	env := Env{
		"X": Matrix(randDense(r, rows, cols)),
		"y": Matrix(randDense(r, rows, 1)),
		"w": Matrix(la.NewDense(cols, 1)),
	}
	prog := mustParse(t, src)
	want, _, err := prog.OptimizeUnfused(shapes).Run(cloneEnv(env))
	if err != nil {
		t.Fatal(err)
	}
	fused := prog.Optimize(shapes)
	if fused.FusedRegionCount() == 0 {
		t.Fatalf("GD loop produced no fused regions: %s", fused)
	}
	got, stats, err := fused.Run(cloneEnv(env))
	if err != nil {
		t.Fatal(err)
	}
	if !valueClose(want, got, 1e-8) {
		t.Fatalf("fused GD diverges: %v vs %v", want, got)
	}
	if stats.FusedRegions < 25 {
		t.Fatalf("FusedRegions = %d, want one per iteration at least", stats.FusedRegions)
	}
}

// Native fuzz target: the fusion pass must preserve semantics versus the
// unfused plan and stay sound under the analyzer for arbitrary generated
// programs (CI runs this briefly with -fuzz=Fuzz on every pipeline).
func FuzzFusionSemantics(f *testing.F) {
	for _, seed := range []int64{1, 7, 42, 1234, 99999} {
		f.Add(seed)
	}
	const rows, cols = 9, 5
	f.Fuzz(func(t *testing.T, seed int64) {
		r := rand.New(rand.NewSource(seed))
		var expr Node
		var sh map[string]Shape
		var env Env
		if r.Intn(2) == 0 {
			expr = genFusedProgramExpr(r, 1+r.Intn(4))
			sh = fuseTestShapes(rows, cols)
			env = fuseTestEnv(r, rows, cols)
		} else {
			// The general generator: square matrices, products, transposes.
			const side = 5
			expr = genExpr(r, 2+r.Intn(3))
			sh = map[string]Shape{"A": matShape(side, side), "B": matShape(side, side)}
			env = Env{"A": Matrix(randDense(r, side, side)), "B": Matrix(randDense(r, side, side))}
		}
		prog := &Program{Stmts: []Stmt{{Name: "out", Expr: expr}}}

		unfused := prog.OptimizeUnfused(sh)
		want, _, errU := unfused.Run(cloneEnv(env))

		fused := prog.Optimize(sh)
		got, _, errF := fused.Run(cloneEnv(env))
		if (errU == nil) != (errF == nil) {
			t.Fatalf("expr %s: unfused err %v, fused err %v", expr, errU, errF)
		}
		if errU == nil && !valueClose(want, got, 1e-8) {
			t.Fatalf("expr %s: unfused %v, fused %v", expr, want, got)
		}
		// The analyzer must accept the fused program whenever evaluation does.
		if errU == nil {
			if an := fused.Analyze(sh); an.HasErrors() {
				t.Fatalf("expr %s: fused program fails analysis:\n%s", expr, an.Format())
			}
		}
	})
}

// The transcendental unary calls fuse too; exercised on data kept in their
// domains (log over strictly positive cells, sqrt over non-negatives).
func TestFusedTranscendentalEquivalence(t *testing.T) {
	const rows, cols = 23, 7
	src := `Z = log(exp(A) + 1) * sqrt(abs(A) + 1)
m = sum(exp(A / 4) - 1)`
	shapes := map[string]Shape{"A": matShape(rows, cols)}
	r := rand.New(rand.NewSource(21))
	env := Env{"A": Matrix(randDense(r, rows, cols))}
	prog := mustParse(t, src)
	want, _, err := prog.OptimizeUnfused(shapes).Run(cloneEnv(env))
	if err != nil {
		t.Fatal(err)
	}
	fused := prog.Optimize(shapes)
	if got := fused.FusedRegionCount(); got != 2 {
		t.Fatalf("FusedRegionCount = %d, want 2", got)
	}
	got, _, err := fused.Run(cloneEnv(env))
	if err != nil {
		t.Fatal(err)
	}
	if !valueClose(want, got, 1e-9) {
		t.Fatalf("transcendental region diverges: %v vs %v", want, got)
	}
}
