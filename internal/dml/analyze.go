package dml

import (
	"fmt"
)

// This file implements the static semantic analyzer that runs between
// parsing and rewriting — the SystemML-style "inter-procedural analysis"
// pass the paper credits for making declarative ML both safe and fast:
// matrix dimensions are inferred before execution, so dimension mismatches
// are compile-time diagnostics instead of runtime explosions, and the
// inferred sizes drive cost-based rewrites (matrix-chain reordering).
//
// The analyzer abstractly interprets the program over the AbsShape lattice
// (shapes.go): assignments update the store, if-branches analyze both arms
// and join, and for-loops iterate to a fixpoint (the lattice is finite
// height, so this converges in a few passes). Error-severity diagnostics
// fire only for constructs the evaluator is guaranteed to reject, so a
// program that analyzes cleanly at error level never loses behavior —
// warnings cover the merely suspicious (unused assignments, unreachable
// branches, shadowed loop variables, zero-trip loops, maybe-undefined uses).

// Analyze runs the static semantic analyzer with the given input variable
// shapes (typically ShapesFromEnv of the runtime environment). Variables not
// in inputs and not assigned earlier in the program are undefined-variable
// errors. Run calls this automatically as a default-on pre-pass.
func (p *Program) Analyze(inputs map[string]Shape) *Analysis {
	return p.analyze(inputs, false)
}

// Lint analyzes a program without a concrete environment: variables that are
// read but never assigned anywhere are treated as external inputs of unknown
// shape rather than errors. This is the mode behind `dmml lint`.
func (p *Program) Lint(inputs map[string]Shape) *Analysis {
	return p.analyze(inputs, true)
}

func (p *Program) analyze(inputs map[string]Shape, assumeInputs bool) *Analysis {
	a := &analyzer{
		src:      p.Src,
		assigned: map[string]bool{},
	}
	collectAssigned(p.Stmts, a.assigned)

	env := absEnv{}
	for name, s := range inputs {
		env[name] = binding{shape: absFromShape(s), definite: true}
	}
	if assumeInputs {
		// Variables read somewhere but assigned nowhere are the script's
		// external inputs: bind them as ⊤ so their uses analyze cleanly.
		reads := map[string]bool{}
		collectReads(p.Stmts, reads)
		for name := range reads {
			if !a.assigned[name] {
				if _, bound := env[name]; !bound {
					env[name] = binding{shape: topAbs(), definite: true}
				}
			}
		}
	}

	out := a.block(p.Stmts, env)
	a.lintUnused(p.Stmts)
	sortDiags(a.diags)

	shapes := make(map[string]AbsShape, len(out))
	for name, b := range out {
		shapes[name] = b.shape
	}
	return &Analysis{Diags: a.diags, Shapes: shapes, src: p.Src}
}

type analyzer struct {
	src      string
	diags    []Diagnostic
	assigned map[string]bool // every variable assigned anywhere (textual)
	mute     int             // >0 during loop-fixpoint warm-up passes
}

func (a *analyzer) report(pos int, sev Severity, code, msg string) {
	if a.mute > 0 {
		return
	}
	a.diags = append(a.diags, Diagnostic{Pos: pos, Severity: sev, Code: code, Msg: msg})
}

func (a *analyzer) hooks(env absEnv) *shapeHooks {
	return &shapeHooks{
		report: a.report,
		missing: func(name string, pos int) AbsShape {
			if a.assigned[name] {
				a.report(pos, SevError, CodeUndefinedVar,
					fmt.Sprintf("variable %q is used before it is assigned", name))
			} else {
				a.report(pos, SevError, CodeUndefinedVar,
					fmt.Sprintf("undefined variable %q", name))
			}
			return topAbs()
		},
	}
}

func (a *analyzer) infer(n Node, env absEnv) AbsShape {
	return inferAbs(n, env, a.hooks(env))
}

// block abstractly interprets a statement list, mutating and returning the
// store.
func (a *analyzer) block(stmts []Stmt, env absEnv) absEnv {
	for _, stmt := range stmts {
		switch {
		case stmt.For != nil:
			env = a.forStmt(stmt, env)
		case stmt.If != nil:
			env = a.ifStmt(stmt, env)
		default:
			sh := a.infer(stmt.Expr, env)
			if stmt.Name != "" {
				env[stmt.Name] = binding{shape: sh, definite: true}
			}
		}
	}
	return env
}

func (a *analyzer) ifStmt(stmt Stmt, env absEnv) absEnv {
	f := stmt.If
	condSh := a.infer(f.Cond, env)
	if condSh.IsMatrix() {
		a.report(f.Cond.pos(), SevError, CodeTypeMismatch, "if condition must be a scalar")
	}
	if v, ok := condSh.Const(); ok {
		// Constant condition: one branch is unreachable. Analyze only the
		// live branch — diagnostics inside dead code would be spurious.
		if v != 0 {
			if len(f.Else) > 0 {
				a.report(f.Else[0].Pos, SevWarning, CodeUnreachable,
					"unreachable: else branch of a condition that is always true")
			}
			return a.block(f.Then, env)
		}
		if len(f.Then) > 0 {
			a.report(f.Then[0].Pos, SevWarning, CodeUnreachable,
				"unreachable: then branch of a condition that is always false")
		}
		if f.Else != nil {
			return a.block(f.Else, env)
		}
		return env
	}
	thenEnv := a.block(f.Then, env.clone())
	elseEnv := a.block(f.Else, env.clone())
	return joinEnv(thenEnv, elseEnv)
}

// maxLoopFixpoint caps abstract loop iterations; the lattice is finite
// height (const → scalar → ⊤; known dim → ?), so real programs converge in
// two or three passes.
const maxLoopFixpoint = 10

func (a *analyzer) forStmt(stmt Stmt, env absEnv) absEnv {
	f := stmt.For
	fromSh := a.infer(f.From, env)
	toSh := a.infer(f.To, env)
	if fromSh.IsMatrix() || toSh.IsMatrix() {
		a.report(stmt.Pos, SevError, CodeTypeMismatch, "loop bounds must be scalars")
	}
	if _, shadowed := env[f.Var]; shadowed {
		a.report(stmt.Pos, SevWarning, CodeShadowedVar,
			fmt.Sprintf("loop variable %q shadows an existing variable", f.Var))
	}

	trip := DimUnknown // statically known trip count, if any
	if fv, ok := fromSh.Const(); ok {
		if tv, ok := toSh.Const(); ok {
			trip = int(tv) - int(fv) + 1
			if trip > maxLoopIters {
				a.report(stmt.Pos, SevError, CodeBadArg,
					fmt.Sprintf("loop of %d iterations exceeds the %d cap", trip, maxLoopIters))
				return env
			}
			if trip <= 0 {
				a.report(stmt.Pos, SevWarning, CodeEmptyLoop,
					fmt.Sprintf("loop from %g to %g never executes", fv, tv))
				// Zero-trip: the body never runs and the loop variable is
				// never bound; the store is untouched.
				return env
			}
		}
	}

	// Fixpoint: cur is the abstract store at the loop head after any number
	// of iterations. Warm-up passes run muted so diagnostics are emitted
	// exactly once, by the final pass over the stable store.
	cur := env
	a.mute++
	for i := 0; i < maxLoopFixpoint; i++ {
		in := cur.clone()
		in[f.Var] = binding{shape: scalarAbs(), definite: true}
		out := a.block(f.Body, in)
		next := joinEnv(cur, out)
		if envEqual(next, cur) {
			break
		}
		cur = next
	}
	a.mute--

	in := cur.clone()
	in[f.Var] = binding{shape: scalarAbs(), definite: true}
	out := a.block(f.Body, in)
	if trip >= 1 {
		// The body definitely runs: post-state is the (joined) body exit,
		// and the loop variable stays bound, matching R semantics.
		return out
	}
	return joinEnv(env, out)
}

// lintUnused warns about variables that are assigned somewhere but never
// read anywhere in the program. The final statement is exempt: its value is
// the program result even when it is an assignment.
func (a *analyzer) lintUnused(stmts []Stmt) {
	reads := map[string]bool{}
	collectReads(stmts, reads)
	finalName := ""
	if n := len(stmts); n > 0 {
		finalName = stmts[n-1].Name
	}
	seen := map[string]bool{}
	var walk func(stmts []Stmt, skipLast bool)
	walk = func(stmts []Stmt, topLevel bool) {
		for i, stmt := range stmts {
			switch {
			case stmt.For != nil:
				walk(stmt.For.Body, false)
			case stmt.If != nil:
				walk(stmt.If.Then, false)
				walk(stmt.If.Else, false)
			case stmt.Name != "":
				if topLevel && i == len(stmts)-1 && stmt.Name == finalName {
					continue
				}
				if !reads[stmt.Name] && !seen[stmt.Name] {
					seen[stmt.Name] = true
					a.report(stmt.Pos, SevWarning, CodeUnusedVar,
						fmt.Sprintf("variable %q is assigned but never read", stmt.Name))
				}
			}
		}
	}
	walk(stmts, true)
}

// collectReads records every variable referenced in read position anywhere
// in the statement list: expressions, loop bounds, and conditions.
func collectReads(stmts []Stmt, into map[string]bool) {
	for _, stmt := range stmts {
		switch {
		case stmt.For != nil:
			freeVars(stmt.For.From, into)
			freeVars(stmt.For.To, into)
			collectReads(stmt.For.Body, into)
		case stmt.If != nil:
			freeVars(stmt.If.Cond, into)
			collectReads(stmt.If.Then, into)
			collectReads(stmt.If.Else, into)
		default:
			freeVars(stmt.Expr, into)
		}
	}
}
