package dml

import (
	"math"
	"math/rand"
	"strings"
	"testing"

	"dmml/internal/la"
	"dmml/internal/workload"
)

func run(t *testing.T, src string, env Env) (Value, *EvalStats) {
	t.Helper()
	p, err := Parse(src)
	if err != nil {
		t.Fatalf("parse %q: %v", src, err)
	}
	v, stats, err := p.Run(env)
	if err != nil {
		t.Fatalf("run %q: %v", src, err)
	}
	return v, stats
}

func runOptimized(t *testing.T, src string, env Env) (Value, *EvalStats, *Program) {
	t.Helper()
	p, err := Parse(src)
	if err != nil {
		t.Fatalf("parse %q: %v", src, err)
	}
	opt := p.Optimize(ShapesFromEnv(env))
	v, stats, err := opt.Run(env)
	if err != nil {
		t.Fatalf("run optimized %q: %v", src, err)
	}
	return v, stats, opt
}

func TestScalarArithmetic(t *testing.T) {
	cases := map[string]float64{
		"1 + 2 * 3":     7,
		"(1 + 2) * 3":   9,
		"2 ^ 3 ^ 1":     8,
		"-2 ^ 2":        -4, // R precedence: -(2^2)
		"10 / 4":        2.5,
		"3 - 1 - 1":     1,
		"2 * 3 ^ 2":     18,
		"sqrt(16) + 1":  5,
		"abs(-3)":       3,
		"exp(0)":        1,
		"sigmoid(0)":    0.5,
		"min(5) + 2":    7,
		"1e2 + 1.5e-1":  100.15,
		"sum(4)":        4,
		"mean(9)":       9,
		"2^-1":          0.5,
		"-(-5)":         5,
		"1 + 2 # notes": 3,
	}
	for src, want := range cases {
		v, _ := run(t, src, Env{})
		if !v.IsScalar || math.Abs(v.S-want) > 1e-12 {
			t.Fatalf("%q = %v, want %v", src, v, want)
		}
	}
}

func TestParseErrors(t *testing.T) {
	for _, src := range []string{
		"", "1 +", "foo(1)", "t(", "x = ", "1 2", "%", "solve(A)", "@",
		"t(1,2)",
	} {
		if _, err := Parse(src); err == nil {
			t.Fatalf("Parse(%q) should fail", src)
		}
	}
}

func TestRunErrors(t *testing.T) {
	a := la.NewDense(2, 3)
	env := Env{"A": Matrix(a)}
	for _, src := range []string{
		"B + 1",       // undefined variable
		"A %*% A",     // inner dim mismatch
		"A + t(A)",    // elementwise shape mismatch
		"trace(A)",    // non-square
		"1 %*% A",     // scalar matmul
		"solve(A, A)", // non-square solve
		"eye(0)",      // bad eye
		"eye(A)",      // non-scalar eye
		"nrow(3)",     // scalar nrow
	} {
		p, err := Parse(src)
		if err != nil {
			t.Fatalf("parse %q: %v", src, err)
		}
		if _, _, err := p.Run(env); err == nil {
			t.Fatalf("Run(%q) should fail", src)
		}
	}
}

func TestMatrixOps(t *testing.T) {
	a, _ := la.FromRows([][]float64{{1, 2}, {3, 4}})
	b, _ := la.FromRows([][]float64{{5, 6}, {7, 8}})
	env := Env{"A": Matrix(a), "B": Matrix(b)}

	v, _ := run(t, "A %*% B", env)
	want, _ := la.FromRows([][]float64{{19, 22}, {43, 50}})
	if !v.M.Equal(want, 1e-12) {
		t.Fatalf("A %%*%% B = %v", v.M)
	}

	v, _ = run(t, "A + B * 2", env)
	wantE, _ := la.FromRows([][]float64{{11, 14}, {17, 20}})
	if !v.M.Equal(wantE, 1e-12) {
		t.Fatalf("A + B*2 = %v", v.M)
	}

	v, _ = run(t, "t(A)", env)
	if v.M.At(0, 1) != 3 {
		t.Fatalf("t(A) = %v", v.M)
	}

	v, _ = run(t, "sum(A)", env)
	if v.S != 10 {
		t.Fatalf("sum(A) = %v", v)
	}
	v, _ = run(t, "mean(A)", env)
	if v.S != 2.5 {
		t.Fatalf("mean(A) = %v", v)
	}
	v, _ = run(t, "trace(A %*% B)", env)
	if v.S != 19+50 {
		t.Fatalf("trace(AB) = %v", v)
	}
	v, _ = run(t, "rowSums(A)", env)
	if v.M.At(0, 0) != 3 || v.M.At(1, 0) != 7 {
		t.Fatalf("rowSums = %v", v.M)
	}
	v, _ = run(t, "colSums(A)", env)
	if v.M.At(0, 0) != 4 || v.M.At(0, 1) != 6 {
		t.Fatalf("colSums = %v", v.M)
	}
	v, _ = run(t, "nrow(A) + ncol(A)", env)
	if v.S != 4 {
		t.Fatalf("nrow+ncol = %v", v)
	}
	v, _ = run(t, "A %*% eye(2)", env)
	if !v.M.Equal(a, 0) {
		t.Fatalf("A·I = %v", v.M)
	}
}

func TestAssignmentsAndMultiStatement(t *testing.T) {
	a, _ := la.FromRows([][]float64{{2, 0}, {0, 2}})
	env := Env{"A": Matrix(a)}
	v, _ := run(t, "B = A %*% A\nc = sum(B)\nc / 2", env)
	if v.S != 4 {
		t.Fatalf("result = %v", v)
	}
	if env["c"].S != 8 {
		t.Fatalf("env c = %v", env["c"])
	}
}

func TestSolveLinearRegression(t *testing.T) {
	r := rand.New(rand.NewSource(170))
	x, y, wTrue := workload.Regression(r, 300, 4, 0.01)
	ym := la.NewDense(300, 1)
	for i, v := range y {
		ym.Set(i, 0, v)
	}
	env := Env{"X": Matrix(x), "y": Matrix(ym), "lambda": Scalar(1e-6)}
	src := `
G = t(X) %*% X + lambda * eye(ncol(X))
w = solve(G, t(X) %*% y)
w
`
	v, _ := run(t, src, env)
	for j := range wTrue {
		if math.Abs(v.M.At(j, 0)-wTrue[j]) > 0.05 {
			t.Fatalf("w[%d] = %v, true %v", j, v.M.At(j, 0), wTrue[j])
		}
	}
	// The optimized program must produce the same weights.
	vOpt, _, _ := runOptimized(t, src, Env{"X": Matrix(x), "y": Matrix(ym), "lambda": Scalar(1e-6)})
	if !vOpt.M.Equal(v.M, 1e-9) {
		t.Fatal("optimized program changed the result")
	}
}

func TestRewriteSumSq(t *testing.T) {
	p, _ := Parse("sum(X ^ 2)")
	opt := p.Optimize(map[string]Shape{"X": matShape(10, 4)})
	if !strings.Contains(opt.String(), "__sumsq") {
		t.Fatalf("rewritten = %s", opt)
	}
	p2, _ := Parse("sum(X * X)")
	opt2 := p2.Optimize(map[string]Shape{"X": matShape(10, 4)})
	if !strings.Contains(opt2.String(), "__sumsq") {
		t.Fatalf("rewritten = %s", opt2)
	}
	// Semantics preserved, intermediates avoided.
	r := rand.New(rand.NewSource(171))
	x, _, _ := workload.Regression(r, 200, 8, 0)
	env := Env{"X": Matrix(x)}
	naive, naiveStats := run(t, "sum(X ^ 2)", env)
	fused, fusedStats, _ := runOptimized(t, "sum(X ^ 2)", env)
	if math.Abs(naive.S-fused.S) > 1e-9 {
		t.Fatalf("fused %v vs naive %v", fused.S, naive.S)
	}
	if fusedStats.CellsAllocated >= naiveStats.CellsAllocated {
		t.Fatalf("fusion did not reduce allocation: %d vs %d",
			fusedStats.CellsAllocated, naiveStats.CellsAllocated)
	}
}

func TestRewriteTraceMM(t *testing.T) {
	p, _ := Parse("trace(A %*% B)")
	opt := p.Optimize(map[string]Shape{"A": matShape(50, 30), "B": matShape(30, 50)})
	if !strings.Contains(opt.String(), "__tracemm") {
		t.Fatalf("rewritten = %s", opt)
	}
	r := rand.New(rand.NewSource(172))
	a, _, _ := workload.Regression(r, 40, 30, 0)
	b, _, _ := workload.Regression(r, 30, 40, 0)
	env := Env{"A": Matrix(a), "B": Matrix(b)}
	naive, naiveStats := run(t, "trace(A %*% B)", env)
	fused, fusedStats, _ := runOptimized(t, "trace(A %*% B)", env)
	if math.Abs(naive.S-fused.S) > 1e-8 {
		t.Fatalf("fused %v vs naive %v", fused.S, naive.S)
	}
	if fusedStats.Flops >= naiveStats.Flops {
		t.Fatalf("tracemm did not reduce flops: %v vs %v", fusedStats.Flops, naiveStats.Flops)
	}
}

func TestRewriteDoubleTranspose(t *testing.T) {
	p, _ := Parse("t(t(X))")
	opt := p.Optimize(map[string]Shape{"X": matShape(5, 5)})
	if opt.String() != "X" {
		t.Fatalf("rewritten = %s", opt)
	}
}

func TestRewriteIdentities(t *testing.T) {
	shapes := map[string]Shape{"X": matShape(7, 7)}
	cases := map[string]string{
		"X + 0":        "X",
		"0 + X":        "X",
		"X - 0":        "X",
		"X * 1":        "X",
		"1 * X":        "X",
		"X / 1":        "X",
		"X ^ 1":        "X",
		"X %*% eye(7)": "X",
		"eye(7) %*% X": "X",
		"1 + 2":        "3",
	}
	for src, want := range cases {
		p, _ := Parse(src)
		if got := p.Optimize(shapes).String(); got != want {
			t.Fatalf("%q rewrote to %q, want %q", src, got, want)
		}
	}
}

func TestMatrixChainReordering(t *testing.T) {
	// (X %*% Y) %*% v with X 100×100, Y 100×100, v 100×1: right-assoc order
	// costs 2·(100·100·1) products instead of one 100³ product.
	shapes := map[string]Shape{
		"X": matShape(100, 100),
		"Y": matShape(100, 100),
		"v": matShape(100, 1),
	}
	p, _ := Parse("X %*% Y %*% v")
	opt := p.Optimize(shapes)
	if opt.String() != "(X %*% (Y %*% v))" {
		t.Fatalf("rewritten = %s", opt)
	}
	// Execution agrees and uses fewer flops.
	r := rand.New(rand.NewSource(173))
	x, _, _ := workload.Regression(r, 100, 100, 0)
	y, _, _ := workload.Regression(r, 100, 100, 0)
	v, _, _ := workload.Regression(r, 100, 1, 0)
	env := Env{"X": Matrix(x), "Y": Matrix(y), "v": Matrix(v)}
	naive, naiveStats := run(t, "X %*% Y %*% v", env)
	fast, fastStats, _ := runOptimized(t, "X %*% Y %*% v", env)
	if !naive.M.Equal(fast.M, 1e-8) {
		t.Fatal("reordering changed the result")
	}
	if fastStats.Flops >= naiveStats.Flops/10 {
		t.Fatalf("reordering flops %v vs naive %v", fastStats.Flops, naiveStats.Flops)
	}
}

func TestGramFusionInEval(t *testing.T) {
	// t(X) %*% X executes as a fused Gram without materializing t(X).
	r := rand.New(rand.NewSource(174))
	x, _, _ := workload.Regression(r, 500, 10, 0)
	env := Env{"X": Matrix(x)}
	v, stats := run(t, "t(X) %*% X", env)
	if !v.M.Equal(la.Gram(x), 1e-8) {
		t.Fatal("gram mismatch")
	}
	// Allocation must be ~d×d, not n×d (the transpose) + d×d.
	if stats.CellsAllocated > 200 {
		t.Fatalf("allocated %d cells; transpose was materialized", stats.CellsAllocated)
	}
}

func TestCSE(t *testing.T) {
	r := rand.New(rand.NewSource(175))
	x, _, _ := workload.Regression(r, 100, 5, 0)
	env := Env{"X": Matrix(x)}
	// t(X) %*% X appears twice; CSE must evaluate it once.
	_, stats := run(t, "sum(t(X) %*% X) + trace(t(X) %*% X)", env)
	if stats.CSEHits == 0 {
		t.Fatal("expected CSE hits for repeated subexpression")
	}
}

func TestSumPlusRewrite(t *testing.T) {
	shapes := map[string]Shape{"A": matShape(10, 10), "B": matShape(10, 10)}
	p, _ := Parse("sum(A + B)")
	opt := p.Optimize(shapes)
	if opt.String() != "(sum(A) + sum(B))" {
		t.Fatalf("rewritten = %s", opt)
	}
}

func TestProgramStringRoundTrip(t *testing.T) {
	src := "G = t(X) %*% X\nsum(G)"
	p, _ := Parse(src)
	p2, err := Parse(p.String())
	if err != nil {
		t.Fatalf("reparse: %v", err)
	}
	if p2.String() != p.String() {
		t.Fatalf("round trip: %q vs %q", p2.String(), p.String())
	}
}

func TestSigmoidMatrix(t *testing.T) {
	a, _ := la.FromRows([][]float64{{0, 100}, {-100, 0}})
	env := Env{"A": Matrix(a)}
	v, _ := run(t, "sigmoid(A)", env)
	if v.M.At(0, 0) != 0.5 || v.M.At(0, 1) < 0.999 || v.M.At(1, 0) > 0.001 {
		t.Fatalf("sigmoid = %v", v.M)
	}
}

func TestSolveNonSPDFallsBackToQR(t *testing.T) {
	// Non-symmetric but invertible system.
	a, _ := la.FromRows([][]float64{{0, 1}, {1, 0}})
	b, _ := la.FromRows([][]float64{{3}, {5}})
	env := Env{"A": Matrix(a), "b": Matrix(b)}
	v, _ := run(t, "solve(A, b)", env)
	if math.Abs(v.M.At(0, 0)-5) > 1e-9 || math.Abs(v.M.At(1, 0)-3) > 1e-9 {
		t.Fatalf("solve = %v", v.M)
	}
}

func TestCbindRbind(t *testing.T) {
	a, _ := la.FromRows([][]float64{{1, 2}, {3, 4}})
	b, _ := la.FromRows([][]float64{{5, 6}, {7, 8}})
	env := Env{"A": Matrix(a), "B": Matrix(b)}
	v, _ := run(t, "cbind(A, B)", env)
	if v.M.Cols() != 4 || v.M.At(0, 2) != 5 {
		t.Fatalf("cbind = %v", v.M)
	}
	v, _ = run(t, "rbind(A, B)", env)
	if v.M.Rows() != 4 || v.M.At(2, 0) != 5 {
		t.Fatalf("rbind = %v", v.M)
	}
	// Shape inference feeds later rewrites.
	p, _ := Parse("ncol(cbind(A, B)) + nrow(rbind(A, B))")
	val, _, err := p.Run(env)
	if err != nil {
		t.Fatal(err)
	}
	if val.S != 8 {
		t.Fatalf("dims sum = %v", val.S)
	}
	// Mismatched shapes fail cleanly.
	c := la.NewDense(3, 2)
	env["C"] = Matrix(c)
	p2, _ := Parse("cbind(A, C)")
	if _, _, err := p2.Run(env); err == nil {
		t.Fatal("want cbind shape error")
	}
	p3, _ := Parse("rbind(A, t(C))")
	if _, _, err := p3.Run(env); err == nil {
		t.Fatal("want rbind shape error")
	}
	// Scalars rejected.
	p4, _ := Parse("cbind(1, A)")
	if _, _, err := p4.Run(env); err == nil {
		t.Fatal("want scalar rejection")
	}
}

func TestIndexing(t *testing.T) {
	a, _ := la.FromRows([][]float64{
		{1, 2, 3},
		{4, 5, 6},
		{7, 8, 9},
	})
	env := Env{"A": Matrix(a)}
	cases := []struct {
		src  string
		want float64
	}{
		{"A[2, 3]", 6},
		{"A[1, 1] + A[3, 3]", 10},
		{"sum(A[1:2, 2:3])", 2 + 3 + 5 + 6},
		{"sum(A[, 1])", 12}, // whole first column
		{"sum(A[2, ])", 15}, // whole second row
		{"nrow(A[1:2, ])", 2},
		{"ncol(A[, 2:3])", 2},
		{"A[1 + 1, 3 - 2]", 4}, // computed indices
		{"sum(A[, ])", 45},     // full matrix
	}
	for _, c := range cases {
		v, _ := run(t, c.src, env)
		if !v.IsScalar || v.S != c.want {
			t.Fatalf("%q = %v, want %v", c.src, v, c.want)
		}
	}
	// Sub-matrix result.
	v, _ := run(t, "A[2:3, 1:2]", env)
	want, _ := la.FromRows([][]float64{{4, 5}, {7, 8}})
	if !v.M.Equal(want, 0) {
		t.Fatalf("A[2:3,1:2] = %v", v.M)
	}
}

func TestIndexingErrors(t *testing.T) {
	a := la.NewDense(2, 2)
	env := Env{"A": Matrix(a)}
	for _, src := range []string{
		"A[0, 1]",   // 1-based: 0 invalid
		"A[3, 1]",   // out of range
		"A[1, 2:1]", // reversed range
		"A[1.5, 1]", // non-integer
		"A[A, 1]",   // matrix index
		"3[1, 1]",   // scalar base
		"A[1, 1:9]", // range beyond size
	} {
		p, err := Parse(src)
		if err != nil {
			t.Fatalf("parse %q: %v", src, err)
		}
		if _, _, err := p.Run(env); err == nil {
			t.Fatalf("Run(%q) should fail", src)
		}
	}
	// Parse errors.
	for _, src := range []string{"A[1]", "A[1,", "A[1, 2", "A[:, 1]"} {
		if _, err := Parse(src); err == nil {
			t.Fatalf("Parse(%q) should fail", src)
		}
	}
}

func TestIndexingRoundTripAndShape(t *testing.T) {
	p, _ := Parse("A[1:2, ] %*% B")
	if p.String() != "(A[1:2, ] %*% B)" {
		t.Fatalf("render = %s", p.String())
	}
	p2, err := Parse(p.String())
	if err != nil {
		t.Fatal(err)
	}
	if p2.String() != p.String() {
		t.Fatal("indexing render not stable")
	}
	// Static shapes flow through literal-index expressions: the chain
	// reorderer can use them.
	shapes := map[string]Shape{"A": matShape(100, 100), "B": matShape(100, 100), "v": matShape(100, 1)}
	p3, _ := Parse("A[1:50, ] %*% B %*% v")
	opt := p3.Optimize(shapes)
	if opt.String() != "(A[1:50, ] %*% (B %*% v))" {
		t.Fatalf("chain with indexed factor = %s", opt)
	}
}

func TestIndexingInsideLoop(t *testing.T) {
	// Sum the diagonal via indexing in a loop.
	a, _ := la.FromRows([][]float64{{1, 0}, {0, 5}})
	v, _ := run(t, `
s = 0
for (i in 1:2) {
  s = s + A[i, i]
}
s`, Env{"A": Matrix(a)})
	if v.S != 6 {
		t.Fatalf("diag sum = %v", v.S)
	}
}
