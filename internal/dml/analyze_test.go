package dml

import (
	"strings"
	"testing"

	"dmml/internal/la"
)

// analyzeSrc parses src and runs the analyzer with the given input shapes.
func analyzeSrc(t *testing.T, src string, inputs map[string]Shape) *Analysis {
	t.Helper()
	p, err := Parse(src)
	if err != nil {
		t.Fatalf("parse %q: %v", src, err)
	}
	return p.Analyze(inputs)
}

// TestShapeInferenceBuiltins covers the abstract shape of every builtin in
// ast.go's supported list (plus operators, indexing, and the internal fused
// ops), checked through a one-assignment program.
func TestShapeInferenceBuiltins(t *testing.T) {
	inputs := map[string]Shape{
		"X": matShape(4, 3), // rectangular data
		"G": matShape(3, 3), // square (trace/solve)
		"z": matShape(3, 1), // column vector
		"s": scalarShape(),
	}
	cases := []struct{ src, want string }{
		{"t(X)", "matrix(3x4)"},
		{"sum(X)", "scalar"},
		{"mean(X)", "scalar"},
		{"min(X)", "scalar"},
		{"max(X)", "scalar"},
		{"trace(G)", "scalar"},
		{"nrow(X)", "scalar(4)"},
		{"ncol(X)", "scalar(3)"},
		{"rowSums(X)", "matrix(4x1)"},
		{"colSums(X)", "matrix(1x3)"},
		{"exp(X)", "matrix(4x3)"},
		{"log(X)", "matrix(4x3)"},
		{"sqrt(X)", "matrix(4x3)"},
		{"abs(s)", "scalar"},
		{"sigmoid(X)", "matrix(4x3)"},
		{"eye(5)", "matrix(5x5)"},
		{"eye(ncol(X))", "matrix(3x3)"},
		{"solve(G, z)", "matrix(3x1)"},
		{"cbind(X, X)", "matrix(4x6)"},
		{"rbind(X, X)", "matrix(8x3)"},
		// Operators and indexing.
		{"X %*% t(X)", "matrix(4x4)"},
		{"t(X) %*% X", "matrix(3x3)"},
		{"X + X", "matrix(4x3)"},
		{"2 * X", "matrix(4x3)"},
		{"X ^ 2", "matrix(4x3)"},
		{"-X", "matrix(4x3)"},
		{"X[1:2, ]", "matrix(2x3)"},
		{"X[1, ]", "matrix(1x3)"},
		{"X[2, 3]", "scalar"},
		{"s < 3", "scalar"},
		{"2 < 3", "scalar(1)"},
		{"nrow(X) + ncol(X)", "scalar(7)"},
		{"nrow(X) * s", "scalar"},
		{"1 + 2 * 3", "scalar(7)"},
	}
	for _, c := range cases {
		a := analyzeSrc(t, "r = "+c.src, inputs)
		if a.HasErrors() {
			t.Fatalf("%s: unexpected errors: %s", c.src, a.Format())
		}
		got := a.Shapes["r"].String()
		if got != c.want {
			t.Errorf("shape(%s) = %s, want %s", c.src, got, c.want)
		}
	}
}

// TestShapeInferenceFusedOps covers the internal rewriter-produced builtins.
func TestShapeInferenceFusedOps(t *testing.T) {
	env := absEnv{
		"A": {shape: matrixAbs(3, 4), definite: true},
		"B": {shape: matrixAbs(4, 3), definite: true},
	}
	sq := &Call{Fn: "__sumsq", Args: []Node{&Var{Name: "A"}}}
	if got := inferAbs(sq, env, nil).String(); got != "scalar" {
		t.Fatalf("__sumsq shape = %s", got)
	}
	tr := &Call{Fn: "__tracemm", Args: []Node{&Var{Name: "A"}, &Var{Name: "B"}}}
	if got := inferAbs(tr, env, nil).String(); got != "scalar" {
		t.Fatalf("__tracemm shape = %s", got)
	}
}

// A dimension mismatch is rejected by the analyzer with a line:col
// diagnostic before any statement executes: the assignment preceding the bad
// statement must not reach the environment.
func TestAnalyzerRejectsMismatchWithoutExecuting(t *testing.T) {
	src := "x = 1\nB = A %*% C\nB"
	env := Env{
		"A": Matrix(la.NewDense(2, 3)),
		"C": Matrix(la.NewDense(2, 2)), // inner dims 3 != 2
	}
	p, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	_, _, err = p.Run(env)
	if err == nil {
		t.Fatal("Run should fail on the static dimension mismatch")
	}
	if !strings.Contains(err.Error(), CodeDimMismatch) {
		t.Fatalf("error should carry %s, got: %v", CodeDimMismatch, err)
	}
	if !strings.Contains(err.Error(), "2:7") {
		t.Fatalf("error should point at line 2 col 7 (the %%*%%), got: %v", err)
	}
	if _, executed := env["x"]; executed {
		t.Fatal("statement 1 executed despite the static error: eval was reached")
	}
}

// The matrix-chain DP must pick the FLOP-minimal association using shapes
// only the analyzer's abstract interpreter can derive: eye(n) with a
// constant-propagated n, and index spans over it.
func TestChainReorderUsesAnalyzerInferredShapes(t *testing.T) {
	src := `
n = 100
B = eye(n)
A = B[1:2, ]
v = B[, 1]
A %*% B %*% v
`
	p, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	opt := p.Optimize(nil)
	if !strings.Contains(opt.String(), "(A %*% (B %*% v))") {
		t.Fatalf("chain not reordered from inferred shapes:\n%s", opt)
	}
	// And the plan is semantically intact.
	v, _, err := opt.Run(Env{})
	if err != nil {
		t.Fatal(err)
	}
	if v.IsScalar || v.M.Rows() != 2 || v.M.Cols() != 1 {
		t.Fatalf("result = %v", v)
	}
}

// Shapes survive if/else joins when both branches agree, and degrade to
// unknown dims (not errors) when they disagree.
func TestAnalyzerControlFlowJoins(t *testing.T) {
	inputs := map[string]Shape{"q": scalarShape()}
	a := analyzeSrc(t, `
if (q > 0) {
  M = eye(3)
} else {
  M = eye(3)
}
r = M %*% M
r`, inputs)
	if a.HasErrors() {
		t.Fatalf("unexpected errors: %s", a.Format())
	}
	if got := a.Shapes["r"].String(); got != "matrix(3x3)" {
		t.Fatalf("joined shape = %s", got)
	}

	a = analyzeSrc(t, `
if (q > 0) {
  M = eye(3)
} else {
  M = eye(4)
}
r = M %*% M
r`, inputs)
	if a.HasErrors() {
		t.Fatalf("disagreeing join must not error: %s", a.Format())
	}
	if got := a.Shapes["M"].String(); got != "matrix(?x?)" {
		t.Fatalf("joined shape = %s", got)
	}
}

// Loop bodies analyze to a fixpoint: a shape that changes across iterations
// (growing cbind) widens to unknown instead of erroring, while stable shapes
// stay precise.
func TestAnalyzerLoopFixpoint(t *testing.T) {
	a := analyzeSrc(t, `
Acc = eye(4)
for (i in 1:3) {
  Acc = cbind(Acc, eye(4))
}
Acc`, nil)
	if a.HasErrors() {
		t.Fatalf("growing loop must not error: %s", a.Format())
	}
	if got := a.Shapes["Acc"].String(); got != "matrix(4x?)" {
		t.Fatalf("widened shape = %s, want matrix(4x?)", got)
	}

	a = analyzeSrc(t, `
w = eye(5)
for (i in 1:3) {
  w = w %*% w
}
r = nrow(w)
r`, nil)
	if a.HasErrors() {
		t.Fatalf("stable loop must not error: %s", a.Format())
	}
	if got := a.Shapes["w"].String(); got != "matrix(5x5)" {
		t.Fatalf("stable shape = %s", got)
	}
	if got := a.Shapes["r"].String(); got != "scalar(5)" {
		t.Fatalf("nrow over loop fixpoint = %s", got)
	}
}

// Optimize (including the LICM statement rebuild) must preserve statement
// positions, or post-optimization diagnostics would all point at 1:1.
func TestOptimizePreservesStmtPositions(t *testing.T) {
	p := mustParse(t, "x = 1\nfor (i in 5:1) {\n  x = x + 1\n}\nx")
	opt := p.Optimize(nil)
	for _, d := range opt.Analyze(nil).Warnings() {
		if d.Code == CodeEmptyLoop {
			if line, col := lineCol(opt.Src, d.Pos); line != 2 || col != 1 {
				t.Fatalf("empty-loop warning at %d:%d, want 2:1", line, col)
			}
			return
		}
	}
	t.Fatal("no empty-loop warning after Optimize")
}

// Warnings collect into EvalStats without aborting evaluation.
func TestRunCollectsWarnings(t *testing.T) {
	v, stats, err := mustParse(t, "dead = 1\ns = 2\ns + 1").Run(Env{})
	if err != nil {
		t.Fatal(err)
	}
	if v.S != 3 {
		t.Fatalf("result = %v", v)
	}
	if len(stats.Warnings) != 1 || stats.Warnings[0].Code != CodeUnusedVar {
		t.Fatalf("warnings = %v", stats.Warnings)
	}
}

// The final statement's assignment is the program's result value and is
// exempt from the unused-variable lint.
func TestUnusedExemptsFinalStatement(t *testing.T) {
	a := analyzeSrc(t, "w = eye(2)\nw2 = w %*% w", nil)
	for _, d := range a.Diags {
		if d.Code == CodeUnusedVar {
			t.Fatalf("final assignment flagged unused: %s", a.Format())
		}
	}
}

// Analyzer arity checking catches programmatically built calls the parser
// could never produce.
func TestAnalyzerArity(t *testing.T) {
	p := &Program{Stmts: []Stmt{{Expr: &Call{Fn: "solve", Args: []Node{&NumLit{Val: 1}}}}}}
	a := p.Analyze(nil)
	if !a.HasErrors() || a.Errors()[0].Code != CodeBadArity {
		t.Fatalf("diags = %v", a.Diags)
	}
	p = &Program{Stmts: []Stmt{{Expr: &Call{Fn: "nonsense", Args: nil}}}}
	if a := p.Analyze(nil); !a.HasErrors() || a.Errors()[0].Code != CodeBadArity {
		t.Fatalf("diags = %v", a.Diags)
	}
}

// Lint mode treats never-assigned variables as external inputs; Run mode
// (concrete env) treats them as undefined.
func TestLintAssumesInputs(t *testing.T) {
	p := mustParse(t, "G = t(X) %*% X\nG")
	if a := p.Lint(nil); a.HasErrors() {
		t.Fatalf("lint mode should assume X is an input: %s", a.Format())
	}
	if a := p.Analyze(nil); !a.HasErrors() || a.Errors()[0].Code != CodeUndefinedVar {
		t.Fatalf("strict mode should reject undefined X: %s", a.Format())
	}
}

// lineCol satellite: offsets convert to 1-based line:col, clamped at EOF.
func TestLineCol(t *testing.T) {
	src := "ab\ncde\n\nf"
	cases := []struct{ pos, line, col int }{
		{0, 1, 1}, {1, 1, 2}, {2, 1, 3}, // "ab" and its newline
		{3, 2, 1}, {5, 2, 3}, // "cde"
		{7, 3, 1},  // empty line
		{8, 4, 1},  // "f"
		{99, 4, 2}, // clamped past EOF
	}
	for _, c := range cases {
		line, col := lineCol(src, c.pos)
		if line != c.line || col != c.col {
			t.Errorf("lineCol(%d) = %d:%d, want %d:%d", c.pos, line, col, c.line, c.col)
		}
	}
}

// Parser and evaluator error messages carry line:col (satellite: shared
// lineCol helper replaces raw byte offsets everywhere).
func TestErrorsReportLineCol(t *testing.T) {
	_, err := Parse("x = 1\ny = (2")
	if err == nil || !strings.Contains(err.Error(), "2:7") {
		t.Fatalf("parse error should carry 2:7, got %v", err)
	}
	_, err = Parse("x = 1\nz = 3 @ 4")
	if err == nil || !strings.Contains(err.Error(), "2:7") {
		t.Fatalf("lex error should carry 2:7, got %v", err)
	}
	// Evaluator (runtime) errors: the loop widens k to a non-constant scalar,
	// so the out-of-range index is only detectable at runtime.
	p := mustParse(t, "k = 0\nfor (i in 1:3) {\n  k = k + 1\n}\nA[k + 5, 1]")
	_, _, err = p.Run(Env{"A": Matrix(la.NewDense(2, 2))})
	if err == nil || !strings.Contains(err.Error(), "5:1") {
		t.Fatalf("runtime error should carry 5:1, got %v", err)
	}
}
