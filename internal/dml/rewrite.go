package dml

import (
	"math"
)

// Optimize rewrites the program with SystemML-style algebraic rewrites:
// constant folding, identity elimination, t(t(A)) collapse, aggregate fusion
// (sum(A^2), sum(A*A) → fused sum-of-squares; trace(A%*%B) → fused
// contraction), identity-matrix elimination, and cost-based matrix-chain
// reordering driven by the shapes of the environment's variables.
//
// Shape information comes from the same abstract interpreter the static
// analyzer uses (shapes.go), so anything the analyzer can infer — including
// sizes that flow through constants, eye(n), nrow/ncol, and indexing — is
// available to the size-aware rewrites.
// After the algebraic rewrites, the operator-fusion pass (fuse.go) collapses
// single-consumer elementwise regions into Cell and RowAgg templates, which
// execute through the process-wide default fusion mode (compiled kernels
// unless SetDefaultFusion picked the interpreter or disabled fusion).
func (p *Program) Optimize(vars map[string]Shape) *Program {
	return p.OptimizeFusion(vars, DefaultFusion())
}

// OptimizeUnfused applies every rewrite except operator fusion; the fusion
// experiment (E15) uses it as the materializing baseline.
func (p *Program) OptimizeUnfused(vars map[string]Shape) *Program {
	return p.optimize(vars, false)
}

func (p *Program) optimize(vars map[string]Shape, fuse bool) *Program {
	counter := 0
	stmts := applyLICM(p.Stmts, &counter)
	stmts = optimizeStmts(stmts, envFromShapes(vars))
	if fuse {
		// Fresh env: optimizeStmts mutated its copy while tracking statements.
		stmts = fuseStmts(stmts, envFromShapes(vars))
	}
	return &Program{Stmts: stmts, Src: p.Src}
}

func envFromShapes(vars map[string]Shape) absEnv {
	env := make(absEnv, len(vars))
	for k, v := range vars {
		env[k] = binding{shape: absFromShape(v), definite: true}
	}
	return env
}

// optimizeStmts rewrites a statement list, tracking variable shapes through
// assignments. Control-flow bodies are rewritten with the loop variable
// bound to a scalar; variables assigned inside a branch or loop get their
// shapes conservatively invalidated afterwards (the construct may or may not
// execute).
func optimizeStmts(stmts []Stmt, env absEnv) []Stmt {
	out := make([]Stmt, len(stmts))
	for i, stmt := range stmts {
		switch {
		case stmt.For != nil:
			inner := env.clone()
			inner[stmt.For.Var] = binding{shape: scalarAbs(), definite: true}
			invalidateAssigned(stmt.For.Body, inner)
			body := optimizeStmts(stmt.For.Body, inner)
			out[i] = Stmt{For: &ForStmt{
				Var:  stmt.For.Var,
				From: rewriteFixpoint(stmt.For.From, env),
				To:   rewriteFixpoint(stmt.For.To, env),
				Body: body,
			}, Pos: stmt.Pos}
			invalidateAssigned(stmt.For.Body, env)
			env[stmt.For.Var] = binding{shape: scalarAbs(), definite: true}
		case stmt.If != nil:
			thenEnv := env.clone()
			elseEnv := env.clone()
			out[i] = Stmt{If: &IfStmt{
				Cond: rewriteFixpoint(stmt.If.Cond, env),
				Then: optimizeStmts(stmt.If.Then, thenEnv),
				Else: optimizeStmts(stmt.If.Else, elseEnv),
			}, Pos: stmt.Pos}
			invalidateAssigned(stmt.If.Then, env)
			invalidateAssigned(stmt.If.Else, env)
		default:
			expr := rewriteFixpoint(stmt.Expr, env)
			out[i] = Stmt{Name: stmt.Name, Expr: expr, Pos: stmt.Pos}
			if stmt.Name != "" {
				env[stmt.Name] = binding{shape: inferAbs(expr, env, nil), definite: true}
			}
		}
	}
	return out
}

// invalidateAssigned clears the shapes of every variable assigned anywhere
// in the statement list (recursively).
func invalidateAssigned(stmts []Stmt, env absEnv) {
	for _, stmt := range stmts {
		switch {
		case stmt.For != nil:
			invalidateAssigned(stmt.For.Body, env)
		case stmt.If != nil:
			invalidateAssigned(stmt.If.Then, env)
			invalidateAssigned(stmt.If.Else, env)
		case stmt.Name != "":
			delete(env, stmt.Name)
		}
	}
}

const maxRewritePasses = 20

func rewriteFixpoint(n Node, env absEnv) Node {
	for pass := 0; pass < maxRewritePasses; pass++ {
		before := n.String()
		n = rewriteNode(n, env)
		if n.String() == before {
			break
		}
	}
	return n
}

// rewriteNode applies one bottom-up rewrite pass.
func rewriteNode(n Node, env absEnv) Node {
	switch t := n.(type) {
	case *NumLit, *Var:
		return n
	case *Unary:
		x := rewriteNode(t.X, env)
		if lit, ok := x.(*NumLit); ok {
			return &NumLit{Val: -lit.Val, Pos: t.Pos}
		}
		if inner, ok := x.(*Unary); ok { // --A → A
			return inner.X
		}
		return &Unary{X: x, Pos: t.Pos}
	case *BinOp:
		l := rewriteNode(t.Left, env)
		r := rewriteNode(t.Right, env)
		nn := &BinOp{Op: t.Op, Left: l, Right: r, Pos: t.Pos}
		if folded, ok := foldConst(nn); ok {
			return folded
		}
		if simplified, ok := identityElim(nn, env); ok {
			return simplified
		}
		if nn.Op == "%*%" {
			return reorderChain(nn, env)
		}
		return nn
	case *Call:
		args := make([]Node, len(t.Args))
		for i, a := range t.Args {
			args[i] = rewriteNode(a, env)
		}
		nn := &Call{Fn: t.Fn, Args: args, Pos: t.Pos}
		return rewriteCall(nn, env)
	case *Index:
		return &Index{
			X:   rewriteNode(t.X, env),
			Row: rewriteSpec(t.Row, env),
			Col: rewriteSpec(t.Col, env),
			Pos: t.Pos,
		}
	}
	return n
}

func rewriteSpec(spec *IndexSpec, env absEnv) *IndexSpec {
	if spec.All {
		return spec
	}
	out := &IndexSpec{Lo: rewriteNode(spec.Lo, env)}
	if spec.Hi != nil {
		out.Hi = rewriteNode(spec.Hi, env)
	}
	return out
}

func foldConst(n *BinOp) (Node, bool) {
	l, lok := n.Left.(*NumLit)
	r, rok := n.Right.(*NumLit)
	if !lok || !rok {
		return nil, false
	}
	var v float64
	switch n.Op {
	case "+":
		v = l.Val + r.Val
	case "-":
		v = l.Val - r.Val
	case "*":
		v = l.Val * r.Val
	case "/":
		v = l.Val / r.Val
	case "^":
		v = math.Pow(l.Val, r.Val)
	default:
		return nil, false
	}
	return &NumLit{Val: v, Pos: n.Pos}, true
}

func isLit(n Node, v float64) bool {
	lit, ok := n.(*NumLit)
	return ok && lit.Val == v
}

// identityElim removes arithmetic identities and identity-matrix products.
func identityElim(n *BinOp, env absEnv) (Node, bool) {
	switch n.Op {
	case "+":
		if isLit(n.Left, 0) {
			return n.Right, true
		}
		if isLit(n.Right, 0) {
			return n.Left, true
		}
	case "-":
		if isLit(n.Right, 0) {
			return n.Left, true
		}
	case "*":
		if isLit(n.Left, 1) {
			return n.Right, true
		}
		if isLit(n.Right, 1) {
			return n.Left, true
		}
	case "/":
		if isLit(n.Right, 1) {
			return n.Left, true
		}
	case "^":
		if isLit(n.Right, 1) {
			return n.Left, true
		}
	case "%*%":
		// A %*% eye(n) → A and eye(n) %*% A → A when shapes agree.
		if c, ok := n.Right.(*Call); ok && c.Fn == "eye" {
			ls := inferAbs(n.Left, env, nil)
			es := inferAbs(c, env, nil)
			if ls.DimsKnown() && es.DimsKnown() && ls.Cols == es.Rows {
				return n.Left, true
			}
		}
		if c, ok := n.Left.(*Call); ok && c.Fn == "eye" {
			rs := inferAbs(n.Right, env, nil)
			es := inferAbs(c, env, nil)
			if rs.DimsKnown() && es.DimsKnown() && es.Cols == rs.Rows {
				return n.Right, true
			}
		}
	}
	return nil, false
}

func rewriteCall(n *Call, env absEnv) Node {
	switch n.Fn {
	case "t":
		// t(t(A)) → A.
		if inner, ok := n.Args[0].(*Call); ok && inner.Fn == "t" {
			return inner.Args[0]
		}
	case "sum":
		arg := n.Args[0]
		if b, ok := arg.(*BinOp); ok {
			// sum(A^2) and sum(A*A) → fused sum-of-squares.
			if b.Op == "^" && isLit(b.Right, 2) {
				return &Call{Fn: "__sumsq", Args: []Node{b.Left}, Pos: n.Pos}
			}
			if b.Op == "*" && b.Left.String() == b.Right.String() {
				return &Call{Fn: "__sumsq", Args: []Node{b.Left}, Pos: n.Pos}
			}
			// sum(A+B) → sum(A)+sum(B) for same-shape matrices: avoids the
			// intermediate sum matrix.
			if b.Op == "+" {
				ls, rs := inferAbs(b.Left, env, nil), inferAbs(b.Right, env, nil)
				if ls.IsMatrix() && rs.IsMatrix() {
					return &BinOp{
						Op:   "+",
						Left: &Call{Fn: "sum", Args: []Node{b.Left}, Pos: n.Pos},
						Right: &Call{Fn: "sum", Args: []Node{b.Right},
							Pos: n.Pos},
						Pos: n.Pos,
					}
				}
			}
		}
	case "trace":
		// trace(A %*% B) → fused pairwise contraction, skipping the product.
		if b, ok := n.Args[0].(*BinOp); ok && b.Op == "%*%" {
			return &Call{Fn: "__tracemm", Args: []Node{b.Left, b.Right}, Pos: n.Pos}
		}
	}
	return n
}

// reorderChain applies the classic matrix-chain-order DP to a %*% chain when
// every factor's shape is known, minimizing intermediate flops. Factor
// shapes come from the analyzer's abstract interpreter, so dimensions that
// are only derivable statically (eye(n) with constant n, index spans,
// nrow/ncol arithmetic) still enable reordering.
func reorderChain(n *BinOp, env absEnv) Node {
	factors := flattenChain(n)
	if len(factors) < 3 {
		return n
	}
	dims := make([]int, len(factors)+1)
	for i, f := range factors {
		s := inferAbs(f, env, nil)
		if !s.DimsKnown() {
			return n
		}
		if i == 0 {
			dims[0] = s.Rows
		} else if dims[i] != s.Rows {
			return n // inconsistent chain; leave for the analyzer/runtime
		}
		dims[i+1] = s.Cols
	}
	k := len(factors)
	// DP over chain splits.
	cost := make([][]float64, k)
	split := make([][]int, k)
	for i := range cost {
		cost[i] = make([]float64, k)
		split[i] = make([]int, k)
	}
	for span := 1; span < k; span++ {
		for i := 0; i+span < k; i++ {
			j := i + span
			cost[i][j] = math.Inf(1)
			for s := i; s < j; s++ {
				c := cost[i][s] + cost[s+1][j] +
					float64(dims[i])*float64(dims[s+1])*float64(dims[j+1])
				if c < cost[i][j] {
					cost[i][j] = c
					split[i][j] = s
				}
			}
		}
	}
	var build func(i, j int) Node
	build = func(i, j int) Node {
		if i == j {
			return factors[i]
		}
		s := split[i][j]
		return &BinOp{Op: "%*%", Left: build(i, s), Right: build(s+1, j), Pos: n.Pos}
	}
	return build(0, k-1)
}

// flattenChain collects the factors of a left-deep (or arbitrary) %*% tree.
func flattenChain(n Node) []Node {
	if b, ok := n.(*BinOp); ok && b.Op == "%*%" {
		return append(flattenChain(b.Left), flattenChain(b.Right)...)
	}
	return []Node{n}
}
