package dml

import (
	"math"
)

// Shape describes an expression's dimensions when statically known.
type Shape struct {
	Rows, Cols int
	Scalar     bool
	Known      bool
}

func scalarShape() Shape       { return Shape{Scalar: true, Known: true} }
func matShape(r, c int) Shape  { return Shape{Rows: r, Cols: c, Known: true} }
func unknownShape() Shape      { return Shape{} }
func (s Shape) isMatrix() bool { return s.Known && !s.Scalar }

// inferShape computes the static shape of n given variable shapes.
func inferShape(n Node, vars map[string]Shape) Shape {
	switch t := n.(type) {
	case *NumLit:
		return scalarShape()
	case *Var:
		if s, ok := vars[t.Name]; ok {
			return s
		}
		return unknownShape()
	case *Unary:
		return inferShape(t.X, vars)
	case *BinOp:
		if compareOps[t.Op] {
			return scalarShape()
		}
		l := inferShape(t.Left, vars)
		r := inferShape(t.Right, vars)
		if t.Op == "%*%" {
			if l.isMatrix() && r.isMatrix() {
				return matShape(l.Rows, r.Cols)
			}
			return unknownShape()
		}
		if !l.Known || !r.Known {
			return unknownShape()
		}
		if l.Scalar && r.Scalar {
			return scalarShape()
		}
		if l.Scalar {
			return r
		}
		return l
	case *Index:
		base := inferShape(t.X, vars)
		if !base.isMatrix() {
			return unknownShape()
		}
		r, rok := specSpan(t.Row, base.Rows)
		c, cok := specSpan(t.Col, base.Cols)
		if !rok || !cok {
			return unknownShape()
		}
		if r == 1 && c == 1 {
			return scalarShape()
		}
		return matShape(r, c)
	case *Call:
		switch t.Fn {
		case "sum", "mean", "min", "max", "trace", "nrow", "ncol", "__sumsq", "__tracemm":
			return scalarShape()
		case "t":
			in := inferShape(t.Args[0], vars)
			if in.isMatrix() {
				return matShape(in.Cols, in.Rows)
			}
			return unknownShape()
		case "rowSums":
			in := inferShape(t.Args[0], vars)
			if in.isMatrix() {
				return matShape(in.Rows, 1)
			}
			return unknownShape()
		case "colSums":
			in := inferShape(t.Args[0], vars)
			if in.isMatrix() {
				return matShape(1, in.Cols)
			}
			return unknownShape()
		case "eye":
			if lit, ok := t.Args[0].(*NumLit); ok {
				k := int(lit.Val)
				if k > 0 && float64(k) == lit.Val {
					return matShape(k, k)
				}
			}
			return unknownShape()
		case "solve":
			a := inferShape(t.Args[0], vars)
			if a.isMatrix() {
				return matShape(a.Cols, 1)
			}
			return unknownShape()
		case "cbind":
			a, b := inferShape(t.Args[0], vars), inferShape(t.Args[1], vars)
			if a.isMatrix() && b.isMatrix() && a.Rows == b.Rows {
				return matShape(a.Rows, a.Cols+b.Cols)
			}
			return unknownShape()
		case "rbind":
			a, b := inferShape(t.Args[0], vars), inferShape(t.Args[1], vars)
			if a.isMatrix() && b.isMatrix() && a.Cols == b.Cols {
				return matShape(a.Rows+b.Rows, a.Cols)
			}
			return unknownShape()
		default: // exp, log, sqrt, abs, sigmoid preserve shape
			return inferShape(t.Args[0], vars)
		}
	}
	return unknownShape()
}

// Optimize rewrites the program with SystemML-style algebraic rewrites:
// constant folding, identity elimination, t(t(A)) collapse, aggregate fusion
// (sum(A^2), sum(A*A) → fused sum-of-squares; trace(A%*%B) → fused
// contraction), identity-matrix elimination, and cost-based matrix-chain
// reordering driven by the shapes of the environment's variables.
func (p *Program) Optimize(vars map[string]Shape) *Program {
	shapes := make(map[string]Shape, len(vars))
	for k, v := range vars {
		shapes[k] = v
	}
	counter := 0
	stmts := applyLICM(p.Stmts, &counter)
	return &Program{Stmts: optimizeStmts(stmts, shapes)}
}

// optimizeStmts rewrites a statement list, tracking variable shapes through
// assignments. Control-flow bodies are rewritten with the loop variable
// bound to a scalar; variables assigned inside a branch or loop get their
// shapes conservatively invalidated afterwards (the construct may or may not
// execute).
func optimizeStmts(stmts []Stmt, shapes map[string]Shape) []Stmt {
	out := make([]Stmt, len(stmts))
	for i, stmt := range stmts {
		switch {
		case stmt.For != nil:
			inner := cloneShapes(shapes)
			inner[stmt.For.Var] = scalarShape()
			invalidateAssigned(stmt.For.Body, inner)
			body := optimizeStmts(stmt.For.Body, inner)
			out[i] = Stmt{For: &ForStmt{
				Var:  stmt.For.Var,
				From: rewriteFixpoint(stmt.For.From, shapes),
				To:   rewriteFixpoint(stmt.For.To, shapes),
				Body: body,
			}}
			invalidateAssigned(stmt.For.Body, shapes)
			shapes[stmt.For.Var] = scalarShape()
		case stmt.If != nil:
			thenShapes := cloneShapes(shapes)
			elseShapes := cloneShapes(shapes)
			out[i] = Stmt{If: &IfStmt{
				Cond: rewriteFixpoint(stmt.If.Cond, shapes),
				Then: optimizeStmts(stmt.If.Then, thenShapes),
				Else: optimizeStmts(stmt.If.Else, elseShapes),
			}}
			invalidateAssigned(stmt.If.Then, shapes)
			invalidateAssigned(stmt.If.Else, shapes)
		default:
			expr := rewriteFixpoint(stmt.Expr, shapes)
			out[i] = Stmt{Name: stmt.Name, Expr: expr}
			if stmt.Name != "" {
				shapes[stmt.Name] = inferShape(expr, shapes)
			}
		}
	}
	return out
}

func cloneShapes(shapes map[string]Shape) map[string]Shape {
	out := make(map[string]Shape, len(shapes))
	for k, v := range shapes {
		out[k] = v
	}
	return out
}

// invalidateAssigned clears the shapes of every variable assigned anywhere
// in the statement list (recursively).
func invalidateAssigned(stmts []Stmt, shapes map[string]Shape) {
	for _, stmt := range stmts {
		switch {
		case stmt.For != nil:
			invalidateAssigned(stmt.For.Body, shapes)
		case stmt.If != nil:
			invalidateAssigned(stmt.If.Then, shapes)
			invalidateAssigned(stmt.If.Else, shapes)
		case stmt.Name != "":
			delete(shapes, stmt.Name)
		}
	}
}

// ShapesFromEnv derives static shapes from runtime bindings.
func ShapesFromEnv(env Env) map[string]Shape {
	out := make(map[string]Shape, len(env))
	for name, v := range env {
		if v.IsScalar {
			out[name] = scalarShape()
		} else {
			r, c := v.M.Dims()
			out[name] = matShape(r, c)
		}
	}
	return out
}

// specSpan returns the static width of an index spec when derivable.
func specSpan(spec *IndexSpec, axisSize int) (int, bool) {
	if spec.All {
		return axisSize, true
	}
	lo, ok := spec.Lo.(*NumLit)
	if !ok {
		return 0, false
	}
	if spec.Hi == nil {
		return 1, true
	}
	hi, ok := spec.Hi.(*NumLit)
	if !ok {
		return 0, false
	}
	return int(hi.Val) - int(lo.Val) + 1, true
}

const maxRewritePasses = 20

func rewriteFixpoint(n Node, vars map[string]Shape) Node {
	for pass := 0; pass < maxRewritePasses; pass++ {
		before := n.String()
		n = rewriteNode(n, vars)
		if n.String() == before {
			break
		}
	}
	return n
}

// rewriteNode applies one bottom-up rewrite pass.
func rewriteNode(n Node, vars map[string]Shape) Node {
	switch t := n.(type) {
	case *NumLit, *Var:
		return n
	case *Unary:
		x := rewriteNode(t.X, vars)
		if lit, ok := x.(*NumLit); ok {
			return &NumLit{Val: -lit.Val, Pos: t.Pos}
		}
		if inner, ok := x.(*Unary); ok { // --A → A
			return inner.X
		}
		return &Unary{X: x, Pos: t.Pos}
	case *BinOp:
		l := rewriteNode(t.Left, vars)
		r := rewriteNode(t.Right, vars)
		nn := &BinOp{Op: t.Op, Left: l, Right: r, Pos: t.Pos}
		if folded, ok := foldConst(nn); ok {
			return folded
		}
		if simplified, ok := identityElim(nn, vars); ok {
			return simplified
		}
		if nn.Op == "%*%" {
			return reorderChain(nn, vars)
		}
		return nn
	case *Call:
		args := make([]Node, len(t.Args))
		for i, a := range t.Args {
			args[i] = rewriteNode(a, vars)
		}
		nn := &Call{Fn: t.Fn, Args: args, Pos: t.Pos}
		return rewriteCall(nn, vars)
	case *Index:
		return &Index{
			X:   rewriteNode(t.X, vars),
			Row: rewriteSpec(t.Row, vars),
			Col: rewriteSpec(t.Col, vars),
			Pos: t.Pos,
		}
	}
	return n
}

func rewriteSpec(spec *IndexSpec, vars map[string]Shape) *IndexSpec {
	if spec.All {
		return spec
	}
	out := &IndexSpec{Lo: rewriteNode(spec.Lo, vars)}
	if spec.Hi != nil {
		out.Hi = rewriteNode(spec.Hi, vars)
	}
	return out
}

func foldConst(n *BinOp) (Node, bool) {
	l, lok := n.Left.(*NumLit)
	r, rok := n.Right.(*NumLit)
	if !lok || !rok {
		return nil, false
	}
	var v float64
	switch n.Op {
	case "+":
		v = l.Val + r.Val
	case "-":
		v = l.Val - r.Val
	case "*":
		v = l.Val * r.Val
	case "/":
		v = l.Val / r.Val
	case "^":
		v = math.Pow(l.Val, r.Val)
	default:
		return nil, false
	}
	return &NumLit{Val: v, Pos: n.Pos}, true
}

func isLit(n Node, v float64) bool {
	lit, ok := n.(*NumLit)
	return ok && lit.Val == v
}

// identityElim removes arithmetic identities and identity-matrix products.
func identityElim(n *BinOp, vars map[string]Shape) (Node, bool) {
	switch n.Op {
	case "+":
		if isLit(n.Left, 0) {
			return n.Right, true
		}
		if isLit(n.Right, 0) {
			return n.Left, true
		}
	case "-":
		if isLit(n.Right, 0) {
			return n.Left, true
		}
	case "*":
		if isLit(n.Left, 1) {
			return n.Right, true
		}
		if isLit(n.Right, 1) {
			return n.Left, true
		}
	case "/":
		if isLit(n.Right, 1) {
			return n.Left, true
		}
	case "^":
		if isLit(n.Right, 1) {
			return n.Left, true
		}
	case "%*%":
		// A %*% eye(n) → A and eye(n) %*% A → A when shapes agree.
		if c, ok := n.Right.(*Call); ok && c.Fn == "eye" {
			ls := inferShape(n.Left, vars)
			es := inferShape(c, vars)
			if ls.isMatrix() && es.isMatrix() && ls.Cols == es.Rows {
				return n.Left, true
			}
		}
		if c, ok := n.Left.(*Call); ok && c.Fn == "eye" {
			rs := inferShape(n.Right, vars)
			es := inferShape(c, vars)
			if rs.isMatrix() && es.isMatrix() && es.Cols == rs.Rows {
				return n.Right, true
			}
		}
	}
	return nil, false
}

func rewriteCall(n *Call, vars map[string]Shape) Node {
	switch n.Fn {
	case "t":
		// t(t(A)) → A.
		if inner, ok := n.Args[0].(*Call); ok && inner.Fn == "t" {
			return inner.Args[0]
		}
	case "sum":
		arg := n.Args[0]
		if b, ok := arg.(*BinOp); ok {
			// sum(A^2) and sum(A*A) → fused sum-of-squares.
			if b.Op == "^" && isLit(b.Right, 2) {
				return &Call{Fn: "__sumsq", Args: []Node{b.Left}, Pos: n.Pos}
			}
			if b.Op == "*" && b.Left.String() == b.Right.String() {
				return &Call{Fn: "__sumsq", Args: []Node{b.Left}, Pos: n.Pos}
			}
			// sum(A+B) → sum(A)+sum(B) for same-shape matrices: avoids the
			// intermediate sum matrix.
			if b.Op == "+" {
				ls, rs := inferShape(b.Left, vars), inferShape(b.Right, vars)
				if ls.isMatrix() && rs.isMatrix() {
					return &BinOp{
						Op:   "+",
						Left: &Call{Fn: "sum", Args: []Node{b.Left}, Pos: n.Pos},
						Right: &Call{Fn: "sum", Args: []Node{b.Right},
							Pos: n.Pos},
						Pos: n.Pos,
					}
				}
			}
		}
	case "trace":
		// trace(A %*% B) → fused pairwise contraction, skipping the product.
		if b, ok := n.Args[0].(*BinOp); ok && b.Op == "%*%" {
			return &Call{Fn: "__tracemm", Args: []Node{b.Left, b.Right}, Pos: n.Pos}
		}
	}
	return n
}

// reorderChain applies the classic matrix-chain-order DP to a %*% chain when
// every factor's shape is known, minimizing intermediate flops.
func reorderChain(n *BinOp, vars map[string]Shape) Node {
	factors := flattenChain(n)
	if len(factors) < 3 {
		return n
	}
	dims := make([]int, len(factors)+1)
	for i, f := range factors {
		s := inferShape(f, vars)
		if !s.isMatrix() {
			return n
		}
		if i == 0 {
			dims[0] = s.Rows
		} else if dims[i] != s.Rows {
			return n // inconsistent chain; leave for runtime error reporting
		}
		dims[i+1] = s.Cols
	}
	k := len(factors)
	// DP over chain splits.
	cost := make([][]float64, k)
	split := make([][]int, k)
	for i := range cost {
		cost[i] = make([]float64, k)
		split[i] = make([]int, k)
	}
	for span := 1; span < k; span++ {
		for i := 0; i+span < k; i++ {
			j := i + span
			cost[i][j] = math.Inf(1)
			for s := i; s < j; s++ {
				c := cost[i][s] + cost[s+1][j] +
					float64(dims[i])*float64(dims[s+1])*float64(dims[j+1])
				if c < cost[i][j] {
					cost[i][j] = c
					split[i][j] = s
				}
			}
		}
	}
	var build func(i, j int) Node
	build = func(i, j int) Node {
		if i == j {
			return factors[i]
		}
		s := split[i][j]
		return &BinOp{Op: "%*%", Left: build(i, s), Right: build(s+1, j), Pos: n.Pos}
	}
	return build(0, k-1)
}

// flattenChain collects the factors of a left-deep (or arbitrary) %*% tree.
func flattenChain(n Node) []Node {
	if b, ok := n.(*BinOp); ok && b.Op == "%*%" {
		return append(flattenChain(b.Left), flattenChain(b.Right)...)
	}
	return []Node{n}
}
