package dml

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"dmml/internal/la"
)

// genExpr builds a random well-shaped expression over the environment's
// square matrices (side s) and scalars, returning the AST. Depth bounds
// recursion.
func genExpr(r *rand.Rand, depth int) Node {
	if depth == 0 {
		switch r.Intn(3) {
		case 0:
			return &Var{Name: "A"}
		case 1:
			return &Var{Name: "B"}
		default:
			return &NumLit{Val: math.Round(r.Float64()*8-4) / 2}
		}
	}
	switch r.Intn(10) {
	case 0:
		return &BinOp{Op: "%*%", Left: genMatrixExpr(r, depth-1), Right: genMatrixExpr(r, depth-1)}
	case 1:
		return &Call{Fn: "t", Args: []Node{genMatrixExpr(r, depth-1)}}
	case 2:
		return &Call{Fn: "sum", Args: []Node{genExpr(r, depth-1)}}
	case 3:
		return &BinOp{Op: "^", Left: genExpr(r, depth-1), Right: &NumLit{Val: 2}}
	case 4:
		return &Unary{X: genExpr(r, depth-1)}
	case 5:
		return &BinOp{Op: "*", Left: &NumLit{Val: float64(r.Intn(3))}, Right: genExpr(r, depth-1)}
	case 6:
		return &BinOp{Op: "+", Left: genExpr(r, depth-1), Right: &NumLit{Val: 0}}
	case 7:
		e := genMatrixExpr(r, depth-1)
		return &BinOp{Op: "+", Left: e, Right: genMatrixExpr(r, depth-1)}
	case 8:
		return &Call{Fn: "trace", Args: []Node{
			&BinOp{Op: "%*%", Left: genMatrixExpr(r, depth-1), Right: genMatrixExpr(r, depth-1)},
		}}
	default:
		return &BinOp{Op: "-", Left: genExpr(r, depth-1), Right: genExpr(r, depth-1)}
	}
}

// genMatrixExpr produces an expression guaranteed to evaluate to an s×s
// matrix (everything is square and same-size, so shapes always line up).
func genMatrixExpr(r *rand.Rand, depth int) Node {
	if depth == 0 {
		if r.Intn(2) == 0 {
			return &Var{Name: "A"}
		}
		return &Var{Name: "B"}
	}
	switch r.Intn(5) {
	case 0:
		return &BinOp{Op: "%*%", Left: genMatrixExpr(r, depth-1), Right: genMatrixExpr(r, depth-1)}
	case 1:
		return &Call{Fn: "t", Args: []Node{genMatrixExpr(r, depth-1)}}
	case 2:
		return &BinOp{Op: "+", Left: genMatrixExpr(r, depth-1), Right: genMatrixExpr(r, depth-1)}
	case 3:
		return &BinOp{Op: "*", Left: &NumLit{Val: 0.5}, Right: genMatrixExpr(r, depth-1)}
	default:
		return &BinOp{Op: "^", Left: genMatrixExpr(r, depth-1), Right: &NumLit{Val: 2}}
	}
}

// valueClose compares two Values within a relative tolerance.
func valueClose(a, b Value, tol float64) bool {
	if a.IsScalar != b.IsScalar {
		return false
	}
	if a.IsScalar {
		if math.IsNaN(a.S) && math.IsNaN(b.S) {
			return true
		}
		return math.Abs(a.S-b.S) <= tol*(1+math.Abs(a.S))
	}
	ar, ac := a.M.Dims()
	br, bc := b.M.Dims()
	if ar != br || ac != bc {
		return false
	}
	for i := 0; i < ar; i++ {
		ra, rb := a.M.RowView(i), b.M.RowView(i)
		for j := range ra {
			if math.Abs(ra[j]-rb[j]) > tol*(1+math.Abs(ra[j])) {
				return false
			}
		}
	}
	return true
}

// Property: for random well-shaped expressions, the optimizer preserves
// semantics exactly (up to floating-point reassociation tolerance).
func TestOptimizerPreservesSemanticsFuzz(t *testing.T) {
	const side = 6
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a := la.NewDense(side, side)
		b := la.NewDense(side, side)
		for i := 0; i < side; i++ {
			for j := 0; j < side; j++ {
				a.Set(i, j, r.NormFloat64())
				b.Set(i, j, r.NormFloat64())
			}
		}
		expr := genExpr(r, 3+r.Intn(3))
		prog := &Program{Stmts: []Stmt{{Expr: expr}}}

		env1 := Env{"A": Matrix(a.Clone()), "B": Matrix(b.Clone())}
		naive, _, errN := prog.Run(env1)

		shapes := map[string]Shape{"A": matShape(side, side), "B": matShape(side, side)}
		opt := prog.Optimize(shapes)
		env2 := Env{"A": Matrix(a.Clone()), "B": Matrix(b.Clone())}
		fast, _, errO := opt.Run(env2)

		// Both fail or both succeed with close values.
		if (errN == nil) != (errO == nil) {
			t.Logf("seed %d expr %s: naive err %v, optimized err %v", seed, expr, errN, errO)
			return false
		}
		if errN != nil {
			return true
		}
		if !valueClose(naive, fast, 1e-8) {
			t.Logf("seed %d expr %s rewrote to %s: %v vs %v", seed, expr, opt, naive, fast)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: the static analyzer is sound — on any program the evaluator
// accepts, it never panics and never reports an error-severity diagnostic
// (warnings are fine). Checked on both the naive and optimized forms, so the
// analyzer also understands the rewriter's internal fused operators.
func TestAnalyzerSoundnessFuzz(t *testing.T) {
	const side = 6
	shapes := map[string]Shape{"A": matShape(side, side), "B": matShape(side, side)}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a := la.NewDense(side, side)
		b := la.NewDense(side, side)
		for i := 0; i < side; i++ {
			for j := 0; j < side; j++ {
				a.Set(i, j, r.NormFloat64())
				b.Set(i, j, r.NormFloat64())
			}
		}
		expr := genExpr(r, 3+r.Intn(3))
		prog := &Program{Stmts: []Stmt{{Expr: expr}}}

		// Evaluate without the analyzer pre-pass to get ground truth.
		env := Env{"A": Matrix(a), "B": Matrix(b)}
		_, evalErr := runStmts(env, &EvalStats{}, prog.Stmts, "")

		for _, p := range []*Program{prog, prog.Optimize(shapes)} {
			an := p.Analyze(shapes)
			if evalErr == nil && an.HasErrors() {
				t.Logf("seed %d: evaluator accepts %s but analyzer reports:\n%s",
					seed, p, an.Format())
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: Optimize is idempotent — a second pass changes nothing.
func TestOptimizerIdempotentFuzz(t *testing.T) {
	const side = 5
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		expr := genExpr(r, 3)
		prog := &Program{Stmts: []Stmt{{Expr: expr}}}
		shapes := map[string]Shape{"A": matShape(side, side), "B": matShape(side, side)}
		once := prog.Optimize(shapes)
		twice := once.Optimize(shapes)
		return once.String() == twice.String()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: String → Parse round trips for generated expressions.
func TestRenderParseRoundTripFuzz(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		expr := genExpr(r, 4)
		prog := &Program{Stmts: []Stmt{{Expr: expr}}}
		p2, err := Parse(prog.String())
		if err != nil {
			// Internal fused ops never appear in unoptimized trees, so any
			// parse failure is a real renderer bug.
			t.Logf("seed %d: %s: %v", seed, prog, err)
			return false
		}
		// One reparse may normalize (e.g. a negative literal becomes unary
		// minus); after that the rendering must be a fixed point.
		p3, err := Parse(p2.String())
		if err != nil {
			t.Logf("seed %d: reparse of %s: %v", seed, p2, err)
			return false
		}
		return p3.String() == p2.String()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
