package relational

import (
	"testing"

	"dmml/internal/storage"
)

func ordersTable(t *testing.T) *storage.Table {
	t.Helper()
	s := storage.MustSchema(
		storage.Field{Name: "oid", Type: storage.Int64},
		storage.Field{Name: "cust", Type: storage.Int64},
		storage.Field{Name: "amount", Type: storage.Float64},
	)
	tb := storage.NewTable(s)
	rows := [][]any{
		{int64(1), int64(10), 5.0},
		{int64(2), int64(20), 7.5},
		{int64(3), int64(10), 2.5},
		{int64(4), int64(30), 9.0},
		{int64(5), int64(20), 1.0},
	}
	for _, r := range rows {
		if err := tb.AppendRow(r...); err != nil {
			t.Fatal(err)
		}
	}
	return tb
}

func customersTable(t *testing.T) *storage.Table {
	t.Helper()
	s := storage.MustSchema(
		storage.Field{Name: "cid", Type: storage.Int64},
		storage.Field{Name: "name", Type: storage.String},
		storage.Field{Name: "tier", Type: storage.Int64},
	)
	tb := storage.NewTable(s)
	rows := [][]any{
		{int64(10), "alice", int64(1)},
		{int64(20), "bob", int64(2)},
		// customer 30 intentionally missing: inner join drops order 4
	}
	for _, r := range rows {
		if err := tb.AppendRow(r...); err != nil {
			t.Fatal(err)
		}
	}
	return tb
}

func TestProject(t *testing.T) {
	tb := ordersTable(t)
	p, err := Project(tb, []string{"amount", "oid"})
	if err != nil {
		t.Fatal(err)
	}
	if p.Schema().NumFields() != 2 || p.Schema().Fields[0].Name != "amount" {
		t.Fatalf("schema = %+v", p.Schema().Fields)
	}
	if p.NumRows() != 5 {
		t.Fatalf("rows = %d", p.NumRows())
	}
	if _, err := Project(tb, []string{"missing"}); err == nil {
		t.Fatal("want missing column error")
	}
	if _, err := Project(tb, nil); err == nil {
		t.Fatal("want empty projection error")
	}
}

func TestSelect(t *testing.T) {
	tb := ordersTable(t)
	amounts, _ := tb.Floats("amount")
	sel, err := Select(tb, func(r int) bool { return amounts[r] > 4 })
	if err != nil {
		t.Fatal(err)
	}
	if sel.NumRows() != 3 {
		t.Fatalf("rows = %d", sel.NumRows())
	}
	// Empty selection is fine.
	none, err := Select(tb, func(int) bool { return false })
	if err != nil {
		t.Fatal(err)
	}
	if none.NumRows() != 0 {
		t.Fatalf("rows = %d", none.NumRows())
	}
}

func TestHashJoinPKFK(t *testing.T) {
	orders := ordersTable(t)
	custs := customersTable(t)
	j, err := HashJoin(orders, custs, "cust", "cid", JoinOptions{DropRightKey: true})
	if err != nil {
		t.Fatal(err)
	}
	// Orders 1,2,3,5 match; order 4 (cust 30) is dropped.
	if j.NumRows() != 4 {
		t.Fatalf("rows = %d, want 4", j.NumRows())
	}
	names, err := j.Strings("name")
	if err != nil {
		t.Fatal(err)
	}
	oids, _ := j.Ints("oid")
	byOid := map[int64]string{}
	for i, o := range oids {
		byOid[o] = names[i]
	}
	if byOid[1] != "alice" || byOid[2] != "bob" || byOid[3] != "alice" || byOid[5] != "bob" {
		t.Fatalf("joined names = %v", byOid)
	}
}

func TestHashJoinManyToMany(t *testing.T) {
	s := storage.MustSchema(storage.Field{Name: "k", Type: storage.Int64}, storage.Field{Name: "v", Type: storage.Int64})
	a := storage.NewTable(s)
	b := storage.NewTable(s)
	_ = a.AppendRow(int64(1), int64(100))
	_ = a.AppendRow(int64(1), int64(101))
	_ = b.AppendRow(int64(1), int64(200))
	_ = b.AppendRow(int64(1), int64(201))
	j, err := HashJoin(a, b, "k", "k", JoinOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if j.NumRows() != 4 {
		t.Fatalf("rows = %d, want 4 (cross product within key)", j.NumRows())
	}
	// Collision renaming: right "k" and "v" get suffixed.
	if j.Schema().FieldIndex("k_r") < 0 || j.Schema().FieldIndex("v_r") < 0 {
		t.Fatalf("schema = %+v", j.Schema().Fields)
	}
}

func TestHashJoinStringKeys(t *testing.T) {
	s := storage.MustSchema(storage.Field{Name: "name", Type: storage.String}, storage.Field{Name: "x", Type: storage.Int64})
	a := storage.NewTable(s)
	_ = a.AppendRow("u", int64(1))
	_ = a.AppendRow("v", int64(2))
	b := storage.NewTable(s)
	_ = b.AppendRow("v", int64(3))
	j, err := HashJoin(a, b, "name", "name", JoinOptions{DropRightKey: true})
	if err != nil {
		t.Fatal(err)
	}
	if j.NumRows() != 1 {
		t.Fatalf("rows = %d", j.NumRows())
	}
}

func TestHashJoinErrors(t *testing.T) {
	orders := ordersTable(t)
	custs := customersTable(t)
	if _, err := HashJoin(orders, custs, "nope", "cid", JoinOptions{}); err == nil {
		t.Fatal("want missing left key error")
	}
	if _, err := HashJoin(orders, custs, "cust", "nope", JoinOptions{}); err == nil {
		t.Fatal("want missing right key error")
	}
	if _, err := HashJoin(orders, custs, "cust", "name", JoinOptions{}); err == nil {
		t.Fatal("want key type mismatch error")
	}
	if _, err := HashJoin(orders, orders, "amount", "amount", JoinOptions{}); err == nil {
		t.Fatal("want float key rejection")
	}
}

func TestGroupBy(t *testing.T) {
	orders := ordersTable(t)
	g, err := GroupBy(orders, "cust", []Agg{
		{Col: "amount", Fn: Sum},
		{Col: "amount", Fn: Count},
		{Col: "amount", Fn: Mean},
		{Col: "amount", Fn: Min},
		{Col: "amount", Fn: Max},
	})
	if err != nil {
		t.Fatal(err)
	}
	if g.NumRows() != 3 {
		t.Fatalf("groups = %d", g.NumRows())
	}
	keys, _ := g.Ints("cust")
	sums, _ := g.Floats("amount_sum")
	counts, _ := g.Ints("count")
	means, _ := g.Floats("amount_mean")
	mins, _ := g.Floats("amount_min")
	maxs, _ := g.Floats("amount_max")
	byKey := map[int64][5]float64{}
	for i, k := range keys {
		byKey[k] = [5]float64{sums[i], float64(counts[i]), means[i], mins[i], maxs[i]}
	}
	if got := byKey[10]; got != [5]float64{7.5, 2, 3.75, 2.5, 5.0} {
		t.Fatalf("group 10 = %v", got)
	}
	if got := byKey[20]; got != [5]float64{8.5, 2, 4.25, 1.0, 7.5} {
		t.Fatalf("group 20 = %v", got)
	}
	if got := byKey[30]; got != [5]float64{9, 1, 9, 9, 9} {
		t.Fatalf("group 30 = %v", got)
	}
}

func TestGroupByErrors(t *testing.T) {
	orders := ordersTable(t)
	if _, err := GroupBy(orders, "amount", []Agg{{Col: "amount", Fn: Sum}}); err == nil {
		t.Fatal("want float group key rejection")
	}
	if _, err := GroupBy(orders, "cust", nil); err == nil {
		t.Fatal("want empty aggregates error")
	}
	if _, err := GroupBy(orders, "cust", []Agg{{Col: "nope", Fn: Sum}}); err == nil {
		t.Fatal("want missing column error")
	}
}

func TestOrderBy(t *testing.T) {
	orders := ordersTable(t)
	asc, err := OrderBy(orders, "amount", false)
	if err != nil {
		t.Fatal(err)
	}
	amts, _ := asc.Floats("amount")
	for i := 1; i < len(amts); i++ {
		if amts[i-1] > amts[i] {
			t.Fatalf("not ascending: %v", amts)
		}
	}
	desc, _ := OrderBy(orders, "oid", true)
	oids, _ := desc.Ints("oid")
	if oids[0] != 5 || oids[4] != 1 {
		t.Fatalf("desc oids = %v", oids)
	}
	if _, err := OrderBy(orders, "nope", false); err == nil {
		t.Fatal("want missing column error")
	}
}

func TestDistinct(t *testing.T) {
	s := storage.MustSchema(
		storage.Field{Name: "a", Type: storage.Int64},
		storage.Field{Name: "b", Type: storage.String},
	)
	tb := storage.NewTable(s)
	_ = tb.AppendRow(int64(1), "x")
	_ = tb.AppendRow(int64(1), "x")
	_ = tb.AppendRow(int64(2), "x")
	_ = tb.AppendRow(int64(1), "y")
	_ = tb.AppendRow(int64(2), "x")
	got, err := Distinct(tb)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumRows() != 3 {
		t.Fatalf("distinct rows = %d, want 3", got.NumRows())
	}
	as, _ := got.Ints("a")
	if as[0] != 1 || as[1] != 2 || as[2] != 1 {
		t.Fatalf("order not preserved: %v", as)
	}
}

func TestLimit(t *testing.T) {
	tb := ordersTable(t)
	got, err := Limit(tb, 2)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumRows() != 2 {
		t.Fatalf("rows = %d", got.NumRows())
	}
	all, err := Limit(tb, 100)
	if err != nil {
		t.Fatal(err)
	}
	if all.NumRows() != tb.NumRows() {
		t.Fatalf("over-limit rows = %d", all.NumRows())
	}
	if _, err := Limit(tb, -1); err == nil {
		t.Fatal("want negative limit error")
	}
}
