// Package relational implements a small relational algebra over
// storage.Table: project, select, hash equi-join, group-by aggregation, and
// order-by. dmml uses it to materialize joins for the "materialized
// learning" baseline that factorized learning is compared against, and as a
// general preprocessing substrate.
package relational

import (
	"fmt"
	"sort"

	"dmml/internal/storage"
)

// Project returns a new table containing only the named columns, in order.
func Project(t *storage.Table, cols []string) (*storage.Table, error) {
	if len(cols) == 0 {
		return nil, fmt.Errorf("relational: Project with no columns")
	}
	fields := make([]storage.Field, len(cols))
	idx := make([]int, len(cols))
	for k, name := range cols {
		i := t.Schema().FieldIndex(name)
		if i < 0 {
			return nil, fmt.Errorf("relational: no column %q", name)
		}
		fields[k] = t.Schema().Fields[i]
		idx[k] = i
	}
	schema, err := storage.NewSchema(fields...)
	if err != nil {
		return nil, fmt.Errorf("relational: %w", err)
	}
	out := storage.NewTable(schema)
	vals := make([]any, len(cols))
	for r := 0; r < t.NumRows(); r++ {
		for k, i := range idx {
			vals[k] = t.Value(r, i)
		}
		if err := out.AppendRow(vals...); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// Select returns the rows for which pred returns true.
func Select(t *storage.Table, pred func(row int) bool) (*storage.Table, error) {
	var keep []int
	for r := 0; r < t.NumRows(); r++ {
		if pred(r) {
			keep = append(keep, r)
		}
	}
	return t.SelectRows(keep)
}

// JoinOptions tunes HashJoin output naming.
type JoinOptions struct {
	// RightSuffix disambiguates right-side column names that collide with
	// left-side names. Default "_r".
	RightSuffix string
	// DropRightKey omits the right join key from the output (it duplicates
	// the left key value on every row).
	DropRightKey bool
}

// HashJoin computes the equi-join of left and right on leftKey = rightKey.
// Keys must both be Int64 or both String. The right side is used as the hash
// build side, so pass the smaller (dimension) table as right for PK–FK joins.
func HashJoin(left, right *storage.Table, leftKey, rightKey string, opts JoinOptions) (*storage.Table, error) {
	if opts.RightSuffix == "" {
		opts.RightSuffix = "_r"
	}
	li := left.Schema().FieldIndex(leftKey)
	ri := right.Schema().FieldIndex(rightKey)
	if li < 0 {
		return nil, fmt.Errorf("relational: left has no column %q", leftKey)
	}
	if ri < 0 {
		return nil, fmt.Errorf("relational: right has no column %q", rightKey)
	}
	lt := left.Schema().Fields[li].Type
	rt := right.Schema().Fields[ri].Type
	if lt != rt {
		return nil, fmt.Errorf("relational: join key types differ: %s vs %s", lt, rt)
	}
	if lt == storage.Float64 {
		return nil, fmt.Errorf("relational: float64 join keys are not supported")
	}

	// Output schema: all left fields, then right fields (optionally minus the
	// key), renaming collisions.
	var fields []storage.Field
	fields = append(fields, left.Schema().Fields...)
	taken := make(map[string]bool, len(fields))
	for _, f := range fields {
		taken[f.Name] = true
	}
	rightOut := make([]int, 0, right.Schema().NumFields())
	for j, f := range right.Schema().Fields {
		if opts.DropRightKey && j == ri {
			continue
		}
		name := f.Name
		for taken[name] {
			name += opts.RightSuffix
		}
		taken[name] = true
		fields = append(fields, storage.Field{Name: name, Type: f.Type})
		rightOut = append(rightOut, j)
	}
	schema, err := storage.NewSchema(fields...)
	if err != nil {
		return nil, fmt.Errorf("relational: %w", err)
	}
	out := storage.NewTable(schema)

	// Build side: right.
	build := make(map[any][]int, right.NumRows())
	for r := 0; r < right.NumRows(); r++ {
		k := right.Value(r, ri)
		build[k] = append(build[k], r)
	}
	// Probe side: left.
	nLeft := left.Schema().NumFields()
	vals := make([]any, nLeft+len(rightOut))
	for r := 0; r < left.NumRows(); r++ {
		matches, ok := build[left.Value(r, li)]
		if !ok {
			continue
		}
		for i := 0; i < nLeft; i++ {
			vals[i] = left.Value(r, i)
		}
		for _, m := range matches {
			for k, j := range rightOut {
				vals[nLeft+k] = right.Value(m, j)
			}
			if err := out.AppendRow(vals...); err != nil {
				return nil, err
			}
		}
	}
	return out, nil
}

// AggFn enumerates group-by aggregate functions.
type AggFn int

// Aggregate functions.
const (
	Sum AggFn = iota
	Count
	Mean
	Min
	Max
)

// String implements fmt.Stringer.
func (f AggFn) String() string {
	switch f {
	case Sum:
		return "sum"
	case Count:
		return "count"
	case Mean:
		return "mean"
	case Min:
		return "min"
	case Max:
		return "max"
	}
	return fmt.Sprintf("AggFn(%d)", int(f))
}

// Agg is one aggregate over a numeric column. For Count the column may be
// any field (the value is ignored).
type Agg struct {
	Col string
	Fn  AggFn
}

type aggState struct {
	n        int64
	sum      float64
	min, max float64
}

// GroupBy groups on an Int64 or String column and computes the given
// aggregates. Output columns are named "<col>_<fn>" ("count" for Count).
// Groups appear in first-encounter order.
func GroupBy(t *storage.Table, groupCol string, aggs []Agg) (*storage.Table, error) {
	gi := t.Schema().FieldIndex(groupCol)
	if gi < 0 {
		return nil, fmt.Errorf("relational: no column %q", groupCol)
	}
	gType := t.Schema().Fields[gi].Type
	if gType == storage.Float64 {
		return nil, fmt.Errorf("relational: float64 group keys are not supported")
	}
	if len(aggs) == 0 {
		return nil, fmt.Errorf("relational: GroupBy with no aggregates")
	}
	fields := []storage.Field{{Name: groupCol, Type: gType}}
	for _, a := range aggs {
		if a.Fn == Count {
			fields = append(fields, storage.Field{Name: "count", Type: storage.Int64})
			continue
		}
		i := t.Schema().FieldIndex(a.Col)
		if i < 0 {
			return nil, fmt.Errorf("relational: no column %q", a.Col)
		}
		if ft := t.Schema().Fields[i].Type; ft == storage.String {
			return nil, fmt.Errorf("relational: cannot %s a string column %q", a.Fn, a.Col)
		}
		fields = append(fields, storage.Field{Name: fmt.Sprintf("%s_%s", a.Col, a.Fn), Type: storage.Float64})
	}
	schema, err := storage.NewSchema(fields...)
	if err != nil {
		return nil, fmt.Errorf("relational: %w", err)
	}

	type groupEntry struct {
		key    any
		states []aggState
	}
	order := make([]*groupEntry, 0)
	lookup := make(map[any]*groupEntry)
	for r := 0; r < t.NumRows(); r++ {
		k := t.Value(r, gi)
		g, ok := lookup[k]
		if !ok {
			g = &groupEntry{key: k, states: make([]aggState, len(aggs))}
			for i := range g.states {
				g.states[i].min = +1e308
				g.states[i].max = -1e308
			}
			lookup[k] = g
			order = append(order, g)
		}
		for ai, a := range aggs {
			st := &g.states[ai]
			st.n++
			if a.Fn == Count {
				continue
			}
			v, err := t.NumericAt(r, a.Col)
			if err != nil {
				return nil, err
			}
			st.sum += v
			if v < st.min {
				st.min = v
			}
			if v > st.max {
				st.max = v
			}
		}
	}
	out := storage.NewTable(schema)
	vals := make([]any, 1+len(aggs))
	for _, g := range order {
		vals[0] = g.key
		for ai, a := range aggs {
			st := g.states[ai]
			switch a.Fn {
			case Sum:
				vals[1+ai] = st.sum
			case Count:
				vals[1+ai] = st.n
			case Mean:
				vals[1+ai] = st.sum / float64(st.n)
			case Min:
				vals[1+ai] = st.min
			case Max:
				vals[1+ai] = st.max
			}
		}
		if err := out.AppendRow(vals...); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// OrderBy returns the table sorted by the given column (stable sort).
func OrderBy(t *storage.Table, col string, desc bool) (*storage.Table, error) {
	i := t.Schema().FieldIndex(col)
	if i < 0 {
		return nil, fmt.Errorf("relational: no column %q", col)
	}
	rows := make([]int, t.NumRows())
	for r := range rows {
		rows[r] = r
	}
	typ := t.Schema().Fields[i].Type
	less := func(a, b int) bool {
		switch typ {
		case storage.Int64:
			va, _ := t.Ints(col)
			return va[rows[a]] < va[rows[b]]
		case storage.Float64:
			va, _ := t.Floats(col)
			return va[rows[a]] < va[rows[b]]
		default:
			va, _ := t.Strings(col)
			return va[rows[a]] < va[rows[b]]
		}
	}
	if desc {
		inner := less
		less = func(a, b int) bool { return inner(b, a) }
	}
	sort.SliceStable(rows, less)
	return t.SelectRows(rows)
}

// Distinct returns the table with duplicate rows removed, keeping first
// occurrences in order. Row identity is the tuple of all column values.
func Distinct(t *storage.Table) (*storage.Table, error) {
	seen := make(map[string]bool, t.NumRows())
	var keep []int
	nf := t.Schema().NumFields()
	for r := 0; r < t.NumRows(); r++ {
		key := ""
		for f := 0; f < nf; f++ {
			key += t.ValueString(r, f) + "\x00"
		}
		if !seen[key] {
			seen[key] = true
			keep = append(keep, r)
		}
	}
	return t.SelectRows(keep)
}

// Limit returns the first n rows (all rows if n exceeds the table).
func Limit(t *storage.Table, n int) (*storage.Table, error) {
	if n < 0 {
		return nil, fmt.Errorf("relational: negative limit %d", n)
	}
	if n > t.NumRows() {
		n = t.NumRows()
	}
	rows := make([]int, n)
	for i := range rows {
		rows[i] = i
	}
	return t.SelectRows(rows)
}
