package hamlet_test

import (
	"fmt"
	"log"

	"dmml/internal/hamlet"
)

// The tuple-ratio rule from schema cardinalities alone: 1M orders over 5k
// products is safe to learn without joining the product table.
func ExampleRule_Decide() {
	dec, err := hamlet.DefaultRule().Decide(1000000, 5000, 10, 20)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("tuple ratio %.0f, avoid join: %v\n", dec.TupleRatio, dec.Avoid)
	// Output:
	// tuple ratio 200, avoid join: true
}
