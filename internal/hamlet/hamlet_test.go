package hamlet

import (
	"math"
	"math/rand"
	"testing"

	"dmml/internal/workload"
)

func TestDecideRule(t *testing.T) {
	rule := DefaultRule()
	// TR = 100k/1k = 100 ≥ 20 → avoid.
	d, err := rule.Decide(100000, 1000, 10, 5)
	if err != nil {
		t.Fatal(err)
	}
	if !d.Avoid || d.TupleRatio != 100 {
		t.Fatalf("decision = %+v", d)
	}
	// TR = 2 < 20 → keep the join.
	d, err = rule.Decide(2000, 1000, 10, 5)
	if err != nil {
		t.Fatal(err)
	}
	if d.Avoid {
		t.Fatalf("decision = %+v, want keep", d)
	}
	if d.FeatureRatio != 0.5 {
		t.Fatalf("FR = %v", d.FeatureRatio)
	}
}

func TestDecideFeatureRatioBoost(t *testing.T) {
	rule := Rule{TupleRatioThreshold: 20, FeatureRatioBoost: true}
	// TR = 10 < 20, but FR = 4 lowers the effective threshold to 5 → avoid.
	d, err := rule.Decide(10000, 1000, 5, 20)
	if err != nil {
		t.Fatal(err)
	}
	if !d.Avoid {
		t.Fatalf("decision = %+v, want avoid with FR boost", d)
	}
	// Without the boost the same schema keeps the join.
	d2, _ := DefaultRule().Decide(10000, 1000, 5, 20)
	if d2.Avoid {
		t.Fatalf("decision = %+v, want keep without boost", d2)
	}
}

func TestDecideValidation(t *testing.T) {
	if _, err := DefaultRule().Decide(0, 1, 1, 1); err == nil {
		t.Fatal("want cardinality error")
	}
	if _, err := (Rule{}).Decide(1, 1, 1, 1); err == nil {
		t.Fatal("want threshold error")
	}
}

func TestRORBound(t *testing.T) {
	// More fact rows shrink the risk; more dim rows raise it.
	small := RORBound(100000, 100, 5)
	big := RORBound(1000, 100, 5)
	if small >= big {
		t.Fatalf("ROR: %v should be < %v", small, big)
	}
	if RORBound(1000, 3, 5) != 0 {
		t.Fatal("ROR must clamp at zero when dim features exceed dim rows")
	}
}

func TestOneHot(t *testing.T) {
	oh, err := OneHot([]int{0, 2, 1, 2}, 3)
	if err != nil {
		t.Fatal(err)
	}
	d := oh.ToDense()
	if d.At(0, 0) != 1 || d.At(1, 2) != 1 || d.At(2, 1) != 1 || d.At(3, 2) != 1 {
		t.Fatalf("one-hot = %v", d)
	}
	if d.Sum() != 4 {
		t.Fatalf("one-hot row sums = %v", d.Sum())
	}
	if _, err := OneHot([]int{5}, 3); err == nil {
		t.Fatal("want out-of-range error")
	}
}

// High tuple ratio + no dimension signal: the rule says avoid, and the
// empirical gap confirms avoiding costs (almost) nothing.
func TestEmpiricalSafeToAvoid(t *testing.T) {
	r := rand.New(rand.NewSource(130))
	s, err := workload.GenerateStar(r, workload.StarConfig{
		FactRows:  4000,
		FactFeats: 6,
		DimRows:   []int{40}, // TR = 100
		DimFeats:  []int{4},
		Task:      workload.ClassificationTask,
		Noise:     0.02,
		DimSignal: 0, // label carries no dimension signal
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := CompareEmpirical(s, 0, DefaultRule(), 0.25, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Decision.Avoid {
		t.Fatalf("rule says keep at TR=100: %+v", res.Decision)
	}
	if gap := res.Gap(); math.Abs(gap) > 0.03 {
		t.Fatalf("accuracy gap = %v, want ≈ 0 when safe to avoid", gap)
	}
	if res.AccJoined < 0.9 {
		t.Fatalf("joined accuracy = %v, problem too hard for the test", res.AccJoined)
	}
}

// Low tuple ratio + strong dimension signal: the rule keeps the join; the
// one-hot representation underfits on held-out FKs, so the join must win.
func TestEmpiricalJoinNeeded(t *testing.T) {
	r := rand.New(rand.NewSource(131))
	s, err := workload.GenerateStar(r, workload.StarConfig{
		FactRows:  1500,
		FactFeats: 2,
		DimRows:   []int{750}, // TR = 2: each FK value seen ~2 times
		DimFeats:  []int{8},
		Task:      workload.ClassificationTask,
		Noise:     0.02,
		DimSignal: 3, // label dominated by dimension features
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := CompareEmpirical(s, 0, DefaultRule(), 0.25, 2)
	if err != nil {
		t.Fatal(err)
	}
	if res.Decision.Avoid {
		t.Fatalf("rule says avoid at TR=2: %+v", res.Decision)
	}
	if res.Gap() < 0.05 {
		t.Fatalf("gap = %v, want join clearly better when rule keeps it", res.Gap())
	}
}

func TestCompareEmpiricalValidation(t *testing.T) {
	r := rand.New(rand.NewSource(132))
	s, err := workload.GenerateStar(r, workload.StarConfig{
		FactRows: 100, FactFeats: 2, DimRows: []int{10}, DimFeats: []int{2},
		Task: workload.RegressionTask, DimSignal: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := CompareEmpirical(s, 0, DefaultRule(), 0.2, 1); err == nil {
		t.Fatal("want classification-task error")
	}
	if _, err := CompareEmpirical(s, 5, DefaultRule(), 0.2, 1); err == nil {
		t.Fatal("want dimension range error")
	}
	s.Config.Task = workload.ClassificationTask
	if _, err := CompareEmpirical(s, 0, DefaultRule(), 0, 1); err == nil {
		t.Fatal("want test fraction error")
	}
}
