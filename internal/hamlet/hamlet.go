// Package hamlet reproduces the "to join or not to join" decision rules of
// Hamlet (Kumar et al., SIGMOD'16), which the paper surveys: when training a
// classifier over a fact table S joined with a dimension table R through a
// foreign key FK, the features of R are a deterministic function of FK, so
// dropping the join (and keeping FK itself as a feature) cannot add bias —
// only variance. Hamlet's conservative rules flag joins that are safe to
// avoid using only schema cardinalities:
//
//   - tuple ratio   TR = |S| / |R|   — higher means more examples per
//     distinct FK value, taming the variance of the FK representation;
//   - feature ratio FR = d_R / d_S  — higher means the join drags in many
//     redundant columns, increasing the payoff of avoiding it.
package hamlet

import (
	"fmt"
	"math"
	"math/rand"

	"dmml/internal/la"
	"dmml/internal/ml"
	"dmml/internal/workload"
)

// Rule holds the decision thresholds. Hamlet's conservative defaults are a
// tuple-ratio threshold of 20 (their ρ) with no feature-ratio override.
type Rule struct {
	// TupleRatioThreshold ρ: avoid the join when TR ≥ ρ.
	TupleRatioThreshold float64
	// FeatureRatioBoost lowers the effective ρ when FR is large: with
	// FR ≥ 1, ρ_eff = ρ / FR (capped at ρ). Zero disables the boost.
	FeatureRatioBoost bool
}

// DefaultRule returns Hamlet's conservative tuple-ratio-20 rule.
func DefaultRule() Rule { return Rule{TupleRatioThreshold: 20} }

// Decision is the outcome of applying the rule to one dimension table.
type Decision struct {
	TupleRatio   float64
	FeatureRatio float64
	Avoid        bool
	Reason       string
}

// Decide applies the rule to schema cardinalities.
func (r Rule) Decide(factRows, dimRows, factFeats, dimFeats int) (Decision, error) {
	if factRows <= 0 || dimRows <= 0 || factFeats <= 0 || dimFeats <= 0 {
		return Decision{}, fmt.Errorf("hamlet: all cardinalities must be positive")
	}
	if r.TupleRatioThreshold <= 0 {
		return Decision{}, fmt.Errorf("hamlet: tuple-ratio threshold must be positive")
	}
	d := Decision{
		TupleRatio:   float64(factRows) / float64(dimRows),
		FeatureRatio: float64(dimFeats) / float64(factFeats),
	}
	eff := r.TupleRatioThreshold
	if r.FeatureRatioBoost && d.FeatureRatio > 1 {
		eff = math.Max(1, r.TupleRatioThreshold/d.FeatureRatio)
	}
	if d.TupleRatio >= eff {
		d.Avoid = true
		d.Reason = fmt.Sprintf("tuple ratio %.1f ≥ effective threshold %.1f", d.TupleRatio, eff)
	} else {
		d.Reason = fmt.Sprintf("tuple ratio %.1f < effective threshold %.1f", d.TupleRatio, eff)
	}
	return d, nil
}

// RORBound computes a rough risk-of-representation proxy: the extra
// hypothesis-space capacity of the avoided-join (FK one-hot) representation
// relative to the joined one, normalized by the number of examples. Small
// values mean avoiding is low-risk. This mirrors Hamlet's VC-dimension
// argument at the granularity our reproduction needs.
func RORBound(factRows, dimRows, dimFeats int) float64 {
	extraDims := float64(dimRows - dimFeats)
	if extraDims < 0 {
		extraDims = 0
	}
	return math.Sqrt(extraDims / float64(factRows))
}

// OneHot encodes foreign-key codes as a sparse indicator matrix with card
// columns.
func OneHot(fk []int, card int) (*la.CSR, error) {
	coords := make([]la.Coord, len(fk))
	for i, v := range fk {
		if v < 0 || v >= card {
			return nil, fmt.Errorf("hamlet: fk code %d out of range [0,%d)", v, card)
		}
		coords[i] = la.Coord{Row: i, Col: v, Val: 1}
	}
	return la.FromCoords(len(fk), card, coords)
}

// EmpiricalResult compares held-out accuracy of the joined representation
// against the avoided-join (FK one-hot) representation for one dimension.
type EmpiricalResult struct {
	Decision   Decision
	AccJoined  float64
	AccAvoided float64
}

// Gap returns AccJoined − AccAvoided (positive = the join helped).
func (e EmpiricalResult) Gap() float64 { return e.AccJoined - e.AccAvoided }

// CompareEmpirical trains logistic regression twice on the star's dimension
// dimIdx — once with the dimension's features joined in, once with the join
// avoided (the dimension block replaced by a one-hot FK encoding) — and
// reports held-out accuracies with the rule's decision. The star must be a
// classification task.
func CompareEmpirical(s *workload.Star, dimIdx int, rule Rule, testFrac float64, seed int64) (*EmpiricalResult, error) {
	if dimIdx < 0 || dimIdx >= len(s.DimX) {
		return nil, fmt.Errorf("hamlet: dimension %d out of range", dimIdx)
	}
	if s.Config.Task != workload.ClassificationTask {
		return nil, fmt.Errorf("hamlet: CompareEmpirical needs a classification star")
	}
	if testFrac <= 0 || testFrac >= 1 {
		return nil, fmt.Errorf("hamlet: test fraction %v out of (0,1)", testFrac)
	}
	dec, err := rule.Decide(s.Config.FactRows, s.Config.DimRows[dimIdx],
		s.Config.FactFeats, s.Config.DimFeats[dimIdx])
	if err != nil {
		return nil, err
	}

	joined := s.Materialize()

	// Avoided representation: all blocks except dimIdx, plus one-hot FK.
	oneHot, err := OneHot(s.FKs[dimIdx], s.Config.DimRows[dimIdx])
	if err != nil {
		return nil, err
	}
	keepCols := make([]int, 0, joined.Cols())
	lo := s.Config.FactFeats
	for k := 0; k < dimIdx; k++ {
		lo += s.Config.DimFeats[k]
	}
	hi := lo + s.Config.DimFeats[dimIdx]
	for j := 0; j < joined.Cols(); j++ {
		if j < lo || j >= hi {
			keepCols = append(keepCols, j)
		}
	}
	avoided, err := la.HCat(joined.SelectCols(keepCols), oneHot.ToDense())
	if err != nil {
		return nil, err
	}

	// Shared train/test split.
	rng := rand.New(rand.NewSource(seed))
	n := s.Config.FactRows
	perm := rng.Perm(n)
	nTest := int(float64(n) * testFrac)
	if nTest == 0 || nTest == n {
		return nil, fmt.Errorf("hamlet: degenerate split with %d rows", n)
	}
	testIdx, trainIdx := perm[:nTest], perm[nTest:]
	yTrain := make([]float64, len(trainIdx))
	yTest := make([]float64, len(testIdx))
	for i, r := range trainIdx {
		yTrain[i] = s.Y[r]
	}
	for i, r := range testIdx {
		yTest[i] = s.Y[r]
	}

	evalOn := func(x *la.Dense) (float64, error) {
		lr := &ml.LogisticRegression{L2: 1e-3, Epochs: 80}
		if err := lr.Fit(x.SelectRows(trainIdx), yTrain); err != nil {
			return 0, err
		}
		pred := lr.Predict(x.SelectRows(testIdx))
		return ml.Accuracy(pred, yTest), nil
	}
	accJoined, err := evalOn(joined)
	if err != nil {
		return nil, err
	}
	accAvoided, err := evalOn(avoided)
	if err != nil {
		return nil, err
	}
	return &EmpiricalResult{Decision: dec, AccJoined: accJoined, AccAvoided: accAvoided}, nil
}
