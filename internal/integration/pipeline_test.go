// Package integration exercises whole pipelines across dmml's modules: raw
// CSV through the relational engine, feature transforms, the cost-based
// planner, and the model registry — the end-to-end workflow the paper's
// lifecycle discussion is about.
package integration

import (
	"bytes"
	"math"
	"math/rand"
	"path/filepath"
	"testing"

	"dmml/internal/core"
	"dmml/internal/dml"
	"dmml/internal/factorized"
	"dmml/internal/featureng"
	"dmml/internal/la"
	"dmml/internal/ml"
	"dmml/internal/modeldb"
	"dmml/internal/modelsel"
	"dmml/internal/opt"
	"dmml/internal/relational"
	"dmml/internal/storage"
	"dmml/internal/workload"
)

// TestCSVToModelPipeline drives: generate star → write CSV → read CSV →
// hash join → standardize → planner training → registry logging.
func TestCSVToModelPipeline(t *testing.T) {
	r := rand.New(rand.NewSource(500))
	star, err := workload.GenerateStar(r, workload.StarConfig{
		FactRows: 2000, FactFeats: 3,
		DimRows: []int{50}, DimFeats: []int{4},
		Task: workload.RegressionTask, Noise: 0.1, DimSignal: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	fact, dims, err := star.Tables()
	if err != nil {
		t.Fatal(err)
	}

	// Round-trip both tables through CSV files.
	dir := t.TempDir()
	factPath := filepath.Join(dir, "fact.csv")
	dimPath := filepath.Join(dir, "dim.csv")
	if err := storage.WriteCSVFile(factPath, fact); err != nil {
		t.Fatal(err)
	}
	if err := storage.WriteCSVFile(dimPath, dims[0]); err != nil {
		t.Fatal(err)
	}
	factBack, err := storage.ReadCSVFile(factPath, fact.Schema(), true)
	if err != nil {
		t.Fatal(err)
	}
	dimBack, err := storage.ReadCSVFile(dimPath, dims[0].Schema(), true)
	if err != nil {
		t.Fatal(err)
	}

	// Join, project features, transform, and train through the planner.
	joined, err := relational.HashJoin(factBack, dimBack, "fk0", "id",
		relational.JoinOptions{DropRightKey: true})
	if err != nil {
		t.Fatal(err)
	}
	cols := []string{"f0", "f1", "f2", "d0_0", "d0_1", "d0_2", "d0_3"}
	x, err := storage.ToMatrix(joined, cols)
	if err != nil {
		t.Fatal(err)
	}
	labels, err := joined.Floats("label")
	if err != nil {
		t.Fatal(err)
	}

	std := &featureng.Standardizer{}
	if err := std.Fit(x); err != nil {
		t.Fatal(err)
	}
	xStd, err := std.Apply(x)
	if err != nil {
		t.Fatal(err)
	}

	res, err := core.TrainJoined(xStd, labels, core.Task{Loss: core.SquaredLoss, L2: 0.01}, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	pred := la.MatVec(xStd, res.W)
	if r2 := ml.R2(pred, labels); r2 < 0.95 {
		t.Fatalf("pipeline R² = %v", r2)
	}

	// Log the run with full lineage and round-trip the registry.
	store := modeldb.NewStore()
	run, err := store.Log(modeldb.Spec{
		Name:        "star-regression",
		DatasetHash: modeldb.DatasetHash(xStd, labels),
		Transforms:  []string{"hashjoin(fk0=id)", std.Name()},
		Config:      map[string]float64{"l2": 0.01},
		Metrics:     map[string]float64{"train_loss": res.FinalLoss},
		Weights:     res.W,
		ParentID:    -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := store.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := modeldb.Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	got, err := loaded.Get(run.ID)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Weights) != len(res.W) || got.Transforms[1] != "standardize" {
		t.Fatalf("registry round trip lost data: %+v", got)
	}
}

// TestDMLReplicatesPlannerModel verifies the declarative language computes
// the same ridge solution as the planner's direct path on the same data.
func TestDMLReplicatesPlannerModel(t *testing.T) {
	r := rand.New(rand.NewSource(501))
	x, y, _ := workload.Regression(r, 800, 5, 0.05)
	ym := la.NewDense(len(y), 1)
	for i, v := range y {
		ym.Set(i, 0, v)
	}

	prog, err := dml.Parse(`
G = t(X) %*% X + 0.5 * eye(ncol(X))
w = solve(G, t(X) %*% y)
w`)
	if err != nil {
		t.Fatal(err)
	}
	env := dml.Env{"X": dml.Matrix(x), "y": dml.Matrix(ym)}
	prog = prog.Optimize(dml.ShapesFromEnv(env))
	v, _, err := prog.Run(env)
	if err != nil {
		t.Fatal(err)
	}

	res, err := core.TrainJoined(x, y, core.Task{Loss: core.SquaredLoss, L2: 0.5},
		core.Options{ForcePlan: "dense+direct"})
	if err != nil {
		t.Fatal(err)
	}
	for j := range res.W {
		if math.Abs(v.M.At(j, 0)-res.W[j]) > 1e-8 {
			t.Fatalf("DML w[%d]=%v vs planner %v", j, v.M.At(j, 0), res.W[j])
		}
	}
}

// TestFactorizedThroughSearchAndCV composes factorized data access with the
// model-selection machinery: successive halving over SGD configs trained on
// a materialized view, cross-validated ridge on the same data, and agreement
// between factorized and materialized gradients throughout.
func TestFactorizedThroughSearchAndCV(t *testing.T) {
	r := rand.New(rand.NewSource(502))
	star, err := workload.GenerateStar(r, workload.StarConfig{
		FactRows: 3000, FactFeats: 4,
		DimRows: []int{60}, DimFeats: []int{5},
		Task: workload.ClassificationTask, Noise: 0.05, DimSignal: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	design, err := factorized.NewDesign(star.FactX, star.FKs, star.DimX)
	if err != nil {
		t.Fatal(err)
	}
	m := design.Materialize()

	// Gradients agree between representations at a random point.
	w := make([]float64, design.Cols())
	for j := range w {
		w[j] = r.NormFloat64()
	}
	_, gFact := opt.LossAndGradient(design, star.Y, w, opt.Logistic{}, 0.1)
	_, gMat := opt.LossAndGradient(opt.DenseData{M: m}, star.Y, w, opt.Logistic{}, 0.1)
	for j := range gFact {
		if math.Abs(gFact[j]-gMat[j]) > 1e-9 {
			t.Fatalf("gradient mismatch at %d", j)
		}
	}

	// Hyperparameter search over the materialized view.
	split := 2250
	tr := &modelsel.SGDTrainer{
		XTrain: m.Slice(0, split, 0, m.Cols()), YTrain: star.Y[:split],
		XVal: m.Slice(split, 3000, 0, m.Cols()), YVal: star.Y[split:],
		Seed: 1,
	}
	res, stats, err := modelsel.SuccessiveHalving(tr,
		modelsel.Grid(map[string][]float64{"step": {0.01, 0.1, 0.5}, "l2": {0, 0.01}}),
		1, 8, 2)
	if err != nil {
		t.Fatal(err)
	}
	if res[0].Score < 0.85 {
		t.Fatalf("best config accuracy = %v", res[0].Score)
	}
	if stats.TotalEpochs >= 6*8 {
		t.Fatalf("successive halving used full budget: %d", stats.TotalEpochs)
	}

	// Ridge CV over the regression view of the same design.
	yReal := la.MatVec(m, star.WTrue)
	cv, passes, err := modelsel.RidgeCVShared(m, yReal, []float64{1e-6, 1, 1e4}, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	if passes != 4 {
		t.Fatalf("shared CV passes = %d", passes)
	}
	if cv[0].Lambda != 1e-6 {
		t.Fatalf("noise-free CV picked λ=%v, want the smallest", cv[0].Lambda)
	}
}

// TestRelationalAggregationFeeds exercises group-by as a feature builder:
// per-group aggregates of the fact table become features of a dimension-
// level model.
func TestRelationalAggregationFeeds(t *testing.T) {
	schema := storage.MustSchema(
		storage.Field{Name: "cust", Type: storage.Int64},
		storage.Field{Name: "amount", Type: storage.Float64},
	)
	tb := storage.NewTable(schema)
	r := rand.New(rand.NewSource(503))
	trueMean := map[int64]float64{}
	for c := int64(0); c < 20; c++ {
		mu := float64(c) * 2
		trueMean[c] = mu
		for k := 0; k < 50; k++ {
			if err := tb.AppendRow(c, mu+r.NormFloat64()*0.1); err != nil {
				t.Fatal(err)
			}
		}
	}
	agg, err := relational.GroupBy(tb, "cust", []relational.Agg{
		{Col: "amount", Fn: relational.Mean},
		{Col: "amount", Fn: relational.Count},
	})
	if err != nil {
		t.Fatal(err)
	}
	if agg.NumRows() != 20 {
		t.Fatalf("groups = %d", agg.NumRows())
	}
	custs, _ := agg.Ints("cust")
	means, _ := agg.Floats("amount_mean")
	for i, c := range custs {
		if math.Abs(means[i]-trueMean[c]) > 0.1 {
			t.Fatalf("group %d mean = %v, want %v", c, means[i], trueMean[c])
		}
	}
	counts, _ := agg.Ints("count")
	for _, n := range counts {
		if n != 50 {
			t.Fatalf("count = %d", n)
		}
	}
}
