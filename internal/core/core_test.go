package core

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"time"

	"dmml/internal/factorized"
	"dmml/internal/la"
	"dmml/internal/workload"
)

func starDesign(t *testing.T, seed int64, factRows, dimRows int) (*factorized.Design, []float64) {
	t.Helper()
	r := rand.New(rand.NewSource(seed))
	s, err := workload.GenerateStar(r, workload.StarConfig{
		FactRows:  factRows,
		FactFeats: 4,
		DimRows:   []int{dimRows},
		DimFeats:  []int{6},
		Task:      workload.RegressionTask,
		Noise:     0.05,
		DimSignal: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	d, err := factorized.NewDesign(s.FactX, s.FKs, s.DimX)
	if err != nil {
		t.Fatal(err)
	}
	return d, s.Y
}

func TestTrainNormalizedPicksFactorizedAtHighTupleRatio(t *testing.T) {
	d, y := starDesign(t, 180, 20000, 50) // TR = 400
	res, err := TrainNormalized(d, y, Task{Loss: SquaredLoss, L2: 0.01}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(res.Plan, "factorized") {
		t.Fatalf("plan = %s\n%s", res.Plan, ExplainString(res.Explain))
	}
	if res.FinalLoss > 0.1 {
		t.Fatalf("final loss = %v", res.FinalLoss)
	}
}

func TestTrainNormalizedPicksMaterializedAtLowTupleRatio(t *testing.T) {
	d, y := starDesign(t, 181, 200, 4000) // TR = 0.05: dims dominate
	res, err := TrainNormalized(d, y, Task{Loss: LogisticLoss, MaxIter: 30}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(res.Plan, "materialized") {
		t.Fatalf("plan = %s\n%s", res.Plan, ExplainString(res.Explain))
	}
}

func TestAllNormalizedPlansAgree(t *testing.T) {
	d, y := starDesign(t, 182, 1500, 60)
	task := Task{Loss: SquaredLoss, L2: 0.1, MaxIter: 60}
	var ws [][]float64
	for _, plan := range []string{"factorized+direct", "materialized+direct"} {
		res, err := TrainNormalized(d, y, task, Options{ForcePlan: plan})
		if err != nil {
			t.Fatalf("%s: %v", plan, err)
		}
		if res.Plan != plan {
			t.Fatalf("forced plan %s, got %s", plan, res.Plan)
		}
		ws = append(ws, res.W)
	}
	for j := range ws[0] {
		if math.Abs(ws[0][j]-ws[1][j]) > 1e-7 {
			t.Fatalf("direct plans disagree at %d: %v vs %v", j, ws[0][j], ws[1][j])
		}
	}
	// Iterative plans agree with each other too.
	ws = nil
	for _, plan := range []string{"factorized+iterative", "materialized+iterative"} {
		res, err := TrainNormalized(d, y, task, Options{ForcePlan: plan})
		if err != nil {
			t.Fatalf("%s: %v", plan, err)
		}
		ws = append(ws, res.W)
	}
	for j := range ws[0] {
		if math.Abs(ws[0][j]-ws[1][j]) > 1e-7 {
			t.Fatalf("iterative plans disagree at %d", j)
		}
	}
}

func TestLogisticExcludesDirectPlans(t *testing.T) {
	d, y := starDesign(t, 183, 500, 25)
	// Make labels ±1.
	for i := range y {
		if y[i] >= 0 {
			y[i] = 1
		} else {
			y[i] = -1
		}
	}
	res, err := TrainNormalized(d, y, Task{Loss: LogisticLoss, MaxIter: 20}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range res.Explain {
		if strings.HasSuffix(p.Name, "direct") {
			t.Fatalf("direct plan offered for logistic loss: %+v", p)
		}
	}
}

func TestTrainJoinedDirectForSquared(t *testing.T) {
	r := rand.New(rand.NewSource(184))
	x, y, wTrue := workload.Regression(r, 3000, 8, 0.05)
	res, err := TrainJoined(x, y, Task{Loss: SquaredLoss, L2: 1e-6, MaxIter: 200}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// n·d² ≪ iters·4·n·d here? n·d²=192k vs 200·4·n·d=19.2M → direct wins.
	if res.Plan != "dense+direct" {
		t.Fatalf("plan = %s\n%s", res.Plan, ExplainString(res.Explain))
	}
	for j := range wTrue {
		if math.Abs(res.W[j]-wTrue[j]) > 0.05 {
			t.Fatalf("w[%d] = %v, true %v", j, res.W[j], wTrue[j])
		}
	}
}

func TestTrainJoinedCompressedUnderMemoryPressure(t *testing.T) {
	// Highly compressible categorical data + a memory budget far below the
	// dense footprint: the planner must pick the compressed plan.
	r := rand.New(rand.NewSource(185))
	n := 5000
	x := workload.TelemetryMatrix(r, n, []int{4, 6, 3, 8}, 1.2)
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		if x.At(i, 0) == 0 {
			y[i] = 1
		} else {
			y[i] = -1
		}
	}
	res, err := TrainJoined(x, y, Task{Loss: LogisticLoss, MaxIter: 40},
		Options{MemBudgetBytes: int64(8 * n)}) // budget = 1/4 of dense
	if err != nil {
		t.Fatal(err)
	}
	if res.Plan != "compressed+iterative" {
		t.Fatalf("plan = %s\n%s", res.Plan, ExplainString(res.Explain))
	}
	// And the compressed execution must match the dense execution.
	dense, err := TrainJoined(x, y, Task{Loss: LogisticLoss, MaxIter: 40},
		Options{ForcePlan: "dense+iterative"})
	if err != nil {
		t.Fatal(err)
	}
	for j := range res.W {
		if math.Abs(res.W[j]-dense.W[j]) > 1e-6 {
			t.Fatalf("compressed vs dense weights differ at %d: %v vs %v", j, res.W[j], dense.W[j])
		}
	}
}

func TestForcePlanValidation(t *testing.T) {
	r := rand.New(rand.NewSource(186))
	x, y, _ := workload.Regression(r, 100, 3, 0.1)
	if _, err := TrainJoined(x, y, Task{}, Options{ForcePlan: "nonsense"}); err == nil {
		t.Fatal("want unknown plan error")
	}
	if _, err := TrainJoined(x, y[:10], Task{}, Options{}); err == nil {
		t.Fatal("want label mismatch error")
	}
	d, yy := starDesign(t, 187, 100, 10)
	if _, err := TrainNormalized(d, yy[:5], Task{}, Options{}); err == nil {
		t.Fatal("want label mismatch error")
	}
	if _, err := TrainNormalized(d, yy, Task{}, Options{ForcePlan: "bogus"}); err == nil {
		t.Fatal("want unknown plan error")
	}
}

func TestExplainIsSortedAndMarked(t *testing.T) {
	d, y := starDesign(t, 188, 2000, 40)
	res, err := TrainNormalized(d, y, Task{Loss: SquaredLoss, L2: 0.01}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Explain) != 4 {
		t.Fatalf("explain has %d plans", len(res.Explain))
	}
	chosen := 0
	for i := 1; i < len(res.Explain); i++ {
		if res.Explain[i].EstFlops < res.Explain[i-1].EstFlops {
			t.Fatal("explain not sorted by cost")
		}
	}
	for _, p := range res.Explain {
		if p.Chosen {
			chosen++
		}
	}
	if chosen != 1 {
		t.Fatalf("%d plans marked chosen", chosen)
	}
	if !strings.Contains(ExplainString(res.Explain), "*") {
		t.Fatal("ExplainString missing the chosen marker")
	}
}

func TestSpillAdjustShiftsChoice(t *testing.T) {
	// Same data, two budgets: generous budget → dense; tight → compressed.
	r := rand.New(rand.NewSource(189))
	n := 4000
	x := workload.TelemetryMatrix(r, n, []int{3, 5}, 1.0)
	y := make([]float64, n)
	for i := range y {
		if la.Dot(x.RowView(i), []float64{1, -1}) >= 0 {
			y[i] = 1
		} else {
			y[i] = -1
		}
	}
	// Logistic has no direct plan, so representation is the contested choice.
	loose, err := TrainJoined(x, y, Task{Loss: LogisticLoss, MaxIter: 20}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Budget above the compressed footprint (~8KB) but far below dense
	// (64KB): the compressed representation fits, paging is unnecessary.
	tight, err := TrainJoined(x, y, Task{Loss: LogisticLoss, MaxIter: 20},
		Options{MemBudgetBytes: 16 * 1024})
	if err != nil {
		t.Fatal(err)
	}
	if loose.Plan == "compressed+iterative" {
		t.Fatalf("loose budget picked %s", loose.Plan)
	}
	if tight.Plan != "compressed+iterative" {
		t.Fatalf("tight budget picked %s\n%s", tight.Plan, ExplainString(tight.Explain))
	}
}

func TestPagedPlanChosenForIncompressibleUnderBudget(t *testing.T) {
	// Continuous (incompressible) data with a hard memory budget: the paged
	// plan must win, and its model must match the dense plan's.
	r := rand.New(rand.NewSource(190))
	x, y, _ := workload.Regression(r, 4000, 8, 0.1)
	task := Task{Loss: LogisticLoss, MaxIter: 15}
	for i := range y {
		if y[i] >= 0 {
			y[i] = 1
		} else {
			y[i] = -1
		}
	}
	res, err := TrainJoined(x, y, task, Options{MemBudgetBytes: 32 * 1024})
	if err != nil {
		t.Fatal(err)
	}
	if res.Plan != "paged+iterative" {
		t.Fatalf("plan = %s\n%s", res.Plan, ExplainString(res.Explain))
	}
	dense, err := TrainJoined(x, y, task, Options{ForcePlan: "dense+iterative"})
	if err != nil {
		t.Fatal(err)
	}
	for j := range res.W {
		if math.Abs(res.W[j]-dense.W[j]) > 1e-9 {
			t.Fatalf("paged w[%d] = %v, dense %v", j, res.W[j], dense.W[j])
		}
	}
}

func TestPagedPlanAbsentWithoutBudget(t *testing.T) {
	r := rand.New(rand.NewSource(191))
	x, y, _ := workload.Regression(r, 500, 4, 0.1)
	res, err := TrainJoined(x, y, Task{Loss: SquaredLoss, L2: 0.1}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range res.Explain {
		if p.Name == "paged+iterative" {
			t.Fatal("paged plan offered without a memory budget")
		}
	}
}

// TestCostModelRankingMatchesWallTime pins the corrected cost model against
// reality on two adversarial shapes: a high-tuple-ratio star where the
// gather term is small relative to the avoided redundancy (factorized must
// win, predicted and measured) and a tiny fact over a huge dimension where
// factorized touches far more data than the join (materialized must win,
// predicted and measured). The old flat 2·n gather estimate got shapes like
// the second wrong. Wall-clock ranking gets three attempts; the model-side
// assertions always hold.
func TestCostModelRankingMatchesWallTime(t *testing.T) {
	if testing.Short() {
		t.Skip("wall-clock ranking test")
	}
	shapes := []struct {
		name               string
		factRows, dimRows  int
		wantFactorizedWins bool
	}{
		{"high tuple ratio", 40000, 50, true},
		{"huge dimension", 2000, 100000, false},
	}
	for _, sh := range shapes {
		sh := sh
		t.Run(sh.name, func(t *testing.T) {
			r := rand.New(rand.NewSource(190))
			s, err := workload.GenerateStar(r, workload.StarConfig{
				FactRows:  sh.factRows,
				FactFeats: 4,
				DimRows:   []int{sh.dimRows},
				DimFeats:  []int{6},
				Task:      workload.ClassificationTask,
				Noise:     0.05,
				DimSignal: 1,
			})
			if err != nil {
				t.Fatal(err)
			}
			d, err := factorized.NewDesign(s.FactX, s.FKs, s.DimX)
			if err != nil {
				t.Fatal(err)
			}
			task := Task{Loss: LogisticLoss, MaxIter: 40}

			// Model side: the predicted ranking must match the shape.
			res, err := TrainNormalized(d, s.Y, task, Options{})
			if err != nil {
				t.Fatal(err)
			}
			est := map[string]float64{}
			for _, p := range res.Explain {
				est[p.Name] = p.EstFlops
			}
			predFact := est["factorized+iterative"] < est["materialized+iterative"]
			if predFact != sh.wantFactorizedWins {
				t.Fatalf("model predicts factorized=%v, want %v\n%s",
					predFact, sh.wantFactorizedWins, ExplainString(res.Explain))
			}

			// Measured side: the forced-plan wall times must rank the same
			// way. Timing is noisy, so allow three attempts.
			for attempt := 1; ; attempt++ {
				start := time.Now()
				if _, err := TrainNormalized(d, s.Y, task, Options{ForcePlan: "factorized+iterative"}); err != nil {
					t.Fatal(err)
				}
				tFact := time.Since(start)
				start = time.Now()
				if _, err := TrainNormalized(d, s.Y, task, Options{ForcePlan: "materialized+iterative"}); err != nil {
					t.Fatal(err)
				}
				tMat := time.Since(start)
				measFact := tFact < tMat
				if measFact == sh.wantFactorizedWins {
					break
				}
				if attempt == 3 {
					t.Fatalf("measured ranking disagrees with model after %d attempts: factorized=%v materialized=%v, want factorized wins = %v",
						attempt, tFact, tMat, sh.wantFactorizedWins)
				}
			}
		})
	}
}
