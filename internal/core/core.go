// Package core is dmml's synthesis of the paper's survey: a cost-based
// planner for declarative ML training over data. Given a training task over
// either a joined (dense) matrix or a normalized star schema, it enumerates
// the physical plans the surveyed systems embody —
//
//   - access path: materialize the join vs. factorized learning (Orion/F),
//   - representation: dense vs. compressed linear algebra (CLA),
//   - solver: direct normal equations vs. iterative gradient descent,
//
// costs each with a flops/bytes model, picks the cheapest that fits the
// memory budget, and executes it. Explain output exposes the whole plan
// table so the choice is auditable.
package core

import (
	"fmt"
	"math"
	"os"
	"sort"

	"dmml/internal/compress"
	"dmml/internal/factorized"
	"dmml/internal/la"
	"dmml/internal/opt"
	"dmml/internal/storage"
)

// LossKind selects the training objective.
type LossKind int

// Loss kinds.
const (
	// SquaredLoss trains linear (ridge) regression.
	SquaredLoss LossKind = iota
	// LogisticLoss trains a binary ±1 classifier.
	LogisticLoss
)

// String implements fmt.Stringer.
func (l LossKind) String() string {
	if l == SquaredLoss {
		return "squared"
	}
	return "logistic"
}

// Task is a declarative training request.
type Task struct {
	Loss LossKind
	// L2 is the ridge penalty; required > 0 for the direct solver when the
	// design may be rank-deficient.
	L2 float64
	// MaxIter bounds iterative solvers (default 100).
	MaxIter int
	// Step is the iterative step size (default 0.1, with backtracking).
	Step float64
}

func (t Task) withDefaults() Task {
	if t.MaxIter == 0 {
		t.MaxIter = 100
	}
	if t.Step == 0 {
		t.Step = 0.1
	}
	return t
}

func (t Task) lossFn() opt.Loss {
	if t.Loss == SquaredLoss {
		return opt.Squared{}
	}
	return opt.Logistic{}
}

// Options tunes the planner.
type Options struct {
	// MemBudgetBytes caps the working-set estimate; plans whose working set
	// exceeds it pay a spill penalty. 0 = unlimited.
	MemBudgetBytes int64
	// SpillPenalty multiplies the cost of the bytes beyond the budget
	// (default 8, emulating disk-vs-memory bandwidth).
	SpillPenalty float64
	// CompressSampleRows bounds the sample used to probe the compression
	// ratio (default 2048).
	CompressSampleRows int
	// ForcePlan pins the plan choice (for ablations); empty = cost-based.
	ForcePlan string
}

func (o Options) withDefaults() Options {
	if o.SpillPenalty == 0 {
		o.SpillPenalty = 8
	}
	if o.CompressSampleRows == 0 {
		o.CompressSampleRows = 2048
	}
	return o
}

// PlanCost is one enumerated plan with its cost estimate.
type PlanCost struct {
	Name string
	// EstFlops is the modeled compute cost (flop-equivalents, including
	// spill penalties).
	EstFlops float64
	// WorkingSetBytes is the modeled resident working set.
	WorkingSetBytes int64
	Chosen          bool
}

// Result reports a planned-and-executed training run.
type Result struct {
	W         []float64
	Plan      string
	FinalLoss float64
	// Explain lists every considered plan, cheapest first.
	Explain []PlanCost
}

// choose marks the cheapest (or forced) plan and sorts the table.
func choose(plans []PlanCost, force string) (string, []PlanCost, error) {
	if len(plans) == 0 {
		return "", nil, fmt.Errorf("core: no feasible plans")
	}
	sort.Slice(plans, func(i, j int) bool { return plans[i].EstFlops < plans[j].EstFlops })
	pick := -1
	if force != "" {
		for i := range plans {
			if plans[i].Name == force {
				pick = i
				break
			}
		}
		if pick < 0 {
			return "", nil, fmt.Errorf("core: forced plan %q is not a candidate", force)
		}
	} else {
		pick = 0
	}
	plans[pick].Chosen = true
	return plans[pick].Name, plans, nil
}

// spillAdjust inflates cost when the working set exceeds the budget.
func spillAdjust(flops float64, workingSet int64, o Options) float64 {
	if o.MemBudgetBytes <= 0 || workingSet <= o.MemBudgetBytes {
		return flops
	}
	excess := float64(workingSet-o.MemBudgetBytes) / float64(workingSet)
	return flops * (1 + excess*o.SpillPenalty)
}

// TrainJoined plans and trains over an already-joined dense design matrix,
// choosing representation (dense vs. CLA-compressed) and solver (direct
// vs. iterative).
func TrainJoined(x *la.Dense, y []float64, task Task, o Options) (*Result, error) {
	task = task.withDefaults()
	o = o.withDefaults()
	n, d := x.Dims()
	if len(y) != n {
		return nil, fmt.Errorf("core: %d labels for %d rows", len(y), n)
	}

	// Probe compressibility on a sample.
	sample := x
	if n > o.CompressSampleRows {
		sample = x.Slice(0, o.CompressSampleRows, 0, d)
	}
	probe := compress.Compress(sample, compress.Options{})
	ratio := probe.CompressionRatio()

	denseBytes := int64(8 * n * d)
	comprBytes := int64(float64(denseBytes) / math.Max(ratio, 1e-9))
	iters := float64(task.MaxIter)
	matvecPair := 4 * float64(n) * float64(d) // X·w plus xᵀ·X per iteration

	var plans []PlanCost
	addPlan := func(name string, flops float64, ws int64) {
		plans = append(plans, PlanCost{Name: name, EstFlops: spillAdjust(flops, ws, o), WorkingSetBytes: ws})
	}
	if task.Loss == SquaredLoss {
		direct := float64(n)*float64(d)*float64(d) + float64(d*d*d)/3
		addPlan("dense+direct", direct, denseBytes)
	}
	addPlan("dense+iterative", iters*matvecPair, denseBytes)
	// Compressed iterative: per-op compute is comparable to dense (dictionary
	// lookups replace multiplies, at a small indirection premium), plus a
	// one-time compression pass; the win
	// is the smaller working set, which avoids the spill penalty — CLA's
	// actual value proposition.
	compressSetup := 4 * float64(n) * float64(d)
	addPlan("compressed+iterative", iters*matvecPair*1.05+compressSetup, comprBytes)
	// Paged iterative: stream pages through a buffer pool sized to the
	// budget. Sequential page I/O per iteration is modeled as cheaper than
	// the random-access thrash the dense plan would suffer, so this is the
	// fallback when the data neither fits nor compresses.
	if o.MemBudgetBytes > 0 && denseBytes > o.MemBudgetBytes {
		excess := float64(denseBytes-o.MemBudgetBytes) / float64(denseBytes)
		ioCost := iters * matvecPair * excess * o.SpillPenalty * 0.5
		plans = append(plans, PlanCost{
			Name:            "paged+iterative",
			EstFlops:        iters*matvecPair + ioCost,
			WorkingSetBytes: o.MemBudgetBytes,
		})
	}

	name, explained, err := choose(plans, o.ForcePlan)
	if err != nil {
		return nil, err
	}

	var w []float64
	switch name {
	case "dense+direct":
		g := la.Gram(x)
		for j := 0; j < d; j++ {
			g.Set(j, j, g.At(j, j)+task.L2)
		}
		w, err = la.SolveSPD(g, la.XtY(x, y))
		if err != nil {
			return nil, fmt.Errorf("core: direct solve: %w", err)
		}
	case "dense+iterative":
		res, gerr := opt.GradientDescent(opt.DenseData{M: x}, y, task.lossFn(),
			opt.GDConfig{Step: task.Step, L2: task.L2, MaxIter: task.MaxIter, Tol: 1e-9, Backtracking: true})
		if gerr != nil {
			return nil, gerr
		}
		w = res.W
	case "compressed+iterative":
		cm := compress.Compress(x, compress.Options{CoCode: true})
		res, gerr := opt.GradientDescent(compressedData{cm}, y, task.lossFn(),
			opt.GDConfig{Step: task.Step, L2: task.L2, MaxIter: task.MaxIter, Tol: 1e-9, Backtracking: true})
		if gerr != nil {
			return nil, gerr
		}
		w = res.W
	case "paged+iterative":
		w, err = trainPaged(x, y, task, o)
		if err != nil {
			return nil, err
		}
	default:
		return nil, fmt.Errorf("core: unknown plan %q", name)
	}
	loss, _ := opt.LossAndGradient(opt.DenseData{M: x}, y, w, task.lossFn(), 0)
	return &Result{W: w, Plan: name, FinalLoss: loss, Explain: explained}, nil
}

// compressedData adapts a compressed matrix to opt.BulkData.
type compressedData struct{ m *compress.Matrix }

// Rows implements opt.BulkData.
func (c compressedData) Rows() int { return c.m.Rows() }

// Cols implements opt.BulkData.
func (c compressedData) Cols() int { return c.m.Cols() }

// MatVec implements opt.BulkData.
func (c compressedData) MatVec(v []float64) []float64 { return c.m.MatVec(v) }

// VecMat implements opt.BulkData.
func (c compressedData) VecMat(x []float64) []float64 { return c.m.VecMat(x) }

// TrainNormalized plans and trains over a normalized star schema, choosing
// between factorized learning and materialize-then-train, and between the
// direct and iterative solvers.
func TrainNormalized(design *factorized.Design, y []float64, task Task, o Options) (*Result, error) {
	task = task.withDefaults()
	o = o.withDefaults()
	n, d := design.Rows(), design.Cols()
	if len(y) != n {
		return nil, fmt.Errorf("core: %d labels for %d rows", len(y), n)
	}

	iters := float64(task.MaxIter)
	// FlopsPerMatVec already models the full X·w plus xᵀ·X pair per
	// iteration, including cache-aware gather penalties along each edge.
	factIter := design.FlopsPerMatVec()
	matIter := design.FlopsPerMatVecMaterialized()
	materializeCost := 2 * float64(n) * float64(d) // write + first touch
	matBytes := int64(8 * n * d)
	factBytes := design.ResidentBytes()

	var plans []PlanCost
	addPlan := func(name string, flops float64, ws int64) {
		plans = append(plans, PlanCost{Name: name, EstFlops: spillAdjust(flops, ws, o), WorkingSetBytes: ws})
	}
	addPlan("factorized+iterative", iters*factIter, factBytes)
	addPlan("materialized+iterative", materializeCost+iters*matIter, matBytes)
	if task.Loss == SquaredLoss {
		// F-style factorized normal equations vs. materialized ones.
		addPlan("factorized+direct", design.FlopsPerGram()+float64(d*d*d)/3, factBytes)
		addPlan("materialized+direct", materializeCost+float64(n)*float64(d)*float64(d)+float64(d*d*d)/3, matBytes)
	}
	name, explained, err := choose(plans, o.ForcePlan)
	if err != nil {
		return nil, err
	}

	var w []float64
	solveDirect := func(g *la.Dense, c []float64) ([]float64, error) {
		for j := 0; j < d; j++ {
			g.Set(j, j, g.At(j, j)+task.L2)
		}
		return la.SolveSPD(g, c)
	}
	switch name {
	case "factorized+iterative":
		res, gerr := opt.GradientDescent(design, y, task.lossFn(),
			opt.GDConfig{Step: task.Step, L2: task.L2, MaxIter: task.MaxIter, Tol: 1e-9, Backtracking: true})
		if gerr != nil {
			return nil, gerr
		}
		w = res.W
	case "materialized+iterative":
		m := design.Materialize()
		res, gerr := opt.GradientDescent(opt.DenseData{M: m}, y, task.lossFn(),
			opt.GDConfig{Step: task.Step, L2: task.L2, MaxIter: task.MaxIter, Tol: 1e-9, Backtracking: true})
		if gerr != nil {
			return nil, gerr
		}
		w = res.W
	case "factorized+direct":
		w, err = solveDirect(design.Gram(), design.XtY(y))
		if err != nil {
			return nil, fmt.Errorf("core: factorized direct solve: %w", err)
		}
	case "materialized+direct":
		m := design.Materialize()
		w, err = solveDirect(la.Gram(m), la.XtY(m, y))
		if err != nil {
			return nil, fmt.Errorf("core: materialized direct solve: %w", err)
		}
	default:
		return nil, fmt.Errorf("core: unknown plan %q", name)
	}
	loss, _ := opt.LossAndGradient(design, y, w, task.lossFn(), 0)
	return &Result{W: w, Plan: name, FinalLoss: loss, Explain: explained}, nil
}

// ExplainString renders a plan table.
func ExplainString(plans []PlanCost) string {
	out := ""
	for _, p := range plans {
		mark := " "
		if p.Chosen {
			mark = "*"
		}
		out += fmt.Sprintf("%s %-24s est=%.3g flops ws=%d bytes\n", mark, p.Name, p.EstFlops, p.WorkingSetBytes)
	}
	return out
}

// trainPaged runs batch GD streaming the design matrix through a buffer pool
// bounded by the memory budget — the out-of-core execution plan.
func trainPaged(x *la.Dense, y []float64, task Task, o Options) ([]float64, error) {
	n, d := x.Dims()
	rowBytes := int64(8 * d)
	budgetRows := o.MemBudgetBytes / rowBytes
	if budgetRows < 1 {
		budgetRows = 1
	}
	// Size pages so that the pool holds a handful of them within budget.
	const targetPoolPages = 8
	pageRows := int(budgetRows / targetPoolPages)
	if pageRows < 1 {
		pageRows = 1
	}
	if pageRows > n {
		pageRows = n
	}
	dir, err := os.MkdirTemp("", "dmml-core-paged-*")
	if err != nil {
		return nil, fmt.Errorf("core: paged plan: %w", err)
	}
	defer os.RemoveAll(dir)
	pool, err := storage.NewBufferPool(targetPoolPages, dir)
	if err != nil {
		return nil, fmt.Errorf("core: paged plan: %w", err)
	}
	pm, err := storage.NewPagedMatrix(pool, n, d, pageRows)
	if err != nil {
		return nil, fmt.Errorf("core: paged plan: %w", err)
	}
	if err := pm.FromDense(x); err != nil {
		return nil, fmt.Errorf("core: paged plan: %w", err)
	}
	pd := &pagedData{pm: pm, rows: n, cols: d}
	res, err := opt.GradientDescent(pd, y, task.lossFn(),
		opt.GDConfig{Step: task.Step, L2: task.L2, MaxIter: task.MaxIter, Tol: 1e-9, Backtracking: true})
	if err != nil {
		return nil, err
	}
	if pd.err != nil {
		return nil, fmt.Errorf("core: paged plan I/O: %w", pd.err)
	}
	return res.W, nil
}

// pagedData adapts a PagedMatrix to opt.BulkData, capturing I/O errors for
// the caller to surface after the optimizer returns.
type pagedData struct {
	pm         *storage.PagedMatrix
	rows, cols int
	err        error
}

// Rows implements opt.BulkData.
func (p *pagedData) Rows() int { return p.rows }

// Cols implements opt.BulkData.
func (p *pagedData) Cols() int { return p.cols }

// MatVec implements opt.BulkData.
func (p *pagedData) MatVec(v []float64) []float64 {
	out, err := p.pm.MatVec(v)
	if err != nil {
		p.err = err
		return make([]float64, p.rows)
	}
	return out
}

// VecMat implements opt.BulkData.
func (p *pagedData) VecMat(x []float64) []float64 {
	out, err := p.pm.VecMat(x)
	if err != nil {
		p.err = err
		return make([]float64, p.cols)
	}
	return out
}
