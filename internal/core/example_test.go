package core_test

import (
	"fmt"
	"log"
	"math/rand"

	"dmml/internal/core"
	"dmml/internal/factorized"
	"dmml/internal/workload"
)

// Training over a normalized star schema: the planner compares factorized
// learning against materialize-then-train and executes the cheaper plan.
func ExampleTrainNormalized() {
	r := rand.New(rand.NewSource(1))
	star, err := workload.GenerateStar(r, workload.StarConfig{
		FactRows: 20000, FactFeats: 4,
		DimRows: []int{100}, DimFeats: []int{8}, // tuple ratio 200
		Task: workload.RegressionTask, Noise: 0.05, DimSignal: 1,
	})
	if err != nil {
		log.Fatal(err)
	}
	design, err := factorized.NewDesign(star.FactX, star.FKs, star.DimX)
	if err != nil {
		log.Fatal(err)
	}
	res, err := core.TrainNormalized(design, star.Y,
		core.Task{Loss: core.SquaredLoss, L2: 0.01}, core.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("plan:", res.Plan)
	fmt.Println("low loss:", res.FinalLoss < 0.01)
	// Output:
	// plan: factorized+direct
	// low loss: true
}
