package storage

import "dmml/internal/metrics"

// Observability instruments (no-ops until metrics.Enable). Mirrors the
// per-pool PoolStats counters into the process-wide registry: PoolStats
// stays the precise per-instance API the out-of-core experiments assert
// on, while these aggregate across every pool in the process so hit/miss/
// eviction rates show up in the same dump as the kernels that caused them.
var (
	mBPHits        = metrics.NewCounter("storage.bufferpool.hits")
	mBPMisses      = metrics.NewCounter("storage.bufferpool.misses")
	mBPEvictions   = metrics.NewCounter("storage.bufferpool.evictions")
	mBPSpillReads  = metrics.NewCounter("storage.bufferpool.spill.reads")
	mBPSpillWrites = metrics.NewCounter("storage.bufferpool.spill.writes")
)
