package storage

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"os"
)

// Binary table format: a compact columnar serialization that avoids CSV's
// parse cost. Layout (all little-endian):
//
//	magic "DMT1" | uint32 nFields | per field: uint8 type, uvarint nameLen,
//	name bytes | uint64 nRows | per field, column-at-a-time payload
//	(float64 bits / varint-encoded int64 / uvarint length + bytes).
const binaryMagic = "DMT1"

// WriteBinary serializes the table in the dmml binary columnar format.
func WriteBinary(w io.Writer, t *Table) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(binaryMagic); err != nil {
		return fmt.Errorf("storage: binary write: %w", err)
	}
	var u32 [4]byte
	var u64 [8]byte
	binary.LittleEndian.PutUint32(u32[:], uint32(t.schema.NumFields()))
	bw.Write(u32[:])
	var varintBuf [binary.MaxVarintLen64]byte
	writeUvarint := func(v uint64) {
		n := binary.PutUvarint(varintBuf[:], v)
		bw.Write(varintBuf[:n])
	}
	writeVarint := func(v int64) {
		n := binary.PutVarint(varintBuf[:], v)
		bw.Write(varintBuf[:n])
	}
	for _, f := range t.schema.Fields {
		bw.WriteByte(byte(f.Type))
		writeUvarint(uint64(len(f.Name)))
		bw.WriteString(f.Name)
	}
	binary.LittleEndian.PutUint64(u64[:], uint64(t.nrows))
	bw.Write(u64[:])
	for i, f := range t.schema.Fields {
		switch f.Type {
		case Float64:
			for _, v := range t.floats[i] {
				binary.LittleEndian.PutUint64(u64[:], math.Float64bits(v))
				bw.Write(u64[:])
			}
		case Int64:
			for _, v := range t.ints[i] {
				writeVarint(v)
			}
		case String:
			for _, v := range t.strs[i] {
				writeUvarint(uint64(len(v)))
				bw.WriteString(v)
			}
		}
	}
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("storage: binary write: %w", err)
	}
	return nil
}

// ReadBinary deserializes a table written by WriteBinary.
func ReadBinary(r io.Reader) (*Table, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, 4)
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("storage: binary read: %w", err)
	}
	if string(magic) != binaryMagic {
		return nil, fmt.Errorf("storage: bad magic %q", magic)
	}
	var u32 [4]byte
	var u64 [8]byte
	if _, err := io.ReadFull(br, u32[:]); err != nil {
		return nil, fmt.Errorf("storage: binary read: %w", err)
	}
	nFields := int(binary.LittleEndian.Uint32(u32[:]))
	if nFields <= 0 || nFields > 1<<20 {
		return nil, fmt.Errorf("storage: implausible field count %d", nFields)
	}
	fields := make([]Field, nFields)
	for i := range fields {
		tb, err := br.ReadByte()
		if err != nil {
			return nil, fmt.Errorf("storage: binary read: %w", err)
		}
		if tb > byte(String) {
			return nil, fmt.Errorf("storage: unknown column type %d", tb)
		}
		nameLen, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, fmt.Errorf("storage: binary read: %w", err)
		}
		if nameLen > 1<<16 {
			return nil, fmt.Errorf("storage: implausible name length %d", nameLen)
		}
		name := make([]byte, nameLen)
		if _, err := io.ReadFull(br, name); err != nil {
			return nil, fmt.Errorf("storage: binary read: %w", err)
		}
		fields[i] = Field{Name: string(name), Type: ColType(tb)}
	}
	schema, err := NewSchema(fields...)
	if err != nil {
		return nil, err
	}
	if _, err := io.ReadFull(br, u64[:]); err != nil {
		return nil, fmt.Errorf("storage: binary read: %w", err)
	}
	nRows := int(binary.LittleEndian.Uint64(u64[:]))
	if nRows < 0 {
		return nil, fmt.Errorf("storage: negative row count")
	}
	t := NewTable(schema)
	t.nrows = nRows
	for i, f := range schema.Fields {
		switch f.Type {
		case Float64:
			col := make([]float64, nRows)
			for k := range col {
				if _, err := io.ReadFull(br, u64[:]); err != nil {
					return nil, fmt.Errorf("storage: binary read column %q: %w", f.Name, err)
				}
				col[k] = math.Float64frombits(binary.LittleEndian.Uint64(u64[:]))
			}
			t.floats[i] = col
		case Int64:
			col := make([]int64, nRows)
			for k := range col {
				v, err := binary.ReadVarint(br)
				if err != nil {
					return nil, fmt.Errorf("storage: binary read column %q: %w", f.Name, err)
				}
				col[k] = v
			}
			t.ints[i] = col
		case String:
			col := make([]string, nRows)
			for k := range col {
				slen, err := binary.ReadUvarint(br)
				if err != nil {
					return nil, fmt.Errorf("storage: binary read column %q: %w", f.Name, err)
				}
				buf := make([]byte, slen)
				if _, err := io.ReadFull(br, buf); err != nil {
					return nil, fmt.Errorf("storage: binary read column %q: %w", f.Name, err)
				}
				col[k] = string(buf)
			}
			t.strs[i] = col
		}
	}
	return t, nil
}

// WriteBinaryFile writes the table to path in binary columnar format.
func WriteBinaryFile(path string, t *Table) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("storage: %w", err)
	}
	if err := WriteBinary(f, t); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// ReadBinaryFile reads a binary columnar table from path.
func ReadBinaryFile(path string) (*Table, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("storage: %w", err)
	}
	defer f.Close()
	return ReadBinary(f)
}
