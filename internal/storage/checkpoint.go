package storage

import (
	"encoding/binary"
	"fmt"
	"math"
	"os"
	"path/filepath"
)

// Checkpoint format "DMC1": a single binary page holding a model snapshot,
// used by the parameter server for crash recovery. Layout (little-endian):
//
//	magic "DMC1" | uint64 clock | uint64 n | n × float64 bits
//
// Checkpoints are written to a temporary file in the destination directory,
// synced, and atomically renamed over the target path, so a reader never
// observes a torn or partially written snapshot — the file either holds the
// previous complete checkpoint or the new one.
const checkpointMagic = "DMC1"

// WriteCheckpoint atomically persists (clock, w) to path.
func WriteCheckpoint(path string, clock uint64, w []float64) error {
	buf := make([]byte, 4+8+8+8*len(w))
	copy(buf, checkpointMagic)
	binary.LittleEndian.PutUint64(buf[4:], clock)
	binary.LittleEndian.PutUint64(buf[12:], uint64(len(w)))
	for i, v := range w {
		binary.LittleEndian.PutUint64(buf[20+8*i:], math.Float64bits(v))
	}
	dir := filepath.Dir(path)
	f, err := os.CreateTemp(dir, ".ck-*")
	if err != nil {
		return fmt.Errorf("storage: checkpoint: %w", err)
	}
	tmp := f.Name()
	cleanup := func(err error) error {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("storage: checkpoint: %w", err)
	}
	if _, err := f.Write(buf); err != nil {
		return cleanup(err)
	}
	if err := f.Sync(); err != nil {
		return cleanup(err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("storage: checkpoint: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("storage: checkpoint: %w", err)
	}
	return nil
}

// ReadCheckpoint loads a checkpoint written by WriteCheckpoint.
func ReadCheckpoint(path string) (clock uint64, w []float64, err error) {
	buf, err := os.ReadFile(path)
	if err != nil {
		return 0, nil, fmt.Errorf("storage: checkpoint: %w", err)
	}
	if len(buf) < 20 || string(buf[:4]) != checkpointMagic {
		return 0, nil, fmt.Errorf("storage: checkpoint %s: bad header", path)
	}
	clock = binary.LittleEndian.Uint64(buf[4:])
	n := binary.LittleEndian.Uint64(buf[12:])
	if n > uint64(len(buf)-20)/8 {
		return 0, nil, fmt.Errorf("storage: checkpoint %s: truncated (%d floats claimed, %d bytes of payload)", path, n, len(buf)-20)
	}
	if uint64(len(buf)-20) != 8*n {
		return 0, nil, fmt.Errorf("storage: checkpoint %s: %d trailing bytes", path, uint64(len(buf)-20)-8*n)
	}
	w = make([]float64, n)
	for i := range w {
		w[i] = math.Float64frombits(binary.LittleEndian.Uint64(buf[20+8*i:]))
	}
	return clock, w, nil
}
