package storage

import (
	"bytes"
	"errors"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"testing/quick"

	"dmml/internal/la"
)

func testSchema(t *testing.T) *Schema {
	t.Helper()
	s, err := NewSchema(
		Field{"id", Int64},
		Field{"name", String},
		Field{"score", Float64},
	)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestSchemaValidation(t *testing.T) {
	if _, err := NewSchema(); err == nil {
		t.Fatal("want error for empty schema")
	}
	if _, err := NewSchema(Field{"a", Int64}, Field{"a", String}); err == nil {
		t.Fatal("want error for duplicate names")
	}
	if _, err := NewSchema(Field{"", Int64}); err == nil {
		t.Fatal("want error for empty name")
	}
	s := testSchema(t)
	if s.FieldIndex("score") != 2 || s.FieldIndex("missing") != -1 {
		t.Fatal("FieldIndex wrong")
	}
}

func TestTableAppendAndAccess(t *testing.T) {
	tb := NewTable(testSchema(t))
	if err := tb.AppendRow(int64(1), "alice", 0.9); err != nil {
		t.Fatal(err)
	}
	if err := tb.AppendRow(2, "bob", 0.5); err != nil { // plain int accepted
		t.Fatal(err)
	}
	if tb.NumRows() != 2 {
		t.Fatalf("rows = %d", tb.NumRows())
	}
	ids, err := tb.Ints("id")
	if err != nil || ids[1] != 2 {
		t.Fatalf("Ints: %v %v", ids, err)
	}
	names, err := tb.Strings("name")
	if err != nil || names[0] != "alice" {
		t.Fatalf("Strings: %v %v", names, err)
	}
	scores, err := tb.Floats("score")
	if err != nil || scores[0] != 0.9 {
		t.Fatalf("Floats: %v %v", scores, err)
	}
	// Type errors.
	if err := tb.AppendRow("x", "y", 0.0); err == nil {
		t.Fatal("want type error")
	}
	if err := tb.AppendRow(int64(1), "z"); err == nil {
		t.Fatal("want arity error")
	}
	if _, err := tb.Floats("name"); err == nil {
		t.Fatal("want type mismatch error")
	}
	if _, err := tb.Floats("nope"); err == nil {
		t.Fatal("want missing field error")
	}
	if v, err := tb.NumericAt(0, "id"); err != nil || v != 1 {
		t.Fatalf("NumericAt = %v, %v", v, err)
	}
}

func TestSelectRows(t *testing.T) {
	tb := NewTable(testSchema(t))
	for i := 0; i < 5; i++ {
		if err := tb.AppendRow(int64(i), "r", float64(i)*10); err != nil {
			t.Fatal(err)
		}
	}
	sub, err := tb.SelectRows([]int{4, 0, 4})
	if err != nil {
		t.Fatal(err)
	}
	ids, _ := sub.Ints("id")
	if ids[0] != 4 || ids[1] != 0 || ids[2] != 4 {
		t.Fatalf("SelectRows ids = %v", ids)
	}
	if _, err := tb.SelectRows([]int{9}); err == nil {
		t.Fatal("want out-of-range error")
	}
}

func TestCSVRoundTrip(t *testing.T) {
	tb := NewTable(testSchema(t))
	_ = tb.AppendRow(int64(1), "a,with comma", 1.25)
	_ = tb.AppendRow(int64(2), `quote"inside`, -3.5)
	var buf bytes.Buffer
	if err := WriteCSV(&buf, tb); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV(&buf, tb.Schema(), true)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumRows() != 2 {
		t.Fatalf("rows = %d", got.NumRows())
	}
	names, _ := got.Strings("name")
	if names[0] != "a,with comma" || names[1] != `quote"inside` {
		t.Fatalf("names = %v", names)
	}
	scores, _ := got.Floats("score")
	if scores[1] != -3.5 {
		t.Fatalf("scores = %v", scores)
	}
}

func TestCSVErrors(t *testing.T) {
	s := testSchema(t)
	if _, err := ReadCSV(strings.NewReader("id,wrong,score\n"), s, true); err == nil {
		t.Fatal("want header mismatch error")
	}
	if _, err := ReadCSV(strings.NewReader("notanint,a,1.0\n"), s, false); err == nil {
		t.Fatal("want parse error")
	}
	if _, err := ReadCSV(strings.NewReader("1,a,notafloat\n"), s, false); err == nil {
		t.Fatal("want float parse error")
	}
}

func TestToMatrix(t *testing.T) {
	tb := NewTable(testSchema(t))
	_ = tb.AppendRow(int64(7), "a", 0.5)
	_ = tb.AppendRow(int64(8), "b", 1.5)
	m, err := ToMatrix(tb, []string{"score", "id"})
	if err != nil {
		t.Fatal(err)
	}
	want, _ := la.FromRows([][]float64{{0.5, 7}, {1.5, 8}})
	if !m.Equal(want, 0) {
		t.Fatalf("ToMatrix = %v", m)
	}
	if _, err := ToMatrix(tb, []string{"name"}); err == nil {
		t.Fatal("want non-numeric error")
	}
	if _, err := ToMatrix(NewTable(testSchema(t)), []string{"id"}); err == nil {
		t.Fatal("want empty table error")
	}
}

func TestBufferPoolBasics(t *testing.T) {
	bp, err := NewBufferPool(2, t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	idA := PageID{1, 0}
	data, err := bp.Pin(idA, 4)
	if err != nil {
		t.Fatal(err)
	}
	data[0] = 42
	bp.Unpin(idA, true)
	// Re-pin hits cache.
	data2, _ := bp.Pin(idA, 4)
	if data2[0] != 42 {
		t.Fatal("page content lost while resident")
	}
	bp.Unpin(idA, false)
	st := bp.Stats()
	if st.Hits != 1 || st.Misses != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestBufferPoolEvictionAndReload(t *testing.T) {
	bp, err := NewBufferPool(2, t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	// Fill three pages through a 2-page pool; page 0 must spill and reload.
	for i := 0; i < 3; i++ {
		id := PageID{1, i}
		data, err := bp.Pin(id, 3)
		if err != nil {
			t.Fatal(err)
		}
		data[0] = float64(100 + i)
		bp.Unpin(id, true)
	}
	st := bp.Stats()
	if st.Evictions == 0 || st.SpillWrites == 0 {
		t.Fatalf("expected evictions and spills, got %+v", st)
	}
	data, err := bp.Pin(PageID{1, 0}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if data[0] != 100 {
		t.Fatalf("reloaded page content = %v, want 100", data[0])
	}
	bp.Unpin(PageID{1, 0}, false)
	if bp.Stats().SpillReads == 0 {
		t.Fatal("expected a spill read")
	}
}

func TestBufferPoolAllPinned(t *testing.T) {
	bp, _ := NewBufferPool(1, t.TempDir())
	if _, err := bp.Pin(PageID{1, 0}, 2); err != nil {
		t.Fatal(err)
	}
	if _, err := bp.Pin(PageID{1, 1}, 2); err == nil {
		t.Fatal("want exhaustion error when all pages pinned")
	}
	bp.Unpin(PageID{1, 0}, false)
}

func TestBufferPoolFailureInjection(t *testing.T) {
	bp, _ := NewBufferPool(1, t.TempDir())
	injected := errors.New("disk on fire")
	bp.SetFailureHooks(nil, func(PageID) error { return injected })
	d, _ := bp.Pin(PageID{1, 0}, 2)
	d[0] = 1
	bp.Unpin(PageID{1, 0}, true)
	// Eviction must surface the injected write error.
	if _, err := bp.Pin(PageID{1, 1}, 2); err == nil || !errors.Is(err, injected) {
		t.Fatalf("err = %v, want injected write failure", err)
	}
	// Clear write failure, allow spill, then inject read failure.
	bp.SetFailureHooks(nil, nil)
	if _, err := bp.Pin(PageID{1, 1}, 2); err != nil {
		t.Fatal(err)
	}
	bp.Unpin(PageID{1, 1}, false)
	bp.SetFailureHooks(func(PageID) error { return injected }, nil)
	if _, err := bp.Pin(PageID{1, 0}, 2); err == nil || !errors.Is(err, injected) {
		t.Fatalf("err = %v, want injected read failure", err)
	}
}

func TestPagedMatrixRoundTrip(t *testing.T) {
	bp, _ := NewBufferPool(3, t.TempDir())
	r := rand.New(rand.NewSource(50))
	d := la.NewDense(37, 5)
	for i := 0; i < 37; i++ {
		for j := 0; j < 5; j++ {
			d.Set(i, j, r.NormFloat64())
		}
	}
	pm, err := NewPagedMatrix(bp, 37, 5, 8) // 5 pages through a 3-page pool
	if err != nil {
		t.Fatal(err)
	}
	if err := pm.FromDense(d); err != nil {
		t.Fatal(err)
	}
	got, err := pm.ToDense()
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(d, 0) {
		t.Fatal("paged round trip mismatch")
	}
	if bp.Stats().SpillWrites == 0 {
		t.Fatal("expected spills with 5 pages through 3-page pool")
	}
}

func TestPagedMatrixOps(t *testing.T) {
	bp, _ := NewBufferPool(2, t.TempDir())
	r := rand.New(rand.NewSource(51))
	d := la.NewDense(50, 4)
	for i := 0; i < 50; i++ {
		for j := 0; j < 4; j++ {
			d.Set(i, j, r.NormFloat64())
		}
	}
	pm, _ := NewPagedMatrix(bp, 50, 4, 7)
	if err := pm.FromDense(d); err != nil {
		t.Fatal(err)
	}
	v := []float64{1, -2, 0.5, 3}
	got, err := pm.MatVec(v)
	if err != nil {
		t.Fatal(err)
	}
	want := la.MatVec(d, v)
	for i := range got {
		if diff := got[i] - want[i]; diff > 1e-12 || diff < -1e-12 {
			t.Fatalf("MatVec[%d] = %v, want %v", i, got[i], want[i])
		}
	}
	x := make([]float64, 50)
	for i := range x {
		x[i] = r.NormFloat64()
	}
	gotV, err := pm.VecMat(x)
	if err != nil {
		t.Fatal(err)
	}
	wantV := la.VecMat(x, d)
	for j := range gotV {
		if diff := gotV[j] - wantV[j]; diff > 1e-10 || diff < -1e-10 {
			t.Fatalf("VecMat[%d] = %v, want %v", j, gotV[j], wantV[j])
		}
	}
	g, err := pm.Gram()
	if err != nil {
		t.Fatal(err)
	}
	if !g.Equal(la.Gram(d), 1e-10) {
		t.Fatal("paged Gram mismatch")
	}
	// Row access.
	row := make([]float64, 4)
	if err := pm.Row(33, row); err != nil {
		t.Fatal(err)
	}
	for j := range row {
		if row[j] != d.At(33, j) {
			t.Fatalf("Row(33) = %v", row)
		}
	}
	if err := pm.SetRow(33, []float64{9, 9, 9, 9}); err != nil {
		t.Fatal(err)
	}
	_ = pm.Row(33, row)
	if row[0] != 9 {
		t.Fatal("SetRow did not stick")
	}
	if err := pm.Drop(); err != nil {
		t.Fatal(err)
	}
}

func TestPagedMatrixValidation(t *testing.T) {
	bp, _ := NewBufferPool(2, t.TempDir())
	if _, err := NewPagedMatrix(bp, 0, 3, 2); err == nil {
		t.Fatal("want dims error")
	}
	pm, _ := NewPagedMatrix(bp, 10, 3, 4)
	if err := pm.SetRow(10, make([]float64, 3)); err == nil {
		t.Fatal("want range error")
	}
	if err := pm.SetRow(0, make([]float64, 2)); err == nil {
		t.Fatal("want length error")
	}
	if _, err := pm.MatVec(make([]float64, 2)); err == nil {
		t.Fatal("want MatVec length error")
	}
}

func TestBinaryRoundTrip(t *testing.T) {
	tb := NewTable(testSchema(t))
	r := rand.New(rand.NewSource(60))
	for i := 0; i < 500; i++ {
		if err := tb.AppendRow(int64(r.Int63()-r.Int63()), strings.Repeat("x", r.Intn(10)), r.NormFloat64()); err != nil {
			t.Fatal(err)
		}
	}
	var buf bytes.Buffer
	if err := WriteBinary(&buf, tb); err != nil {
		t.Fatal(err)
	}
	got, err := ReadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumRows() != 500 {
		t.Fatalf("rows = %d", got.NumRows())
	}
	wantIDs, _ := tb.Ints("id")
	gotIDs, _ := got.Ints("id")
	wantScores, _ := tb.Floats("score")
	gotScores, _ := got.Floats("score")
	wantNames, _ := tb.Strings("name")
	gotNames, _ := got.Strings("name")
	for i := 0; i < 500; i++ {
		if wantIDs[i] != gotIDs[i] || wantScores[i] != gotScores[i] || wantNames[i] != gotNames[i] {
			t.Fatalf("row %d mismatch", i)
		}
	}
}

func TestBinaryFileRoundTrip(t *testing.T) {
	tb := NewTable(testSchema(t))
	_ = tb.AppendRow(int64(-42), "neg", 3.14)
	path := t.TempDir() + "/t.dmt"
	if err := WriteBinaryFile(path, tb); err != nil {
		t.Fatal(err)
	}
	got, err := ReadBinaryFile(path)
	if err != nil {
		t.Fatal(err)
	}
	ids, _ := got.Ints("id")
	if ids[0] != -42 {
		t.Fatalf("id = %d", ids[0])
	}
}

func TestBinaryCorruption(t *testing.T) {
	tb := NewTable(testSchema(t))
	_ = tb.AppendRow(int64(1), "a", 1.0)
	var buf bytes.Buffer
	_ = WriteBinary(&buf, tb)
	data := buf.Bytes()
	// Bad magic.
	bad := append([]byte("XXXX"), data[4:]...)
	if _, err := ReadBinary(bytes.NewReader(bad)); err == nil {
		t.Fatal("want magic error")
	}
	// Truncated payload.
	if _, err := ReadBinary(bytes.NewReader(data[:len(data)-3])); err == nil {
		t.Fatal("want truncation error")
	}
	// Empty input.
	if _, err := ReadBinary(bytes.NewReader(nil)); err == nil {
		t.Fatal("want EOF error")
	}
}

func TestTableValueAndNumericColumns(t *testing.T) {
	tb := NewTable(testSchema(t))
	_ = tb.AppendRow(int64(1), "a", 2.5)
	if v := tb.Value(0, 0).(int64); v != 1 {
		t.Fatalf("Value int = %v", v)
	}
	if v := tb.Value(0, 1).(string); v != "a" {
		t.Fatalf("Value string = %v", v)
	}
	if v := tb.Value(0, 2).(float64); v != 2.5 {
		t.Fatalf("Value float = %v", v)
	}
	cols := tb.NumericColumns()
	if len(cols) != 2 || cols[0] != "id" || cols[1] != "score" {
		t.Fatalf("NumericColumns = %v", cols)
	}
	if _, err := tb.NumericAt(0, "name"); err == nil {
		t.Fatal("want non-numeric error")
	}
	if _, err := tb.NumericAt(0, "gone"); err == nil {
		t.Fatal("want missing error")
	}
	if _, err := tb.Ints("name"); err == nil {
		t.Fatal("want Ints type error")
	}
	if _, err := tb.Strings("id"); err == nil {
		t.Fatal("want Strings type error")
	}
}

func TestColTypeString(t *testing.T) {
	if Float64.String() != "float64" || Int64.String() != "int64" || String.String() != "string" {
		t.Fatal("ColType names wrong")
	}
	if ColType(9).String() == "" {
		t.Fatal("unknown ColType must format")
	}
}

func TestMustSchemaPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("want panic")
		}
	}()
	MustSchema()
}

func TestFlushAllAndResidentPages(t *testing.T) {
	bp, _ := NewBufferPool(4, t.TempDir())
	for i := 0; i < 3; i++ {
		d, err := bp.Pin(PageID{1, i}, 2)
		if err != nil {
			t.Fatal(err)
		}
		d[0] = float64(i)
		bp.Unpin(PageID{1, i}, true)
	}
	if bp.ResidentPages() != 3 {
		t.Fatalf("resident = %d", bp.ResidentPages())
	}
	if err := bp.FlushAll(); err != nil {
		t.Fatal(err)
	}
	if bp.Stats().SpillWrites != 3 {
		t.Fatalf("spill writes = %d", bp.Stats().SpillWrites)
	}
	// Flushing again is a no-op (pages clean).
	if err := bp.FlushAll(); err != nil {
		t.Fatal(err)
	}
	if bp.Stats().SpillWrites != 3 {
		t.Fatal("clean pages rewritten")
	}
	bp.ResetStats()
	if s := bp.Stats(); s.SpillWrites != 0 || s.Hits != 0 {
		t.Fatalf("ResetStats left %+v", s)
	}
}

func TestCSVFileHelpers(t *testing.T) {
	tb := NewTable(testSchema(t))
	_ = tb.AppendRow(int64(5), "row", 1.5)
	path := t.TempDir() + "/t.csv"
	if err := WriteCSVFile(path, tb); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSVFile(path, tb.Schema(), true)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumRows() != 1 {
		t.Fatalf("rows = %d", got.NumRows())
	}
	if _, err := ReadCSVFile("/nonexistent/x.csv", tb.Schema(), true); err == nil {
		t.Fatal("want open error")
	}
	if err := WriteCSVFile("/nonexistent/dir/x.csv", tb); err == nil {
		t.Fatal("want create error")
	}
}

func TestPagedMatrixDims(t *testing.T) {
	bp, _ := NewBufferPool(2, t.TempDir())
	pm, _ := NewPagedMatrix(bp, 10, 3, 4)
	if r, c := pm.Dims(); r != 10 || c != 3 {
		t.Fatalf("Dims = %d,%d", r, c)
	}
	if pm.NumPages() != 3 {
		t.Fatalf("NumPages = %d", pm.NumPages())
	}
}

// Property: arbitrary tables survive both CSV and binary round trips.
func TestPersistenceRoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		tb := NewTable(testSchemaQuiet())
		n := r.Intn(40) + 1
		for i := 0; i < n; i++ {
			name := ""
			for k := 0; k < r.Intn(8); k++ {
				name += string(rune('a' + r.Intn(26)))
			}
			if r.Intn(4) == 0 {
				name += `,"` // CSV-hostile characters
			}
			if err := tb.AppendRow(r.Int63()-r.Int63(), name, r.NormFloat64()); err != nil {
				return false
			}
		}
		// Binary.
		var bin bytes.Buffer
		if err := WriteBinary(&bin, tb); err != nil {
			return false
		}
		fromBin, err := ReadBinary(&bin)
		if err != nil {
			return false
		}
		// CSV.
		var csvBuf bytes.Buffer
		if err := WriteCSV(&csvBuf, tb); err != nil {
			return false
		}
		fromCSV, err := ReadCSV(&csvBuf, tb.Schema(), true)
		if err != nil {
			return false
		}
		return tablesEqual(tb, fromBin) && tablesEqual(tb, fromCSV)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func testSchemaQuiet() *Schema {
	return MustSchema(
		Field{"id", Int64},
		Field{"name", String},
		Field{"score", Float64},
	)
}

func tablesEqual(a, b *Table) bool {
	if a.NumRows() != b.NumRows() {
		return false
	}
	for r := 0; r < a.NumRows(); r++ {
		for f := 0; f < a.Schema().NumFields(); f++ {
			if a.ValueString(r, f) != b.ValueString(r, f) {
				return false
			}
		}
	}
	return true
}

// Satellite regression: pinning a page with a size that disagrees with the
// page's fixed length (resident or spilled) must fail descriptively instead
// of silently handing back a slice of unexpected length.
func TestBufferPoolPinSizeMismatch(t *testing.T) {
	bp, err := NewBufferPool(1, t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	id := PageID{1, 0}
	d, err := bp.Pin(id, 4)
	if err != nil {
		t.Fatal(err)
	}
	d[0] = 42
	// Resident with length 4: a size-6 pin is a caller bug.
	if _, err := bp.Pin(id, 6); err == nil || !strings.Contains(err.Error(), "resident") {
		t.Fatalf("resident mismatch err = %v, want descriptive size error", err)
	}
	bp.Unpin(id, true)
	// Evict it to disk by filling the 1-page pool with another page.
	if _, err := bp.Pin(PageID{1, 1}, 2); err != nil {
		t.Fatal(err)
	}
	bp.Unpin(PageID{1, 1}, false)
	if _, err := bp.Pin(id, 6); err == nil || !strings.Contains(err.Error(), "on disk with 4") {
		t.Fatalf("on-disk mismatch err = %v, want descriptive size error", err)
	}
	// The correct size still round-trips the content.
	d, err = bp.Pin(id, 4)
	if err != nil {
		t.Fatal(err)
	}
	if d[0] != 42 {
		t.Fatalf("reloaded d[0] = %v, want 42", d[0])
	}
	bp.Unpin(id, false)
}

// Satellite regression: DropOwner must report spill files it failed to
// remove instead of silently leaking them.
func TestDropOwnerReportsRemoveFailures(t *testing.T) {
	bp, err := NewBufferPool(1, t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	id := PageID{1, 0}
	d, _ := bp.Pin(id, 2)
	d[0] = 1
	bp.Unpin(id, true)
	if err := bp.FlushAll(); err != nil {
		t.Fatal(err)
	}
	// Replace the spill file with a non-empty directory of the same name so
	// os.Remove fails even when running as root.
	path := bp.pagePath(id)
	if err := os.Remove(path); err != nil {
		t.Fatal(err)
	}
	if err := os.MkdirAll(filepath.Join(path, "block"), 0o755); err != nil {
		t.Fatal(err)
	}
	err = bp.DropOwner(1)
	if err == nil || !strings.Contains(err.Error(), "DropOwner 1") {
		t.Fatalf("err = %v, want collected os.Remove failure", err)
	}
	// The pool forgot the page either way.
	if _, onDisk := bp.onDisk[id]; onDisk {
		t.Fatal("onDisk entry must be dropped even when Remove fails")
	}
}

// Checkpoint write/read round trip, atomicity (no temp droppings), and
// corruption detection.
func TestCheckpointRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "model.ck")
	w := []float64{1.5, -2.25, 0, 1e300, -1e-300}
	if err := WriteCheckpoint(path, 77, w); err != nil {
		t.Fatal(err)
	}
	// Overwrite with a second snapshot — the atomic rename path.
	w2 := []float64{9, 8, 7}
	if err := WriteCheckpoint(path, 78, w2); err != nil {
		t.Fatal(err)
	}
	clock, got, err := ReadCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	if clock != 78 || len(got) != 3 {
		t.Fatalf("clock=%d len=%d, want 78, 3", clock, len(got))
	}
	for i := range got {
		if got[i] != w2[i] {
			t.Fatalf("got[%d] = %v, want %v", i, got[i], w2[i])
		}
	}
	// No leftover temp files from either write.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("dir has %d entries, want only the checkpoint (temp file leaked?)", len(entries))
	}
	// Corruption: bad magic and truncation must both fail.
	if err := os.WriteFile(path, []byte("NOPE"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := ReadCheckpoint(path); err == nil {
		t.Fatal("want bad-header error")
	}
	if err := WriteCheckpoint(path, 1, w); err != nil {
		t.Fatal(err)
	}
	full, _ := os.ReadFile(path)
	if err := os.WriteFile(path, full[:len(full)-8], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := ReadCheckpoint(path); err == nil {
		t.Fatal("want truncation error")
	}
	if _, _, err := ReadCheckpoint(filepath.Join(dir, "missing.ck")); err == nil {
		t.Fatal("want missing-file error")
	}
}
