package storage

import (
	"fmt"

	"dmml/internal/la"
)

// PagedMatrix is a row-major dense matrix stored as fixed-size row blocks in
// a BufferPool, enabling matrices larger than the pool's memory budget.
// Iterative ML over a PagedMatrix exercises the paper's out-of-core regime.
type PagedMatrix struct {
	pool     *BufferPool
	owner    int
	rows     int
	cols     int
	pageRows int
}

// NewPagedMatrix creates a rows×cols paged matrix whose pages hold pageRows
// rows each.
func NewPagedMatrix(pool *BufferPool, rows, cols, pageRows int) (*PagedMatrix, error) {
	if rows <= 0 || cols <= 0 || pageRows <= 0 {
		return nil, fmt.Errorf("storage: bad paged matrix dims rows=%d cols=%d pageRows=%d", rows, cols, pageRows)
	}
	return &PagedMatrix{
		pool:     pool,
		owner:    pool.RegisterOwner(),
		rows:     rows,
		cols:     cols,
		pageRows: pageRows,
	}, nil
}

// Dims returns the logical dimensions.
func (pm *PagedMatrix) Dims() (rows, cols int) { return pm.rows, pm.cols }

// NumPages returns the page count.
func (pm *PagedMatrix) NumPages() int { return (pm.rows + pm.pageRows - 1) / pm.pageRows }

// pageSpan returns the page index, row offset within the page, and page size
// in floats for global row i.
func (pm *PagedMatrix) pageSpan(i int) (pageIdx, rowInPage, pageFloats int) {
	pageIdx = i / pm.pageRows
	rowInPage = i % pm.pageRows
	rowsInThis := pm.pageRows
	if (pageIdx+1)*pm.pageRows > pm.rows {
		rowsInThis = pm.rows - pageIdx*pm.pageRows
	}
	return pageIdx, rowInPage, rowsInThis * pm.cols
}

// SetRow writes row i.
func (pm *PagedMatrix) SetRow(i int, v []float64) error {
	if i < 0 || i >= pm.rows {
		return fmt.Errorf("storage: row %d out of range [0,%d)", i, pm.rows)
	}
	if len(v) != pm.cols {
		return fmt.Errorf("storage: SetRow length %d, want %d", len(v), pm.cols)
	}
	pg, off, size := pm.pageSpan(i)
	id := PageID{Owner: pm.owner, Index: pg}
	data, err := pm.pool.Pin(id, size)
	if err != nil {
		return err
	}
	copy(data[off*pm.cols:(off+1)*pm.cols], v)
	pm.pool.Unpin(id, true)
	return nil
}

// Row reads row i into dst (which must have length cols).
func (pm *PagedMatrix) Row(i int, dst []float64) error {
	if i < 0 || i >= pm.rows {
		return fmt.Errorf("storage: row %d out of range [0,%d)", i, pm.rows)
	}
	if len(dst) != pm.cols {
		return fmt.Errorf("storage: Row dst length %d, want %d", len(dst), pm.cols)
	}
	pg, off, size := pm.pageSpan(i)
	id := PageID{Owner: pm.owner, Index: pg}
	data, err := pm.pool.Pin(id, size)
	if err != nil {
		return err
	}
	copy(dst, data[off*pm.cols:(off+1)*pm.cols])
	pm.pool.Unpin(id, false)
	return nil
}

// FromDense bulk-loads a dense matrix of identical shape.
func (pm *PagedMatrix) FromDense(d *la.Dense) error {
	r, c := d.Dims()
	if r != pm.rows || c != pm.cols {
		return fmt.Errorf("storage: FromDense shape %dx%d, want %dx%d", r, c, pm.rows, pm.cols)
	}
	for pg := 0; pg < pm.NumPages(); pg++ {
		r0 := pg * pm.pageRows
		r1 := min(r0+pm.pageRows, pm.rows)
		id := PageID{Owner: pm.owner, Index: pg}
		data, err := pm.pool.Pin(id, (r1-r0)*pm.cols)
		if err != nil {
			return err
		}
		for i := r0; i < r1; i++ {
			copy(data[(i-r0)*pm.cols:(i-r0+1)*pm.cols], d.RowView(i))
		}
		pm.pool.Unpin(id, true)
	}
	return nil
}

// ToDense materializes the full matrix in memory.
func (pm *PagedMatrix) ToDense() (*la.Dense, error) {
	out := la.NewDense(pm.rows, pm.cols)
	err := pm.scanPages(func(r0 int, block []float64) error {
		copy(out.RawData()[r0*pm.cols:r0*pm.cols+len(block)], block)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// scanPages visits each page in order, passing the starting global row and
// the page's float data.
func (pm *PagedMatrix) scanPages(fn func(r0 int, block []float64) error) error {
	for pg := 0; pg < pm.NumPages(); pg++ {
		r0 := pg * pm.pageRows
		r1 := min(r0+pm.pageRows, pm.rows)
		id := PageID{Owner: pm.owner, Index: pg}
		data, err := pm.pool.Pin(id, (r1-r0)*pm.cols)
		if err != nil {
			return err
		}
		ferr := fn(r0, data)
		pm.pool.Unpin(id, false)
		if ferr != nil {
			return ferr
		}
	}
	return nil
}

// MatVec computes X·v with one streaming pass over the pages.
func (pm *PagedMatrix) MatVec(v []float64) ([]float64, error) {
	if len(v) != pm.cols {
		return nil, fmt.Errorf("storage: MatVec length %d, want %d", len(v), pm.cols)
	}
	out := make([]float64, pm.rows)
	err := pm.scanPages(func(r0 int, block []float64) error {
		n := len(block) / pm.cols
		for i := 0; i < n; i++ {
			out[r0+i] = la.Dot(block[i*pm.cols:(i+1)*pm.cols], v)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// VecMat computes xᵀ·X with one streaming pass over the pages.
func (pm *PagedMatrix) VecMat(x []float64) ([]float64, error) {
	if len(x) != pm.rows {
		return nil, fmt.Errorf("storage: VecMat length %d, want %d", len(x), pm.rows)
	}
	out := make([]float64, pm.cols)
	err := pm.scanPages(func(r0 int, block []float64) error {
		n := len(block) / pm.cols
		for i := 0; i < n; i++ {
			if xi := x[r0+i]; xi != 0 {
				la.Axpy(xi, block[i*pm.cols:(i+1)*pm.cols], out)
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// Gram computes XᵀX with one streaming pass over the pages.
func (pm *PagedMatrix) Gram() (*la.Dense, error) {
	out := la.NewDense(pm.cols, pm.cols)
	err := pm.scanPages(func(r0 int, block []float64) error {
		n := len(block) / pm.cols
		for i := 0; i < n; i++ {
			row := block[i*pm.cols : (i+1)*pm.cols]
			for a, va := range row {
				if va == 0 {
					continue
				}
				orow := out.RowView(a)
				for b := a; b < pm.cols; b++ {
					orow[b] += va * row[b]
				}
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	for i := 0; i < pm.cols; i++ {
		for j := 0; j < i; j++ {
			out.Set(i, j, out.At(j, i))
		}
	}
	return out, nil
}

// Drop releases all pages of this matrix from the pool and disk.
func (pm *PagedMatrix) Drop() error { return pm.pool.DropOwner(pm.owner) }
