package storage

import (
	"encoding/csv"
	"fmt"
	"io"
	"os"
	"strconv"

	"dmml/internal/la"
)

// ReadCSV parses CSV from r into a table with the given schema. The first
// record is treated as a header when header is true and must match the schema
// field names positionally.
func ReadCSV(r io.Reader, schema *Schema, header bool) (*Table, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = len(schema.Fields)
	t := NewTable(schema)
	first := true
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("storage: csv read: %w", err)
		}
		if first && header {
			first = false
			for i, f := range schema.Fields {
				if rec[i] != f.Name {
					return nil, fmt.Errorf("storage: csv header %q at position %d, schema wants %q", rec[i], i, f.Name)
				}
			}
			continue
		}
		first = false
		vals := make([]any, len(rec))
		for i, f := range schema.Fields {
			switch f.Type {
			case Float64:
				v, err := strconv.ParseFloat(rec[i], 64)
				if err != nil {
					return nil, fmt.Errorf("storage: csv field %q row %d: %w", f.Name, t.nrows, err)
				}
				vals[i] = v
			case Int64:
				v, err := strconv.ParseInt(rec[i], 10, 64)
				if err != nil {
					return nil, fmt.Errorf("storage: csv field %q row %d: %w", f.Name, t.nrows, err)
				}
				vals[i] = v
			case String:
				vals[i] = rec[i]
			}
		}
		if err := t.AppendRow(vals...); err != nil {
			return nil, err
		}
	}
	return t, nil
}

// ReadCSVFile reads a CSV file into a table.
func ReadCSVFile(path string, schema *Schema, header bool) (*Table, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("storage: %w", err)
	}
	defer f.Close()
	return ReadCSV(f, schema, header)
}

// WriteCSV writes the table as CSV with a header row.
func WriteCSV(w io.Writer, t *Table) error {
	cw := csv.NewWriter(w)
	head := make([]string, t.schema.NumFields())
	for i, f := range t.schema.Fields {
		head[i] = f.Name
	}
	if err := cw.Write(head); err != nil {
		return fmt.Errorf("storage: csv write: %w", err)
	}
	rec := make([]string, t.schema.NumFields())
	for r := 0; r < t.nrows; r++ {
		for i := range rec {
			rec[i] = t.ValueString(r, i)
		}
		if err := cw.Write(rec); err != nil {
			return fmt.Errorf("storage: csv write: %w", err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteCSVFile writes the table to a CSV file.
func WriteCSVFile(path string, t *Table) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("storage: %w", err)
	}
	if err := WriteCSV(f, t); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// ToMatrix projects the named numeric columns into a dense matrix, one row
// per table row, columns in the given order.
func ToMatrix(t *Table, cols []string) (*la.Dense, error) {
	if t.NumRows() == 0 {
		return nil, fmt.Errorf("storage: ToMatrix on empty table")
	}
	if len(cols) == 0 {
		return nil, fmt.Errorf("storage: ToMatrix with no columns")
	}
	m := la.NewDense(t.NumRows(), len(cols))
	for j, name := range cols {
		i := t.schema.FieldIndex(name)
		if i < 0 {
			return nil, fmt.Errorf("storage: no field %q", name)
		}
		switch t.schema.Fields[i].Type {
		case Float64:
			for r, v := range t.floats[i] {
				m.Set(r, j, v)
			}
		case Int64:
			for r, v := range t.ints[i] {
				m.Set(r, j, float64(v))
			}
		default:
			return nil, fmt.Errorf("storage: field %q is not numeric", name)
		}
	}
	return m, nil
}
