// Package storage provides dmml's relational storage substrate: typed
// columnar tables with CSV import/export, plus a page-based buffer pool and
// paged (out-of-core) matrices used to study memory-constrained ML execution.
package storage

import (
	"fmt"
	"strconv"
)

// ColType enumerates supported column types.
type ColType int

// Supported column types.
const (
	Float64 ColType = iota
	Int64
	String
)

// String implements fmt.Stringer.
func (t ColType) String() string {
	switch t {
	case Float64:
		return "float64"
	case Int64:
		return "int64"
	case String:
		return "string"
	}
	return fmt.Sprintf("ColType(%d)", int(t))
}

// Field is one named, typed column in a schema.
type Field struct {
	Name string
	Type ColType
}

// Schema describes a table's columns.
type Schema struct {
	Fields []Field
	byName map[string]int
}

// NewSchema builds a schema and validates that field names are unique and
// non-empty.
func NewSchema(fields ...Field) (*Schema, error) {
	if len(fields) == 0 {
		return nil, fmt.Errorf("storage: schema needs at least one field")
	}
	s := &Schema{Fields: fields, byName: make(map[string]int, len(fields))}
	for i, f := range fields {
		if f.Name == "" {
			return nil, fmt.Errorf("storage: field %d has empty name", i)
		}
		if _, dup := s.byName[f.Name]; dup {
			return nil, fmt.Errorf("storage: duplicate field name %q", f.Name)
		}
		s.byName[f.Name] = i
	}
	return s, nil
}

// MustSchema is NewSchema that panics on error, for static schemas.
func MustSchema(fields ...Field) *Schema {
	s, err := NewSchema(fields...)
	if err != nil {
		panic(err)
	}
	return s
}

// FieldIndex returns the position of the named field, or -1.
func (s *Schema) FieldIndex(name string) int {
	i, ok := s.byName[name]
	if !ok {
		return -1
	}
	return i
}

// NumFields returns the number of fields.
func (s *Schema) NumFields() int { return len(s.Fields) }

// Table is an immutable-schema columnar table. Columns are dense slices; the
// table grows by appending rows through a typed interface.
type Table struct {
	schema *Schema
	floats [][]float64 // indexed by field position; nil for non-float fields
	ints   [][]int64
	strs   [][]string
	nrows  int
}

// NewTable creates an empty table with the given schema.
func NewTable(schema *Schema) *Table {
	t := &Table{
		schema: schema,
		floats: make([][]float64, len(schema.Fields)),
		ints:   make([][]int64, len(schema.Fields)),
		strs:   make([][]string, len(schema.Fields)),
	}
	return t
}

// Schema returns the table schema.
func (t *Table) Schema() *Schema { return t.schema }

// NumRows returns the row count.
func (t *Table) NumRows() int { return t.nrows }

// AppendRow appends one row. vals must match the schema's arity and types:
// float64 for Float64 fields, int64/int for Int64, string for String.
func (t *Table) AppendRow(vals ...any) error {
	if len(vals) != len(t.schema.Fields) {
		return fmt.Errorf("storage: AppendRow got %d values, want %d", len(vals), len(t.schema.Fields))
	}
	for i, f := range t.schema.Fields {
		switch f.Type {
		case Float64:
			v, ok := vals[i].(float64)
			if !ok {
				return fmt.Errorf("storage: field %q wants float64, got %T", f.Name, vals[i])
			}
			t.floats[i] = append(t.floats[i], v)
		case Int64:
			switch v := vals[i].(type) {
			case int64:
				t.ints[i] = append(t.ints[i], v)
			case int:
				t.ints[i] = append(t.ints[i], int64(v))
			default:
				return fmt.Errorf("storage: field %q wants int64, got %T", f.Name, vals[i])
			}
		case String:
			v, ok := vals[i].(string)
			if !ok {
				return fmt.Errorf("storage: field %q wants string, got %T", f.Name, vals[i])
			}
			t.strs[i] = append(t.strs[i], v)
		}
	}
	t.nrows++
	return nil
}

// Floats returns the backing slice of a Float64 field.
func (t *Table) Floats(name string) ([]float64, error) {
	i := t.schema.FieldIndex(name)
	if i < 0 {
		return nil, fmt.Errorf("storage: no field %q", name)
	}
	if t.schema.Fields[i].Type != Float64 {
		return nil, fmt.Errorf("storage: field %q is %s, not float64", name, t.schema.Fields[i].Type)
	}
	return t.floats[i], nil
}

// Ints returns the backing slice of an Int64 field.
func (t *Table) Ints(name string) ([]int64, error) {
	i := t.schema.FieldIndex(name)
	if i < 0 {
		return nil, fmt.Errorf("storage: no field %q", name)
	}
	if t.schema.Fields[i].Type != Int64 {
		return nil, fmt.Errorf("storage: field %q is %s, not int64", name, t.schema.Fields[i].Type)
	}
	return t.ints[i], nil
}

// Strings returns the backing slice of a String field.
func (t *Table) Strings(name string) ([]string, error) {
	i := t.schema.FieldIndex(name)
	if i < 0 {
		return nil, fmt.Errorf("storage: no field %q", name)
	}
	if t.schema.Fields[i].Type != String {
		return nil, fmt.Errorf("storage: field %q is %s, not string", name, t.schema.Fields[i].Type)
	}
	return t.strs[i], nil
}

// Value returns the value at (row, field index) as an any.
func (t *Table) Value(row, field int) any {
	switch t.schema.Fields[field].Type {
	case Float64:
		return t.floats[field][row]
	case Int64:
		return t.ints[field][row]
	default:
		return t.strs[field][row]
	}
}

// ValueString formats the value at (row, field) for CSV output.
func (t *Table) ValueString(row, field int) string {
	switch t.schema.Fields[field].Type {
	case Float64:
		return strconv.FormatFloat(t.floats[field][row], 'g', -1, 64)
	case Int64:
		return strconv.FormatInt(t.ints[field][row], 10)
	default:
		return t.strs[field][row]
	}
}

// NumericColumns returns the names of all Float64 and Int64 fields, in schema
// order.
func (t *Table) NumericColumns() []string {
	var out []string
	for _, f := range t.schema.Fields {
		if f.Type == Float64 || f.Type == Int64 {
			out = append(out, f.Name)
		}
	}
	return out
}

// NumericAt returns the value of a numeric field as float64.
func (t *Table) NumericAt(row int, name string) (float64, error) {
	i := t.schema.FieldIndex(name)
	if i < 0 {
		return 0, fmt.Errorf("storage: no field %q", name)
	}
	switch t.schema.Fields[i].Type {
	case Float64:
		return t.floats[i][row], nil
	case Int64:
		return float64(t.ints[i][row]), nil
	default:
		return 0, fmt.Errorf("storage: field %q is not numeric", name)
	}
}

// SelectRows returns a new table containing the given rows, in order.
func (t *Table) SelectRows(rows []int) (*Table, error) {
	out := NewTable(t.schema)
	for _, r := range rows {
		if r < 0 || r >= t.nrows {
			return nil, fmt.Errorf("storage: row %d out of range [0,%d)", r, t.nrows)
		}
	}
	for i, f := range t.schema.Fields {
		switch f.Type {
		case Float64:
			col := make([]float64, len(rows))
			for k, r := range rows {
				col[k] = t.floats[i][r]
			}
			out.floats[i] = col
		case Int64:
			col := make([]int64, len(rows))
			for k, r := range rows {
				col[k] = t.ints[i][r]
			}
			out.ints[i] = col
		case String:
			col := make([]string, len(rows))
			for k, r := range rows {
				col[k] = t.strs[i][r]
			}
			out.strs[i] = col
		}
	}
	out.nrows = len(rows)
	return out, nil
}
