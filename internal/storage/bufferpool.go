package storage

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io/fs"
	"math"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
)

// PageID identifies a page: Owner scopes pages to one paged object (e.g. a
// PagedMatrix) and Index is the page number within the owner.
type PageID struct {
	Owner int
	Index int
}

// PoolStats counts buffer pool events; used by the out-of-core experiments.
type PoolStats struct {
	Hits        int64
	Misses      int64
	Evictions   int64
	SpillWrites int64
	SpillReads  int64
}

// BufferPool caches fixed-role float64 pages in memory up to a capacity,
// evicting least-recently-used unpinned pages to disk. It is safe for
// concurrent use.
//
// Capacity comes in two flavors: a page-count budget (NewBufferPool — every
// page counts as one slot regardless of size) or a byte budget
// (NewBufferPoolBytes — pages of different sizes share one memory budget,
// the mode the out-of-core datapath uses since compressed pages are smaller
// than dense ones).
type BufferPool struct {
	mu       sync.Mutex
	capacity int   // max resident pages (page-count mode; 0 in byte mode)
	byteCap  int64 // max resident bytes (byte mode; 0 in page-count mode)
	resBytes int64 // current resident bytes
	dir      string
	resident map[PageID]*page
	onDisk   map[PageID]int // page id -> length (floats)
	tick     uint64
	nextOwn  int
	stats    PoolStats

	// Failure-injection hooks for tests; called before disk I/O when non-nil.
	readHook  func(PageID) error
	writeHook func(PageID) error
}

type page struct {
	id       PageID
	data     []float64
	dirty    bool
	pinned   int
	lastUsed uint64
}

// NewBufferPool creates a pool holding at most capacity pages in memory,
// spilling to dir (created if needed).
func NewBufferPool(capacity int, dir string) (*BufferPool, error) {
	if capacity < 1 {
		return nil, fmt.Errorf("storage: buffer pool capacity %d < 1", capacity)
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("storage: buffer pool dir: %w", err)
	}
	return &BufferPool{
		capacity: capacity,
		dir:      dir,
		resident: make(map[PageID]*page),
		onDisk:   make(map[PageID]int),
	}, nil
}

// NewBufferPoolBytes creates a pool holding at most budget bytes of page data
// in memory, spilling to dir (created if needed). Pages of different sizes
// share the budget; a single page larger than the whole budget is still
// admitted (alone) so callers cannot deadlock on one oversized block.
func NewBufferPoolBytes(budget int64, dir string) (*BufferPool, error) {
	if budget < 8 {
		return nil, fmt.Errorf("storage: buffer pool byte budget %d < 8", budget)
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("storage: buffer pool dir: %w", err)
	}
	return &BufferPool{
		byteCap:  budget,
		dir:      dir,
		resident: make(map[PageID]*page),
		onDisk:   make(map[PageID]int),
	}, nil
}

// ParseByteSize parses a human-readable byte count for pool budgets: a
// non-negative integer with an optional case-insensitive B/KB/MB/GB suffix
// (powers of 1024). "64MB", "512kb", and "1048576" are all valid.
func ParseByteSize(s string) (int64, error) {
	t := strings.TrimSpace(strings.ToUpper(s))
	mult := int64(1)
	switch {
	case strings.HasSuffix(t, "GB"):
		mult, t = 1<<30, t[:len(t)-2]
	case strings.HasSuffix(t, "MB"):
		mult, t = 1<<20, t[:len(t)-2]
	case strings.HasSuffix(t, "KB"):
		mult, t = 1<<10, t[:len(t)-2]
	case strings.HasSuffix(t, "B"):
		t = t[:len(t)-1]
	}
	n, err := strconv.ParseInt(strings.TrimSpace(t), 10, 64)
	if err != nil || n < 0 {
		return 0, fmt.Errorf("storage: byte size %q: want a non-negative integer with optional B/KB/MB/GB suffix", s)
	}
	if mult > 1 && n > (1<<62)/mult {
		return 0, fmt.Errorf("storage: byte size %q overflows", s)
	}
	return n * mult, nil
}

// RegisterOwner allocates a fresh owner id for a paged object.
func (bp *BufferPool) RegisterOwner() int {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	bp.nextOwn++
	return bp.nextOwn
}

// Stats returns a snapshot of the pool counters.
func (bp *BufferPool) Stats() PoolStats {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	return bp.stats
}

// ResetStats zeroes the pool counters.
func (bp *BufferPool) ResetStats() {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	bp.stats = PoolStats{}
}

// SetFailureHooks installs failure-injection hooks for tests. A nil hook
// disables injection for that direction.
func (bp *BufferPool) SetFailureHooks(read, write func(PageID) error) {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	bp.readHook, bp.writeHook = read, write
}

// Pin fetches the page, loading from disk or allocating zeroed storage of
// size floats on first touch, pins it, and returns its data. A page's size is
// fixed at first touch: pinning an existing page with a different size is a
// caller bug and returns an error rather than silently handing back a slice
// of unexpected length. The caller must call Unpin (optionally marking dirty)
// when done.
func (bp *BufferPool) Pin(id PageID, size int) ([]float64, error) {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	bp.tick++
	if p, ok := bp.resident[id]; ok {
		if len(p.data) != size {
			return nil, fmt.Errorf("storage: Pin page %v: size %d floats, but resident page holds %d", id, size, len(p.data))
		}
		bp.stats.Hits++
		mBPHits.Inc()
		p.pinned++
		p.lastUsed = bp.tick
		return p.data, nil
	}
	if n, ok := bp.onDisk[id]; ok && n != size {
		return nil, fmt.Errorf("storage: Pin page %v: size %d floats, but page is on disk with %d", id, size, n)
	}
	bp.stats.Misses++
	mBPMisses.Inc()
	if err := bp.makeRoomLocked(size); err != nil {
		return nil, err
	}
	p := &page{id: id, lastUsed: bp.tick, pinned: 1}
	if n, ok := bp.onDisk[id]; ok {
		data, err := bp.loadLocked(id, n)
		if err != nil {
			return nil, err
		}
		p.data = data
		bp.stats.SpillReads++
		mBPSpillReads.Inc()
	} else {
		p.data = make([]float64, size)
	}
	bp.resident[id] = p
	bp.resBytes += 8 * int64(len(p.data))
	return p.data, nil
}

// Unpin releases a pinned page; dirty records that the caller mutated it.
func (bp *BufferPool) Unpin(id PageID, dirty bool) {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	p, ok := bp.resident[id]
	if !ok || p.pinned == 0 {
		panic(fmt.Sprintf("storage: Unpin of non-pinned page %v", id))
	}
	p.pinned--
	if dirty {
		p.dirty = true
	}
}

// FlushAll writes every dirty resident page to disk (pages stay resident).
func (bp *BufferPool) FlushAll() error {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	for _, p := range bp.resident {
		if p.dirty {
			if err := bp.storeLocked(p); err != nil {
				return err
			}
			p.dirty = false
		}
	}
	return nil
}

// DropOwner discards all pages (memory and disk) belonging to owner. Spill
// files that cannot be removed are still forgotten by the pool, but the
// failures are collected and returned so callers see leaked disk space.
func (bp *BufferPool) DropOwner(owner int) error {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	for id, p := range bp.resident {
		if id.Owner == owner {
			if p.pinned > 0 {
				return fmt.Errorf("storage: DropOwner %d: page %v still pinned", owner, id)
			}
			delete(bp.resident, id)
			bp.resBytes -= 8 * int64(len(p.data))
		}
	}
	var errs []error
	for id := range bp.onDisk {
		if id.Owner == owner {
			if err := os.Remove(bp.pagePath(id)); err != nil && !errors.Is(err, fs.ErrNotExist) {
				errs = append(errs, fmt.Errorf("storage: DropOwner %d: %w", owner, err))
			}
			delete(bp.onDisk, id)
		}
	}
	return errors.Join(errs...)
}

// ResidentPages returns the number of in-memory pages.
func (bp *BufferPool) ResidentPages() int {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	return len(bp.resident)
}

// ResidentBytes returns the bytes of page data currently held in memory.
func (bp *BufferPool) ResidentBytes() int64 {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	return bp.resBytes
}

// makeRoomLocked evicts LRU unpinned pages until a page of `need` floats fits
// under the pool's budget (one slot in page-count mode, 8*need bytes in byte
// mode). In byte mode a page larger than the whole budget is admitted once the
// pool is empty, per the NewBufferPoolBytes contract.
func (bp *BufferPool) makeRoomLocked(need int) error {
	full := func() bool {
		if bp.capacity > 0 {
			return len(bp.resident) >= bp.capacity
		}
		return len(bp.resident) > 0 && bp.resBytes+8*int64(need) > bp.byteCap
	}
	for full() {
		var victim *page
		for _, p := range bp.resident {
			if p.pinned > 0 {
				continue
			}
			if victim == nil || p.lastUsed < victim.lastUsed {
				victim = p
			}
		}
		if victim == nil {
			if bp.capacity > 0 {
				return fmt.Errorf("storage: buffer pool exhausted: all %d pages pinned", bp.capacity)
			}
			return fmt.Errorf("storage: buffer pool exhausted: all %d resident bytes pinned, need %d more", bp.resBytes, 8*int64(need))
		}
		if victim.dirty {
			if err := bp.storeLocked(victim); err != nil {
				return err
			}
		}
		delete(bp.resident, victim.id)
		bp.resBytes -= 8 * int64(len(victim.data))
		bp.stats.Evictions++
		mBPEvictions.Inc()
	}
	return nil
}

func (bp *BufferPool) pagePath(id PageID) string {
	return filepath.Join(bp.dir, fmt.Sprintf("p%d_%d.page", id.Owner, id.Index))
}

func (bp *BufferPool) storeLocked(p *page) error {
	if bp.writeHook != nil {
		if err := bp.writeHook(p.id); err != nil {
			return fmt.Errorf("storage: write page %v: %w", p.id, err)
		}
	}
	buf := make([]byte, 8*len(p.data))
	for i, v := range p.data {
		binary.LittleEndian.PutUint64(buf[i*8:], math.Float64bits(v))
	}
	if err := os.WriteFile(bp.pagePath(p.id), buf, 0o644); err != nil {
		return fmt.Errorf("storage: write page %v: %w", p.id, err)
	}
	bp.onDisk[p.id] = len(p.data)
	bp.stats.SpillWrites++
	mBPSpillWrites.Inc()
	return nil
}

func (bp *BufferPool) loadLocked(id PageID, n int) ([]float64, error) {
	if bp.readHook != nil {
		if err := bp.readHook(id); err != nil {
			return nil, fmt.Errorf("storage: read page %v: %w", id, err)
		}
	}
	buf, err := os.ReadFile(bp.pagePath(id))
	if err != nil {
		return nil, fmt.Errorf("storage: read page %v: %w", id, err)
	}
	if len(buf) != 8*n {
		return nil, fmt.Errorf("storage: page %v has %d bytes, want %d", id, len(buf), 8*n)
	}
	data := make([]float64, n)
	for i := range data {
		data[i] = math.Float64frombits(binary.LittleEndian.Uint64(buf[i*8:]))
	}
	return data, nil
}
