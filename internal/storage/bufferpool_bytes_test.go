package storage

import (
	"fmt"
	"math"
	"sync"
	"testing"
)

func TestBufferPoolBytesBudget(t *testing.T) {
	// Budget of 2 pages' worth: 2 * 4 floats * 8 bytes.
	bp, err := NewBufferPoolBytes(64, t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		id := PageID{1, i}
		data, err := bp.Pin(id, 4)
		if err != nil {
			t.Fatal(err)
		}
		data[0] = float64(i)
		bp.Unpin(id, true)
		if got := bp.ResidentBytes(); got > 64 {
			t.Fatalf("resident bytes %d exceed budget 64", got)
		}
	}
	st := bp.Stats()
	if st.Evictions == 0 || st.SpillWrites == 0 {
		t.Fatalf("expected byte-mode evictions and spills, got %+v", st)
	}
	// Evicted page reloads with content intact.
	data, err := bp.Pin(PageID{1, 0}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if data[0] != 0 {
		t.Fatalf("reloaded page content = %v, want 0", data[0])
	}
	bp.Unpin(PageID{1, 0}, false)
}

func TestBufferPoolBytesVariableSizes(t *testing.T) {
	// Mixed page sizes share one budget: a small and a large page together
	// exceed 80 bytes, so pinning the large one evicts the small one.
	bp, err := NewBufferPoolBytes(80, t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	small := PageID{1, 0}
	if _, err := bp.Pin(small, 2); err != nil { // 16 bytes
		t.Fatal(err)
	}
	bp.Unpin(small, true)
	large := PageID{1, 1}
	if _, err := bp.Pin(large, 9); err != nil { // 72 bytes
		t.Fatal(err)
	}
	bp.Unpin(large, false)
	if got := bp.ResidentBytes(); got != 72 {
		t.Fatalf("resident bytes = %d, want 72 (small page evicted)", got)
	}
	if bp.Stats().Evictions != 1 {
		t.Fatalf("evictions = %d, want 1", bp.Stats().Evictions)
	}
}

func TestBufferPoolBytesOversizedPage(t *testing.T) {
	// A single page larger than the whole budget is admitted once the pool is
	// empty, so one giant block cannot deadlock a caller.
	bp, err := NewBufferPoolBytes(16, t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := bp.Pin(PageID{1, 0}, 2); err != nil {
		t.Fatal(err)
	}
	bp.Unpin(PageID{1, 0}, true)
	if _, err := bp.Pin(PageID{1, 1}, 100); err != nil { // 800 bytes > 16
		t.Fatalf("oversized page rejected: %v", err)
	}
	bp.Unpin(PageID{1, 1}, false)
	if got := bp.ResidentBytes(); got != 800 {
		t.Fatalf("resident bytes = %d, want 800", got)
	}
}

func TestBufferPoolBytesExhaustion(t *testing.T) {
	bp, err := NewBufferPoolBytes(32, t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := bp.Pin(PageID{1, 0}, 4); err != nil {
		t.Fatal(err)
	}
	// First page still pinned; a second page over budget must error, not hang.
	if _, err := bp.Pin(PageID{1, 1}, 4); err == nil {
		t.Fatal("want exhaustion error when all resident bytes pinned")
	}
	bp.Unpin(PageID{1, 0}, false)
}

// TestBufferPoolConcurrentPins hammers a tiny pool from many goroutines so
// pins, evictions, spills, and reloads all interleave. Runs under -race via
// the race matrix; correctness check is that every page always reads back the
// value its writer stored.
func TestBufferPoolConcurrentPins(t *testing.T) {
	bp, err := NewBufferPoolBytes(4*8*8, t.TempDir()) // room for ~4 pages of 8 floats
	if err != nil {
		t.Fatal(err)
	}
	const (
		workers = 8
		pages   = 16
		rounds  = 60
		pageLen = 8
	)
	// Seed every page with a known value.
	for i := 0; i < pages; i++ {
		id := PageID{1, i}
		data, err := bp.Pin(id, pageLen)
		if err != nil {
			t.Fatal(err)
		}
		for j := range data {
			data[j] = float64(i*pageLen + j)
		}
		bp.Unpin(id, true)
	}
	var wg sync.WaitGroup
	errCh := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				i := (w*7 + r*3) % pages
				id := PageID{1, i}
				data, err := bp.Pin(id, pageLen)
				if err != nil {
					// Transient exhaustion under heavy pinning is allowed;
					// the pool must error rather than corrupt or deadlock.
					continue
				}
				for j := range data {
					if data[j] != float64(i*pageLen+j) {
						errCh <- fmt.Errorf("page %v float %d = %v, want %d", id, j, data[j], i*pageLen+j)
						bp.Unpin(id, false)
						return
					}
				}
				bp.Unpin(id, false)
			}
		}(w)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
	st := bp.Stats()
	if st.Evictions == 0 || st.SpillReads == 0 {
		t.Fatalf("concurrent run never exercised eviction/reload: %+v", st)
	}
	if got := bp.ResidentBytes(); got > 4*8*8 {
		t.Fatalf("resident bytes %d exceed budget after run", got)
	}
}

// TestSpilledPageBitIdentical verifies crash-safety of the spill format: a
// page holding every awkward float64 bit pattern (NaN payloads, ±0, ±Inf,
// denormals) must re-pin bit-for-bit identical after eviction to disk.
func TestSpilledPageBitIdentical(t *testing.T) {
	bp, err := NewBufferPoolBytes(16*8, t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	payload := []uint64{
		math.Float64bits(0),
		math.Float64bits(math.Copysign(0, -1)), // -0
		math.Float64bits(math.Inf(1)),
		math.Float64bits(math.Inf(-1)),
		math.Float64bits(math.NaN()),
		0x7ff8dead_beef0001, // NaN with payload
		0x7ff00000_00000001, // signaling NaN pattern
		0x00000000_00000001, // smallest denormal
		0x800fffff_ffffffff, // negative denormal
		math.Float64bits(math.MaxFloat64),
		math.Float64bits(math.SmallestNonzeroFloat64),
		math.Float64bits(1.0 / 3.0),
	}
	id := PageID{1, 0}
	data, err := bp.Pin(id, len(payload))
	if err != nil {
		t.Fatal(err)
	}
	for i, b := range payload {
		data[i] = math.Float64frombits(b)
	}
	bp.Unpin(id, true)
	// Force eviction by filling the pool with other pages.
	for i := 1; i <= 16; i++ {
		other := PageID{1, i}
		if _, err := bp.Pin(other, 8); err != nil {
			t.Fatal(err)
		}
		bp.Unpin(other, false)
	}
	if bp.Stats().Evictions == 0 {
		t.Fatal("payload page never evicted; test is vacuous")
	}
	back, err := bp.Pin(id, len(payload))
	if err != nil {
		t.Fatal(err)
	}
	defer bp.Unpin(id, false)
	if bp.Stats().SpillReads == 0 {
		t.Fatal("payload page not reloaded from disk; test is vacuous")
	}
	for i, want := range payload {
		if got := math.Float64bits(back[i]); got != want {
			t.Fatalf("float %d: bits %#016x after spill round-trip, want %#016x", i, got, want)
		}
	}
}

func TestParseByteSize(t *testing.T) {
	good := map[string]int64{
		"0":        0,
		"1048576":  1 << 20,
		"64MB":     64 << 20,
		"64mb":     64 << 20,
		" 512 KB ": 512 << 10,
		"2GB":      2 << 30,
		"123B":     123,
	}
	for in, want := range good {
		got, err := ParseByteSize(in)
		if err != nil {
			t.Fatalf("ParseByteSize(%q): %v", in, err)
		}
		if got != want {
			t.Fatalf("ParseByteSize(%q) = %d, want %d", in, got, want)
		}
	}
	for _, in := range []string{"", "MB", "-1", "-4MB", "1.5MB", "64XB", "9999999999GB"} {
		if got, err := ParseByteSize(in); err == nil {
			t.Fatalf("ParseByteSize(%q) = %d, want error", in, got)
		}
	}
}
