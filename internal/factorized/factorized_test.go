package factorized

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"dmml/internal/la"
	"dmml/internal/opt"
	"dmml/internal/workload"
)

func testStar(t *testing.T, seed int64, factRows int, dimRows []int) *Design {
	t.Helper()
	r := rand.New(rand.NewSource(seed))
	dimFeats := make([]int, len(dimRows))
	for k := range dimFeats {
		dimFeats[k] = 2 + k
	}
	s, err := workload.GenerateStar(r, workload.StarConfig{
		FactRows:  factRows,
		FactFeats: 3,
		DimRows:   dimRows,
		DimFeats:  dimFeats,
		Task:      workload.RegressionTask,
		DimSignal: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	d, err := NewDesign(s.FactX, s.FKs, s.DimX)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestNewDesignValidation(t *testing.T) {
	fact := la.NewDense(4, 2)
	dim := la.NewDense(3, 2)
	if _, err := NewDesign(nil, nil, nil); err == nil {
		t.Fatal("want nil fact error")
	}
	if _, err := NewDesign(fact, [][]int{{0, 1, 2, 0}}, nil); err == nil {
		t.Fatal("want fk/dim count mismatch error")
	}
	if _, err := NewDesign(fact, [][]int{{0, 1}}, []*la.Dense{dim}); err == nil {
		t.Fatal("want fk length error")
	}
	if _, err := NewDesign(fact, [][]int{{0, 1, 3, 0}}, []*la.Dense{dim}); err == nil {
		t.Fatal("want fk out-of-range error")
	}
	d, err := NewDesign(fact, [][]int{{0, 1, 2, 0}}, []*la.Dense{dim})
	if err != nil {
		t.Fatal(err)
	}
	if d.Rows() != 4 || d.Cols() != 4 || d.NumDims() != 1 {
		t.Fatalf("dims: rows=%d cols=%d k=%d", d.Rows(), d.Cols(), d.NumDims())
	}
}

func TestMatVecMatchesMaterialized(t *testing.T) {
	d := testStar(t, 90, 300, []int{30, 17})
	m := d.Materialize()
	r := rand.New(rand.NewSource(91))
	w := make([]float64, d.Cols())
	for j := range w {
		w[j] = r.NormFloat64()
	}
	got := d.MatVec(w)
	want := la.MatVec(m, w)
	for i := range got {
		if math.Abs(got[i]-want[i]) > 1e-10 {
			t.Fatalf("MatVec[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestVecMatMatchesMaterialized(t *testing.T) {
	d := testStar(t, 92, 250, []int{20})
	m := d.Materialize()
	r := rand.New(rand.NewSource(93))
	x := make([]float64, d.Rows())
	for i := range x {
		x[i] = r.NormFloat64()
	}
	got := d.VecMat(x)
	want := la.VecMat(x, m)
	for j := range got {
		if math.Abs(got[j]-want[j]) > 1e-9 {
			t.Fatalf("VecMat[%d] = %v, want %v", j, got[j], want[j])
		}
	}
}

func TestGramMatchesMaterialized(t *testing.T) {
	// Multiple dimensions exercise the cross-dimension co-occurrence path.
	d := testStar(t, 94, 220, []int{15, 9, 6})
	got := d.Gram()
	want := la.Gram(d.Materialize())
	if !got.Equal(want, 1e-8) {
		t.Fatal("factorized Gram != materialized Gram")
	}
}

func TestNormalEquationsSolveMatches(t *testing.T) {
	d := testStar(t, 95, 500, []int{40, 11})
	r := rand.New(rand.NewSource(96))
	y := make([]float64, d.Rows())
	for i := range y {
		y[i] = r.NormFloat64()
	}
	// Factorized: (XᵀX + λI) w = Xᵀy.
	g := d.Gram()
	for j := 0; j < d.Cols(); j++ {
		g.Set(j, j, g.At(j, j)+0.1)
	}
	wFact, err := la.SolveSPD(g, d.XtY(y))
	if err != nil {
		t.Fatal(err)
	}
	// Materialized path.
	m := d.Materialize()
	gm := la.Gram(m)
	for j := 0; j < d.Cols(); j++ {
		gm.Set(j, j, gm.At(j, j)+0.1)
	}
	wMat, err := la.SolveSPD(gm, la.XtY(m, y))
	if err != nil {
		t.Fatal(err)
	}
	for j := range wFact {
		if math.Abs(wFact[j]-wMat[j]) > 1e-8 {
			t.Fatalf("w[%d]: factorized %v vs materialized %v", j, wFact[j], wMat[j])
		}
	}
}

// The Design satisfies opt.BulkData, so batch GD over the factorized join
// must produce the same trajectory as GD over the materialized matrix.
func TestGradientDescentOverJoin(t *testing.T) {
	d := testStar(t, 97, 400, []int{25})
	r := rand.New(rand.NewSource(98))
	y := make([]float64, d.Rows())
	for i := range y {
		if r.Float64() < 0.5 {
			y[i] = 1
		} else {
			y[i] = -1
		}
	}
	cfg := opt.GDConfig{Step: 0.1, MaxIter: 30, Backtracking: true}
	factRes, err := opt.GradientDescent(d, y, opt.Logistic{}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	matRes, err := opt.GradientDescent(opt.DenseData{M: d.Materialize()}, y, opt.Logistic{}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for j := range factRes.W {
		if math.Abs(factRes.W[j]-matRes.W[j]) > 1e-8 {
			t.Fatalf("GD weight %d differs: %v vs %v", j, factRes.W[j], matRes.W[j])
		}
	}
}

func TestFlopsModel(t *testing.T) {
	// High tuple ratio: factorized must predict a win.
	d := testStar(t, 99, 10000, []int{100})
	if sp := d.Speedup(); sp <= 1 {
		t.Fatalf("speedup = %v, want > 1 at tuple ratio 100", sp)
	}
	// Tuple ratio < 1 (dim bigger than fact): factorized should not win much.
	d2 := testStar(t, 100, 50, []int{200})
	if sp := d2.Speedup(); sp > 1.6 {
		t.Fatalf("speedup = %v, want ≈ ≤ 1 at tuple ratio 0.25", sp)
	}
}

// Property: on random small stars, MatVec/VecMat/Gram all agree with the
// materialized equivalents.
func TestFactorizedEquivalenceProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		nDims := 1 + r.Intn(3)
		dimRows := make([]int, nDims)
		dimFeats := make([]int, nDims)
		for k := range dimRows {
			dimRows[k] = 2 + r.Intn(10)
			dimFeats[k] = 1 + r.Intn(3)
		}
		s, err := workload.GenerateStar(r, workload.StarConfig{
			FactRows:  10 + r.Intn(60),
			FactFeats: 1 + r.Intn(4),
			DimRows:   dimRows,
			DimFeats:  dimFeats,
			Task:      workload.RegressionTask,
			DimSignal: 1,
		})
		if err != nil {
			return false
		}
		d, err := NewDesign(s.FactX, s.FKs, s.DimX)
		if err != nil {
			return false
		}
		m := d.Materialize()
		w := make([]float64, d.Cols())
		for j := range w {
			w[j] = r.NormFloat64()
		}
		mv, wantMv := d.MatVec(w), la.MatVec(m, w)
		for i := range mv {
			if math.Abs(mv[i]-wantMv[i]) > 1e-8 {
				return false
			}
		}
		x := make([]float64, d.Rows())
		for i := range x {
			x[i] = r.NormFloat64()
		}
		vm, wantVm := d.VecMat(x), la.VecMat(x, m)
		for j := range vm {
			if math.Abs(vm[j]-wantVm[j]) > 1e-8 {
				return false
			}
		}
		return d.Gram().Equal(la.Gram(m), 1e-7)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
