package factorized_test

import (
	"fmt"
	"log"

	"dmml/internal/factorized"
	"dmml/internal/la"
)

// A two-row dimension table joined into a four-row fact table: the
// factorized design computes X·w without ever building the joined matrix.
func ExampleNewDesign() {
	fact, err := la.FromRows([][]float64{{1}, {2}, {3}, {4}})
	if err != nil {
		log.Fatal(err)
	}
	dim, err := la.FromRows([][]float64{{10, 0}, {0, 10}})
	if err != nil {
		log.Fatal(err)
	}
	fks := [][]int{{0, 1, 0, 1}} // fact rows 0,2 join dim row 0; rows 1,3 join dim row 1
	design, err := factorized.NewDesign(fact, fks, []*la.Dense{dim})
	if err != nil {
		log.Fatal(err)
	}
	// Joined schema is [fact | dim]: width 3.
	w := []float64{1, 0.1, 0.2}
	fmt.Println(design.MatVec(w))
	// Output:
	// [2 4 4 6]
}
