package factorized

import "math"

// Cost model. Flop counts alone undersell the join-pushdown trade-off: the
// per-edge gather/group passes touch their target tables by foreign key, and
// a random access into a table that spills the working cache costs several
// multiply-adds' worth of stalled cycles. Every randomly indexed element is
// therefore charged gatherNear or gatherFar flop-equivalents depending on
// whether its target table fits gatherCacheBytes — the correction that keeps
// the planner from preferring factorization on wide fact tables whose
// group-sums move d_S-wide rows through memory.
const (
	gatherNear       = 2.0 // target table cache-resident: ~one fused multiply-add
	gatherFar        = 8.0 // target table spills: charge the likely miss
	gatherCacheBytes = 1 << 20
)

// gatherCost returns the flop-equivalent charge per randomly indexed element
// of a table of the given byte size.
func gatherCost(tableBytes float64) float64 {
	if tableBytes <= gatherCacheBytes {
		return gatherNear
	}
	return gatherFar
}

// flopsPair models one MatVec+VecMat pair (computed once at construction):
// 4·rows·cols per relation (2 flops per cell per direction) plus the
// gather-and-scatter pass over each edge at parent granularity.
func (t *JoinTree) flopsPair() float64 {
	f := 0.0
	for i := range t.nodes {
		nd := &t.nodes[i]
		f += 4 * float64(nd.rows) * float64(nd.cols)
		if i != 0 {
			pr := float64(t.nodes[nd.parent].rows)
			f += 2 * pr * gatherCost(8*float64(nd.rows))
		}
	}
	return f
}

// FlopsPerMatVec estimates the cost of one factorized X·w + xᵀ·X pair, the
// quantity the cost-based planner compares against the materialized
// estimate. Gather/group passes are charged per element actually touched
// (with the cache correction above), not a flat 2·n.
func (t *JoinTree) FlopsPerMatVec() float64 { return t.flopsFact }

// FlopsPerMatVecMaterialized estimates the same pair over the joined matrix.
func (t *JoinTree) FlopsPerMatVecMaterialized() float64 { return t.flopsMat }

// Speedup is the predicted factorized-vs-materialized per-iteration ratio
// (>1 means pushing down wins).
func (t *JoinTree) Speedup() float64 { return t.flopsMat / t.flopsFact }

// FlopsPerGram estimates the factorized XᵀX: the count pushes, one weighted
// syrk per relation, and per featured pair whatever strategy the kernel
// actually picked (count pass or edge-wise push) — so the model tracks the
// execution, including the n·d_S-sized group-sums the old flat 2·n estimate
// ignored.
func (t *JoinTree) FlopsPerGram() float64 {
	f := 0.0
	for _, v := range t.order[1:] {
		nd := &t.nodes[v]
		f += float64(t.nodes[nd.parent].rows) * gatherCost(8*float64(nd.rows))
	}
	for i := range t.nodes {
		nd := &t.nodes[i]
		f += float64(nd.rows) * float64(nd.cols) * float64(nd.cols)
	}
	for i := range t.cross {
		f += t.crossFlops(&t.cross[i])
	}
	return f
}

// crossFlops models one cross block under its planned strategy.
func (t *JoinTree) crossFlops(p *crossPlan) float64 {
	switch p.kind {
	case crossCount:
		ra := float64(t.nodes[p.lca].rows)
		nu, nv := t.nodes[p.u].rows, t.nodes[p.v].rows
		keyWork := float64(len(p.pathU)+len(p.pathV)) * ra
		pairs := math.Min(ra, float64(nu)*float64(nv))
		return keyWork + ra*gatherCost(8*float64(nu)*float64(nv)) +
			2*pairs*float64(t.nodes[p.u].cols)*float64(t.nodes[p.v].cols)
	default:
		du := float64(t.nodes[p.src].cols)
		f := float64(len(p.pathU)) * float64(t.nodes[p.lca].rows)
		prev := p.lca
		for _, c := range p.pathV {
			f += float64(t.nodes[prev].rows) * du * gatherCost(8*float64(t.nodes[c].rows)*du)
			prev = c
		}
		return f + 2*float64(t.nodes[prev].rows)*du*float64(t.nodes[prev].cols)
	}
}

// FlopsPerGramMaterialized estimates XᵀX over the joined matrix (syrk).
func (t *JoinTree) FlopsPerGramMaterialized() float64 {
	return float64(t.nodes[0].rows) * float64(t.total) * float64(t.total)
}

// ResidentBytes is the footprint of the normalized representation: every
// relation's feature block plus the fk columns.
func (t *JoinTree) ResidentBytes() int64 {
	var b int64
	for i := range t.nodes {
		nd := &t.nodes[i]
		b += int64(8 * nd.rows * nd.cols)
		b += int64(8 * len(nd.fk))
	}
	return b
}
