package factorized

import (
	"math/rand"
	"testing"

	"dmml/internal/la"
)

// FuzzFactorizedGram drives random acyclic join trees (random depth and
// branching, key-only relations, single-row relations) through every
// pushdown kernel and cross-checks against the materialized join. The seed
// deterministically fixes the schema, the data, and the probe vectors.
func FuzzFactorizedGram(f *testing.F) {
	f.Add(int64(1))
	f.Add(int64(42))
	f.Add(int64(-7))
	f.Add(int64(1 << 40))

	f.Fuzz(func(t *testing.T, seed int64) {
		r := rand.New(rand.NewSource(seed))
		s, err := randSnowflake(r)
		if err != nil {
			t.Skip() // config rejected (e.g. every relation featureless)
		}
		tr, err := joinTreeFromSnowflake(s)
		if err != nil {
			t.Fatalf("seed %d: generated schema rejected: %v", seed, err)
		}
		m := s.Materialize()
		if got := tr.Materialize(); !got.Equal(m, 1e-12) {
			t.Fatalf("seed %d: Materialize mismatch", seed)
		}
		w := randVec(r, tr.Cols())
		if d := maxAbsDiff(tr.MatVec(w), la.MatVec(m, w)); d > 1e-8 {
			t.Fatalf("seed %d: MatVec diff %g", seed, d)
		}
		x := randVec(r, tr.Rows())
		if d := maxAbsDiff(tr.VecMat(x), la.VecMat(x, m)); d > 1e-8 {
			t.Fatalf("seed %d: VecMat diff %g", seed, d)
		}
		if d := maxAbsDiff(tr.XtY(x), la.XtY(m, x)); d > 1e-8 {
			t.Fatalf("seed %d: XtY diff %g", seed, d)
		}
		if !tr.Gram().Equal(la.Gram(m), 1e-7) {
			t.Fatalf("seed %d: Gram mismatch", seed)
		}
	})
}
