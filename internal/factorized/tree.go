package factorized

import (
	"fmt"
	"sync"

	"dmml/internal/la"
)

// Node is one relation in a join tree. X may be nil for a key-only relation
// (a pure link table with no features); Rows must then be positive. When X is
// non-nil, Rows is optional and must match X.Rows() if set.
type Node struct {
	X    *la.Dense
	Rows int
}

// Edge is a PK–FK link: FK has one entry per row of the parent relation,
// each indexing a row of the child relation. The joined view of a parent row
// r includes the child row FK[r] (and, transitively, that row's own
// children), so facts join dimensions through any number of intermediate
// levels.
type Edge struct {
	Parent, Child int
	FK            []int
}

// treeNode is the internal per-relation state.
type treeNode struct {
	x        *la.Dense
	rows     int
	cols     int
	offset   int   // column offset of this relation's block in the joined view
	parent   int   // -1 for the root
	fk       []int // edge from parent to this node; len = parent rows
	children []int
	depth    int
}

// crossKind selects the Gram cross-block strategy for one node pair.
type crossKind uint8

const (
	// crossAncestor: one node of the pair is an ancestor of the other; its
	// cnt-weighted feature rows are pushed down the path edge by edge.
	crossAncestor crossKind = iota
	// crossCount: siblings under an LCA with a small key space; pair
	// co-occurrence counts are accumulated in a dense nu×nv scratch array
	// (the counting-pass successor of the old map[int64]float64).
	crossCount
	// crossPush: siblings whose key space is too large to count densely;
	// the shallower-indexed node's features are gathered at LCA granularity
	// (fused into the first hop) and pushed down the other side.
	crossPush
)

// crossPlan precomputes, per unordered node pair with features, how GramInto
// builds the off-diagonal block — so the hot path does no tree walking and no
// allocation.
type crossPlan struct {
	u, v  int // node ids, u < v; block written at (offset[u], offset[v])
	kind  crossKind
	lca   int
	src   int   // the node whose features ride the push (ancestor or u)
	pathU []int // lca→u, exclusive of lca (key-composition side; crossCount/crossPush)
	pathV []int // lca→v (push side), exclusive of lca; crossAncestor/crossPush/crossCount
	// maxPathRows sizes the push ping-pong buffers: the largest row count
	// among pathV's relations.
	maxPathRows int
}

// JoinTree is a normalized design matrix over an acyclic (snowflake) schema:
// a root fact relation joined to feature relations through PK–FK edges. The
// logical materialized matrix is, per fact row, the concatenation of every
// relation's feature block in node order; the kernels compute X·w, xᵀX and
// XᵀX against that logical matrix by pushing partial aggregates through the
// tree, so per-iteration cost scales with base-table sizes rather than the
// join size.
type JoinTree struct {
	nodes []treeNode
	order []int // topological: parents before children, order[0] == 0
	total int   // joined feature width
	cross []crossPlan

	// accMu guards accFree, a freelist of per-node slice tables reused
	// across kernel calls so the steady state allocates nothing. (sync.Pool
	// would box the slice header on every Put.)
	accMu   sync.Mutex
	accFree [][][]float64

	flopsFact float64 // cached FlopsPerMatVec
	flopsMat  float64 // cached FlopsPerMatVecMaterialized
}

// NewJoinTree validates and assembles a join tree. nodes[0] is the root
// (fact) relation; every other node must be reachable from it through
// exactly one parent edge, which makes the join acyclic by construction.
func NewJoinTree(nodes []Node, edges []Edge) (*JoinTree, error) {
	if len(nodes) == 0 {
		return nil, fmt.Errorf("factorized: join tree needs at least a root relation")
	}
	t := &JoinTree{nodes: make([]treeNode, len(nodes))}
	for i, nd := range nodes {
		rows := nd.Rows
		cols := 0
		if nd.X != nil {
			r, c := nd.X.Dims()
			if rows != 0 && rows != r {
				return nil, fmt.Errorf("factorized: node %d declares %d rows but its matrix has %d", i, rows, r)
			}
			rows, cols = r, c
		}
		if rows <= 0 {
			return nil, fmt.Errorf("factorized: node %d needs positive rows (key-only relations must set Rows)", i)
		}
		t.nodes[i] = treeNode{x: nd.X, rows: rows, cols: cols, parent: -1}
	}
	for _, e := range edges {
		if e.Parent < 0 || e.Parent >= len(nodes) || e.Child < 0 || e.Child >= len(nodes) {
			return nil, fmt.Errorf("factorized: edge %d→%d references a missing node", e.Parent, e.Child)
		}
		if e.Child == 0 {
			return nil, fmt.Errorf("factorized: node 0 is the root and cannot be an edge child")
		}
		if e.Child == e.Parent {
			return nil, fmt.Errorf("factorized: self edge on node %d", e.Child)
		}
		c := &t.nodes[e.Child]
		if c.parent != -1 {
			return nil, fmt.Errorf("factorized: node %d has two parent edges", e.Child)
		}
		p := &t.nodes[e.Parent]
		if len(e.FK) != p.rows {
			return nil, fmt.Errorf("factorized: edge %d→%d fk has %d entries for %d parent rows", e.Parent, e.Child, len(e.FK), p.rows)
		}
		for i, r := range e.FK {
			if r < 0 || r >= c.rows {
				return nil, fmt.Errorf("factorized: edge %d→%d fk row %d references child row %d (relation has %d)", e.Parent, e.Child, i, r, c.rows)
			}
		}
		c.parent = e.Parent
		c.fk = e.FK
		p.children = append(p.children, e.Child)
	}

	// BFS from the root: assigns depth, builds the topological order, and —
	// because every non-root node has exactly one parent edge — proves the
	// edge set is a connected, acyclic tree.
	t.order = append(t.order, 0)
	for at := 0; at < len(t.order); at++ {
		v := t.order[at]
		for _, c := range t.nodes[v].children {
			t.nodes[c].depth = t.nodes[v].depth + 1
			t.order = append(t.order, c)
		}
	}
	if len(t.order) != len(t.nodes) {
		return nil, fmt.Errorf("factorized: %d of %d relations are not reachable from the root", len(t.nodes)-len(t.order), len(t.nodes))
	}

	// Column offsets in node-index order, so [node0 | node1 | …] matches the
	// star Design's historical layout.
	for i := range t.nodes {
		t.nodes[i].offset = t.total
		t.total += t.nodes[i].cols
	}
	if t.total == 0 {
		return nil, fmt.Errorf("factorized: join tree has no feature columns")
	}

	t.planCross()
	t.flopsFact = t.flopsPair()
	t.flopsMat = 4 * float64(t.nodes[0].rows) * float64(t.total)
	return t, nil
}

// lca returns the lowest common ancestor of u and v.
func (t *JoinTree) lca(u, v int) int {
	for t.nodes[u].depth > t.nodes[v].depth {
		u = t.nodes[u].parent
	}
	for t.nodes[v].depth > t.nodes[u].depth {
		v = t.nodes[v].parent
	}
	for u != v {
		u, v = t.nodes[u].parent, t.nodes[v].parent
	}
	return u
}

// pathDown returns the nodes from a (exclusive) down to v (inclusive); a
// must be an ancestor of v.
func (t *JoinTree) pathDown(a, v int) []int {
	var rev []int
	for at := v; at != a; at = t.nodes[at].parent {
		rev = append(rev, at)
	}
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	return rev
}

// crossCountMaxKeys caps the dense pair-count array (in float64 cells) used
// by the counting-pass cross blocks.
const crossCountMaxKeys = 1 << 22

// planCross enumerates every featured node pair and fixes the Gram
// cross-block strategy for each.
func (t *JoinTree) planCross() {
	for u := 0; u < len(t.nodes); u++ {
		if t.nodes[u].cols == 0 {
			continue
		}
		for v := u + 1; v < len(t.nodes); v++ {
			if t.nodes[v].cols == 0 {
				continue
			}
			a := t.lca(u, v)
			p := crossPlan{u: u, v: v, lca: a}
			switch {
			case a == u || a == v:
				deep := u + v - a
				p.kind = crossAncestor
				p.src = a
				p.pathV = t.pathDown(a, deep)
			default:
				p.src = u
				p.pathU = t.pathDown(a, u)
				p.pathV = t.pathDown(a, v)
				keys := t.nodes[u].rows * t.nodes[v].rows
				if keys <= t.nodes[a].rows && keys <= crossCountMaxKeys {
					p.kind = crossCount
				} else {
					p.kind = crossPush
				}
			}
			for _, c := range p.pathV {
				if t.nodes[c].rows > p.maxPathRows {
					p.maxPathRows = t.nodes[c].rows
				}
			}
			t.cross = append(t.cross, p)
		}
	}
}

// Rows implements opt.BulkData: the number of joined (root) rows.
func (t *JoinTree) Rows() int { return t.nodes[0].rows }

// Cols implements opt.BulkData: the width of the joined feature vector.
func (t *JoinTree) Cols() int { return t.total }

// NumNodes returns the number of relations in the tree.
func (t *JoinTree) NumNodes() int { return len(t.nodes) }

// Offset returns the column offset of node v's feature block in the joined
// view.
func (t *JoinTree) Offset(v int) int { return t.nodes[v].offset }

// getAccs borrows a len(nodes) slice table (all entries nil) from the
// per-tree freelist.
func (t *JoinTree) getAccs() [][]float64 {
	t.accMu.Lock()
	if k := len(t.accFree); k > 0 {
		a := t.accFree[k-1]
		t.accFree[k-1] = nil
		t.accFree = t.accFree[:k-1]
		t.accMu.Unlock()
		return a
	}
	t.accMu.Unlock()
	return make([][]float64, len(t.nodes))
}

// putAccs returns a slice table to the freelist, dropping buffer references.
func (t *JoinTree) putAccs(a [][]float64) {
	for i := range a {
		a[i] = nil
	}
	t.accMu.Lock()
	if len(t.accFree) < 4 {
		t.accFree = append(t.accFree, a)
	}
	t.accMu.Unlock()
}

// Materialize produces the joined dense design matrix (the baseline the
// pushdown kernels are tested against).
func (t *JoinTree) Materialize() *la.Dense {
	out := la.NewDense(t.nodes[0].rows, t.total)
	key := make([]int, len(t.nodes))
	for i := 0; i < t.nodes[0].rows; i++ {
		key[0] = i
		row := out.RowView(i)
		for _, v := range t.order {
			nd := &t.nodes[v]
			if v != 0 {
				key[v] = nd.fk[key[nd.parent]]
			}
			if nd.cols > 0 {
				copy(row[nd.offset:nd.offset+nd.cols], nd.x.RowView(key[v]))
			}
		}
	}
	return out
}
