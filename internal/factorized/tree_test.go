package factorized

import (
	"math"
	"math/rand"
	"runtime"
	"testing"
	"testing/quick"

	"dmml/internal/la"
	"dmml/internal/opt"
	"dmml/internal/workload"
)

// The join tree is the zero-alloc bulk source the optimizer trains over.
var (
	_ opt.BulkDataInto = (*JoinTree)(nil)
	_ opt.BulkDataInto = (*Design)(nil)
)

// treeFromSnowflake converts a generated workload schema into engine form.
func treeFromSnowflake(t *testing.T, s *workload.Snowflake) *JoinTree {
	t.Helper()
	tr, err := joinTreeFromSnowflake(s)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func joinTreeFromSnowflake(s *workload.Snowflake) (*JoinTree, error) {
	nodes := make([]Node, len(s.X))
	var edges []Edge
	for v := range s.X {
		nodes[v] = Node{X: s.X[v], Rows: s.Rows[v]}
		if v > 0 {
			edges = append(edges, Edge{Parent: s.Parents[v], Child: v, FK: s.FKs[v]})
		}
	}
	return NewJoinTree(nodes, edges)
}

// testSnowflake is the canonical 3-level shape: two branches off the fact
// table, each with a second-level relation, plus a key-only link relation in
// one branch — fact→{customer→region, order(keys only)→product→category}.
func testSnowflake(t *testing.T, seed int64, factRows int) *workload.Snowflake {
	t.Helper()
	r := rand.New(rand.NewSource(seed))
	s, err := workload.GenerateSnowflake(r, workload.SnowflakeConfig{
		FactRows:  factRows,
		FactFeats: 3,
		Nodes: []workload.SnowNode{
			{Rows: 40, Feats: 4, Parent: -1}, // customer
			{Rows: 7, Feats: 3, Parent: 0},   // region ← customer
			{Rows: 25, Feats: 0, Parent: -1}, // order (key-only link)
			{Rows: 12, Feats: 2, Parent: 2},  // product ← order
			{Rows: 5, Feats: 3, Parent: 3},   // category ← product
		},
		Task:   workload.RegressionTask,
		Signal: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func randVec(r *rand.Rand, n int) []float64 {
	v := make([]float64, n)
	for i := range v {
		v[i] = r.NormFloat64()
	}
	return v
}

func maxAbsDiff(a, b []float64) float64 {
	m := 0.0
	for i := range a {
		if d := math.Abs(a[i] - b[i]); d > m {
			m = d
		}
	}
	return m
}

func TestNewJoinTreeValidation(t *testing.T) {
	x4 := la.NewDense(4, 2)
	x3 := la.NewDense(3, 2)
	cases := []struct {
		name  string
		nodes []Node
		edges []Edge
	}{
		{"no nodes", nil, nil},
		{"key-only without rows", []Node{{}}, nil},
		{"rows mismatch", []Node{{X: x4, Rows: 5}}, nil},
		{"edge to missing node", []Node{{X: x4}}, []Edge{{Parent: 0, Child: 1, FK: []int{0, 0, 0, 0}}}},
		{"root as child", []Node{{X: x4}, {X: x3}}, []Edge{{Parent: 1, Child: 0, FK: []int{0, 0, 0}}}},
		{"self edge", []Node{{X: x4}, {X: x3}}, []Edge{{Parent: 1, Child: 1, FK: []int{0, 0, 0}}}},
		{"two parents", []Node{{X: x4}, {X: x3}},
			[]Edge{{Parent: 0, Child: 1, FK: []int{0, 0, 0, 0}}, {Parent: 0, Child: 1, FK: []int{1, 1, 1, 1}}}},
		{"fk length", []Node{{X: x4}, {X: x3}}, []Edge{{Parent: 0, Child: 1, FK: []int{0, 0}}}},
		{"fk out of range", []Node{{X: x4}, {X: x3}}, []Edge{{Parent: 0, Child: 1, FK: []int{0, 1, 3, 0}}}},
		{"unreachable node", []Node{{X: x4}, {X: x3}}, nil},
		{"no feature columns", []Node{{Rows: 4}, {Rows: 3}}, []Edge{{Parent: 0, Child: 1, FK: []int{0, 0, 0, 0}}}},
	}
	for _, tc := range cases {
		if _, err := NewJoinTree(tc.nodes, tc.edges); err == nil {
			t.Errorf("%s: want error", tc.name)
		}
	}

	tr, err := NewJoinTree(
		[]Node{{X: x4}, {X: x3}},
		[]Edge{{Parent: 0, Child: 1, FK: []int{0, 1, 2, 0}}})
	if err != nil {
		t.Fatal(err)
	}
	if tr.Rows() != 4 || tr.Cols() != 4 || tr.NumNodes() != 2 || tr.Offset(1) != 2 {
		t.Fatalf("rows=%d cols=%d nodes=%d off1=%d", tr.Rows(), tr.Cols(), tr.NumNodes(), tr.Offset(1))
	}
}

// All four pushdown kernels must agree with the materialized join on a
// three-level snowflake with a key-only link relation.
func TestJoinTreeMatchesMaterializedSnowflake(t *testing.T) {
	s := testSnowflake(t, 200, 300)
	tr := treeFromSnowflake(t, s)
	m := s.Materialize()
	if got := tr.Materialize(); !got.Equal(m, 1e-12) {
		t.Fatal("JoinTree.Materialize != workload materialization")
	}
	r := rand.New(rand.NewSource(201))
	w := randVec(r, tr.Cols())
	if d := maxAbsDiff(tr.MatVec(w), la.MatVec(m, w)); d > 1e-9 {
		t.Fatalf("MatVec max diff %g", d)
	}
	x := randVec(r, tr.Rows())
	if d := maxAbsDiff(tr.VecMat(x), la.VecMat(x, m)); d > 1e-9 {
		t.Fatalf("VecMat max diff %g", d)
	}
	if d := maxAbsDiff(tr.XtY(x), la.XtY(m, x)); d > 1e-9 {
		t.Fatalf("XtY max diff %g", d)
	}
	if !tr.Gram().Equal(la.Gram(m), 1e-7) {
		t.Fatal("factorized Gram != materialized Gram")
	}
}

// Siblings under a non-root LCA exercise both cross-block strategies: the
// narrow pair count-passes, the wide pair pushes.
func TestJoinTreeSiblingLCA(t *testing.T) {
	r := rand.New(rand.NewSource(210))
	s, err := workload.GenerateSnowflake(r, workload.SnowflakeConfig{
		FactRows:  250,
		FactFeats: 2,
		Nodes: []workload.SnowNode{
			{Rows: 30, Feats: 0, Parent: -1}, // mid link relation
			{Rows: 6, Feats: 2, Parent: 0},   // sibling u under mid
			{Rows: 5, Feats: 3, Parent: 0},   // sibling v under mid (6·5 ≤ 30: count path)
			{Rows: 40, Feats: 2, Parent: 0},  // wide sibling (40·6 > 30: push path)
		},
		Task:   workload.RegressionTask,
		Signal: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	tr := treeFromSnowflake(t, s)
	kinds := map[crossKind]int{}
	for _, p := range tr.cross {
		kinds[p.kind]++
	}
	if kinds[crossCount] == 0 || kinds[crossPush] == 0 || kinds[crossAncestor] == 0 {
		t.Fatalf("want all three cross strategies exercised, got %v", kinds)
	}
	if !tr.Gram().Equal(la.Gram(s.Materialize()), 1e-8) {
		t.Fatal("sibling-LCA Gram != materialized Gram")
	}
}

// Permuting the dimension order of a star permutes the Gram blocks
// consistently: Gram(perm)[pi,pj] must equal Gram(orig)[i,j] under the
// induced column permutation, and MatVec must agree under permuted weights.
func TestJoinsOrderingInvariance(t *testing.T) {
	r := rand.New(rand.NewSource(220))
	s, err := workload.GenerateStar(r, workload.StarConfig{
		FactRows: 120, FactFeats: 2,
		DimRows: []int{10, 7, 13}, DimFeats: []int{3, 2, 4},
		Task: workload.RegressionTask, DimSignal: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	d1, err := NewDesign(s.FactX, s.FKs, s.DimX)
	if err != nil {
		t.Fatal(err)
	}
	perm := []int{2, 0, 1} // dimension k of d2 is dimension perm[k] of d1
	fks2 := make([][]int, len(perm))
	dims2 := make([]*la.Dense, len(perm))
	for k, p := range perm {
		fks2[k] = s.FKs[p]
		dims2[k] = s.DimX[p]
	}
	d2, err := NewDesign(s.FactX, fks2, dims2)
	if err != nil {
		t.Fatal(err)
	}
	// colMap[j2] = j1: column j2 of d2 is column colMap[j2] of d1.
	colMap := make([]int, d2.Cols())
	for j := 0; j < s.Config.FactFeats; j++ {
		colMap[j] = j
	}
	at := s.Config.FactFeats
	for k, p := range perm {
		off1 := d1.Offset(p + 1)
		for j := 0; j < dims2[k].Cols(); j++ {
			colMap[at] = off1 + j
			at++
		}
	}
	g1, g2 := d1.Gram(), d2.Gram()
	for i2 := 0; i2 < d2.Cols(); i2++ {
		for j2 := 0; j2 < d2.Cols(); j2++ {
			if math.Abs(g2.At(i2, j2)-g1.At(colMap[i2], colMap[j2])) > 1e-9 {
				t.Fatalf("Gram[%d,%d] not permutation-consistent", i2, j2)
			}
		}
	}
	w1 := randVec(rand.New(rand.NewSource(221)), d1.Cols())
	w2 := make([]float64, d2.Cols())
	for j2, j1 := range colMap {
		w2[j2] = w1[j1]
	}
	if d := maxAbsDiff(d1.MatVec(w1), d2.MatVec(w2)); d > 1e-10 {
		t.Fatalf("MatVec not ordering-invariant, max diff %g", d)
	}
}

// Degenerate trees: a featureless (empty) dimension contributes nothing, and
// an fk pointing every fact row at one dimension row still matches the
// materialized join.
func TestJoinTreeDegenerate(t *testing.T) {
	fact := la.NewDense(6, 2)
	dim := la.NewDense(4, 3)
	r := rand.New(rand.NewSource(230))
	for _, m := range []*la.Dense{fact, dim} {
		for i := 0; i < m.Rows(); i++ {
			row := m.RowView(i)
			for j := range row {
				row[j] = r.NormFloat64()
			}
		}
	}
	constFK := []int{2, 2, 2, 2, 2, 2} // every fact row joins dim row 2
	tr, err := NewJoinTree(
		[]Node{{X: fact}, {X: dim}, {Rows: 9}},
		[]Edge{
			{Parent: 0, Child: 1, FK: constFK},
			{Parent: 0, Child: 2, FK: []int{0, 8, 0, 8, 0, 8}},
		})
	if err != nil {
		t.Fatal(err)
	}
	if tr.Cols() != 5 {
		t.Fatalf("key-only relation changed width: %d", tr.Cols())
	}
	m := tr.Materialize()
	w := randVec(r, 5)
	if d := maxAbsDiff(tr.MatVec(w), la.MatVec(m, w)); d > 1e-10 {
		t.Fatalf("degenerate MatVec diff %g", d)
	}
	x := randVec(r, 6)
	if d := maxAbsDiff(tr.VecMat(x), la.VecMat(x, m)); d > 1e-10 {
		t.Fatalf("degenerate VecMat diff %g", d)
	}
	if !tr.Gram().Equal(la.Gram(m), 1e-9) {
		t.Fatal("degenerate Gram != materialized")
	}
}

// The steady-state kernels must not allocate: MatVecInto/VecMatInto (the GD
// step) and GramInto (the direct solver) all run on pooled scratch.
func TestJoinTreeZeroAllocSteadyState(t *testing.T) {
	old := runtime.GOMAXPROCS(1)
	defer runtime.GOMAXPROCS(old)
	s := testSnowflake(t, 240, 500)
	tr := treeFromSnowflake(t, s)
	r := rand.New(rand.NewSource(241))
	w := randVec(r, tr.Cols())
	x := randVec(r, tr.Rows())
	mv := make([]float64, tr.Rows())
	vm := make([]float64, tr.Cols())
	g := la.NewDense(tr.Cols(), tr.Cols())
	tr.MatVecInto(mv, w)
	tr.VecMatInto(vm, x)
	tr.GramInto(g)
	if a := testing.AllocsPerRun(50, func() { tr.MatVecInto(mv, w) }); a != 0 {
		t.Errorf("MatVecInto allocates %v per run, want 0", a)
	}
	if a := testing.AllocsPerRun(50, func() { tr.VecMatInto(vm, x) }); a != 0 {
		t.Errorf("VecMatInto allocates %v per run, want 0", a)
	}
	if a := testing.AllocsPerRun(20, func() { tr.GramInto(g) }); a != 0 {
		t.Errorf("GramInto allocates %v per run, want 0", a)
	}
}

// randSnowflake builds a small random acyclic schema for property and fuzz
// testing: random depth, random branching, key-only relations allowed.
func randSnowflake(r *rand.Rand) (*workload.Snowflake, error) {
	k := 1 + r.Intn(5)
	nodes := make([]workload.SnowNode, k)
	for i := range nodes {
		nodes[i] = workload.SnowNode{
			Rows:   1 + r.Intn(12),
			Feats:  r.Intn(4),
			Parent: r.Intn(i+1) - 1,
		}
	}
	return workload.GenerateSnowflake(r, workload.SnowflakeConfig{
		FactRows:  5 + r.Intn(60),
		FactFeats: 1 + r.Intn(3),
		Nodes:     nodes,
		Task:      workload.RegressionTask,
		Signal:    1,
	})
}

// checkTreeEquivalence builds the tree for s and verifies every kernel
// against the materialized join; returns a description of the first
// mismatch, or "".
func checkTreeEquivalence(s *workload.Snowflake, r *rand.Rand) string {
	tr, err := joinTreeFromSnowflake(s)
	if err != nil {
		return err.Error()
	}
	m := s.Materialize()
	w := randVec(r, tr.Cols())
	if d := maxAbsDiff(tr.MatVec(w), la.MatVec(m, w)); d > 1e-8 {
		return "MatVec mismatch"
	}
	x := randVec(r, tr.Rows())
	if d := maxAbsDiff(tr.VecMat(x), la.VecMat(x, m)); d > 1e-8 {
		return "VecMat mismatch"
	}
	if !tr.Gram().Equal(la.Gram(m), 1e-7) {
		return "Gram mismatch"
	}
	return ""
}

// Property: on random acyclic trees, every kernel agrees with the
// materialized reference — at GOMAXPROCS=1 and GOMAXPROCS=N, which routes
// through both the serial and the slot-partial parallel paths.
func TestJoinTreeEquivalenceProperty(t *testing.T) {
	procs := []int{1, runtime.NumCPU()}
	if procs[1] < 4 {
		procs[1] = 4
	}
	old := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(old)
	for _, p := range procs {
		runtime.GOMAXPROCS(p)
		f := func(seed int64) bool {
			r := rand.New(rand.NewSource(seed))
			s, err := randSnowflake(r)
			if err != nil {
				return true // config rejected (e.g. all-featureless): not this property
			}
			if msg := checkTreeEquivalence(s, r); msg != "" {
				t.Logf("procs=%d seed=%d: %s", p, seed, msg)
				return false
			}
			return true
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
			t.Fatalf("procs=%d: %v", p, err)
		}
	}
}

// GD over a snowflake JoinTree must trace the same trajectory as GD over the
// materialized join — the tree engine is a drop-in opt.BulkDataInto source.
func TestGradientDescentOverJoinTree(t *testing.T) {
	s := testSnowflake(t, 250, 350)
	tr := treeFromSnowflake(t, s)
	r := rand.New(rand.NewSource(251))
	y := make([]float64, tr.Rows())
	for i := range y {
		if r.Float64() < 0.5 {
			y[i] = 1
		} else {
			y[i] = -1
		}
	}
	cfg := opt.GDConfig{Step: 0.1, MaxIter: 25, Backtracking: true}
	factRes, err := opt.GradientDescent(tr, y, opt.Logistic{}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	matRes, err := opt.GradientDescent(opt.DenseData{M: s.Materialize()}, y, opt.Logistic{}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if d := maxAbsDiff(factRes.W, matRes.W); d > 1e-8 {
		t.Fatalf("GD trajectories diverge, max diff %g", d)
	}
}

// The corrected cost model: a high-tuple-ratio narrow-fact star must predict
// a strong factorized win, while a wide fact over a same-sized dimension —
// where the group-sums move d_S-wide rows per fact row — must not promise
// one (the shape the old flat 2·n gather estimate got wrong).
func TestCostModelShapes(t *testing.T) {
	wide, err := workload.GenerateSnowflake(rand.New(rand.NewSource(260)), workload.SnowflakeConfig{
		FactRows: 4000, FactFeats: 96,
		Nodes:  []workload.SnowNode{{Rows: 4000, Feats: 4, Parent: -1}},
		Task:   workload.RegressionTask,
		Signal: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	trWide, err := joinTreeFromSnowflake(wide)
	if err != nil {
		t.Fatal(err)
	}
	if sp := trWide.Speedup(); sp > 1.1 {
		t.Errorf("wide fact, tuple ratio 1: predicted speedup %.2f, want ≈1 or below", sp)
	}
	gramRatio := trWide.FlopsPerGramMaterialized() / trWide.FlopsPerGram()
	if gramRatio > 1.3 {
		t.Errorf("wide fact: Gram model promises %.2fx, want no material win", gramRatio)
	}

	narrowS, err := workload.GenerateSnowflake(rand.New(rand.NewSource(261)), workload.SnowflakeConfig{
		FactRows: 20000, FactFeats: 2,
		Nodes:  []workload.SnowNode{{Rows: 100, Feats: 30, Parent: -1}},
		Task:   workload.RegressionTask,
		Signal: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	narrow, err := joinTreeFromSnowflake(narrowS)
	if err != nil {
		t.Fatal(err)
	}
	if sp := narrow.Speedup(); sp < 3 {
		t.Errorf("tuple ratio 200, wide dimension: predicted speedup %.2f, want a clear win", sp)
	}
	if trWide.ResidentBytes() <= 0 || narrow.ResidentBytes() <= 0 {
		t.Error("ResidentBytes must be positive")
	}
}
